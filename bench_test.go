package repro

// Benchmark harness: one testing.B benchmark per table/figure of the paper
// plus the ablations (DESIGN.md §4 index). Each benchmark regenerates its
// artefact at a reduced statistical budget and logs the resulting numbers,
// so `go test -bench=. -benchmem` both measures the cost of regeneration
// and records the reproduced values. cmd/experiments runs the same
// harnesses at full budget.

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func benchCommon(b *testing.B) experiments.Common {
	b.Helper()
	return experiments.Common{Sets: 4, Reps: 50, Seed: 2005}
}

// benchSuite regenerates the (N=6, ratio 0.1) corner of the evaluation —
// the Fig. 6(a) cell plus the slack, overhead and level ablations — through
// one shared grid runner. The four harnesses derive identical task sets, so
// with a memo the WCS/ACS solves run once instead of four times; without one
// this is the pre-grid cost model (every harness re-solves from scratch).
func benchSuite(b *testing.B, memo *grid.Memo) {
	b.Helper()
	common := benchCommon(b)
	common.Grid = grid.New(0, memo)
	if _, err := experiments.Fig6a(experiments.Fig6aConfig{
		Common: common, TaskCounts: []int{6}, Ratios: []float64{0.1},
	}); err != nil {
		b.Fatal(err)
	}
	if _, err := experiments.SlackPolicyAblation(common, 6, 0.1); err != nil {
		b.Fatal(err)
	}
	if _, err := experiments.TransitionOverheadAblation(common, 6, 0.1, nil); err != nil {
		b.Fatal(err)
	}
	if _, err := experiments.DiscreteLevelAblation(common, 6, 0.1, nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkExperimentSuite measures the memoized experiment suite: each
// iteration gets a fresh memo, so the speedup over ...NoCache is pure
// *intra-suite* sharing, not warm-cache accounting.
func BenchmarkExperimentSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSuite(b, grid.NewMemo())
	}
}

// BenchmarkExperimentSuiteNoCache is the same suite with memoization
// disabled — the denominator of the BENCH_grid.json trajectory.
func BenchmarkExperimentSuiteNoCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSuite(b, nil)
	}
}

// BenchmarkMotivation regenerates Table 1 / Figs. 1–2 (experiment E1).
func BenchmarkMotivation(b *testing.B) {
	var last *experiments.MotivationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Motivation()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.Logf("improvement %.1f%% (paper 24%%), WC increase %.1f%% (paper 33%%)",
		last.ImprovementPct, last.WorstIncreasePct)
}

// BenchmarkFig6a regenerates Fig. 6(a) (experiment E2) at bench budget.
func BenchmarkFig6a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Fig6a(experiments.Fig6aConfig{
			Common:     benchCommon(b),
			TaskCounts: []int{2, 6, 10},
			Ratios:     []float64{0.1, 0.5, 0.9},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", experiments.Table(cells, "Fig 6(a), bench budget"))
		}
	}
}

// BenchmarkFig6bCNC regenerates the CNC series of Fig. 6(b) (E3).
func BenchmarkFig6bCNC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Fig6b(experiments.Fig6bConfig{
			Common: benchCommon(b),
			Apps:   []string{"CNC"},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", experiments.AppTable(cells))
		}
	}
}

// BenchmarkFig6bGAP regenerates the GAP series of Fig. 6(b) (E4).
func BenchmarkFig6bGAP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Fig6b(experiments.Fig6bConfig{
			Common: experiments.Common{Sets: 2, Reps: 20, Seed: 2005},
			Apps:   []string{"GAP"},
			Ratios: []float64{0.1},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", experiments.AppTable(cells))
		}
	}
}

// BenchmarkAblationSlackPolicy regenerates E5.
func BenchmarkAblationSlackPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.SlackPolicyAblation(benchCommon(b), 4, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", experiments.SlackTable(cells))
		}
	}
}

// BenchmarkAblationSubInstanceCap regenerates E6 (GAP, reduced cap list).
func BenchmarkAblationSubInstanceCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.SubInstanceCapAblation(
			experiments.Common{Sets: 1, Reps: 20, Seed: 2005}, 0.1, []int{4, 12})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", experiments.CapTable(cells))
		}
	}
}

// BenchmarkAblationTransitionOverhead regenerates E7.
func BenchmarkAblationTransitionOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.TransitionOverheadAblation(benchCommon(b), 4, 0.1, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", experiments.OverheadTable(cells))
		}
	}
}

// BenchmarkAblationDiscreteLevels regenerates E8.
func BenchmarkAblationDiscreteLevels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.DiscreteLevelAblation(benchCommon(b), 4, 0.1, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", experiments.LevelTable(cells))
		}
	}
}

// BenchmarkAblationWeightedObjective regenerates E10.
func BenchmarkAblationWeightedObjective(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.WeightedObjectiveAblation(
			experiments.Common{Sets: 2, Reps: 30, Seed: 2005}, 4, 0.1, []int{0, 5})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", experiments.WeightedTable(cells))
		}
	}
}

// BenchmarkSolverCrossCheck regenerates E9.
func BenchmarkSolverCrossCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SolverCrossCheck(benchCommon(b), 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", r.Render())
		}
	}
}

// --- Micro-benchmarks of the hot paths -------------------------------------

// BenchmarkSolveACSN6 measures one production ACS solve (N=6, ratio 0.1).
func BenchmarkSolveACSN6(b *testing.B) {
	rng := stats.NewRNG(1)
	set, err := workload.RandomFeasible(rng, workload.RandomConfig{
		N: 6, Ratio: 0.1, Utilization: 0.7,
	}, 50, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(set, core.Config{Objective: core.AverageCase}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateHyperperiods measures the runtime simulator throughput.
func BenchmarkSimulateHyperperiods(b *testing.B) {
	rng := stats.NewRNG(2)
	set, err := workload.RandomFeasible(rng, workload.RandomConfig{
		N: 6, Ratio: 0.1, Utilization: 0.7,
	}, 50, nil)
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.Build(set, core.Config{Objective: core.AverageCase})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(s, sim.Config{Hyperperiods: 100, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimGreedy measures the compiled online engine end to end: compile
// once, then simulate a large hyper-period batch at Workers = NumCPU. The
// allocs/op figure is the whole-run constant (seed table, result table, one
// workspace per worker); it does not grow with Hyperperiods because the
// per-hyper-period loop allocates nothing.
func BenchmarkSimGreedy(b *testing.B) {
	rng := stats.NewRNG(2)
	set, err := workload.RandomFeasible(rng, workload.RandomConfig{
		N: 6, Ratio: 0.1, Utilization: 0.7,
	}, 50, nil)
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.Build(set, core.Config{Objective: core.AverageCase})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := sim.Compile(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Run(sim.Config{Hyperperiods: 2000, Seed: uint64(i), Workers: runtime.NumCPU()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreemptExpansion measures the fully-preemptive plan construction
// on the largest built-in set (GAP).
func BenchmarkPreemptExpansion(b *testing.B) {
	set, err := workload.GAP(0.1, 0.7, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.Feasible(set, core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
