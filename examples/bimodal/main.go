// Bimodal demonstrates the scenario the paper's abstract motivates: "tasks
// that normally require a small number of cycles but occasionally a large
// number of cycles to complete". Under a bimodal workload (90% of releases
// near BCEC, 10% near WCEC) the average-case-aware schedule has even more
// slack to harvest than under the symmetric truncated-Normal model, and this
// example measures the gap between the two.
//
//	go run ./examples/bimodal
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/sim"
)

func main() {
	rng := repro.NewRNG(2005)
	set, err := repro.RandomTaskSet(rng, repro.RandomTaskSetConfig{
		N: 6, Ratio: 0.1, Utilization: 0.7,
	})
	if err != nil {
		log.Fatal(err)
	}
	acs, wcs, err := repro.BuildBoth(set, repro.ScheduleConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("6 random tasks, U=0.7, BCEC/WCEC=0.1 (%d sub-instances)\n\n", len(acs.Plan.Subs))
	fmt.Printf("%-22s %-14s %-14s %-12s\n", "workload distribution", "E(ACS)", "E(WCS)", "improvement")
	for _, d := range []struct {
		name string
		dist repro.Distribution
	}{
		{"truncated normal (§4)", sim.PaperDist},
		{"bimodal 90/10", sim.BimodalDist},
		{"uniform", sim.UniformDist},
		{"always ACEC", sim.AlwaysACECDist},
		{"always WCEC", sim.AlwaysWCECDist},
	} {
		imp, ra, rb, err := repro.CompareSchedules(acs, wcs, repro.SimConfig{
			Policy:       repro.Greedy,
			Hyperperiods: 500,
			Seed:         99,
			Dist:         d.dist,
		})
		if err != nil {
			log.Fatal(err)
		}
		if ra.DeadlineMisses+rb.DeadlineMisses > 0 {
			log.Fatalf("%s: deadline misses", d.name)
		}
		fmt.Printf("%-22s %-14.6g %-14.6g %6.1f%%\n", d.name, ra.Energy, rb.Energy, imp)
	}
	fmt.Println("\nEven at all-WCEC draws the ACS schedule stays feasible — that is the")
	fmt.Println("worst-case guarantee the offline NLP enforces (paper §3.2).")
}
