// CNC runs the computer-numerical-control case study (paper §4, Fig. 6(b)):
// the eight-task controller from Kim et al. (RTSS'96), swept across
// BCEC/WCEC ratios.
//
//	go run ./examples/cnc
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("CNC controller (8 tasks, H = 48 ms), ACS vs WCS")
	fmt.Printf("%-8s %-12s %-12s %-12s\n", "ratio", "E(ACS)", "E(WCS)", "improvement")
	for _, ratio := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		set, err := repro.CNCTaskSet(ratio, 0.7, nil)
		if err != nil {
			log.Fatal(err)
		}
		acs, wcs, err := repro.BuildBoth(set, repro.ScheduleConfig{})
		if err != nil {
			log.Fatal(err)
		}
		imp, ra, rb, err := repro.CompareSchedules(acs, wcs, repro.SimConfig{
			Policy:       repro.Greedy,
			Hyperperiods: 500,
			Seed:         7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.1f %-12.5g %-12.5g %6.1f%%\n", ratio, ra.Energy, rb.Energy, imp)
		if ra.DeadlineMisses+rb.DeadlineMisses > 0 {
			log.Fatalf("deadline misses at ratio %g", ratio)
		}
	}
}
