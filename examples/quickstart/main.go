// Quickstart: build ACS and WCS static schedules for a small task set and
// compare their runtime energy under stochastic workloads.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Three periodic tasks on one processor. Periods are in ms, workloads
	// in cycles of the default model (one cycle takes 1/V ms at V volts).
	// Each task usually needs far fewer cycles than its worst case — the
	// exact situation the paper's scheduler exploits.
	set, err := repro.NewTaskSet([]repro.Task{
		{Name: "sensor", Period: 10, WCEC: 6, ACEC: 2.5, BCEC: 1, Ceff: 1},
		{Name: "control", Period: 20, WCEC: 16, ACEC: 7, BCEC: 2, Ceff: 1},
		{Name: "telemetry", Period: 40, WCEC: 30, ACEC: 12, BCEC: 3, Ceff: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Offline phase: solve the worst-case-only baseline (WCS) and the
	// average-case-aware schedule (ACS) over the fully-preemptive plan.
	acs, wcs, err := repro.BuildBoth(set, repro.ScheduleConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task set %s expands to %d sub-instances\n", set, len(acs.Plan.Subs))
	fmt.Printf("offline objective energy: ACS=%.4g WCS=%.4g\n", acs.Energy, wcs.Energy)

	// Online phase: simulate 1000 hyper-periods of greedy slack
	// reclamation under the paper's truncated-normal workload model; both
	// schedules see identical workload draws.
	imp, ra, rb, err := repro.CompareSchedules(acs, wcs, repro.SimConfig{
		Policy:       repro.Greedy,
		Hyperperiods: 1000,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("runtime energy: ACS=%.6g WCS=%.6g\n", ra.Energy, rb.Energy)
	fmt.Printf("mean supply voltage: ACS=%.2fV WCS=%.2fV\n", ra.MeanVoltage, rb.MeanVoltage)
	fmt.Printf("deadline misses: ACS=%d WCS=%d\n", ra.DeadlineMisses, rb.DeadlineMisses)
	fmt.Printf("ACS saves %.1f%% runtime energy over WCS\n", imp)
}
