// GAP runs the Generic Avionics Platform case study (paper §4, Fig. 6(b)):
// seventeen avionics tasks from Locke et al., swept across BCEC/WCEC ratios.
// The fully-preemptive expansion is capped at 12 pieces per instance to keep
// the NLP tractable (see DESIGN.md); the cap's effect is quantified by the
// E6 ablation (cmd/experiments -only cap).
//
//	go run ./examples/gap
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("Generic Avionics Platform (17 tasks, H = 1000 ms), ACS vs WCS")
	fmt.Printf("%-8s %-8s %-12s\n", "ratio", "subs", "improvement")
	for _, ratio := range []float64{0.1, 0.5, 0.9} {
		set, err := repro.GAPTaskSet(ratio, 0.7, nil)
		if err != nil {
			log.Fatal(err)
		}
		cfg := repro.ScheduleConfig{}
		cfg.Preempt.MaxSubsPerInstance = 12
		acs, wcs, err := repro.BuildBoth(set, cfg)
		if err != nil {
			log.Fatal(err)
		}
		imp, ra, rb, err := repro.CompareSchedules(acs, wcs, repro.SimConfig{
			Policy:       repro.Greedy,
			Hyperperiods: 200,
			Seed:         11,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.1f %-8d %6.1f%%\n", ratio, len(acs.Plan.Subs), imp)
		if ra.DeadlineMisses+rb.DeadlineMisses > 0 {
			log.Fatalf("deadline misses at ratio %g", ratio)
		}
	}
}
