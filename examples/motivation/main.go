// Motivation reproduces the paper's §2.2 example (Table 1, Figs. 1 and 2):
// three tasks in a 20 ms frame where choosing end-times for the average case
// saves 24% energy while remaining worst-case feasible at Vmax = 4 V.
//
//	go run ./examples/motivation
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	r, err := experiments.Motivation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r.Render())

	// Show the NLP-solved ACS schedule as a Gantt chart: the solver
	// rediscovers the paper's hand-made end-times (10 / 15 / 20 ms).
	set, err := experiments.MotivationSet()
	if err != nil {
		log.Fatal(err)
	}
	m, err := experiments.MotivationModel()
	if err != nil {
		log.Fatal(err)
	}
	acs, err := core.Build(set, core.Config{Objective: core.AverageCase, Model: m})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(trace.Gantt(acs, 80))
}
