package repro

import (
	"math"
	"testing"
)

// TestFacadeEndToEnd drives the public API exactly as the README quickstart
// does: task set → BuildBoth → CompareSchedules.
func TestFacadeEndToEnd(t *testing.T) {
	set, err := NewTaskSet([]Task{
		{Name: "ctrl", Period: 20, WCEC: 20, ACEC: 10, BCEC: 5, Ceff: 1},
		{Name: "log", Period: 40, WCEC: 30, ACEC: 12, BCEC: 6, Ceff: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	acs, wcs, err := BuildBoth(set, ScheduleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if acs.Objective != AverageCase || wcs.Objective != WorstCase {
		t.Error("objectives mislabelled")
	}
	imp, ra, rb, err := CompareSchedules(acs, wcs, SimConfig{Hyperperiods: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ra.DeadlineMisses+rb.DeadlineMisses != 0 {
		t.Errorf("deadline misses: %d/%d", ra.DeadlineMisses, rb.DeadlineMisses)
	}
	if imp <= 0 {
		t.Errorf("expected positive improvement, got %g", imp)
	}
}

func TestFacadeModels(t *testing.T) {
	if m := DefaultModel(); m.VMax() != 4 {
		t.Errorf("default VMax %g", m.VMax())
	}
	si, err := NewSimpleInverseModel(1, 0.5, 3)
	if err != nil || si.CycleTime(2) != 0.5 {
		t.Errorf("simple model: %v", err)
	}
	am, err := NewAlphaModel(1, 0.4, 1.5, 0.8, 3.3)
	if err != nil {
		t.Fatal(err)
	}
	if am.CycleTime(2) <= 0 {
		t.Error("alpha cycle time non-positive")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	rng := NewRNG(9)
	set, err := RandomTaskSet(rng, RandomTaskSetConfig{N: 4, Ratio: 0.5, Utilization: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if set.N() != 4 {
		t.Errorf("N = %d", set.N())
	}
	cnc, err := CNCTaskSet(0.5, 0.7, nil)
	if err != nil || cnc.N() != 8 {
		t.Errorf("CNC: %v", err)
	}
	gap, err := GAPTaskSet(0.5, 0.7, nil)
	if err != nil || gap.N() != 17 {
		t.Errorf("GAP: %v", err)
	}
}

// TestFacadeSimulatePolicies exercises every exported slack policy.
func TestFacadeSimulatePolicies(t *testing.T) {
	set, err := NewTaskSet([]Task{
		{Name: "a", Period: 10, WCEC: 10, ACEC: 5, BCEC: 2, Ceff: 1},
		{Name: "b", Period: 20, WCEC: 12, ACEC: 6, BCEC: 2, Ceff: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	acs, _, err := BuildBoth(set, ScheduleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var energies []float64
	for _, pol := range []SlackPolicy{Greedy, Static, NoDVS} {
		r, err := Simulate(acs, SimConfig{Policy: pol, Hyperperiods: 50, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if r.DeadlineMisses != 0 {
			t.Errorf("%v: %d misses", pol, r.DeadlineMisses)
		}
		energies = append(energies, r.Energy)
	}
	// Greedy ≤ Static ≤ NoDVS.
	if !(energies[0] <= energies[1]*(1+1e-9) && energies[1] <= energies[2]*(1+1e-9)) {
		t.Errorf("policy energies out of order: %v", energies)
	}
	if math.IsNaN(energies[0]) {
		t.Error("NaN energy")
	}
}

func TestFacadeSchedulability(t *testing.T) {
	set, err := NewTaskSet([]Task{
		{Name: "a", Period: 10, WCEC: 8, ACEC: 4, BCEC: 2, Ceff: 1},
		{Name: "b", Period: 20, WCEC: 16, ACEC: 8, BCEC: 4, Ceff: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	tc := DefaultModel().CycleTime(DefaultModel().VMax())
	if !RTASchedulable(set, tc) {
		t.Fatal("set should be schedulable at Vmax")
	}
	rts, err := ResponseTimes(set, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rts) != 2 || rts[0] <= 0 || rts[1] <= rts[0] {
		t.Errorf("response times %v", rts)
	}
	slow, err := MinCycleTime(set, tc)
	if err != nil {
		t.Fatal(err)
	}
	if slow <= tc {
		t.Errorf("MinCycleTime %g should exceed the fast cycle time %g", slow, tc)
	}
}

func TestBuildScheduleSingle(t *testing.T) {
	set, err := NewTaskSet([]Task{{Name: "x", Period: 10, WCEC: 8, ACEC: 4, BCEC: 2, Ceff: 1}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildSchedule(set, ScheduleConfig{Objective: WorstCase})
	if err != nil {
		t.Fatal(err)
	}
	if s.Energy <= 0 {
		t.Errorf("energy %g", s.Energy)
	}
}
