package repro

// Cross-package integration tests: end-to-end invariants that span the
// offline solver, the runtime simulator and the workload sources, exercised
// through the public facade the way a downstream user would.

import (
	"math"
	"testing"
)

// TestIntegrationCNCPipeline runs the full CNC pipeline at two ratios and
// checks the paper's monotonicity claim end to end.
func TestIntegrationCNCPipeline(t *testing.T) {
	imps := map[float64]float64{}
	for _, ratio := range []float64{0.1, 0.9} {
		set, err := CNCTaskSet(ratio, 0.7, nil)
		if err != nil {
			t.Fatal(err)
		}
		acs, wcs, err := BuildBoth(set, ScheduleConfig{})
		if err != nil {
			t.Fatal(err)
		}
		imp, ra, rb, err := CompareSchedules(acs, wcs, SimConfig{Hyperperiods: 100, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if ra.DeadlineMisses+rb.DeadlineMisses != 0 {
			t.Fatalf("ratio %g: deadline misses", ratio)
		}
		imps[ratio] = imp
	}
	if !(imps[0.1] > imps[0.9]) {
		t.Errorf("improvement not monotone in variability: %.1f%% at 0.1 vs %.1f%% at 0.9",
			imps[0.1], imps[0.9])
	}
	if imps[0.1] < 5 {
		t.Errorf("CNC at ratio 0.1 improved only %.1f%%; expected double digits", imps[0.1])
	}
}

// TestIntegrationEnergyConservation: the simulator's total energy equals the
// sum over hyper-periods, and scales linearly when Ceff doubles.
func TestIntegrationEnergyConservation(t *testing.T) {
	rng := NewRNG(5)
	set, err := RandomTaskSet(rng, RandomTaskSetConfig{N: 4, Ratio: 0.3, Utilization: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	acs, _, err := BuildBoth(set, ScheduleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Simulate(acs, SimConfig{Hyperperiods: 30, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	perHPSum := r.PerHyperperiod.Mean() * float64(r.PerHyperperiod.N())
	if math.Abs(perHPSum-r.Energy) > 1e-6*r.Energy {
		t.Errorf("per-hyper-period sum %g != total %g", perHPSum, r.Energy)
	}

	// Double every Ceff: schedule geometry is unchanged (Ceff scales the
	// objective uniformly with unit capacitance everywhere), so runtime
	// energy must exactly double.
	tasks := append([]Task(nil), set.Tasks...)
	for i := range tasks {
		tasks[i].Ceff *= 2
	}
	set2, err := NewTaskSet(tasks)
	if err != nil {
		t.Fatal(err)
	}
	acs2, _, err := BuildBoth(set2, ScheduleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(acs2, SimConfig{Hyperperiods: 30, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2.Energy-2*r.Energy) > 1e-6*r.Energy {
		t.Errorf("doubling Ceff scaled energy by %g, want 2", r2.Energy/r.Energy)
	}
}

// TestIntegrationSpeedHeadroomMatchesSolver: sched.MinCycleTime's uniform
// slowdown headroom must be consistent with the solver: a set stays solvable
// on a model whose maximum speed is just above the minimum feasible speed,
// and Build fails just below it.
func TestIntegrationSpeedHeadroomMatchesSolver(t *testing.T) {
	set, err := NewTaskSet([]Task{
		{Name: "a", Period: 10, WCEC: 8, ACEC: 4, BCEC: 2, Ceff: 1},
		{Name: "b", Period: 20, WCEC: 16, ACEC: 8, BCEC: 4, Ceff: 1},
		{Name: "c", Period: 40, WCEC: 24, ACEC: 12, BCEC: 6, Ceff: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultModel()
	tcMin, err := MinCycleTime(set, base.CycleTime(base.VMax()))
	if err != nil {
		t.Fatal(err)
	}
	// Model whose top speed corresponds to a cycle time 1% faster than the
	// critical one: must solve.
	fast, err := NewSimpleInverseModel(1, 0.1, 1/(tcMin*0.99))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSchedule(set, ScheduleConfig{Objective: WorstCase, Model: fast}); err != nil {
		t.Errorf("set unsolvable just above the RTA speed bound: %v", err)
	}
	// 5% slower than critical: must fail.
	slow, err := NewSimpleInverseModel(1, 0.1, 1/(tcMin*1.05))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSchedule(set, ScheduleConfig{Objective: WorstCase, Model: slow}); err == nil {
		t.Error("set solvable below the RTA speed bound — solver and RTA disagree")
	}
}

// TestIntegrationScenarioObjectivePublic: the probability-weighted objective
// is reachable through the facade's ScheduleConfig and keeps all guarantees.
func TestIntegrationScenarioObjectivePublic(t *testing.T) {
	rng := NewRNG(21)
	set, err := RandomTaskSet(rng, RandomTaskSetConfig{N: 4, Ratio: 0.1, Utilization: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScheduleConfig{Scenarios: 5, ScenarioSeed: 4}
	acs, wcs, err := BuildBoth(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	imp, ra, rb, err := CompareSchedules(acs, wcs, SimConfig{Hyperperiods: 100, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ra.DeadlineMisses+rb.DeadlineMisses != 0 {
		t.Fatal("scenario-optimised schedule missed deadlines")
	}
	if imp <= 0 {
		t.Errorf("scenario ACS did not improve on WCS: %g%%", imp)
	}
}
