package task

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestInstancesCountAndWindows(t *testing.T) {
	s, err := NewSet([]Task{valid("a", 10), valid("b", 20)})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := s.Instances()
	if err != nil {
		t.Fatal(err)
	}
	// H = 20: task a has 2 instances, task b has 1.
	if len(ins) != 3 {
		t.Fatalf("got %d instances, want 3", len(ins))
	}
	n, err := s.InstanceCount()
	if err != nil || n != 3 {
		t.Fatalf("InstanceCount = %d, err %v", n, err)
	}
	for _, in := range ins {
		p := float64(s.Tasks[in.TaskIndex].Period)
		if in.Deadline-in.Release != p {
			t.Errorf("instance %v window length %g != period %g", in, in.Deadline-in.Release, p)
		}
		if in.Release != float64(in.Number)*p {
			t.Errorf("instance %v release mismatch", in)
		}
	}
}

func TestInstancesOrdering(t *testing.T) {
	s, err := NewSet([]Task{valid("lo", 20), valid("hi", 10)})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := s.Instances()
	if err != nil {
		t.Fatal(err)
	}
	// At release 0, the higher-priority (shorter-period) task comes first.
	if s.Tasks[ins[0].TaskIndex].Name != "hi" {
		t.Errorf("first instance is %s", s.Tasks[ins[0].TaskIndex].Name)
	}
	for i := 1; i < len(ins); i++ {
		if ins[i].Release < ins[i-1].Release {
			t.Fatal("instances not sorted by release")
		}
	}
}

// TestInstancesPartitionProperty: per task, instances tile [0, H) without
// gaps or overlaps.
func TestInstancesPartitionProperty(t *testing.T) {
	pool := []int64{10, 20, 25, 50, 100}
	rng := stats.NewRNG(9)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%5) + 1
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i] = Task{Period: pool[rng.Intn(len(pool))], WCEC: 1, ACEC: 1, BCEC: 1, Ceff: 1}
		}
		s, err := NewSet(tasks)
		if err != nil {
			return false
		}
		h, _ := s.Hyperperiod()
		ins, err := s.Instances()
		if err != nil {
			return false
		}
		next := make([]float64, s.N())
		counts := make([]int, s.N())
		for _, in := range ins {
			if in.Release != next[in.TaskIndex] {
				return false
			}
			next[in.TaskIndex] = in.Deadline
			counts[in.TaskIndex]++
		}
		for i := range counts {
			if next[i] != float64(h) || int64(counts[i]) != h/s.Tasks[i].Period {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInstanceID(t *testing.T) {
	s, _ := NewSet([]Task{valid("a", 10)})
	ins, _ := s.Instances()
	if got := ins[0].ID(s); got != "a#0" {
		t.Errorf("ID = %q", got)
	}
}
