// Package task defines the periodic hard real-time task model of the paper
// (§2.1): a frame-based preemptive system of independent periodic tasks with
// relative deadline equal to period, scheduled by rate-monotonic (RM) fixed
// priorities, each task characterised by worst-case, average-case and
// best-case execution cycles (WCEC / ACEC / BCEC) and an effective switching
// capacitance.
//
// Time is measured in integral milliseconds for periods so the hyper-period
// is an exact least common multiple; schedule mathematics downstream uses
// float64 milliseconds.
package task

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Task is one periodic task. The zero value is not valid; construct task
// sets through NewSet (or Set.Validate) so invariants hold everywhere else.
type Task struct {
	// Name identifies the task in traces and reports.
	Name string `json:"name"`

	// Period is the task period in integral milliseconds. The relative
	// deadline equals the period (paper §2.1).
	Period int64 `json:"period_ms"`

	// WCEC is the worst-case execution cycle count.
	WCEC float64 `json:"wcec"`

	// ACEC is the average-case execution cycle count: the expected value of
	// the actual-cycle distribution, obtainable by profiling (paper §2.1).
	ACEC float64 `json:"acec"`

	// BCEC is the best-case execution cycle count, the lower support of the
	// workload distribution.
	BCEC float64 `json:"bcec"`

	// Ceff is the effective switching capacitance entering E = Ceff·V²·cycles.
	Ceff float64 `json:"ceff"`
}

// Validate reports the first model violation in t, if any.
func (t *Task) Validate() error {
	if t.Period <= 0 {
		return fmt.Errorf("task %q: period must be positive, got %d", t.Name, t.Period)
	}
	if t.WCEC <= 0 {
		return fmt.Errorf("task %q: WCEC must be positive, got %g", t.Name, t.WCEC)
	}
	if t.BCEC < 0 {
		return fmt.Errorf("task %q: BCEC must be non-negative, got %g", t.Name, t.BCEC)
	}
	if t.BCEC > t.WCEC {
		return fmt.Errorf("task %q: BCEC %g exceeds WCEC %g", t.Name, t.BCEC, t.WCEC)
	}
	if t.ACEC < t.BCEC || t.ACEC > t.WCEC {
		return fmt.Errorf("task %q: ACEC %g outside [BCEC %g, WCEC %g]",
			t.Name, t.ACEC, t.BCEC, t.WCEC)
	}
	if t.Ceff <= 0 {
		return fmt.Errorf("task %q: Ceff must be positive, got %g", t.Name, t.Ceff)
	}
	return nil
}

// Deadline returns the relative deadline in milliseconds (equal to the
// period in this model).
func (t *Task) Deadline() float64 { return float64(t.Period) }

// Set is an immutable-by-convention collection of tasks ordered by
// rate-monotonic priority: index 0 is the highest priority (shortest
// period); ties break by original insertion order, matching the paper's
// "priorities of two tasks are the same if they have the same period" with a
// deterministic resolution.
type Set struct {
	Tasks []Task `json:"tasks"`
}

// NewSet validates the tasks, sorts them into RM priority order (stable, so
// equal periods keep caller order), and returns the set.
func NewSet(tasks []Task) (*Set, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("task: a set needs at least one task")
	}
	ts := append([]Task(nil), tasks...)
	for i := range ts {
		if ts[i].Name == "" {
			ts[i].Name = fmt.Sprintf("T%d", i+1)
		}
		if err := ts[i].Validate(); err != nil {
			return nil, err
		}
	}
	names := map[string]bool{}
	for i := range ts {
		if names[ts[i].Name] {
			return nil, fmt.Errorf("task: duplicate task name %q", ts[i].Name)
		}
		names[ts[i].Name] = true
	}
	sort.SliceStable(ts, func(i, j int) bool { return ts[i].Period < ts[j].Period })
	s := &Set{Tasks: ts}
	if _, err := s.Hyperperiod(); err != nil {
		return nil, err
	}
	return s, nil
}

// N returns the number of tasks.
func (s *Set) N() int { return len(s.Tasks) }

// Hyperperiod returns the least common multiple of all periods in
// milliseconds. It fails if the LCM overflows int64 — a sign the period set
// was not chosen from a harmonically compatible pool.
func (s *Set) Hyperperiod() (int64, error) {
	h := int64(1)
	for i := range s.Tasks {
		var ok bool
		h, ok = lcm(h, s.Tasks[i].Period)
		if !ok {
			return 0, fmt.Errorf("task: hyper-period overflows int64 (periods too incommensurate; consider rounding, see DESIGN.md on GAP)")
		}
	}
	return h, nil
}

// UtilizationAt returns Σ WCECᵢ·tc / Pᵢ — the processor utilisation when all
// tasks run at a speed with cycle time tc ms/cycle. The paper scales WCEC so
// this is ≈ 0.7 at the maximum speed.
func (s *Set) UtilizationAt(cycleTime float64) float64 {
	var u float64
	for i := range s.Tasks {
		u += s.Tasks[i].WCEC * cycleTime / float64(s.Tasks[i].Period)
	}
	return u
}

// ScaleWCEC multiplies every task's WCEC/ACEC/BCEC by factor, returning a
// new set. Used by generators to hit a target utilisation.
func (s *Set) ScaleWCEC(factor float64) (*Set, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("task: scale factor must be positive, got %g", factor)
	}
	ts := append([]Task(nil), s.Tasks...)
	for i := range ts {
		ts[i].WCEC *= factor
		ts[i].ACEC *= factor
		ts[i].BCEC *= factor
	}
	return NewSet(ts)
}

// WithRatio returns a copy of the set in which every task's BCEC is set to
// ratio·WCEC and ACEC to the distribution mean (BCEC+WCEC)/2, the
// configuration the paper sweeps in Fig. 6 (ratio = BCEC/WCEC ∈ {0.1 … 0.9}).
func (s *Set) WithRatio(ratio float64) (*Set, error) {
	if ratio < 0 || ratio > 1 {
		return nil, fmt.Errorf("task: BCEC/WCEC ratio must lie in [0, 1], got %g", ratio)
	}
	ts := append([]Task(nil), s.Tasks...)
	for i := range ts {
		ts[i].BCEC = ratio * ts[i].WCEC
		ts[i].ACEC = 0.5 * (ts[i].BCEC + ts[i].WCEC)
	}
	return NewSet(ts)
}

// ByName returns the task with the given name, or nil.
func (s *Set) ByName(name string) *Task {
	for i := range s.Tasks {
		if s.Tasks[i].Name == name {
			return &s.Tasks[i]
		}
	}
	return nil
}

// MarshalJSON renders the set as {"tasks": [...]}.
func (s *Set) MarshalJSON() ([]byte, error) {
	type alias Set
	return json.Marshal((*alias)(s))
}

// UnmarshalJSON parses and re-validates a set (so hand-edited JSON cannot
// smuggle in invalid tasks or break priority ordering).
func (s *Set) UnmarshalJSON(data []byte) error {
	type alias Set
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	ns, err := NewSet(a.Tasks)
	if err != nil {
		return err
	}
	*s = *ns
	return nil
}

// String summarises the set for logs.
func (s *Set) String() string {
	h, err := s.Hyperperiod()
	if err != nil {
		return fmt.Sprintf("Set{%d tasks, invalid hyper-period}", len(s.Tasks))
	}
	return fmt.Sprintf("Set{%d tasks, H=%dms}", len(s.Tasks), h)
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// lcm returns the least common multiple and whether it fit in int64.
func lcm(a, b int64) (int64, bool) {
	g := gcd(a, b)
	q := a / g
	if q != 0 && b > (1<<62)/q {
		return 0, false
	}
	return q * b, true
}
