package task

import (
	"fmt"
	"sort"
)

// Instance is the j-th release of a task within one hyper-period: absolute
// release time j·P and absolute deadline (j+1)·P (paper §2.1: first instance
// of every task released at time zero, relative deadline equal to period).
type Instance struct {
	// TaskIndex is the index of the parent task in the RM-ordered Set.
	TaskIndex int
	// Number is the zero-based release index within the hyper-period.
	Number int
	// Release is the absolute release time in ms.
	Release float64
	// Deadline is the absolute deadline in ms.
	Deadline float64
}

// ID renders a stable identifier such as "T2#3" (task T2, fourth release).
func (in Instance) ID(s *Set) string {
	return fmt.Sprintf("%s#%d", s.Tasks[in.TaskIndex].Name, in.Number)
}

// Instances expands the set over one hyper-period into the full list of task
// instances, ordered by (release, RM priority). Every task contributes
// exactly H/P instances.
func (s *Set) Instances() ([]Instance, error) {
	h, err := s.Hyperperiod()
	if err != nil {
		return nil, err
	}
	var out []Instance
	for i := range s.Tasks {
		p := s.Tasks[i].Period
		n := h / p
		for j := int64(0); j < n; j++ {
			out = append(out, Instance{
				TaskIndex: i,
				Number:    int(j),
				Release:   float64(j * p),
				Deadline:  float64((j + 1) * p),
			})
		}
	}
	sortInstances(out)
	return out, nil
}

// sortInstances orders by release time, then RM priority (lower TaskIndex
// first), then release number — a deterministic total order.
func sortInstances(ins []Instance) {
	sort.Slice(ins, func(i, j int) bool {
		a, b := ins[i], ins[j]
		if a.Release != b.Release {
			return a.Release < b.Release
		}
		if a.TaskIndex != b.TaskIndex {
			return a.TaskIndex < b.TaskIndex
		}
		return a.Number < b.Number
	})
}

// InstanceCount returns the total number of instances in one hyper-period.
func (s *Set) InstanceCount() (int, error) {
	h, err := s.Hyperperiod()
	if err != nil {
		return 0, err
	}
	n := int64(0)
	for i := range s.Tasks {
		n += h / s.Tasks[i].Period
	}
	return int(n), nil
}
