package task

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func valid(name string, period int64) Task {
	return Task{Name: name, Period: period, WCEC: 10, ACEC: 5, BCEC: 1, Ceff: 1}
}

func TestTaskValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Task)
	}{
		{"zero period", func(x *Task) { x.Period = 0 }},
		{"negative period", func(x *Task) { x.Period = -5 }},
		{"zero WCEC", func(x *Task) { x.WCEC = 0 }},
		{"negative BCEC", func(x *Task) { x.BCEC = -1 }},
		{"BCEC > WCEC", func(x *Task) { x.BCEC = 11 }},
		{"ACEC below BCEC", func(x *Task) { x.ACEC = 0.5 }},
		{"ACEC above WCEC", func(x *Task) { x.ACEC = 11 }},
		{"zero Ceff", func(x *Task) { x.Ceff = 0 }},
	}
	for _, c := range cases {
		x := valid("t", 10)
		c.mut(&x)
		if err := x.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	x := valid("ok", 10)
	if err := x.Validate(); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
}

func TestNewSetOrdersByRMPriority(t *testing.T) {
	s, err := NewSet([]Task{valid("slow", 40), valid("fast", 10), valid("mid", 20)})
	if err != nil {
		t.Fatal(err)
	}
	got := []string{s.Tasks[0].Name, s.Tasks[1].Name, s.Tasks[2].Name}
	want := []string{"fast", "mid", "slow"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestNewSetStableForEqualPeriods(t *testing.T) {
	s, err := NewSet([]Task{valid("a", 20), valid("b", 20), valid("c", 10)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Tasks[1].Name != "a" || s.Tasks[2].Name != "b" {
		t.Errorf("equal-period order not stable: %v, %v", s.Tasks[1].Name, s.Tasks[2].Name)
	}
}

func TestNewSetRejections(t *testing.T) {
	if _, err := NewSet(nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := NewSet([]Task{valid("x", 10), valid("x", 20)}); err == nil {
		t.Error("duplicate names accepted")
	}
	bad := valid("bad", 10)
	bad.WCEC = 0
	if _, err := NewSet([]Task{bad}); err == nil {
		t.Error("invalid task accepted")
	}
}

func TestNewSetAutoNames(t *testing.T) {
	s, err := NewSet([]Task{{Period: 10, WCEC: 1, ACEC: 1, BCEC: 1, Ceff: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Tasks[0].Name == "" {
		t.Error("auto-name not assigned")
	}
}

func TestHyperperiod(t *testing.T) {
	s, err := NewSet([]Task{valid("a", 10), valid("b", 25), valid("c", 40)})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Hyperperiod()
	if err != nil {
		t.Fatal(err)
	}
	if h != 200 {
		t.Errorf("H = %d, want 200", h)
	}
}

func TestHyperperiodOverflow(t *testing.T) {
	// Large mutually prime periods overflow int64 quickly.
	primes := []int64{1000003, 1000033, 1000037, 1000039, 1000081, 1000099, 1000117}
	tasks := make([]Task, len(primes))
	for i, p := range primes {
		tasks[i] = valid(strings.Repeat("x", i+1), p)
	}
	if _, err := NewSet(tasks); err == nil {
		t.Error("overflowing hyper-period accepted")
	}
}

// TestHyperperiodDividesAllPeriods is a property test: H is a common
// multiple of every period drawn from the default pool.
func TestHyperperiodDividesAllPeriods(t *testing.T) {
	pool := []int64{10, 20, 25, 40, 50, 100, 200}
	rng := stats.NewRNG(6)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%6) + 1
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i] = valid(strings.Repeat("t", i+1), pool[rng.Intn(len(pool))])
		}
		s, err := NewSet(tasks)
		if err != nil {
			return false
		}
		h, err := s.Hyperperiod()
		if err != nil {
			return false
		}
		for _, tk := range s.Tasks {
			if h%tk.Period != 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUtilizationAndScale(t *testing.T) {
	s, err := NewSet([]Task{valid("a", 10), valid("b", 20)})
	if err != nil {
		t.Fatal(err)
	}
	// WCEC 10 each: U = 10·tc/10 + 10·tc/20 = 1.5·tc.
	if u := s.UtilizationAt(0.2); math.Abs(u-0.3) > 1e-12 {
		t.Errorf("U = %g, want 0.3", u)
	}
	s2, err := s.ScaleWCEC(2)
	if err != nil {
		t.Fatal(err)
	}
	if u := s2.UtilizationAt(0.2); math.Abs(u-0.6) > 1e-12 {
		t.Errorf("scaled U = %g, want 0.6", u)
	}
	// Scaling preserves ratios.
	if s2.Tasks[0].ACEC != 10 || s2.Tasks[0].BCEC != 2 {
		t.Errorf("scaled ACEC/BCEC = %g/%g", s2.Tasks[0].ACEC, s2.Tasks[0].BCEC)
	}
	if _, err := s.ScaleWCEC(0); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestWithRatio(t *testing.T) {
	s, err := NewSet([]Task{valid("a", 10)})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.WithRatio(0.3)
	if err != nil {
		t.Fatal(err)
	}
	tk := r.Tasks[0]
	if tk.BCEC != 3 || tk.ACEC != 6.5 {
		t.Errorf("ratio 0.3: BCEC=%g ACEC=%g", tk.BCEC, tk.ACEC)
	}
	if _, err := s.WithRatio(1.5); err == nil {
		t.Error("ratio > 1 accepted")
	}
}

func TestByName(t *testing.T) {
	s, _ := NewSet([]Task{valid("a", 10), valid("b", 20)})
	if s.ByName("b") == nil || s.ByName("b").Name != "b" {
		t.Error("ByName(b) failed")
	}
	if s.ByName("zzz") != nil {
		t.Error("ByName of missing task returned non-nil")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s, err := NewSet([]Task{valid("a", 40), valid("b", 10)})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Set
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != 2 || back.Tasks[0].Name != "b" {
		t.Errorf("round trip lost ordering: %+v", back.Tasks)
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var s Set
	if err := json.Unmarshal([]byte(`{"tasks":[{"name":"x","period_ms":-1,"wcec":1,"acec":1,"bcec":1,"ceff":1}]}`), &s); err == nil {
		t.Error("invalid JSON task accepted")
	}
}

func TestSetString(t *testing.T) {
	s, _ := NewSet([]Task{valid("a", 10)})
	if got := s.String(); !strings.Contains(got, "H=10ms") {
		t.Errorf("String() = %q", got)
	}
}
