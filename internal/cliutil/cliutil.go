// Package cliutil holds the small helpers the cmd/ front-ends share: task-set
// loading (file, stdin, or built-in) and flag-error exit conventions.
package cliutil

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/task"
	"repro/internal/workload"
)

// ErrUsage signals a flag-parse failure whose message the FlagSet has
// already printed; callers should exit 2 without printing anything more.
var ErrUsage = errors.New("usage")

// ParseFlags wraps fs.Parse with the classic flag exit conventions under
// ContinueOnError: -h/-help returns flag.ErrHelp (exit 0), any other parse
// error returns ErrUsage (message already printed by the FlagSet, exit 2).
func ParseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return flag.ErrHelp
		}
		return ErrUsage
	}
	return nil
}

// Exit terminates the process according to the error returned by a command's
// run function: nil exits 0, flag.ErrHelp exits 0 (usage already printed),
// ErrUsage exits 2, anything else prints "<name>: <err>" and exits 1.
func Exit(name string, err error) {
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
	case errors.Is(err, ErrUsage):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, name+":", err)
		os.Exit(1)
	}
}

// LoadSet resolves a task set from a built-in name, a JSON file, or stdin
// (in that precedence), the way every CLI front-end does.
func LoadSet(stdin io.Reader, in, builtin string, ratio, util float64) (*task.Set, error) {
	switch builtin {
	case "cnc":
		return workload.CNC(ratio, util, nil)
	case "gap":
		return workload.GAP(ratio, util, nil)
	case "motivation":
		return experiments.MotivationSet()
	case "":
	default:
		return nil, fmt.Errorf("unknown builtin %q (want cnc, gap, motivation)", builtin)
	}
	r := stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var set task.Set
	if err := json.NewDecoder(r).Decode(&set); err != nil {
		return nil, fmt.Errorf("parsing task set: %w", err)
	}
	return &set, nil
}
