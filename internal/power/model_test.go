package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func mustSimple(t *testing.T) *SimpleInverse {
	t.Helper()
	m, err := NewSimpleInverse(1, 0.7, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustAlpha(t *testing.T) *Alpha {
	t.Helper()
	m, err := NewAlpha(1, 0.5, 1.5, 0.8, 3.3)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSimpleInverseBasics(t *testing.T) {
	m := mustSimple(t)
	if tc := m.CycleTime(2); tc != 0.5 {
		t.Errorf("CycleTime(2) = %g, want 0.5", tc)
	}
	if v := m.VoltageForCycleTime(0.5); v != 2 {
		t.Errorf("VoltageForCycleTime(0.5) = %g, want 2", v)
	}
	if v := m.VoltageForCycleTime(100); v != 0.7 {
		t.Errorf("huge cycle time should clamp to Vmin, got %g", v)
	}
	if v := m.VoltageForCycleTime(1e-9); v != 4 {
		t.Errorf("tiny cycle time should clamp to Vmax, got %g", v)
	}
}

func TestSimpleInverseValidation(t *testing.T) {
	cases := []struct{ k, vmin, vmax float64 }{
		{0, 1, 2}, {-1, 1, 2}, {1, 0, 2}, {1, -1, 2}, {1, 3, 2},
	}
	for _, c := range cases {
		if _, err := NewSimpleInverse(c.k, c.vmin, c.vmax); err == nil {
			t.Errorf("NewSimpleInverse(%v) accepted", c)
		}
	}
}

func TestAlphaValidation(t *testing.T) {
	if _, err := NewAlpha(1, 0.5, 0.5, 0.8, 3.3); err == nil {
		t.Error("alpha < 1 accepted")
	}
	if _, err := NewAlpha(1, 0.5, 2.5, 0.8, 3.3); err == nil {
		t.Error("alpha > 2 accepted")
	}
	if _, err := NewAlpha(1, 0.9, 1.5, 0.8, 3.3); err == nil {
		t.Error("Vmin <= Vt accepted")
	}
	if _, err := NewAlpha(-1, 0.5, 1.5, 0.8, 3.3); err == nil {
		t.Error("negative K accepted")
	}
}

// TestCycleTimeMonotone: both models must be strictly decreasing in voltage
// over their range — the inverse is otherwise meaningless.
func TestCycleTimeMonotone(t *testing.T) {
	for _, m := range []Model{mustSimple(t), mustAlpha(t)} {
		prev := math.Inf(1)
		for v := m.VMin(); v <= m.VMax()+1e-9; v += (m.VMax() - m.VMin()) / 200 {
			tc := m.CycleTime(v)
			if tc >= prev {
				t.Fatalf("%T: CycleTime not strictly decreasing at v=%g", m, v)
			}
			prev = tc
		}
	}
}

// TestInverseRoundTrip: VoltageForCycleTime(CycleTime(v)) == v inside the
// range (property test over both models).
func TestInverseRoundTrip(t *testing.T) {
	rng := stats.NewRNG(2)
	for _, m := range []Model{mustSimple(t), mustAlpha(t)} {
		for i := 0; i < 500; i++ {
			v := rng.Uniform(m.VMin(), m.VMax())
			got := m.VoltageForCycleTime(m.CycleTime(v))
			if math.Abs(got-v) > 1e-6*v {
				t.Fatalf("%T: round trip %g -> %g", m, v, got)
			}
		}
	}
}

func TestVoltageForWindow(t *testing.T) {
	m := mustSimple(t)
	// 10 cycles in 5 ms needs V = 2 exactly.
	v, fits := VoltageForWindow(m, 10, 5)
	if !fits || math.Abs(v-2) > 1e-12 {
		t.Errorf("VoltageForWindow(10, 5) = %g fits=%v", v, fits)
	}
	// Zero work fits at Vmin.
	if v, fits := VoltageForWindow(m, 0, 5); !fits || v != m.VMin() {
		t.Errorf("zero work: v=%g fits=%v", v, fits)
	}
	// Impossible: 100 cycles in 1 ms needs V=100 > Vmax.
	if v, fits := VoltageForWindow(m, 100, 1); fits || v != m.VMax() {
		t.Errorf("overload should clamp to Vmax and not fit: v=%g fits=%v", v, fits)
	}
	// Non-positive window with work.
	if v, fits := VoltageForWindow(m, 1, 0); fits || v != m.VMax() {
		t.Errorf("zero window: v=%g fits=%v", v, fits)
	}
}

// TestVoltageForWindowFitsProperty: whenever fits is reported, the work must
// actually complete within the window at the returned voltage.
func TestVoltageForWindowFitsProperty(t *testing.T) {
	m := mustAlpha(t)
	rng := stats.NewRNG(77)
	if err := quick.Check(func(cRaw, wRaw uint16) bool {
		cycles := 0.01 + float64(cRaw%5000)/50
		window := 0.01 + float64(wRaw%5000)/50
		v, fits := VoltageForWindow(m, cycles, window)
		if v < m.VMin() || v > m.VMax() {
			return false
		}
		if fits {
			return cycles*m.CycleTime(v) <= window*(1+1e-6)
		}
		// Not fitting means even Vmax is too slow.
		return cycles*m.CycleTime(m.VMax()) > window*(1-1e-9)
	}, &quick.Config{MaxCount: 500, Rand: nil}); err != nil {
		t.Error(err)
	}
	_ = rng
}

// TestEnergyConvexity: for the inverse model, energy for fixed work over a
// window shrinks as the window grows — the monotonicity ACS exploits.
func TestEnergyConvexity(t *testing.T) {
	m := mustSimple(t)
	cycles := 20.0
	prev := math.Inf(1)
	for w := 5.0; w <= 30; w += 1 {
		v, _ := VoltageForWindow(m, cycles, w)
		e := Energy(1, v, cycles)
		if e > prev+1e-12 {
			t.Fatalf("energy increased when window grew to %g", w)
		}
		prev = e
	}
}

func TestEnergyQuadraticInVoltage(t *testing.T) {
	if e := Energy(2, 3, 10); e != 180 {
		t.Errorf("Energy(2,3,10) = %g, want 180", e)
	}
	if e := EnergyPerCycle(1.5, 2); e != 6 {
		t.Errorf("EnergyPerCycle(1.5,2) = %g, want 6", e)
	}
}

func TestExecTime(t *testing.T) {
	m := mustSimple(t)
	if d := ExecTime(m, 10, 2); d != 5 {
		t.Errorf("ExecTime(10, 2V) = %g, want 5", d)
	}
}

func TestDefaultModel(t *testing.T) {
	m := DefaultModel()
	if m.VMin() != 0.7 || m.VMax() != 4 {
		t.Errorf("DefaultModel range [%g, %g]", m.VMin(), m.VMax())
	}
}
