package power

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func mustDiscrete(t *testing.T, levels []float64) *Discrete {
	t.Helper()
	d, err := NewDiscrete(mustSimple(t), levels)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiscreteValidation(t *testing.T) {
	base := mustSimple(t)
	if _, err := NewDiscrete(base, nil); err == nil {
		t.Error("empty level set accepted")
	}
	if _, err := NewDiscrete(base, []float64{0.5}); err == nil {
		t.Error("level below base Vmin accepted")
	}
	if _, err := NewDiscrete(base, []float64{5}); err == nil {
		t.Error("level above base Vmax accepted")
	}
}

func TestDiscreteLevelsSortedDeduped(t *testing.T) {
	d := mustDiscrete(t, []float64{3, 1, 2, 2, 1})
	ls := d.Levels()
	want := []float64{1, 2, 3}
	if len(ls) != len(want) {
		t.Fatalf("levels %v", ls)
	}
	for i := range want {
		if ls[i] != want[i] {
			t.Fatalf("levels %v, want %v", ls, want)
		}
	}
	if d.VMin() != 1 || d.VMax() != 3 {
		t.Errorf("range [%g, %g]", d.VMin(), d.VMax())
	}
}

// TestDiscreteRoundsUp: quantisation must never slow execution below the
// requested rate — deadlines depend on it.
func TestDiscreteRoundsUp(t *testing.T) {
	d := mustDiscrete(t, []float64{1, 2, 3})
	rng := stats.NewRNG(5)
	for i := 0; i < 1000; i++ {
		tc := rng.Uniform(0.2, 2)
		v := d.VoltageForCycleTime(tc)
		if d.CycleTime(v) > tc*(1+1e-12) && v != d.VMax() {
			t.Fatalf("discrete voltage %g too slow for tc=%g", v, tc)
		}
		found := false
		for _, l := range d.Levels() {
			if l == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("returned non-level voltage %g", v)
		}
	}
}

func TestDiscreteExactLevelHit(t *testing.T) {
	d := mustDiscrete(t, []float64{1, 2, 3})
	// tc = 0.5 needs exactly V = 2 on the inverse model.
	if v := d.VoltageForCycleTime(0.5); v != 2 {
		t.Errorf("exact hit returned %g, want 2", v)
	}
}

func TestUniformLevels(t *testing.T) {
	base := mustSimple(t)
	ls, err := UniformLevels(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 4 || ls[0] != base.VMin() || ls[3] != base.VMax() {
		t.Errorf("levels %v", ls)
	}
	if _, err := UniformLevels(base, 0); err == nil {
		t.Error("zero levels accepted")
	}
	one, err := UniformLevels(base, 1)
	if err != nil || len(one) != 1 || one[0] != base.VMax() {
		t.Errorf("single level %v err=%v", one, err)
	}
}

// TestTwoLevelSplitExactness: the Ishihara–Yasuura split must finish the
// work exactly at the window boundary and cost no more than rounding up.
func TestTwoLevelSplitExactness(t *testing.T) {
	d := mustDiscrete(t, []float64{1, 2, 4})
	ceff, cycles, window := 1.0, 30.0, 20.0 // ideal V = 1.5
	vLo, vHi, cLo, energy := TwoLevelSplit(d, ceff, cycles, window)
	if vLo != 1 || vHi != 2 {
		t.Fatalf("split levels %g/%g, want 1/2", vLo, vHi)
	}
	dur := cLo*d.CycleTime(vLo) + (cycles-cLo)*d.CycleTime(vHi)
	if math.Abs(dur-window) > 1e-9 {
		t.Errorf("split duration %g, want %g", dur, window)
	}
	// Energy must not exceed running everything at the upper level, and
	// must be at least the continuous-ideal energy.
	if up := Energy(ceff, vHi, cycles); energy > up+1e-9 {
		t.Errorf("split energy %g worse than upper level %g", energy, up)
	}
	ideal := Energy(ceff, 1.5, cycles)
	if energy < ideal-1e-9 {
		t.Errorf("split energy %g beats the continuous ideal %g", energy, ideal)
	}
}

func TestTwoLevelSplitDegenerate(t *testing.T) {
	d := mustDiscrete(t, []float64{1, 2, 4})
	// Zero work.
	if _, _, c, e := TwoLevelSplit(d, 1, 0, 10); c != 0 || e != 0 {
		t.Errorf("zero work split: c=%g e=%g", c, e)
	}
	// Ideal above the top level: run flat out.
	vLo, vHi, cLo, _ := TwoLevelSplit(d, 1, 100, 1)
	if vLo != 4 || vHi != 4 || cLo != 100 {
		t.Errorf("overload split %g/%g c=%g", vLo, vHi, cLo)
	}
	// Ideal below the bottom level: single lowest level.
	vLo, vHi, _, _ = TwoLevelSplit(d, 1, 1, 100)
	if vLo != 1 || vHi != 1 {
		t.Errorf("underload split %g/%g", vLo, vHi)
	}
}
