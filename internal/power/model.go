// Package power implements the DVS processor timing and energy model of the
// paper (§2.2, equations (1)–(3)):
//
//   - cycle time as a function of supply voltage,
//   - dynamic energy E = Ceff · Vdd² per cycle,
//   - a continuous voltage range [Vmin, Vmax],
//
// plus extensions used by the ablation experiments: the alpha-power-law
// delay model, discrete voltage levels, and the Ishihara–Yasuura two-level
// split that recovers continuous-voltage energy on discrete hardware.
//
// Units: time in milliseconds, workload in cycles, voltage in volts. Energy
// is reported in Ceff·V²·cycles units; the experiments only ever report
// energy ratios, which are dimensionless.
package power

import (
	"fmt"
	"math"
)

// Model abstracts a DVS-capable processor: a monotone map between supply
// voltage and clock speed, bounded by [Vmin, Vmax].
type Model interface {
	// CycleTime returns the duration of one clock cycle (ms) at voltage v.
	// It must be strictly decreasing in v over [Vmin, Vmax].
	CycleTime(v float64) float64

	// VoltageForCycleTime returns the lowest voltage whose cycle time is at
	// most tc, clamped into [Vmin, Vmax]. It is the inverse of CycleTime up
	// to clamping.
	VoltageForCycleTime(tc float64) float64

	// VMin and VMax bound the usable supply voltage.
	VMin() float64
	VMax() float64
}

// EnergyPerCycle returns the dynamic switching energy of one cycle at
// voltage v for effective capacitance ceff: E = ceff · v² (paper eq. (3)).
func EnergyPerCycle(ceff, v float64) float64 { return ceff * v * v }

// Energy returns the dynamic energy of executing cycles cycles at voltage v.
func Energy(ceff, v, cycles float64) float64 { return ceff * v * v * cycles }

// VoltageForWindow returns the lowest feasible voltage at which cycles
// cycles complete within window ms on m, clamped to [VMin, VMax], together
// with whether the workload actually fits at that voltage (it may not if the
// clamp engaged at VMax). A non-positive window with positive work clamps to
// VMax and reports unfit; zero work fits at VMin trivially.
func VoltageForWindow(m Model, cycles, window float64) (v float64, fits bool) {
	if cycles <= 0 {
		return m.VMin(), true
	}
	if window <= 0 {
		return m.VMax(), false
	}
	v = m.VoltageForCycleTime(window / cycles)
	// After clamping, check the workload still fits within the window;
	// allow a hair of float slack so exact solutions round-trip.
	return v, cycles*m.CycleTime(v) <= window*(1+1e-9)
}

// ExecTime returns the execution time of cycles cycles at voltage v.
func ExecTime(m Model, cycles, v float64) float64 { return cycles * m.CycleTime(v) }

// SimpleInverse is the simplified model of the paper's motivational example:
// "the clock cycle time is inversely proportional to the supply voltage".
//
//	CycleTime(v) = K / v
//
// with K in ms·V per cycle. At v = 1 V, one cycle takes K ms.
type SimpleInverse struct {
	K    float64 // cycle time · voltage product (ms·V)
	Vmin float64
	Vmax float64
}

// NewSimpleInverse validates and returns a SimpleInverse model.
func NewSimpleInverse(k, vmin, vmax float64) (*SimpleInverse, error) {
	if k <= 0 {
		return nil, fmt.Errorf("power: SimpleInverse K must be positive, got %g", k)
	}
	if err := checkRange(vmin, vmax); err != nil {
		return nil, err
	}
	return &SimpleInverse{K: k, Vmin: vmin, Vmax: vmax}, nil
}

// CycleTime implements Model.
func (m *SimpleInverse) CycleTime(v float64) float64 { return m.K / v }

// VoltageForCycleTime implements Model.
func (m *SimpleInverse) VoltageForCycleTime(tc float64) float64 {
	if tc <= 0 {
		return m.Vmax
	}
	return clamp(m.K/tc, m.Vmin, m.Vmax)
}

// VMin implements Model.
func (m *SimpleInverse) VMin() float64 { return m.Vmin }

// VMax implements Model.
func (m *SimpleInverse) VMax() float64 { return m.Vmax }

// Alpha is the alpha-power-law delay model of paper eq. (1):
//
//	CycleTime(v) = K · v / (v − Vt)^α
//
// where Vt is the threshold voltage and α ∈ (1, 2] a process constant. It is
// strictly decreasing in v for v > Vt·α/(α−1)... in fact for all v > Vt when
// α ≥ 1, which NewAlpha enforces together with Vmin > Vt.
type Alpha struct {
	K    float64 // scale (ms·V^(α−1))
	Vt   float64 // threshold voltage (V)
	Aexp float64 // process constant α in [1, 2]
	Vmin float64
	Vmax float64
}

// NewAlpha validates and returns an Alpha model.
func NewAlpha(k, vt, alpha, vmin, vmax float64) (*Alpha, error) {
	if k <= 0 {
		return nil, fmt.Errorf("power: Alpha K must be positive, got %g", k)
	}
	if alpha < 1 || alpha > 2 {
		return nil, fmt.Errorf("power: Alpha exponent must lie in [1, 2], got %g", alpha)
	}
	if vt < 0 {
		return nil, fmt.Errorf("power: threshold voltage must be non-negative, got %g", vt)
	}
	if err := checkRange(vmin, vmax); err != nil {
		return nil, err
	}
	if vmin <= vt {
		return nil, fmt.Errorf("power: Vmin %g must exceed threshold voltage %g", vmin, vt)
	}
	m := &Alpha{K: k, Vt: vt, Aexp: alpha, Vmin: vmin, Vmax: vmax}
	return m, nil
}

// CycleTime implements Model.
func (m *Alpha) CycleTime(v float64) float64 {
	return m.K * v / math.Pow(v-m.Vt, m.Aexp)
}

// VoltageForCycleTime implements Model by bisection: CycleTime is strictly
// decreasing on [Vmin, Vmax] (checked in NewAlpha via the Vmin > Vt
// constraint and α ≥ 1), so the preimage is unique when it exists.
func (m *Alpha) VoltageForCycleTime(tc float64) float64 {
	if tc <= 0 {
		return m.Vmax
	}
	if m.CycleTime(m.Vmin) <= tc {
		return m.Vmin
	}
	if m.CycleTime(m.Vmax) >= tc {
		return m.Vmax
	}
	lo, hi := m.Vmin, m.Vmax
	for i := 0; i < 80; i++ {
		mid := 0.5 * (lo + hi)
		if m.CycleTime(mid) > tc {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi // hi is always feasible (CycleTime(hi) <= tc)
}

// VMin implements Model.
func (m *Alpha) VMin() float64 { return m.Vmin }

// VMax implements Model.
func (m *Alpha) VMax() float64 { return m.Vmax }

func checkRange(vmin, vmax float64) error {
	if vmin <= 0 {
		return fmt.Errorf("power: Vmin must be positive, got %g", vmin)
	}
	if vmax < vmin {
		return fmt.Errorf("power: Vmax %g must be at least Vmin %g", vmax, vmin)
	}
	return nil
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// DefaultModel returns the model used by the paper-replication experiments:
// the simplified inverse-proportional model with K = 1 ms·V per kilocycle
// equivalent (we measure workload directly in "cycles" where one cycle takes
// 1/v ms — the same normalisation the motivational example uses) and the
// motivational example's voltage range [0.7 V, 4 V].
func DefaultModel() Model {
	m, err := NewSimpleInverse(1.0, 0.7, 4.0)
	if err != nil {
		panic("power: DefaultModel construction cannot fail: " + err.Error())
	}
	return m
}
