package power

import (
	"fmt"
	"sort"
)

// Discrete wraps a continuous Model and restricts the usable voltages to a
// finite ascending level set, as real DVS processors do. VoltageForCycleTime
// rounds *up* to the next level so deadlines are never violated by
// quantisation. Used by the E8 ablation (continuous-voltage assumption).
type Discrete struct {
	base   Model
	levels []float64 // ascending, within [base.VMin(), base.VMax()]
}

// NewDiscrete returns a Discrete model over the given levels. Levels are
// sorted, deduplicated, and must all lie within the base model's range.
func NewDiscrete(base Model, levels []float64) (*Discrete, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("power: discrete model needs at least one level")
	}
	ls := append([]float64(nil), levels...)
	sort.Float64s(ls)
	out := ls[:1]
	for _, v := range ls[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	for _, v := range out {
		if v < base.VMin() || v > base.VMax() {
			return nil, fmt.Errorf("power: level %g V outside base range [%g, %g]",
				v, base.VMin(), base.VMax())
		}
	}
	return &Discrete{base: base, levels: out}, nil
}

// UniformLevels returns n voltage levels spread evenly over the base model's
// range, endpoints included.
func UniformLevels(base Model, n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("power: need at least one level, got %d", n)
	}
	if n == 1 {
		return []float64{base.VMax()}, nil
	}
	ls := make([]float64, n)
	for i := range ls {
		ls[i] = base.VMin() + (base.VMax()-base.VMin())*float64(i)/float64(n-1)
	}
	// Pin the endpoints exactly: accumulated rounding must not push the top
	// level outside the base range or below the true maximum speed.
	ls[0], ls[n-1] = base.VMin(), base.VMax()
	return ls, nil
}

// CycleTime implements Model by delegating to the base model; any voltage in
// the continuous range can still be queried (levels constrain only choices).
func (d *Discrete) CycleTime(v float64) float64 { return d.base.CycleTime(v) }

// VoltageForCycleTime implements Model: the lowest *level* whose cycle time
// is at most tc, or the top level if none suffices.
func (d *Discrete) VoltageForCycleTime(tc float64) float64 {
	cont := d.base.VoltageForCycleTime(tc)
	// Round up to the first level >= cont. Levels are ascending.
	i := sort.SearchFloat64s(d.levels, cont)
	if i >= len(d.levels) {
		return d.levels[len(d.levels)-1]
	}
	return d.levels[i]
}

// VMin implements Model: the lowest level.
func (d *Discrete) VMin() float64 { return d.levels[0] }

// VMax implements Model: the highest level.
func (d *Discrete) VMax() float64 { return d.levels[len(d.levels)-1] }

// Levels returns the ascending level set (a copy).
func (d *Discrete) Levels() []float64 { return append([]float64(nil), d.levels...) }

// Base returns the continuous model the levels quantise. Together with
// Levels it is the model's full identity, which the grid memo fingerprints.
func (d *Discrete) Base() Model { return d.base }

// TwoLevelSplit computes the Ishihara–Yasuura (ISLPED'98) optimal execution
// of a workload on a discrete-level processor: run c1 cycles at the level
// just below the ideal continuous voltage and cycles−c1 at the level just
// above, so the work finishes exactly at the window boundary. It returns the
// two levels, the cycle split, and the resulting energy. When the ideal
// voltage coincides with a level (or falls outside the level range) the
// split degenerates to a single level.
func TwoLevelSplit(d *Discrete, ceff, cycles, window float64) (vLo, vHi, cyclesAtLo, energy float64) {
	if cycles <= 0 {
		return d.VMin(), d.VMin(), 0, 0
	}
	ideal := d.base.VoltageForCycleTime(window / cycles)
	i := sort.SearchFloat64s(d.levels, ideal)
	switch {
	case i >= len(d.levels):
		// Even the top level is too slow: run flat out.
		v := d.levels[len(d.levels)-1]
		return v, v, cycles, Energy(ceff, v, cycles)
	case i == 0 || d.levels[i] == ideal:
		v := d.levels[i]
		return v, v, cycles, Energy(ceff, v, cycles)
	}
	vLo, vHi = d.levels[i-1], d.levels[i]
	tLo, tHi := d.base.CycleTime(vLo), d.base.CycleTime(vHi)
	// Solve c1·tLo + (cycles−c1)·tHi = window for c1, clamped to [0, cycles].
	c1 := (window - cycles*tHi) / (tLo - tHi)
	if c1 < 0 {
		c1 = 0
	}
	if c1 > cycles {
		c1 = cycles
	}
	energy = Energy(ceff, vLo, c1) + Energy(ceff, vHi, cycles-c1)
	return vLo, vHi, c1, energy
}
