package feedback

import (
	"context"
	"fmt"

	"repro/internal/sim"
)

// RunReplay drives the identical closed-loop cycle as RunClosedLoop, but
// over a recorded observation stream instead of a live scenario: rows is
// one per-instance actual-cycles row per hyper-period, in plan order (the
// trace.Stream format captured by schedd's observe sink or adaptsim
// -record). The horizon is len(rows). Because the controller's fold, the
// drift detector, and every re-solve are deterministic, replaying the
// same stream reproduces the same energies, swap points, and
// fingerprints bit-for-bit on any sim worker count and cache state —
// which is what lets a checked-in corpus pin adaptive-vs-static gains as
// regressions.
//
// simCfg's Policy, Overhead, Workers and Ctx apply to execution; Seed,
// Dist and Hyperperiods are ignored (the recorded rows replace them).
// ctx bounds re-solves.
func RunReplay(ctx context.Context, ctrl *Controller, rows [][]float64, chunk int, simCfg sim.Config) (*LoopResult, error) {
	horizon := len(rows)
	if horizon == 0 {
		return nil, fmt.Errorf("feedback: replay needs a non-empty observation stream")
	}
	if chunk <= 0 {
		chunk = 10
	}
	width := len(ctrl.TaskOf())
	for i, row := range rows {
		if len(row) != width {
			return nil, fmt.Errorf("feedback: replay row %d has %d instances, want %d", i, len(row), width)
		}
	}
	out := &LoopResult{Fingerprints: []string{ctrl.Fingerprint()}}
	for lo := 0; lo < horizon; lo += chunk {
		hi := lo + chunk
		if hi > horizon {
			hi = horizon
		}
		res, err := ctrl.Plan().RunActuals(simCfg, rows[lo:hi])
		if err != nil {
			return nil, err
		}
		out.Energy += res.Energy
		out.DeadlineMisses += res.DeadlineMisses
		out.Switches += res.Switches
		out.BusyTime += res.BusyTime
		d, err := ctrl.ObserveChunk(ctx, rows[lo:hi])
		if err != nil {
			return nil, err
		}
		if d.Resolved && hi < horizon {
			out.Fingerprints = append(out.Fingerprints, d.Fingerprint)
			out.SwapHyperperiods = append(out.SwapHyperperiods, int64(hi))
		}
	}
	out.Resolves = ctrl.Resolves()
	out.Drifts = ctrl.DriftsFired()
	return out, nil
}
