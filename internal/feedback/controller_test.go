package feedback

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

func loopSet(t *testing.T) *task.Set {
	t.Helper()
	rng := stats.NewRNG(1)
	set, err := workload.RandomFeasible(rng, workload.RandomConfig{N: 4, Ratio: 0.1, Utilization: 0.7}, 50,
		func(s *task.Set) bool { return core.Feasible(s, core.Config{}) == nil })
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func runLoop(t *testing.T, set *task.Set, kind workload.ScenarioKind, memo *grid.Memo, simWorkers int) *LoopResult {
	t.Helper()
	sc, err := workload.NewScenario(set, workload.ScenarioConfig{Kind: kind, Seed: 3, SwitchEvery: 80, DriftOver: 160})
	if err != nil {
		t.Fatal(err)
	}
	// Vary the grid pool width alongside the sim worker count: neither may
	// influence a single byte of the loop result.
	ctrl, err := NewController(context.Background(), set, Options{Runner: grid.New(1+simWorkers%4, memo)})
	if err != nil {
		t.Fatal(err)
	}
	lr, err := RunClosedLoop(context.Background(), ctrl, sc, 240, 10,
		sim.Config{Policy: sim.Greedy, Workers: simWorkers})
	if err != nil {
		t.Fatal(err)
	}
	return lr
}

// TestClosedLoopDeterminism is the subsystem's headline contract: for fixed
// seeds the whole adaptive run — total energy, drift firings, the re-solve
// points chosen by the detector, every fingerprint that executed — is
// byte-identical across sim worker counts and cache on/off. Run in CI under
// -race.
func TestClosedLoopDeterminism(t *testing.T) {
	set := loopSet(t)
	ref := runLoop(t, set, workload.ModeSwitch, grid.NewMemo(), 1)
	if ref.Resolves == 0 {
		t.Fatal("mode switch triggered no re-solves — the determinism check would be vacuous")
	}
	for _, workers := range []int{2, 8} {
		if got := runLoop(t, set, workload.ModeSwitch, grid.NewMemo(), workers); !reflect.DeepEqual(got, ref) {
			t.Errorf("SimWorkers=%d loop differs from serial:\n%+v\nvs\n%+v", workers, got, ref)
		}
	}
	// Cache off entirely, and a shared warm cache, both reproduce the bytes.
	if got := runLoop(t, set, workload.ModeSwitch, nil, 2); !reflect.DeepEqual(got, ref) {
		t.Errorf("cache-off loop differs:\n%+v\nvs\n%+v", got, ref)
	}
	warm := grid.NewMemo()
	runLoop(t, set, workload.ModeSwitch, warm, 1)
	if got := runLoop(t, set, workload.ModeSwitch, warm, 4); !reflect.DeepEqual(got, ref) {
		t.Errorf("warm-cache loop differs:\n%+v\nvs\n%+v", got, ref)
	}
}

// TestClosedLoopStationaryMatchesStatic: under the stated model no drift
// fires, no re-solve happens, and the adaptive run's execution equals the
// static schedule's run on the same stream exactly.
func TestClosedLoopStationaryMatchesStatic(t *testing.T) {
	set := loopSet(t)
	sc, err := workload.NewScenario(set, workload.ScenarioConfig{Kind: workload.Stationary, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(context.Background(), set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	staticPlan := ctrl.Plan()
	rows, err := sc.Actuals(240, ctrl.TaskOf())
	if err != nil {
		t.Fatal(err)
	}
	// Execute the static arm with the loop's own chunking so the energy
	// comparison is exact (chunked summation associates floats per chunk).
	var staticEnergy float64
	for lo := 0; lo < len(rows); lo += 10 {
		r, err := staticPlan.RunActuals(sim.Config{Policy: sim.Greedy}, rows[lo:lo+10])
		if err != nil {
			t.Fatal(err)
		}
		staticEnergy += r.Energy
	}
	lr, err := RunClosedLoop(context.Background(), ctrl, sc, 240, 10, sim.Config{Policy: sim.Greedy})
	if err != nil {
		t.Fatal(err)
	}
	if lr.Resolves != 0 || lr.Drifts != 0 {
		t.Errorf("stationary run re-solved %d times (%d drifts) — false positives", lr.Resolves, lr.Drifts)
	}
	if lr.Energy != staticEnergy {
		t.Errorf("stationary adaptive energy %g differs from static %g", lr.Energy, staticEnergy)
	}
	if lr.DeadlineMisses != 0 {
		t.Errorf("%d deadline misses", lr.DeadlineMisses)
	}
	if ctrl.Observed() != 240 {
		t.Errorf("observed %d hyper-periods, want 240", ctrl.Observed())
	}
}

// TestClosedLoopAdaptiveBeatsStatic: on nonstationary scenarios the adaptive
// loop re-solves and lands strictly below the static schedule's energy on
// the identical workload stream, with no deadline misses (adaptation never
// touches the worst-case model).
func TestClosedLoopAdaptiveBeatsStatic(t *testing.T) {
	set := loopSet(t)
	for _, kind := range []workload.ScenarioKind{workload.ModeSwitch, workload.DriftingMean} {
		sc, err := workload.NewScenario(set, workload.ScenarioConfig{Kind: kind, Seed: 3, SwitchEvery: 80, DriftOver: 160})
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := NewController(context.Background(), set, Options{})
		if err != nil {
			t.Fatal(err)
		}
		staticPlan := ctrl.Plan()
		rows, err := sc.Actuals(240, ctrl.TaskOf())
		if err != nil {
			t.Fatal(err)
		}
		rs, err := staticPlan.RunActuals(sim.Config{Policy: sim.Greedy}, rows)
		if err != nil {
			t.Fatal(err)
		}
		lr, err := RunClosedLoop(context.Background(), ctrl, sc, 240, 10, sim.Config{Policy: sim.Greedy})
		if err != nil {
			t.Fatal(err)
		}
		if lr.Resolves == 0 {
			t.Errorf("%v: no re-solves — drift never detected", kind)
		}
		if lr.Energy >= rs.Energy {
			t.Errorf("%v: adaptive energy %g not below static %g", kind, lr.Energy, rs.Energy)
		}
		if lr.DeadlineMisses != 0 {
			t.Errorf("%v: %d deadline misses", kind, lr.DeadlineMisses)
		}
		if len(lr.Fingerprints) != int(lr.Resolves)+1 {
			t.Errorf("%v: %d fingerprints for %d resolves", kind, len(lr.Fingerprints), lr.Resolves)
		}
		for i := 1; i < len(lr.Fingerprints); i++ {
			if lr.Fingerprints[i] == lr.Fingerprints[0] && lr.Fingerprints[i] != "" {
				// A later regime may legitimately re-learn the base model,
				// but the first adaptation must move the schedule.
				if i == 1 {
					t.Errorf("%v: first re-solve produced the initial fingerprint", kind)
				}
			}
		}
	}
}

// TestObserveChunkingTransparent: the same observation stream fed in chunks
// of 1, 7 and 240 produces identical drift points, fingerprints and final
// estimator state — chunk boundaries are invisible to the controller.
func TestObserveChunkingTransparent(t *testing.T) {
	set := loopSet(t)
	sc, err := workload.NewScenario(set, workload.ScenarioConfig{Kind: workload.ModeSwitch, Seed: 5, SwitchEvery: 60})
	if err != nil {
		t.Fatal(err)
	}
	memo := grid.NewMemo()
	mk := func() *Controller {
		c, err := NewController(context.Background(), set, Options{Runner: grid.New(1, memo)})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	first := mk()
	rows, err := sc.Actuals(150, first.TaskOf())
	if err != nil {
		t.Fatal(err)
	}
	type trace struct {
		Swaps        []int64
		Fingerprint  string
		Resolves     int64
		Drifts       int64
		LifeMean     []float64
		LastStat     float64
		ObservedHyps int64
	}
	observe := func(ctrl *Controller, chunk int) trace {
		for lo := 0; lo < len(rows); lo += chunk {
			hi := lo + chunk
			if hi > len(rows) {
				hi = len(rows)
			}
			if _, err := ctrl.ObserveChunk(context.Background(), rows[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		tr := trace{
			Swaps:        ctrl.ResolveHyperperiods(),
			Fingerprint:  ctrl.Fingerprint(),
			Resolves:     ctrl.Resolves(),
			Drifts:       ctrl.DriftsFired(),
			LastStat:     ctrl.LastStatistic(),
			ObservedHyps: ctrl.Observed(),
		}
		for i := 0; i < set.N(); i++ {
			tr.LifeMean = append(tr.LifeMean, ctrl.Lifetime().Task(i).Mean())
		}
		return tr
	}
	ref := observe(first, 1)
	if ref.Resolves == 0 {
		t.Fatal("no re-solves — chunking transparency would be vacuous")
	}
	for _, chunk := range []int{7, len(rows)} {
		if got := observe(mk(), chunk); !reflect.DeepEqual(got, ref) {
			t.Errorf("chunk=%d trace differs:\n%+v\nvs\n%+v", chunk, got, ref)
		}
	}
}

func TestControllerValidation(t *testing.T) {
	if _, err := NewController(context.Background(), nil, Options{}); err == nil {
		t.Error("nil set accepted")
	}
	set := loopSet(t)
	ctrl, err := NewController(context.Background(), set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.ObserveChunk(context.Background(), [][]float64{make([]float64, len(ctrl.TaskOf())+2)}); err == nil {
		t.Error("wrong-width observation accepted")
	}
	if ctrl.Fingerprint() == "" {
		t.Error("default-model schedule has no fingerprint")
	}
	if ctrl.State() != Tracking {
		t.Error("fresh controller not tracking")
	}
	if got := Tracking.String() + Relearning.String(); got != "trackingrelearning" {
		t.Errorf("state names: %q", got)
	}
	if _, err := RunClosedLoop(context.Background(), ctrl, nil, 0, 1, sim.Config{}); err == nil {
		t.Error("non-positive horizon accepted")
	}
}
