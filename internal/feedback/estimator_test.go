package feedback

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

func testSet(t *testing.T) *task.Set {
	t.Helper()
	rng := stats.NewRNG(5)
	set, err := workload.Random(rng, workload.RandomConfig{N: 3, Ratio: 0.25, Utilization: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestTaskEstimatorMoments(t *testing.T) {
	e, err := NewTaskEstimator(0, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	var xs []float64
	for i := 0; i < 500; i++ {
		x := rng.Uniform(0, 10)
		xs = append(xs, x)
		e.Observe(x)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	mn, mx := xs[0], xs[0]
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
		mn = math.Min(mn, x)
		mx = math.Max(mx, x)
	}
	if math.Abs(e.Mean()-mean) > 1e-9 {
		t.Errorf("mean %g, want %g", e.Mean(), mean)
	}
	if math.Abs(e.Variance()-ss/float64(len(xs))) > 1e-9 {
		t.Errorf("variance %g, want %g", e.Variance(), ss/float64(len(xs)))
	}
	if e.Min() != mn || e.Max() != mx {
		t.Errorf("min/max (%g, %g), want (%g, %g)", e.Min(), e.Max(), mn, mx)
	}
	if e.Count() != 500 {
		t.Errorf("count %d, want 500", e.Count())
	}
	var total int64
	for _, n := range e.Histogram() {
		total += n
	}
	if total != 500 {
		t.Errorf("histogram total %d, want 500", total)
	}
	// Uniform data: the histogram median sits near the support midpoint.
	if q := e.Quantile(0.5); math.Abs(q-5) > 0.7 {
		t.Errorf("median %g, want ≈5", q)
	}
	if e.Quantile(0) < 0 || e.Quantile(1) > 10 {
		t.Error("quantiles escaped the support")
	}
}

// TestTaskEstimatorMerge: merging block summaries reproduces the single-pass
// fold — counts, extremes and histogram exactly, moments to float tolerance.
func TestTaskEstimatorMerge(t *testing.T) {
	mk := func() *TaskEstimator {
		e, err := NewTaskEstimator(2, 8, 12)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	whole, a, b := mk(), mk(), mk()
	rng := stats.NewRNG(3)
	for i := 0; i < 300; i++ {
		x := rng.TruncNormal(5, 1, 2, 8)
		whole.Observe(x)
		if i < 130 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != whole.Count() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Error("merge broke count/min/max")
	}
	if !reflect.DeepEqual(a.Histogram(), whole.Histogram()) {
		t.Error("merge broke the histogram")
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9 || math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
		t.Errorf("merge moments (%g, %g) differ from single-pass (%g, %g)",
			a.Mean(), a.Variance(), whole.Mean(), whole.Variance())
	}
	// Merging into an empty estimator copies; mismatched shapes are refused.
	empty := mk()
	if err := empty.Merge(whole); err != nil {
		t.Fatal(err)
	}
	if empty.Count() != whole.Count() || empty.Mean() != whole.Mean() {
		t.Error("merge into empty did not copy")
	}
	other, err := NewTaskEstimator(0, 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := whole.Merge(other); err == nil {
		t.Error("mismatched supports merged")
	}
	whole.Reset()
	if whole.Count() != 0 || whole.Mean() != 0 {
		t.Error("reset left state behind")
	}
}

func TestSetEstimatorAdaptedSet(t *testing.T) {
	set := testSet(t)
	se, err := NewSetEstimator(set, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Feed task 0 heavily toward BCEC; leave task 2 under-observed.
	taskOf := []int{0, 0, 1}
	for i := 0; i < 20; i++ {
		if err := se.ObserveInstances(taskOf, []float64{
			set.Tasks[0].BCEC, set.Tasks[0].BCEC, set.Tasks[1].WCEC,
		}); err != nil {
			t.Fatal(err)
		}
	}
	adapted, err := se.AdaptedSet(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := adapted.Tasks[0].ACEC; got != set.Tasks[0].BCEC {
		t.Errorf("task 0 adapted ACEC %g, want BCEC %g", got, set.Tasks[0].BCEC)
	}
	if got := adapted.Tasks[1].ACEC; got != set.Tasks[1].WCEC {
		t.Errorf("task 1 adapted ACEC %g, want WCEC %g", got, set.Tasks[1].WCEC)
	}
	if got := adapted.Tasks[2].ACEC; got != set.Tasks[2].ACEC {
		t.Errorf("unobserved task 2 moved its ACEC to %g", got)
	}
	if adapted.Tasks[0].WCEC != set.Tasks[0].WCEC || adapted.Tasks[0].BCEC != set.Tasks[0].BCEC {
		t.Error("adaptation touched the worst/best-case model")
	}
	if err := se.ObserveInstances([]int{0}, []float64{1, 2}); err == nil {
		t.Error("mismatched observation row accepted")
	}
	if err := se.ObserveInstances([]int{9}, []float64{1}); err == nil {
		t.Error("out-of-range task accepted")
	}
}
