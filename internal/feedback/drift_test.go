package feedback

import (
	"testing"

	"repro/internal/stats"
)

// TestPageHinkleyStationaryNoFire: standardized unit noise around a constant
// mean never fires — the false-positive half of the pinned regression. The
// stream is seeded, so this is a fixed sequence, not a probabilistic claim.
func TestPageHinkleyStationaryNoFire(t *testing.T) {
	d, err := NewPageHinkley(DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(11)
	for i := 0; i < 5000; i++ {
		if d.Add(rng.Normal(0, 1)) {
			t.Fatalf("false positive at sample %d", i)
		}
	}
}

// TestPageHinkleyDetectsShifts: a mean shift in either direction fires, and
// the detection index is pinned for the seeded stream — any change to the
// detector's arithmetic shows up as a moved re-solve point. The stream is
// standardized (unit noise); the shift is a 4σ regime change, the size a
// ModeSwitch between mean fractions induces on the controller's statistic.
func TestPageHinkleyDetectsShifts(t *testing.T) {
	cases := []struct {
		name   string
		shift  float64
		fireAt int // pinned detection sample for seed 7, shift at 300
	}{
		{"down", -4, 304},
		{"up", +4, 302},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := NewPageHinkley(DriftConfig{})
			if err != nil {
				t.Fatal(err)
			}
			rng := stats.NewRNG(7)
			fired := -1
			for i := 0; i < 400; i++ {
				x := rng.Normal(0, 1)
				if i >= 300 {
					x += tc.shift
				}
				if d.Add(x) {
					fired = i
					break
				}
			}
			if fired < 0 {
				t.Fatal("shift never detected")
			}
			if fired < 300 {
				t.Fatalf("fired at %d, before the shift", fired)
			}
			if fired != tc.fireAt {
				t.Errorf("fired at sample %d, pinned %d — detector arithmetic changed", fired, tc.fireAt)
			}
		})
	}
}

// TestPageHinkleyMinSamples: no firing before MinSamples even under a
// blatant shift, and Reset restarts the warm-up.
func TestPageHinkleyMinSamples(t *testing.T) {
	d, err := NewPageHinkley(DriftConfig{MinSamples: 10, Lambda: 0.01, Delta: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		x := 1.0
		if i >= 4 {
			x = 5.0
		}
		if d.Add(x) {
			t.Fatalf("fired at sample %d < MinSamples", i)
		}
	}
	if !d.Add(5.0) {
		t.Error("did not fire once MinSamples reached")
	}
	d.Reset()
	if d.Samples() != 0 {
		t.Error("reset kept samples")
	}
	if up, down := d.Evidence(); up != 0 || down != 0 {
		t.Error("reset kept evidence")
	}
	if d.Add(100) {
		t.Error("fired immediately after reset")
	}
}

func TestDriftConfigValidation(t *testing.T) {
	if _, err := NewPageHinkley(DriftConfig{Lambda: -2}); err == nil {
		t.Error("negative Lambda accepted")
	}
	// A negative Delta requests an exact zero dead-band (pure CUSUM): with
	// no dead-band, constant unit deviations accumulate at full rate.
	d, err := NewPageHinkley(DriftConfig{Delta: -1, Lambda: 3, MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	fired := -1
	for i := 0; i < 20; i++ {
		if d.Add(float64(i)) {
			fired = i
			break
		}
	}
	if fired < 0 || fired > 5 {
		t.Errorf("zero dead-band detector fired at %d, want within the first few samples", fired)
	}
}
