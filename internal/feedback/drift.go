package feedback

import "fmt"

// Drift detection (DESIGN.md §8): a two-sided Page–Hinkley test over a
// scalar per-hyper-period statistic — here the ratio of observed total work
// to the work the solved model predicts. The test is a pure fold of the
// input sequence (no randomness, no timing), so for a fixed observation
// stream the hyper-period at which drift fires is a constant: the property
// the closed-loop determinism contract leans on.

// DriftConfig parameterises the Page–Hinkley detector. The defaults are
// chosen for *standardized* inputs — the controller feeds the test
// z = (observed/predicted − 1)/σ̂, where σ̂ is the per-hyper-period noise the
// solved model predicts — so one set of thresholds works for every task set,
// whatever its BCEC/WCEC span.
type DriftConfig struct {
	// Delta is the deviation dead-band in standardized units (default 1):
	// evidence accumulates only from deviations beyond one predicted noise
	// σ, so stationary noise cancels (a clamped CUSUM's false-positive
	// rate falls like exp(−2·Delta·Lambda) — the defaults put it around
	// e⁻²⁴ per excursion). Zero selects the default; a negative value
	// requests an exact zero dead-band (pure CUSUM).
	Delta float64
	// Lambda is the accumulated-evidence threshold at which drift fires
	// (default 12 standardized units: a 4σ regime change — what a mode
	// switch between mean fractions induces — fires in about four
	// hyper-periods).
	Lambda float64
	// MinSamples is the minimum number of inputs before the test may fire
	// (default 12), so the running mean settles before it is trusted.
	MinSamples int
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Delta == 0 {
		c.Delta = 1
	} else if c.Delta < 0 {
		c.Delta = 0 // explicit zero dead-band
	}
	if c.Lambda == 0 {
		c.Lambda = 12
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 12
	}
	return c
}

func (c DriftConfig) validate() error {
	if c.Delta < 0 || c.Lambda <= 0 {
		return fmt.Errorf("feedback: drift config needs Delta ≥ 0 and Lambda > 0 (got %g, %g)", c.Delta, c.Lambda)
	}
	return nil
}

// PageHinkley is the two-sided Page–Hinkley state: cumulative deviations of
// the input from its running mean, one accumulator per direction, each
// clamped at zero (CUSUM form). Construct with NewPageHinkley.
type PageHinkley struct {
	cfg  DriftConfig
	n    int64
	mean float64
	up   float64 // evidence the mean shifted up
	down float64 // evidence the mean shifted down
}

// NewPageHinkley returns a detector with defaults applied.
func NewPageHinkley(cfg DriftConfig) (*PageHinkley, error) {
	c := cfg.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	return &PageHinkley{cfg: c}, nil
}

// Add folds one statistic into the test and reports whether drift fired on
// this input. After a detection the caller decides what to do; the detector
// keeps accumulating until Reset.
func (d *PageHinkley) Add(x float64) bool {
	d.n++
	d.mean += (x - d.mean) / float64(d.n)
	d.up += x - d.mean - d.cfg.Delta
	if d.up < 0 {
		d.up = 0
	}
	d.down += d.mean - x - d.cfg.Delta
	if d.down < 0 {
		d.down = 0
	}
	if d.n < int64(d.cfg.MinSamples) {
		return false
	}
	return d.up > d.cfg.Lambda || d.down > d.cfg.Lambda
}

// Evidence returns the current accumulated evidence per direction.
func (d *PageHinkley) Evidence() (up, down float64) { return d.up, d.down }

// Samples returns the number of inputs folded since the last Reset.
func (d *PageHinkley) Samples() int64 { return d.n }

// Reset clears all state (running mean and both accumulators).
func (d *PageHinkley) Reset() {
	d.n, d.mean, d.up, d.down = 0, 0, 0, 0
}
