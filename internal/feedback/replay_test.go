package feedback

import (
	"context"
	"os"
	"testing"

	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/trace"
)

// loadCorpus reads the checked-in recorded observation stream (generated
// once with `adaptsim -record -scenarios modeswitch -horizon 160 -n 4
// -seed 1` and committed under testdata/).
func loadCorpus(t *testing.T) (*trace.Stream, *task.Set) {
	t.Helper()
	f, err := os.Open("testdata/modeswitch.trace")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := trace.ReadStream(f)
	if err != nil {
		t.Fatalf("corpus is not a valid stream: %v", err)
	}
	set, err := task.NewSet(s.Tasks)
	if err != nil {
		t.Fatalf("corpus task set: %v", err)
	}
	return s, set
}

func replayCorpus(t *testing.T, s *trace.Stream, set *task.Set, workers, simWorkers int) (*LoopResult, float64) {
	t.Helper()
	ctx := context.Background()
	runner := grid.New(workers, grid.NewMemo())
	ctrl, err := NewController(ctx, set, Options{Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	if len(ctrl.TaskOf()) != s.Instances {
		t.Fatalf("plan has %d instances, corpus %d", len(ctrl.TaskOf()), s.Instances)
	}
	simCfg := sim.Config{Policy: sim.Greedy, Workers: simWorkers}
	var static float64
	plan := ctrl.Plan()
	for lo := 0; lo < len(s.Rows); lo += 10 {
		hi := min(lo+10, len(s.Rows))
		r, err := plan.RunActuals(simCfg, s.Rows[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		static += r.Energy
	}
	lr, err := RunReplay(ctx, ctrl, s.Rows, 10, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	return lr, static
}

// TestReplayCorpusPinsAdaptiveGain is the closed capture/replay loop as a
// regression: the committed mode-switch recording must keep adapting —
// drift detected, one re-solve, plan swapped at the recorded boundary —
// and must keep beating the static schedule by a healthy margin. The
// floor (10%) sits under the recorded 12.9% with room for legitimate
// estimator tuning, but a regression that stops the controller adapting
// (0%) or breaks the solver fails loudly.
func TestReplayCorpusPinsAdaptiveGain(t *testing.T) {
	s, set := loadCorpus(t)
	if len(s.Rows) != 160 || set.N() != 4 {
		t.Fatalf("corpus shape drifted: %d rows, %d tasks (want 160, 4)", len(s.Rows), set.N())
	}
	lr, static := replayCorpus(t, s, set, 0, 0)

	if lr.DeadlineMisses != 0 {
		t.Fatalf("replay missed %d deadlines — an adapted schedule is invalid", lr.DeadlineMisses)
	}
	if lr.Drifts != 1 || lr.Resolves != 1 {
		t.Errorf("corpus replay fired drifts=%d resolves=%d, want 1/1", lr.Drifts, lr.Resolves)
	}
	if len(lr.SwapHyperperiods) != 1 || lr.SwapHyperperiods[0] != 100 {
		t.Errorf("plan swaps at %v, want [100]", lr.SwapHyperperiods)
	}
	if len(lr.Fingerprints) != 2 || lr.Fingerprints[0] == lr.Fingerprints[1] {
		t.Errorf("fingerprint trail %v, want initial + one distinct adapted", lr.Fingerprints)
	}
	if static <= 0 || lr.Energy <= 0 {
		t.Fatalf("degenerate energies: static=%v adaptive=%v", static, lr.Energy)
	}
	gain := 100 * (static - lr.Energy) / static
	if gain < 10 {
		t.Errorf("adaptive gain over static = %.2f%%, want >= 10%% (corpus recorded 12.9%%)", gain)
	}
}

// TestReplayDeterministicAcrossWorkers pins the replay determinism
// contract bit-for-bit: solver worker count and sim worker count must not
// change a single output of a replay.
func TestReplayDeterministicAcrossWorkers(t *testing.T) {
	s, set := loadCorpus(t)
	ref, refStatic := replayCorpus(t, s, set, 1, 1)
	for _, w := range []struct{ workers, simWorkers int }{{2, 3}, {4, 2}} {
		lr, static := replayCorpus(t, s, set, w.workers, w.simWorkers)
		if lr.Energy != ref.Energy || static != refStatic {
			t.Errorf("workers=%v: energy %v/%v, want %v/%v (bit-identical)",
				w, lr.Energy, static, ref.Energy, refStatic)
		}
		if lr.Resolves != ref.Resolves || lr.Drifts != ref.Drifts {
			t.Errorf("workers=%v: resolves/drifts %d/%d, want %d/%d",
				w, lr.Resolves, lr.Drifts, ref.Resolves, ref.Drifts)
		}
		if len(lr.Fingerprints) != len(ref.Fingerprints) {
			t.Errorf("workers=%v: %d fingerprints, want %d", w, len(lr.Fingerprints), len(ref.Fingerprints))
			continue
		}
		for i := range lr.Fingerprints {
			if lr.Fingerprints[i] != ref.Fingerprints[i] {
				t.Errorf("workers=%v: fingerprint %d = %s, want %s", w, i, lr.Fingerprints[i], ref.Fingerprints[i])
			}
		}
	}
}

// TestReplayRejectsBadInput covers the replay loader's guard rails.
func TestReplayRejectsBadInput(t *testing.T) {
	s, set := loadCorpus(t)
	ctx := context.Background()
	runner := grid.New(1, nil)
	ctrl, err := NewController(ctx, set, Options{Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunReplay(ctx, ctrl, nil, 10, sim.Config{Policy: sim.Greedy}); err == nil {
		t.Error("empty stream accepted")
	}
	bad := [][]float64{s.Rows[0][:len(s.Rows[0])-1]}
	if _, err := RunReplay(ctx, ctrl, bad, 10, sim.Config{Policy: sim.Greedy}); err == nil {
		t.Error("width-mismatched row accepted")
	}
}
