package feedback

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

// BenchmarkClosedLoop measures one full adaptive run over a mode-switching
// workload: scenario generation, chunked execution, observation folding,
// drift detection and the warm-started re-solves. Trajectory in
// BENCH_adapt.json; CI runs this at -benchtime 1x so the closed-loop harness
// cannot rot.
func BenchmarkClosedLoop(b *testing.B) {
	rng := stats.NewRNG(1)
	set, err := workload.RandomFeasible(rng, workload.RandomConfig{N: 4, Ratio: 0.1, Utilization: 0.7}, 50,
		func(s *task.Set) bool { return core.Feasible(s, core.Config{}) == nil })
	if err != nil {
		b.Fatal(err)
	}
	sc, err := workload.NewScenario(set, workload.ScenarioConfig{Kind: workload.ModeSwitch, Seed: 3, SwitchEvery: 80})
	if err != nil {
		b.Fatal(err)
	}
	memo := grid.NewMemo()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl, err := NewController(context.Background(), set, Options{Runner: grid.New(0, memo)})
		if err != nil {
			b.Fatal(err)
		}
		lr, err := RunClosedLoop(context.Background(), ctrl, sc, 320, 10, sim.Config{Policy: sim.Greedy})
		if err != nil {
			b.Fatal(err)
		}
		if lr.Resolves == 0 {
			b.Fatal("no adaptation happened — the benchmark is not exercising the loop")
		}
	}
}
