package feedback

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/grid"
	"repro/internal/workload"
)

// feedRows feeds rows one hyper-period at a time, returning the decisions.
func feedRows(t *testing.T, c *Controller, rows [][]float64) []Decision {
	t.Helper()
	out := make([]Decision, len(rows))
	for i, row := range rows {
		d, err := c.ObserveChunk(context.Background(), [][]float64{row})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = d
	}
	return out
}

// TestCheckpointRestoreContinuesIdentically is the warm-restart contract for
// adaptive sessions: a controller snapshotted at ANY hyper-period — before
// drift, mid-relearn, after a re-solve — then serialised through JSON and
// restored in a "fresh process" (new memo, new controller) continues the
// observation stream with the identical decisions, fingerprints, and final
// fold state as the uninterrupted original.
func TestCheckpointRestoreContinuesIdentically(t *testing.T) {
	set := loopSet(t)
	sc, err := workload.NewScenario(set, workload.ScenarioConfig{
		Kind: workload.ModeSwitch, Seed: 3, SwitchEvery: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Runner: grid.New(2, grid.NewMemo())}
	ref, err := NewController(context.Background(), set, opts)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sc.Actuals(120, ref.TaskOf())
	if err != nil {
		t.Fatal(err)
	}
	refDecisions := feedRows(t, ref, rows)
	refFinal := ref.Snapshot()

	// Locate the drift and re-solve points so the restore points cover every
	// phase: pre-drift, the hyper-period right after drift fired (freshly
	// relearning), mid-relearn, and post-re-solve.
	drift, resolve := -1, -1
	for i, d := range refDecisions {
		if d.Drift && drift < 0 {
			drift = i
		}
		if d.Resolved && resolve < 0 {
			resolve = i
		}
	}
	if drift < 0 || resolve < 0 {
		t.Fatalf("scenario fired no drift/re-solve (drift=%d resolve=%d) — restore coverage would be vacuous", drift, resolve)
	}
	points := []int{3, drift + 1, (drift + resolve) / 2, resolve + 4}

	coveredRelearning := false
	for _, k := range points {
		// Original process: observe the first k hyper-periods, snapshot, and
		// serialise the snapshot as the daemon's blob store would.
		orig, err := NewController(context.Background(), set, opts)
		if err != nil {
			t.Fatal(err)
		}
		feedRows(t, orig, rows[:k])
		blob, err := json.Marshal(orig.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		var st ControllerState
		if err := json.Unmarshal(blob, &st); err != nil {
			t.Fatal(err)
		}
		if State(st.State) == Relearning {
			coveredRelearning = true
		}
		// Fresh process: new options, new memo (cold cache — restore must not
		// depend on cache state), restore, continue the stream.
		restored, err := RestoreController(context.Background(), &st,
			Options{Runner: grid.New(1, grid.NewMemo())})
		if err != nil {
			t.Fatalf("restore at %d: %v", k, err)
		}
		if restored.Observed() != int64(k) || restored.Fingerprint() != refDecisions[k-1].Fingerprint {
			t.Fatalf("restore at %d resumed at observed=%d fp=%q", k, restored.Observed(), restored.Fingerprint())
		}
		got := feedRows(t, restored, rows[k:])
		if !reflect.DeepEqual(got, refDecisions[k:]) {
			t.Errorf("restore at %d: decision stream diverged from uninterrupted run", k)
		}
		if !reflect.DeepEqual(restored.Snapshot(), refFinal) {
			t.Errorf("restore at %d: final controller state diverged from uninterrupted run", k)
		}
	}
	if !coveredRelearning {
		t.Error("no restore point landed mid-relearn — coverage hole")
	}
}

// TestRestoreRejectsCorruptSnapshots: structurally damaged snapshots fail
// loudly instead of building a controller over garbage.
func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	set := loopSet(t)
	ctrl, err := NewController(context.Background(), set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	good := ctrl.Snapshot()
	damage := map[string]func(st *ControllerState){
		"nil":                 nil,
		"unknown state":       func(st *ControllerState) { st.State = 7 },
		"negative observed":   func(st *ControllerState) { st.Observed = -1 },
		"missing estimator":   func(st *ControllerState) { st.Life = st.Life[1:] },
		"empty support":       func(st *ControllerState) { st.Relearn[0].Hi = st.Relearn[0].Lo },
		"no bins":             func(st *ControllerState) { st.Life[0].Bins = nil },
		"empty base set":      func(st *ControllerState) { st.Base = nil },
		"model task mismatch": func(st *ControllerState) { st.Model = st.Model[1:] },
		"invalid model task":  func(st *ControllerState) { st.Model[0].WCEC = -1 },
	}
	for name, mutate := range damage {
		var st *ControllerState
		if mutate != nil {
			// Deep-copy through JSON so each case damages its own snapshot.
			blob, err := json.Marshal(good)
			if err != nil {
				t.Fatal(err)
			}
			st = new(ControllerState)
			if err := json.Unmarshal(blob, st); err != nil {
				t.Fatal(err)
			}
			mutate(st)
		}
		if _, err := RestoreController(context.Background(), st, Options{}); err == nil {
			t.Errorf("%s: restore accepted a damaged snapshot", name)
		}
	}
}
