// Package feedback closes the loop between the online runtime and the
// offline solver (DESIGN.md §8): bounded-memory streaming estimators learn
// each task's observed execution-cycle distribution from per-job
// observations, a deterministic drift detector decides when the learned
// distribution has diverged from the one the current schedule was solved
// against, and an adaptation controller rebuilds the task set's average-case
// model and triggers a warm-started ACS re-solve through the grid engine,
// hot-swapping the compiled plan at a hyper-period boundary.
//
// Everything in the package is deterministic: estimators and the drift
// detector are pure fold functions of the observation sequence, and the
// controller's re-solve points are a function of the observation history
// alone — never of worker count, cache state, or timing. That is what lets
// the closed loop inherit the repository-wide byte-determinism contract.
package feedback

import (
	"fmt"
	"math"

	"repro/internal/task"
)

// TaskEstimator is a bounded-memory streaming estimator of one task's actual
// execution cycles: online mean/variance (Welford), observed min/max, and a
// fixed-bin histogram over the task's [BCEC, WCEC] support. Memory is
// constant (the bin count is fixed at construction); updates are pure float
// folds of the observation order, so two estimators fed the same sequence
// are bit-identical; and estimators over equal supports merge associatively
// block-by-block (Chan et al.'s parallel variance combination).
type TaskEstimator struct {
	lo, hi float64
	count  int64
	mean   float64
	m2     float64 // Σ (x − mean)²: Welford's running sum of squared deviations
	min    float64
	max    float64
	bins   []int64
}

// NewTaskEstimator returns an estimator over the support [lo, hi] with the
// given histogram resolution (bins ≥ 1).
func NewTaskEstimator(lo, hi float64, bins int) (*TaskEstimator, error) {
	if !(hi > lo) {
		return nil, fmt.Errorf("feedback: estimator support [%g, %g] is empty", lo, hi)
	}
	if bins < 1 {
		return nil, fmt.Errorf("feedback: estimator needs at least one bin, got %d", bins)
	}
	return &TaskEstimator{lo: lo, hi: hi, bins: make([]int64, bins)}, nil
}

// Observe folds one execution-cycle observation into the estimator.
// Observations are clamped into the support for binning (the generators
// guarantee the support, but a defensive clamp keeps the histogram total
// equal to the count under any input).
func (e *TaskEstimator) Observe(x float64) {
	e.count++
	d := x - e.mean
	e.mean += d / float64(e.count)
	e.m2 += d * (x - e.mean)
	if e.count == 1 || x < e.min {
		e.min = x
	}
	if e.count == 1 || x > e.max {
		e.max = x
	}
	b := int(float64(len(e.bins)) * (x - e.lo) / (e.hi - e.lo))
	if b < 0 {
		b = 0
	}
	if b >= len(e.bins) {
		b = len(e.bins) - 1
	}
	e.bins[b]++
}

// Count returns the number of observations folded in.
func (e *TaskEstimator) Count() int64 { return e.count }

// Mean returns the streaming mean (0 before any observation).
func (e *TaskEstimator) Mean() float64 { return e.mean }

// Variance returns the (population) variance of the observations.
func (e *TaskEstimator) Variance() float64 {
	if e.count < 2 {
		return 0
	}
	return e.m2 / float64(e.count)
}

// Std returns the standard deviation.
func (e *TaskEstimator) Std() float64 { return math.Sqrt(e.Variance()) }

// Min and Max return the observed extremes (0 before any observation).
func (e *TaskEstimator) Min() float64 { return e.min }
func (e *TaskEstimator) Max() float64 { return e.max }

// Support returns the estimator's [lo, hi] support.
func (e *TaskEstimator) Support() (lo, hi float64) { return e.lo, e.hi }

// Histogram returns a copy of the bin counts.
func (e *TaskEstimator) Histogram() []int64 {
	return append([]int64(nil), e.bins...)
}

// Quantile returns the p-quantile estimated from the histogram (linear
// interpolation within the selected bin). It returns the support midpoint
// before any observation.
func (e *TaskEstimator) Quantile(p float64) float64 {
	if e.count == 0 {
		return 0.5 * (e.lo + e.hi)
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(e.count)
	var cum float64
	width := (e.hi - e.lo) / float64(len(e.bins))
	for b, n := range e.bins {
		next := cum + float64(n)
		if next >= target && n > 0 {
			frac := 0.0
			if n > 0 {
				frac = (target - cum) / float64(n)
			}
			return e.lo + (float64(b)+frac)*width
		}
		cum = next
	}
	return e.hi
}

// Merge folds o's observations into e as one block (Chan et al.): the result
// is a deterministic function of the two summaries and is exact for count,
// min/max, histogram and mean/m2 up to float association. Supports and bin
// counts must match.
func (e *TaskEstimator) Merge(o *TaskEstimator) error {
	if e.lo != o.lo || e.hi != o.hi || len(e.bins) != len(o.bins) {
		return fmt.Errorf("feedback: merging estimators with different supports or resolutions")
	}
	if o.count == 0 {
		return nil
	}
	if e.count == 0 {
		*e = TaskEstimator{lo: e.lo, hi: e.hi, count: o.count, mean: o.mean,
			m2: o.m2, min: o.min, max: o.max, bins: e.bins}
		copy(e.bins, o.bins)
		return nil
	}
	na, nb := float64(e.count), float64(o.count)
	d := o.mean - e.mean
	n := na + nb
	e.mean += d * nb / n
	e.m2 += o.m2 + d*d*na*nb/n
	e.count += o.count
	if o.min < e.min {
		e.min = o.min
	}
	if o.max > e.max {
		e.max = o.max
	}
	for b := range e.bins {
		e.bins[b] += o.bins[b]
	}
	return nil
}

// Reset drops every observation, keeping support and resolution.
func (e *TaskEstimator) Reset() {
	e.count, e.mean, e.m2, e.min, e.max = 0, 0, 0, 0, 0
	for b := range e.bins {
		e.bins[b] = 0
	}
}

// SetEstimator aggregates one TaskEstimator per task of a set, fed from
// per-instance observation rows in plan order.
type SetEstimator struct {
	set   *task.Set
	tasks []*TaskEstimator
}

// NewSetEstimator builds estimators over each task's [BCEC, WCEC] support.
// Tasks whose BCEC equals WCEC (no variation possible) get a degenerate
// ±0.5% support around the common value so binning stays well-defined.
func NewSetEstimator(set *task.Set, bins int) (*SetEstimator, error) {
	if set == nil || set.N() == 0 {
		return nil, fmt.Errorf("feedback: estimator needs a non-empty task set")
	}
	se := &SetEstimator{set: set, tasks: make([]*TaskEstimator, set.N())}
	for i := range se.tasks {
		t := &set.Tasks[i]
		lo, hi := t.BCEC, t.WCEC
		if !(hi > lo) {
			lo, hi = 0.995*t.WCEC, 1.005*t.WCEC
		}
		e, err := NewTaskEstimator(lo, hi, bins)
		if err != nil {
			return nil, fmt.Errorf("feedback: task %q: %w", t.Name, err)
		}
		se.tasks[i] = e
	}
	return se, nil
}

// Task returns task i's estimator.
func (se *SetEstimator) Task(i int) *TaskEstimator { return se.tasks[i] }

// ObserveInstances folds one hyper-period's per-instance observations:
// taskOf[i] is the owning task of instance i (the preemptive plan's
// Instances order), actual[i] its observed cycles.
func (se *SetEstimator) ObserveInstances(taskOf []int, actual []float64) error {
	if len(taskOf) != len(actual) {
		return fmt.Errorf("feedback: %d instances but %d observations", len(taskOf), len(actual))
	}
	for i, t := range taskOf {
		if t < 0 || t >= len(se.tasks) {
			return fmt.Errorf("feedback: instance %d names task %d of %d", i, t, len(se.tasks))
		}
		se.tasks[t].Observe(actual[i])
	}
	return nil
}

// Merge folds o's per-task estimators into se block-by-block.
func (se *SetEstimator) Merge(o *SetEstimator) error {
	if len(se.tasks) != len(o.tasks) {
		return fmt.Errorf("feedback: merging estimators over different task counts")
	}
	for i := range se.tasks {
		if err := se.tasks[i].Merge(o.tasks[i]); err != nil {
			return err
		}
	}
	return nil
}

// Reset drops all observations.
func (se *SetEstimator) Reset() {
	for _, e := range se.tasks {
		e.Reset()
	}
}

// AdaptedSet returns a copy of the base set whose ACEC is each task's
// estimated mean clamped into [BCEC, WCEC] — the average-case model a
// re-solve runs against. Tasks with fewer than minCount observations keep
// their stated ACEC (too little evidence to move the model).
func (se *SetEstimator) AdaptedSet(minCount int64) (*task.Set, error) {
	ts := append([]task.Task(nil), se.set.Tasks...)
	for i := range ts {
		e := se.tasks[i]
		if e.count < minCount {
			continue
		}
		ts[i].ACEC = math.Min(ts[i].WCEC, math.Max(ts[i].BCEC, e.mean))
	}
	return task.NewSet(ts)
}
