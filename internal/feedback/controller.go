package feedback

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/task"
)

// Options configures a Controller.
type Options struct {
	// Runner supplies the solve/compile path. All re-solves flow through it,
	// so a memoized runner makes revisited regimes (a mode switch returning
	// to a previously-learned workload) cache hits. nil constructs a private
	// unmemoized runner — semantically identical, never cached.
	Runner *grid.Runner
	// Solver is the base solver configuration. Objective and WarmStart are
	// managed by the controller (WCS first, ACS warm-started from it — the
	// same pipeline the serving layer uses); every other field passes
	// through to each re-solve unchanged.
	Solver core.Config
	// Bins is the estimator histogram resolution (default 32).
	Bins int
	// Drift parameterises the Page–Hinkley detector.
	Drift DriftConfig
	// Relearn is the number of hyper-periods of fresh observation collected
	// after drift fires before the model is rebuilt and re-solved (default
	// 12): re-solving from the detection window alone would fit mostly
	// pre-drift data.
	Relearn int
	// MinCount is the minimum number of fresh observations a task needs for
	// its estimated mean to replace its ACEC in a re-solve (default 8).
	MinCount int64
	// OnResolve, when set, is called with the wall-clock duration of every
	// solve pipeline (WCS + warm ACS + compile), including the initial
	// solve. Purely observational — it must not mutate the controller and
	// has no effect on results.
	OnResolve func(d time.Duration)
}

func (o Options) withDefaults() Options {
	if o.Runner == nil {
		o.Runner = grid.New(1, nil)
	}
	if o.Bins <= 0 {
		o.Bins = 32
	}
	o.Drift = o.Drift.withDefaults()
	if o.Relearn <= 0 {
		o.Relearn = 12
	}
	if o.MinCount <= 0 {
		o.MinCount = 8
	}
	return o
}

// State is the controller's adaptation phase.
type State int

const (
	// Tracking: the drift detector watches the observed-vs-predicted work
	// statistic under the current model.
	Tracking State = iota
	// Relearning: drift fired; fresh observations accumulate until the
	// relearn window fills and triggers a re-solve.
	Relearning
)

// String names the state.
func (s State) String() string {
	switch s {
	case Tracking:
		return "tracking"
	case Relearning:
		return "relearning"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Decision summarises what one observation batch caused.
type Decision struct {
	// Drift reports that the detector fired inside the batch.
	Drift bool
	// Resolved reports that a re-solve completed inside the batch: the
	// controller's Plan()/Schedule() now reflect the adapted model. The
	// caller of a closed loop swaps execution over at its next hyper-period
	// boundary.
	Resolved bool
	// ResolvedHyperperiod is the global observation index (hyper-periods
	// observed so far) at which the last re-solve of the batch completed —
	// the moment the adapted schedule became *available*. Execution swaps
	// at the caller's next hyper-period boundary, which an executing loop
	// reports separately (LoopResult.SwapHyperperiods). Meaningful when
	// Resolved.
	ResolvedHyperperiod int64
	// Fingerprint is the content address of the schedule the controller
	// currently holds (hex grid.ScheduleKey; empty if not encodable).
	Fingerprint string
	// State is the controller's phase after the batch.
	State State
}

// Controller is the closed-loop adaptation engine: feed it the per-instance
// execution observations of every hyper-period (in order) and it maintains
// the learned workload model, decides drift, and re-solves. It is not safe
// for concurrent use; callers (the session layer) serialise access.
type Controller struct {
	opts   Options
	base   *task.Set // stated model the controller started from
	model  *task.Set // model the current schedule was solved against
	taskOf []int     // instance index → task index, in plan order

	life    *SetEstimator // lifetime estimators, for reporting; never reset
	relearn *SetEstimator // fresh-window estimators; reset on every transition
	ph      *PageHinkley

	acs         *core.Schedule
	plan        *sim.CompiledPlan
	fingerprint string
	predSum     float64 // Σ model ACEC over instances: the statistic denominator
	predSigma   float64 // predicted per-hyper-period σ of the work ratio

	state         State
	relearnLeft   int
	observed      int64
	resolves      int64
	driftsFired   int64
	resolveAt     []int64 // observation indices at which re-solves completed
	lastStatistic float64
}

// NewController solves the stated model (WCS, then ACS warm-started from it)
// and returns a controller tracking it. ctx bounds the initial solve.
func NewController(ctx context.Context, set *task.Set, opts Options) (*Controller, error) {
	if set == nil || set.N() == 0 {
		return nil, fmt.Errorf("feedback: controller needs a non-empty task set")
	}
	o := opts.withDefaults()
	if err := o.Drift.validate(); err != nil {
		return nil, err
	}
	c := &Controller{opts: o, base: set, state: Tracking}
	var err error
	if c.life, err = NewSetEstimator(set, o.Bins); err != nil {
		return nil, err
	}
	if c.relearn, err = NewSetEstimator(set, o.Bins); err != nil {
		return nil, err
	}
	if c.ph, err = NewPageHinkley(o.Drift); err != nil {
		return nil, err
	}
	if err := c.resolve(ctx, set); err != nil {
		return nil, err
	}
	c.resolves = 0 // the initial solve is not an adaptation
	c.resolveAt = nil
	c.taskOf = make([]int, len(c.acs.Plan.Instances))
	for i := range c.taskOf {
		c.taskOf[i] = c.acs.Plan.Instances[i].TaskIndex
	}
	return c, nil
}

// resolve builds WCS and warm-started ACS for model through the runner,
// compiles the plan, and installs all three.
func (c *Controller) resolve(ctx context.Context, model *task.Set) error {
	if c.opts.OnResolve != nil {
		t0 := time.Now()
		defer func() { c.opts.OnResolve(time.Since(t0)) }()
	}
	wcsCfg := c.opts.Solver
	wcsCfg.Objective = core.WorstCase
	wcsCfg.WarmStart = nil
	wcs, err := c.opts.Runner.BuildScheduleContext(ctx, model, wcsCfg)
	if err != nil {
		return fmt.Errorf("feedback: wcs re-solve: %w", err)
	}
	acsCfg := c.opts.Solver
	acsCfg.Objective = core.AverageCase
	acsCfg.WarmStart = wcs
	acs, err := c.opts.Runner.BuildScheduleContext(ctx, model, acsCfg)
	if err != nil {
		return fmt.Errorf("feedback: acs re-solve: %w", err)
	}
	plan, err := c.opts.Runner.CompileSchedule(acs)
	if err != nil {
		return fmt.Errorf("feedback: plan compile: %w", err)
	}
	c.model, c.acs, c.plan = model, acs, plan
	// The fingerprint is the same content address the serving layer's
	// submit path derives for this (set, config): WarmStart is stripped
	// first — it is a solver accelerant the controller manages, not part of
	// the request's identity — so a session's schedule and a /v1/schedules
	// submit of the same model share one address space.
	fpCfg := acsCfg
	fpCfg.WarmStart = nil
	c.fingerprint = ""
	if key, ok := grid.ScheduleKey(model, fpCfg); ok {
		c.fingerprint = key.String()
	}
	// The drift statistic is the standardized total-work ratio: predSum is
	// Σ model ACEC over the hyper-period's instances, predSigma the σ of
	// the ratio the solved-against model predicts under the paper's
	// per-release noise assumption σᵢ = (WCEC−BCEC)/6 (§4). Standardizing
	// here is what lets DriftConfig's thresholds be span-free: the same
	// (Delta, Lambda) works for a ratio-0.1 set and a ratio-0.9 set.
	c.predSum = 0
	var varSum float64
	for _, idx := range c.acs.Plan.Instances {
		t := &model.Tasks[idx.TaskIndex]
		c.predSum += t.ACEC
		s := (t.WCEC - t.BCEC) / 6
		varSum += s * s
	}
	c.predSigma = math.Sqrt(varSum) / c.predSum
	if c.predSigma <= 0 {
		c.predSigma = 1 // degenerate BCEC=WCEC set: any deviation is drift-worthy
	}
	c.resolves++
	c.resolveAt = append(c.resolveAt, c.observed)
	return nil
}

// Plan returns the compiled plan of the current schedule (immutable; swap it
// into execution at a hyper-period boundary).
func (c *Controller) Plan() *sim.CompiledPlan { return c.plan }

// Schedule returns the current ACS schedule (treat as immutable).
func (c *Controller) Schedule() *core.Schedule { return c.acs }

// Model returns the task set the current schedule was solved against.
func (c *Controller) Model() *task.Set { return c.model }

// Fingerprint returns the current schedule's content address.
func (c *Controller) Fingerprint() string { return c.fingerprint }

// TaskOf returns the instance→task mapping of the plan order (shared slice;
// do not mutate). Its length is the per-hyper-period observation width.
func (c *Controller) TaskOf() []int { return c.taskOf }

// Observed returns the number of hyper-periods folded in so far.
func (c *Controller) Observed() int64 { return c.observed }

// Resolves returns the number of adaptation re-solves performed.
func (c *Controller) Resolves() int64 { return c.resolves }

// DriftsFired returns how many times the detector fired.
func (c *Controller) DriftsFired() int64 { return c.driftsFired }

// ResolveHyperperiods returns the observation indices at which adaptation
// re-solves completed (copy) — availability points, not execution swap
// points, which belong to whoever drives execution.
func (c *Controller) ResolveHyperperiods() []int64 {
	return append([]int64(nil), c.resolveAt...)
}

// State returns the controller's phase.
func (c *Controller) State() State { return c.state }

// Lifetime returns the never-reset per-task estimators (for reporting).
func (c *Controller) Lifetime() *SetEstimator { return c.life }

// LastStatistic returns the last standardized observed-vs-predicted work
// statistic fed to the drift detector.
func (c *Controller) LastStatistic() float64 { return c.lastStatistic }

// ObserveChunk folds a chunk of consecutive hyper-periods (each row one
// hyper-period's per-instance actual cycles, plan order) and returns what
// happened. The fold is strictly sequential in hyper-period order — chunking
// is transparent: any split of the same observation stream produces the same
// estimator states, the same drift points, and the same re-solve points.
// ctx bounds any re-solves the chunk triggers.
//
// Malformed batches are rejected *before* anything is folded, so a 4xx-style
// error never leaves the controller's state partially advanced and a client
// may retry the corrected batch without double-counting. A re-solve failure
// (cancellation) can still surface mid-batch; the rows preceding it remain
// folded — resume from Observed(), do not replay the batch.
func (c *Controller) ObserveChunk(ctx context.Context, actuals [][]float64) (Decision, error) {
	d := Decision{Fingerprint: c.fingerprint, State: c.state}
	for i, row := range actuals {
		if len(row) != len(c.taskOf) {
			return d, fmt.Errorf("feedback: observation %d has %d instances, want %d", i, len(row), len(c.taskOf))
		}
	}
	for _, row := range actuals {
		if err := c.life.ObserveInstances(c.taskOf, row); err != nil {
			return d, err
		}
		var sum float64
		for _, x := range row {
			sum += x
		}
		z := (sum/c.predSum - 1) / c.predSigma
		c.lastStatistic = z
		c.observed++

		switch c.state {
		case Tracking:
			if c.ph.Add(z) {
				c.driftsFired++
				d.Drift = true
				c.state = Relearning
				c.relearn.Reset()
				c.relearnLeft = c.opts.Relearn
			}
		case Relearning:
			if err := c.relearn.ObserveInstances(c.taskOf, row); err != nil {
				return d, err
			}
			c.relearnLeft--
			if c.relearnLeft <= 0 {
				adapted, err := c.relearn.AdaptedSet(c.opts.MinCount)
				if err != nil {
					return d, fmt.Errorf("feedback: adapted model: %w", err)
				}
				if err := c.resolve(ctx, adapted); err != nil {
					return d, err
				}
				d.Resolved = true
				d.ResolvedHyperperiod = c.observed
				c.state = Tracking
				c.ph.Reset()
			}
		}
	}
	d.Fingerprint = c.fingerprint
	d.State = c.state
	return d, nil
}
