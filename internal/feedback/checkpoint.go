package feedback

import (
	"context"
	"fmt"

	"repro/internal/task"
)

// Checkpoint/restore (DESIGN.md §9): a Controller is a deterministic fold of
// its observation stream, so its entire identity is (a) the fold state below
// and (b) the model the current schedule was solved against. A snapshot is
// therefore small and plain — estimator moments, detector accumulators,
// counters — and restore re-solves the model instead of deserialising
// schedules: the solve flows through the runner's content-addressed store,
// so on a warm restart it is a disk hit, and either way the rebuilt schedule
// is bit-identical to the one the snapshot's owner held (solves are pure).
// A controller restored from hyper-period k continues exactly as the
// original would have: same estimator states, same drift points, same
// re-solve points, same response bytes.

// TaskEstimatorState is the serialisable state of one TaskEstimator.
type TaskEstimatorState struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	M2    float64 `json:"m2"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Bins  []int64 `json:"bins"`
}

// PageHinkleyState is the serialisable state of the drift detector.
type PageHinkleyState struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	Up   float64 `json:"up"`
	Down float64 `json:"down"`
}

// ControllerState is a complete controller snapshot. Schedules are not part
// of it: Model is re-solved on restore (a store hit on a warm restart).
// All floats are finite, so the state survives JSON encoding exactly (Go
// renders float64 with round-trip precision).
type ControllerState struct {
	// Base is the stated task set the controller started from; Model is the
	// set the current schedule was solved against (equal to Base until the
	// first adaptation re-solve). Both are stored in set order, which
	// task.NewSet's stable sort preserves.
	Base  []task.Task `json:"base"`
	Model []task.Task `json:"model"`

	Life    []TaskEstimatorState `json:"life"`
	Relearn []TaskEstimatorState `json:"relearn"`
	Drift   PageHinkleyState     `json:"drift"`

	State         int     `json:"state"`
	RelearnLeft   int     `json:"relearn_left"`
	Observed      int64   `json:"observed"`
	Resolves      int64   `json:"resolves"`
	DriftsFired   int64   `json:"drifts_fired"`
	ResolveAt     []int64 `json:"resolve_at"`
	LastStatistic float64 `json:"last_statistic"`
}

func estimatorState(e *TaskEstimator) TaskEstimatorState {
	return TaskEstimatorState{
		Lo: e.lo, Hi: e.hi, Count: e.count, Mean: e.mean, M2: e.m2,
		Min: e.min, Max: e.max, Bins: append([]int64(nil), e.bins...),
	}
}

func setEstimatorState(se *SetEstimator) []TaskEstimatorState {
	out := make([]TaskEstimatorState, len(se.tasks))
	for i, e := range se.tasks {
		out[i] = estimatorState(e)
	}
	return out
}

// Snapshot captures the controller's complete fold state. The caller owns
// serialisation; the state is plain data with no references back into the
// controller. Like every Controller method, Snapshot must be externally
// serialised with ObserveChunk.
func (c *Controller) Snapshot() *ControllerState {
	return &ControllerState{
		Base:          append([]task.Task(nil), c.base.Tasks...),
		Model:         append([]task.Task(nil), c.model.Tasks...),
		Life:          setEstimatorState(c.life),
		Relearn:       setEstimatorState(c.relearn),
		Drift:         PageHinkleyState{N: c.ph.n, Mean: c.ph.mean, Up: c.ph.up, Down: c.ph.down},
		State:         int(c.state),
		RelearnLeft:   c.relearnLeft,
		Observed:      c.observed,
		Resolves:      c.resolves,
		DriftsFired:   c.driftsFired,
		ResolveAt:     append([]int64(nil), c.resolveAt...),
		LastStatistic: c.lastStatistic,
	}
}

// restoreSetEstimator rebuilds a SetEstimator over set from snapshotted
// per-task states, validating shape (one state per task, non-empty support,
// at least one bin) so a corrupted snapshot fails loudly instead of folding
// observations into garbage.
func restoreSetEstimator(set *task.Set, states []TaskEstimatorState) (*SetEstimator, error) {
	if len(states) != set.N() {
		return nil, fmt.Errorf("feedback: snapshot has %d estimators for %d tasks", len(states), set.N())
	}
	se := &SetEstimator{set: set, tasks: make([]*TaskEstimator, len(states))}
	for i, st := range states {
		if !(st.Hi > st.Lo) {
			return nil, fmt.Errorf("feedback: snapshot estimator %d has empty support [%g, %g]", i, st.Lo, st.Hi)
		}
		if len(st.Bins) < 1 {
			return nil, fmt.Errorf("feedback: snapshot estimator %d has no bins", i)
		}
		if st.Count < 0 {
			return nil, fmt.Errorf("feedback: snapshot estimator %d has negative count", i)
		}
		se.tasks[i] = &TaskEstimator{
			lo: st.Lo, hi: st.Hi, count: st.Count, mean: st.Mean, m2: st.M2,
			min: st.Min, max: st.Max, bins: append([]int64(nil), st.Bins...),
		}
	}
	return se, nil
}

// RestoreController rebuilds a controller from a snapshot under opts (the
// same options its original was constructed with — they are configuration,
// not state, so the session layer re-derives them from its own checkpoint).
// The model is re-solved through opts.Runner — a content-store hit on a warm
// restart, a fresh solve otherwise, bit-identical either way — and every
// fold counter is restored, so the controller continues the observation
// stream exactly where the snapshot left it. ctx bounds the re-solve.
func RestoreController(ctx context.Context, st *ControllerState, opts Options) (*Controller, error) {
	if st == nil {
		return nil, fmt.Errorf("feedback: nil controller snapshot")
	}
	if st.State != int(Tracking) && st.State != int(Relearning) {
		return nil, fmt.Errorf("feedback: snapshot has unknown state %d", st.State)
	}
	if st.Observed < 0 || st.Resolves < 0 || st.DriftsFired < 0 || st.RelearnLeft < 0 {
		return nil, fmt.Errorf("feedback: snapshot has negative counters")
	}
	base, err := task.NewSet(append([]task.Task(nil), st.Base...))
	if err != nil {
		return nil, fmt.Errorf("feedback: snapshot base set: %w", err)
	}
	model, err := task.NewSet(append([]task.Task(nil), st.Model...))
	if err != nil {
		return nil, fmt.Errorf("feedback: snapshot model set: %w", err)
	}
	if model.N() != base.N() {
		return nil, fmt.Errorf("feedback: snapshot model has %d tasks, base %d", model.N(), base.N())
	}
	o := opts.withDefaults()
	if err := o.Drift.validate(); err != nil {
		return nil, err
	}
	c := &Controller{opts: o, base: base, state: State(st.State)}
	if c.life, err = restoreSetEstimator(base, st.Life); err != nil {
		return nil, err
	}
	if c.relearn, err = restoreSetEstimator(base, st.Relearn); err != nil {
		return nil, err
	}
	if c.ph, err = NewPageHinkley(o.Drift); err != nil {
		return nil, err
	}
	c.ph.n, c.ph.mean, c.ph.up, c.ph.down = st.Drift.N, st.Drift.Mean, st.Drift.Up, st.Drift.Down
	if err := c.resolve(ctx, model); err != nil {
		return nil, err
	}
	// resolve() advanced the adaptation counters as if this were a live
	// re-solve; the snapshot's history overrides them wholesale.
	c.observed = st.Observed
	c.resolves = st.Resolves
	c.driftsFired = st.DriftsFired
	c.resolveAt = append([]int64(nil), st.ResolveAt...)
	c.relearnLeft = st.RelearnLeft
	c.lastStatistic = st.LastStatistic
	c.taskOf = make([]int, len(c.acs.Plan.Instances))
	for i := range c.taskOf {
		c.taskOf[i] = c.acs.Plan.Instances[i].TaskIndex
	}
	return c, nil
}
