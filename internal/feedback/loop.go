package feedback

import (
	"context"
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

// LoopResult aggregates a closed-loop run. Fields are summed in chunk order
// (and within a chunk in hyper-period order), so the whole struct is
// bit-identical for any sim worker count and any cache state.
type LoopResult struct {
	// Energy is the total simulated energy over the horizon.
	Energy float64
	// DeadlineMisses counts pieces finishing past their deadline (0 for
	// valid schedules — adaptation never touches WCEC, so worst-case
	// feasibility is preserved by construction).
	DeadlineMisses int
	// Switches counts voltage transitions (within chunks; the transition
	// across a chunk boundary is uncounted exactly as the one across any
	// hyper-period boundary is).
	Switches int
	// BusyTime is total executing time in ms.
	BusyTime float64
	// Resolves is the number of adaptation re-solves the run triggered.
	Resolves int64
	// Drifts is the number of detector firings.
	Drifts int64
	// SwapHyperperiods are the hyper-period indices at which adapted plans
	// actually entered execution: always the chunk boundary following the
	// re-solve (the controller's ResolveHyperperiods are the earlier
	// availability points).
	SwapHyperperiods []int64
	// Fingerprints are the content addresses of every schedule that
	// executed, in order (the initial one first).
	Fingerprints []string
}

// RunClosedLoop drives the full feedback cycle over a nonstationary
// scenario: execute a chunk of hyper-periods on the controller's current
// compiled plan, feed the chunk's per-job observations back, and swap any
// re-solved plan in at the next chunk boundary (always a hyper-period
// boundary). The scenario owns the workload stream — it is a pure function
// of (seed, hyper-period), so the stream never depends on which plan
// executed it — and every stage (generation, execution fan-in, observation
// fold, drift decisions, re-solve points) is deterministic, making the
// returned LoopResult byte-identical across sim worker counts and cache
// states for a fixed configuration.
//
// simCfg's Policy, Overhead, Workers and Ctx apply to execution; Seed, Dist
// and Hyperperiods are ignored (the scenario replaces them). ctx bounds
// re-solves.
func RunClosedLoop(ctx context.Context, ctrl *Controller, sc *workload.Scenario, horizon, chunk int, simCfg sim.Config) (*LoopResult, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("feedback: horizon must be positive, got %d", horizon)
	}
	if chunk <= 0 {
		chunk = 10
	}
	taskOf := ctrl.TaskOf()
	out := &LoopResult{Fingerprints: []string{ctrl.Fingerprint()}}
	rows := make([][]float64, 0, chunk)
	for lo := 0; lo < horizon; lo += chunk {
		hi := lo + chunk
		if hi > horizon {
			hi = horizon
		}
		rows = rows[:0]
		for h := lo; h < hi; h++ {
			row := make([]float64, len(taskOf))
			if err := sc.FillActuals(h, taskOf, row); err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		res, err := ctrl.Plan().RunActuals(simCfg, rows)
		if err != nil {
			return nil, err
		}
		out.Energy += res.Energy
		out.DeadlineMisses += res.DeadlineMisses
		out.Switches += res.Switches
		out.BusyTime += res.BusyTime
		d, err := ctrl.ObserveChunk(ctx, rows)
		if err != nil {
			return nil, err
		}
		// A re-solve completing in the final chunk produces a plan that
		// never enters execution inside this horizon: Fingerprints lists
		// schedules that *executed*, so it is not recorded (the controller
		// still holds it, and Resolves still counts the solve).
		if d.Resolved && hi < horizon {
			out.Fingerprints = append(out.Fingerprints, d.Fingerprint)
			out.SwapHyperperiods = append(out.SwapHyperperiods, int64(hi))
		}
	}
	out.Resolves = ctrl.Resolves()
	out.Drifts = ctrl.DriftsFired()
	return out, nil
}
