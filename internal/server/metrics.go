package server

import (
	"strings"

	"repro/internal/obs"
)

// Metric surface (DESIGN.md §13). The server owns one obs.Registry and is
// the single source of truth for every counter /v1/stats reports: the
// stats endpoint reads the same registry values /metrics exposes, so the
// two surfaces cannot disagree. Counters the server owns are obs.Counters
// incremented on the request path; accounting that already lives in
// another layer (dispatcher batches, memo hit/miss/eviction, store
// occupancy, breaker position) is bridged with CounterFunc/GaugeFunc
// reads at scrape time — storage stays where it is, the registry is a
// view.

// stageNames enumerates the per-stage latency histograms
// (schedd_stage_seconds{stage=...}) fed by request-trace spans and the
// feedback controller's OnResolve hook.
var stageNames = []string{
	"admission_wait",
	"batch_assembly",
	"solve_wcs",
	"solve_acs",
	"solve_partition",
	"sim",
	"store_get",
	"store_put",
	"feedback_resolve",
}

// endpointNames enumerates the request-latency histograms
// (schedd_request_seconds{endpoint=...}) and the endpoint label values of
// schedd_requests_total.
var endpointNames = []string{
	"submit", "get", "compare",
	"session_create", "observe", "session_get",
	"stats", "metrics", "healthz", "blob", "other",
}

// serverMetrics is the server's owned metric set.
type serverMetrics struct {
	reg *obs.Registry

	// Request counters — the one source of truth behind both
	// /v1/stats and schedd_requests_total.
	submits, gets, compares, sessionCreates, observes *obs.Counter

	shed, degraded, panics      *obs.Counter
	restored, checkpointErrs    *obs.Counter
	driftsFired, feedbackSolves *obs.Counter

	stages   map[string]*obs.Histogram
	requests map[string]*obs.Histogram
	tiers    map[[2]string]*obs.Histogram
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg:      reg,
		stages:   make(map[string]*obs.Histogram, len(stageNames)),
		requests: make(map[string]*obs.Histogram, len(endpointNames)),
		tiers:    make(map[[2]string]*obs.Histogram, 4),
	}
	req := func(endpoint string) *obs.Counter {
		return reg.Counter("schedd_requests_total", "Requests received, by endpoint (counted before admission, like /v1/stats).", obs.L("endpoint", endpoint))
	}
	m.submits = req("submit")
	m.gets = req("get")
	m.compares = req("compare")
	m.sessionCreates = req("session_create")
	m.observes = req("observe")

	m.shed = reg.Counter("schedd_shed_total", "Requests shed 503 by the bounded admission queue.")
	m.degraded = reg.Counter("schedd_degraded_total", "Responses served from the WCS fallback after the ACS solve budget expired.")
	m.panics = reg.Counter("schedd_panics_total", "Handler and solve-pipeline panics isolated to a single request.")
	m.restored = reg.Counter("schedd_sessions_restored_total", "Feedback sessions rebuilt from checkpoints (boot restore or lazy takeover).")
	m.checkpointErrs = reg.Counter("schedd_checkpoint_errors_total", "Failed checkpoint/request-blob writes (serving continued).")
	m.driftsFired = reg.Counter("schedd_feedback_drifts_total", "Page-Hinkley drift detector firings across all sessions.")
	m.feedbackSolves = reg.Counter("schedd_feedback_resolves_total", "Adaptation re-solves completed across all sessions.")

	for _, st := range stageNames {
		m.stages[st] = reg.Histogram("schedd_stage_seconds", "Per-stage latency from request-trace spans.", obs.LatencyBuckets(), obs.L("stage", st))
	}
	for _, ep := range endpointNames {
		m.requests[ep] = reg.Histogram("schedd_request_seconds", "End-to-end request latency, by endpoint.", obs.LatencyBuckets(), obs.L("endpoint", ep))
	}
	for _, tier := range []string{"mem", "disk"} {
		for _, op := range []string{"get", "put"} {
			m.tiers[[2]string{tier, op}] = reg.Histogram("schedd_store_tier_seconds", "Store tier operation latency.", obs.LatencyBuckets(), obs.L("tier", tier), obs.L("op", op))
		}
	}
	return m
}

// observeStage is the span sink every request trace is constructed with;
// spans whose stage has no histogram are dropped (forward compatibility,
// not an error).
func (m *serverMetrics) observeStage(stage string, seconds float64) {
	m.stages[stage].Observe(seconds) // nil-receiver Observe is a no-op
}

// observeTier is the store.Tiered observer.
func (m *serverMetrics) observeTier(tier, op string, seconds float64) {
	m.tiers[[2]string{tier, op}].Observe(seconds)
}

// observeRequest records one completed request.
func (m *serverMetrics) observeRequest(endpoint string, seconds float64) {
	m.requests[endpoint].Observe(seconds)
}

// endpointOf classifies a request path for the latency histograms. Purely
// observational — routing stays with the mux.
func endpointOf(path string) string {
	switch {
	case path == "/v1/schedules":
		return "submit"
	case strings.HasPrefix(path, "/v1/schedules/"):
		return "get"
	case path == "/v1/compare":
		return "compare"
	case path == "/v1/sessions":
		return "session_create"
	case strings.HasPrefix(path, "/v1/sessions/"):
		if strings.HasSuffix(path, "/observe") {
			return "observe"
		}
		return "session_get"
	case path == "/v1/stats":
		return "stats"
	case path == "/metrics":
		return "metrics"
	case path == "/v1/healthz":
		return "healthz"
	case strings.HasPrefix(path, "/v1/internal/blobs/"):
		return "blob"
	default:
		return "other"
	}
}

// registerDerived bridges accounting owned by other layers into the
// registry as scrape-time reads. Called once from New after every
// dependency is constructed.
func (s *Server) registerDerived() {
	reg := s.m.reg
	reg.CounterFunc("schedd_batches_total", "Micro-batches dispatched.", s.disp.batches.Load)
	reg.CounterFunc("schedd_coalesced_total", "Requests coalesced into an already-grouped batch job.", s.disp.coalesced.Load)
	reg.GaugeFunc("schedd_inflight", "Currently admitted solving requests.", func() float64 { return float64(len(s.admit)) })
	reg.GaugeFunc("schedd_sessions", "Resident feedback sessions.", func() float64 {
		s.mu.Lock()
		n := len(s.sessions)
		s.mu.Unlock()
		return float64(n)
	})
	reg.GaugeFunc("schedd_stored_requests", "Canonical requests retained for GET /v1/schedules/{fp}.", func() float64 {
		s.mu.Lock()
		n := len(s.requests)
		s.mu.Unlock()
		return float64(n)
	})

	memo := s.memo
	reg.CounterFunc("schedd_memo_hits_total", "Memo hits, by artefact kind.", func() int64 { return memo.Stats().ScheduleHits }, obs.L("kind", "schedule"))
	reg.CounterFunc("schedd_memo_hits_total", "Memo hits, by artefact kind.", func() int64 { return memo.Stats().PlanHits }, obs.L("kind", "plan"))
	reg.CounterFunc("schedd_memo_misses_total", "Memo misses (paid for a build), by artefact kind.", func() int64 { return memo.Stats().ScheduleMisses }, obs.L("kind", "schedule"))
	reg.CounterFunc("schedd_memo_misses_total", "Memo misses (paid for a build), by artefact kind.", func() int64 { return memo.Stats().PlanMisses }, obs.L("kind", "plan"))
	reg.CounterFunc("schedd_memo_evictions_total", "Entries evicted to respect the memory tier's byte cap.", func() int64 { return memo.Stats().Evictions })
	reg.GaugeFunc("schedd_memo_bytes_used", "Estimated resident bytes of the memory tier.", func() float64 { return float64(memo.Stats().BytesUsed) })
	reg.GaugeFunc("schedd_memo_bytes_cap", "Configured byte cap of the memory tier (0 = unbounded).", func() float64 { return float64(memo.Stats().BytesCap) })
	reg.CounterFunc("schedd_store_tier_hits_total", "Schedule hits split by the tier that answered.", func() int64 { return memo.Stats().MemHits }, obs.L("tier", "mem"))
	reg.CounterFunc("schedd_store_tier_hits_total", "Schedule hits split by the tier that answered.", func() int64 { return memo.Stats().DiskHits }, obs.L("tier", "disk"))
	reg.GaugeFunc("schedd_store_disk_entries", "Entries resident in the disk log.", func() float64 { return float64(memo.Stats().DiskEntries) })
	reg.GaugeFunc("schedd_store_disk_bytes", "Bytes resident in the disk log.", func() float64 { return float64(memo.Stats().DiskBytes) })
	reg.GaugeFunc("schedd_store_recovered_entries", "Records indexed by the recovery scan at disk open.", func() float64 { return float64(memo.Stats().RecoveredEntries) })
	reg.GaugeFunc("schedd_store_torn_records_dropped", "Torn tail records dropped by the recovery scan.", func() float64 { return float64(memo.Stats().TornRecordsDropped) })
	reg.CounterFunc("schedd_store_disk_errors_total", "Failed disk device operations, by op.", func() int64 { return memo.Stats().DiskReadErrs }, obs.L("op", "read"))
	reg.CounterFunc("schedd_store_disk_errors_total", "Failed disk device operations, by op.", func() int64 { return memo.Stats().DiskWriteErrs }, obs.L("op", "write"))
	reg.GaugeFunc("schedd_store_breaker_state", "Disk circuit breaker position: 0 closed, 1 open, 2 half-open.", func() float64 { return breakerStateNum(memo.Stats().BreakerState) })
	reg.CounterFunc("schedd_store_breaker_trips_total", "Breaker open transitions.", func() int64 { return memo.Stats().BreakerTrips })
	reg.CounterFunc("schedd_store_breaker_recloses_total", "Breaker completed recoveries.", func() int64 { return memo.Stats().BreakerRecloses })
	reg.GaugeFunc("schedd_store_mem_degraded", "1 while the breaker holds the store in memory-only residency.", func() float64 {
		if memo.Stats().MemDegraded {
			return 1
		}
		return 0
	})
}

func breakerStateNum(state string) float64 {
	switch state {
	case "open":
		return 1
	case "half-open":
		return 2
	default: // "closed" or "" (purely in-memory backend)
		return 0
	}
}

// Metrics returns the server's metric registry (an http.Handler; schedd
// also mounts it on auxiliary listeners and the fleet router registers
// its own counters into it).
func (s *Server) Metrics() *obs.Registry { return s.m.reg }
