package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// smallBody returns a tiny feasible two-task submit body; i perturbs the
// WCEC so distinct i give distinct fingerprints.
func smallBody(i int) string {
	return fmt.Sprintf(`{"tasks":[`+
		`{"name":"a","period_ms":10,"wcec":%g,"acec":2,"bcec":1,"ceff":1},`+
		`{"name":"b","period_ms":20,"wcec":6,"acec":3,"bcec":2,"ceff":1}]}`,
		3+0.25*float64(i))
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// tryPost is the goroutine-safe POST helper (t.Fatal must stay on the test
// goroutine).
func tryPost(url, body string) (int, string, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(b), nil
}

// post returns (status, body) for a JSON POST.
func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	code, b, err := tryPost(url, body)
	if err != nil {
		t.Fatal(err)
	}
	return code, b
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestSubmitAndGetRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, body := post(t, ts.URL+"/v1/schedules", smallBody(0))
	if code != http.StatusOK {
		t.Fatalf("submit: status %d: %s", code, body)
	}
	var resp ScheduleResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Fingerprint == "" || resp.Objective != "ACS" || resp.Pieces == 0 {
		t.Fatalf("implausible response: %+v", resp)
	}
	if len(resp.EndMs) != resp.Pieces || len(resp.WCWorkCycles) != resp.Pieces {
		t.Fatalf("schedule vectors inconsistent with Pieces=%d", resp.Pieces)
	}
	if resp.WCSAvgEnergy == nil || resp.ImprovementPct == nil {
		t.Fatal("ACS response missing the WCS baseline fields")
	}
	if !(resp.PredictedEnergy > 0) || resp.PredictedEnergy > *resp.WCSAvgEnergy*(1+1e-9) {
		t.Errorf("ACS predicted energy %g vs WCS-at-average %g: ordering violated",
			resp.PredictedEnergy, *resp.WCSAvgEnergy)
	}

	// GET must return byte-identical content.
	code2, body2 := get(t, ts.URL+"/v1/schedules/"+resp.Fingerprint)
	if code2 != http.StatusOK {
		t.Fatalf("get: status %d: %s", code2, body2)
	}
	if body2 != body {
		t.Errorf("GET differs from submit response:\n%s\nvs\n%s", body2, body)
	}

	if code, _ := get(t, ts.URL+"/v1/schedules/deadbeef"); code != http.StatusNotFound {
		t.Errorf("unknown fingerprint: want 404, got %d", code)
	}
}

func TestSubmitWCSObjective(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"tasks":[{"name":"a","period_ms":10,"wcec":4,"acec":2,"bcec":1,"ceff":1}],"objective":"wcs"}`
	code, got := post(t, ts.URL+"/v1/schedules", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	var resp ScheduleResponse
	if err := json.Unmarshal([]byte(got), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Objective != "WCS" {
		t.Errorf("objective %q", resp.Objective)
	}
	if resp.WCSAvgEnergy != nil || resp.ImprovementPct != nil {
		t.Error("WCS response carries ACS-only fields")
	}
}

func TestSubmitRejections(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxTasks: 2})
	cases := []struct {
		name, body string
		status     int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown field", `{"tasks":[],"nope":1}`, http.StatusBadRequest},
		{"empty set", `{"tasks":[]}`, http.StatusUnprocessableEntity},
		{"bad objective", `{"tasks":[{"name":"a","period_ms":10,"wcec":4,"acec":2,"bcec":1,"ceff":1}],"objective":"xxx"}`, http.StatusUnprocessableEntity},
		{"invalid task", `{"tasks":[{"name":"a","period_ms":10,"wcec":-4,"acec":2,"bcec":1,"ceff":1}]}`, http.StatusUnprocessableEntity},
		{"too many tasks", `{"tasks":[` +
			`{"name":"a","period_ms":10,"wcec":1,"acec":1,"bcec":1,"ceff":1},` +
			`{"name":"b","period_ms":10,"wcec":1,"acec":1,"bcec":1,"ceff":1},` +
			`{"name":"c","period_ms":10,"wcec":1,"acec":1,"bcec":1,"ceff":1}]}`, http.StatusUnprocessableEntity},
		// 10 cycles/ms on a unit-K model needs v=10 > Vmax=4: unschedulable.
		{"infeasible", `{"tasks":[{"name":"a","period_ms":10,"wcec":100,"acec":60,"bcec":50,"ceff":1}]}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		code, body := post(t, ts.URL+"/v1/schedules", tc.body)
		if code != tc.status {
			t.Errorf("%s: want %d, got %d (%s)", tc.name, tc.status, code, body)
		}
		if !strings.Contains(body, `"error"`) {
			t.Errorf("%s: error body missing error field: %s", tc.name, body)
		}
	}
}

// TestSubmitDeterministicAcrossCacheStates: identical request bodies produce
// identical response bytes on a cold cache, a warm cache, and a cache under
// eviction pressure.
func TestSubmitDeterministicAcrossCacheStates(t *testing.T) {
	_, warm := newTestServer(t, Options{})
	evicting, evictTS := newTestServer(t, Options{MemoBytes: 1})

	var bodies []string
	for round := 0; round < 2; round++ {
		for i := 0; i < 3; i++ {
			_, a := post(t, warm.URL+"/v1/schedules", smallBody(i))
			_, b := post(t, evictTS.URL+"/v1/schedules", smallBody(i))
			if a != b {
				t.Fatalf("round %d set %d: warm and evicting servers disagree:\n%s\nvs\n%s", round, i, a, b)
			}
			if round == 0 {
				bodies = append(bodies, a)
			} else if bodies[i] != a {
				t.Fatalf("set %d: repeat submit changed bytes", i)
			}
		}
	}
	if st := evicting.memo.Stats(); st.Evictions == 0 {
		t.Error("eviction-pressure server never evicted")
	}
}

func TestCompareEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{SimHyperperiods: 20})
	body := `{"tasks":[` +
		`{"name":"a","period_ms":10,"wcec":4,"acec":2,"bcec":1,"ceff":1},` +
		`{"name":"b","period_ms":20,"wcec":6,"acec":3,"bcec":2,"ceff":1}]}`
	code, got := post(t, ts.URL+"/v1/compare", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	var resp CompareResponse
	if err := json.Unmarshal([]byte(got), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Hyperperiods != 20 || resp.Seed == 0 {
		t.Errorf("defaults not applied: %+v", resp)
	}
	if resp.ACS.DeadlineMisses != 0 || resp.WCS.DeadlineMisses != 0 {
		t.Errorf("simulated deadline misses on valid schedules: %+v", resp)
	}
	if !(resp.ACS.Energy > 0) || !(resp.WCS.Energy > 0) {
		t.Errorf("non-positive simulated energies: %+v", resp)
	}

	// Same body → same bytes (including the derived seed); a fresh server
	// must agree byte for byte.
	_, ts2 := newTestServer(t, Options{SimHyperperiods: 20})
	if _, got2 := post(t, ts2.URL+"/v1/compare", body); got2 != got {
		t.Errorf("compare not deterministic across servers:\n%s\nvs\n%s", got, got2)
	}

	// An explicit non-ACS objective is rejected rather than silently
	// overridden (compare always solves both sides).
	codeW, bodyW := post(t, ts.URL+"/v1/compare", strings.TrimSuffix(body, "}")+`,"objective":"wcs"}`)
	if codeW != http.StatusUnprocessableEntity || !strings.Contains(bodyW, "both objectives") {
		t.Errorf("compare with objective=wcs: want 422 rejection, got %d %s", codeW, bodyW)
	}

	// An explicit seed is honoured and echoed.
	code, got3 := post(t, ts.URL+"/v1/compare", strings.TrimSuffix(body, "}")+`,"seed":7,"hyperperiods":10}`)
	if code != http.StatusOK {
		t.Fatalf("seeded compare: %d %s", code, got3)
	}
	var resp3 CompareResponse
	if err := json.Unmarshal([]byte(got3), &resp3); err != nil {
		t.Fatal(err)
	}
	if resp3.Seed != 7 || resp3.Hyperperiods != 10 {
		t.Errorf("explicit sim params not honoured: %+v", resp3)
	}
}

func TestStatsAndHealth(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	code, body := get(t, ts.URL+"/v1/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %s", code, body)
	}
	post(t, ts.URL+"/v1/schedules", smallBody(0))
	post(t, ts.URL+"/v1/schedules", smallBody(0))
	code, body = get(t, ts.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	var st StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Submits != 2 || st.Stored != 1 {
		t.Errorf("want 2 submits of 1 stored set, got %+v", st)
	}
	if st.Memo.ScheduleMisses == 0 {
		t.Error("no schedule solves recorded in memo stats")
	}
	if st.Memo.BytesCap != 256<<20 {
		t.Errorf("default memo cap not applied: %d", st.Memo.BytesCap)
	}

	s.Close()
	// The handler is still mounted; health must now refuse.
	code, _ = get(t, ts.URL+"/v1/healthz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("healthz after Close: want 503, got %d", code)
	}
}

// TestStatsExposesEvictionCounters is the regression for the bounded-memo
// visibility contract: /v1/stats must surface the store's eviction and
// byte-accounting counters (not just hit/miss rates), both as typed fields
// and under their wire names, and they must move when eviction pressure is
// real.
func TestStatsExposesEvictionCounters(t *testing.T) {
	// A cap of a few KiB fits roughly one schedule+plan pair, so distinct
	// submits evict each other.
	s, ts := newTestServer(t, Options{MemoBytes: 4 << 10})
	for i := 0; i < 4; i++ {
		if code, body := post(t, ts.URL+"/v1/schedules", smallBody(i)); code != http.StatusOK {
			t.Fatalf("submit %d: %d %s", i, code, body)
		}
	}
	code, body := get(t, ts.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	for _, field := range []string{`"evictions"`, `"bytes_used"`, `"bytes_cap"`, `"schedule_hits"`, `"schedule_misses"`} {
		if !strings.Contains(body, field) {
			t.Errorf("stats body missing %s:\n%s", field, body)
		}
	}
	var st StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Memo.BytesCap != 4<<10 {
		t.Errorf("bytes cap %d, want %d", st.Memo.BytesCap, 4<<10)
	}
	if st.Memo.Evictions == 0 {
		t.Error("no evictions under a few-KiB cap and 4 distinct submits")
	}
	if st.Memo.BytesUsed <= 0 || st.Memo.BytesUsed > st.Memo.BytesCap {
		t.Errorf("bytes used %d outside (0, cap]", st.Memo.BytesUsed)
	}
	if want := s.memo.Stats(); want != st.Memo {
		t.Errorf("stats body %+v diverges from memo accounting %+v", st.Memo, want)
	}
}

// TestStoreLimitEviction: the request store forgets the oldest fingerprints,
// which then 404 on GET until resubmitted.
func TestStoreLimitEviction(t *testing.T) {
	_, ts := newTestServer(t, Options{StoreLimit: 2})
	var fps []string
	for i := 0; i < 3; i++ {
		_, body := post(t, ts.URL+"/v1/schedules", smallBody(i))
		var resp ScheduleResponse
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatal(err)
		}
		fps = append(fps, resp.Fingerprint)
	}
	if code, _ := get(t, ts.URL+"/v1/schedules/"+fps[0]); code != http.StatusNotFound {
		t.Errorf("oldest fingerprint should have been evicted, got %d", code)
	}
	for _, fp := range fps[1:] {
		if code, _ := get(t, ts.URL+"/v1/schedules/"+fp); code != http.StatusOK {
			t.Errorf("recent fingerprint %s evicted too early (%d)", fp, code)
		}
	}
}

// TestBatchWindowCoalescing: requests arriving inside one batch window with
// the same fingerprint run the pipeline once (visible as coalesced jobs or
// memo hits, never extra solves).
func TestBatchWindowCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Options{BatchSize: 8, BatchWindow: 50 * time.Millisecond})
	done := make(chan string, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, body := post(t, ts.URL+"/v1/schedules", smallBody(0))
			done <- body
		}()
	}
	first := <-done
	for i := 0; i < 3; i++ {
		if b := <-done; b != first {
			t.Fatal("coalesced responses differ")
		}
	}
	// Exactly one WCS + one ACS solve for the unique fingerprint.
	if st := s.memo.Stats(); st.ScheduleMisses != 2 {
		t.Errorf("want exactly 2 solves (WCS+ACS), got %d misses / %d hits",
			st.ScheduleMisses, st.ScheduleHits)
	}
}
