package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/core"
	"repro/internal/feedback"
)

// Feedback sessions (DESIGN.md §8): a session is a stateful closed loop over
// one task set — the server holds a feedback.Controller per session, clients
// stream per-hyper-period execution observations into it, and the server
// answers either "no change" or a re-solved schedule with its fingerprint.
//
//	POST /v1/sessions               create: stated model → initial ACS
//	POST /v1/sessions/{id}/observe  feed observations → drift/re-solve verdict
//	GET  /v1/sessions/{id}          estimator and adaptation state
//
// Sessions are intentionally stateful, so they sit outside the stateless
// byte-determinism contract of submit/get/compare; their determinism contract
// is the controller's: every schedule payload (fingerprint, end-times,
// budgets, predicted energy) is a pure function of the creation body plus the
// ordered observation history, never of timing, batching, worker count or
// cache state. Session ids are allocation order ("s1", "s2", …) and are the
// one arrival-order-dependent field. Observes on one session serialise on the
// session lock; solves flow through the server's shared bounded memo, so a
// mode-switching workload that returns to a learned regime re-solves as a
// cache hit.

// serverSession is one resident closed loop.
type serverSession struct {
	mu   sync.Mutex
	id   string
	ctrl *feedback.Controller
}

// SessionRequest is the POST /v1/sessions body: a submit body plus the
// feedback knobs (zero values select the controller defaults).
type SessionRequest struct {
	SubmitRequest
	// Bins is the estimator histogram resolution per task.
	Bins int `json:"bins,omitempty"`
	// DriftDelta and DriftLambda parameterise the Page–Hinkley detector in
	// standardized units; MinSamples is its warm-up length.
	DriftDelta  float64 `json:"drift_delta,omitempty"`
	DriftLambda float64 `json:"drift_lambda,omitempty"`
	MinSamples  int     `json:"min_samples,omitempty"`
	// Relearn is the fresh-observation window (hyper-periods) collected
	// after drift fires before re-solving.
	Relearn int `json:"relearn,omitempty"`
}

// SessionSchedule is the schedule payload a session answers with: the two
// vectors the online phase consumes plus the solver's expected energy.
type SessionSchedule struct {
	Fingerprint     string    `json:"fingerprint"`
	PredictedEnergy float64   `json:"predicted_energy"`
	EndMs           []float64 `json:"end_ms"`
	WCWorkCycles    []float64 `json:"wcwork_cycles"`
}

// SessionResponse is the create response.
type SessionResponse struct {
	SessionID string `json:"session_id"`
	// Instances is the observation width: every observe row must carry this
	// many per-instance cycle counts, in the plan's instance order.
	Instances int             `json:"instances"`
	Tasks     int             `json:"tasks"`
	State     string          `json:"state"`
	Schedule  SessionSchedule `json:"schedule"`
}

// ObserveRequest is the POST /v1/sessions/{id}/observe body: consecutive
// hyper-periods of per-instance observed execution cycles.
type ObserveRequest struct {
	Hyperperiods [][]float64 `json:"hyperperiods"`
}

// ObserveResponse reports what the batch caused. Schedule is present only
// when a re-solve completed ("no change" answers omit it).
type ObserveResponse struct {
	SessionID string `json:"session_id"`
	Observed  int64  `json:"observed_hyperperiods"`
	Drift     bool   `json:"drift"`
	Resolved  bool   `json:"resolved"`
	State     string `json:"state"`
	// ResolvedHyperperiod is the observation index at which the re-solve
	// completed (present when Resolved): the adapted schedule is available
	// from this point — apply it at your executor's next hyper-period
	// boundary.
	ResolvedHyperperiod *int64           `json:"resolved_hyperperiod,omitempty"`
	Schedule            *SessionSchedule `json:"schedule,omitempty"`
}

// TaskEstimate is one task's learned execution-cycle distribution.
type TaskEstimate struct {
	Task  string  `json:"task"`
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	// ModelACEC is the ACEC of the model the current schedule was solved
	// against (after adaptations it tracks the learned mean).
	ModelACEC float64 `json:"model_acec"`
}

// SessionStatusResponse is the GET /v1/sessions/{id} body.
type SessionStatusResponse struct {
	SessionID           string          `json:"session_id"`
	State               string          `json:"state"`
	Observed            int64           `json:"observed_hyperperiods"`
	Resolves            int64           `json:"resolves"`
	Drifts              int64           `json:"drifts"`
	ResolveHyperperiods []int64         `json:"resolve_hyperperiods"`
	Estimates           []TaskEstimate  `json:"estimates"`
	Schedule            SessionSchedule `json:"schedule"`
}

// sessionSchedule snapshots the controller's current schedule payload.
// Callers hold the session lock.
func sessionSchedule(ctrl *feedback.Controller) SessionSchedule {
	s := ctrl.Schedule()
	return SessionSchedule{
		Fingerprint:     ctrl.Fingerprint(),
		PredictedEnergy: s.Energy,
		EndMs:           s.End,
		WCWorkCycles:    s.WCWork,
	}
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.nSessions.Add(1)
	var req SessionRequest
	if e := decode(r, &req); e != nil {
		writeResult(w, e)
		return
	}
	cr, e := s.canonicalize(&req.SubmitRequest)
	if e != nil {
		writeResult(w, e)
		return
	}
	if req.Objective == "wcs" {
		writeResult(w, errorf(http.StatusUnprocessableEntity,
			"admission: sessions adapt the average-case model; the objective is always acs"))
		return
	}
	s.mu.Lock()
	full := len(s.sessions) >= s.opts.SessionLimit
	s.mu.Unlock()
	if full {
		writeResult(w, errorf(http.StatusServiceUnavailable,
			"session limit (%d) reached", s.opts.SessionLimit))
		return
	}
	if err := core.Feasible(cr.set, cr.config(core.WorstCase)); err != nil {
		writeResult(w, errorf(http.StatusUnprocessableEntity, "admission: %v", err))
		return
	}
	opts := feedback.Options{
		Runner: s.runner,
		Solver: cr.config(core.AverageCase),
		Bins:   req.Bins,
		Drift: feedback.DriftConfig{
			Delta: req.DriftDelta, Lambda: req.DriftLambda, MinSamples: req.MinSamples,
		},
		Relearn: req.Relearn,
	}
	opts.Solver.WarmStart = nil // managed by the controller
	ctx, cancel := joinContexts(s.base, []context.Context{r.Context()})
	ctrl, err := feedback.NewController(ctx, cr.set, opts)
	cancel()
	if err != nil {
		writeResult(w, solveError("session synthesis", err))
		return
	}
	sess := &serverSession{ctrl: ctrl}
	// Snapshot every response field *before* the session becomes reachable:
	// ids are predictable, so a racing observe could otherwise mutate the
	// controller while this handler reads it un-locked.
	resp := &SessionResponse{
		Instances: len(ctrl.TaskOf()),
		Tasks:     cr.set.N(),
		State:     ctrl.State().String(),
		Schedule:  sessionSchedule(ctrl),
	}
	s.mu.Lock()
	// Re-check the limit at insertion: the pre-solve check is only a
	// fast-path reject, and concurrent creates could otherwise race past it
	// (the solve above runs unlocked). A loser here wasted one solve —
	// which the memo retains — but the bound holds.
	if len(s.sessions) >= s.opts.SessionLimit {
		s.mu.Unlock()
		writeResult(w, errorf(http.StatusServiceUnavailable,
			"session limit (%d) reached", s.opts.SessionLimit))
		return
	}
	s.sessionSeq++
	sess.id = fmt.Sprintf("s%d", s.sessionSeq)
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	resp.SessionID = sess.id
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) session(id string) *serverSession {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

func (s *Server) handleSessionObserve(w http.ResponseWriter, r *http.Request) {
	s.nObserves.Add(1)
	sess := s.session(r.PathValue("id"))
	if sess == nil {
		writeResult(w, errorf(http.StatusNotFound, "unknown session %q", r.PathValue("id")))
		return
	}
	var req ObserveRequest
	if e := decode(r, &req); e != nil {
		writeResult(w, e)
		return
	}
	if len(req.Hyperperiods) == 0 {
		writeResult(w, errorf(http.StatusUnprocessableEntity, "observe: no hyper-periods"))
		return
	}
	if len(req.Hyperperiods) > s.opts.MaxObserveBatch {
		writeResult(w, errorf(http.StatusUnprocessableEntity,
			"observe: %d hyper-periods exceeds the batch limit of %d",
			len(req.Hyperperiods), s.opts.MaxObserveBatch))
		return
	}
	ctx, cancel := joinContexts(s.base, []context.Context{r.Context()})
	defer cancel()
	sess.mu.Lock()
	defer sess.mu.Unlock()
	d, err := sess.ctrl.ObserveChunk(ctx, req.Hyperperiods)
	if err != nil {
		writeResult(w, solveError("observe", err))
		return
	}
	resp := &ObserveResponse{
		SessionID: sess.id,
		Observed:  sess.ctrl.Observed(),
		Drift:     d.Drift,
		Resolved:  d.Resolved,
		State:     d.State.String(),
	}
	if d.Resolved {
		at := d.ResolvedHyperperiod
		resp.ResolvedHyperperiod = &at
		sched := sessionSchedule(sess.ctrl)
		resp.Schedule = &sched
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess := s.session(r.PathValue("id"))
	if sess == nil {
		writeResult(w, errorf(http.StatusNotFound, "unknown session %q", r.PathValue("id")))
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	ctrl := sess.ctrl
	model := ctrl.Model()
	resp := &SessionStatusResponse{
		SessionID:           sess.id,
		State:               ctrl.State().String(),
		Observed:            ctrl.Observed(),
		Resolves:            ctrl.Resolves(),
		Drifts:              ctrl.DriftsFired(),
		ResolveHyperperiods: ctrl.ResolveHyperperiods(),
		Schedule:            sessionSchedule(ctrl),
	}
	for i := range model.Tasks {
		e := ctrl.Lifetime().Task(i)
		resp.Estimates = append(resp.Estimates, TaskEstimate{
			Task:      model.Tasks[i].Name,
			Count:     e.Count(),
			Mean:      e.Mean(),
			Std:       e.Std(),
			Min:       e.Min(),
			Max:       e.Max(),
			ModelACEC: model.Tasks[i].ACEC,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
