package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/feedback"
)

// Feedback sessions (DESIGN.md §8): a session is a stateful closed loop over
// one task set — the server holds a feedback.Controller per session, clients
// stream per-hyper-period execution observations into it, and the server
// answers either "no change" or a re-solved schedule with its fingerprint.
//
//	POST /v1/sessions               create: stated model → initial ACS
//	POST /v1/sessions/{id}/observe  feed observations → drift/re-solve verdict
//	GET  /v1/sessions/{id}          estimator and adaptation state
//
// Sessions are intentionally stateful, so they sit outside the stateless
// byte-determinism contract of submit/get/compare; their determinism contract
// is the controller's: every schedule payload (fingerprint, end-times,
// budgets, predicted energy) is a pure function of the creation body plus the
// ordered observation history, never of timing, batching, worker count or
// cache state. Session ids are allocation order ("s1", "s2", …) and are the
// one arrival-order-dependent field. Observes on one session serialise on the
// session lock; solves flow through the server's shared bounded memo, so a
// mode-switching workload that returns to a learned regime re-solves as a
// cache hit.

// serverSession is one resident closed loop. The creation knobs ride along
// because they are configuration, not controller state: a checkpoint stores
// them next to the controller snapshot so a restart can rebuild the exact
// feedback.Options the session was created with.
type serverSession struct {
	mu   sync.Mutex
	id   string
	ctrl *feedback.Controller

	starts, subCap           int
	bins                     int
	driftDelta, driftLambda  float64
	minSamples, relearnEvery int

	// lastAt/lastResp are the observe-idempotency window (DESIGN.md §11):
	// the stream position the last acked observe batch started at and the
	// exact response bytes it was answered with. A retry of that batch (same
	// `at`, same length) replays lastResp instead of re-folding — the door a
	// fleet client walks through when the ack was lost to a dying owner and
	// the retry lands on a replica that restored this checkpoint.
	lastAt   int64
	lastResp []byte
}

// sessionOptions rebuilds the feedback options for this session's knobs —
// the single definition both create and restore flow through, so a restored
// controller solves under byte-identical configuration.
func (s *Server) sessionOptions(sess *serverSession) feedback.Options {
	cr := &canonicalRequest{starts: sess.starts, subCap: sess.subCap}
	opts := feedback.Options{
		Runner: s.runner,
		Solver: cr.config(core.AverageCase),
		Bins:   sess.bins,
		Drift: feedback.DriftConfig{
			Delta: sess.driftDelta, Lambda: sess.driftLambda, MinSamples: sess.minSamples,
		},
		Relearn: sess.relearnEvery,
	}
	opts.Solver.WarmStart = nil // managed by the controller
	// Feed every solve-pipeline run into the feedback_resolve stage
	// histogram. Adaptation *counters* come from controller deltas around
	// ObserveChunk instead, so the initial session-create solve is timed
	// here but never counted as an adaptation.
	opts.OnResolve = func(d time.Duration) {
		s.m.observeStage("feedback_resolve", d.Seconds())
	}
	return opts
}

// sessionCheckpoint is the persisted form of one session: the creation knobs
// plus the controller's complete fold state (feedback.ControllerState).
type sessionCheckpoint struct {
	ID          string                    `json:"id"`
	Starts      int                       `json:"starts"`
	SubCap      int                       `json:"subcap"`
	Bins        int                       `json:"bins"`
	DriftDelta  float64                   `json:"drift_delta"`
	DriftLambda float64                   `json:"drift_lambda"`
	MinSamples  int                       `json:"min_samples"`
	Relearn     int                       `json:"relearn"`
	Controller  *feedback.ControllerState `json:"controller"`
	// LastAt/LastResp persist the observe-idempotency window, so a replica
	// restoring this checkpoint can replay the last acked batch's exact
	// bytes to a retrying client.
	LastAt   int64  `json:"last_at,omitempty"`
	LastResp []byte `json:"last_resp,omitempty"`
}

// SessionCheckpointObserved extracts the observation count from a session
// checkpoint blob without rebuilding the controller — the freshness key
// fleet replication compares when several peers hold checkpoints for the
// same session (highest observation count wins; identical counts imply
// identical state, because the controller is a deterministic fold). ok is
// false when the blob is not a parseable session checkpoint.
func SessionCheckpointObserved(blob []byte) (observed int64, ok bool) {
	var cp sessionCheckpoint
	if json.Unmarshal(blob, &cp) != nil || cp.Controller == nil {
		return 0, false
	}
	return cp.Controller.Observed, true
}

// checkpointSession atomically replaces the session's checkpoint blob.
// Callers hold sess.mu (Snapshot must be serialised with ObserveChunk).
// Failures are counted, never surfaced: a session that cannot checkpoint
// still serves — it just won't survive the next restart.
func (s *Server) checkpointSession(sess *serverSession) {
	if s.opts.Checkpoints == nil {
		return
	}
	blob, err := json.Marshal(&sessionCheckpoint{
		ID: sess.id, Starts: sess.starts, SubCap: sess.subCap, Bins: sess.bins,
		DriftDelta: sess.driftDelta, DriftLambda: sess.driftLambda,
		MinSamples: sess.minSamples, Relearn: sess.relearnEvery,
		Controller: sess.ctrl.Snapshot(),
		LastAt:     sess.lastAt, LastResp: sess.lastResp,
	})
	if err == nil {
		err = s.opts.Checkpoints.PutBlob("session-"+sess.id, blob)
	}
	if err != nil {
		s.noteCheckpointErr(err)
	}
}

// RestoreSessions rebuilds every checkpointed session from the blob store —
// call once at boot, before serving. Each controller is restored through
// feedback.RestoreController (its model re-solve is a content-store hit on a
// warm restart) and resumes its observation stream exactly where the last
// checkpoint left it: the next observe answers byte-identically to what an
// uninterrupted daemon would have answered. The session-id sequence resumes
// past the highest restored id. Corrupt checkpoints are skipped and counted
// as checkpoint errors; the session limit is enforced. ctx bounds the
// restore solves.
func (s *Server) RestoreSessions(ctx context.Context) (int, error) {
	if s.opts.Checkpoints == nil {
		return 0, nil
	}
	names, err := s.opts.Checkpoints.ListBlobs()
	if err != nil {
		return 0, fmt.Errorf("server: listing checkpoints: %w", err)
	}
	restored := 0
	for _, name := range names {
		if !strings.HasPrefix(name, "session-") {
			continue
		}
		blob, ok, err := s.opts.Checkpoints.GetBlob(name)
		if err != nil || !ok {
			s.m.checkpointErrs.Inc()
			continue
		}
		var cp sessionCheckpoint
		if json.Unmarshal(blob, &cp) != nil || cp.Controller == nil ||
			cp.ID == "" || "session-"+cp.ID != name {
			s.m.checkpointErrs.Inc()
			continue
		}
		sess := &serverSession{
			id: cp.ID, starts: cp.Starts, subCap: cp.SubCap, bins: cp.Bins,
			driftDelta: cp.DriftDelta, driftLambda: cp.DriftLambda,
			minSamples: cp.MinSamples, relearnEvery: cp.Relearn,
			lastAt: cp.LastAt, lastResp: cp.LastResp,
		}
		ctrl, err := feedback.RestoreController(ctx, cp.Controller, s.sessionOptions(sess))
		if err != nil {
			if ctx != nil && ctx.Err() != nil {
				return restored, err // canceled boot, not a bad checkpoint
			}
			s.m.checkpointErrs.Inc()
			continue
		}
		sess.ctrl = ctrl
		var seq int64
		fmt.Sscanf(cp.ID, "s%d", &seq)
		s.mu.Lock()
		if len(s.sessions) >= s.opts.SessionLimit {
			s.mu.Unlock()
			continue
		}
		s.sessions[cp.ID] = sess
		if seq > s.sessionSeq {
			s.sessionSeq = seq
		}
		s.mu.Unlock()
		restored++
		s.m.restored.Inc()
	}
	return restored, nil
}

// SessionRequest is the POST /v1/sessions body: a submit body plus the
// feedback knobs (zero values select the controller defaults).
type SessionRequest struct {
	SubmitRequest
	// SessionID, when set, names the session instead of the server's
	// allocation-order default ("s1", "s2", …): 1–64 characters of
	// [A-Za-z0-9._-]. The fleet router injects one so a session's identity —
	// and therefore its ring position — is fixed before any peer sees the
	// request; a create whose id is already resident answers 409. Creation
	// is otherwise a pure function of the body, so a lost-ack retry that
	// lands on a replica re-creates the same session byte-identically.
	SessionID string `json:"session_id,omitempty"`
	// Bins is the estimator histogram resolution per task.
	Bins int `json:"bins,omitempty"`
	// DriftDelta and DriftLambda parameterise the Page–Hinkley detector in
	// standardized units; MinSamples is its warm-up length.
	DriftDelta  float64 `json:"drift_delta,omitempty"`
	DriftLambda float64 `json:"drift_lambda,omitempty"`
	MinSamples  int     `json:"min_samples,omitempty"`
	// Relearn is the fresh-observation window (hyper-periods) collected
	// after drift fires before re-solving.
	Relearn int `json:"relearn,omitempty"`
}

// SessionSchedule is the schedule payload a session answers with: the two
// vectors the online phase consumes plus the solver's expected energy.
type SessionSchedule struct {
	Fingerprint     string    `json:"fingerprint"`
	PredictedEnergy float64   `json:"predicted_energy"`
	EndMs           []float64 `json:"end_ms"`
	WCWorkCycles    []float64 `json:"wcwork_cycles"`
}

// SessionResponse is the create response.
type SessionResponse struct {
	SessionID string `json:"session_id"`
	// Instances is the observation width: every observe row must carry this
	// many per-instance cycle counts, in the plan's instance order.
	Instances int             `json:"instances"`
	Tasks     int             `json:"tasks"`
	State     string          `json:"state"`
	Schedule  SessionSchedule `json:"schedule"`
}

// ObserveRequest is the POST /v1/sessions/{id}/observe body: consecutive
// hyper-periods of per-instance observed execution cycles.
type ObserveRequest struct {
	Hyperperiods [][]float64 `json:"hyperperiods"`
	// At, when set, asserts the stream position this batch starts at (the
	// number of hyper-periods the client has had acknowledged). It makes
	// observes idempotent across failover: a position matching the session
	// applies normally; an exact retry of the last acked batch replays its
	// stored response bytes; a position *ahead* of this instance's fold
	// means the instance is stale (a revived owner) and triggers a refresh
	// from the freshest replicated checkpoint before re-evaluating; anything
	// else is a deterministic 409. Clients retrying through the fleet MUST
	// resend the identical batch with the identical `at`.
	At *int64 `json:"at,omitempty"`
}

// ObserveResponse reports what the batch caused. Schedule is present only
// when a re-solve completed ("no change" answers omit it).
type ObserveResponse struct {
	SessionID string `json:"session_id"`
	Observed  int64  `json:"observed_hyperperiods"`
	Drift     bool   `json:"drift"`
	Resolved  bool   `json:"resolved"`
	State     string `json:"state"`
	// ResolvedHyperperiod is the observation index at which the re-solve
	// completed (present when Resolved): the adapted schedule is available
	// from this point — apply it at your executor's next hyper-period
	// boundary.
	ResolvedHyperperiod *int64           `json:"resolved_hyperperiod,omitempty"`
	Schedule            *SessionSchedule `json:"schedule,omitempty"`
}

// TaskEstimate is one task's learned execution-cycle distribution.
type TaskEstimate struct {
	Task  string  `json:"task"`
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	// ModelACEC is the ACEC of the model the current schedule was solved
	// against (after adaptations it tracks the learned mean).
	ModelACEC float64 `json:"model_acec"`
}

// SessionStatusResponse is the GET /v1/sessions/{id} body.
type SessionStatusResponse struct {
	SessionID           string          `json:"session_id"`
	State               string          `json:"state"`
	Observed            int64           `json:"observed_hyperperiods"`
	Resolves            int64           `json:"resolves"`
	Drifts              int64           `json:"drifts"`
	ResolveHyperperiods []int64         `json:"resolve_hyperperiods"`
	Estimates           []TaskEstimate  `json:"estimates"`
	Schedule            SessionSchedule `json:"schedule"`
}

// sessionSchedule snapshots the controller's current schedule payload.
// Callers hold the session lock.
func sessionSchedule(ctrl *feedback.Controller) SessionSchedule {
	s := ctrl.Schedule()
	return SessionSchedule{
		Fingerprint:     ctrl.Fingerprint(),
		PredictedEnergy: s.Energy,
		EndMs:           s.End,
		WCWorkCycles:    s.WCWork,
	}
}

// sessionLimitError is the create-path 503: session slots free up on a
// human timescale (sessions live for the daemon's lifetime), so its
// Retry-After is longer than the overload default.
func (s *Server) sessionLimitError() *apiError {
	e := errorf(http.StatusServiceUnavailable, "session limit (%d) reached", s.opts.SessionLimit)
	e.retryAfter = 5
	return e
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.m.sessionCreates.Inc()
	release, e := s.acquire(r.Context())
	if e != nil {
		writeResult(w, e)
		return
	}
	defer release()
	var req SessionRequest
	if e := decode(r, &req); e != nil {
		writeResult(w, e)
		return
	}
	cr, e := s.canonicalize(&req.SubmitRequest)
	if e != nil {
		writeResult(w, e)
		return
	}
	if req.Objective == "wcs" {
		writeResult(w, errorf(http.StatusUnprocessableEntity,
			"admission: sessions adapt the average-case model; the objective is always acs"))
		return
	}
	// The feedback loop observes and re-solves one processor's plan;
	// partitioned sets would need per-core estimator state that does not
	// exist yet. Reject rather than silently adapting the single-core form.
	if cr.cores > 1 {
		writeResult(w, errorf(http.StatusUnprocessableEntity,
			"admission: sessions are single-core; omit the cores field (got %d)", cr.cores))
		return
	}
	if req.SessionID != "" && !validSessionID(req.SessionID) {
		writeResult(w, errorf(http.StatusUnprocessableEntity,
			"admission: session_id must be 1-64 characters of [A-Za-z0-9._-]"))
		return
	}
	s.mu.Lock()
	full := len(s.sessions) >= s.opts.SessionLimit
	s.mu.Unlock()
	if full {
		writeResult(w, s.sessionLimitError())
		return
	}
	if err := core.Feasible(cr.set, cr.config(core.WorstCase)); err != nil {
		writeResult(w, errorf(http.StatusUnprocessableEntity, "admission: %v", err))
		return
	}
	sess := &serverSession{
		starts: cr.starts, subCap: cr.subCap, bins: req.Bins,
		driftDelta: req.DriftDelta, driftLambda: req.DriftLambda,
		minSamples: req.MinSamples, relearnEvery: req.Relearn,
	}
	ctx, cancel := joinContexts(s.base, []context.Context{r.Context()})
	ctrl, err := feedback.NewController(ctx, cr.set, s.sessionOptions(sess))
	cancel()
	if err != nil {
		writeResult(w, solveError("session synthesis", err))
		return
	}
	sess.ctrl = ctrl
	// Snapshot every response field *before* the session becomes reachable:
	// ids are predictable, so a racing observe could otherwise mutate the
	// controller while this handler reads it un-locked.
	resp := &SessionResponse{
		Instances: len(ctrl.TaskOf()),
		Tasks:     cr.set.N(),
		State:     ctrl.State().String(),
		Schedule:  sessionSchedule(ctrl),
	}
	s.mu.Lock()
	// Re-check the limit at insertion: the pre-solve check is only a
	// fast-path reject, and concurrent creates could otherwise race past it
	// (the solve above runs unlocked). A loser here wasted one solve —
	// which the memo retains — but the bound holds.
	if len(s.sessions) >= s.opts.SessionLimit {
		s.mu.Unlock()
		writeResult(w, s.sessionLimitError())
		return
	}
	if req.SessionID != "" {
		if _, exists := s.sessions[req.SessionID]; exists {
			s.mu.Unlock()
			writeResult(w, errorf(http.StatusConflict, "session %q already exists", req.SessionID))
			return
		}
		sess.id = req.SessionID
	} else {
		s.sessionSeq++
		sess.id = fmt.Sprintf("s%d", s.sessionSeq)
	}
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	resp.SessionID = sess.id
	// First checkpoint: the session survives a restart even before its first
	// observe. Under the session lock — the session is reachable now, so an
	// early observe could otherwise snapshot mid-fold.
	sess.mu.Lock()
	s.checkpointSession(sess)
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) session(id string) *serverSession {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// validSessionID reports whether id is acceptable as a caller-supplied
// session name: 1–64 characters of [A-Za-z0-9._-]. Server-allocated "sN"
// ids trivially satisfy it.
func validSessionID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// sessionOrRestore resolves a session id to its resident session, lazily
// rebuilding it from the checkpoint store when absent — the fleet takeover
// path (DESIGN.md §11): a replica that never hosted this session receives
// its routed traffic after the owner died, restores the controller from the
// freshest replicated checkpoint, and continues the observation stream
// byte-identically. restoreMu makes racing requests pay for one restore
// solve, not one each. (nil, nil) means no such session anywhere — the
// caller answers 404.
func (s *Server) sessionOrRestore(ctx context.Context, id string) (*serverSession, *apiError) {
	if sess := s.session(id); sess != nil {
		return sess, nil
	}
	if s.opts.Checkpoints == nil || !validSessionID(id) {
		return nil, nil
	}
	s.restoreMu.Lock()
	defer s.restoreMu.Unlock()
	if sess := s.session(id); sess != nil { // raced: another request restored it
		return sess, nil
	}
	blob, ok, err := s.opts.Checkpoints.GetBlob("session-" + id)
	if err != nil || !ok {
		return nil, nil
	}
	var cp sessionCheckpoint
	if json.Unmarshal(blob, &cp) != nil || cp.Controller == nil || cp.ID != id {
		s.m.checkpointErrs.Inc()
		return nil, nil
	}
	sess := &serverSession{
		id: id, starts: cp.Starts, subCap: cp.SubCap, bins: cp.Bins,
		driftDelta: cp.DriftDelta, driftLambda: cp.DriftLambda,
		minSamples: cp.MinSamples, relearnEvery: cp.Relearn,
		lastAt: cp.LastAt, lastResp: cp.LastResp,
	}
	ctrl, err := feedback.RestoreController(ctx, cp.Controller, s.sessionOptions(sess))
	if err != nil {
		if ctx != nil && ctx.Err() != nil {
			return nil, errorf(http.StatusServiceUnavailable, "session restore canceled")
		}
		s.m.checkpointErrs.Inc()
		return nil, nil
	}
	sess.ctrl = ctrl
	s.mu.Lock()
	if len(s.sessions) >= s.opts.SessionLimit {
		s.mu.Unlock()
		return nil, s.sessionLimitError()
	}
	s.sessions[id] = sess
	var seq int64
	fmt.Sscanf(id, "s%d", &seq)
	if seq > s.sessionSeq {
		s.sessionSeq = seq
	}
	s.mu.Unlock()
	s.m.restored.Inc()
	return sess, nil
}

// refreshSessionLocked re-reads the session's checkpoint and, when it is
// ahead of the resident fold, swaps in a controller restored from it.
// Callers hold sess.mu. In a fleet, Checkpoints is the replication layer
// whose reads return the freshest replica's checkpoint — this is how a
// revived owner heals itself when a client's `at` proves its resident state
// stale (its replicas advanced the session while it was down). Failures
// leave the session untouched; the caller's position check then answers a
// deterministic 409 and the client retries elsewhere.
func (s *Server) refreshSessionLocked(ctx context.Context, sess *serverSession) {
	if s.opts.Checkpoints == nil {
		return
	}
	blob, ok, err := s.opts.Checkpoints.GetBlob("session-" + sess.id)
	if err != nil || !ok {
		return
	}
	var cp sessionCheckpoint
	if json.Unmarshal(blob, &cp) != nil || cp.Controller == nil || cp.ID != sess.id {
		s.m.checkpointErrs.Inc()
		return
	}
	if cp.Controller.Observed <= sess.ctrl.Observed() {
		return
	}
	ctrl, err := feedback.RestoreController(ctx, cp.Controller, s.sessionOptions(sess))
	if err != nil {
		return
	}
	sess.ctrl = ctrl
	sess.lastAt = cp.LastAt
	sess.lastResp = cp.LastResp
	s.m.restored.Inc()
}

func (s *Server) handleSessionObserve(w http.ResponseWriter, r *http.Request) {
	s.m.observes.Inc()
	release, e := s.acquire(r.Context())
	if e != nil {
		writeResult(w, e)
		return
	}
	defer release()
	ctx, cancel := joinContexts(s.base, []context.Context{r.Context()})
	defer cancel()
	sess, e := s.sessionOrRestore(ctx, r.PathValue("id"))
	if e != nil {
		writeResult(w, e)
		return
	}
	if sess == nil {
		writeResult(w, errorf(http.StatusNotFound, "unknown session %q", r.PathValue("id")))
		return
	}
	var req ObserveRequest
	if e := decode(r, &req); e != nil {
		writeResult(w, e)
		return
	}
	if len(req.Hyperperiods) == 0 {
		writeResult(w, errorf(http.StatusUnprocessableEntity, "observe: no hyper-periods"))
		return
	}
	if len(req.Hyperperiods) > s.opts.MaxObserveBatch {
		writeResult(w, errorf(http.StatusUnprocessableEntity,
			"observe: %d hyper-periods exceeds the batch limit of %d",
			len(req.Hyperperiods), s.opts.MaxObserveBatch))
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if req.At != nil {
		at, n := *req.At, int64(len(req.Hyperperiods))
		if at > sess.ctrl.Observed() {
			// The resident fold is behind the client's acked stream: this
			// instance is stale (a revived owner). Catch up from the
			// freshest replicated checkpoint, then re-evaluate the position.
			s.refreshSessionLocked(ctx, sess)
		}
		if at == sess.lastAt && sess.lastResp != nil && at+n == sess.ctrl.Observed() {
			// Exact retry of the last acked batch (its ack was lost in
			// flight): replay the stored response bytes instead of
			// re-folding — byte-identical to the lost original.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(sess.lastResp)
			return
		}
		if at != sess.ctrl.Observed() {
			writeResult(w, errorf(http.StatusConflict,
				"observe: batch asserts position %d but the session is at %d",
				at, sess.ctrl.Observed()))
			return
		}
	}
	prev := sess.ctrl.Observed()
	prevDrifts, prevResolves := sess.ctrl.DriftsFired(), sess.ctrl.Resolves()
	d, err := sess.ctrl.ObserveChunk(ctx, req.Hyperperiods)
	if err != nil {
		writeResult(w, solveError("observe", err))
		return
	}
	// Controller deltas, not raw totals: a restored controller carries its
	// lifetime counts, so only what *this* batch caused is added here.
	s.m.driftsFired.Add(sess.ctrl.DriftsFired() - prevDrifts)
	s.m.feedbackSolves.Add(sess.ctrl.Resolves() - prevResolves)
	if s.opts.ObserveSink != nil {
		s.opts.ObserveSink(sess.id, sess.ctrl.Model(), req.Hyperperiods)
	}
	resp := &ObserveResponse{
		SessionID: sess.id,
		Observed:  sess.ctrl.Observed(),
		Drift:     d.Drift,
		Resolved:  d.Resolved,
		State:     d.State.String(),
	}
	if d.Resolved {
		at := d.ResolvedHyperperiod
		resp.ResolvedHyperperiod = &at
		sched := sessionSchedule(sess.ctrl)
		resp.Schedule = &sched
	}
	buf, err := json.Marshal(resp)
	if err != nil {
		writeResult(w, errorf(http.StatusInternalServerError, "encoding failure"))
		return
	}
	buf = append(buf, '\n')
	// Record the idempotency window and checkpoint the advanced fold state
	// before replying: once the client has seen this response, a
	// crash-and-restore resumes at or after it — the stream never rewinds
	// past an acknowledged observation, and a retry of exactly this batch
	// replays exactly these bytes.
	sess.lastAt = prev
	sess.lastResp = buf
	s.checkpointSession(sess)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf)
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := joinContexts(s.base, []context.Context{r.Context()})
	defer cancel()
	sess, e := s.sessionOrRestore(ctx, r.PathValue("id"))
	if e != nil {
		writeResult(w, e)
		return
	}
	if sess == nil {
		writeResult(w, errorf(http.StatusNotFound, "unknown session %q", r.PathValue("id")))
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	ctrl := sess.ctrl
	model := ctrl.Model()
	resp := &SessionStatusResponse{
		SessionID:           sess.id,
		State:               ctrl.State().String(),
		Observed:            ctrl.Observed(),
		Resolves:            ctrl.Resolves(),
		Drifts:              ctrl.DriftsFired(),
		ResolveHyperperiods: ctrl.ResolveHyperperiods(),
		Schedule:            sessionSchedule(ctrl),
	}
	for i := range model.Tasks {
		e := ctrl.Lifetime().Task(i)
		resp.Estimates = append(resp.Estimates, TaskEstimate{
			Task:      model.Tasks[i].Name,
			Count:     e.Count(),
			Mean:      e.Mean(),
			Std:       e.Std(),
			Min:       e.Min(),
			Max:       e.Max(),
			ModelACEC: model.Tasks[i].ACEC,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
