package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/task"
	"repro/internal/workload"
)

// The fleet hooks (DESIGN.md §11): caller-named sessions, position-asserting
// idempotent observes, lazy session takeover from a shared checkpoint store,
// stale-resident refresh, and the internal blob-replication endpoints. These
// tests drive them against plain servers sharing a store.MemBlobs — exactly
// what fleet replication looks like from one peer's point of view.

// observeAtBody renders rows plus the stream-position assertion.
func observeAtBody(t *testing.T, rows [][]float64, at int64) string {
	t.Helper()
	b, err := json.Marshal(ObserveRequest{Hyperperiods: rows, At: &at})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// sessionRows builds a session body, its custom-id create form, and a
// deterministic observation stream for it.
func sessionRows(t *testing.T, seed uint64, id string, n int) (string, [][]float64) {
	t.Helper()
	body, set := sessionBody(t, seed)
	if id != "" {
		body = `{"session_id":"` + id + `",` + body[1:]
	}
	sc, err := workload.NewScenario(set, workload.ScenarioConfig{Kind: workload.ModeSwitch, Seed: 9, SwitchEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := set.Instances()
	if err != nil {
		t.Fatal(err)
	}
	taskOf := make([]int, len(ins))
	for i := range ins {
		taskOf[i] = ins[i].TaskIndex
	}
	rows, err := sc.Actuals(n, taskOf)
	if err != nil {
		t.Fatal(err)
	}
	return body, rows
}

func TestSessionCustomID(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body, _ := sessionRows(t, 3, "fleet-a1", 0)

	code, resp := post(t, ts.URL+"/v1/sessions", body)
	if code != http.StatusOK {
		t.Fatalf("create: %d %s", code, resp)
	}
	var created SessionResponse
	if err := json.Unmarshal([]byte(resp), &created); err != nil {
		t.Fatal(err)
	}
	if created.SessionID != "fleet-a1" {
		t.Fatalf("created id %q, want the requested fleet-a1", created.SessionID)
	}

	// Same id again: the session is resident, so a second create conflicts.
	code, resp = post(t, ts.URL+"/v1/sessions", body)
	if code != http.StatusConflict {
		t.Fatalf("duplicate create: %d %s, want 409", code, resp)
	}

	// Malformed ids are rejected before any solving.
	bad, _ := sessionBody(t, 3)
	bad = `{"session_id":"no/slashes",` + bad[1:]
	code, resp = post(t, ts.URL+"/v1/sessions", bad)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("bad id: %d %s, want 422", code, resp)
	}
}

// TestObserveIdempotency: `at` makes the observe stream safe to retry — an
// exact replay of the last acked batch returns the stored bytes, and any
// other position mismatch is a deterministic 409.
func TestObserveIdempotency(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body, rows := sessionRows(t, 3, "idem", 30)
	if code, resp := post(t, ts.URL+"/v1/sessions", body); code != http.StatusOK {
		t.Fatalf("create: %d %s", code, resp)
	}
	base := ts.URL + "/v1/sessions/idem/observe"

	code, first := post(t, base, observeAtBody(t, rows[0:10], 0))
	if code != http.StatusOK {
		t.Fatalf("batch 1: %d %s", code, first)
	}
	// Retry of the acked batch: byte-identical replay, no double-fold.
	code, replay := post(t, base, observeAtBody(t, rows[0:10], 0))
	if code != http.StatusOK || replay != first {
		t.Fatalf("replay answered %d %q, want the original bytes", code, replay)
	}
	// The fold did not advance: the next batch applies at position 10.
	code, second := post(t, base, observeAtBody(t, rows[10:20], 10))
	if code != http.StatusOK {
		t.Fatalf("batch 2: %d %s", code, second)
	}
	var ob ObserveResponse
	if err := json.Unmarshal([]byte(second), &ob); err != nil {
		t.Fatal(err)
	}
	if ob.Observed != 20 {
		t.Fatalf("observed %d after two batches, want 20", ob.Observed)
	}
	// A position that is neither current nor the acked window: 409.
	if code, resp := post(t, base, observeAtBody(t, rows[10:20], 5)); code != http.StatusConflict {
		t.Fatalf("stale position answered %d %s, want 409", code, resp)
	}
	// Replaying batch 1 after batch 2 is also a conflict — only the *last*
	// acked batch has a stored response.
	if code, resp := post(t, base, observeAtBody(t, rows[0:10], 0)); code != http.StatusConflict {
		t.Fatalf("deep replay answered %d %s, want 409", code, resp)
	}
}

// TestSessionTakeoverAndRefresh is fleet failover in miniature: two servers
// share one blob store (the replicated checkpoint view). The session hops
// A → B (lazy takeover restore) and back A (stale-resident refresh), and
// every response is byte-identical to an uninterrupted single-server run.
func TestSessionTakeoverAndRefresh(t *testing.T) {
	shared := store.NewMemBlobs()
	srvA, tsA := newTestServer(t, Options{Checkpoints: shared})
	srvB, tsB := newTestServer(t, Options{Checkpoints: shared})
	_, tsRef := newTestServer(t, Options{})

	body, rows := sessionRows(t, 4, "hop", 30)
	batches := [][2]int{{0, 10}, {10, 20}, {20, 30}}

	// Reference: one server, no hops.
	var want []string
	if code, resp := post(t, tsRef.URL+"/v1/sessions", body); code != http.StatusOK {
		t.Fatalf("ref create: %d %s", code, resp)
	}
	for i, b := range batches {
		code, resp := post(t, tsRef.URL+"/v1/sessions/hop/observe", observeAtBody(t, rows[b[0]:b[1]], int64(b[0])))
		if code != http.StatusOK {
			t.Fatalf("ref batch %d: %d %s", i, code, resp)
		}
		want = append(want, resp)
	}

	// Fleet-shaped run: create + batch 1 on A, batch 2 on B (which has never
	// seen the session — lazy takeover from the shared checkpoints), batch 3
	// back on A (whose resident fold is now stale — refresh-on-gap).
	if code, resp := post(t, tsA.URL+"/v1/sessions", body); code != http.StatusOK {
		t.Fatalf("create on A: %d %s", code, resp)
	}
	urls := []string{tsA.URL, tsB.URL, tsA.URL}
	for i, b := range batches {
		code, resp := post(t, urls[i]+"/v1/sessions/hop/observe", observeAtBody(t, rows[b[0]:b[1]], int64(b[0])))
		if code != http.StatusOK {
			t.Fatalf("hop batch %d: %d %s", i, code, resp)
		}
		if resp != want[i] {
			t.Fatalf("hop batch %d diverged from the single-server reference:\n got %s\nwant %s", i, resp, want[i])
		}
	}
	// Replay of the final batch on B: it must refresh past its own stale
	// fold and replay the acked bytes.
	code, resp := post(t, tsB.URL+"/v1/sessions/hop/observe", observeAtBody(t, rows[20:30], 20))
	if code != http.StatusOK || resp != want[2] {
		t.Fatalf("replay on B: %d %q, want the reference bytes", code, resp)
	}
	if n := srvB.m.restored.Value(); n == 0 {
		t.Error("B answered without a takeover restore")
	}
	if n := srvA.m.restored.Value(); n == 0 {
		t.Error("A answered batch 3 without refreshing its stale fold")
	}
	// Status reads also restore lazily: a third server can answer them.
	srvC, tsC := newTestServer(t, Options{Checkpoints: shared})
	code, resp = get(t, tsC.URL+"/v1/sessions/hop")
	if code != http.StatusOK {
		t.Fatalf("status on C: %d %s", code, resp)
	}
	var st SessionStatusResponse
	if err := json.Unmarshal([]byte(resp), &st); err != nil {
		t.Fatal(err)
	}
	if st.Observed != 30 {
		t.Fatalf("C sees %d observations, want 30", st.Observed)
	}
	_ = srvA
	_ = srvC
}

func TestInternalBlobEndpoints(t *testing.T) {
	// A standalone daemon has no peers: the paths answer 404.
	_, tsPlain := newTestServer(t, Options{})
	if code, resp := putBlob(t, tsPlain.URL, "x", []byte("y")); code != http.StatusNotFound {
		t.Fatalf("non-fleet PUT: %d %s, want 404", code, resp)
	}

	blobs := store.NewMemBlobs()
	_, ts := newTestServer(t, Options{InternalBlobs: blobs})
	payload := []byte(`{"anything":"goes"}`)
	if code, resp := putBlob(t, ts.URL, "session-s9", payload); code != http.StatusOK {
		t.Fatalf("PUT: %d %s", code, resp)
	}
	got, ok, err := blobs.GetBlob("session-s9")
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("pushed blob not stored: %v %v %q", err, ok, got)
	}
	code, body := get(t, ts.URL+"/v1/internal/blobs/session-s9")
	if code != http.StatusOK || body != string(payload) {
		t.Fatalf("GET: %d %q", code, body)
	}
	if code, _ := get(t, ts.URL+"/v1/internal/blobs/absent"); code != http.StatusNotFound {
		t.Fatalf("GET absent blob: %d, want 404", code)
	}
}

func putBlob(t *testing.T, base, name string, data []byte) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/internal/blobs/"+name, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestSessionCheckpointObserved(t *testing.T) {
	shared := store.NewMemBlobs()
	_, ts := newTestServer(t, Options{Checkpoints: shared})
	body, rows := sessionRows(t, 5, "fresh", 10)
	if code, resp := post(t, ts.URL+"/v1/sessions", body); code != http.StatusOK {
		t.Fatalf("create: %d %s", code, resp)
	}
	blob, ok, _ := shared.GetBlob("session-fresh")
	if !ok {
		t.Fatal("no checkpoint after create")
	}
	if n, ok := SessionCheckpointObserved(blob); !ok || n != 0 {
		t.Fatalf("fresh checkpoint observed=%d ok=%v, want 0/true", n, ok)
	}
	if code, resp := post(t, ts.URL+"/v1/sessions/fresh/observe", observeBody(t, rows)); code != http.StatusOK {
		t.Fatalf("observe: %d %s", code, resp)
	}
	blob, _, _ = shared.GetBlob("session-fresh")
	if n, ok := SessionCheckpointObserved(blob); !ok || n != 10 {
		t.Fatalf("advanced checkpoint observed=%d ok=%v, want 10/true", n, ok)
	}
	if _, ok := SessionCheckpointObserved([]byte("not json")); ok {
		t.Error("garbage parsed as a checkpoint")
	}
	if _, ok := SessionCheckpointObserved([]byte(`{"id":"x"}`)); ok {
		t.Error("controller-less blob parsed as a checkpoint")
	}
}

// TestSubmitFingerprint: the router-side fingerprint matches what the server
// answers, under the same defaults — the property consistent-hash routing
// by content address rests on.
func TestSubmitFingerprint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := smallBody(7)
	var req SubmitRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	fp, ok := SubmitFingerprint(&req, 0, 0)
	if !ok || fp == "" {
		t.Fatal("feasible body did not fingerprint")
	}
	code, resp := post(t, ts.URL+"/v1/schedules", body)
	if code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, resp)
	}
	var sr ScheduleResponse
	if err := json.Unmarshal([]byte(resp), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Fingerprint != fp {
		t.Fatalf("router fingerprint %s, server answered %s", fp, sr.Fingerprint)
	}
	if _, ok := SubmitFingerprint(&SubmitRequest{}, 0, 0); ok {
		t.Error("empty body fingerprinted")
	}
	if _, ok := SubmitFingerprint(&SubmitRequest{Tasks: make([]task.Task, 100)}, 0, 64); ok {
		t.Error("over-limit body fingerprinted")
	}
	// Objective changes the address, like it does on the server.
	var wcsReq SubmitRequest
	if err := json.Unmarshal([]byte(body), &wcsReq); err != nil {
		t.Fatal(err)
	}
	wcsReq.Objective = "wcs"
	if fp2, ok := SubmitFingerprint(&wcsReq, 0, 0); !ok || fp2 == fp {
		t.Error("wcs objective shares the acs fingerprint")
	}
	_ = strings.TrimSpace("")
}
