// Package server turns the offline ACS/WCS synthesis pipeline into a
// long-running scheduling service (DESIGN.md §7): clients submit task sets
// over HTTP/JSON and receive an admission check, a solved static voltage
// schedule, and predicted energies; previously submitted schedules can be
// fetched again by fingerprint, and an ACS-vs-WCS simulated comparison is
// available per set.
//
// Endpoints (all JSON):
//
//	POST /v1/schedules              submit a task set → admission + synthesis
//	GET  /v1/schedules/{fp}         re-fetch a submitted schedule by fingerprint
//	POST /v1/compare                simulated ACS vs WCS comparison for a task set
//	POST /v1/sessions               open a feedback session (internal/feedback)
//	POST /v1/sessions/{id}/observe  stream execution observations → adaptation
//	GET  /v1/sessions/{id}          session estimator/adaptation state
//	GET  /v1/stats                  cache, batching and request counters
//	GET  /v1/healthz                liveness probe
//	GET  /metrics                   Prometheus text exposition (DESIGN.md §13)
//
// Determinism contract: the response body of every submit, get and compare
// request is a pure function of the request body — byte-identical regardless
// of batch composition, worker count, or cache state (the /v1/stats and
// /v1/healthz endpoints report operational state and are exempt; the
// stateful session endpoints carry the controller's history-determinism
// contract instead — see sessions.go). This
// extends the grid engine's determinism contract (DESIGN.md §6) to the
// serving path and is pinned by TestServerConcurrentDeterminism.
//
// Requests are coalesced by a micro-batching dispatcher (collect up to
// BatchSize requests or BatchWindow, whichever first) and deduplicated by
// content fingerprint, so a thundering herd submitting the same task set
// pays for one solve; the shared grid.Memo behind the runner is bounded
// (LRU, byte-accounted), so a resident daemon's cache cannot grow without
// limit.
//
// Overload and failure degrade, never crash (DESIGN.md §10): solving
// requests pass a bounded admission queue and are shed with 503 +
// Retry-After past saturation; a submit whose ACS refinement exhausts the
// per-request solve budget is answered with the WCS fallback schedule marked
// "degraded": true (worst-case feasible, so always deadline-safe); handler
// and solve-pipeline panics are isolated to a 500 for the one request; and a
// store.Tiered backend with a tripped disk breaker silently serves
// memory-only. Every one of these events is accounted in /v1/stats.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
)

// Options configures a Server. The zero value selects sensible daemon
// defaults.
type Options struct {
	// Workers is the grid worker-pool width (0 = GOMAXPROCS). Responses
	// never depend on it.
	Workers int
	// MemoBytes caps the shared schedule/plan cache (estimated resident
	// bytes, LRU eviction). 0 selects the 256 MiB default; negative means
	// unbounded (not recommended for a resident daemon).
	MemoBytes int64
	// BatchSize is the micro-batching dispatcher's maximum batch (default
	// 16): the dispatcher collects up to this many requests, or for
	// BatchWindow, whichever fills first, then solves the batch as one
	// index-addressed grid job set.
	BatchSize int
	// BatchWindow is the micro-batch collection deadline (default 2ms).
	BatchWindow time.Duration
	// Starts is the default solver multi-start count for requests that do
	// not set their own (0/1 = single start).
	Starts int
	// SimHyperperiods is the default hyper-period count for /v1/compare
	// (default 200).
	SimHyperperiods int
	// SimWorkers shards each comparison simulation (0 = GOMAXPROCS;
	// results are bit-identical for any value).
	SimWorkers int
	// MaxTasks bounds the admission check: task sets larger than this are
	// rejected before any solving (default 64).
	MaxTasks int
	// StoreLimit bounds how many canonical requests are retained for
	// GET /v1/schedules/{fp} (default 4096, FIFO eviction; an evicted
	// fingerprint answers 404 until resubmitted).
	StoreLimit int
	// SessionLimit bounds resident feedback sessions (default 64); creation
	// beyond it answers 503 until sessions free up (sessions live for the
	// daemon's lifetime — there is deliberately no implicit eviction of a
	// stateful learning loop).
	SessionLimit int
	// MaxObserveBatch bounds hyper-periods per observe call (default 4096).
	MaxObserveBatch int
	// Store, when non-nil, supplies the residency backend for the shared
	// schedule/plan cache instead of the MemoBytes-bounded in-memory default —
	// typically a store.Tiered (memory over the crash-safe disk log), which
	// makes solves survive restarts. The byte-determinism contract makes the
	// swap invisible: every backend yields identical response bytes
	// (TestStoreBackendIdentity).
	Store grid.Store
	// Checkpoints, when non-nil, persists canonical requests and session
	// controller snapshots as named blobs (store.Disk implements it; wrap it
	// in store.Tiered to put the daemon's circuit breaker between the server
	// and the device), so GET /v1/schedules/{fp} and adaptive sessions
	// survive a daemon restart via RestoreSessions. Checkpoint write
	// failures are counted and logged once, never surfaced to clients:
	// durability is an optimization here, not correctness.
	Checkpoints BlobStore
	// MaxInflight bounds concurrently admitted solving requests (submit,
	// get, compare, session create/observe; default 256). A request that
	// cannot claim a seat queues for up to QueueWait and is then shed with
	// 503 + Retry-After — overload costs queued latency or a clean
	// retryable rejection, never an unbounded pileup.
	MaxInflight int
	// QueueWait is how long an over-limit request may wait for a seat
	// before being shed (default 100ms).
	QueueWait time.Duration
	// SolveBudget bounds the ACS refinement of each submit/get request
	// (0 = unlimited). A request whose ACS solve exceeds the budget is
	// answered with the already-built WCS schedule marked "degraded": true —
	// the paper's worst-case-feasible fallback as the degraded-mode
	// contract. The WCS baseline itself is never budgeted: it is the
	// fallback's existence proof and is cheap relative to ACS refinement.
	SolveBudget time.Duration
	// InternalBlobs, when non-nil, exposes the peer-replication endpoints
	// PUT/GET /v1/internal/blobs/{name} over this store — the door fleet
	// peers push replicated checkpoints and schedule records through
	// (DESIGN.md §11). It is typically the same underlying store Checkpoints
	// wraps, minus the replication layer (a peer receiving a pushed blob
	// stores it locally; re-pushing it would loop). Nil (the default) answers
	// those paths 404: a standalone daemon has no peers.
	InternalBlobs BlobStore
	// Faults, when non-nil, arms the server's own failpoints
	// ("handler.panic", "pipeline.panic") for the chaos harness. Production
	// deployments leave it nil.
	Faults *fault.Registry
	// ObserveSink, when non-nil, receives every successfully folded
	// observation batch: the session id, the model the session's current
	// schedule was solved against, and the batch's rows (plan order, one
	// per hyper-period). This is the trace-recording hook behind schedd's
	// -trace-dir. Called synchronously after the fold, outside the session
	// lock's critical decisions — it must not mutate rows and must not
	// block for long. Responses never depend on it.
	ObserveSink func(sessionID string, model *task.Set, rows [][]float64)
	// Logf, when non-nil, receives operational log lines (panics, the first
	// checkpoint failure). Responses never depend on it.
	Logf func(format string, args ...any)
}

// BlobStore is the named-blob persistence the server checkpoints into. Puts
// must be atomic (a concurrent reader or a crash sees old or new content,
// never a mix); store.Disk satisfies this with tmp+rename.
type BlobStore interface {
	PutBlob(name string, data []byte) error
	GetBlob(name string) (data []byte, ok bool, err error)
	ListBlobs() ([]string, error)
}

func (o Options) withDefaults() Options {
	if o.MemoBytes == 0 {
		o.MemoBytes = 256 << 20
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 16
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = 2 * time.Millisecond
	}
	if o.SimHyperperiods <= 0 {
		o.SimHyperperiods = 200
	}
	if o.MaxTasks <= 0 {
		o.MaxTasks = 64
	}
	if o.StoreLimit <= 0 {
		o.StoreLimit = 4096
	}
	if o.SessionLimit <= 0 {
		o.SessionLimit = 64
	}
	if o.MaxObserveBatch <= 0 {
		o.MaxObserveBatch = 4096
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 256
	}
	if o.QueueWait <= 0 {
		o.QueueWait = 100 * time.Millisecond
	}
	return o
}

// Server is the scheduling service. Construct with New, serve Handler, and
// Close when done (it cancels in-flight solves).
type Server struct {
	opts   Options
	runner *grid.Runner
	memo   *grid.Memo
	disp   *dispatcher
	mux    *http.ServeMux

	base   context.Context
	cancel context.CancelFunc

	// admit is the bounded admission semaphore for solving endpoints: a
	// request sends to claim a seat and receives to release it.
	admit chan struct{}

	mu         sync.Mutex
	requests   map[string]*canonicalRequest // fingerprint → canonical submit content
	fifo       []string                     // insertion order for StoreLimit eviction
	sessions   map[string]*serverSession    // id → resident feedback session
	sessionSeq int64

	// restoreMu serialises lazy session takeover (sessionOrRestore): one
	// restore solve per missing session, not one per racing request.
	restoreMu sync.Mutex

	// m owns the metric registry: every counter /v1/stats reports and
	// GET /metrics exposes (one source of truth — see metrics.go).
	m           *serverMetrics
	ckptLogOnce sync.Once
}

// New constructs a Server with its own bounded memo and grid runner (or, when
// Options.Store is set, a memo over the supplied backend).
func New(opts Options) *Server {
	o := opts.withDefaults()
	var memo *grid.Memo
	switch {
	case o.Store != nil:
		memo = grid.NewMemoOn(o.Store)
	case o.MemoBytes > 0:
		memo = grid.NewBoundedMemo(o.MemoBytes)
	default:
		memo = grid.NewMemo()
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:     o,
		runner:   grid.New(o.Workers, memo),
		memo:     memo,
		base:     base,
		cancel:   cancel,
		admit:    make(chan struct{}, o.MaxInflight),
		requests: make(map[string]*canonicalRequest),
		sessions: make(map[string]*serverSession),
		m:        newServerMetrics(),
	}
	// A tiered store backend gains per-tier latency histograms; the
	// assertion keeps server decoupled from internal/store.
	if so, ok := o.Store.(interface {
		SetObserver(func(tier, op string, seconds float64))
	}); ok {
		so.SetObserver(s.m.observeTier)
	}
	s.disp = newDispatcher(base, s.runner, o.BatchSize, o.BatchWindow)
	s.disp.onPanic = func(p any) {
		s.m.panics.Inc()
		s.logf("panic in solve pipeline: %v\n%s", p, debug.Stack())
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedules", s.handleSubmit)
	mux.HandleFunc("GET /v1/schedules/{fp}", s.handleGet)
	mux.HandleFunc("POST /v1/compare", s.handleCompare)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	mux.HandleFunc("POST /v1/sessions/{id}/observe", s.handleSessionObserve)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.m.reg)
	mux.HandleFunc("PUT /v1/internal/blobs/{name}", s.handleBlobPut)
	mux.HandleFunc("GET /v1/internal/blobs/{name}", s.handleBlobGet)
	s.mux = mux
	s.registerDerived()
	return s
}

// Handler returns the service's HTTP handler: the mux wrapped in panic
// isolation — a panicking handler costs its request a 500 and bumps a
// counter; it never kills the daemon (solve-pipeline panics are recovered
// one level down, in the dispatcher) — plus the observability middleware:
// a per-request trace (the inbound X-Trace-Id is honoured, otherwise one
// is minted; it is echoed on the response) whose spans feed the per-stage
// latency histograms, and an end-to-end request-latency observation.
// Traces travel in context values and headers only, never in bodies, so
// the byte-determinism contract is untouched.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cw := &committedWriter{ResponseWriter: w}
		endpoint := endpointOf(r.URL.Path)
		t0 := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.m.panics.Inc()
				s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				if !cw.committed {
					writeResult(cw, errorf(http.StatusInternalServerError, "internal error"))
				}
			}
			s.m.observeRequest(endpoint, time.Since(t0).Seconds())
		}()
		tid := r.Header.Get(obs.TraceHeader)
		if tid == "" {
			tid = obs.NewTraceID()
		}
		cw.Header().Set(obs.TraceHeader, tid)
		tr := obs.NewTrace(tid, s.m.observeStage)
		r = r.WithContext(obs.ContextWithTrace(r.Context(), tr))
		s.mux.ServeHTTP(cw, r)
	})
}

// committedWriter records whether a response has started, so the panic
// recovery path knows if a 500 can still be written.
type committedWriter struct {
	http.ResponseWriter
	committed bool
}

func (w *committedWriter) WriteHeader(status int) {
	w.committed = true
	w.ResponseWriter.WriteHeader(status)
}

func (w *committedWriter) Write(p []byte) (int, error) {
	w.committed = true
	return w.ResponseWriter.Write(p)
}

// Close cancels the server's base context: in-flight solves stop at their
// next sweep boundary and new requests are refused with 503.
func (s *Server) Close() { s.cancel() }

// logf emits an operational log line through Options.Logf (discarded when
// unset).
func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// failpoint panics when the named server failpoint is armed — the hook the
// chaos harness uses to prove panic isolation. Inert (one nil check) in
// production.
func (s *Server) failpoint(name string) {
	if s.opts.Faults != nil && s.opts.Faults.Eval(name).Err != nil {
		panic("fault: injected panic at " + name)
	}
}

// noteCheckpointErr counts a failed checkpoint/request-blob write. The first
// failure is logged; the rest only count — a dying disk must not turn every
// observe into a log line.
func (s *Server) noteCheckpointErr(err error) {
	s.m.checkpointErrs.Inc()
	s.ckptLogOnce.Do(func() {
		s.logf("checkpoint write failing (serving continues; state will not survive a restart): %v", err)
	})
}

// acquire claims a seat in the bounded admission queue, waiting up to
// QueueWait when the server is saturated. It returns a release closure, or
// the 503 the request must be shed with. The semaphore spans the whole
// request (solve + response assembly), so MaxInflight bounds real work, not
// just dispatch.
func (s *Server) acquire(ctx context.Context) (func(), *apiError) {
	select {
	case s.admit <- struct{}{}:
		return func() { <-s.admit }, nil
	default:
	}
	// Slow path: the request queues. The wait is a trace span — the
	// fast path above records nothing, so admission_wait measures real
	// queueing, not the uncontended probe.
	t0 := time.Now()
	timer := time.NewTimer(s.opts.QueueWait)
	defer timer.Stop()
	select {
	case s.admit <- struct{}{}:
		obs.RecordSpan(ctx, "admission_wait", t0)
		return func() { <-s.admit }, nil
	case <-ctx.Done():
		return nil, errorf(http.StatusServiceUnavailable, "request abandoned while queued")
	case <-s.base.Done():
		return nil, errorf(http.StatusServiceUnavailable, "shutting down")
	case <-timer.C:
		s.m.shed.Inc()
		return nil, errorf(http.StatusServiceUnavailable,
			"overloaded: %d requests in flight and the admission queue wait expired", s.opts.MaxInflight)
	}
}

// apiError is a deterministic JSON error response. retryAfter carries the
// Retry-After header value for 503s; writeResult defaults it to 1s so every
// 503 the server emits is explicitly retryable.
type apiError struct {
	status     int
	msg        string
	retryAfter int // seconds; 0 = writeResult's default for 503
}

func (e *apiError) Error() string { return e.msg }

func errorf(status int, format string, args ...any) *apiError {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

// canonicalRequest is a submit request after validation and defaulting: the
// form all solving and fingerprinting is defined over.
type canonicalRequest struct {
	set       *task.Set
	objective core.Objective
	starts    int
	subCap    int
	// cores > 1 selects the partitioned pipeline (internal/partition);
	// 0 is the single-core path. An explicit "cores":1 normalizes to 0 at
	// canonicalization so it aliases the single-core request exactly —
	// same fingerprint, same bytes.
	cores int
}

// SubmitRequest is the POST /v1/schedules body.
type SubmitRequest struct {
	// Tasks is the task set. Sets are canonicalised into rate-monotonic
	// priority order before fingerprinting, so permutations of tasks with
	// distinct periods share a fingerprint; among equal-period tasks the
	// submission order is the priority tie-break (paper §2.1's rule) and is
	// therefore part of the schedule's identity.
	Tasks []task.Task `json:"tasks"`
	// Objective is "acs" (default) or "wcs".
	Objective string `json:"objective,omitempty"`
	// Starts overrides the server's solver multi-start count (0 = server
	// default).
	Starts int `json:"starts,omitempty"`
	// SubCap caps sub-instances per instance (0 = unlimited).
	SubCap int `json:"subcap,omitempty"`
	// Cores partitions the task set onto this many identical cores
	// (first-fit-decreasing admission, per-core WCS/ACS solves, global
	// energy objective — DESIGN.md §12). 0 or 1 is the single-core
	// pipeline, byte-for-byte.
	Cores int `json:"cores,omitempty"`
}

// CompareRequest is the POST /v1/compare body: a submit body plus the
// simulation dimensions.
type CompareRequest struct {
	SubmitRequest
	// Hyperperiods is the simulated horizon (0 = server default).
	Hyperperiods int `json:"hyperperiods,omitempty"`
	// Seed seeds the workload draws; 0 derives a seed from the task-set
	// fingerprint, so responses stay deterministic per request body.
	Seed uint64 `json:"seed,omitempty"`
}

// ScheduleResponse is the submit/get response: the solved static schedule
// and its predicted energies.
type ScheduleResponse struct {
	// Fingerprint is the content address of (task set, solver config,
	// objective) — the handle GET /v1/schedules/{fp} accepts.
	Fingerprint string `json:"fingerprint"`
	Objective   string `json:"objective"`
	Tasks       int    `json:"tasks"`
	// HyperperiodMs is the schedule horizon (LCM of all periods).
	HyperperiodMs int64 `json:"hyperperiod_ms"`
	// Pieces is the number of sub-instances in the fully-preemptive total
	// order (the length of EndMs and WCWorkCycles).
	Pieces int `json:"pieces"`
	Sweeps int `json:"sweeps"`
	// PredictedEnergy is the solver's objective value: expected greedy-
	// reclamation energy at the average workload for ACS, worst-case energy
	// for WCS.
	PredictedEnergy float64 `json:"predicted_energy"`
	// WCSAvgEnergy is the WCS baseline schedule evaluated at the average
	// workload — the static quantity ACS improves on — and ImprovementPct
	// the relative gain. Present only for the ACS objective.
	WCSAvgEnergy   *float64 `json:"wcs_avg_energy,omitempty"`
	ImprovementPct *float64 `json:"improvement_pct,omitempty"`
	// EndMs and WCWorkCycles are the two vectors the online DVS phase
	// consumes (paper §3.2), in the plan's total order. Single-core
	// responses always carry them; partitioned responses carry them per
	// core instead (omitempty keeps single-core bytes unchanged).
	EndMs        []float64 `json:"end_ms,omitempty"`
	WCWorkCycles []float64 `json:"wcwork_cycles,omitempty"`
	// Degraded marks a response served (wholly or, for partitioned
	// submits, on at least one core) from the WCS fallback because the
	// ACS refinement exceeded the solve budget (DESIGN.md §10): the
	// schedule is the worst-case-feasible one — always deadline-safe, just
	// not average-case optimal — and WCSAvgEnergy/ImprovementPct are
	// absent. Degraded responses sit outside the byte-determinism contract
	// (whether a budget expires is a property of load, not of the request
	// body); re-fetching the fingerprint re-attempts the full ACS solve.
	Degraded bool `json:"degraded,omitempty"`
	// Cores and PerCore are present only on partitioned responses
	// (request cores > 1): the core count and each core's assignment +
	// solved schedule. Top-level Pieces/Sweeps are sums over cores,
	// PredictedEnergy is the global objective (Σ per-core energies), and
	// WCSAvgEnergy/ImprovementPct are the global baseline/gain.
	Cores   int                    `json:"cores,omitempty"`
	PerCore []CoreScheduleResponse `json:"per_core,omitempty"`
}

// CoreScheduleResponse is one core of a partitioned ScheduleResponse.
type CoreScheduleResponse struct {
	Core int `json:"core"`
	// TaskNames is the core's assignment, in the subset's rate-monotonic
	// order (empty for an idle core).
	TaskNames []string `json:"task_names"`
	// Fingerprint is the grid content address of the core's sub-problem —
	// identical to the fingerprint a single-core submit of exactly these
	// tasks would get, which is what lets the memo share per-core solves
	// across repartitions.
	Fingerprint     string    `json:"fingerprint,omitempty"`
	Pieces          int       `json:"pieces,omitempty"`
	Sweeps          int       `json:"sweeps,omitempty"`
	PredictedEnergy float64   `json:"predicted_energy,omitempty"`
	EndMs           []float64 `json:"end_ms,omitempty"`
	WCWorkCycles    []float64 `json:"wcwork_cycles,omitempty"`
	// Degraded marks this core as serving its WCS schedule because its
	// ACS budget share expired; the response's top-level Degraded is set
	// whenever any core degrades.
	Degraded bool `json:"degraded,omitempty"`
}

// PolicyResult summarises one simulated schedule in a CompareResponse.
type PolicyResult struct {
	Energy         float64 `json:"energy"`
	DeadlineMisses int     `json:"deadline_misses"`
	Switches       int     `json:"switches"`
	MeanVoltage    float64 `json:"mean_voltage"`
}

// CompareResponse is the /v1/compare response: both schedules simulated
// under identical workload draws.
type CompareResponse struct {
	Fingerprint    string       `json:"fingerprint"`
	Hyperperiods   int          `json:"hyperperiods"`
	Seed           uint64       `json:"seed"`
	ImprovementPct float64      `json:"improvement_pct"`
	ACS            PolicyResult `json:"acs"`
	WCS            PolicyResult `json:"wcs"`
}

// StatsResponse is the /v1/stats body. It reports operational state and is
// exempt from the byte-determinism contract.
type StatsResponse struct {
	Submits   int64 `json:"submits"`
	Gets      int64 `json:"gets"`
	Compares  int64 `json:"compares"`
	Batches   int64 `json:"batches"`
	Coalesced int64 `json:"coalesced"`
	Stored    int   `json:"stored_requests"`
	Workers   int   `json:"workers"`
	BatchSize int   `json:"batch_size"`
	// Sessions is the number of resident feedback sessions;
	// SessionCreates counts creation attempts (like Submits, it includes
	// rejected ones) and Observes the observation calls across all
	// sessions.
	Sessions       int   `json:"sessions"`
	SessionCreates int64 `json:"session_creates"`
	Observes       int64 `json:"observes"`
	// RestoredSessions counts sessions rebuilt from checkpoints at boot;
	// CheckpointErrors counts failed checkpoint/request-blob writes (the
	// affected state simply won't survive the next restart).
	RestoredSessions int64 `json:"restored_sessions"`
	CheckpointErrors int64 `json:"checkpoint_errors"`
	// Robustness accounting (DESIGN.md §10). Inflight is the number of
	// currently admitted solving requests (gauge); Shed counts requests
	// rejected 503 by the admission queue; Degraded counts submit/get
	// responses served from the WCS fallback after the ACS budget expired;
	// Panics counts handler/pipeline panics isolated to a single request.
	Inflight int   `json:"inflight"`
	Shed     int64 `json:"shed"`
	Degraded int64 `json:"degraded"`
	Panics   int64 `json:"panics"`
	// Memo carries the grid store's full accounting — hit/miss counters and
	// the bounded store's eviction/byte-occupancy counters (evictions,
	// bytes_used, bytes_cap).
	Memo grid.Stats `json:"memo"`
}

// canonicalize validates a submit body into its canonical form. All
// admission rejections happen here or in the feasibility check — both before
// any solver time is spent.
func (s *Server) canonicalize(req *SubmitRequest) (*canonicalRequest, *apiError) {
	return canonicalizeSubmit(req, s.opts.Starts, s.opts.MaxTasks)
}

// maxCores bounds the partitioned pipeline's per-request fan-out: each core
// is a separate WCS+ACS solve through the shared runner, so the bound plays
// the same admission role MaxTasks does for set size.
const maxCores = 16

// canonicalizeSubmit is canonicalization as a pure function of the body and
// the server defaults it is resolved against — factored out so the fleet
// router computes the same fingerprint the peers do without holding a
// *Server. maxTasks <= 0 selects the Options default.
func canonicalizeSubmit(req *SubmitRequest, defaultStarts, maxTasks int) (*canonicalRequest, *apiError) {
	if maxTasks <= 0 {
		maxTasks = 64
	}
	if len(req.Tasks) == 0 {
		return nil, errorf(http.StatusUnprocessableEntity, "admission: task set is empty")
	}
	if len(req.Tasks) > maxTasks {
		return nil, errorf(http.StatusUnprocessableEntity,
			"admission: %d tasks exceeds the limit of %d", len(req.Tasks), maxTasks)
	}
	set, err := task.NewSet(req.Tasks)
	if err != nil {
		return nil, errorf(http.StatusUnprocessableEntity, "admission: %v", err)
	}
	cr := &canonicalRequest{set: set, starts: req.Starts, subCap: req.SubCap, cores: req.Cores}
	if cr.starts <= 0 {
		cr.starts = defaultStarts
	}
	if cr.cores < 0 || cr.cores > maxCores {
		return nil, errorf(http.StatusUnprocessableEntity,
			"admission: cores must lie in [0, %d], got %d", maxCores, cr.cores)
	}
	if cr.cores == 1 {
		cr.cores = 0 // one core IS the single-core pipeline; alias it exactly
	}
	switch req.Objective {
	case "", "acs":
		cr.objective = core.AverageCase
	case "wcs":
		cr.objective = core.WorstCase
	default:
		return nil, errorf(http.StatusUnprocessableEntity,
			"admission: unknown objective %q (want acs or wcs)", req.Objective)
	}
	return cr, nil
}

// SubmitFingerprint computes the canonical fingerprint of a submit/compare
// body under the given server defaults — the routing key the fleet router
// shares with the peers' own canonicalization, so a request lands on the
// peer that owns its content address. ok is false when the body does not
// canonicalize; such requests draw the same deterministic 4xx from every
// peer, so routers may key them however they like (e.g. a raw-body hash).
func SubmitFingerprint(req *SubmitRequest, defaultStarts, maxTasks int) (fp string, ok bool) {
	cr, e := canonicalizeSubmit(req, defaultStarts, maxTasks)
	if e != nil {
		return "", false
	}
	fp, e2 := cr.fingerprint()
	if e2 != nil {
		return "", false
	}
	return fp, true
}

// config returns the solver configuration for objective o.
func (cr *canonicalRequest) config(o core.Objective) core.Config {
	cfg := core.Config{Objective: o, Starts: cr.starts}
	cfg.Preempt.MaxSubsPerInstance = cr.subCap
	return cfg
}

// partitionConfig is the fixed server policy for partitioned submits:
// first-fit-decreasing admission, no improvement loop (moves are an offline
// refinement, not a serving-path cost), per-core solver = the request's
// solver config. The per-core ACS budget is load policy and is applied at
// solve time, not here — it is excluded from the fingerprint like
// SolveBudget is for single-core requests.
func (cr *canonicalRequest) partitionConfig() partition.Config {
	return partition.Config{
		Cores:  cr.cores,
		Mode:   partition.FirstFitDecreasing,
		Solver: cr.config(cr.objective),
	}
}

// fingerprint content-addresses the canonical request through the grid cache
// key: the task-set fingerprint, the model identity, and every solver field
// a solve is a function of. Partitioned requests extend the key with the
// partition knobs (core count, packing mode).
func (cr *canonicalRequest) fingerprint() (string, *apiError) {
	if cr.cores > 1 {
		fp, ok := partition.Fingerprint(cr.set, cr.partitionConfig())
		if !ok {
			return "", errorf(http.StatusInternalServerError, "fingerprint: config not canonically encodable")
		}
		return fp, nil
	}
	key, ok := grid.ScheduleKey(cr.set, cr.config(cr.objective))
	if !ok {
		return "", errorf(http.StatusInternalServerError, "fingerprint: config not canonically encodable")
	}
	return key.String(), nil
}

// buildScheduleResponse is the submit pipeline: admission feasibility check,
// WCS synthesis, ACS synthesis warm-started from WCS (for the ACS
// objective), response assembly. It is a pure function of cr — every field
// of the response is derived from solver output, never from timing or cache
// state.
func (s *Server) buildScheduleResponse(ctx context.Context, cr *canonicalRequest, fp string) any {
	s.failpoint("pipeline.panic")
	if cr.cores > 1 {
		return s.buildPartitionResponse(ctx, cr, fp)
	}
	if err := core.Feasible(cr.set, cr.config(core.WorstCase)); err != nil {
		return errorf(http.StatusUnprocessableEntity, "admission: %v", err)
	}
	wcsDone := obs.StartSpan(ctx, "solve_wcs")
	wcs, err := s.runner.BuildScheduleContext(ctx, cr.set, cr.config(core.WorstCase))
	wcsDone()
	if err != nil {
		return solveError("wcs synthesis", err)
	}
	final := wcs
	resp := &ScheduleResponse{
		Fingerprint: fp,
		Objective:   cr.objective.String(),
		Tasks:       cr.set.N(),
	}
	if cr.objective == core.AverageCase {
		// The ACS refinement runs under the per-request solve budget; the
		// WCS baseline above did not — it is the degraded-mode fallback, so
		// it must exist before the budget can be allowed to expire.
		acsCtx, cancel := ctx, context.CancelFunc(nil)
		if s.opts.SolveBudget > 0 {
			acsCtx, cancel = context.WithTimeout(ctx, s.opts.SolveBudget)
		}
		acsCfg := cr.config(core.AverageCase)
		acsCfg.WarmStart = wcs
		acsDone := obs.StartSpan(acsCtx, "solve_acs")
		acs, err := s.runner.BuildScheduleContext(acsCtx, cr.set, acsCfg)
		acsDone()
		if cancel != nil {
			cancel()
		}
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
				// Budget exhausted, requester still here: serve the WCS
				// schedule — worst-case feasible, deadline-safe — marked
				// degraded instead of failing the request.
				s.m.degraded.Inc()
				resp.Degraded = true
				resp.Pieces = len(wcs.Plan.Subs)
				resp.Sweeps = wcs.Sweeps
				resp.PredictedEnergy = wcs.Energy
				resp.EndMs = wcs.End
				resp.WCWorkCycles = wcs.WCWork
				if h, herr := cr.set.Hyperperiod(); herr == nil {
					resp.HyperperiodMs = h
				}
				return resp
			}
			return solveError("acs synthesis", err)
		}
		final = acs
		avg := make([]float64, len(wcs.Plan.Instances))
		for i := range avg {
			avg[i] = wcs.Plan.Set.Tasks[wcs.Plan.Instances[i].TaskIndex].ACEC
		}
		wcsAvg, _, err := wcs.EnergyUnder(avg)
		if err != nil {
			return solveError("wcs baseline evaluation", err)
		}
		imp := 0.0
		if wcsAvg > 0 {
			imp = 100 * (wcsAvg - acs.Energy) / wcsAvg
		}
		resp.WCSAvgEnergy = &wcsAvg
		resp.ImprovementPct = &imp
	}
	if h, err := cr.set.Hyperperiod(); err == nil {
		resp.HyperperiodMs = h
	}
	resp.Pieces = len(final.Plan.Subs)
	resp.Sweeps = final.Sweeps
	resp.PredictedEnergy = final.Energy
	resp.EndMs = final.End
	resp.WCWorkCycles = final.WCWork
	return resp
}

// buildPartitionResponse is the partitioned submit pipeline (DESIGN.md
// §12): FFD admission under the exact per-core schedulability test, then
// per-core WCS + warm-started ACS fanned through the shared grid runner —
// each core a content-addressed sub-problem, so repartitions re-solve only
// the cores they touch. The per-core ACS budget is the server's
// SolveBudget; a core whose budget expires serves its WCS schedule and
// marks the core and the whole response degraded — budget-truncated ACS
// never reaches a non-degraded 200. Non-degraded responses are pure
// functions of cr, like the single-core pipeline.
func (s *Server) buildPartitionResponse(ctx context.Context, cr *canonicalRequest, fp string) any {
	pcfg := cr.partitionConfig()
	pcfg.ACSBudget = s.opts.SolveBudget
	solveDone := obs.StartSpan(ctx, "solve_partition")
	res, err := partition.Solve(ctx, s.runner, cr.set, pcfg)
	solveDone()
	if err != nil {
		return solveError("partitioned synthesis", err)
	}
	resp := &ScheduleResponse{
		Fingerprint: fp,
		Objective:   cr.objective.String(),
		Tasks:       cr.set.N(),
		Cores:       pcfg.Cores,
	}
	if h, err := cr.set.Hyperperiod(); err == nil {
		resp.HyperperiodMs = h
	}
	wcsAvgTotal := 0.0
	for i := range res.Cores {
		cs := &res.Cores[i]
		pc := CoreScheduleResponse{Core: cs.Core, TaskNames: []string{}}
		if cs.Set != nil {
			for j := range cs.Set.Tasks {
				pc.TaskNames = append(pc.TaskNames, cs.Set.Tasks[j].Name)
			}
			sched := cs.Schedule()
			pc.Fingerprint = cs.Key
			pc.Pieces = len(sched.Plan.Subs)
			pc.Sweeps = sched.Sweeps
			pc.PredictedEnergy = cs.Energy()
			pc.EndMs = sched.End
			pc.WCWorkCycles = sched.WCWork
			pc.Degraded = cs.Degraded
			resp.Pieces += pc.Pieces
			resp.Sweeps += pc.Sweeps
			if cr.objective == core.AverageCase && !cs.Degraded {
				wcsAvg, err := cs.WCSAtAverage()
				if err != nil {
					return solveError("wcs baseline evaluation", err)
				}
				wcsAvgTotal += wcsAvg
			}
		}
		if cs.Degraded {
			resp.Degraded = true
		}
		resp.PerCore = append(resp.PerCore, pc)
	}
	resp.PredictedEnergy = res.Energy
	if cr.objective == core.AverageCase && !resp.Degraded {
		imp := 0.0
		if wcsAvgTotal > 0 {
			imp = 100 * (wcsAvgTotal - res.Energy) / wcsAvgTotal
		}
		resp.WCSAvgEnergy = &wcsAvgTotal
		resp.ImprovementPct = &imp
	}
	if resp.Degraded {
		s.m.degraded.Inc()
	}
	return resp
}

// buildCompareResponse solves both objectives and simulates them under
// identical workload draws — the Fig. 6 quantity, as a service. Pure
// function of (cr, hyperperiods, seed).
func (s *Server) buildCompareResponse(ctx context.Context, cr *canonicalRequest, fp string, hyperperiods int, seed uint64) any {
	if err := core.Feasible(cr.set, cr.config(core.WorstCase)); err != nil {
		return errorf(http.StatusUnprocessableEntity, "admission: %v", err)
	}
	wcsDone := obs.StartSpan(ctx, "solve_wcs")
	wcs, err := s.runner.BuildScheduleContext(ctx, cr.set, cr.config(core.WorstCase))
	wcsDone()
	if err != nil {
		return solveError("wcs synthesis", err)
	}
	acsCfg := cr.config(core.AverageCase)
	acsCfg.WarmStart = wcs
	acsDone := obs.StartSpan(ctx, "solve_acs")
	acs, err := s.runner.BuildScheduleContext(ctx, cr.set, acsCfg)
	acsDone()
	if err != nil {
		return solveError("acs synthesis", err)
	}
	pa, err := s.runner.CompileScheduleContext(ctx, acs)
	if err != nil {
		return solveError("acs compile", err)
	}
	pb, err := s.runner.CompileScheduleContext(ctx, wcs)
	if err != nil {
		return solveError("wcs compile", err)
	}
	simDone := obs.StartSpan(ctx, "sim")
	imp, ra, rb, err := sim.ComparePlans(pa, pb, sim.Config{
		Policy:       sim.Greedy,
		Hyperperiods: hyperperiods,
		Seed:         seed,
		Workers:      s.opts.SimWorkers,
		Ctx:          ctx,
	})
	simDone()
	if err != nil {
		return solveError("simulation", err)
	}
	return &CompareResponse{
		Fingerprint:    fp,
		Hyperperiods:   hyperperiods,
		Seed:           seed,
		ImprovementPct: imp,
		ACS:            PolicyResult{Energy: ra.Energy, DeadlineMisses: ra.DeadlineMisses, Switches: ra.Switches, MeanVoltage: ra.MeanVoltage},
		WCS:            PolicyResult{Energy: rb.Energy, DeadlineMisses: rb.DeadlineMisses, Switches: rb.Switches, MeanVoltage: rb.MeanVoltage},
	}
}

// solveError maps pipeline failures: cancellation (the requester went away
// or the server is shutting down) becomes 503, everything else is a
// deterministic 422 — solve failures are properties of the request content.
func solveError(stage string, err error) *apiError {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return errorf(http.StatusServiceUnavailable, "%s canceled", stage)
	}
	return errorf(http.StatusUnprocessableEntity, "%s: %v", stage, err)
}

// storedRequest is the persisted form of a canonical request: the canonical
// (rate-monotonic, named) task set plus the defaulted solver knobs, so a
// restart rebuilds the exact canonicalRequest without re-applying defaults.
type storedRequest struct {
	Tasks     []task.Task `json:"tasks"`
	Objective string      `json:"objective"`
	Starts    int         `json:"starts"`
	SubCap    int         `json:"subcap"`
	Cores     int         `json:"cores,omitempty"`
}

// remember stores cr for later GETs, evicting the oldest stored request
// beyond StoreLimit, and mirrors newly-seen requests into the checkpoint
// store so GET /v1/schedules/{fp} survives a restart.
func (s *Server) remember(fp string, cr *canonicalRequest) {
	s.mu.Lock()
	if _, ok := s.requests[fp]; ok {
		s.mu.Unlock()
		return
	}
	s.requests[fp] = cr
	s.fifo = append(s.fifo, fp)
	for len(s.fifo) > s.opts.StoreLimit {
		delete(s.requests, s.fifo[0])
		s.fifo = s.fifo[1:]
	}
	s.mu.Unlock()
	if s.opts.Checkpoints == nil {
		return
	}
	obj := "acs"
	if cr.objective == core.WorstCase {
		obj = "wcs"
	}
	blob, err := json.Marshal(&storedRequest{
		Tasks: cr.set.Tasks, Objective: obj, Starts: cr.starts, SubCap: cr.subCap,
		Cores: cr.cores,
	})
	if err == nil {
		err = s.opts.Checkpoints.PutBlob("request-"+fp, blob)
	}
	if err != nil {
		s.noteCheckpointErr(err)
	}
}

// lookup resolves a fingerprint to its canonical request, falling back to
// the checkpoint store after a restart (or FIFO eviction). A recovered blob
// is trusted only if its recomputed fingerprint matches the name it was
// stored under — the same content-address check the cache key provides.
func (s *Server) lookup(fp string) *canonicalRequest {
	s.mu.Lock()
	cr := s.requests[fp]
	s.mu.Unlock()
	if cr != nil || s.opts.Checkpoints == nil {
		return cr
	}
	blob, ok, err := s.opts.Checkpoints.GetBlob("request-" + fp)
	if err != nil || !ok {
		return nil
	}
	var sr storedRequest
	if json.Unmarshal(blob, &sr) != nil {
		return nil
	}
	set, err := task.NewSet(sr.Tasks)
	if err != nil {
		return nil
	}
	cr = &canonicalRequest{set: set, starts: sr.Starts, subCap: sr.SubCap, cores: sr.Cores}
	switch sr.Objective {
	case "acs":
		cr.objective = core.AverageCase
	case "wcs":
		cr.objective = core.WorstCase
	default:
		return nil
	}
	if got, e := cr.fingerprint(); e != nil || got != fp {
		return nil // rotted or tampered blob: treat as absent
	}
	s.remember(fp, cr)
	return cr
}

// decode reads a JSON body strictly: unknown fields are rejected so that a
// mistyped request cannot silently alias a different canonical form.
func decode(r *http.Request, into any) *apiError {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return errorf(http.StatusBadRequest, "parsing request: %v", err)
	}
	return nil
}

// writeJSON renders v deterministically: json.Marshal of a fixed struct
// shape plus a trailing newline. (Maps never appear in response types —
// their iteration order would break the byte contract.)
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(buf, '\n'))
}

// writeResult maps a pipeline result (response value or *apiError) onto the
// wire. Every 503 carries a Retry-After header (DESIGN.md §10): the server
// only answers 503 for conditions that clear — overload, shutdown of this
// instance, a session slot freeing up — so clients are always told the
// rejection is retryable and roughly when.
func writeResult(w http.ResponseWriter, v any) {
	if e, ok := v.(*apiError); ok {
		if e.status == http.StatusServiceUnavailable {
			secs := e.retryAfter
			if secs <= 0 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeJSON(w, e.status, struct {
			Error string `json:"error"`
		}{e.msg})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.m.submits.Inc()
	s.failpoint("handler.panic")
	release, e := s.acquire(r.Context())
	if e != nil {
		writeResult(w, e)
		return
	}
	defer release()
	var req SubmitRequest
	if e := decode(r, &req); e != nil {
		writeResult(w, e)
		return
	}
	cr, e := s.canonicalize(&req)
	if e != nil {
		writeResult(w, e)
		return
	}
	fp, e := cr.fingerprint()
	if e != nil {
		writeResult(w, e)
		return
	}
	s.remember(fp, cr)
	v, err := s.disp.run(r.Context(), "submit:"+fp, func(ctx context.Context) any {
		return s.buildScheduleResponse(ctx, cr, fp)
	})
	if err != nil {
		writeResult(w, solveError("dispatch", err))
		return
	}
	writeResult(w, v)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.m.gets.Inc()
	release, e := s.acquire(r.Context())
	if e != nil {
		writeResult(w, e)
		return
	}
	defer release()
	fp := r.PathValue("fp")
	cr := s.lookup(fp)
	if cr == nil {
		writeResult(w, errorf(http.StatusNotFound, "unknown fingerprint %q", fp))
		return
	}
	// Recompute through the same pipeline as submit: with the memo warm it
	// is a cache hit, after eviction it is a rebuild — byte-identical either
	// way, so GET returns exactly the bytes submit did.
	v, err := s.disp.run(r.Context(), "submit:"+fp, func(ctx context.Context) any {
		return s.buildScheduleResponse(ctx, cr, fp)
	})
	if err != nil {
		writeResult(w, solveError("dispatch", err))
		return
	}
	writeResult(w, v)
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	s.m.compares.Inc()
	release, e := s.acquire(r.Context())
	if e != nil {
		writeResult(w, e)
		return
	}
	defer release()
	var req CompareRequest
	if e := decode(r, &req); e != nil {
		writeResult(w, e)
		return
	}
	// A comparison always solves both objectives; an explicit "wcs" would
	// be accepted-but-ignored, so reject it rather than alias the ACS form.
	if req.Objective != "" && req.Objective != "acs" {
		writeResult(w, errorf(http.StatusUnprocessableEntity,
			"compare solves both objectives; omit the objective field (got %q)", req.Objective))
		return
	}
	cr, e := s.canonicalize(&req.SubmitRequest)
	if e != nil {
		writeResult(w, e)
		return
	}
	// Comparison simulates one processor's schedule pair; a partitioned
	// set has no single plan to simulate. Reject rather than silently
	// solving the single-core form of a multi-core request.
	if cr.cores > 1 {
		writeResult(w, errorf(http.StatusUnprocessableEntity,
			"compare is single-core; omit the cores field (got %d)", cr.cores))
		return
	}
	fp, e := cr.fingerprint()
	if e != nil {
		writeResult(w, e)
		return
	}
	h := req.Hyperperiods
	if h <= 0 {
		h = s.opts.SimHyperperiods
	}
	seed := req.Seed
	if seed == 0 {
		seed = stats.SeedFromString(fp)
	}
	jobKey := fmt.Sprintf("compare:%s:%d:%d", fp, h, seed)
	v, err := s.disp.run(r.Context(), jobKey, func(ctx context.Context) any {
		return s.buildCompareResponse(ctx, cr, fp, h, seed)
	})
	if err != nil {
		writeResult(w, solveError("dispatch", err))
		return
	}
	writeResult(w, v)
}

// handleStats reports operational counters. Every value here is a read
// of the same registry /metrics scrapes (see metrics.go) — one source of
// truth, pinned by TestStatsMatchesMetrics.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	stored := len(s.requests)
	sessions := len(s.sessions)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, &StatsResponse{
		Submits:          s.m.submits.Value(),
		Gets:             s.m.gets.Value(),
		Compares:         s.m.compares.Value(),
		Batches:          s.disp.batches.Load(),
		Coalesced:        s.disp.coalesced.Load(),
		Stored:           stored,
		Workers:          s.runner.Workers(),
		BatchSize:        s.opts.BatchSize,
		Sessions:         sessions,
		SessionCreates:   s.m.sessionCreates.Value(),
		Observes:         s.m.observes.Value(),
		RestoredSessions: s.m.restored.Value(),
		CheckpointErrors: s.m.checkpointErrs.Value(),
		Inflight:         len(s.admit),
		Shed:             s.m.shed.Value(),
		Degraded:         s.m.degraded.Value(),
		Panics:           s.m.panics.Value(),
		Memo:             s.memo.Stats(),
	})
}

// handleBlobPut is the peer-replication write door: a fleet peer pushing a
// replicated blob (session checkpoint or schedule record) stores it in this
// instance's local blob store. Deliberately outside the admission semaphore —
// replication must not be shed by client load — and outside the determinism
// contract (it is peer plumbing, not a client API). 404 when the instance is
// not fleet-configured.
func (s *Server) handleBlobPut(w http.ResponseWriter, r *http.Request) {
	if s.opts.InternalBlobs == nil {
		writeResult(w, errorf(http.StatusNotFound, "not a fleet peer"))
		return
	}
	name := r.PathValue("name")
	if name == "" || len(name) > 256 {
		writeResult(w, errorf(http.StatusUnprocessableEntity, "bad blob name"))
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 32<<20))
	if err != nil {
		writeResult(w, errorf(http.StatusBadRequest, "reading blob: %v", err))
		return
	}
	if err := s.opts.InternalBlobs.PutBlob(name, data); err != nil {
		s.noteCheckpointErr(err)
		writeResult(w, errorf(http.StatusInternalServerError, "storing blob: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		OK bool `json:"ok"`
	}{true})
}

// handleBlobGet serves a locally-stored blob to a fleet peer (raw bytes, not
// JSON — the blob is the payload).
func (s *Server) handleBlobGet(w http.ResponseWriter, r *http.Request) {
	if s.opts.InternalBlobs == nil {
		writeResult(w, errorf(http.StatusNotFound, "not a fleet peer"))
		return
	}
	data, ok, err := s.opts.InternalBlobs.GetBlob(r.PathValue("name"))
	if err != nil {
		writeResult(w, errorf(http.StatusInternalServerError, "reading blob: %v", err))
		return
	}
	if !ok {
		writeResult(w, errorf(http.StatusNotFound, "no such blob"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.base.Err() != nil {
		writeResult(w, errorf(http.StatusServiceUnavailable, "shutting down"))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ok"})
}
