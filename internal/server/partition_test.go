package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/power"
)

// partBody builds a submit body of n equal-period tasks, each at the given
// worst-case utilisation — so the required core count is predictable.
func partBody(n int, util float64, extra string) string {
	model := power.DefaultModel()
	tcMax := model.CycleTime(model.VMax())
	var tasks []string
	for i := 0; i < n; i++ {
		wcec := util * 100 / tcMax
		tasks = append(tasks, fmt.Sprintf(
			`{"name":"p%d","period_ms":100,"wcec":%g,"acec":%g,"bcec":%g,"ceff":1}`,
			i+1, wcec, 0.75*wcec, 0.5*wcec))
	}
	return `{"tasks":[` + strings.Join(tasks, ",") + `]` + extra + `}`
}

// TestPartitionSubmit pins the partitioned submit path end to end: a
// 2-core set answers 200 with the core count, a per-core section whose
// assignments partition the set, the global energy as the sum of per-core
// energies, and a GET by fingerprint that returns the identical bytes.
func TestPartitionSubmit(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Options{})

	body := partBody(4, 0.45, `,"cores":2`)
	code, resp := post(t, ts.URL+"/v1/schedules", body)
	if code != http.StatusOK {
		t.Fatalf("partitioned submit: %d %s", code, resp)
	}
	var sr ScheduleResponse
	if err := json.Unmarshal([]byte(resp), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cores != 2 || len(sr.PerCore) != 2 {
		t.Fatalf("want 2 cores in the response, got cores=%d per_core=%d", sr.Cores, len(sr.PerCore))
	}
	if sr.Degraded {
		t.Fatal("unbudgeted partitioned submit must not degrade")
	}
	seen := map[string]bool{}
	sum := 0.0
	pieces := 0
	for _, pc := range sr.PerCore {
		for _, name := range pc.TaskNames {
			if seen[name] {
				t.Fatalf("task %s assigned to two cores", name)
			}
			seen[name] = true
		}
		if pc.Fingerprint == "" && len(pc.TaskNames) > 0 {
			t.Error("occupied core missing its sub-problem fingerprint")
		}
		if len(pc.EndMs) != len(pc.WCWorkCycles) || len(pc.EndMs) != pc.Pieces {
			t.Errorf("core %d: vectors inconsistent with pieces", pc.Core)
		}
		sum += pc.PredictedEnergy
		pieces += pc.Pieces
	}
	if len(seen) != 4 {
		t.Fatalf("per-core assignments cover %d of 4 tasks", len(seen))
	}
	if sr.PredictedEnergy != sum {
		t.Errorf("global energy %g != Σ per-core %g", sr.PredictedEnergy, sum)
	}
	if sr.Pieces != pieces {
		t.Errorf("global pieces %d != Σ per-core %d", sr.Pieces, pieces)
	}
	if len(sr.EndMs) != 0 || len(sr.WCWorkCycles) != 0 {
		t.Error("partitioned responses carry vectors per core, not top-level")
	}
	if sr.WCSAvgEnergy == nil || sr.ImprovementPct == nil {
		t.Error("non-degraded ACS response missing global baseline fields")
	}

	// Re-fetch by fingerprint: byte-identical (the stored request keeps
	// its core count).
	code, got := get(t, ts.URL+"/v1/schedules/"+sr.Fingerprint)
	if code != http.StatusOK {
		t.Fatalf("get: %d %s", code, got)
	}
	if got != resp {
		t.Errorf("GET bytes differ from submit bytes:\n get %s\npost %s", got, resp)
	}

	// Identical resubmission: byte-identical (determinism contract).
	code, again := post(t, ts.URL+"/v1/schedules", body)
	if code != http.StatusOK || again != resp {
		t.Errorf("resubmit not byte-identical: %d", code)
	}
}

// TestPartitionSingleCoreAlias pins the M=1 property at the API boundary:
// an explicit "cores":1 is the single-core pipeline — same fingerprint,
// same response bytes as the same body without the field.
func TestPartitionSingleCoreAlias(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Options{})

	plain := partBody(2, 0.3, ``)
	alias := partBody(2, 0.3, `,"cores":1`)
	code, want := post(t, ts.URL+"/v1/schedules", plain)
	if code != http.StatusOK {
		t.Fatalf("plain submit: %d %s", code, want)
	}
	code, got := post(t, ts.URL+"/v1/schedules", alias)
	if code != http.StatusOK {
		t.Fatalf("cores=1 submit: %d %s", code, got)
	}
	if got != want {
		t.Errorf("cores=1 not byte-identical to single-core:\n got %s\nwant %s", got, want)
	}
}

// TestPartitionBounds pins the admission checks on the cores knob and the
// endpoints that stay single-core.
func TestPartitionBounds(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Options{})

	for _, body := range []string{
		partBody(2, 0.3, `,"cores":-1`),
		partBody(2, 0.3, fmt.Sprintf(`,"cores":%d`, maxCores+1)),
	} {
		if code, resp := post(t, ts.URL+"/v1/schedules", body); code != http.StatusUnprocessableEntity {
			t.Errorf("out-of-range cores: %d %s", code, resp)
		}
	}
	// A set whose total utilisation cannot fit the requested cores fails
	// admission deterministically.
	if code, resp := post(t, ts.URL+"/v1/schedules", partBody(4, 0.6, `,"cores":2`)); code != http.StatusUnprocessableEntity {
		t.Errorf("unpackable set: %d %s", code, resp)
	}
	if code, resp := post(t, ts.URL+"/v1/compare", partBody(4, 0.45, `,"cores":2`)); code != http.StatusUnprocessableEntity {
		t.Errorf("compare with cores: %d %s", code, resp)
	}
	if code, resp := post(t, ts.URL+"/v1/sessions", partBody(4, 0.45, `,"cores":2`)); code != http.StatusUnprocessableEntity {
		t.Errorf("session with cores: %d %s", code, resp)
	}
}

// TestPartitionSolveBudgetDegradesToWCS extends the PR-7 degraded-vs-WCS
// vector identity to M > 1: under an expired per-core ACS budget every
// affected core serves exactly its WCS schedule, the whole response is
// marked degraded with the baseline fields absent, and a direct WCS submit
// of the same partitioned request returns the identical per-core vectors.
func TestPartitionSolveBudgetDegradesToWCS(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Options{SolveBudget: time.Nanosecond})

	code, body := post(t, ts.URL+"/v1/schedules", partBody(4, 0.45, `,"cores":2`))
	if code != http.StatusOK {
		t.Fatalf("budgeted partitioned submit must degrade, not fail: %d %s", code, body)
	}
	var deg ScheduleResponse
	if err := json.Unmarshal([]byte(body), &deg); err != nil {
		t.Fatal(err)
	}
	if !deg.Degraded {
		t.Fatalf("1ns per-core budget did not degrade the response: %s", body)
	}
	if deg.WCSAvgEnergy != nil || deg.ImprovementPct != nil {
		t.Error("degraded partitioned response carries ACS-only baseline fields")
	}
	for _, pc := range deg.PerCore {
		if len(pc.TaskNames) > 0 && !pc.Degraded {
			t.Errorf("core %d served ACS under an expired budget", pc.Core)
		}
	}

	// Direct WCS form of the same partitioned request (unbudgeted by
	// design): identical assignments and per-core vectors.
	code, body = post(t, ts.URL+"/v1/schedules", partBody(4, 0.45, `,"cores":2,"objective":"wcs"`))
	if code != http.StatusOK {
		t.Fatalf("wcs partitioned submit: %d %s", code, body)
	}
	var wcs ScheduleResponse
	if err := json.Unmarshal([]byte(body), &wcs); err != nil {
		t.Fatal(err)
	}
	if wcs.Degraded {
		t.Fatal("WCS objective must never be budgeted (it is the fallback)")
	}
	if len(deg.PerCore) != len(wcs.PerCore) {
		t.Fatalf("core counts differ: %d vs %d", len(deg.PerCore), len(wcs.PerCore))
	}
	for i := range deg.PerCore {
		d, w := deg.PerCore[i], wcs.PerCore[i]
		if fmt.Sprint(d.TaskNames) != fmt.Sprint(w.TaskNames) {
			t.Errorf("core %d: assignments differ: %v vs %v", i, d.TaskNames, w.TaskNames)
		}
		if d.Pieces != w.Pieces || d.PredictedEnergy != w.PredictedEnergy ||
			fmt.Sprint(d.EndMs) != fmt.Sprint(w.EndMs) ||
			fmt.Sprint(d.WCWorkCycles) != fmt.Sprint(w.WCWorkCycles) {
			t.Errorf("core %d: degraded schedule is not the WCS schedule", i)
		}
	}
	if deg.PredictedEnergy != wcs.PredictedEnergy {
		t.Errorf("degraded global energy %g != WCS global energy %g",
			deg.PredictedEnergy, wcs.PredictedEnergy)
	}
}
