package server

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/grid"
	"repro/internal/obs"
)

// The micro-batching dispatcher.
//
// Every solving request (submit, get, compare) becomes one job. The
// dispatcher collects jobs until either BatchSize are pending or BatchWindow
// has elapsed since the batch opened, then dispatches the batch as one
// index-addressed grid job set: jobs are grouped by content fingerprint
// (singleflight — concurrent identical requests share one pipeline
// execution) and the unique groups are drained by the runner's bounded
// worker pool. Batches dispatch asynchronously, so a slow solve never blocks
// the collection of the next batch.
//
// Batching is invisible in responses: each group's result is a pure function
// of its fingerprint (the solve itself goes through the content-addressed
// memo), so which requests happened to share a batch — or a group — can
// never change any response byte. What batching buys is scheduling: one pool
// drains the whole burst in index order instead of the Go scheduler
// interleaving hundreds of independent handler goroutines through the
// solver.

// job is one request's seat in a batch.
type job struct {
	key string
	ctx context.Context
	do  func(ctx context.Context) any
	out chan any  // buffered(1); receives the group result exactly once
	enq time.Time // when the job entered the dispatcher (batch_assembly span)
}

type dispatcher struct {
	jobs      chan *job
	base      context.Context
	runner    *grid.Runner
	batchSize int
	window    time.Duration
	// onPanic observes a recovered solve-pipeline panic (set by the server
	// to count and log it). The panicking group's requesters receive a 500;
	// the pool worker, the batch, and the daemon survive.
	onPanic func(p any)

	batches   atomic.Int64 // dispatched batches
	coalesced atomic.Int64 // jobs that shared a group with an earlier job
}

func newDispatcher(base context.Context, runner *grid.Runner, batchSize int, window time.Duration) *dispatcher {
	d := &dispatcher{
		jobs:      make(chan *job),
		base:      base,
		runner:    runner,
		batchSize: batchSize,
		window:    window,
	}
	go d.loop()
	return d
}

// run enqueues a job keyed by its content fingerprint and waits for the
// result. Identical keys in one batch share one execution; across batches
// the content-addressed memo provides the same guarantee one level down.
func (d *dispatcher) run(ctx context.Context, key string, do func(ctx context.Context) any) (any, error) {
	j := &job{key: key, ctx: ctx, do: do, out: make(chan any, 1), enq: time.Now()}
	select {
	case d.jobs <- j:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-d.base.Done():
		return nil, d.base.Err()
	}
	select {
	case v := <-j.out:
		return v, nil
	case <-ctx.Done():
		// The abandoned group keeps running only until its joined context
		// (all requesters gone) fires; the buffered channel lets it deliver
		// without leaking.
		return nil, ctx.Err()
	}
}

func (d *dispatcher) loop() {
	for {
		var first *job
		select {
		case first = <-d.jobs:
		case <-d.base.Done():
			return
		}
		batch := []*job{first}
		timer := time.NewTimer(d.window)
	collect:
		for len(batch) < d.batchSize {
			select {
			case j := <-d.jobs:
				batch = append(batch, j)
			case <-timer.C:
				break collect
			case <-d.base.Done():
				break collect // dispatch what we have; solves see the canceled base
			}
		}
		timer.Stop()
		d.dispatch(batch)
	}
}

// dispatch groups the batch by key and drains the unique groups through the
// grid pool, asynchronously.
func (d *dispatcher) dispatch(batch []*job) {
	order := make([]string, 0, len(batch))
	groups := make(map[string][]*job, len(batch))
	for _, j := range batch {
		if _, ok := groups[j.key]; !ok {
			order = append(order, j.key)
		}
		groups[j.key] = append(groups[j.key], j)
	}
	d.batches.Add(1)
	d.coalesced.Add(int64(len(batch) - len(order)))
	go d.runner.ForEach(len(order), func(i int) {
		jobs := groups[order[i]]
		ctxs := make([]context.Context, len(jobs))
		for k, j := range jobs {
			ctxs[k] = j.ctx
		}
		ctx, cancel := joinContexts(d.base, ctxs)
		// joinContexts derives from the base context, so request-scoped
		// values (the trace) are dropped; reattach the first requester's
		// trace so solve-stage spans land on the request that opened the
		// group. Purely observational — context values never reach the
		// solve's inputs, so coalescing still cannot change response bytes.
		ctx = obs.ContextWithTrace(ctx, obs.TraceFrom(jobs[0].ctx))
		for _, j := range jobs {
			obs.RecordSpan(j.ctx, "batch_assembly", j.enq)
		}
		res := d.runGroup(jobs[0].do, ctx)
		cancel()
		for _, j := range jobs {
			j.out <- res
		}
	})
}

// runGroup executes one group's pipeline with panic isolation: a panic
// anywhere in the solve path becomes a 500 for the group's requesters
// instead of tearing down the pool goroutine (and with it the daemon).
func (d *dispatcher) runGroup(do func(ctx context.Context) any, ctx context.Context) (res any) {
	defer func() {
		if p := recover(); p != nil {
			if d.onPanic != nil {
				d.onPanic(p)
			}
			res = errorf(http.StatusInternalServerError, "internal error")
		}
	}()
	return do(ctx)
}

// joinContexts derives a context that is canceled when base is done or when
// every member context is done — the lifetime of a coalesced solve: it must
// stop only once *all* requests waiting on it have been abandoned, not when
// the first one goes away.
func joinContexts(base context.Context, members []context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(base)
	go func() {
		for _, m := range members {
			select {
			case <-m.Done():
			case <-ctx.Done():
				return
			}
		}
		cancel()
	}()
	return ctx, cancel
}
