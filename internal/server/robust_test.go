package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/leakcheck"
	"repro/internal/store"
)

// statsOf fetches and decodes /v1/stats.
func statsOf(t *testing.T, url string) StatsResponse {
	t.Helper()
	code, body := get(t, url+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	var st StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestChaos is the fault-injection harness (ISSUE: robustness): a randomized
// fault schedule — disk write/read/sync errors, torn writes, injected handler
// and pipeline panics — runs against a concurrent request stream, and the
// service contract must hold throughout:
//
//   - the daemon never dies (every request gets an HTTP answer),
//   - every answer is 200, 500 (injected panic), or 503 (shed/canceled),
//   - every non-degraded 200 is byte-identical to the fault-free run,
//   - persistent disk failure trips the breaker into memory-only serving,
//     and the breaker re-closes once faults clear,
//   - the store directory reopens cleanly afterward and serves the undamaged
//     prefix: a fresh daemon over the recovered store reproduces the
//     fault-free bytes for the whole request set.
func TestChaos(t *testing.T) {
	leakcheck.Check(t)
	const nBodies = 10
	bodies := make([]string, nBodies)
	for i := range bodies {
		bodies[i] = smallBody(i)
	}

	// Fault-free reference bytes.
	_, ref := newTestServer(t, Options{})
	want := make(map[string]string, nBodies)
	for _, b := range bodies {
		code, resp := post(t, ref.URL+"/v1/schedules", b)
		if code != http.StatusOK {
			t.Fatalf("reference submit: %d %s", code, resp)
		}
		want[b] = resp
	}

	// Chaos daemon: tiered store over a fault-injected filesystem, server
	// failpoints armed from the same registry.
	dir := t.TempDir()
	reg := fault.NewRegistry(42)
	disk, err := store.Open(dir, store.Options{FS: fault.Inject(fault.OS(), reg)})
	if err != nil {
		t.Fatal(err)
	}
	tiered := store.NewTieredWith(grid.NewMemStore(0), disk, store.TieredOptions{
		BreakerThreshold: 3, BreakerCooldown: 50 * time.Millisecond,
	})
	s := New(Options{
		Store: tiered, Checkpoints: tiered, Faults: reg,
		MaxInflight: 8, QueueWait: 5 * time.Millisecond,
		SolveBudget: 250 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer s.Close()
	defer ts.Close()

	// Fault driver: randomly arm and clear failpoints while clients run.
	stop := make(chan struct{})
	var driver sync.WaitGroup
	driver.Add(1)
	go func() {
		defer driver.Done()
		rng := rand.New(rand.NewSource(7))
		specs := []struct {
			name string
			spec fault.Spec
		}{
			{"fs.write", fault.Spec{Prob: 0.5, Err: true, Torn: 0.5}},
			{"fs.write", fault.Spec{Prob: 0.5, Err: true}},
			{"fs.read", fault.Spec{Prob: 0.5, Err: true}},
			{"fs.read", fault.Spec{Prob: 0.5, Latency: time.Millisecond}},
			{"fs.sync", fault.Spec{Prob: 0.5, Err: true}},
			{"handler.panic", fault.Spec{Prob: 0.1, Err: true}},
			{"pipeline.panic", fault.Spec{Prob: 0.1, Err: true}},
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			f := specs[rng.Intn(len(specs))]
			reg.Arm(f.name, f.spec)
			time.Sleep(2 * time.Millisecond)
			if rng.Intn(2) == 0 {
				reg.Disarm(f.name)
			}
		}
	}()

	// Concurrent request stream.
	const clients, iters = 4, 40
	var (
		mu         sync.Mutex
		mismatches []string
		badCodes   []int
		served     [3]int64 // 200 / 500 / 503
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for i := 0; i < iters; i++ {
				b := bodies[rng.Intn(len(bodies))]
				code, resp, err := tryPost(ts.URL+"/v1/schedules", b)
				if err != nil {
					continue // transport-level teardown; the daemon itself is checked below
				}
				mu.Lock()
				switch code {
				case http.StatusOK:
					served[0]++
				case http.StatusInternalServerError:
					served[1]++
				case http.StatusServiceUnavailable:
					served[2]++
				default:
					badCodes = append(badCodes, code)
				}
				mu.Unlock()
				if code != http.StatusOK {
					continue
				}
				var sr ScheduleResponse
				if json.Unmarshal([]byte(resp), &sr) != nil {
					t.Errorf("unparsable 200 body: %s", resp)
					continue
				}
				if sr.Degraded {
					continue // outside the byte contract by design
				}
				if resp != want[b] {
					mu.Lock()
					mismatches = append(mismatches, fmt.Sprintf("body %q:\n got %s\nwant %s", b, resp, want[b]))
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	driver.Wait()
	reg.DisarmAll()

	if len(badCodes) > 0 {
		t.Errorf("unexpected status codes under chaos: %v", badCodes)
	}
	if len(mismatches) > 0 {
		t.Errorf("%d non-degraded 200s differ from the fault-free run; first:\n%s",
			len(mismatches), mismatches[0])
	}
	if served[0] == 0 {
		t.Error("chaos run produced no successful responses at all")
	}
	t.Logf("chaos: %d ok, %d panic-500, %d shed/canceled-503", served[0], served[1], served[2])

	// Deterministic degradation: persistent write failure must trip the
	// breaker into memory-only serving without failing any request.
	reg.Arm("fs.write", fault.Spec{Prob: 1, Err: true})
	for i := 0; i < 4; i++ {
		code, resp := post(t, ts.URL+"/v1/schedules", smallBody(nBodies+i))
		if code != http.StatusOK {
			t.Fatalf("submit during disk failure: %d %s", code, resp)
		}
	}
	if st := statsOf(t, ts.URL); st.Memo.BreakerState != "open" || !st.Memo.MemDegraded {
		t.Fatalf("breaker did not trip under persistent write failure: %+v", st.Memo)
	}

	// Faults clear: after the cooldown, solve traffic doubles as the reopen
	// probe and the breaker must re-close.
	reg.DisarmAll()
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		time.Sleep(25 * time.Millisecond)
		code, resp := post(t, ts.URL+"/v1/schedules", smallBody(100+i))
		if code != http.StatusOK {
			t.Fatalf("submit during recovery: %d %s", code, resp)
		}
		st := statsOf(t, ts.URL)
		if st.Memo.BreakerState == "closed" && !st.Memo.MemDegraded {
			if st.Memo.BreakerRecloses == 0 {
				t.Fatalf("breaker closed without counting a re-close: %+v", st.Memo)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never re-closed after faults cleared: %+v", st.Memo)
		}
	}

	// Leave guaranteed torn debris at the log tail — the one shape only the
	// next Open's scan can clean up — before the "crash".
	reg.Arm("fs.write", fault.Spec{Prob: 1, Err: true, Torn: 0.5})
	if code, resp := post(t, ts.URL+"/v1/schedules", smallBody(60)); code != http.StatusOK {
		t.Fatalf("submit with torn tail: %d %s", code, resp)
	}
	reg.DisarmAll()

	ts.Close()
	s.Close()
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash-recovery contract: the store directory — littered with torn and
	// half-synced appends — must reopen cleanly, and a fresh daemon over it
	// must reproduce the fault-free bytes for the entire request set (every
	// recovered record serves; everything torn is a rebuildable miss).
	disk2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("reopening chaos-damaged store: %v", err)
	}
	st := disk2.Stats()
	t.Logf("recovery: %d entries recovered, %d torn records dropped", st.RecoveredEntries, st.TornRecordsDropped)
	if st.TornRecordsDropped == 0 {
		t.Error("recovery scan dropped no torn records despite the torn tail")
	}
	tiered2 := store.NewTiered(grid.NewMemStore(0), disk2)
	s2 := New(Options{Store: tiered2, Checkpoints: tiered2})
	ts2 := httptest.NewServer(s2.Handler())
	defer s2.Close()
	defer ts2.Close()
	for _, b := range bodies {
		code, resp := post(t, ts2.URL+"/v1/schedules", b)
		if code != http.StatusOK {
			t.Fatalf("post-recovery submit: %d %s", code, resp)
		}
		if resp != want[b] {
			t.Fatalf("post-recovery response differs from fault-free run:\n got %s\nwant %s", resp, want[b])
		}
	}
}

// TestSolveBudgetDegradesToWCS pins the degraded-mode contract: a submit
// whose ACS refinement exhausts the solve budget answers 200 with the WCS
// fallback schedule marked degraded — the exact vectors a direct WCS submit
// returns — and the baseline-comparison fields absent.
func TestSolveBudgetDegradesToWCS(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Options{SolveBudget: time.Nanosecond})

	code, body := post(t, ts.URL+"/v1/schedules", smallBody(0))
	if code != http.StatusOK {
		t.Fatalf("budgeted submit must degrade, not fail: %d %s", code, body)
	}
	var deg ScheduleResponse
	if err := json.Unmarshal([]byte(body), &deg); err != nil {
		t.Fatal(err)
	}
	if !deg.Degraded {
		t.Fatalf("1ns budget did not degrade the response: %s", body)
	}
	if deg.WCSAvgEnergy != nil || deg.ImprovementPct != nil {
		t.Error("degraded response carries ACS-only baseline fields")
	}
	if st := statsOf(t, ts.URL); st.Degraded != 1 {
		t.Errorf("degraded counter = %d, want 1", st.Degraded)
	}

	// The fallback must be the WCS schedule itself: a direct WCS submit of
	// the same set (unbudgeted by design) returns the same vectors.
	wcsBody := strings.TrimSuffix(smallBody(0), "}") + `,"objective":"wcs"}`
	code, body = post(t, ts.URL+"/v1/schedules", wcsBody)
	if code != http.StatusOK {
		t.Fatalf("wcs submit: %d %s", code, body)
	}
	var wcs ScheduleResponse
	if err := json.Unmarshal([]byte(body), &wcs); err != nil {
		t.Fatal(err)
	}
	if wcs.Degraded {
		t.Fatal("WCS objective must never be budgeted (it is the fallback)")
	}
	if deg.Pieces != wcs.Pieces || deg.Sweeps != wcs.Sweeps ||
		deg.PredictedEnergy != wcs.PredictedEnergy ||
		deg.HyperperiodMs != wcs.HyperperiodMs ||
		fmt.Sprint(deg.EndMs) != fmt.Sprint(wcs.EndMs) ||
		fmt.Sprint(deg.WCWorkCycles) != fmt.Sprint(wcs.WCWorkCycles) {
		t.Errorf("degraded schedule is not the WCS schedule:\ndegraded %+v\nwcs      %+v", deg, wcs)
	}
}

// TestPanicIsolation pins both recovery layers: an injected panic in the
// HTTP handler and one in the solve pipeline each cost exactly their own
// request a 500 and a counter bump; the daemon keeps serving.
func TestPanicIsolation(t *testing.T) {
	leakcheck.Check(t)
	reg := fault.NewRegistry(1)
	var mu sync.Mutex
	var logs []string
	_, ts := newTestServer(t, Options{Faults: reg, Logf: func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})

	for i, point := range []string{"handler.panic", "pipeline.panic"} {
		reg.Arm(point, fault.Spec{Prob: 1, Err: true, Count: 1})
		code, body := post(t, ts.URL+"/v1/schedules", smallBody(i))
		if code != http.StatusInternalServerError {
			t.Fatalf("%s: status %d, want 500 (%s)", point, code, body)
		}
		if !strings.Contains(body, "internal error") {
			t.Errorf("%s: 500 body leaks internals: %s", point, body)
		}
		// The daemon survived: the same request now succeeds.
		code, body = post(t, ts.URL+"/v1/schedules", smallBody(i))
		if code != http.StatusOK {
			t.Fatalf("%s: daemon did not survive the panic: %d %s", point, code, body)
		}
		if st := statsOf(t, ts.URL); st.Panics != int64(i+1) {
			t.Errorf("%s: panic counter = %d, want %d", point, st.Panics, i+1)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logs) != 2 {
		t.Errorf("panic log lines = %d, want 2 (one per panic)", len(logs))
	}
	for _, l := range logs {
		if !strings.Contains(l, "panic") || !strings.Contains(l, "goroutine") {
			t.Errorf("panic log line lacks a stack trace: %.120s", l)
		}
	}
}

// TestAdmissionShedsWithRetryAfter pins the overload contract: with every
// seat taken and the queue wait expired, a solving request is shed with 503
// and a Retry-After header, counted in /v1/stats; a freed seat restores
// service.
func TestAdmissionShedsWithRetryAfter(t *testing.T) {
	leakcheck.Check(t)
	s, ts := newTestServer(t, Options{MaxInflight: 1, QueueWait: time.Millisecond})

	s.admit <- struct{}{} // occupy the only seat
	resp, err := http.Post(ts.URL+"/v1/schedules", "application/json", strings.NewReader(smallBody(0)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated submit: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("shed 503 carries no Retry-After header")
	}
	if st := statsOf(t, ts.URL); st.Shed != 1 || st.Inflight != 1 {
		t.Errorf("shed/inflight = %d/%d, want 1/1", st.Shed, st.Inflight)
	}

	<-s.admit // free the seat
	if code, body := post(t, ts.URL+"/v1/schedules", smallBody(0)); code != http.StatusOK {
		t.Fatalf("post-overload submit: %d %s", code, body)
	}
}

// TestSessionLimit503RetryAfter pins satellite 2 for the session-limit path:
// the rejection carries a Retry-After header (longer than the overload
// default — session slots free on a human timescale).
func TestSessionLimit503RetryAfter(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Options{SessionLimit: 1})
	body, _ := sessionBody(t, 3)
	if code, resp := post(t, ts.URL+"/v1/sessions", body); code != http.StatusOK {
		t.Fatalf("first session: %d %s", code, resp)
	}
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-limit create: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "5" {
		t.Errorf("session-limit Retry-After = %q, want %q", ra, "5")
	}
}

// failingBlobs is a BlobStore whose writes always fail — the
// dead-checkpoint-disk regression fixture.
type failingBlobs struct{ puts atomic.Int64 }

func (f *failingBlobs) PutBlob(string, []byte) error {
	f.puts.Add(1)
	return errors.New("checkpoint device gone")
}
func (f *failingBlobs) GetBlob(string) ([]byte, bool, error) { return nil, false, nil }
func (f *failingBlobs) ListBlobs() ([]string, error)         { return nil, nil }

// TestCheckpointFailuresStillServe is the satellite-3 regression: a session
// whose checkpoint writes always fail still serves every observation, every
// failure is counted, and the failure is logged once — not once per observe.
func TestCheckpointFailuresStillServe(t *testing.T) {
	leakcheck.Check(t)
	fb := &failingBlobs{}
	var mu sync.Mutex
	var logs []string
	_, ts := newTestServer(t, Options{Checkpoints: fb, Logf: func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})

	body, set := sessionBody(t, 2)
	code, resp := post(t, ts.URL+"/v1/sessions", body)
	if code != http.StatusOK {
		t.Fatalf("create with dead checkpoint store: %d %s", code, resp)
	}
	var created SessionResponse
	if err := json.Unmarshal([]byte(resp), &created); err != nil {
		t.Fatal(err)
	}

	rows := make([][]float64, 12)
	for i := range rows {
		row := make([]float64, created.Instances)
		for j := range row {
			row[j] = set.Tasks[0].BCEC
		}
		rows[i] = row
	}
	const batches = 4
	for b := 0; b < batches; b++ {
		lo := b * 3
		code, resp := post(t, ts.URL+"/v1/sessions/"+created.SessionID+"/observe",
			observeBody(t, rows[lo:lo+3]))
		if code != http.StatusOK {
			t.Fatalf("observe %d with dead checkpoint store: %d %s", b, code, resp)
		}
	}

	st := statsOf(t, ts.URL)
	if want := fb.puts.Load(); st.CheckpointErrors != want || want < batches {
		t.Errorf("checkpoint errors = %d, want %d (>= %d observes)", st.CheckpointErrors, want, batches)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logs) != 1 {
		t.Fatalf("checkpoint failure logged %d times, want exactly once: %v", len(logs), logs)
	}
	if !strings.Contains(logs[0], "checkpoint") {
		t.Errorf("log line does not identify the checkpoint path: %s", logs[0])
	}
}

// TestServerCloseReleasesGoroutines pins the shutdown contract directly: a
// server that has done real work (solves, sessions, batches) leaves no
// goroutines behind after Close — checked by the shared leakcheck helper.
func TestServerCloseReleasesGoroutines(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Options{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				tryPost(ts.URL+"/v1/schedules", smallBody(i))
			}
		}(c)
	}
	wg.Wait()
	// Cleanup (ts.Close, s.Close, then leakcheck) does the actual check.
}
