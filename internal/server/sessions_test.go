package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

// sessionBody builds a session-create body over a seeded feasible set.
func sessionBody(t *testing.T, seed uint64) (string, *task.Set) {
	t.Helper()
	rng := stats.NewRNG(seed)
	set, err := workload.RandomFeasible(rng, workload.RandomConfig{N: 3, Ratio: 0.1, Utilization: 0.7}, 50,
		func(s *task.Set) bool { return core.Feasible(s, core.Config{}) == nil })
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(struct {
		Tasks []task.Task `json:"tasks"`
	}{set.Tasks})
	if err != nil {
		t.Fatal(err)
	}
	return string(b), set
}

// observeBody renders hyper-period rows as an observe request.
func observeBody(t *testing.T, rows [][]float64) string {
	t.Helper()
	b, err := json.Marshal(ObserveRequest{Hyperperiods: rows})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSessionLifecycle drives the full closed loop over HTTP: create a
// session, stream a mode-switching workload through observe in chunks, see
// the re-solved schedule arrive with a changed fingerprint, and read the
// estimator state back.
func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body, set := sessionBody(t, 1)

	code, resp := post(t, ts.URL+"/v1/sessions", body)
	if code != http.StatusOK {
		t.Fatalf("create: %d %s", code, resp)
	}
	var created SessionResponse
	if err := json.Unmarshal([]byte(resp), &created); err != nil {
		t.Fatal(err)
	}
	if created.SessionID == "" || created.Instances == 0 || created.Schedule.Fingerprint == "" {
		t.Fatalf("incomplete create response: %+v", created)
	}
	if created.State != "tracking" {
		t.Errorf("fresh session state %q", created.State)
	}
	if len(created.Schedule.EndMs) == 0 || len(created.Schedule.EndMs) != len(created.Schedule.WCWorkCycles) {
		t.Fatalf("create response missing schedule vectors")
	}

	// Mode-switching stream: the session must adapt within the horizon.
	sc, err := workload.NewScenario(set, workload.ScenarioConfig{Kind: workload.ModeSwitch, Seed: 5, SwitchEvery: 60})
	if err != nil {
		t.Fatal(err)
	}
	taskOf := make([]int, created.Instances)
	ins, err := set.Instances()
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != created.Instances {
		t.Fatalf("server reports %d instances, set expands to %d", created.Instances, len(ins))
	}
	for i := range ins {
		taskOf[i] = ins[i].TaskIndex
	}
	rows, err := sc.Actuals(150, taskOf)
	if err != nil {
		t.Fatal(err)
	}

	resolved := 0
	var lastSchedule *SessionSchedule
	base := ts.URL + "/v1/sessions/" + created.SessionID
	for lo := 0; lo < len(rows); lo += 10 {
		code, resp := post(t, base+"/observe", observeBody(t, rows[lo:lo+10]))
		if code != http.StatusOK {
			t.Fatalf("observe at %d: %d %s", lo, code, resp)
		}
		var ob ObserveResponse
		if err := json.Unmarshal([]byte(resp), &ob); err != nil {
			t.Fatal(err)
		}
		if ob.Resolved {
			resolved++
			if ob.Schedule == nil || ob.ResolvedHyperperiod == nil {
				t.Fatalf("resolved answer missing schedule or resolve point: %s", resp)
			}
			lastSchedule = ob.Schedule
		} else if ob.Schedule != nil {
			t.Fatalf("no-change answer carried a schedule: %s", resp)
		}
	}
	if resolved == 0 {
		t.Fatal("mode-switch stream never re-solved")
	}
	if lastSchedule.Fingerprint == created.Schedule.Fingerprint {
		t.Error("re-solved schedule kept the initial fingerprint")
	}

	code, resp = get(t, base)
	if code != http.StatusOK {
		t.Fatalf("status: %d %s", code, resp)
	}
	var st SessionStatusResponse
	if err := json.Unmarshal([]byte(resp), &st); err != nil {
		t.Fatal(err)
	}
	if st.Observed != 150 || st.Resolves != int64(resolved) {
		t.Errorf("status observed=%d resolves=%d, want 150/%d", st.Observed, st.Resolves, resolved)
	}
	if len(st.Estimates) != set.N() {
		t.Fatalf("%d estimates for %d tasks", len(st.Estimates), set.N())
	}
	for _, e := range st.Estimates {
		if e.Count == 0 || e.Mean <= 0 {
			t.Errorf("task %s estimator empty: %+v", e.Task, e)
		}
	}
	if st.Schedule.Fingerprint != lastSchedule.Fingerprint {
		t.Error("status schedule is not the last re-solved one")
	}
}

// TestSessionHistoryDeterminism: two sessions created from the same body and
// fed the same observation stream answer identical schedule payloads at
// every step — the session determinism contract (pure function of creation
// body + observation history).
func TestSessionHistoryDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body, set := sessionBody(t, 2)
	sc, err := workload.NewScenario(set, workload.ScenarioConfig{Kind: workload.ModeSwitch, Seed: 9, SwitchEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := set.Instances()
	if err != nil {
		t.Fatal(err)
	}
	taskOf := make([]int, len(ins))
	for i := range ins {
		taskOf[i] = ins[i].TaskIndex
	}
	rows, err := sc.Actuals(130, taskOf)
	if err != nil {
		t.Fatal(err)
	}

	run := func() []string {
		code, resp := post(t, ts.URL+"/v1/sessions", body)
		if code != http.StatusOK {
			t.Fatalf("create: %d %s", code, resp)
		}
		var created SessionResponse
		if err := json.Unmarshal([]byte(resp), &created); err != nil {
			t.Fatal(err)
		}
		out := []string{created.Schedule.Fingerprint}
		for lo := 0; lo < len(rows); lo += 13 {
			hi := lo + 13
			if hi > len(rows) {
				hi = len(rows)
			}
			code, resp := post(t, ts.URL+"/v1/sessions/"+created.SessionID+"/observe", observeBody(t, rows[lo:hi]))
			if code != http.StatusOK {
				t.Fatalf("observe: %d %s", code, resp)
			}
			var ob ObserveResponse
			if err := json.Unmarshal([]byte(resp), &ob); err != nil {
				t.Fatal(err)
			}
			if ob.Resolved {
				b, err := json.Marshal(ob.Schedule)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, string(b))
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) < 2 {
		t.Fatal("stream triggered no re-solves — determinism check vacuous")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("session schedule trajectories differ:\n%v\nvs\n%v", a, b)
	}
}

// TestSessionFingerprintMatchesSubmit: a session's initial schedule carries
// the same content address a plain submit of the same body produces — one
// fingerprint address space across both APIs (the session strips the
// controller-managed warm start before keying).
func TestSessionFingerprintMatchesSubmit(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body, _ := sessionBody(t, 4)

	code, resp := post(t, ts.URL+"/v1/schedules", body)
	if code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, resp)
	}
	var sub ScheduleResponse
	if err := json.Unmarshal([]byte(resp), &sub); err != nil {
		t.Fatal(err)
	}
	code, resp = post(t, ts.URL+"/v1/sessions", body)
	if code != http.StatusOK {
		t.Fatalf("create: %d %s", code, resp)
	}
	var created SessionResponse
	if err := json.Unmarshal([]byte(resp), &created); err != nil {
		t.Fatal(err)
	}
	if created.Schedule.Fingerprint != sub.Fingerprint {
		t.Errorf("session fingerprint %s differs from submit fingerprint %s for the same body",
			created.Schedule.Fingerprint, sub.Fingerprint)
	}
	// And the submit handle works: the session's fingerprint resolves on
	// GET /v1/schedules.
	if code, _ := get(t, ts.URL+"/v1/schedules/"+created.Schedule.Fingerprint); code != http.StatusOK {
		t.Errorf("session fingerprint not fetchable via /v1/schedules: %d", code)
	}
}

func TestSessionRejections(t *testing.T) {
	_, ts := newTestServer(t, Options{SessionLimit: 1, MaxObserveBatch: 4})
	body, _ := sessionBody(t, 3)

	if code, resp := post(t, ts.URL+"/v1/sessions", `{"tasks":[]}`); code != http.StatusUnprocessableEntity {
		t.Errorf("empty set: %d %s", code, resp)
	}
	if code, resp := post(t, ts.URL+"/v1/sessions",
		strings.Replace(body, `{"tasks":`, `{"objective":"wcs","tasks":`, 1)); code != http.StatusUnprocessableEntity {
		t.Errorf("wcs objective: %d %s", code, resp)
	}

	code, resp := post(t, ts.URL+"/v1/sessions", body)
	if code != http.StatusOK {
		t.Fatalf("create: %d %s", code, resp)
	}
	var created SessionResponse
	if err := json.Unmarshal([]byte(resp), &created); err != nil {
		t.Fatal(err)
	}

	// Session limit binds.
	if code, resp := post(t, ts.URL+"/v1/sessions", body); code != http.StatusServiceUnavailable {
		t.Errorf("over session limit: %d %s", code, resp)
	}

	obs := ts.URL + "/v1/sessions/" + created.SessionID + "/observe"
	if code, resp := post(t, ts.URL+"/v1/sessions/nope/observe", `{"hyperperiods":[[1]]}`); code != http.StatusNotFound {
		t.Errorf("unknown session observe: %d %s", code, resp)
	}
	if code, resp := get(t, ts.URL+"/v1/sessions/nope"); code != http.StatusNotFound {
		t.Errorf("unknown session get: %d %s", code, resp)
	}
	if code, resp := post(t, obs, `{"hyperperiods":[]}`); code != http.StatusUnprocessableEntity {
		t.Errorf("empty observe: %d %s", code, resp)
	}
	if code, resp := post(t, obs, observeBody(t, make([][]float64, 5))); code != http.StatusUnprocessableEntity {
		t.Errorf("oversize observe batch: %d %s", code, resp)
	}
	// Wrong observation width is a 422 from the controller.
	if code, resp := post(t, obs, `{"hyperperiods":[[1,2]]}`); code != http.StatusUnprocessableEntity {
		t.Errorf("wrong-width observe: %d %s", code, resp)
	}
}
