package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/grid"
	"repro/internal/store"
	"repro/internal/workload"
)

// TestStoreBackendIdentity is the tentpole's acceptance contract (DESIGN.md
// §9): the residency backend behind the memo — in-memory, disk-only, or
// tiered — must be invisible in every response byte. The same submit, fetch
// and compare requests are driven against all three backends and byte-
// compared, including repeat requests that are served from cache (which on
// the disk backend exercises the full encode → log → decode → recompile
// path).
func TestStoreBackendIdentity(t *testing.T) {
	base := Options{SimHyperperiods: 20}
	backends := []struct {
		name string
		opts func(t *testing.T) Options
	}{
		{"mem", func(t *testing.T) Options { return base }},
		{"disk", func(t *testing.T) Options {
			d, err := store.Open(t.TempDir(), store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			o := base
			o.Store = d
			return o
		}},
		{"tiered", func(t *testing.T) Options {
			d, err := store.Open(t.TempDir(), store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			o := base
			o.Store = store.NewTiered(grid.NewMemStore(0), d)
			return o
		}},
	}

	// One request script, replayed verbatim against every backend.
	type exchange struct{ name, body string }
	script := func(t *testing.T, ts *httptest.Server) []exchange {
		var out []exchange
		var fps []string
		for i := 0; i < 3; i++ {
			code, body := post(t, ts.URL+"/v1/schedules", smallBody(i))
			if code != http.StatusOK {
				t.Fatalf("submit %d: %d %s", i, code, body)
			}
			var resp ScheduleResponse
			if err := json.Unmarshal([]byte(body), &resp); err != nil {
				t.Fatal(err)
			}
			fps = append(fps, resp.Fingerprint)
			out = append(out, exchange{"submit", body})
		}
		// Resubmit and fetch: cache-served on every backend (on disk, via
		// decode + plan recompile).
		for i, fp := range fps {
			_, body := post(t, ts.URL+"/v1/schedules", smallBody(i))
			out = append(out, exchange{"resubmit", body})
			code, body := get(t, ts.URL+"/v1/schedules/"+fp)
			if code != http.StatusOK {
				t.Fatalf("get %s: %d %s", fp, code, body)
			}
			out = append(out, exchange{"get", body})
		}
		code, body := post(t, ts.URL+"/v1/compare", smallBody(0))
		if code != http.StatusOK {
			t.Fatalf("compare: %d %s", code, body)
		}
		out = append(out, exchange{"compare", body})
		return out
	}

	var ref []exchange
	for _, be := range backends {
		_, ts := newTestServer(t, be.opts(t))
		got := script(t, ts)
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("%s backend: %s response %d differs:\n%s\nvs mem:\n%s",
					be.name, got[i].name, i, got[i].body, ref[i].body)
			}
		}
	}
}

// TestStoreRestartIdentity is the warm-restart half of the contract: a
// tiered daemon stopped mid-run — mid-adaptive-session, between a drift
// firing and its re-solve — and restarted on the same store directory must
// answer every subsequent request byte-identically to a daemon that never
// restarted: schedule GETs without resubmission (request blobs + disk log),
// and the resumed session's observes and status (controller checkpoints).
func TestStoreRestartIdentity(t *testing.T) {
	body, set := sessionBody(t, 1)
	sc, err := workload.NewScenario(set, workload.ScenarioConfig{
		Kind: workload.ModeSwitch, Seed: 5, SwitchEvery: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := set.Instances()
	if err != nil {
		t.Fatal(err)
	}
	taskOf := make([]int, len(ins))
	for i := range ins {
		taskOf[i] = ins[i].TaskIndex
	}
	rows, err := sc.Actuals(150, taskOf)
	if err != nil {
		t.Fatal(err)
	}
	const chunk, cut = 10, 70 // restart at row 70: drift has fired, re-solve has not

	// drive runs the whole script against one server pair: the pre-cut part
	// on stop (nil stop = same server throughout), the post-cut part on the
	// server resume returns.
	type arm struct {
		preObs, postObs []string
		submitBody      string
		getBody         string
		statusBody      string
	}
	drive := func(t *testing.T, ts *httptest.Server, restart func() *httptest.Server) arm {
		var a arm
		code, resp := post(t, ts.URL+"/v1/sessions", body)
		if code != http.StatusOK {
			t.Fatalf("create: %d %s", code, resp)
		}
		var created SessionResponse
		if err := json.Unmarshal([]byte(resp), &created); err != nil {
			t.Fatal(err)
		}
		code, a.submitBody = post(t, ts.URL+"/v1/schedules", smallBody(1))
		if code != http.StatusOK {
			t.Fatalf("submit: %d %s", code, a.submitBody)
		}
		var sub ScheduleResponse
		if err := json.Unmarshal([]byte(a.submitBody), &sub); err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < cut; lo += chunk {
			code, resp := post(t, ts.URL+"/v1/sessions/"+created.SessionID+"/observe",
				observeBody(t, rows[lo:lo+chunk]))
			if code != http.StatusOK {
				t.Fatalf("observe %d: %d %s", lo, code, resp)
			}
			a.preObs = append(a.preObs, resp)
		}
		if restart != nil {
			ts = restart()
		}
		for lo := cut; lo < len(rows); lo += chunk {
			code, resp := post(t, ts.URL+"/v1/sessions/"+created.SessionID+"/observe",
				observeBody(t, rows[lo:lo+chunk]))
			if code != http.StatusOK {
				t.Fatalf("observe %d: %d %s", lo, code, resp)
			}
			a.postObs = append(a.postObs, resp)
		}
		// Fetch the earlier submit by fingerprint only — after a restart this
		// crosses the request-blob and disk-log recovery paths.
		code, a.getBody = get(t, ts.URL+"/v1/schedules/"+sub.Fingerprint)
		if code != http.StatusOK {
			t.Fatalf("get: %d %s", code, a.getBody)
		}
		code, a.statusBody = get(t, ts.URL+"/v1/sessions/"+created.SessionID)
		if code != http.StatusOK {
			t.Fatalf("status: %d %s", code, a.statusBody)
		}
		return a
	}

	// Reference arm: one tiered daemon, never restarted.
	dirRef := t.TempDir()
	dRef, err := store.Open(dirRef, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sRef := New(Options{Store: store.NewTiered(grid.NewMemStore(0), dRef), Checkpoints: dRef})
	tsRef := httptest.NewServer(sRef.Handler())
	ref := drive(t, tsRef, nil)
	tsRef.Close()
	sRef.Close()
	dRef.Close()

	// Restarted arm: same requests, with a full daemon stop/boot at the cut.
	dir := t.TempDir()
	d1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Options{Store: store.NewTiered(grid.NewMemStore(0), d1), Checkpoints: d1})
	ts1 := httptest.NewServer(s1.Handler())
	var s2 *Server
	got := drive(t, ts1, func() *httptest.Server {
		ts1.Close()
		s1.Close()
		if err := d1.Close(); err != nil {
			t.Fatal(err)
		}
		d2, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d2.Close() })
		s2 = New(Options{Store: store.NewTiered(grid.NewMemStore(0), d2), Checkpoints: d2})
		t.Cleanup(s2.Close)
		n, err := s2.RestoreSessions(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("restored %d sessions, want 1", n)
		}
		ts2 := httptest.NewServer(s2.Handler())
		t.Cleanup(ts2.Close)
		return ts2
	})

	if len(got.preObs) != len(ref.preObs) || len(got.postObs) != len(ref.postObs) {
		t.Fatal("arms drove different request counts")
	}
	for i := range ref.preObs {
		if got.preObs[i] != ref.preObs[i] {
			t.Errorf("pre-restart observe %d differs (tiered determinism broke before the restart even happened)", i)
		}
	}
	for i := range ref.postObs {
		if got.postObs[i] != ref.postObs[i] {
			t.Errorf("post-restart observe %d differs:\n%s\nvs\n%s", i, got.postObs[i], ref.postObs[i])
		}
	}
	if got.getBody != ref.getBody || got.getBody != got.submitBody {
		t.Error("post-restart GET is not byte-identical to the pre-restart submit")
	}
	if got.statusBody != ref.statusBody {
		t.Errorf("final session status differs:\n%s\nvs\n%s", got.statusBody, ref.statusBody)
	}

	// The restarted daemon must have served from the recovered store, and its
	// operational counters must say so.
	var st StatsResponse
	_, statsBody := get(t, "http://"+s2httpAddr(t, s2)+"/v1/stats")
	if err := json.Unmarshal([]byte(statsBody), &st); err != nil {
		t.Fatal(err)
	}
	if st.RestoredSessions != 1 {
		t.Errorf("stats restored_sessions = %d, want 1", st.RestoredSessions)
	}
	if st.CheckpointErrors != 0 {
		t.Errorf("checkpoint errors: %d", st.CheckpointErrors)
	}
	if st.Memo.DiskHits == 0 {
		t.Error("restarted daemon never hit the disk tier — warm restart did not engage")
	}
	if st.Memo.RecoveredEntries == 0 {
		t.Error("stats report no recovered entries after restart")
	}
}

// s2httpAddr serves s once more to read its stats (the restart closure owns
// the live test server; stats are operational so a fresh listener is fine).
func s2httpAddr(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.Listener.Addr().String()
}
