package server

import (
	"sync"
	"testing"
	"time"
)

// TestServerConcurrentDeterminism is the serving-path determinism pin (the
// DESIGN.md §7 contract): N parallel clients submitting overlapping task
// sets — through real HTTP, a wide batch window, and a shared bounded memo —
// receive responses byte-identical to a serial replay on a fresh server, and
// the whole storm costs exactly one WCS + one ACS solve per unique
// fingerprint (in-batch singleflight plus cross-batch memoization). Run
// under -race in CI, it doubles as the data-race check for the dispatcher,
// the joined contexts, and the memo's LRU bookkeeping.
func TestServerConcurrentDeterminism(t *testing.T) {
	const (
		uniqueSets = 5
		clients    = 8
		perClient  = 5
	)
	// Deterministic assignment of bodies to requests: client c's k-th
	// request uses set (c*perClient + k) mod uniqueSets, so every set is
	// hit by several clients concurrently.
	bodyFor := func(c, k int) string { return smallBody((c*perClient + k) % uniqueSets) }

	// Serial replay first, on its own server: the reference bytes.
	_, serialTS := newTestServer(t, Options{})
	reference := make(map[string]string)
	for i := 0; i < uniqueSets; i++ {
		code, body := post(t, serialTS.URL+"/v1/schedules", smallBody(i))
		if code != 200 {
			t.Fatalf("serial submit %d: %d %s", i, code, body)
		}
		reference[smallBody(i)] = body
	}

	// Concurrent storm against a fresh server.
	s, ts := newTestServer(t, Options{BatchSize: 16, BatchWindow: 5 * time.Millisecond})
	var wg sync.WaitGroup
	results := make([][]string, clients)
	transport := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c] = make([]string, perClient)
			for k := 0; k < perClient; k++ {
				_, body, err := tryPost(ts.URL+"/v1/schedules", bodyFor(c, k))
				if err != nil {
					transport <- err
					return
				}
				results[c][k] = body
			}
		}(c)
	}
	wg.Wait()
	close(transport)
	for err := range transport {
		t.Fatal(err)
	}

	for c := 0; c < clients; c++ {
		for k := 0; k < perClient; k++ {
			want := reference[bodyFor(c, k)]
			if got := results[c][k]; got != want {
				t.Fatalf("client %d request %d: concurrent response differs from serial replay:\n%s\nvs\n%s",
					c, k, got, want)
			}
		}
	}

	// Exactly one solve per unique fingerprint per objective: the WCS build
	// and the warm-started ACS build. 40 requests, 10 solves.
	st := s.memo.Stats()
	if st.ScheduleMisses != 2*uniqueSets {
		t.Errorf("want %d schedule solves for %d unique sets, got %d (singleflight broken?)",
			2*uniqueSets, uniqueSets, st.ScheduleMisses)
	}
	if st.Evictions != 0 {
		t.Errorf("unexpected evictions under the default cap: %d", st.Evictions)
	}
}

// TestServerConcurrentMixedEndpoints storms submit, get and compare at once;
// every response class must match its own serial reference. This pins the
// dispatcher's group keying (a compare and a submit of the same set must not
// share a result).
func TestServerConcurrentMixedEndpoints(t *testing.T) {
	const clients = 6
	body := smallBody(1)

	_, serialTS := newTestServer(t, Options{SimHyperperiods: 10})
	_, wantSubmit := post(t, serialTS.URL+"/v1/schedules", body)
	_, wantCompare := post(t, serialTS.URL+"/v1/compare", body)

	_, ts := newTestServer(t, Options{SimHyperperiods: 10, BatchSize: 8, BatchWindow: 5 * time.Millisecond})
	var wg sync.WaitGroup
	errs := make(chan string, clients*2)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, got, err := tryPost(ts.URL+"/v1/schedules", body); err != nil {
				errs <- "submit transport: " + err.Error()
			} else if got != wantSubmit {
				errs <- "submit mismatch: " + got
			}
			if _, got, err := tryPost(ts.URL+"/v1/compare", body); err != nil {
				errs <- "compare transport: " + err.Error()
			} else if got != wantCompare {
				errs <- "compare mismatch: " + got
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
