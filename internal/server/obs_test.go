package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// scrape fetches /metrics and parses it strictly — any exposition-format
// violation fails the test here, so every test that scrapes is also a
// format test.
func scrape(t *testing.T, base string) []obs.Family {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("/metrics content type %q, want %q", ct, obs.ContentType)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("/metrics is not valid exposition format: %v", err)
	}
	return fams
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func sampleOr(t *testing.T, fams []obs.Family, name string, labels ...obs.Label) float64 {
	t.Helper()
	v, ok := obs.SampleValue(fams, name, labels...)
	if !ok {
		t.Fatalf("metric %s%v missing from /metrics", name, labels)
	}
	return v
}

// mixedWorkload drives every counted request kind through the server:
// submits (with a duplicate for the memo/coalescing path), a get, a
// compare, and a drift-firing observation stream on one session.
func mixedWorkload(t *testing.T, ts string) {
	t.Helper()
	for _, i := range []int{0, 1, 0} { // i=0 twice: second is a memo hit
		if code, body := post(t, ts+"/v1/schedules", smallBody(i)); code != http.StatusOK {
			t.Fatalf("submit %d: %d %s", i, code, body)
		}
	}
	var sub ScheduleResponse
	_, body := post(t, ts+"/v1/schedules", smallBody(0))
	if err := json.Unmarshal([]byte(body), &sub); err != nil {
		t.Fatal(err)
	}
	if code, body := get(t, ts+"/v1/schedules/"+sub.Fingerprint); code != http.StatusOK {
		t.Fatalf("get: %d %s", code, body)
	}
	if code, body := post(t, ts+"/v1/compare", smallBody(2)); code != http.StatusOK {
		t.Fatalf("compare: %d %s", code, body)
	}

	sessBody, set := sessionBody(t, 1)
	code, resp := post(t, ts+"/v1/sessions", sessBody)
	if code != http.StatusOK {
		t.Fatalf("session create: %d %s", code, resp)
	}
	var created SessionResponse
	if err := json.Unmarshal([]byte(resp), &created); err != nil {
		t.Fatal(err)
	}
	sc, err := workload.NewScenario(set, workload.ScenarioConfig{Kind: workload.ModeSwitch, Seed: 5, SwitchEvery: 60})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := set.Instances()
	if err != nil {
		t.Fatal(err)
	}
	taskOf := make([]int, len(ins))
	for i := range ins {
		taskOf[i] = ins[i].TaskIndex
	}
	rows, err := sc.Actuals(150, taskOf)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(rows); lo += 10 {
		if code, resp := post(t, ts+"/v1/sessions/"+created.SessionID+"/observe", observeBody(t, rows[lo:lo+10])); code != http.StatusOK {
			t.Fatalf("observe at %d: %d %s", lo, code, resp)
		}
	}
}

// TestStatsMatchesMetrics pins satellite #1: after a mixed workload, every
// counter /v1/stats reports equals the value /metrics exposes — the two
// surfaces read the same registry and can never disagree.
func TestStatsMatchesMetrics(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	mixedWorkload(t, ts.URL)

	code, body := get(t, ts.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	var st StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	fams := scrape(t, ts.URL)

	checks := []struct {
		name  string
		stats float64
		lab   []obs.Label
	}{
		{"schedd_requests_total", float64(st.Submits), []obs.Label{obs.L("endpoint", "submit")}},
		{"schedd_requests_total", float64(st.Gets), []obs.Label{obs.L("endpoint", "get")}},
		{"schedd_requests_total", float64(st.Compares), []obs.Label{obs.L("endpoint", "compare")}},
		{"schedd_requests_total", float64(st.SessionCreates), []obs.Label{obs.L("endpoint", "session_create")}},
		{"schedd_requests_total", float64(st.Observes), []obs.Label{obs.L("endpoint", "observe")}},
		{"schedd_batches_total", float64(st.Batches), nil},
		{"schedd_coalesced_total", float64(st.Coalesced), nil},
		{"schedd_sessions", float64(st.Sessions), nil},
		{"schedd_stored_requests", float64(st.Stored), nil},
		{"schedd_sessions_restored_total", float64(st.RestoredSessions), nil},
		{"schedd_checkpoint_errors_total", float64(st.CheckpointErrors), nil},
		{"schedd_inflight", float64(st.Inflight), nil},
		{"schedd_shed_total", float64(st.Shed), nil},
		{"schedd_degraded_total", float64(st.Degraded), nil},
		{"schedd_panics_total", float64(st.Panics), nil},
		{"schedd_memo_hits_total", float64(st.Memo.ScheduleHits), []obs.Label{obs.L("kind", "schedule")}},
		{"schedd_memo_misses_total", float64(st.Memo.ScheduleMisses), []obs.Label{obs.L("kind", "schedule")}},
		{"schedd_memo_hits_total", float64(st.Memo.PlanHits), []obs.Label{obs.L("kind", "plan")}},
		{"schedd_memo_misses_total", float64(st.Memo.PlanMisses), []obs.Label{obs.L("kind", "plan")}},
		{"schedd_memo_evictions_total", float64(st.Memo.Evictions), nil},
		{"schedd_memo_bytes_used", float64(st.Memo.BytesUsed), nil},
		{"schedd_store_breaker_state", breakerStateNum(st.Memo.BreakerState), nil},
	}
	for _, c := range checks {
		if got := sampleOr(t, fams, c.name, c.lab...); got != c.stats {
			t.Errorf("%s%v: /metrics says %v, /v1/stats says %v", c.name, c.lab, got, c.stats)
		}
	}
	// Sanity: the workload actually exercised the interesting paths.
	if st.Submits < 4 || st.Memo.ScheduleHits == 0 || st.Observes == 0 {
		t.Fatalf("workload too thin to make the comparison meaningful: %+v", st)
	}
}

// TestMetricsCoverageAndHistograms asserts the scrape covers the
// instrumented subsystems and that the latency histograms actually
// accumulated observations from the workload.
func TestMetricsCoverageAndHistograms(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	mixedWorkload(t, ts.URL)
	fams := scrape(t, ts.URL)

	for _, name := range []string{
		"schedd_requests_total", "schedd_request_seconds", "schedd_stage_seconds",
		"schedd_batches_total", "schedd_coalesced_total",
		"schedd_memo_hits_total", "schedd_memo_misses_total", "schedd_memo_evictions_total",
		"schedd_memo_bytes_used", "schedd_memo_bytes_cap",
		"schedd_store_tier_hits_total", "schedd_store_breaker_state",
		"schedd_store_breaker_trips_total", "schedd_store_mem_degraded",
		"schedd_shed_total", "schedd_degraded_total", "schedd_panics_total",
		"schedd_feedback_drifts_total", "schedd_feedback_resolves_total",
		"schedd_sessions", "schedd_inflight",
	} {
		if obs.FindFamily(fams, name) == nil {
			t.Errorf("family %s missing from /metrics", name)
		}
	}

	// Stage histograms: the solve, batch-assembly, and feedback paths all
	// ran, so their spans must have landed.
	for _, stage := range []string{"solve_wcs", "solve_acs", "sim", "batch_assembly", "feedback_resolve"} {
		if n := sampleOr(t, fams, "schedd_stage_seconds_count", obs.L("stage", stage)); n == 0 {
			t.Errorf("stage %s histogram empty after mixed workload", stage)
		}
	}
	for _, ep := range []string{"submit", "get", "compare", "session_create", "observe"} {
		if n := sampleOr(t, fams, "schedd_request_seconds_count", obs.L("endpoint", ep)); n == 0 {
			t.Errorf("endpoint %s request histogram empty", ep)
		}
	}
	// The drift-firing stream must surface as feedback counters.
	if sampleOr(t, fams, "schedd_feedback_drifts_total") == 0 {
		t.Error("mode-switch stream fired no drift in the metrics")
	}
	if sampleOr(t, fams, "schedd_feedback_resolves_total") == 0 {
		t.Error("mode-switch stream counted no adaptation re-solves")
	}

	// Counters stay monotone across scrapes under more traffic.
	post(t, ts.URL+"/v1/schedules", smallBody(7))
	fams2 := scrape(t, ts.URL)
	for _, f := range fams {
		if f.Type != "counter" {
			continue
		}
		for _, s := range f.Samples {
			v2, ok := obs.SampleValue(fams2, s.Name, s.Labels...)
			if !ok {
				t.Errorf("counter %s%v disappeared between scrapes", s.Name, s.Labels)
				continue
			}
			if v2 < s.Value {
				t.Errorf("counter %s%v went backwards: %v -> %v", s.Name, s.Labels, s.Value, v2)
			}
		}
	}
}

// TestTraceHeaderPropagation pins the tracing contract: a caller-supplied
// X-Trace-Id is echoed, an absent one is minted, and neither changes a
// single response byte.
func TestTraceHeaderPropagation(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// Without a header: one is minted.
	resp, err := http.Post(ts.URL+"/v1/schedules", "application/json", strings.NewReader(smallBody(0)))
	if err != nil {
		t.Fatal(err)
	}
	minted := resp.Header.Get(obs.TraceHeader)
	body1 := readAll(t, resp)
	if minted == "" {
		t.Fatal("no X-Trace-Id minted for an untraced request")
	}

	// With a header: echoed verbatim, bytes identical.
	req, err := http.NewRequest("POST", ts.URL+"/v1/schedules", strings.NewReader(smallBody(0)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, "test-trace-42")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp2.Header.Get(obs.TraceHeader); got != "test-trace-42" {
		t.Fatalf("trace id not echoed: got %q", got)
	}
	if body2 := readAll(t, resp2); body2 != body1 {
		t.Fatalf("tracing changed response bytes:\n  untraced: %s\n  traced:   %s", body1, body2)
	}

	// A second minted id differs from the first (ids are unique).
	resp3, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if id := resp3.Header.Get(obs.TraceHeader); id == "" || id == minted {
		t.Fatalf("second minted trace id %q (first %q)", id, minted)
	}
}
