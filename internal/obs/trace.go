package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the request/response header carrying the trace ID. It
// travels only in headers — never in bodies — so propagation cannot
// perturb the byte-determinism contract on responses.
const TraceHeader = "X-Trace-Id"

var (
	traceBase string
	traceSeq  atomic.Uint64
)

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		traceBase = "0000000000000000"
		return
	}
	traceBase = hex.EncodeToString(b[:])
}

// NewTraceID mints a process-unique trace ID: a random per-process base
// plus a sequence number. Cheap (no syscall after init) and unique
// enough to correlate logs across a fleet.
func NewTraceID() string {
	return traceBase + "-" + strconv.FormatUint(traceSeq.Add(1), 16)
}

// Span is one recorded stage timing within a trace.
type Span struct {
	Stage   string
	Seconds float64
}

// maxSpans bounds a trace's span list so a pathological request cannot
// grow memory without bound; the sink still sees every span.
const maxSpans = 64

// Trace carries a request's ID and its recorded span timings. A nil
// *Trace is a no-op for every method, so instrumented code paths need no
// "is tracing on" branches.
type Trace struct {
	ID   string
	sink func(stage string, seconds float64)

	mu    sync.Mutex
	spans []Span
}

// NewTrace returns a trace with the given ID. sink, if non-nil, is
// invoked synchronously for every recorded span (the server points it at
// its per-stage latency histograms); it must be safe for concurrent
// calls.
func NewTrace(id string, sink func(stage string, seconds float64)) *Trace {
	return &Trace{ID: id, sink: sink}
}

// Record appends one span and feeds the sink.
func (t *Trace) Record(stage string, seconds float64) {
	if t == nil {
		return
	}
	if t.sink != nil {
		t.sink(stage, seconds)
	}
	t.mu.Lock()
	if len(t.spans) < maxSpans {
		t.spans = append(t.spans, Span{Stage: stage, Seconds: seconds})
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

type traceKey struct{}

// ContextWithTrace attaches t to ctx. Attaching nil returns ctx
// unchanged.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// RecordSpan records a span on ctx's trace measuring elapsed time since
// start. A no-op when ctx carries no trace.
func RecordSpan(ctx context.Context, stage string, start time.Time) {
	if t := TraceFrom(ctx); t != nil {
		t.Record(stage, time.Since(start).Seconds())
	}
}

// StartSpan starts timing a stage and returns the function that closes
// it. When ctx carries no trace the returned closure is a no-op and no
// clock is read.
func StartSpan(ctx context.Context, stage string) func() {
	t := TraceFrom(ctx)
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Record(stage, time.Since(start).Seconds()) }
}
