package obs

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %v", g.Value())
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram is not a no-op")
	}
}

func TestCounterMonotone(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(-7) // ignored: counters never decrease
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	uppers, cum := h.snapshot()
	wantUppers := []float64{0.01, 0.1, 1, math.Inf(1)}
	wantCum := []float64{2, 3, 4, 5} // le is inclusive: 0.01 lands in the first bucket
	for i := range wantUppers {
		if uppers[i] != wantUppers[i] || cum[i] != wantCum[i] {
			t.Fatalf("bucket %d = (%v, %v), want (%v, %v)", i, uppers[i], cum[i], wantUppers[i], wantCum[i])
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.565) > 1e-9 {
		t.Fatalf("sum = %v, want 5.565", h.Sum())
	}
}

func TestBucketQuantile(t *testing.T) {
	uppers := []float64{1, 2, 4, math.Inf(1)}
	cum := []float64{10, 30, 40, 40}
	// Median: target 20, falls in (1,2] which spans cum 10→30; halfway.
	if got := BucketQuantile(0.5, uppers, cum); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 1.5", got)
	}
	// Everything beyond the last finite bound clamps to it.
	if got := BucketQuantile(1, uppers, cum); got != 4 {
		t.Fatalf("p100 = %v, want 4", got)
	}
	if got := BucketQuantile(0.5, nil, nil); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_requests_total", "Requests served.", L("endpoint", "submit"))
	r.Counter("app_requests_total", "Requests served.", L("endpoint", "get"))
	r.CounterFunc("app_derived_total", "Derived.", func() int64 { return 7 })
	g := r.Gauge("app_inflight", "In-flight requests.")
	r.GaugeFunc("app_temp", "", func() float64 { return 2.5 })
	h := r.Histogram("app_latency_seconds", "Latency.", LatencyBuckets(), L("stage", "solve"))
	c.Add(3)
	g.Set(2)
	h.Observe(0.003)
	h.Observe(0.2)

	srv := httptest.NewServer(r)
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q, want %q", ct, ContentType)
	}
	fams, err := ParseExposition(res.Body)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if v, ok := SampleValue(fams, "app_requests_total", L("endpoint", "submit")); !ok || v != 3 {
		t.Fatalf("app_requests_total{submit} = %v (%v), want 3", v, ok)
	}
	if v, ok := SampleValue(fams, "app_derived_total"); !ok || v != 7 {
		t.Fatalf("app_derived_total = %v (%v), want 7", v, ok)
	}
	if v, ok := SampleValue(fams, "app_latency_seconds_count", L("stage", "solve")); !ok || v != 2 {
		t.Fatalf("histogram count = %v (%v), want 2", v, ok)
	}
	if q, ok := HistogramQuantile(fams, "app_latency_seconds", 0.5, L("stage", "solve")); !ok || q <= 0 {
		t.Fatalf("histogram p50 = %v (%v)", q, ok)
	}
	// Families arrive sorted by name.
	for i := 1; i < len(fams); i++ {
		if fams[i-1].Name >= fams[i].Name {
			t.Fatalf("families not sorted: %s >= %s", fams[i-1].Name, fams[i].Name)
		}
	}
}

// TestCountersMonotoneAcrossScrapes is the format-rot guard from the
// issue: scrape, mutate, scrape again; every counter family must have a
// # TYPE line, legal names/labels (the parser enforces both), and
// non-decreasing values between the scrapes.
func TestCountersMonotoneAcrossScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "", L("k", "v"))
	h := r.Histogram("y_seconds", "", []float64{1})
	scrape := func() []Family {
		var sb strings.Builder
		if err := r.WriteExposition(&sb); err != nil {
			t.Fatal(err)
		}
		fams, err := ParseExposition(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, sb.String())
		}
		return fams
	}
	first := scrape()
	c.Add(10)
	h.Observe(0.5)
	second := scrape()
	for _, f := range first {
		if f.Type == "" {
			t.Fatalf("family %s has no TYPE", f.Name)
		}
		if f.Type != "counter" && f.Type != "histogram" {
			continue
		}
		for _, sm := range f.Samples {
			if strings.HasSuffix(sm.Name, "_sum") {
				continue
			}
			after, ok := SampleValue(second, sm.Name, sm.Labels...)
			if !ok {
				t.Fatalf("sample %s vanished between scrapes", sm.Name)
			}
			if after < sm.Value {
				t.Fatalf("sample %s decreased: %v -> %v", sm.Name, sm.Value, after)
			}
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE":  "foo_total 3\n",
		"bad name":             "# TYPE 9bad counter\n9bad 1\n",
		"bad label":            "# TYPE a counter\na{__x=\"1\"} 1\n",
		"negative counter":     "# TYPE a counter\na -1\n",
		"duplicate TYPE":       "# TYPE a counter\n# TYPE a counter\na 1\n",
		"type after samples":   "# TYPE a counter\na 1\n# TYPE b counter\nb 1\n# TYPE a gauge\n",
		"missing +Inf bucket":  "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_count 2\nh_sum 1\n",
		"non-cumulative":       "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\nh_sum 1\n",
		"count mismatch":       "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 4\nh_sum 1\n",
		"unterminated label":   "# TYPE a counter\na{k=\"v 1\n",
		"unquoted label value": "# TYPE a counter\na{k=v} 1\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parse accepted malformed input:\n%s", name, in)
		}
	}
	// Sanity: a valid document still parses.
	ok := "# HELP a help\n# TYPE a counter\na{k=\"v\"} 1\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1.5\nh_count 2\n"
	if _, err := ParseExposition(strings.NewReader(ok)); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
}

func TestRegistryPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("ok_total", "")
	expectPanic("invalid name", func() { r.Counter("bad name", "") })
	expectPanic("invalid label", func() { r.Counter("a_total", "", L("__r", "x")) })
	expectPanic("kind conflict", func() { r.Gauge("ok_total", "") })
	expectPanic("duplicate labels", func() { r.Counter("ok_total", "") })
	expectPanic("unsorted bounds", func() { r.Histogram("h", "", []float64{2, 1}) })
	expectPanic("empty bounds", func() { r.Histogram("h", "", nil) })
}

func TestTracePropagation(t *testing.T) {
	if NewTraceID() == NewTraceID() {
		t.Fatal("trace IDs collide")
	}
	var mu sync.Mutex
	sunk := map[string]float64{}
	tr := NewTrace("abc-1", func(stage string, s float64) {
		mu.Lock()
		sunk[stage] = s
		mu.Unlock()
	})
	ctx := ContextWithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace not recovered from context")
	}
	done := StartSpan(ctx, "solve")
	time.Sleep(time.Millisecond)
	done()
	RecordSpan(ctx, "sim", time.Now().Add(-2*time.Millisecond))
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Stage != "solve" || spans[1].Stage != "sim" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Seconds <= 0 || spans[1].Seconds <= 0 {
		t.Fatalf("non-positive span timings: %+v", spans)
	}
	mu.Lock()
	if len(sunk) != 2 {
		t.Fatalf("sink saw %d stages, want 2", len(sunk))
	}
	mu.Unlock()

	// No trace attached: everything is a cheap no-op.
	bg := context.Background()
	if TraceFrom(bg) != nil {
		t.Fatal("phantom trace")
	}
	StartSpan(bg, "x")()
	RecordSpan(bg, "x", time.Now())
	RecordSpan(nil, "x", time.Now()) //lint:ignore SA1012 nil ctx must be tolerated
	var nilTrace *Trace
	nilTrace.Record("x", 1)
	if nilTrace.Spans() != nil {
		t.Fatal("nil trace has spans")
	}
	if ContextWithTrace(bg, nil) != bg {
		t.Fatal("attaching nil trace should return ctx unchanged")
	}

	// Span list is bounded; the sink still sees everything.
	big := NewTrace("big", nil)
	for i := 0; i < maxSpans+10; i++ {
		big.Record("s", 0.001)
	}
	if got := len(big.Spans()); got != maxSpans {
		t.Fatalf("span list = %d, want bounded at %d", got, maxSpans)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h_seconds", "", LatencyBuckets())
	g := r.Gauge("g", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001 * float64(j%7))
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || g.Value() != 8000 {
		t.Fatalf("lost updates: c=%d h=%d g=%v", c.Value(), h.Count(), g.Value())
	}
}
