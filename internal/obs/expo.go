package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition sample line. For histograms Name keeps
// the full sample name (family plus _bucket/_sum/_count suffix).
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Family is one parsed metric family: its # TYPE, optional # HELP, and
// every sample attributed to it (histogram _bucket/_sum/_count samples
// attach to the base family).
type Family struct {
	Name    string
	Type    string
	Help    string
	Samples []Sample
}

// ParseExposition parses Prometheus text exposition format and validates
// it strictly: every sample must belong to a family with a preceding
// # TYPE line, all metric and label names must be legal, counter values
// must be finite and non-negative, and histogram buckets must be
// cumulative with a closing +Inf bucket that matches _count. It exists
// so tests and load clients can fail hard on format rot in the
// hand-rolled writer.
func ParseExposition(r io.Reader) ([]Family, error) {
	fams := make(map[string]*Family)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, fams, &order); err != nil {
				return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
			}
			continue
		}
		if err := parseSample(line, fams); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading exposition: %w", err)
	}
	out := make([]Family, 0, len(order))
	for _, n := range order {
		f := fams[n]
		if f.Type == "" {
			return nil, fmt.Errorf("obs: family %s has samples but no # TYPE line", n)
		}
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
		out = append(out, *f)
	}
	return out, nil
}

func parseComment(line string, fams map[string]*Family, order *[]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free-form comment
	}
	if len(fields) < 3 {
		return fmt.Errorf("malformed %s line %q", fields[1], line)
	}
	name := fields[2]
	if !ValidMetricName(name) {
		return fmt.Errorf("invalid metric name %q in %s line", name, fields[1])
	}
	f := fams[name]
	if f == nil {
		f = &Family{Name: name}
		fams[name] = f
		*order = append(*order, name)
	}
	rest := ""
	if len(fields) == 4 {
		rest = fields[3]
	}
	if fields[1] == "HELP" {
		f.Help = rest
		return nil
	}
	switch rest {
	case "counter", "gauge", "histogram", "summary", "untyped":
	default:
		return fmt.Errorf("unknown metric type %q for %s", rest, name)
	}
	if f.Type != "" {
		return fmt.Errorf("duplicate # TYPE for %s", name)
	}
	if len(f.Samples) > 0 {
		return fmt.Errorf("# TYPE for %s appears after its samples", name)
	}
	f.Type = rest
	return nil
}

func parseSample(line string, fams map[string]*Family) error {
	name, rest, err := splitName(line)
	if err != nil {
		return err
	}
	var labels []Label
	if strings.HasPrefix(rest, "{") {
		labels, rest, err = splitLabels(rest)
		if err != nil {
			return fmt.Errorf("sample %s: %w", name, err)
		}
	}
	valStr := strings.Fields(rest)
	if len(valStr) == 0 || len(valStr) > 2 { // value [timestamp]
		return fmt.Errorf("sample %s: malformed value %q", name, rest)
	}
	v, err := parseValue(valStr[0])
	if err != nil {
		return fmt.Errorf("sample %s: %w", name, err)
	}

	f, sampleOf := resolveFamily(fams, name)
	if f == nil {
		return fmt.Errorf("sample %s has no preceding # TYPE line", name)
	}
	if f.Type == "counter" && (math.IsNaN(v) || v < 0) {
		return fmt.Errorf("counter %s has non-monotone value %v", name, v)
	}
	_ = sampleOf
	f.Samples = append(f.Samples, Sample{Name: name, Labels: labels, Value: v})
	return nil
}

// resolveFamily maps a sample name to its family, peeling histogram
// suffixes when the base family is a known histogram.
func resolveFamily(fams map[string]*Family, name string) (*Family, string) {
	if f := fams[name]; f != nil && f.Type != "" && f.Type != "histogram" {
		return f, name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f := fams[base]; f != nil && f.Type == "histogram" {
				return f, base
			}
		}
	}
	if f := fams[name]; f != nil && f.Type != "" {
		return f, name
	}
	return nil, name
}

func splitName(line string) (name, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", fmt.Errorf("malformed sample line %q", line)
	}
	name = line[:i]
	if !ValidMetricName(name) {
		return "", "", fmt.Errorf("invalid sample name %q", name)
	}
	return name, line[i:], nil
}

func splitLabels(rest string) ([]Label, string, error) {
	var labels []Label
	s := rest[1:] // past '{'
	for {
		s = strings.TrimLeft(s, " ,")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, "", fmt.Errorf("malformed labels near %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !ValidLabelName(key) && key != "le" && key != "quantile" {
			return nil, "", fmt.Errorf("invalid label name %q", key)
		}
		s = strings.TrimSpace(s[eq+1:])
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s value is not quoted", key)
		}
		val, tail, err := unquoteLabel(s)
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %w", key, err)
		}
		labels = append(labels, Label{Key: key, Value: val})
		s = tail
	}
}

func unquoteLabel(s string) (val, rest string, err error) {
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		if c == '"' {
			return b.String(), s[i+1:], nil
		}
		if c == '\\' {
			if i+1 >= len(s) {
				break
			}
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("bad escape \\%c", s[i+1])
			}
			i += 2
			continue
		}
		b.WriteByte(c)
		i++
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

// checkHistogram validates every bucket series in a histogram family:
// cumulative counts non-decreasing in le order, a closing +Inf bucket,
// and _count equal to the +Inf bucket.
func checkHistogram(f *Family) error {
	type series struct {
		les    []float64
		counts []float64
		count  float64
		hasCnt bool
	}
	bySig := make(map[string]*series)
	sig := func(labels []Label) string {
		parts := make([]string, 0, len(labels))
		for _, l := range labels {
			if l.Key == "le" {
				continue
			}
			parts = append(parts, l.Key+"\x00"+l.Value)
		}
		sort.Strings(parts)
		return strings.Join(parts, "\x01")
	}
	get := func(labels []Label) *series {
		k := sig(labels)
		s := bySig[k]
		if s == nil {
			s = &series{}
			bySig[k] = s
		}
		return s
	}
	for _, sm := range f.Samples {
		switch {
		case strings.HasSuffix(sm.Name, "_bucket"):
			le := math.NaN()
			for _, l := range sm.Labels {
				if l.Key == "le" {
					v, err := parseValue(l.Value)
					if err != nil {
						return fmt.Errorf("obs: %s: bad le %q", f.Name, l.Value)
					}
					le = v
				}
			}
			if math.IsNaN(le) {
				return fmt.Errorf("obs: %s has a _bucket sample without le", f.Name)
			}
			s := get(sm.Labels)
			s.les = append(s.les, le)
			s.counts = append(s.counts, sm.Value)
		case strings.HasSuffix(sm.Name, "_count"):
			s := get(sm.Labels)
			s.count = sm.Value
			s.hasCnt = true
		}
	}
	for _, s := range bySig {
		idx := make([]int, len(s.les))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return s.les[idx[a]] < s.les[idx[b]] })
		prev := math.Inf(-1)
		prevCount := 0.0
		sawInf := false
		for _, i := range idx {
			if s.les[i] == prev {
				return fmt.Errorf("obs: %s has duplicate le=%v buckets", f.Name, prev)
			}
			if s.counts[i] < prevCount {
				return fmt.Errorf("obs: %s buckets are not cumulative", f.Name)
			}
			prev, prevCount = s.les[i], s.counts[i]
			sawInf = sawInf || math.IsInf(s.les[i], 1)
		}
		if !sawInf {
			return fmt.Errorf("obs: %s is missing the +Inf bucket", f.Name)
		}
		if s.hasCnt && s.count != prevCount {
			return fmt.Errorf("obs: %s _count %v != +Inf bucket %v", f.Name, s.count, prevCount)
		}
	}
	return nil
}

// FindFamily returns the family with the given name, or nil.
func FindFamily(fams []Family, name string) *Family {
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	return nil
}

// SampleValue returns the value of the sample with the given full name
// and exactly the given labels (order-insensitive), searching every
// family.
func SampleValue(fams []Family, name string, labels ...Label) (float64, bool) {
	for i := range fams {
		for _, sm := range fams[i].Samples {
			if sm.Name == name && labelsMatch(sm.Labels, labels) {
				return sm.Value, true
			}
		}
	}
	return 0, false
}

func labelsMatch(got, want []Label) bool {
	if len(got) != len(want) {
		return false
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g.Key == w.Key && g.Value == w.Value {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// HistogramQuantile estimates the q-quantile of a parsed histogram
// family's series with exactly the given (non-le) labels.
func HistogramQuantile(fams []Family, name string, q float64, labels ...Label) (float64, bool) {
	f := FindFamily(fams, name)
	if f == nil || f.Type != "histogram" {
		return 0, false
	}
	type pt struct{ le, cum float64 }
	var pts []pt
	for _, sm := range f.Samples {
		if !strings.HasSuffix(sm.Name, "_bucket") {
			continue
		}
		le := math.NaN()
		rest := make([]Label, 0, len(sm.Labels))
		for _, l := range sm.Labels {
			if l.Key == "le" {
				le, _ = parseValue(l.Value)
				continue
			}
			rest = append(rest, l)
		}
		if labelsMatch(rest, labels) && !math.IsNaN(le) {
			pts = append(pts, pt{le, sm.Value})
		}
	}
	if len(pts) == 0 {
		return 0, false
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].le < pts[b].le })
	uppers := make([]float64, len(pts))
	cum := make([]float64, len(pts))
	for i, p := range pts {
		uppers[i], cum[i] = p.le, p.cum
	}
	return BucketQuantile(q, uppers, cum), true
}

// BucketQuantile estimates the q-quantile from cumulative bucket counts
// with inclusive upper bounds (the last usually +Inf), interpolating
// linearly within the owning bucket. An estimate falling in the +Inf
// bucket returns the highest finite bound.
func BucketQuantile(q float64, uppers, cum []float64) float64 {
	if len(uppers) == 0 || len(uppers) != len(cum) {
		return 0
	}
	total := cum[len(cum)-1]
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * total
	i := sort.SearchFloat64s(cum, target)
	if i >= len(cum) {
		i = len(cum) - 1
	}
	if math.IsInf(uppers[i], 1) {
		if i == 0 {
			return 0
		}
		return uppers[i-1]
	}
	lo, prev := 0.0, 0.0
	if i > 0 {
		lo, prev = uppers[i-1], cum[i-1]
	}
	if cum[i] == prev {
		return uppers[i]
	}
	return lo + (uppers[i]-lo)*(target-prev)/(cum[i]-prev)
}
