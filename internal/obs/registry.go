// Package obs is the zero-dependency observability kit: an atomic metrics
// registry with Prometheus text-format exposition (DESIGN.md §13) and
// lightweight request tracing. The hot path is allocation-free — counters
// and gauges are single atomics, histograms are fixed-bucket atomic
// arrays — and every mutating method is nil-safe so optional
// instrumentation needs no branching at call sites.
//
// The standing contract: nothing in this package may influence response
// bytes. Metrics and traces observe the request path; they never feed
// back into it.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair attached to a metric. A metric's identity
// is its family name plus the exact ordered label list; keep call sites
// consistent.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically non-decreasing counter. The zero value is
// usable; a nil *Counter is a no-op.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n; negative deltas are ignored (counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float. The zero value is usable; a nil *Gauge is a
// no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (CAS loop; safe for concurrent adders).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with inclusive upper bounds
// (Prometheus `le` semantics). Observe is allocation-free: a binary
// search over the bounds plus three atomic ops. A nil *Histogram is a
// no-op.
type Histogram struct {
	bounds  []float64      // strictly increasing, finite
	buckets []atomic.Int64 // len(bounds)+1; the last is the +Inf overflow
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= le
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot returns the upper bounds (ending in +Inf) and the cumulative
// counts aligned with them.
func (h *Histogram) snapshot() (uppers, cum []float64) {
	uppers = make([]float64, len(h.buckets))
	cum = make([]float64, len(h.buckets))
	var run int64
	for i := range h.buckets {
		run += h.buckets[i].Load()
		cum[i] = float64(run)
		if i < len(h.bounds) {
			uppers[i] = h.bounds[i]
		} else {
			uppers[i] = math.Inf(1)
		}
	}
	return uppers, cum
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the owning bucket, the usual Prometheus histogram_quantile
// estimate. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	uppers, cum := h.snapshot()
	return BucketQuantile(q, uppers, cum)
}

// LatencyBuckets returns the default latency bucket bounds, exponential
// from 100µs to 60s. Callers may modify the returned slice.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
		1, 2.5, 5, 10, 30, 60,
	}
}

type row struct {
	labels    []Label
	counter   *Counter
	counterFn func() int64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

type family struct {
	name string
	help string
	kind metricKind
	rows []*row
	seen map[string]bool // label signature → registered
}

// Registry holds metric families and renders them in Prometheus text
// exposition format (version 0.0.4). Registration panics on invalid
// names, kind conflicts, or duplicate label sets — registration happens
// once at startup and a bad metric is a programming error. It implements
// http.Handler for mounting at /metrics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, labels, &row{counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for layers that already keep their own atomics.
// fn must be monotone non-decreasing and safe for concurrent calls.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(name, help, kindCounter, labels, &row{counterFn: fn})
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, labels, &row{gauge: g})
	return g
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, labels, &row{gaugeFn: fn})
}

// Histogram registers and returns a histogram with the given upper
// bounds, which must be finite and strictly increasing (the implicit
// +Inf bucket is added automatically).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket bound")
	}
	bs := append([]float64(nil), bounds...)
	for i, b := range bs {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("obs: histogram " + name + " has a non-finite bound")
		}
		if i > 0 && bs[i-1] >= b {
			panic("obs: histogram " + name + " bounds must be strictly increasing")
		}
	}
	h := &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
	r.register(name, help, kindHistogram, labels, &row{hist: h})
	return h
}

func (r *Registry) register(name, help string, kind metricKind, labels []Label, rw *row) {
	if !ValidMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	sig := make([]byte, 0, 64)
	for _, l := range labels {
		if !ValidLabelName(l.Key) {
			panic("obs: invalid label name " + strconv.Quote(l.Key) + " on " + name)
		}
		sig = append(sig, l.Key...)
		sig = append(sig, 1)
		sig = append(sig, l.Value...)
		sig = append(sig, 2)
	}
	rw.labels = append([]Label(nil), labels...)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, seen: make(map[string]bool)}
		r.families[name] = f
	} else if f.kind != kind {
		panic("obs: metric " + name + " re-registered as " + kind.String() + ", was " + f.kind.String())
	}
	if f.seen[string(sig)] {
		panic("obs: duplicate registration of " + name + " with identical labels")
	}
	f.seen[string(sig)] = true
	f.rows = append(f.rows, rw)
}

// WriteExposition renders every family in Prometheus text format:
// families sorted by name, each with # HELP and # TYPE lines, samples in
// registration order.
func (r *Registry) WriteExposition(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for n, f := range r.families {
		names = append(names, n)
		// Rows are append-only; copying the slice header under the lock
		// is enough for a consistent scrape.
		cp := *f
		cp.rows = append([]*row(nil), f.rows...)
		fams[n] = &cp
	}
	r.mu.Unlock()
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, n := range names {
		f := fams[n]
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", n, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", n, f.kind.String())
		for _, rw := range f.rows {
			writeRow(bw, n, f.kind, rw)
		}
	}
	return bw.Flush()
}

func writeRow(bw *bufio.Writer, name string, kind metricKind, rw *row) {
	switch kind {
	case kindCounter:
		v := rw.counter.Value()
		if rw.counterFn != nil {
			v = rw.counterFn()
		}
		writeSample(bw, name, rw.labels, nil, float64(v))
	case kindGauge:
		v := rw.gauge.Value()
		if rw.gaugeFn != nil {
			v = rw.gaugeFn()
		}
		writeSample(bw, name, rw.labels, nil, v)
	case kindHistogram:
		h := rw.hist
		uppers, cum := h.snapshot()
		for i := range uppers {
			writeSample(bw, name+"_bucket", rw.labels, &Label{Key: "le", Value: formatFloat(uppers[i])}, cum[i])
		}
		writeSample(bw, name+"_sum", rw.labels, nil, h.Sum())
		// _count must equal the +Inf bucket of the same snapshot.
		writeSample(bw, name+"_count", rw.labels, nil, cum[len(cum)-1])
	}
}

func writeSample(bw *bufio.Writer, name string, labels []Label, extra *Label, v float64) {
	bw.WriteString(name)
	if len(labels) > 0 || extra != nil {
		bw.WriteByte('{')
		first := true
		for _, l := range labels {
			if !first {
				bw.WriteByte(',')
			}
			first = false
			bw.WriteString(l.Key)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		if extra != nil {
			if !first {
				bw.WriteByte(',')
			}
			bw.WriteString(extra.Key)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(extra.Value))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ContentType is the exposition content type served by ServeHTTP.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// ServeHTTP renders the exposition — mount the registry at GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", ContentType)
	r.WriteExposition(w)
}

// ValidMetricName reports whether s is a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_' || c == ':':
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ValidLabelName reports whether s is a legal label name:
// [a-zA-Z_][a-zA-Z0-9_]*, not starting with the reserved "__".
func ValidLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_':
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
