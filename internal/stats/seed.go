package stats

import "fmt"

// Seed derivation: every experiment harness needs to turn human-readable
// labels ("GAP", a (N, ratio) sweep cell) into well-mixed 64-bit seeds that
// are stable across runs and platforms. FNV-1a is used for its simplicity
// and its good avalanche behaviour on short strings; the resulting values
// are always fed through RNG mixing before use, so hash quality only needs
// to separate labels, not survive statistical tests.

// SeedFromString derives a deterministic seed from a label using the 64-bit
// FNV-1a hash.
func SeedFromString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// SeedFromCell derives a deterministic seed from an (n, ratio) sweep-cell
// label, the coordinate pair every figure sweep is indexed by.
func SeedFromCell(n int, ratio float64) uint64 {
	return SeedFromString(fmt.Sprintf("%d|%g", n, ratio))
}

// SeedFromApp derives a deterministic seed from an application-sweep cell
// (application name, BCEC/WCEC ratio) — Fig. 6(b)'s coordinates. The ratio
// is part of the label so no two cells of an application share workload
// streams (before PR 3 the derivation keyed on the name alone, feeding every
// ratio of an app identical draws).
func SeedFromApp(app string, ratio float64) uint64 {
	return SeedFromString(fmt.Sprintf("%s|%g", app, ratio))
}
