package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %g, want 5", s.Mean())
	}
	// Sample variance of the classic dataset is 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Errorf("Var = %g, want %g", s.Var(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("range [%g, %g], want [2, 9]", s.Min(), s.Max())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.CI95() != 0 {
		t.Error("empty summary should be all zeros")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Var() != 0 {
		t.Errorf("single-sample summary: mean=%g var=%g", s.Mean(), s.Var())
	}
}

// TestSummaryMatchesDirect is a property test: the streaming moments agree
// with the two-pass formulas on random data.
func TestSummaryMatchesDirect(t *testing.T) {
	r := NewRNG(8)
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 2
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Uniform(-100, 100)
		}
		var s Summary
		s.AddAll(xs)
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		direct := ss / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Var()-direct) < 1e-6*math.Max(1, direct)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0.5, 3, 5, 9.9, 42} {
		h.Add(x)
	}
	if h.N() != 6 {
		t.Errorf("N = %d", h.N())
	}
	if h.Bins[0] != 2 { // -1 clamps into the first bin alongside 0.5
		t.Errorf("first bin = %d, want 2", h.Bins[0])
	}
	if h.Bins[4] != 2 { // 42 clamps into the last bin alongside 9.9
		t.Errorf("last bin = %d, want 2", h.Bins[4])
	}
	if s := h.ASCII(20); s == "" {
		t.Error("ASCII render is empty")
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
}

func TestHistogramMode(t *testing.T) {
	h, _ := NewHistogram(0, 10, 10)
	for i := 0; i < 5; i++ {
		h.Add(7.3)
	}
	h.Add(1)
	if m := h.Mode(); math.Abs(m-7.5) > 1e-9 {
		t.Errorf("Mode = %g, want 7.5", m)
	}
}

func TestStdHelper(t *testing.T) {
	if s := Std([]float64{1, 1, 1}); s != 0 {
		t.Errorf("Std of constants = %g", s)
	}
}
