package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", x)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(99)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(r.Float64())
	}
	if math.Abs(s.Mean()-0.5) > 0.01 {
		t.Errorf("uniform mean = %g, want ≈0.5", s.Mean())
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit only %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 1000; i++ {
		x := r.Uniform(-3, 5)
		if x < -3 || x >= 5 {
			t.Fatalf("Uniform(-3,5) = %g", x)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(11)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Normal(10, 2))
	}
	if math.Abs(s.Mean()-10) > 0.05 {
		t.Errorf("Normal mean = %g, want ≈10", s.Mean())
	}
	if math.Abs(s.Std()-2) > 0.05 {
		t.Errorf("Normal std = %g, want ≈2", s.Std())
	}
}

func TestNormalZeroSigma(t *testing.T) {
	r := NewRNG(1)
	if v := r.Normal(5, 0); v != 5 {
		t.Errorf("Normal(5, 0) = %g", v)
	}
}

func TestTruncNormalSupport(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 20000; i++ {
		x := r.TruncNormal(0.55, 0.15, 0.1, 1.0)
		if x < 0.1 || x > 1.0 {
			t.Fatalf("TruncNormal escaped support: %g", x)
		}
	}
}

// TestTruncNormalPaperParameters checks the §4 workload distribution: mean
// ACEC = (BCEC+WCEC)/2, σ = (WCEC−BCEC)/6, support [BCEC, WCEC]. With ±3σ
// support the truncation barely moves the mean.
func TestTruncNormalPaperParameters(t *testing.T) {
	r := NewRNG(17)
	bcec, wcec := 10.0, 100.0
	acec := (bcec + wcec) / 2
	sigma := (wcec - bcec) / 6
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(r.TruncNormal(acec, sigma, bcec, wcec))
	}
	if math.Abs(s.Mean()-acec) > 0.5 {
		t.Errorf("truncated mean = %g, want ≈%g", s.Mean(), acec)
	}
	if s.Min() < bcec || s.Max() > wcec {
		t.Errorf("support violated: [%g, %g]", s.Min(), s.Max())
	}
}

func TestTruncNormalDegenerate(t *testing.T) {
	r := NewRNG(1)
	if v := r.TruncNormal(5, 0, 0, 10); v != 5 {
		t.Errorf("zero-sigma draw = %g, want 5", v)
	}
	if v := r.TruncNormal(50, 3, 7, 7); v != 7 {
		t.Errorf("point-support draw = %g, want 7", v)
	}
	// Mean far outside the support must clamp, not hang.
	if v := r.TruncNormal(1e9, 1e-12, 0, 1); v < 0 || v > 1 {
		t.Errorf("far-tail draw escaped support: %g", v)
	}
}

func TestBimodalSupport(t *testing.T) {
	r := NewRNG(23)
	lo, hi := 0.0, 100.0
	nearHi := 0
	for i := 0; i < 10000; i++ {
		x := r.Bimodal(10, 90, 5, 0.1, lo, hi)
		if x < lo || x > hi {
			t.Fatalf("Bimodal escaped support: %g", x)
		}
		if x > 50 {
			nearHi++
		}
	}
	frac := float64(nearHi) / 10000
	if frac < 0.05 || frac > 0.2 {
		t.Errorf("high-mode fraction = %g, want ≈0.1", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(31)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(5)
	child := parent.Split()
	// The child stream must differ from the parent's continued stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("parent and child streams collided %d times", same)
	}
}

func TestChoiceDistribution(t *testing.T) {
	r := NewRNG(41)
	xs := []float64{1, 2, 3}
	counts := map[float64]int{}
	for i := 0; i < 9000; i++ {
		counts[r.Choice(xs)]++
	}
	for _, x := range xs {
		if counts[x] < 2500 || counts[x] > 3500 {
			t.Errorf("Choice(%g) count %d far from uniform 3000", x, counts[x])
		}
	}
}

// TestNormInvAgainstErf cross-checks the inverse-CDF sampler against the
// standard library's error function: Φ(normInv(p)) must round-trip to p.
func TestNormInvAgainstErf(t *testing.T) {
	phi := func(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }
	for _, p := range []float64{1e-12, 1e-6, 0.001, 0.02425, 0.1, 0.3, 0.5, 0.7, 0.9, 0.97575, 0.999, 1 - 1e-9} {
		z := normInv(p)
		if got := phi(z); math.Abs(got-p) > 1e-8*math.Max(p, 1-p)+1e-15 {
			t.Errorf("Φ(normInv(%g)) = %g", p, got)
		}
	}
	if !(normInv(0.5) == 0) {
		t.Errorf("normInv(0.5) = %g, want 0", normInv(0.5))
	}
	if normInv(0.001) >= 0 || normInv(0.999) <= 0 {
		t.Error("tail signs wrong")
	}
}
