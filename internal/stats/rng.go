// Package stats provides deterministic pseudo-random number generation and
// summary statistics used throughout the reproduction. All stochastic code in
// the repository draws from stats.RNG so that every experiment is reproducible
// bit-for-bit from an explicit seed.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator based on SplitMix64
// (Steele, Lea, Flood; JavaOne 2014). It is small, fast, passes BigCrush for
// the output sizes used here, and — unlike math/rand's global state — makes
// the seed an explicit part of every experiment's identity.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators constructed
// with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split returns a new generator whose stream is a deterministic function of
// the receiver's current state, then advances the receiver. It is used to
// give independent sub-streams to parallel experiment workers without
// coupling their consumption order.
func (r *RNG) Split() *RNG {
	return NewRNG(r.SplitSeed())
}

// SplitSeed advances the receiver and returns the seed Split would construct
// its child from, without allocating the child. Callers that manage their own
// RNG storage (e.g. per-worker workspaces) reseed a value-typed RNG with it
// via Reset, keeping hot loops allocation-free.
func (r *RNG) SplitSeed() uint64 {
	// Mix the child seed through one extra round so parent and child
	// streams do not overlap for any practical sequence length.
	s := r.Uint64()
	s ^= 0x9e3779b97f4a7c15
	s *= 0xbf58476d1ce4e5b9
	return s
}

// Reset reseeds the generator in place: after Reset(seed) the stream is
// identical to NewRNG(seed)'s.
func (r *RNG) Reset(seed uint64) { r.state = seed }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0; that is a
// programmer error, not a runtime condition.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be faster, but
	// modulo bias at these n (< 2^20) is below measurement noise and the
	// simple form is easier to audit.
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a draw from the Normal distribution with the given mean and
// standard deviation via the inverse CDF (Acklam's rational approximation,
// relative error < 1.2e-9 — far below simulation noise). It consumes exactly
// one uniform per draw, so the stream position stays a simple function of
// the number of calls; the central ~95% of draws need no transcendental
// functions at all, which matters because workload drawing is the hottest
// non-dispatch loop of the online simulator. sigma may be zero, in which
// case mean is returned.
func (r *RNG) Normal(mean, sigma float64) float64 {
	if sigma == 0 {
		return mean
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return mean + sigma*normInv(u)
}

// Coefficients of Acklam's inverse normal CDF approximation (central
// rational and tail rational branches).
const (
	nrmA1 = -3.969683028665376e+01
	nrmA2 = 2.209460984245205e+02
	nrmA3 = -2.759285104469687e+02
	nrmA4 = 1.383577518672690e+02
	nrmA5 = -3.066479806614716e+01
	nrmA6 = 2.506628277459239e+00
	nrmB1 = -5.447609879822406e+01
	nrmB2 = 1.615858368580409e+02
	nrmB3 = -1.556989798598866e+02
	nrmB4 = 6.680131188771972e+01
	nrmB5 = -1.328068155288572e+01
	nrmC1 = -7.784894002430293e-03
	nrmC2 = -3.223964580411365e-01
	nrmC3 = -2.400758277161838e+00
	nrmC4 = -2.549732539343734e+00
	nrmC5 = 4.374664141464968e+00
	nrmC6 = 2.938163982698783e+00
	nrmD1 = 7.784695709041462e-03
	nrmD2 = 3.224671290700398e-01
	nrmD3 = 2.445134137142996e+00
	nrmD4 = 3.754408661907416e+00
	nrmPL = 0.02425 // tail/central breakpoint
)

// normInv returns the standard normal quantile Φ⁻¹(p) for p in (0, 1).
func normInv(p float64) float64 {
	switch {
	case p < nrmPL:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((nrmC1*q+nrmC2)*q+nrmC3)*q+nrmC4)*q+nrmC5)*q + nrmC6) /
			((((nrmD1*q+nrmD2)*q+nrmD3)*q+nrmD4)*q + 1)
	case p <= 1-nrmPL:
		q := p - 0.5
		s := q * q
		return (((((nrmA1*s+nrmA2)*s+nrmA3)*s+nrmA4)*s+nrmA5)*s + nrmA6) * q /
			(((((nrmB1*s+nrmB2)*s+nrmB3)*s+nrmB4)*s+nrmB5)*s + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((nrmC1*q+nrmC2)*q+nrmC3)*q+nrmC4)*q+nrmC5)*q + nrmC6) /
			((((nrmD1*q+nrmD2)*q+nrmD3)*q+nrmD4)*q + 1)
	}
}

// TruncNormal returns a Normal(mean, sigma) draw rejected into [lo, hi].
// This is the actual-execution-cycle distribution the paper's §4 specifies:
// cycles vary between BCEC and WCEC following a normal distribution.
// Rejection sampling is exact; for the paper's parameters (the interval spans
// ±3σ) the expected number of draws is ~1.003.
func (r *RNG) TruncNormal(mean, sigma, lo, hi float64) float64 {
	if lo > hi {
		panic("stats: TruncNormal with lo > hi")
	}
	if sigma == 0 || lo == hi {
		return math.Min(hi, math.Max(lo, mean))
	}
	for i := 0; i < 1024; i++ {
		x := r.Normal(mean, sigma)
		if x >= lo && x <= hi {
			return x
		}
	}
	// The interval is so far into the tail that rejection failed 1024
	// times; clamp rather than loop forever. Reachable only with degenerate
	// parameters (mean far outside [lo, hi]).
	return math.Min(hi, math.Max(lo, mean))
}

// Bimodal returns lo-mode or hi-mode Normal draw: with probability pHi the
// draw is centred at hiMean, otherwise at loMean, both with deviation sigma,
// truncated to [lo, hi]. Used by workload ablations to model tasks that
// normally run short but occasionally long — the exact scenario the paper's
// abstract calls out.
func (r *RNG) Bimodal(loMean, hiMean, sigma, pHi, lo, hi float64) float64 {
	if r.Float64() < pHi {
		return r.TruncNormal(hiMean, sigma, lo, hi)
	}
	return r.TruncNormal(loMean, sigma, lo, hi)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Choice returns a uniformly chosen element of xs. It panics on an empty
// slice (programmer error).
func (r *RNG) Choice(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Choice of empty slice")
	}
	return xs[r.Intn(len(xs))]
}

// ChoiceInt returns a uniformly chosen element of xs.
func (r *RNG) ChoiceInt(xs []int64) int64 {
	if len(xs) == 0 {
		panic("stats: ChoiceInt of empty slice")
	}
	return xs[r.Intn(len(xs))]
}
