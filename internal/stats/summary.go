package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming summary statistics (Welford's online
// algorithm) without retaining samples. It is the unit every experiment
// reports: mean, deviation, min/max and a 95% normal-approximation
// confidence half-width.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddAll folds every observation of xs into the summary.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 for fewer than two samples).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the unbiased sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// CI95 returns the half-width of a 95% confidence interval for the mean
// under the normal approximation (1.96·σ/√n). For n < 2 it returns 0.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.Std() / math.Sqrt(float64(s.n))
}

// String renders the summary for experiment logs.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g (std=%.3g min=%.4g max=%.4g)",
		s.n, s.Mean(), s.CI95(), s.Std(), s.min, s.max)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// Std returns the unbiased sample standard deviation of xs.
func Std(xs []float64) float64 {
	var s Summary
	s.AddAll(xs)
	return s.Std()
}

// Percentile returns the p-quantile (p in [0,1]) of xs using linear
// interpolation between order statistics. It copies xs and does not mutate
// the caller's slice. Empty input returns 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	pos := p * float64(len(ys)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(ys) {
		return ys[len(ys)-1]
	}
	return ys[i]*(1-frac) + ys[i+1]*frac
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi]; observations
// outside the range are clamped into the edge bins so mass is never lost.
type Histogram struct {
	Lo, Hi float64
	Bins   []int
	n      int
}

// NewHistogram returns a histogram with bins equal-width bins over [lo, hi].
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bin, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram range [%g, %g] is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	b := int(float64(len(h.Bins)) * (x - h.Lo) / (h.Hi - h.Lo))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Bins) {
		b = len(h.Bins) - 1
	}
	h.Bins[b]++
	h.n++
}

// N returns the number of recorded observations.
func (h *Histogram) N() int { return h.n }

// Mode returns the midpoint of the most populated bin (ties resolve to the
// lowest bin). Empty histograms return the range midpoint.
func (h *Histogram) Mode() float64 {
	best, bi := -1, 0
	for i, c := range h.Bins {
		if c > best {
			best, bi = c, i
		}
	}
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + w*(float64(bi)+0.5)
}

// ASCII renders the histogram as a bar chart, one row per bin, scaled to
// width columns. It is used by cmd/experiments for terminal output.
func (h *Histogram) ASCII(width int) string {
	if width <= 0 {
		width = 40
	}
	maxc := 0
	for _, c := range h.Bins {
		if c > maxc {
			maxc = c
		}
	}
	out := ""
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	for i, c := range h.Bins {
		bar := 0
		if maxc > 0 {
			bar = c * width / maxc
		}
		out += fmt.Sprintf("[%8.3g,%8.3g) %6d ", h.Lo+w*float64(i), h.Lo+w*float64(i+1), c)
		for j := 0; j < bar; j++ {
			out += "#"
		}
		out += "\n"
	}
	return out
}
