package partition

import (
	"context"
	"testing"

	"repro/internal/grid"
	"repro/internal/task"
)

func benchSet(b *testing.B, cores int) *task.Set {
	b.Helper()
	return genSet(b, 9, 8, cores)
}

// BenchmarkPartitionSolve measures the full partitioned pipeline — FFD
// admission, parallel per-core WCS+ACS through the grid runner, two
// improvement rounds — with a fresh memo per iteration, so the measured
// sharing is intra-solve (move evaluations re-hitting per-core solves).
func BenchmarkPartitionSolve(b *testing.B) {
	set := benchSet(b, 4)
	cfg := Config{Cores: 4, Moves: 2, Solver: solverCfg()}
	for i := 0; i < b.N; i++ {
		if _, err := Solve(context.Background(), grid.New(0, grid.NewMemo()), set, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionSolveNoCache is the same pipeline with memoization
// disabled — the denominator of the BENCH_partition.json sharing claim.
func BenchmarkPartitionSolveNoCache(b *testing.B) {
	set := benchSet(b, 4)
	cfg := Config{Cores: 4, Moves: 2, Solver: solverCfg()}
	for i := 0; i < b.N; i++ {
		if _, err := Solve(context.Background(), grid.New(0, nil), set, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionRepartition measures the memo-reuse contract end to
// end: each iteration re-solves an assignment that differs from the warmed
// one on exactly one core, so only that core's WCS+ACS run — the cost a
// running service pays when one core's membership changes.
func BenchmarkPartitionRepartition(b *testing.B) {
	set := benchSet(b, 4)
	cfg := Config{Cores: 4, Solver: solverCfg()}
	r := grid.New(0, grid.NewMemo())
	res, err := Solve(context.Background(), r, set, cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Move one task between the two least-loaded cores to build the
	// "changed" assignment; fall back to the warmed one if infeasible.
	alt := res.Assignment.Clone()
	moved := false
	for from := range alt {
		if moved || len(alt[from]) < 2 {
			continue
		}
		for to := range alt {
			if to == from || moved {
				continue
			}
			cand := alt.Clone()
			t := cand[from][len(cand[from])-1]
			cand[from] = without(cand[from], t)
			cand[to] = with(cand[to], t)
			if _, err := SolveAssignment(context.Background(), r, set, cand, cfg); err == nil {
				alt = cand
				moved = true
			}
		}
	}
	assignments := []Assignment{res.Assignment, alt}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveAssignment(context.Background(), r, set, assignments[i%2], cfg); err != nil {
			b.Fatal(err)
		}
	}
}
