package partition

import (
	"bytes"
	"context"
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

// genSet draws a deterministic feasible M-core set. The period pool is
// coarser than the paper default (fewer instances per hyper-period) so the
// suite's many solves stay cheap.
func genSet(t testing.TB, seed uint64, n, cores int) *task.Set {
	t.Helper()
	rng := stats.NewRNG(seed)
	cfg := workload.RandomConfig{
		N: n, Ratio: 0.5, Utilization: 0.7, Cores: cores,
		Periods: []int64{25, 50, 100, 200},
	}
	set, err := workload.RandomFeasible(rng, cfg, 100, func(s *task.Set) bool {
		_, err := Admit(s, Config{Cores: cores})
		return err == nil
	})
	if err != nil {
		t.Fatalf("genSet(seed=%d, n=%d, cores=%d): %v", seed, n, cores, err)
	}
	return set
}

// solverCfg bounds sweeps well below the production default: every test
// here compares solver outputs against each other (identity, determinism,
// solve counts), so convergence depth is irrelevant — only that both sides
// run the identical config.
func solverCfg() core.Config {
	return core.Config{Objective: core.AverageCase, Starts: 1, MaxSweeps: 16}
}

// TestPartitionM1ByteIdentity pins the M=1 degeneration property: the
// partitioned path with one core must reproduce the single-core solver
// output exactly — same grid fingerprints, same encoded schedule bytes —
// across a spread of random sets. The partitioner must be a pure lift, not
// a reimplementation.
func TestPartitionM1ByteIdentity(t *testing.T) {
	r := grid.New(4, grid.NewMemo())
	for seed := uint64(1); seed <= 6; seed++ {
		set := genSet(t, seed, 5, 1)
		res, err := Solve(context.Background(), r, set, Config{Cores: 1, Solver: solverCfg()})
		if err != nil {
			t.Fatalf("seed %d: Solve: %v", seed, err)
		}
		if len(res.Cores) != 1 || res.Cores[0].Set == nil {
			t.Fatalf("seed %d: want 1 populated core, got %+v", seed, res.Assignment)
		}

		// Direct single-core reference, bypassing partition entirely.
		direct := grid.New(4, grid.NewMemo())
		wcsCfg := solverCfg()
		wcsCfg.Objective = core.WorstCase
		wcs, err := direct.BuildSchedule(set, wcsCfg)
		if err != nil {
			t.Fatalf("seed %d: direct wcs: %v", seed, err)
		}
		acsCfg := solverCfg()
		acsCfg.WarmStart = wcs
		acs, err := direct.BuildSchedule(set, acsCfg)
		if err != nil {
			t.Fatalf("seed %d: direct acs: %v", seed, err)
		}

		key, ok := grid.ScheduleKey(set, acsCfg)
		if !ok {
			t.Fatalf("seed %d: config not encodable", seed)
		}
		if res.Cores[0].Key != key.String() {
			t.Errorf("seed %d: core fingerprint %s != direct %s", seed, res.Cores[0].Key, key)
		}
		gotBytes, err := core.EncodeSchedule(res.Cores[0].ACS)
		if err != nil {
			t.Fatalf("seed %d: encode partitioned: %v", seed, err)
		}
		wantBytes, err := core.EncodeSchedule(acs)
		if err != nil {
			t.Fatalf("seed %d: encode direct: %v", seed, err)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Errorf("seed %d: partitioned M=1 schedule bytes differ from direct solve", seed)
		}
		if res.Energy != acs.Energy {
			t.Errorf("seed %d: global energy %g != direct ACS energy %g", seed, res.Energy, acs.Energy)
		}
	}
}

// TestPartitionSolveSharing pins the memo-reuse contract (the analogue of
// the grid suite's TestCrossHarnessSolveSharing): solving an assignment
// costs one WCS + one ACS miss per non-empty core, and repartitioning that
// changes a single core's subset re-solves only that core.
func TestPartitionSolveSharing(t *testing.T) {
	memo := grid.NewMemo()
	r := grid.New(4, memo)
	set := genSet(t, 3, 6, 3)
	cfg := Config{Cores: 3, Solver: solverCfg()}

	res, err := Solve(context.Background(), r, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := memo.Stats().ScheduleMisses
	occupied := 0
	for _, cs := range res.Cores {
		if cs.Set != nil {
			occupied++
		}
	}
	if base != int64(2*occupied) {
		t.Fatalf("initial solve: %d schedule misses, want %d (WCS+ACS per occupied core)", base, 2*occupied)
	}

	// Re-solving the identical assignment must be all memo hits.
	if _, err := SolveAssignment(context.Background(), r, set, res.Assignment, cfg); err != nil {
		t.Fatal(err)
	}
	if got := memo.Stats().ScheduleMisses; got != base {
		t.Fatalf("identical re-solve: misses %d → %d, want no new solves", base, got)
	}

	// Repartition that changes exactly one core: add one small task to the
	// least-loaded core. Every other core's subset is content-identical
	// (same tasks, same parameters), so only the touched core re-solves:
	// +2 misses (its WCS and ACS), everything else memo hits.
	model := power.DefaultModel()
	tcMax := model.CycleTime(model.VMax())
	extra := task.Task{Name: "XTRA", Period: 200, Ceff: 1}
	extra.WCEC = 0.05 * float64(extra.Period) / tcMax
	extra.BCEC = 0.5 * extra.WCEC
	extra.ACEC = 0.75 * extra.WCEC
	set2, err := task.NewSet(append(append([]task.Task(nil), set.Tasks...), extra))
	if err != nil {
		t.Fatal(err)
	}
	indexOf := make(map[string]int, set2.N())
	for i := range set2.Tasks {
		indexOf[set2.Tasks[i].Name] = i
	}
	target, targetU := 0, math.Inf(1)
	for c, idxs := range res.Assignment {
		u := 0.0
		for _, ti := range idxs {
			u += utilization(&set.Tasks[ti], tcMax)
		}
		if u < targetU {
			target, targetU = c, u
		}
	}
	asg2 := make(Assignment, len(res.Assignment))
	for c, idxs := range res.Assignment {
		for _, ti := range idxs {
			asg2[c] = append(asg2[c], indexOf[set.Tasks[ti].Name])
		}
	}
	asg2[target] = append(asg2[target], indexOf["XTRA"])
	for c := range asg2 {
		sort.Ints(asg2[c])
	}
	if _, err := SolveAssignment(context.Background(), r, set2, asg2, cfg); err != nil {
		t.Fatal(err)
	}
	if got, want := memo.Stats().ScheduleMisses, base+2; got != want {
		t.Fatalf("one-core repartition: misses %d, want %d (only the touched core re-solves)", got, want)
	}
}

// TestPartitionMoveDeterminism pins the standing determinism contract for
// the improvement loop: identical assignments, energies, accepted-move
// counts, and encoded schedules for any worker count, cache on or off.
func TestPartitionMoveDeterminism(t *testing.T) {
	set := genSet(t, 7, 6, 2)
	cfg := Config{Cores: 2, Mode: WorstFit, Moves: 2, Candidates: 6, Solver: solverCfg()}

	type outcome struct {
		asg      Assignment
		energy   float64
		accepted int
		encoded  [][]byte
	}
	run := func(workers int, cached bool) outcome {
		var memo *grid.Memo
		if cached {
			memo = grid.NewMemo()
		}
		r := grid.New(workers, memo)
		res, err := Solve(context.Background(), r, set, cfg)
		if err != nil {
			t.Fatalf("workers=%d cached=%v: %v", workers, cached, err)
		}
		out := outcome{asg: res.Assignment, energy: res.Energy, accepted: res.AcceptedMoves}
		for _, cs := range res.Cores {
			if cs.Set == nil {
				out.encoded = append(out.encoded, nil)
				continue
			}
			enc, err := core.EncodeSchedule(cs.Schedule())
			if err != nil {
				t.Fatal(err)
			}
			out.encoded = append(out.encoded, enc)
		}
		return out
	}

	ref := run(1, false)
	for _, workers := range []int{1, 2, 8} {
		for _, cached := range []bool{false, true} {
			got := run(workers, cached)
			if got.energy != ref.energy || got.accepted != ref.accepted {
				t.Fatalf("workers=%d cached=%v: (energy, moves) = (%g, %d), ref (%g, %d)",
					workers, cached, got.energy, got.accepted, ref.energy, ref.accepted)
			}
			for c := range ref.asg {
				if len(got.asg[c]) != len(ref.asg[c]) {
					t.Fatalf("workers=%d cached=%v: core %d assignment diverged", workers, cached, c)
				}
				for j := range ref.asg[c] {
					if got.asg[c][j] != ref.asg[c][j] {
						t.Fatalf("workers=%d cached=%v: core %d assignment diverged", workers, cached, c)
					}
				}
				if !bytes.Equal(got.encoded[c], ref.encoded[c]) {
					t.Fatalf("workers=%d cached=%v: core %d schedule bytes diverged", workers, cached, c)
				}
			}
		}
	}
}

// TestPartitionDegradeOnlyAffectedCore pins the degraded contract: a single
// core's expired ACS budget degrades that core — and only that core — to
// its WCS schedule; the others keep their full ACS solves.
func TestPartitionDegradeOnlyAffectedCore(t *testing.T) {
	r := grid.New(4, nil) // no memo: a cached ACS would dodge the budget
	set := genSet(t, 5, 6, 2)
	cfg := Config{Cores: 2, Solver: solverCfg()}
	cfg.budgetFor = func(coreIdx int) time.Duration {
		if coreIdx == 1 {
			return time.Nanosecond // expires before the first sweep, deterministically
		}
		return 0
	}
	res, err := Solve(context.Background(), r, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 2 || res.Cores[0].Set == nil || res.Cores[1].Set == nil {
		t.Fatalf("want both cores occupied, got %v", res.Assignment)
	}
	if res.Cores[0].Degraded || res.Cores[0].ACS == nil {
		t.Errorf("core 0 (unbudgeted) must serve full ACS: degraded=%v acs=%v",
			res.Cores[0].Degraded, res.Cores[0].ACS != nil)
	}
	if !res.Cores[1].Degraded || res.Cores[1].ACS != nil || res.Cores[1].WCS == nil {
		t.Errorf("core 1 (1ns budget) must degrade to WCS: degraded=%v acs=%v wcs=%v",
			res.Cores[1].Degraded, res.Cores[1].ACS != nil, res.Cores[1].WCS != nil)
	}
	if !res.Degraded() {
		t.Error("Result.Degraded() must report the degraded core")
	}
	// The degraded core contributes its WCS energy to the global objective.
	want := res.Cores[0].ACS.Energy + res.Cores[1].WCS.Energy
	if res.Energy != want {
		t.Errorf("global energy %g, want ACS₀+WCS₁ = %g", res.Energy, want)
	}
}

// TestPartitionAdmit covers the packing layer: FFD vs worst-fit shapes,
// validation, and failure when the set cannot fit.
func TestPartitionAdmit(t *testing.T) {
	set := genSet(t, 11, 7, 2)
	for _, mode := range []Mode{FirstFitDecreasing, WorstFit} {
		asg, err := Admit(set, Config{Cores: 2, Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := asg.Validate(set.N()); err != nil {
			t.Fatalf("%v: invalid assignment: %v", mode, err)
		}
	}
	// Worst-fit must never leave a core empty while another holds 2+ tasks
	// (it always prefers the emptiest feasible core).
	asg, err := Admit(set, Config{Cores: 2, Mode: WorstFit})
	if err != nil {
		t.Fatal(err)
	}
	if len(asg[0]) == 0 || len(asg[1]) == 0 {
		t.Errorf("worst-fit left a core empty: %v", asg)
	}
	// A 2-core set squeezed onto 1 core must fail admission.
	if _, err := Admit(set, Config{Cores: 1}); err == nil {
		t.Error("2-core-utilisation set admitted onto 1 core")
	}
	if _, err := Admit(set, Config{Cores: 0}); err == nil {
		t.Error("Cores=0 accepted")
	}
}

// TestPartitionFingerprint pins what the partition fingerprint does and
// does not depend on.
func TestPartitionFingerprint(t *testing.T) {
	set := genSet(t, 2, 6, 2)
	base := Config{Cores: 2, Solver: solverCfg()}
	fp := func(c Config) string {
		s, ok := Fingerprint(set, c)
		if !ok {
			t.Fatal("config not encodable")
		}
		return s
	}
	ref := fp(base)

	budgeted := base
	budgeted.ACSBudget = time.Second
	if fp(budgeted) != ref {
		t.Error("ACSBudget (load policy) must not change the fingerprint")
	}
	twoMore := base
	twoMore.Cores = 3
	if fp(twoMore) == ref {
		t.Error("core count must change the fingerprint")
	}
	wf := base
	wf.Mode = WorstFit
	if fp(wf) == ref {
		t.Error("packing mode must change the fingerprint")
	}
	// Dormant move knobs (Moves == 0) must not leak into the fingerprint.
	seeded := base
	seeded.MoveSeed = 99
	seeded.Candidates = 7
	if fp(seeded) != ref {
		t.Error("MoveSeed/Candidates with Moves=0 must be dormant")
	}
	moving := base
	moving.Moves = 2
	if fp(moving) == ref {
		t.Error("Moves must change the fingerprint")
	}
}
