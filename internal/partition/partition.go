// Package partition lifts the paper's single-processor ACS/WCS synthesis to
// an M-core partitioned system. Tasks are statically bin-packed onto
// identical cores under the solver's own exact schedulability test
// (core.Feasible — the all-Vmax ASAP chain), each core's subset is then an
// ordinary single-processor problem solved through the grid runner (WCS,
// then ACS warm-started from it), and the global objective is the sum of
// per-core predicted energies. Because every core's subset is
// content-addressed by the same grid key a direct solve would use,
// repartitions that leave a core's assignment untouched hit the memo and
// re-solve nothing.
//
// Everything here is deterministic for any grid worker count and cache
// state: admission is a pure function of the task set and config, the
// per-core fan-out is index-addressed, and the cross-core improvement loop
// samples candidate moves from a seeded RNG and accepts by (energy, index)
// order — never by completion order.
package partition

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/task"
)

// Mode selects the bin-packing heuristic.
type Mode int

const (
	// FirstFitDecreasing packs each task (in decreasing-utilisation order)
	// onto the lowest-indexed core that can still schedule it — the classic
	// FFD bound, and the densest packing of the two.
	FirstFitDecreasing Mode = iota
	// WorstFit packs each task onto the least-utilised core that can still
	// schedule it — the balance-seeking mode, which spreads slack evenly
	// and tends to leave every core more room to slow down.
	WorstFit
)

func (m Mode) String() string {
	switch m {
	case FirstFitDecreasing:
		return "ffd"
	case WorstFit:
		return "worstfit"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode parses the CLI spelling of a packing mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "ffd":
		return FirstFitDecreasing, nil
	case "worstfit":
		return WorstFit, nil
	default:
		return 0, fmt.Errorf("partition: unknown mode %q (want ffd or worstfit)", s)
	}
}

// Config tunes the partitioner and the per-core solves.
type Config struct {
	// Cores is the number of identical cores (required, >= 1).
	Cores int
	// Mode selects the packing heuristic (default FirstFitDecreasing).
	Mode Mode
	// Moves bounds the cross-core improvement rounds: each round evaluates
	// a deterministic candidate set of task migrations and pairwise swaps
	// against the global energy objective and greedily applies the best
	// strictly-improving one. 0 disables the loop.
	Moves int
	// MoveSeed seeds the per-round candidate sampling (default 2005).
	MoveSeed uint64
	// Candidates bounds the moves evaluated per round; when the full
	// enumeration is larger, a seeded sample of this size is drawn
	// (default 24). Negative means evaluate every candidate.
	Candidates int
	// Solver is the per-core solver configuration. Its Objective selects
	// what each core serves: AverageCase runs WCS then warm-started ACS per
	// core, WorstCase runs WCS only. WarmStart must be nil (the driver
	// manages warm starts itself).
	Solver core.Config
	// ACSBudget, when positive, bounds each core's ACS refinement. A core
	// whose budget expires degrades to its WCS schedule (always built
	// first, never budgeted) rather than failing the solve; Result and the
	// affected CoreSolve report Degraded. The budget is a load-shedding
	// policy, not problem content — Fingerprint excludes it.
	ACSBudget time.Duration

	// budgetFor, when non-nil, overrides ACSBudget per core index — a test
	// hook for exercising single-core degradation deterministically.
	budgetFor func(coreIdx int) time.Duration
}

func (c Config) withDefaults() Config {
	out := c
	if out.MoveSeed == 0 {
		out.MoveSeed = 2005
	}
	if out.Candidates == 0 {
		out.Candidates = 24
	}
	return out
}

// Assignment maps each core to the sorted original indices (into
// set.Tasks) of the tasks placed on it. It is a partition: every task index
// appears on exactly one core; cores may be empty.
type Assignment [][]int

// Clone deep-copies the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for i, idxs := range a {
		out[i] = append([]int(nil), idxs...)
	}
	return out
}

// Validate checks that a is a partition of [0, n) with each core's list
// sorted ascending.
func (a Assignment) Validate(n int) error {
	seen := make([]bool, n)
	total := 0
	for c, idxs := range a {
		for j, t := range idxs {
			if t < 0 || t >= n {
				return fmt.Errorf("partition: core %d holds out-of-range task index %d", c, t)
			}
			if j > 0 && idxs[j-1] >= t {
				return fmt.Errorf("partition: core %d task list not sorted ascending", c)
			}
			if seen[t] {
				return fmt.Errorf("partition: task index %d assigned twice", t)
			}
			seen[t] = true
			total++
		}
	}
	if total != n {
		return fmt.Errorf("partition: %d of %d tasks assigned", total, n)
	}
	return nil
}

// homes returns the core index of every task.
func (a Assignment) homes(n int) []int {
	home := make([]int, n)
	for c, idxs := range a {
		for _, t := range idxs {
			home[t] = c
		}
	}
	return home
}

// CoreSolve is one core's solved sub-problem.
type CoreSolve struct {
	// Core is the core index.
	Core int
	// TaskIdx are the original set indices assigned to this core (sorted).
	TaskIdx []int
	// Set is the core's task subset (nil when the core is empty).
	Set *task.Set
	// WCS is the core's worst-case schedule (nil when the core is empty).
	WCS *core.Schedule
	// ACS is the warm-started average-case schedule; nil for the WorstCase
	// objective, for empty cores, and when the core degraded.
	ACS *core.Schedule
	// Key is the grid content address of the schedule the core serves —
	// identical to the fingerprint a direct single-core submit of the same
	// subset and config would get.
	Key string
	// Degraded reports that the core's ACS budget expired and WCS is
	// served in its place.
	Degraded bool
}

// Schedule returns the schedule the core serves: ACS when present,
// otherwise WCS; nil for an empty core.
func (cs *CoreSolve) Schedule() *core.Schedule {
	if cs.ACS != nil {
		return cs.ACS
	}
	return cs.WCS
}

// Energy returns the served schedule's predicted energy (0 for an empty
// core).
func (cs *CoreSolve) Energy() float64 {
	if s := cs.Schedule(); s != nil {
		return s.Energy
	}
	return 0
}

// WCSAtAverage evaluates the core's WCS schedule under the average
// workload trajectory — the per-core WCS-at-average baseline the global
// improvement figures are measured against. Returns 0 for an empty core.
func (cs *CoreSolve) WCSAtAverage() (float64, error) {
	if cs.WCS == nil {
		return 0, nil
	}
	avg := make([]float64, len(cs.WCS.Plan.Instances))
	for i := range avg {
		avg[i] = cs.WCS.Plan.Set.Tasks[cs.WCS.Plan.Instances[i].TaskIndex].ACEC
	}
	e, _, err := cs.WCS.EnergyUnder(avg)
	return e, err
}

// Result is a solved partitioned system.
type Result struct {
	// Assignment is the final task→core mapping (after any accepted
	// moves).
	Assignment Assignment
	// Cores holds one solved sub-problem per core, in core-index order.
	Cores []CoreSolve
	// Energy is the global objective: the sum of per-core predicted
	// energies in core-index order.
	Energy float64
	// AcceptedMoves counts improvement-loop moves applied.
	AcceptedMoves int
	// Rollbacks counts admission retries forced by a core's WCS build
	// reporting infeasibility.
	Rollbacks int
}

// Degraded reports whether any core degraded to its WCS schedule.
func (r *Result) Degraded() bool {
	for i := range r.Cores {
		if r.Cores[i].Degraded {
			return true
		}
	}
	return false
}

// subSet builds the task subset for one core. Tasks keep their names, so
// the subset's content (and grid key) is a pure function of which tasks are
// on the core.
func subSet(set *task.Set, idxs []int) (*task.Set, error) {
	tasks := make([]task.Task, len(idxs))
	for i, t := range idxs {
		tasks[i] = set.Tasks[t]
	}
	return task.NewSet(tasks)
}

// utilization is the task's worst-case utilisation at maximum speed.
func utilization(t *task.Task, tcMax float64) float64 {
	return t.WCEC * tcMax / float64(t.Period)
}

// Admit bin-packs set onto cfg.Cores cores under the exact per-core
// schedulability test. The packing is a pure function of (set, cfg): tasks
// are placed in decreasing-utilisation order (ties by original index), each
// onto the first core — in cfg.Mode's preference order — whose subset stays
// feasible. It fails if some task fits no core.
func Admit(set *task.Set, cfg Config) (Assignment, error) {
	asg, _, err := admit(set, cfg.withDefaults(), nil)
	return asg, err
}

// admit is Admit plus the placement order (for rollback) and a banned
// (task, core) placement set the rollback loop grows.
func admit(set *task.Set, c Config, banned map[[2]int]bool) (Assignment, [][2]int, error) {
	if c.Cores < 1 {
		return nil, nil, fmt.Errorf("partition: core count must be >= 1, got %d", c.Cores)
	}
	solver := c.Solver.Canonical()
	tcMax := solver.Model.CycleTime(solver.Model.VMax())
	n := set.N()

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ua := utilization(&set.Tasks[order[a]], tcMax)
		ub := utilization(&set.Tasks[order[b]], tcMax)
		if ua != ub {
			return ua > ub
		}
		return order[a] < order[b]
	})

	asg := make(Assignment, c.Cores)
	for i := range asg {
		asg[i] = []int{}
	}
	util := make([]float64, c.Cores)
	placed := make([][2]int, 0, n)

	fits := func(coreIdx, t int) bool {
		if banned[[2]int{t, coreIdx}] {
			return false
		}
		if util[coreIdx]+utilization(&set.Tasks[t], tcMax) > 1+1e-9 {
			return false
		}
		grown := append(append([]int(nil), asg[coreIdx]...), t)
		sort.Ints(grown)
		sub, err := subSet(set, grown)
		if err != nil {
			return false
		}
		return core.Feasible(sub, c.Solver) == nil
	}

	for _, t := range order {
		cands := make([]int, c.Cores)
		for i := range cands {
			cands[i] = i
		}
		if c.Mode == WorstFit {
			sort.SliceStable(cands, func(a, b int) bool {
				if util[cands[a]] != util[cands[b]] {
					return util[cands[a]] < util[cands[b]]
				}
				return cands[a] < cands[b]
			})
		}
		placedOn := -1
		for _, coreIdx := range cands {
			if fits(coreIdx, t) {
				placedOn = coreIdx
				break
			}
		}
		if placedOn < 0 {
			return nil, nil, fmt.Errorf(
				"partition: admission failed — task %q (u=%.3f) fits no core (%d cores, mode %s)",
				set.Tasks[t].Name, utilization(&set.Tasks[t], tcMax), c.Cores, c.Mode)
		}
		asg[placedOn] = append(asg[placedOn], t)
		sort.Ints(asg[placedOn])
		util[placedOn] += utilization(&set.Tasks[t], tcMax)
		placed = append(placed, [2]int{t, placedOn})
	}
	return asg, placed, nil
}

// coreOut separates a core solve's three outcomes: solved, infeasible on
// this core (→ admission rollback), or a hard failure (cancellation, model
// errors) that aborts the whole solve.
type coreOut struct {
	cs         CoreSolve
	infeasible error
	fatal      error
}

// solveCore solves one core's subset: WCS (never budgeted — it is the
// degraded-mode floor), then ACS warm-started from WCS under the core's
// budget when the objective is AverageCase.
func solveCore(ctx context.Context, r *grid.Runner, set *task.Set, idxs []int, coreIdx int, c Config) coreOut {
	cs := CoreSolve{Core: coreIdx, TaskIdx: append([]int(nil), idxs...)}
	if len(idxs) == 0 {
		return coreOut{cs: cs}
	}
	sub, err := subSet(set, idxs)
	if err != nil {
		return coreOut{fatal: fmt.Errorf("partition: core %d subset: %w", coreIdx, err)}
	}
	cs.Set = sub

	wcsCfg := c.Solver
	wcsCfg.Objective = core.WorstCase
	wcsCfg.WarmStart = nil
	wcsDone := obs.StartSpan(ctx, "solve_wcs")
	wcs, err := r.BuildScheduleContext(ctx, sub, wcsCfg)
	wcsDone()
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return coreOut{fatal: err}
		}
		return coreOut{infeasible: fmt.Errorf("core %d: %w", coreIdx, err)}
	}
	cs.WCS = wcs
	servedCfg := wcsCfg

	if c.Solver.Objective == core.AverageCase {
		budget := c.ACSBudget
		if c.budgetFor != nil {
			budget = c.budgetFor(coreIdx)
		}
		acsCtx, cancel := ctx, context.CancelFunc(nil)
		if budget > 0 {
			acsCtx, cancel = context.WithTimeout(ctx, budget)
		}
		acsCfg := c.Solver
		acsCfg.Objective = core.AverageCase
		acsCfg.WarmStart = wcs
		acsDone := obs.StartSpan(acsCtx, "solve_acs")
		acs, err := r.BuildScheduleContext(acsCtx, sub, acsCfg)
		acsDone()
		if cancel != nil {
			cancel()
		}
		switch {
		case err == nil:
			cs.ACS = acs
			servedCfg = acsCfg
		case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
			// This core's budget expired while the request is still live:
			// serve its WCS schedule, marked degraded.
			cs.Degraded = true
		default:
			return coreOut{fatal: err}
		}
	}

	if key, ok := grid.ScheduleKey(sub, servedCfg); ok {
		cs.Key = key.String()
	}
	return coreOut{cs: cs}
}

// solveCores fans the per-core solves across the grid runner and folds the
// results in core-index order. badCore >= 0 names the lowest-indexed core
// whose WCS build reported infeasibility (the rollback trigger).
func solveCores(ctx context.Context, r *grid.Runner, set *task.Set, asg Assignment, c Config) (cores []CoreSolve, badCore int, err error) {
	outs := grid.Collect(r, len(asg), func(i int) coreOut {
		return solveCore(ctx, r, set, asg[i], i, c)
	})
	cores = make([]CoreSolve, len(outs))
	badCore = -1
	for i, o := range outs {
		if o.fatal != nil {
			return nil, -1, o.fatal
		}
		if o.infeasible != nil && badCore < 0 {
			badCore = i
		}
		cores[i] = o.cs
	}
	return cores, badCore, nil
}

// totalEnergy sums per-core energies in core-index order — the global
// objective, and (summation order fixed) a deterministic float.
func totalEnergy(cores []CoreSolve) float64 {
	sum := 0.0
	for i := range cores {
		sum += cores[i].Energy()
	}
	return sum
}

// SolveAssignment solves an explicit assignment (no admission, no
// improvement loop): per-core WCS + warm-started ACS through the runner,
// global energy as the sum. A core whose WCS is infeasible is an error
// here — rollback is Solve's job.
func SolveAssignment(ctx context.Context, r *grid.Runner, set *task.Set, asg Assignment, cfg Config) (*Result, error) {
	c := cfg.withDefaults()
	if len(asg) == 0 {
		return nil, fmt.Errorf("partition: empty assignment")
	}
	if err := asg.Validate(set.N()); err != nil {
		return nil, err
	}
	cores, badCore, err := solveCores(ctx, r, set, asg, c)
	if err != nil {
		return nil, err
	}
	if badCore >= 0 {
		return nil, fmt.Errorf("partition: core %d assignment is not schedulable", badCore)
	}
	return &Result{
		Assignment: asg.Clone(),
		Cores:      cores,
		Energy:     totalEnergy(cores),
	}, nil
}

// Solve partitions set onto cfg.Cores cores and solves every core: admit →
// parallel per-core WCS/ACS → (optionally) the cross-core improvement
// loop. When a core's WCS build reports infeasibility despite passing the
// admission test's schedulability check (split caps and expansion limits
// can diverge), the most recent placement on that core is banned and the
// packing retried — the rollback rule.
func Solve(ctx context.Context, r *grid.Runner, set *task.Set, cfg Config) (*Result, error) {
	c := cfg.withDefaults()
	if c.Solver.WarmStart != nil {
		return nil, fmt.Errorf("partition: Solver.WarmStart must be nil (the driver manages warm starts)")
	}
	banned := make(map[[2]int]bool)
	rollbacks := 0
	maxRollbacks := set.N() * c.Cores
	for {
		asg, placed, err := admit(set, c, banned)
		if err != nil {
			return nil, err
		}
		cores, badCore, err := solveCores(ctx, r, set, asg, c)
		if err != nil {
			return nil, err
		}
		if badCore >= 0 {
			last := [2]int{-1, badCore}
			for i := len(placed) - 1; i >= 0; i-- {
				if placed[i][1] == badCore {
					last = [2]int{placed[i][0], badCore}
					break
				}
			}
			if last[0] < 0 || banned[last] {
				return nil, fmt.Errorf("partition: core %d unschedulable with no placement left to roll back", badCore)
			}
			banned[last] = true
			rollbacks++
			if rollbacks > maxRollbacks {
				return nil, fmt.Errorf("partition: admission failed after %d rollbacks", rollbacks)
			}
			continue
		}
		res := &Result{
			Assignment: asg,
			Cores:      cores,
			Energy:     totalEnergy(cores),
			Rollbacks:  rollbacks,
		}
		if c.Moves > 0 && c.Cores > 1 && !res.Degraded() {
			if err := improve(ctx, r, set, c, res); err != nil {
				return nil, err
			}
		}
		return res, nil
	}
}

// move is one improvement-loop candidate: a migration of task t from core
// `from` to core `to`, or (swap) an exchange of t@from with u@to.
type move struct {
	swap     bool
	t, u     int
	from, to int
}

// enumerateMoves lists every candidate in a fixed deterministic order:
// migrations by (task, destination core), then swaps by (t, u) pairs.
func enumerateMoves(asg Assignment, home []int) []move {
	var out []move
	n := len(home)
	for t := 0; t < n; t++ {
		for c := 0; c < len(asg); c++ {
			if c == home[t] {
				continue
			}
			out = append(out, move{t: t, from: home[t], to: c})
		}
	}
	for t := 0; t < n; t++ {
		for u := t + 1; u < n; u++ {
			if home[t] == home[u] {
				continue
			}
			out = append(out, move{swap: true, t: t, u: u, from: home[t], to: home[u]})
		}
	}
	return out
}

// sampleMoves draws k candidates without replacement from the seeded RNG
// and returns them in enumeration order, so the evaluated set — like
// everything else — is independent of worker count.
func sampleMoves(cands []move, k int, rng *stats.RNG) []move {
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	sel := append([]int(nil), idx[:k]...)
	sort.Ints(sel)
	out := make([]move, k)
	for i, j := range sel {
		out[i] = cands[j]
	}
	return out
}

// moveEval is one candidate's outcome: the re-solved source and destination
// cores and the candidate global energy (delta-composed so every candidate
// is costed with identical arithmetic).
type moveEval struct {
	ok   bool
	e    float64
	a, b CoreSolve
}

// without returns idxs minus t; with returns idxs plus t, sorted.
func without(idxs []int, t int) []int {
	out := make([]int, 0, len(idxs))
	for _, x := range idxs {
		if x != t {
			out = append(out, x)
		}
	}
	return out
}

func with(idxs []int, t int) []int {
	out := append(append([]int(nil), idxs...), t)
	sort.Ints(out)
	return out
}

// evalMove re-solves the two cores a candidate touches. Growing cores are
// feasibility-checked first so infeasible candidates cost one exact check,
// not a full solve. Any failure marks the candidate invalid (ok=false);
// cancellation surfaces through ctx at the fold.
func evalMove(ctx context.Context, r *grid.Runner, set *task.Set, c Config, res *Result, mv move) moveEval {
	var aIdx, bIdx []int
	if mv.swap {
		aIdx = with(without(res.Assignment[mv.from], mv.t), mv.u)
		bIdx = with(without(res.Assignment[mv.to], mv.u), mv.t)
	} else {
		aIdx = without(res.Assignment[mv.from], mv.t)
		bIdx = with(res.Assignment[mv.to], mv.t)
	}
	grown := [][]int{bIdx}
	if mv.swap {
		grown = append(grown, aIdx)
	}
	for _, g := range grown {
		sub, err := subSet(set, g)
		if err != nil || core.Feasible(sub, c.Solver) != nil {
			return moveEval{}
		}
	}
	ra := solveCore(ctx, r, set, aIdx, mv.from, c)
	rb := solveCore(ctx, r, set, bIdx, mv.to, c)
	if ra.fatal != nil || ra.infeasible != nil || rb.fatal != nil || rb.infeasible != nil {
		return moveEval{}
	}
	e := res.Energy - res.Cores[mv.from].Energy() - res.Cores[mv.to].Energy() +
		ra.cs.Energy() + rb.cs.Energy()
	return moveEval{ok: true, e: e, a: ra.cs, b: rb.cs}
}

// improve runs the cross-core improvement loop: up to c.Moves rounds, each
// evaluating a seeded candidate set in parallel and greedily applying the
// best strictly-improving move (ties break to the lowest enumeration
// index). The loop never runs budgeted — it is offline refinement — so
// candidate evaluation clears the ACS budget.
func improve(ctx context.Context, r *grid.Runner, set *task.Set, c Config, res *Result) error {
	home := res.Assignment.homes(set.N())
	cEval := c
	cEval.ACSBudget = 0
	cEval.budgetFor = nil
	for round := 0; round < c.Moves; round++ {
		cands := enumerateMoves(res.Assignment, home)
		if c.Candidates > 0 && len(cands) > c.Candidates {
			rng := stats.NewRNG(c.MoveSeed + 0x9e3779b97f4a7c15*uint64(round+1))
			cands = sampleMoves(cands, c.Candidates, rng)
		}
		evals := grid.Collect(r, len(cands), func(i int) moveEval {
			return evalMove(ctx, r, set, cEval, res, cands[i])
		})
		if err := ctx.Err(); err != nil {
			return err
		}
		best := -1
		bestE := res.Energy - 1e-9*math.Max(1, math.Abs(res.Energy))
		for i := range evals {
			if evals[i].ok && evals[i].e < bestE {
				bestE = evals[i].e
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		mv, ev := cands[best], evals[best]
		res.Assignment[mv.from] = append([]int(nil), ev.a.TaskIdx...)
		res.Assignment[mv.to] = append([]int(nil), ev.b.TaskIdx...)
		res.Cores[mv.from] = ev.a
		res.Cores[mv.to] = ev.b
		if mv.swap {
			home[mv.t], home[mv.u] = mv.to, mv.from
		} else {
			home[mv.t] = mv.to
		}
		res.AcceptedMoves++
		res.Energy = totalEnergy(res.Cores)
	}
	return nil
}

// Fingerprint content-addresses a partitioned request: the single-core grid
// key of (set, Solver) — task-set content, model identity, every solver
// field a solve is a function of — extended with the partition knobs.
// ACSBudget (and the test-only budget hook) are load policy, not problem
// content, and are excluded, mirroring the server's SolveBudget. Dormant
// move knobs (MoveSeed, Candidates when Moves == 0) hash as zero so
// configs that cannot diverge share a fingerprint. ok=false mirrors
// grid.ScheduleKey: the config is not canonically encodable.
func Fingerprint(set *task.Set, cfg Config) (string, bool) {
	c := cfg.withDefaults()
	solver := c.Solver
	solver.WarmStart = nil
	key, ok := grid.ScheduleKey(set, solver)
	if !ok {
		return "", false
	}
	h := sha256.New()
	h.Write([]byte("partition/v1"))
	h.Write(key[:])
	var buf [8]byte
	wr := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wr(uint64(c.Cores))
	wr(uint64(c.Mode))
	wr(uint64(c.Moves))
	if c.Moves > 0 {
		wr(c.MoveSeed)
		wr(uint64(int64(c.Candidates)))
	} else {
		wr(0)
		wr(0)
	}
	return hex.EncodeToString(h.Sum(nil)), true
}
