// Package leakcheck fails tests that leak goroutines. It is the shared
// helper behind the robustness suite's "no goroutine left behind" checks
// (DESIGN.md §10): every daemon shutdown path — server.Close, schedload runs,
// chaos harness teardown — must return the process to its pre-test goroutine
// population.
//
// The check is a snapshot diff: Check records runtime.NumGoroutine at call
// time and registers a cleanup that polls until the population returns to
// that baseline (goroutines wind down asynchronously — context cancellation
// and connection teardown are not synchronous with Close returning). If the
// population is still elevated after the grace window, the test fails with a
// full stack dump so the leaked goroutines are identifiable.
//
// Call Check before constructing the system under test, so its cleanup runs
// after the test's own cleanups (t.Cleanup is LIFO):
//
//	func TestServer(t *testing.T) {
//		leakcheck.Check(t)
//		s, ts := newTestServer(t, Options{}) // registers ts.Close/s.Close cleanups
//		...
//	}
package leakcheck

import (
	"net/http"
	"runtime"
	"testing"
	"time"
)

// grace is how long a cleanup waits for goroutines to wind down before
// declaring a leak. Teardown latency (canceled solves noticing their
// context, HTTP conns closing) is bounded and small; a real leak never
// converges, so the window only trades failure latency for flake resistance.
const grace = 5 * time.Second

// Check snapshots the current goroutine count and registers a cleanup that
// fails t if the count has not returned to the baseline within the grace
// window. Call it first in the test, before anything that spawns goroutines.
func Check(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		// Idle keep-alive connections from the default client hold a pair of
		// background goroutines each; they are pooled reuse, not a leak.
		http.DefaultClient.CloseIdleConnections()
		deadline := time.Now().Add(grace)
		n := runtime.NumGoroutine()
		for n > base && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
		if n <= base {
			return
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d live at teardown, baseline %d; stacks:\n%s", n, base, buf)
	})
}
