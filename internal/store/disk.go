// Package store is the crash-safe persistent tier of the content-addressed
// schedule cache (DESIGN.md §9): an append-only log of encoded schedules
// keyed by their grid.Key, plus a small atomic blob area for session
// checkpoints. It implements grid.Store, so a Memo can run directly on disk,
// and composes with the in-memory tier through Tiered.
//
// Durability model: schedules are the expensive artefact (a solve), so only
// they are persisted; compiled plans are cheap pure functions of schedules
// and are recompiled on load. Every record carries its own length and
// CRC-32C, so a crash mid-append costs at most the record being written:
// the recovery scan on Open truncates the log at the first torn record and
// everything before it survives. Blobs are written tmp+rename, so a reader
// sees either the old bytes or the new bytes, never a mix.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
)

// Log record layout, little-endian:
//
//	magic  u32   recordMagic
//	kind   u8    kindSchedule
//	key    [32]  grid.Key (content address)
//	plen   u32   payload length
//	crc    u32   CRC-32C (Castagnoli) over kind ‖ key ‖ payload
//	payload      core.EncodeSchedule bytes
//
// A record is valid iff the magic matches, the payload fits the remaining
// file, and the CRC verifies. Anything else is a torn tail: the scan
// truncates there and the file is again append-clean.
const (
	recordMagic  = 0x53435244 // "SCRD"
	kindSchedule = 1
	headerSize   = 4 + 1 + 32 + 4 + 4
	// maxPayload rejects absurd lengths before any allocation; real encoded
	// schedules are a few KiB.
	maxPayload = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Disk store.
type Options struct {
	// SegmentBytes rolls the active segment once it exceeds this size
	// (default 64 MiB). Only the active segment is ever appended to;
	// completed segments are immutable.
	SegmentBytes int64
	// Sync fsyncs after every append. Off by default: the log is a cache,
	// so losing the OS write-back window costs re-solves, not correctness —
	// the recovery scan drops whatever tail didn't make it to the platter.
	Sync bool
	// FS supplies the filesystem (nil = the real OS). Tests and the chaos
	// harness pass fault.Inject(fault.OS(), registry) to subject every
	// store operation to a seeded fault schedule.
	FS fault.FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.FS == nil {
		o.FS = fault.OS()
	}
	return o
}

// entryLoc addresses one valid record's payload inside a segment.
type entryLoc struct {
	seg int
	off int64 // payload offset within the segment file
	n   int   // payload length
}

// Disk is the persistent grid.Store: schedules in an append-only segmented
// log, plans never resident (recompiled on demand). All methods are safe for
// concurrent use. Losing any suffix of the log — a crash, a torn record, a
// deleted segment — changes hit rates, never results: keys are content
// addresses and the decode path re-verifies structure end to end.
type Disk struct {
	dir  string
	opts Options
	fs   fault.FS

	mu      sync.Mutex
	index   map[grid.Key]entryLoc
	files   map[int]fault.File // open segment files by number
	active  int                // active (append) segment number
	size    int64              // size of the active segment
	bytes   int64              // total valid log bytes across segments
	closed  bool
	hits    atomic.Int64
	entries atomic.Int64

	readErrs  atomic.Int64 // failed read ops (health evidence for a breaker)
	writeErrs atomic.Int64 // failed append/sync/blob-write ops

	recovered int64 // records indexed by the recovery scan at Open
	torn      int64 // truncation events the scan performed
}

var segmentRe = regexp.MustCompile(`^seg-(\d{6})\.log$`)

// Open opens (or creates) the store rooted at dir, running the recovery
// scan: every segment is walked record by record, valid records are indexed
// (last write wins, though duplicates are content-equal anyway), and the
// first torn record truncates its segment and drops all later segments —
// they were appended after the torn point, so the log stays a prefix of the
// write history.
func Open(dir string, opts Options) (*Disk, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := opts.FS.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d := &Disk{
		dir:   dir,
		opts:  opts,
		fs:    opts.FS,
		index: make(map[grid.Key]entryLoc),
		files: make(map[int]fault.File),
	}
	names, err := opts.FS.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var segs []int
	for _, e := range names {
		if m := segmentRe.FindStringSubmatch(e.Name()); m != nil {
			var n int
			fmt.Sscanf(m[1], "%d", &n)
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	truncated := false
	for _, seg := range segs {
		if truncated {
			// Everything after a torn segment postdates the torn record;
			// dropping it keeps the log a prefix of the write history.
			d.fs.Remove(d.segPath(seg))
			continue
		}
		// scanSegment leaves d.active/d.size on the last scanned segment, so
		// appends resume exactly where the valid prefix ends.
		ok, err := d.scanSegment(seg)
		if err != nil {
			d.Close()
			return nil, err
		}
		if !ok {
			truncated = true
			d.torn++
		}
	}
	if len(segs) == 0 {
		d.active = 0
		if err := d.openSegment(0, true); err != nil {
			d.Close()
			return nil, err
		}
	}
	d.recovered = int64(len(d.index))
	d.entries.Store(d.recovered)
	return d, nil
}

func (d *Disk) segPath(n int) string {
	return filepath.Join(d.dir, fmt.Sprintf("seg-%06d.log", n))
}

// openSegment opens segment n for appending (creating it if asked) and makes
// it the active segment. Called with d.mu held or during Open.
func (d *Disk) openSegment(n int, create bool) error {
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE
	}
	f, err := d.fs.OpenFile(d.segPath(n), flags, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	d.files[n] = f
	d.active = n
	d.size = st.Size()
	return nil
}

// scanSegment walks one segment, indexing valid records. It returns ok=false
// when it hit a torn record and truncated the file there; the caller then
// drops every later segment.
func (d *Disk) scanSegment(seg int) (ok bool, err error) {
	f, err := d.fs.OpenFile(d.segPath(seg), os.O_RDWR, 0o644)
	if err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return false, fmt.Errorf("store: %w", err)
	}
	d.files[seg] = f
	d.active = seg
	size := st.Size()
	var off int64
	hdr := make([]byte, headerSize)
	for off < size {
		if _, err := f.ReadAt(hdr, off); err != nil {
			break // short header: torn
		}
		magic := binary.LittleEndian.Uint32(hdr[0:])
		kind := hdr[4]
		var key grid.Key
		copy(key[:], hdr[5:37])
		plen := binary.LittleEndian.Uint32(hdr[37:])
		want := binary.LittleEndian.Uint32(hdr[41:])
		if magic != recordMagic || kind != kindSchedule || plen > maxPayload ||
			off+headerSize+int64(plen) > size {
			break
		}
		payload := make([]byte, plen)
		if _, err := f.ReadAt(payload, off+headerSize); err != nil {
			break
		}
		crc := crc32.Update(0, crcTable, hdr[4:41])
		crc = crc32.Update(crc, crcTable, payload)
		if crc != want {
			break
		}
		d.index[key] = entryLoc{seg: seg, off: off + headerSize, n: int(plen)}
		off += headerSize + int64(plen)
	}
	d.size = off
	d.bytes += off
	if off == size {
		return true, nil
	}
	if err := f.Truncate(off); err != nil {
		return false, fmt.Errorf("store: truncating torn segment: %w", err)
	}
	return false, nil
}

// GetSchedule implements grid.Store: a ReadAt plus a full decode, so a
// record that rots after the recovery scan still degrades to a miss rather
// than a bad artefact.
func (d *Disk) GetSchedule(key grid.Key) (*core.Schedule, error, bool) {
	s, cached, ok, _ := d.TryGetSchedule(key)
	return s, cached, ok
}

// TryGetSchedule is GetSchedule with the device outcome exposed: ioErr is
// non-nil when an indexed record could not be read back — health evidence a
// tiered caller feeds its circuit breaker. A decode failure (CRC-passing
// bytes that no longer parse) is a plain miss with nil ioErr: it is a data
// problem, not evidence the device is gone. A miss that never touches the
// device returns all-zero.
func (d *Disk) TryGetSchedule(key grid.Key) (s *core.Schedule, cached error, ok bool, ioErr error) {
	d.mu.Lock()
	loc, present := d.index[key]
	var f fault.File
	if present {
		f = d.files[loc.seg]
	}
	d.mu.Unlock()
	if !present || f == nil {
		return nil, nil, false, nil
	}
	payload := make([]byte, loc.n)
	if _, err := f.ReadAt(payload, loc.off); err != nil {
		d.readErrs.Add(1)
		return nil, nil, false, fmt.Errorf("store: reading record: %w", err)
	}
	sched, err := core.DecodeSchedule(payload)
	if err != nil {
		return nil, nil, false, nil
	}
	d.hits.Add(1)
	return sched, nil, true, nil
}

// PutSchedule implements grid.Store. Only successful solves are persisted:
// cached failures stay an in-memory optimization, and schedules the codec
// cannot represent (unknown model implementations) are silently skipped —
// the store is a cache, so "not persistable" just means "miss next restart".
func (d *Disk) PutSchedule(key grid.Key, s *core.Schedule, err error) {
	d.TryPutSchedule(key, s, err)
}

// TryPutSchedule is PutSchedule with the device outcome exposed: a non-nil
// return means the record did not land on disk (the entry will miss after
// the next restart). Skipped puts — cached failures, unencodable schedules,
// duplicates — return nil: nothing was asked of the device.
func (d *Disk) TryPutSchedule(key grid.Key, s *core.Schedule, err error) error {
	if err != nil || s == nil {
		return nil
	}
	payload, encErr := core.EncodeSchedule(s)
	if encErr != nil {
		return nil
	}
	rec := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:], recordMagic)
	rec[4] = kindSchedule
	copy(rec[5:37], key[:])
	binary.LittleEndian.PutUint32(rec[37:], uint32(len(payload)))
	copy(rec[headerSize:], payload)
	crc := crc32.Update(0, crcTable, rec[4:41])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(rec[41:], crc)

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	if _, dup := d.index[key]; dup {
		return nil // content-addressed: the resident record is equal
	}
	if d.size >= d.opts.SegmentBytes {
		if err := d.openSegment(d.active+1, true); err != nil {
			d.writeErrs.Add(1)
			return err
		}
	}
	f := d.files[d.active]
	// One contiguous write: a crash leaves either a complete record or a torn
	// tail the next Open truncates — never an indexed half-record. A failed
	// (possibly torn) write leaves d.size where it was, so the next append
	// overwrites the debris; whatever garbage survives past the final valid
	// record is exactly what the next Open's scan truncates.
	if _, err := f.WriteAt(rec, d.size); err != nil {
		d.writeErrs.Add(1)
		return fmt.Errorf("store: appending record: %w", err)
	}
	if d.opts.Sync {
		if err := f.Sync(); err != nil {
			d.writeErrs.Add(1)
			return fmt.Errorf("store: syncing record: %w", err)
		}
	}
	d.index[key] = entryLoc{seg: d.active, off: d.size + headerSize, n: len(payload)}
	d.size += int64(len(rec))
	d.bytes += int64(len(rec))
	d.entries.Add(1)
	return nil
}

// GetPlan implements grid.Store: plans are never persisted (they are pure
// functions of schedules, recompiled on demand), so every lookup misses.
func (d *Disk) GetPlan(grid.Key) (*sim.CompiledPlan, error, bool) { return nil, nil, false }

// PutPlan implements grid.Store as a no-op; see GetPlan.
func (d *Disk) PutPlan(grid.Key, *sim.CompiledPlan, error) {}

// Stats implements grid.Store: the disk tier owns log occupancy and the
// recovery counters.
func (d *Disk) Stats() grid.Stats {
	d.mu.Lock()
	bytes := d.bytes
	d.mu.Unlock()
	return grid.Stats{
		DiskHits:           d.hits.Load(),
		DiskEntries:        d.entries.Load(),
		DiskBytes:          bytes,
		DiskReadErrs:       d.readErrs.Load(),
		DiskWriteErrs:      d.writeErrs.Load(),
		RecoveredEntries:   d.recovered,
		TornRecordsDropped: d.torn,
	}
}

// Close releases the segment files. Every record already written is durable
// per the Options.Sync policy; there is no buffered state to flush.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	var first error
	for _, f := range d.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var blobNameRe = regexp.MustCompile(`^[a-zA-Z0-9._-]+$`)

// PutBlob atomically replaces the named blob: the bytes land in a temp file
// first and are renamed over the target, so a concurrent GetBlob (or a
// crash) observes the old content or the new, never a mix.
func (d *Disk) PutBlob(name string, data []byte) error {
	if !blobNameRe.MatchString(name) {
		return fmt.Errorf("store: invalid blob name %q", name)
	}
	path := filepath.Join(d.dir, "blobs", name)
	tmp := path + ".tmp"
	if err := d.fs.WriteFile(tmp, data, 0o644); err != nil {
		d.writeErrs.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	if err := d.fs.Rename(tmp, path); err != nil {
		d.fs.Remove(tmp)
		d.writeErrs.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// GetBlob returns the named blob's content and whether it exists.
func (d *Disk) GetBlob(name string) ([]byte, bool, error) {
	if !blobNameRe.MatchString(name) {
		return nil, false, fmt.Errorf("store: invalid blob name %q", name)
	}
	data, err := d.fs.ReadFile(filepath.Join(d.dir, "blobs", name))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		d.readErrs.Add(1)
		return nil, false, fmt.Errorf("store: %w", err)
	}
	return data, true, nil
}

// ListBlobs returns the existing blob names in sorted order, skipping
// in-flight temp files.
func (d *Disk) ListBlobs() ([]string, error) {
	entries, err := d.fs.ReadDir(filepath.Join(d.dir, "blobs"))
	if err != nil {
		d.readErrs.Add(1)
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) == ".tmp" {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}
