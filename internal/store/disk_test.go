package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/task"
)

// solvedEntry is one (key, schedule) pair with its canonical encoding, the
// identity the store must preserve.
type solvedEntry struct {
	key  grid.Key
	s    *core.Schedule
	blob []byte
}

// solveN builds n distinct solved schedules with their cache keys.
func solveN(t *testing.T, n int) []solvedEntry {
	t.Helper()
	cfg := core.Config{Objective: core.AverageCase}
	out := make([]solvedEntry, n)
	for i := range out {
		set, err := task.NewSet([]task.Task{
			{Name: "a", Period: 10, WCEC: 3 + 0.25*float64(i), ACEC: 2, BCEC: 1, Ceff: 1},
			{Name: "b", Period: 20, WCEC: 5, ACEC: 3, BCEC: 2, Ceff: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := core.Build(set, cfg)
		if err != nil {
			t.Fatal(err)
		}
		key, ok := grid.ScheduleKey(set, cfg)
		if !ok {
			t.Fatal("set not key-encodable")
		}
		blob, err := core.EncodeSchedule(s)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = solvedEntry{key: key, s: s, blob: blob}
	}
	return out
}

// mustOpen opens a store and registers its Close.
func mustOpen(t *testing.T, dir string, opts Options) *Disk {
	t.Helper()
	d, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// wantResident asserts the store returns a schedule for key whose canonical
// encoding equals blob — content identity, not pointer identity.
func wantResident(t *testing.T, d *Disk, e solvedEntry) {
	t.Helper()
	s, err, ok := d.GetSchedule(e.key)
	if !ok || err != nil {
		t.Fatalf("entry not resident: ok=%v err=%v", ok, err)
	}
	got, err := core.EncodeSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, e.blob) {
		t.Fatal("resident schedule decodes to different content")
	}
}

// TestDiskPutGetAcrossReopen: entries survive a clean close/reopen with the
// recovery counters reporting a clean scan.
func TestDiskPutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	entries := solveN(t, 4)

	d := mustOpen(t, dir, Options{})
	for _, e := range entries {
		d.PutSchedule(e.key, e.s, nil)
	}
	for _, e := range entries {
		wantResident(t, d, e)
	}
	// Duplicate puts must not grow the log.
	before := d.Stats()
	for _, e := range entries {
		d.PutSchedule(e.key, e.s, nil)
	}
	if after := d.Stats(); after.DiskBytes != before.DiskBytes || after.DiskEntries != before.DiskEntries {
		t.Fatal("duplicate puts grew the log")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := mustOpen(t, dir, Options{})
	st := d2.Stats()
	if st.RecoveredEntries != int64(len(entries)) {
		t.Fatalf("want %d recovered entries, got %d", len(entries), st.RecoveredEntries)
	}
	if st.TornRecordsDropped != 0 {
		t.Fatalf("clean log reported %d truncations", st.TornRecordsDropped)
	}
	for _, e := range entries {
		wantResident(t, d2, e)
	}
	if got := d2.Stats(); got.DiskHits != int64(len(entries)) {
		t.Fatalf("want %d disk hits, got %d", len(entries), got.DiskHits)
	}
}

// corrupt applies damage to the single segment file of dir.
func corrupt(t *testing.T, dir string, damage func(data []byte) []byte) {
	t.Helper()
	path := filepath.Join(dir, "seg-000000.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, damage(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDiskCrashRecovery is the torn-tail contract: after any of the crash
// shapes below hits the end of the log, reopening recovers every undamaged
// record, reports the truncation, and the store accepts new puts that then
// survive the next clean reopen.
func TestDiskCrashRecovery(t *testing.T) {
	entries := solveN(t, 5)
	last := entries[len(entries)-1]
	prefix := entries[:len(entries)-1]

	cases := []struct {
		name   string
		damage func(data []byte) []byte
	}{
		{"truncated mid-record", func(data []byte) []byte {
			return data[:len(data)-len(last.blob)/2]
		}},
		{"payload bit flip", func(data []byte) []byte {
			data[len(data)-1] ^= 0xff
			return data
		}},
		{"header bit flip", func(data []byte) []byte {
			data[len(data)-len(last.blob)-headerSize] ^= 0xff
			return data
		}},
		{"garbage appended", func(data []byte) []byte {
			return append(data, []byte("not a record")...)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d := mustOpen(t, dir, Options{})
			for _, e := range entries {
				d.PutSchedule(e.key, e.s, nil)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			corrupt(t, dir, tc.damage)

			wantRecovered := int64(len(prefix))
			if tc.name == "garbage appended" {
				wantRecovered = int64(len(entries)) // all records intact, only the tail is torn
			}
			d2 := mustOpen(t, dir, Options{})
			st := d2.Stats()
			if st.RecoveredEntries != wantRecovered {
				t.Fatalf("want %d recovered entries, got %d", wantRecovered, st.RecoveredEntries)
			}
			if st.TornRecordsDropped != 1 {
				t.Fatalf("want 1 truncation event, got %d", st.TornRecordsDropped)
			}
			for _, e := range prefix {
				wantResident(t, d2, e)
			}
			if wantRecovered == int64(len(prefix)) {
				if _, _, ok := d2.GetSchedule(last.key); ok {
					t.Fatal("damaged record still resident")
				}
			}
			// The log is append-clean again: the damaged entry can be re-put
			// and everything survives the next reopen.
			d2.PutSchedule(last.key, last.s, nil)
			wantResident(t, d2, last)
			if err := d2.Close(); err != nil {
				t.Fatal(err)
			}
			d3 := mustOpen(t, dir, Options{})
			if st := d3.Stats(); st.RecoveredEntries != int64(len(entries)) || st.TornRecordsDropped != 0 {
				t.Fatalf("post-repair reopen: recovered %d, torn %d", st.RecoveredEntries, st.TornRecordsDropped)
			}
			for _, e := range entries {
				wantResident(t, d3, e)
			}
		})
	}
}

// TestDiskSegmentRollAndMidLogTear: tiny segments force a multi-segment log;
// recovery walks all of them, and a tear in a middle segment drops every
// later segment (they postdate the torn record) while keeping the prefix.
func TestDiskSegmentRollAndMidLogTear(t *testing.T) {
	dir := t.TempDir()
	entries := solveN(t, 6)
	d := mustOpen(t, dir, Options{SegmentBytes: 1}) // roll after every record
	for _, e := range entries {
		d.PutSchedule(e.key, e.s, nil)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(segs))
	}
	sort.Strings(segs)

	d2 := mustOpen(t, dir, Options{SegmentBytes: 1})
	if st := d2.Stats(); st.RecoveredEntries != int64(len(entries)) {
		t.Fatalf("multi-segment recovery: want %d entries, got %d", len(entries), st.RecoveredEntries)
	}
	for _, e := range entries {
		wantResident(t, d2, e)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the middle segment: its own valid prefix (nothing) plus every
	// earlier segment survive; later segments are dropped.
	mid := len(segs) / 2
	if err := os.WriteFile(segs[mid], []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	d3 := mustOpen(t, dir, Options{SegmentBytes: 1})
	st := d3.Stats()
	if st.TornRecordsDropped != 1 {
		t.Fatalf("want 1 truncation event, got %d", st.TornRecordsDropped)
	}
	if st.RecoveredEntries != int64(mid) {
		t.Fatalf("want %d surviving entries before the tear, got %d", mid, st.RecoveredEntries)
	}
	for _, e := range entries[:mid] {
		wantResident(t, d3, e)
	}
	for _, seg := range segs[mid+1:] {
		if _, err := os.Stat(seg); !os.IsNotExist(err) {
			t.Fatalf("segment %s postdating the tear was not dropped", seg)
		}
	}
	// Appends continue cleanly after the tear.
	for _, e := range entries[mid:] {
		d3.PutSchedule(e.key, e.s, nil)
	}
	for _, e := range entries {
		wantResident(t, d3, e)
	}
}

// TestTieredPromotion: a disk hit repopulates the memory tier, so the second
// request for the same key is a memory hit — the on-demand warm restart.
func TestTieredPromotion(t *testing.T) {
	dir := t.TempDir()
	entries := solveN(t, 2)

	d := mustOpen(t, dir, Options{})
	cold := NewTiered(grid.NewMemStore(0), d)
	for _, e := range entries {
		cold.PutSchedule(e.key, e.s, nil)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh process: empty memory tier over the recovered log.
	d2 := mustOpen(t, dir, Options{})
	warm := NewTiered(grid.NewMemStore(0), d2)
	for _, e := range entries {
		s, err, ok := warm.GetSchedule(e.key)
		if !ok || err != nil || s == nil {
			t.Fatalf("warm get missed: ok=%v err=%v", ok, err)
		}
	}
	st := warm.Stats()
	if st.MemHits != 0 || st.DiskHits != int64(len(entries)) {
		t.Fatalf("first pass: want 0 mem / %d disk hits, got %d / %d", len(entries), st.MemHits, st.DiskHits)
	}
	for _, e := range entries {
		if _, _, ok := warm.GetSchedule(e.key); !ok {
			t.Fatal("promoted entry missed")
		}
	}
	st = warm.Stats()
	if st.MemHits != int64(len(entries)) || st.DiskHits != int64(len(entries)) {
		t.Fatalf("second pass: want %d mem / %d disk hits, got %d / %d",
			len(entries), len(entries), st.MemHits, st.DiskHits)
	}
	if st.RecoveredEntries != int64(len(entries)) {
		t.Fatalf("tiered stats lost recovery counters: %+v", st)
	}
}

// TestMemoOnDiskIdentity: a Memo running directly on the disk backend returns
// schedules content-identical to a memory-backed Memo — the store swap is
// invisible to results (grid.Store contract, DESIGN.md §9).
func TestMemoOnDiskIdentity(t *testing.T) {
	entries := solveN(t, 3)
	dir := t.TempDir()
	d := mustOpen(t, dir, Options{})
	for _, e := range entries {
		d.PutSchedule(e.key, e.s, nil)
	}
	for _, e := range entries {
		s, err, ok := d.GetSchedule(e.key)
		if !ok || err != nil {
			t.Fatal("miss")
		}
		// The decoded schedule must be semantically interchangeable with the
		// original: same solved vectors, energy, structure.
		if !reflect.DeepEqual(s.End, e.s.End) || !reflect.DeepEqual(s.WCWork, e.s.WCWork) ||
			!reflect.DeepEqual(s.AvgWork, e.s.AvgWork) || s.Energy != e.s.Energy {
			t.Fatal("decoded schedule differs from original")
		}
	}
}

// TestBlobs: atomic named blobs — put, overwrite, get, list; temp files and
// invalid names rejected or skipped.
func TestBlobs(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, Options{})
	if err := d.PutBlob("session-s1", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := d.PutBlob("session-s2", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := d.PutBlob("session-s1", []byte("one-v2")); err != nil {
		t.Fatal(err)
	}
	if err := d.PutBlob("../escape", []byte("x")); err == nil {
		t.Fatal("path-escaping blob name accepted")
	}
	if err := d.PutBlob("", nil); err == nil {
		t.Fatal("empty blob name accepted")
	}
	got, ok, err := d.GetBlob("session-s1")
	if err != nil || !ok || string(got) != "one-v2" {
		t.Fatalf("get: %q %v %v", got, ok, err)
	}
	if _, ok, err := d.GetBlob("absent"); ok || err != nil {
		t.Fatalf("absent blob: ok=%v err=%v", ok, err)
	}
	// An in-flight temp file is invisible to listings.
	if err := os.WriteFile(filepath.Join(dir, "blobs", "session-s3.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	names, err := d.ListBlobs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"session-s1", "session-s2"}) {
		t.Fatalf("list: %v", names)
	}
}
