package store

import (
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/grid"
)

// faultyOpen opens a store whose filesystem is driven by a fresh registry.
func faultyOpen(t *testing.T, dir string, seed uint64) (*Disk, *fault.Registry) {
	t.Helper()
	reg := fault.NewRegistry(seed)
	d := mustOpen(t, dir, Options{FS: fault.Inject(fault.OS(), reg)})
	return d, reg
}

// TestDiskTornWriteRecovery: a torn append fails the put, later appends
// overwrite the debris, and the recovery scan serves exactly the undamaged
// prefix — every record whose put succeeded, nothing else.
func TestDiskTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	entries := solveN(t, 4)
	d, reg := faultyOpen(t, dir, 11)

	if err := d.TryPutSchedule(entries[0].key, entries[0].s, nil); err != nil {
		t.Fatal(err)
	}
	reg.Arm("fs.write", fault.Spec{Prob: 1, Err: true, Torn: 0.6})
	if err := d.TryPutSchedule(entries[1].key, entries[1].s, nil); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn put err = %v, want ErrInjected", err)
	}
	reg.Disarm("fs.write")
	if err := d.TryPutSchedule(entries[2].key, entries[2].s, nil); err != nil {
		t.Fatalf("append after torn debris failed: %v", err)
	}
	// Tear the final append too, so debris survives at the very tail — the
	// shape only the next Open's scan can clean up.
	reg.Arm("fs.write", fault.Spec{Prob: 1, Err: true, Torn: 0.6})
	if err := d.TryPutSchedule(entries[3].key, entries[3].s, nil); err == nil {
		t.Fatal("tail torn put reported success")
	}
	if st := d.Stats(); st.DiskWriteErrs != 2 {
		t.Fatalf("write errs = %d, want 2", st.DiskWriteErrs)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen on a clean filesystem: the recovery scan must index the two
	// successful records and truncate the torn tail.
	d2 := mustOpen(t, dir, Options{})
	st := d2.Stats()
	if st.RecoveredEntries != 2 {
		t.Fatalf("recovered %d entries, want 2", st.RecoveredEntries)
	}
	if st.TornRecordsDropped != 1 {
		t.Fatalf("torn truncations = %d, want 1", st.TornRecordsDropped)
	}
	wantResident(t, d2, entries[0])
	wantResident(t, d2, entries[2])
	for _, i := range []int{1, 3} {
		if _, _, ok := d2.GetSchedule(entries[i].key); ok {
			t.Fatalf("torn entry %d resident after recovery", i)
		}
	}
}

// TestDiskReadErrorDegradesToMiss: an indexed record whose read fails
// degrades to a miss with the I/O error exposed to TryGetSchedule, and the
// entry serves again once the fault clears.
func TestDiskReadErrorDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	e := solveN(t, 1)[0]
	d, reg := faultyOpen(t, dir, 12)
	d.PutSchedule(e.key, e.s, nil)

	reg.Arm("fs.read", fault.Spec{Prob: 1, Err: true})
	if _, _, ok := d.GetSchedule(e.key); ok {
		t.Fatal("read-faulted record reported resident")
	}
	if _, _, _, ioErr := d.TryGetSchedule(e.key); !errors.Is(ioErr, fault.ErrInjected) {
		t.Fatalf("ioErr = %v, want ErrInjected", ioErr)
	}
	if st := d.Stats(); st.DiskReadErrs < 2 {
		t.Fatalf("read errs = %d, want >= 2", st.DiskReadErrs)
	}
	reg.Disarm("fs.read")
	wantResident(t, d, e)
}

// TestTieredBreakerDegradeAndRecover drives the full degradation cycle:
// persistent disk failures trip the breaker, the store serves memory-only
// (no failed requests), and once faults clear the cooldown probe re-closes
// it and tiered residency resumes.
func TestTieredBreakerDegradeAndRecover(t *testing.T) {
	dir := t.TempDir()
	entries := solveN(t, 8)
	d, reg := faultyOpen(t, dir, 13)
	tiered := NewTieredWith(grid.NewMemStore(0), d, TieredOptions{
		BreakerThreshold: 3, BreakerCooldown: time.Second,
	})
	now := time.Unix(0, 0)
	tiered.Breaker().SetClock(func() time.Time { return now })

	// Healthy: writes land in both tiers.
	tiered.PutSchedule(entries[0].key, entries[0].s, nil)
	if st := tiered.Stats(); st.DiskEntries != 1 || st.BreakerState != "closed" {
		t.Fatalf("healthy stats = %+v", st)
	}

	// Persistent write failure: three distinct puts trip the breaker. Every
	// put still lands in memory — no request-visible failure.
	reg.Arm("fs.write", fault.Spec{Prob: 1, Err: true})
	for i := 1; i <= 3; i++ {
		tiered.PutSchedule(entries[i].key, entries[i].s, nil)
	}
	st := tiered.Stats()
	if st.BreakerState != "open" || !st.MemDegraded || st.BreakerTrips != 1 {
		t.Fatalf("after 3 failures: %+v", st)
	}
	for i := 1; i <= 3; i++ {
		if _, _, ok := tiered.GetSchedule(entries[i].key); !ok {
			t.Fatalf("memory tier lost entry %d during degradation", i)
		}
	}

	// While open: disk is never consulted (a faulted read would panic the
	// counters otherwise) and further puts are memory-only, not scored.
	reg.Arm("fs.read", fault.Spec{Prob: 1, Err: true})
	tiered.PutSchedule(entries[4].key, entries[4].s, nil)
	if _, _, ok := tiered.GetSchedule(entries[5].key); ok {
		t.Fatal("absent key reported resident while degraded")
	}
	if got := tiered.Stats(); got.DiskWriteErrs != 3 || got.DiskReadErrs != 0 {
		t.Fatalf("degraded mode still touched the disk: %+v", got)
	}

	// Blob operations fail fast while degraded.
	if err := tiered.PutBlob("cp", []byte("x")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded PutBlob err = %v, want ErrDegraded", err)
	}
	if _, ok, err := tiered.GetBlob("cp"); ok || err != nil {
		t.Fatalf("degraded GetBlob = ok=%v err=%v, want absent", ok, err)
	}

	// Faults clear, cooldown elapses: the next disk operation is the reopen
	// probe and re-closes the breaker.
	reg.DisarmAll()
	now = now.Add(time.Second)
	tiered.PutSchedule(entries[6].key, entries[6].s, nil)
	st = tiered.Stats()
	if st.BreakerState != "closed" || st.MemDegraded || st.BreakerRecloses != 1 {
		t.Fatalf("after recovery: %+v", st)
	}
	// Full tiered residency resumed: the post-recovery entry is durable.
	if st.DiskEntries != 2 {
		t.Fatalf("disk entries = %d, want 2 (pre-fault + post-recovery)", st.DiskEntries)
	}
	if err := tiered.PutBlob("cp", []byte("x")); err != nil {
		t.Fatalf("recovered PutBlob failed: %v", err)
	}
	if _, ok, err := tiered.GetBlob("cp"); !ok || err != nil {
		t.Fatalf("recovered GetBlob = ok=%v err=%v", ok, err)
	}

	// A half-open probe that fails re-trips immediately.
	reg.Arm("fs.write", fault.Spec{Prob: 1, Err: true})
	for i := 0; i < 3; i++ {
		tiered.PutSchedule(entries[7].key, entries[7].s, nil)
	}
	if got := tiered.Stats(); got.BreakerState != "open" || got.BreakerTrips != 2 {
		t.Fatalf("re-trip failed: %+v", got)
	}
	now = now.Add(time.Second)
	if err := tiered.PutBlob("cp2", []byte("y")); err == nil {
		t.Fatal("half-open probe against a still-dead disk succeeded")
	}
	if got := tiered.Stats(); got.BreakerState != "open" || got.BreakerTrips != 3 {
		t.Fatalf("failed probe did not re-open: %+v", got)
	}
}
