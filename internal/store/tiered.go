package store

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/sim"
)

// Tiered composes a fast volatile tier over the durable disk log: reads
// probe memory first and fall through to disk, promoting what they find so
// the hot set re-forms in memory after a restart without any explicit
// warm-up pass (warm restarts repopulate on demand). Writes land in both
// tiers — memory for the next request, disk for the next process.
//
// Plans live in the memory tier only: the disk log persists schedules and
// plans are recompiled from them, so a plan lookup that misses memory is an
// honest miss. Cached failures likewise stay memory-only (the disk backend
// skips them), preserving the contract that losing any tier changes hit
// rates, never results.
type Tiered struct {
	mem  grid.Store
	disk *Disk

	memHits  atomic.Int64
	diskHits atomic.Int64
}

// NewTiered returns mem layered over disk.
func NewTiered(mem grid.Store, disk *Disk) *Tiered {
	return &Tiered{mem: mem, disk: disk}
}

// GetSchedule implements grid.Store: memory first, then disk with promotion.
func (t *Tiered) GetSchedule(key grid.Key) (*core.Schedule, error, bool) {
	if s, err, ok := t.mem.GetSchedule(key); ok {
		t.memHits.Add(1)
		return s, err, true
	}
	if s, err, ok := t.disk.GetSchedule(key); ok {
		t.diskHits.Add(1)
		// Promote so the next request is a memory hit. MemStore puts are
		// idempotent, so racing promotions of the same key are harmless.
		t.mem.PutSchedule(key, s, err)
		return s, err, true
	}
	return nil, nil, false
}

// PutSchedule implements grid.Store: both tiers (the disk tier itself skips
// failures and unencodable schedules).
func (t *Tiered) PutSchedule(key grid.Key, s *core.Schedule, err error) {
	t.mem.PutSchedule(key, s, err)
	t.disk.PutSchedule(key, s, err)
}

// GetPlan implements grid.Store; plans are memory-only.
func (t *Tiered) GetPlan(key grid.Key) (*sim.CompiledPlan, error, bool) {
	return t.mem.GetPlan(key)
}

// PutPlan implements grid.Store; plans are memory-only.
func (t *Tiered) PutPlan(key grid.Key, p *sim.CompiledPlan, err error) {
	t.mem.PutPlan(key, p, err)
}

// Stats implements grid.Store: the memory tier's residency accounting merged
// with the disk tier's occupancy/recovery counters and the per-tier hit
// split owned here.
func (t *Tiered) Stats() grid.Stats {
	st := t.mem.Stats()
	dst := t.disk.Stats()
	st.MemHits = t.memHits.Load()
	st.DiskHits = t.diskHits.Load()
	st.DiskEntries = dst.DiskEntries
	st.DiskBytes = dst.DiskBytes
	st.RecoveredEntries = dst.RecoveredEntries
	st.TornRecordsDropped = dst.TornRecordsDropped
	return st
}
