package store

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
)

// ErrDegraded reports a durable operation refused because the breaker holds
// the store in memory-only mode. Callers treat it like any other
// best-effort-persistence failure: count it, keep serving.
var ErrDegraded = errors.New("store: disk degraded, serving memory-only")

// Tiered composes a fast volatile tier over the durable disk log: reads
// probe memory first and fall through to disk, promoting what they find so
// the hot set re-forms in memory after a restart without any explicit
// warm-up pass (warm restarts repopulate on demand). Writes land in both
// tiers — memory for the next request, disk for the next process.
//
// Plans live in the memory tier only: the disk log persists schedules and
// plans are recompiled from them, so a plan lookup that misses memory is an
// honest miss. Cached failures likewise stay memory-only (the disk backend
// skips them), preserving the contract that losing any tier changes hit
// rates, never results.
//
// Graceful degradation (DESIGN.md §10): every disk operation flows through a
// circuit breaker. Persistent device failures trip it open, and the store
// degrades to memory-only residency — reads stop probing the disk, writes
// stop appending, blob puts fail fast — so a dying disk costs hit rate and
// durability, never a failed request. After the cooldown the breaker
// half-opens and the next disk operation doubles as the reopen probe: one
// success re-closes the breaker and full tiered residency resumes. The
// transition is visible in Stats (breaker_state, mem_degraded) and therefore
// in /v1/stats.
type Tiered struct {
	mem     grid.Store
	disk    *Disk
	breaker *fault.Breaker

	memHits  atomic.Int64
	diskHits atomic.Int64

	// observe, when set, is called with the elapsed time of every tier
	// operation (tier "mem"|"disk", op "get"|"put"). Purely passive — it
	// feeds latency histograms and never influences results.
	observe func(tier, op string, seconds float64)
}

// TieredOptions tunes the degradation policy. The zero value selects the
// defaults.
type TieredOptions struct {
	// BreakerThreshold is the consecutive disk-failure count that trips the
	// store into memory-only mode (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long the disk is rested before a reopen probe
	// (default 5s).
	BreakerCooldown time.Duration
}

// NewTiered returns mem layered over disk with the default degradation
// policy.
func NewTiered(mem grid.Store, disk *Disk) *Tiered {
	return NewTieredWith(mem, disk, TieredOptions{})
}

// NewTieredWith returns mem layered over disk with an explicit policy.
func NewTieredWith(mem grid.Store, disk *Disk, opts TieredOptions) *Tiered {
	return &Tiered{
		mem:     mem,
		disk:    disk,
		breaker: fault.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
	}
}

// Breaker exposes the disk circuit breaker (tests drive its clock).
func (t *Tiered) Breaker() *fault.Breaker { return t.breaker }

// SetObserver installs a per-operation latency observer. Must be called
// before the store starts serving requests (the server installs it at
// construction); fn must be safe for concurrent calls.
func (t *Tiered) SetObserver(fn func(tier, op string, seconds float64)) { t.observe = fn }

// timeOp starts timing one tier operation; the returned closure reports
// it. Reads no clock when no observer is installed.
func (t *Tiered) timeOp(tier, op string) func() {
	if t.observe == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { t.observe(tier, op, time.Since(t0).Seconds()) }
}

// GetSchedule implements grid.Store: memory first, then disk with promotion.
// With the breaker open the disk probe is skipped entirely — the entry is
// simply a miss, and the caller rebuilds it into the memory tier.
func (t *Tiered) GetSchedule(key grid.Key) (*core.Schedule, error, bool) {
	memDone := t.timeOp("mem", "get")
	s, err, ok := t.mem.GetSchedule(key)
	memDone()
	if ok {
		t.memHits.Add(1)
		return s, err, true
	}
	if !t.breaker.Allow() {
		return nil, nil, false
	}
	diskDone := t.timeOp("disk", "get")
	s, cached, ok, ioErr := t.disk.TryGetSchedule(key)
	diskDone()
	if ioErr != nil {
		t.breaker.Record(ioErr)
		return nil, nil, false
	}
	if !ok {
		// Index miss: the device was never consulted, so there is no health
		// evidence to record either way.
		return nil, nil, false
	}
	t.breaker.Record(nil)
	t.diskHits.Add(1)
	// Promote so the next request is a memory hit. MemStore puts are
	// idempotent, so racing promotions of the same key are harmless.
	t.mem.PutSchedule(key, s, cached)
	return s, cached, true
}

// PutSchedule implements grid.Store: both tiers (the disk tier itself skips
// failures and unencodable schedules), with the disk append gated and
// scored by the breaker.
func (t *Tiered) PutSchedule(key grid.Key, s *core.Schedule, err error) {
	memDone := t.timeOp("mem", "put")
	t.mem.PutSchedule(key, s, err)
	memDone()
	if !t.breaker.Allow() {
		return
	}
	if err != nil || s == nil {
		return // the disk tier would skip it; don't score a no-op
	}
	diskDone := t.timeOp("disk", "put")
	putErr := t.disk.TryPutSchedule(key, s, err)
	diskDone()
	t.breaker.Record(putErr)
}

// GetPlan implements grid.Store; plans are memory-only.
func (t *Tiered) GetPlan(key grid.Key) (*sim.CompiledPlan, error, bool) {
	return t.mem.GetPlan(key)
}

// PutPlan implements grid.Store; plans are memory-only.
func (t *Tiered) PutPlan(key grid.Key, p *sim.CompiledPlan, err error) {
	t.mem.PutPlan(key, p, err)
}

// PutBlob implements server.BlobStore through the breaker: with the disk
// degraded the checkpoint fails fast (the server counts it and keeps
// serving) instead of grinding against a dead device.
func (t *Tiered) PutBlob(name string, data []byte) error {
	if !t.breaker.Allow() {
		return ErrDegraded
	}
	err := t.disk.PutBlob(name, data)
	t.breaker.Record(err)
	return err
}

// GetBlob implements server.BlobStore; with the breaker open the blob is
// reported absent — the caller's recovery path (404, re-submit) is the
// degraded contract.
func (t *Tiered) GetBlob(name string) ([]byte, bool, error) {
	if !t.breaker.Allow() {
		return nil, false, nil
	}
	data, ok, err := t.disk.GetBlob(name)
	if err != nil || ok {
		// A clean "not exists" never touched the platter meaningfully enough
		// to count as recovery evidence; score only real reads and failures.
		t.breaker.Record(err)
	}
	return data, ok, err
}

// ListBlobs implements server.BlobStore through the breaker.
func (t *Tiered) ListBlobs() ([]string, error) {
	if !t.breaker.Allow() {
		return nil, nil
	}
	names, err := t.disk.ListBlobs()
	t.breaker.Record(err)
	return names, err
}

// Stats implements grid.Store: the memory tier's residency accounting merged
// with the disk tier's occupancy/recovery/health counters, the per-tier hit
// split owned here, and the breaker's position.
func (t *Tiered) Stats() grid.Stats {
	st := t.mem.Stats()
	dst := t.disk.Stats()
	st.MemHits = t.memHits.Load()
	st.DiskHits = t.diskHits.Load()
	st.DiskEntries = dst.DiskEntries
	st.DiskBytes = dst.DiskBytes
	st.DiskReadErrs = dst.DiskReadErrs
	st.DiskWriteErrs = dst.DiskWriteErrs
	st.RecoveredEntries = dst.RecoveredEntries
	st.TornRecordsDropped = dst.TornRecordsDropped
	state := t.breaker.State()
	st.BreakerState = state.String()
	st.BreakerTrips = t.breaker.Trips()
	st.BreakerRecloses = t.breaker.Recloses()
	st.MemDegraded = state != fault.BreakerClosed
	return st
}
