package store

import (
	"sort"
	"sync"
)

// MemBlobs is the in-memory named-blob store: the same contract as Disk's
// blob methods (atomic replace, sorted listing) without a device. Fleet peers
// run on it when no -store-dir is given — replication to ring peers, not the
// local disk, is what makes their checkpoints survive a node loss — and
// tests use it to stand up many peers cheaply.
type MemBlobs struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

// NewMemBlobs returns an empty in-memory blob store.
func NewMemBlobs() *MemBlobs {
	return &MemBlobs{blobs: make(map[string][]byte)}
}

// PutBlob atomically replaces the named blob. The data is copied, so callers
// may reuse their buffer.
func (m *MemBlobs) PutBlob(name string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	m.blobs[name] = cp
	m.mu.Unlock()
	return nil
}

// GetBlob returns a copy of the named blob's content and whether it exists.
func (m *MemBlobs) GetBlob(name string) ([]byte, bool, error) {
	m.mu.Lock()
	data, ok := m.blobs[name]
	m.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, true, nil
}

// ListBlobs returns the blob names in sorted order, like Disk.ListBlobs.
func (m *MemBlobs) ListBlobs() ([]string, error) {
	m.mu.Lock()
	names := make([]string, 0, len(m.blobs))
	for name := range m.blobs {
		names = append(names, name)
	}
	m.mu.Unlock()
	sort.Strings(names)
	return names, nil
}
