package fleet

import (
	"fmt"
	"testing"
)

// TestRingOwnershipPinned pins the ownership table for a seeded ring: every
// router and every peer must agree on who owns a key without coordination,
// so any change to the hash, the vnode projection, or the walk order is a
// breaking change and must show up here.
func TestRingOwnershipPinned(t *testing.T) {
	ring := NewRing([]string{"p0", "p1", "p2"}, 64)
	cases := []struct {
		key    string
		owners []string
	}{
		{"s1", []string{"p1", "p2"}},
		{"f1", []string{"p2", "p1"}},
		{"alpha", []string{"p0", "p2"}},
		{"0a1b2c3d", []string{"p0", "p2"}},
		{"session-42", []string{"p1", "p0"}},
		{"deadbeef00112233", []string{"p1", "p0"}},
	}
	for _, c := range cases {
		got := ring.Owners(c.key, 2)
		if len(got) != 2 || got[0] != c.owners[0] || got[1] != c.owners[1] {
			t.Errorf("Owners(%q, 2) = %v, want %v", c.key, got, c.owners)
		}
	}
}

// TestRingOrderInsensitive: the ring is a pure function of the peer *set* —
// participants listing peers in different orders still agree.
func TestRingOrderInsensitive(t *testing.T) {
	a := NewRing([]string{"p0", "p1", "p2"}, 64)
	b := NewRing([]string{"p2", "p0", "p1"}, 64)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		ao, bo := a.Owners(k, 3), b.Owners(k, 3)
		for j := range ao {
			if ao[j] != bo[j] {
				t.Fatalf("key %q: order-sensitive ownership %v vs %v", k, ao, bo)
			}
		}
	}
}

// TestRingOwnersDistinct: the replica set never repeats a peer, and n is
// capped at the fleet size.
func TestRingOwnersDistinct(t *testing.T) {
	ring := NewRing([]string{"p0", "p1", "p2"}, 16)
	for i := 0; i < 200; i++ {
		owners := ring.Owners(fmt.Sprintf("k%d", i), 5)
		if len(owners) != 3 {
			t.Fatalf("key k%d: %d owners from a 3-peer ring", i, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key k%d: duplicate owner %s in %v", i, o, owners)
			}
			seen[o] = true
		}
	}
}

// TestRingRebalance is the consistent-hashing dividend: growing 3 → 4 peers
// moves only ~1/4 of the keyspace (pinned exactly for the seeded key set —
// the ring is deterministic, so the count is too), and ownership stays
// roughly balanced before and after.
func TestRingRebalance(t *testing.T) {
	ring3 := NewRing([]string{"p0", "p1", "p2"}, 64)
	ring4 := NewRing([]string{"p0", "p1", "p2", "p3"}, 64)
	const keys = 1000
	moved := 0
	counts3 := map[string]int{}
	counts4 := map[string]int{}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		o3, o4 := ring3.Owners(k, 1)[0], ring4.Owners(k, 1)[0]
		counts3[o3]++
		counts4[o4]++
		if o3 != o4 {
			moved++
		}
	}
	// Deterministic ring + deterministic keys → exact pin. ~1/4 of 1000.
	if moved != 237 {
		t.Errorf("adding p3 moved %d/%d keys, pinned at 237 (~1/4)", moved, keys)
	}
	// Every moved key moved TO the new peer: growth must never shuffle keys
	// between surviving peers (that is what keeps failover's blast radius at
	// 1/N and response bytes unchanged — surviving owners keep their keys).
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		o3, o4 := ring3.Owners(k, 1)[0], ring4.Owners(k, 1)[0]
		if o3 != o4 && o4 != "p3" {
			t.Fatalf("key %q moved %s → %s, not to the new peer", k, o3, o4)
		}
	}
	for peer, n := range counts3 {
		if n < keys/3-150 || n > keys/3+150 {
			t.Errorf("3-ring share for %s: %d/%d, badly unbalanced", peer, n, keys)
		}
	}
	for peer, n := range counts4 {
		if n < keys/4-120 || n > keys/4+120 {
			t.Errorf("4-ring share for %s: %d/%d, badly unbalanced", peer, n, keys)
		}
	}
	// Shrinking is the mirror image: removing a peer hands only its keys to
	// survivors.
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		o4, o3 := ring4.Owners(k, 1)[0], ring3.Owners(k, 1)[0]
		if o4 != "p3" && o3 != o4 {
			t.Fatalf("removing p3 reshuffled key %q from %s to %s", k, o4, o3)
		}
	}
}

// BenchmarkRingOwners measures the routing hot path (satellite: Owners
// previously allocated a map per call; the fixed-slice dedup scan must stay
// allocation-light for every forwarded request and replica walk).
func BenchmarkRingOwners(b *testing.B) {
	ring := NewRing([]string{"peer0", "peer1", "peer2"}, 0)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("fingerprint-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if owners := ring.Owners(keys[i%len(keys)], 2); len(owners) != 2 {
			b.Fatal("short owner list")
		}
	}
}
