package fleet

import (
	"context"
	"net/http"
	"strings"
	"sync/atomic"

	"repro/internal/server"
)

// ReplicatedBlobs is a server.BlobStore that replicates writes to the key's
// ring peers: a session checkpoint or schedule record put on one peer lands
// on all R owners of its key, so a replica can restore the session (or the
// record) after the owner dies. Wiring: each peer's server gets a
// ReplicatedBlobs as Options.Checkpoints, while Options.InternalBlobs stays
// the underlying local store — pushed blobs are stored locally by the
// receiving peer, never re-pushed (no replication loops).
//
// Consistency model: pushes are synchronous but best-effort — a put returns
// once the local write succeeded, whatever the peers said (a dead replica
// costs redundancy, not availability; its breaker-gated pushes stop until it
// revives). Reads are freshest-wins: a session blob is fetched from every
// reachable owner and the one with the highest observation count is
// returned, which is what lets a revived stale owner heal itself (the
// server's refresh-on-gap path) and a replica take over at the last acked
// observation. Schedule-record blobs are immutable (content-addressed), so
// any copy is the right copy.
type ReplicatedBlobs struct {
	local    server.BlobStore
	self     string
	ring     *Ring
	topo     *Topology
	replicas int
	logf     func(format string, args ...any)

	pushes, pushErrs, remoteGets atomic.Int64
}

// ReplicatedBlobsOptions wires a ReplicatedBlobs.
type ReplicatedBlobsOptions struct {
	// Local is this peer's own blob store (disk-backed or store.MemBlobs).
	Local server.BlobStore
	// Self is this peer's ring name: pushes skip it (the local write already
	// happened) and remote reads skip it (the local read already missed).
	Self string
	// Ring and Topology are the shared fleet view.
	Ring *Ring
	Topo *Topology
	// Replicas is the ownership factor R (default 2): every blob lives on
	// the first R ring owners of its key.
	Replicas int
	// Logf, when non-nil, receives push-failure log lines.
	Logf func(format string, args ...any)
}

// NewReplicatedBlobs builds the replication layer for one peer.
func NewReplicatedBlobs(opts ReplicatedBlobsOptions) *ReplicatedBlobs {
	if opts.Replicas <= 0 {
		opts.Replicas = 2
	}
	return &ReplicatedBlobs{
		local: opts.Local, self: opts.Self, ring: opts.Ring, topo: opts.Topo,
		replicas: opts.Replicas, logf: opts.Logf,
	}
}

// keyOfBlob maps a blob name to its ring key: session blobs route by session
// id and request records by fingerprint — the same keys the router routes
// the corresponding requests by, so a blob's owners are exactly the peers
// that serve its traffic.
func keyOfBlob(name string) string {
	if id, ok := strings.CutPrefix(name, "session-"); ok {
		return id
	}
	if fp, ok := strings.CutPrefix(name, "request-"); ok {
		return fp
	}
	return name
}

// PutBlob writes locally, then pushes to the key's other ring owners.
// Returns the local write's error only: replication is redundancy, not a
// durability gate.
func (b *ReplicatedBlobs) PutBlob(name string, data []byte) error {
	if err := b.local.PutBlob(name, data); err != nil {
		return err
	}
	for _, peer := range b.ring.Owners(keyOfBlob(name), b.replicas) {
		if peer == b.self {
			continue
		}
		br := b.topo.Breaker(peer)
		if br == nil || !br.Allow() {
			continue
		}
		b.pushes.Add(1)
		res, err := b.topo.do(context.Background(), peer, http.MethodPut, "/v1/internal/blobs/"+name, data, "")
		if err == nil && res.status != http.StatusOK {
			err = &pushError{peer: peer, status: res.status}
		}
		if err != nil {
			b.pushErrs.Add(1)
			if b.logf != nil {
				b.logf("fleet: pushing blob %s to %s failed: %v", name, peer, err)
			}
		}
	}
	return nil
}

type pushError struct {
	peer   string
	status int
}

func (e *pushError) Error() string {
	return "fleet: peer " + e.peer + " refused blob push with status " + http.StatusText(e.status)
}

// GetBlob reads locally first. On a miss — or, for session blobs, always —
// it consults the key's other ring owners: session checkpoints take the
// freshest copy (highest observation count), immutable request records take
// the first copy found. A remote copy that wins is written back locally, so
// the next read is local.
func (b *ReplicatedBlobs) GetBlob(name string) ([]byte, bool, error) {
	data, ok, err := b.local.GetBlob(name)
	if err != nil {
		return nil, false, err
	}
	session := strings.HasPrefix(name, "session-")
	if ok && !session {
		return data, true, nil
	}
	best, bestObserved, wonRemotely := data, int64(-1), false
	if ok {
		if n, pok := server.SessionCheckpointObserved(data); pok {
			bestObserved = n
		}
	}
	for _, peer := range b.ring.Owners(keyOfBlob(name), b.replicas) {
		if peer == b.self {
			continue
		}
		br := b.topo.Breaker(peer)
		if br == nil || !br.Allow() {
			continue
		}
		b.remoteGets.Add(1)
		res, rerr := b.topo.do(context.Background(), peer, http.MethodGet, "/v1/internal/blobs/"+name, nil, "")
		if rerr != nil || res.status != http.StatusOK {
			continue
		}
		if !session {
			best, wonRemotely = res.body, true
			break // immutable: first copy wins
		}
		if n, pok := server.SessionCheckpointObserved(res.body); pok && n > bestObserved {
			best, bestObserved, wonRemotely = res.body, n, true
		}
	}
	if best == nil {
		return nil, false, nil
	}
	if wonRemotely {
		// Settle the winning copy locally so the next read is local. A racing
		// fresher push could be overwritten here, but session reads are
		// always freshest-wins across replicas, so a stale settle cannot
		// poison anything — it just costs the next read a remote round.
		if err := b.local.PutBlob(name, best); err != nil && b.logf != nil {
			b.logf("fleet: settling blob %s locally failed: %v", name, err)
		}
	}
	return best, true, nil
}

// ListBlobs lists the local store only: boot-time RestoreSessions restores
// what this peer owns; everything else arrives lazily via routed traffic.
func (b *ReplicatedBlobs) ListBlobs() ([]string, error) {
	return b.local.ListBlobs()
}

// PushErrors reports how many replication pushes have failed (operational
// accounting; responses never depend on it).
func (b *ReplicatedBlobs) PushErrors() int64 { return b.pushErrs.Load() }
