package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/leakcheck"
	"repro/internal/retry"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/task"
	"repro/internal/workload"
)

// testPeer is one in-process schedd: a real server over a MemBlobs that
// survives kill/restart cycles, fronted by its ReplicatedBlobs.
type testPeer struct {
	name  string
	blobs *store.MemBlobs
	srv   *server.Server
	ts    *httptest.Server
	alive bool
}

// testFleet stands up N real peers plus the router, all in-process: the same
// wiring cmd/schedd -fleet uses, minus the OS processes.
type testFleet struct {
	t      *testing.T
	ring   *Ring
	topo   *Topology
	peers  map[string]*testPeer
	wrap   func(name string, h http.Handler) http.Handler
	router *Router
	rts    *httptest.Server
}

type testFleetOptions struct {
	hedgeDelay time.Duration
	// wrap, when non-nil, decorates each peer's handler (fault injection).
	wrap func(name string, h http.Handler) http.Handler
}

func newTestFleet(t *testing.T, names []string, opts testFleetOptions) *testFleet {
	t.Helper()
	f := &testFleet{
		t:     t,
		ring:  NewRing(names, 64),
		topo:  NewTopology(nil, TopologyOptions{PeerTimeout: 5 * time.Second}),
		peers: make(map[string]*testPeer),
		wrap:  opts.wrap,
	}
	for _, name := range names {
		f.startPeer(name, store.NewMemBlobs())
	}
	f.router = NewRouter(Options{
		Ring:     f.ring,
		Topology: f.topo,
		Replicas: 2,
		// Fast retries so dead-fleet tests do not stall: real pauses are the
		// policy's business, pinned in internal/retry.
		Retry:      retry.Policy{MaxAttempts: 3, Base: time.Millisecond, Max: 2 * time.Millisecond},
		HedgeDelay: opts.hedgeDelay,
		Sleep:      func(time.Duration) {},
	})
	f.rts = httptest.NewServer(f.router)
	t.Cleanup(func() {
		f.rts.Close()
		f.router.Close()
		for _, p := range f.peers {
			if p.alive {
				p.srv.Close()
				p.ts.Close()
			}
		}
	})
	return f
}

func (f *testFleet) startPeer(name string, blobs *store.MemBlobs) {
	f.t.Helper()
	repl := NewReplicatedBlobs(ReplicatedBlobsOptions{
		Local: blobs, Self: name, Ring: f.ring, Topo: f.topo, Replicas: 2,
	})
	srv := server.New(server.Options{Checkpoints: repl, InternalBlobs: blobs})
	if _, err := srv.RestoreSessions(context.Background()); err != nil {
		f.t.Fatal(err)
	}
	h := srv.Handler()
	if f.wrap != nil {
		h = f.wrap(name, h)
	}
	ts := httptest.NewServer(h)
	f.peers[name] = &testPeer{name: name, blobs: blobs, srv: srv, ts: ts, alive: true}
	f.topo.SetURL(name, ts.URL)
}

// kill takes a peer down hard: in-flight connections die mid-request, the
// address stops answering. The MemBlobs survives for restart.
func (f *testFleet) kill(name string) {
	p := f.peers[name]
	p.srv.Close()
	p.ts.CloseClientConnections()
	p.ts.Close()
	p.alive = false
}

// restart revives a peer over its surviving blob store on a fresh address.
func (f *testFleet) restart(name string) {
	f.startPeer(name, f.peers[name].blobs)
}

func (f *testFleet) stats() *StatsResponse {
	f.t.Helper()
	_, body, _ := doReq(f.t, http.MethodGet, f.rts.URL+"/v1/stats", "")
	var st StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		f.t.Fatalf("stats: %v in %s", err, body)
	}
	return &st
}

func (f *testFleet) sumPeers(pick func(*PeerStats) int64) int64 {
	var n int64
	for i := range f.stats().Peers {
		n += pick(&f.stats().Peers[i])
	}
	return n
}

func doReq(t *testing.T, method, url, body string) (int, string, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header
}

// submitBody is a tiny two-task set; i perturbs the WCET so distinct i are
// distinct fingerprints.
func submitBody(i int) string {
	return fmt.Sprintf(`{"tasks":[{"name":"a","period_ms":10,"wcec":%g,"acec":2,"bcec":1,"ceff":1},{"name":"b","period_ms":20,"wcec":6,"acec":3,"bcec":2,"ceff":1}]}`, 3+0.25*float64(i))
}

// fleetSessionRows mirrors the server package's session test helper: a seeded
// feasible set, its create body with a caller-chosen session id, and a
// deterministic observation stream.
func fleetSessionRows(t *testing.T, seed uint64, id string, n int) (string, [][]float64) {
	t.Helper()
	rng := stats.NewRNG(seed)
	set, err := workload.RandomFeasible(rng, workload.RandomConfig{N: 3, Ratio: 0.1, Utilization: 0.7}, 50,
		func(s *task.Set) bool { return core.Feasible(s, core.Config{}) == nil })
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(struct {
		SessionID string      `json:"session_id,omitempty"`
		Tasks     []task.Task `json:"tasks"`
	}{id, set.Tasks})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := workload.NewScenario(set, workload.ScenarioConfig{Kind: workload.ModeSwitch, Seed: 9, SwitchEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := set.Instances()
	if err != nil {
		t.Fatal(err)
	}
	taskOf := make([]int, len(ins))
	for i := range ins {
		taskOf[i] = ins[i].TaskIndex
	}
	rows, err := sc.Actuals(n, taskOf)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), rows
}

func observeAt(t *testing.T, rows [][]float64, at int64) string {
	t.Helper()
	b, err := json.Marshal(server.ObserveRequest{Hyperperiods: rows, At: &at})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFleetByteIdentity is the routing half of the contract: fleets of 1, 2
// and 3 peers answer submit, get and compare byte-identically to one plain
// schedd, for every body — routing choices are invisible in response bytes.
func TestFleetByteIdentity(t *testing.T) {
	leakcheck.Check(t)
	refSrv := server.New(server.Options{})
	refTS := httptest.NewServer(refSrv.Handler())
	t.Cleanup(func() { refTS.Close(); refSrv.Close() })

	type want struct{ submit, get, compare string }
	wants := make([]want, 4)
	for i := range wants {
		_, sub, _ := doReq(t, http.MethodPost, refTS.URL+"/v1/schedules", submitBody(i))
		var sr server.ScheduleResponse
		if err := json.Unmarshal([]byte(sub), &sr); err != nil {
			t.Fatalf("reference submit %d: %v in %s", i, err, sub)
		}
		_, get, _ := doReq(t, http.MethodGet, refTS.URL+"/v1/schedules/"+sr.Fingerprint, "")
		_, cmp, _ := doReq(t, http.MethodPost, refTS.URL+"/v1/compare", submitBody(i))
		wants[i] = want{sub, get, cmp}
	}

	for _, n := range []int{1, 2, 3} {
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("p%d", i)
		}
		f := newTestFleet(t, names, testFleetOptions{})
		for i, w := range wants {
			code, sub, _ := doReq(t, http.MethodPost, f.rts.URL+"/v1/schedules", submitBody(i))
			if code != http.StatusOK || sub != w.submit {
				t.Fatalf("fleet(%d) submit %d: %d, bytes diverged from reference\n got %s\nwant %s", n, i, code, sub, w.submit)
			}
			var sr server.ScheduleResponse
			if err := json.Unmarshal([]byte(sub), &sr); err != nil {
				t.Fatal(err)
			}
			code, get, _ := doReq(t, http.MethodGet, f.rts.URL+"/v1/schedules/"+sr.Fingerprint, "")
			if code != http.StatusOK || get != w.get {
				t.Fatalf("fleet(%d) get %d: %d, bytes diverged\n got %s\nwant %s", n, i, code, get, w.get)
			}
			code, cmp, _ := doReq(t, http.MethodPost, f.rts.URL+"/v1/compare", submitBody(i))
			if code != http.StatusOK || cmp != w.compare {
				t.Fatalf("fleet(%d) compare %d: %d, bytes diverged\n got %s\nwant %s", n, i, code, cmp, w.compare)
			}
		}
		// Invalid bodies draw the peers' deterministic 4xx through the router
		// too (keyed by raw-body hash — any peer answers identically).
		refCode, refErr, _ := doReq(t, http.MethodPost, refTS.URL+"/v1/schedules", `{"tasks":[]}`)
		code, gotErr, _ := doReq(t, http.MethodPost, f.rts.URL+"/v1/schedules", `{"tasks":[]}`)
		if code != refCode || gotErr != refErr {
			t.Fatalf("fleet(%d) invalid body: %d %s, reference %d %s", n, code, gotErr, refCode, refErr)
		}
	}
}

// TestFleetFailoverDeadPeer kills a key's owner and shows the replica serving
// the same bytes — replication plus byte-determinism make the owner's death
// invisible to clients.
func TestFleetFailoverDeadPeer(t *testing.T) {
	leakcheck.Check(t)
	f := newTestFleet(t, []string{"p0", "p1", "p2"}, testFleetOptions{})

	body := submitBody(1)
	code, want, _ := doReq(t, http.MethodPost, f.rts.URL+"/v1/schedules", body)
	if code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, want)
	}
	var sr server.ScheduleResponse
	if err := json.Unmarshal([]byte(want), &sr); err != nil {
		t.Fatal(err)
	}
	_, wantGet, _ := doReq(t, http.MethodGet, f.rts.URL+"/v1/schedules/"+sr.Fingerprint, "")

	owners := f.ring.Owners(sr.Fingerprint, 2)
	f.kill(owners[0])

	code, got, _ := doReq(t, http.MethodPost, f.rts.URL+"/v1/schedules", body)
	if code != http.StatusOK || got != want {
		t.Fatalf("failover submit: %d, bytes diverged\n got %s\nwant %s", code, got, want)
	}
	code, gotGet, _ := doReq(t, http.MethodGet, f.rts.URL+"/v1/schedules/"+sr.Fingerprint, "")
	if code != http.StatusOK || gotGet != wantGet {
		t.Fatalf("failover get: %d, bytes diverged\n got %s\nwant %s", code, gotGet, wantGet)
	}
	if n := f.sumPeers(func(p *PeerStats) int64 { return p.Failovers }); n == 0 {
		t.Error("owner died and a replica served, but no failover was counted")
	}
	if n := f.sumPeers(func(p *PeerStats) int64 { return p.Errors }); n == 0 {
		t.Error("talking to a dead peer counted no transport errors")
	}
}

// TestFleet503RetryAfter is the satellite regression: when the whole replica
// set is dead, the router's own 503 must carry Retry-After like every other
// 503 in the system — clients' backoff logic keys off it.
func TestFleet503RetryAfter(t *testing.T) {
	leakcheck.Check(t)
	f := newTestFleet(t, []string{"p0", "p1"}, testFleetOptions{})
	f.kill("p0")
	f.kill("p1")

	code, body, hdr := doReq(t, http.MethodPost, f.rts.URL+"/v1/schedules", submitBody(0))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("dead fleet answered %d %s, want 503", code, body)
	}
	if ra := hdr.Get("Retry-After"); ra == "" {
		t.Error("fleet-originated 503 is missing Retry-After")
	}
	if !strings.Contains(body, `"error"`) {
		t.Errorf("fleet 503 body %q is not the standard error shape", body)
	}
	if f.stats().Fleet503s == 0 {
		t.Error("fleet-originated 503 not counted in stats")
	}
}

// TestHedgedReadNoLeak: a slow owner does not slow immutable reads — the
// hedge asks a replica after HedgeDelay and the first answer wins, with
// identical bytes. leakcheck pins that the abandoned in-flight request's
// goroutine winds down.
func TestHedgedReadNoLeak(t *testing.T) {
	leakcheck.Check(t)
	var slowPeer atomic.Value // string: peer whose schedule GETs stall
	slowPeer.Store("")
	f := newTestFleet(t, []string{"p0", "p1", "p2"}, testFleetOptions{
		hedgeDelay: 10 * time.Millisecond,
		wrap: func(name string, h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if slowPeer.Load() == name && r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/schedules/") {
					select {
					case <-time.After(2 * time.Second):
					case <-r.Context().Done():
						return
					}
				}
				h.ServeHTTP(w, r)
			})
		},
	})

	code, sub, _ := doReq(t, http.MethodPost, f.rts.URL+"/v1/schedules", submitBody(2))
	if code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, sub)
	}
	var sr server.ScheduleResponse
	if err := json.Unmarshal([]byte(sub), &sr); err != nil {
		t.Fatal(err)
	}
	_, want, _ := doReq(t, http.MethodGet, f.rts.URL+"/v1/schedules/"+sr.Fingerprint, "")

	slowPeer.Store(f.ring.Owners(sr.Fingerprint, 2)[0])
	start := time.Now()
	code, got, _ := doReq(t, http.MethodGet, f.rts.URL+"/v1/schedules/"+sr.Fingerprint, "")
	elapsed := time.Since(start)
	if code != http.StatusOK || got != want {
		t.Fatalf("hedged get: %d, bytes diverged\n got %s\nwant %s", code, got, want)
	}
	if elapsed >= 2*time.Second {
		t.Errorf("hedged get took %v — waited out the slow owner instead of hedging", elapsed)
	}
	if n := f.sumPeers(func(p *PeerStats) int64 { return p.Hedges }); n == 0 {
		t.Error("slow owner, fast answer, but no hedge was counted")
	}
	slowPeer.Store("")
}

// TestSessionTakeoverThroughRouter is failover for stateful streams: the
// session's owner dies mid-stream, a replica restores from the replicated
// checkpoint and continues it, the owner revives stale and heals — and every
// response is byte-identical to an uninterrupted single-node run.
func TestSessionTakeoverThroughRouter(t *testing.T) {
	leakcheck.Check(t)
	// "s1" is pinned (TestRingOwnershipPinned) to owner p1, replica p2.
	const id = "s1"
	body, rows := fleetSessionRows(t, 4, id, 30)
	batches := [][2]int{{0, 10}, {10, 20}, {20, 30}}

	refSrv := server.New(server.Options{})
	refTS := httptest.NewServer(refSrv.Handler())
	t.Cleanup(func() { refTS.Close(); refSrv.Close() })
	if code, resp, _ := doReq(t, http.MethodPost, refTS.URL+"/v1/sessions", body); code != http.StatusOK {
		t.Fatalf("reference create: %d %s", code, resp)
	}
	var want []string
	for i, b := range batches {
		code, resp, _ := doReq(t, http.MethodPost, refTS.URL+"/v1/sessions/"+id+"/observe", observeAt(t, rows[b[0]:b[1]], int64(b[0])))
		if code != http.StatusOK {
			t.Fatalf("reference batch %d: %d %s", i, code, resp)
		}
		want = append(want, resp)
	}

	f := newTestFleet(t, []string{"p0", "p1", "p2"}, testFleetOptions{})
	if code, resp, _ := doReq(t, http.MethodPost, f.rts.URL+"/v1/sessions", body); code != http.StatusOK {
		t.Fatalf("fleet create: %d %s", code, resp)
	}
	observe := func(i int) (int, string) {
		b := batches[i]
		code, resp, _ := doReq(t, http.MethodPost, f.rts.URL+"/v1/sessions/"+id+"/observe", observeAt(t, rows[b[0]:b[1]], int64(b[0])))
		return code, resp
	}
	// Batch 1 lands on the owner.
	if code, resp := observe(0); code != http.StatusOK || resp != want[0] {
		t.Fatalf("batch 1: %d, bytes diverged\n got %s\nwant %s", code, resp, want[0])
	}
	// Owner dies; the replica restores from the replicated checkpoint and
	// continues the stream at the exact acked position.
	f.kill("p1")
	if code, resp := observe(1); code != http.StatusOK || resp != want[1] {
		t.Fatalf("takeover batch 2: %d, bytes diverged\n got %s\nwant %s", code, resp, want[1])
	}
	if n := f.sumPeers(func(p *PeerStats) int64 { return p.Takeovers }); n == 0 {
		t.Error("replica continued a dead owner's session, but no takeover was counted")
	}
	// Owner revives with a stale local checkpoint; boot-time restore reads
	// through ReplicatedBlobs (freshest-wins), so batch 3 applies cleanly.
	f.restart("p1")
	if code, resp := observe(2); code != http.StatusOK || resp != want[2] {
		t.Fatalf("post-restart batch 3: %d, bytes diverged\n got %s\nwant %s", code, resp, want[2])
	}
	// Idempotent replay of the final acked batch, via whichever peer the
	// router picks: stored bytes, no double-fold.
	if code, resp := observe(2); code != http.StatusOK || resp != want[2] {
		t.Fatalf("replay: %d %q, want the acked bytes", code, resp)
	}
	// Status reads agree with the reference position.
	code, resp, _ := doReq(t, http.MethodGet, f.rts.URL+"/v1/sessions/"+id, "")
	if code != http.StatusOK {
		t.Fatalf("status: %d %s", code, resp)
	}
	var st server.SessionStatusResponse
	if err := json.Unmarshal([]byte(resp), &st); err != nil {
		t.Fatal(err)
	}
	if st.Observed != 30 {
		t.Fatalf("fleet sees %d observations, want 30", st.Observed)
	}
}

// TestRouterSessionIDInjection: creates without a session_id get a
// router-allocated one, so the ring key exists before routing and the create
// stays a pure function of the (rewritten) body.
func TestRouterSessionIDInjection(t *testing.T) {
	leakcheck.Check(t)
	f := newTestFleet(t, []string{"p0", "p1"}, testFleetOptions{})
	body, _ := fleetSessionRows(t, 6, "", 0)
	code, resp, _ := doReq(t, http.MethodPost, f.rts.URL+"/v1/sessions", body)
	if code != http.StatusOK {
		t.Fatalf("create: %d %s", code, resp)
	}
	var created server.SessionResponse
	if err := json.Unmarshal([]byte(resp), &created); err != nil {
		t.Fatal(err)
	}
	if created.SessionID != "f1" {
		t.Fatalf("injected id %q, want the router's f1", created.SessionID)
	}
	// The session is addressable through the fleet by the injected id.
	code, resp, _ = doReq(t, http.MethodGet, f.rts.URL+"/v1/sessions/f1", "")
	if code != http.StatusOK {
		t.Fatalf("status by injected id: %d %s", code, resp)
	}
}
