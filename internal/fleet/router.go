package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/retry"
	"repro/internal/server"
	"repro/internal/stats"
)

// Router is the fleet front end: an http.Handler that maps each request to
// its ring key (schedule fingerprint or session id), forwards it to the
// key's owner, and walks the replicas on failure — breaker-gated, with
// seeded-jitter retry passes between full walks and hedged reads for
// content-addressed GETs. It serves the same API surface as one schedd, so
// clients cannot tell a fleet from a node (except through /v1/stats, which
// reports per-peer routing counters instead of solver counters).
//
// Determinism: the router never builds a response body of its own except
// the fleet-originated 503 (every replica dead or shedding) — everything
// else is a peer's bytes relayed verbatim, and every peer answers every
// request identically, so routing choices are invisible in response bytes.
type Router struct {
	opts   Options
	ring   *Ring
	topo   *Topology
	policy retry.Policy
	mux    *http.ServeMux

	rngMu sync.Mutex
	rng   *stats.RNG

	sessionSeq atomic.Int64
	fleet503s  atomic.Int64
	counters   map[string]*peerCounters
}

type peerCounters struct {
	forwards, hedges, failovers, takeovers, errors atomic.Int64
}

// Options configures a Router. Ring and Topology are required and are
// typically shared with each peer's ReplicatedBlobs, so routing and
// replication agree on ownership and on peer health.
type Options struct {
	Ring     *Ring
	Topology *Topology
	// Replicas is the ownership factor R (default 2): a request may be
	// served by any of its key's first R ring owners.
	Replicas int
	// HedgeDelay is how long a hedged read waits on the owner before also
	// asking the next replica (default 50ms).
	HedgeDelay time.Duration
	// Retry paces the passes over the replica set when every member failed
	// or shed (retry.Policy zero-value defaults), and RetrySeed seeds the
	// jitter stream.
	Retry     retry.Policy
	RetrySeed uint64
	// Starts and MaxTasks are the fingerprint defaults and MUST match the
	// peers' server Options — routing keys on the same canonicalization the
	// peers fingerprint with.
	Starts   int
	MaxTasks int
	// Sleep is the between-pass pause hook (nil = time.Sleep); tests swap
	// it to keep chaos runs fast.
	Sleep func(time.Duration)
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// NewRouter builds the front end over an existing ring and topology.
func NewRouter(opts Options) *Router {
	if opts.Replicas <= 0 {
		opts.Replicas = 2
	}
	if opts.HedgeDelay <= 0 {
		opts.HedgeDelay = 50 * time.Millisecond
	}
	r := &Router{
		opts:     opts,
		ring:     opts.Ring,
		topo:     opts.Topology,
		policy:   opts.Retry,
		rng:      stats.NewRNG(opts.RetrySeed),
		counters: make(map[string]*peerCounters),
	}
	for _, name := range opts.Ring.Peers() {
		r.counters[name] = &peerCounters{}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedules", r.handleSubmit)
	mux.HandleFunc("GET /v1/schedules/{fp}", r.handleScheduleGet)
	mux.HandleFunc("POST /v1/compare", r.handleSubmit) // same key derivation
	mux.HandleFunc("POST /v1/sessions", r.handleSessionCreate)
	mux.HandleFunc("POST /v1/sessions/{id}/observe", r.handleSessionPath)
	mux.HandleFunc("GET /v1/sessions/{id}", r.handleSessionPath)
	mux.HandleFunc("GET /v1/stats", r.handleStats)
	mux.HandleFunc("GET /v1/healthz", r.handleHealthz)
	r.mux = mux
	return r
}

func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.mux.ServeHTTP(w, req)
}

// Close drops the topology's idle peer connections. Call when done with a
// router whose topology is not otherwise owned.
func (r *Router) Close() { r.topo.Close() }

func (r *Router) sleep(d time.Duration) {
	if r.opts.Sleep != nil {
		r.opts.Sleep(d)
		return
	}
	time.Sleep(d)
}

// readBody drains the request body under the same cap the peers decode with.
func readBody(w http.ResponseWriter, req *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 4<<20))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("reading request: %v", err), 0)
		return nil, false
	}
	return body, true
}

// handleSubmit routes POST /v1/schedules and /v1/compare by the canonical
// fingerprint — the same content address the serving peer will answer with —
// so repeat submissions of one task set land on the peers that hold its
// solve and its replicated record. Bodies that do not canonicalize draw the
// same deterministic 4xx from every peer; they are keyed by a raw-body hash
// just to pick one.
func (r *Router) handleSubmit(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	key := "raw-" + strconv.FormatUint(hash64(string(body)), 16)
	var sr server.SubmitRequest
	// Lenient decode for keying only — the peer's strict decode is the
	// arbiter of validity, and invalid bodies answer identically everywhere.
	if json.Unmarshal(body, &sr) == nil {
		if fp, fok := server.SubmitFingerprint(&sr, r.opts.Starts, r.opts.MaxTasks); fok {
			key = fp
		}
	}
	r.route(w, req, key, req.URL.Path, body, false, false)
}

func (r *Router) handleScheduleGet(w http.ResponseWriter, req *http.Request) {
	fp := req.PathValue("fp")
	r.route(w, req, fp, "/v1/schedules/"+fp, nil, true, false)
}

// handleSessionCreate fixes the session's identity before any peer sees the
// request: a body without a session_id gets one injected (router allocation
// order, "f1", "f2", …), because the id is the ring key — it must exist
// prior to routing, and it must not depend on which peer serves the create.
func (r *Router) handleSessionCreate(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	key := "raw-" + strconv.FormatUint(hash64(string(body)), 16)
	var sr server.SessionRequest
	if json.Unmarshal(body, &sr) == nil && len(sr.Tasks) > 0 {
		if sr.SessionID == "" {
			sr.SessionID = fmt.Sprintf("f%d", r.sessionSeq.Add(1))
			rewritten, err := json.Marshal(&sr)
			if err == nil {
				body = rewritten
			}
		}
		key = sr.SessionID
	}
	r.route(w, req, key, "/v1/sessions", body, false, true)
}

func (r *Router) handleSessionPath(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	path := "/v1/sessions/" + id
	var body []byte
	if req.Method == http.MethodPost {
		path += "/observe"
		var ok bool
		if body, ok = readBody(w, req); !ok {
			return
		}
	}
	r.route(w, req, id, path, body, false, true)
}

// route is the forwarding engine: walk the key's replica set in ownership
// order (or hedged, for immutable reads), retry whole passes under the
// seeded backoff policy when every member failed or shed, and relay the
// winning peer's bytes verbatim. session marks the session-stateful paths,
// whose non-owner serves count as takeovers rather than failovers.
func (r *Router) route(w http.ResponseWriter, req *http.Request, key, path string, body []byte, hedge, session bool) {
	// One trace identity per request, fixed before the first hop: honour a
	// caller-supplied X-Trace-Id, mint one otherwise, echo it, and forward
	// it with every peer attempt — owner, hedge, and failover alike — so a
	// request's whole fleet journey shares one id.
	tid := req.Header.Get(obs.TraceHeader)
	if tid == "" {
		tid = obs.NewTraceID()
	}
	w.Header().Set(obs.TraceHeader, tid)
	owners := r.ring.Owners(key, r.opts.Replicas)
	if len(owners) == 0 {
		writeJSONError(w, http.StatusServiceUnavailable, "fleet: no peers configured", r.retryAfterSecs())
		r.fleet503s.Add(1)
		return
	}
	ctx := req.Context()
	p := r.policy
	maxPasses := p.MaxAttempts
	if maxPasses <= 0 {
		maxPasses = 5
	}
	var last *peerResult
	var retryAfter time.Duration
	for pass := 1; ; pass++ {
		var res *peerResult
		var idx int
		if hedge {
			res, idx = r.tryHedged(ctx, owners, req.Method, path, body, tid)
		} else {
			res, idx = r.trySequential(ctx, owners, req.Method, path, body, tid)
		}
		if res != nil && res.status != http.StatusServiceUnavailable {
			r.noteServed(owners[idx], idx, session)
			writePeerResult(w, res)
			return
		}
		if res != nil {
			last = res
			if secs, err := strconv.Atoi(res.header.Get("Retry-After")); err == nil && secs > 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		if pass >= maxPasses || ctx.Err() != nil {
			break
		}
		r.rngMu.Lock()
		d := p.Delay(pass, retryAfter, r.rng)
		r.rngMu.Unlock()
		r.sleep(d)
	}
	if last != nil {
		// Every replica shed: relay the last 503 (its Retry-After rides
		// along — writePeerResult preserves it, defaulting if absent).
		writePeerResult(w, last)
		return
	}
	// Fleet-originated 503: every replica dead or breaker-tripped. Carries
	// Retry-After like every other 503 in the system — breakers half-open
	// after their cooldown, so the condition clears.
	r.fleet503s.Add(1)
	writeJSONError(w, http.StatusServiceUnavailable,
		fmt.Sprintf("fleet: no replica of %d reachable for this key", len(owners)), r.retryAfterSecs())
}

// trySequential walks the replica set in ownership order: first healthy
// peer with a non-503 answer wins. 503s are remembered (the last one is
// relayed if the whole pass fails); transport errors feed the breaker via
// Topology.do and move on.
func (r *Router) trySequential(ctx context.Context, owners []string, method, path string, body []byte, traceID string) (*peerResult, int) {
	var last *peerResult
	lastIdx := -1
	for i, peer := range owners {
		br := r.topo.Breaker(peer)
		if br == nil || !br.Allow() {
			continue
		}
		res, err := r.topo.do(ctx, peer, method, path, body, traceID)
		if err != nil {
			r.counters[peer].errors.Add(1)
			continue
		}
		if res.status == http.StatusServiceUnavailable {
			last, lastIdx = res, i
			continue
		}
		return res, i
	}
	return last, lastIdx
}

// tryHedged races the replica set for an immutable read: the owner is asked
// first, and each HedgeDelay without an answer (or any failed answer) adds
// the next replica to the race. First non-503 answer wins; stragglers are
// canceled. The results channel is buffered to the launch count and every
// goroutine's only blocking op is the breaker-recorded HTTP call under the
// canceled-on-return context, so no goroutine outlives the call
// (leakcheck-pinned by TestHedgedReadNoLeak).
func (r *Router) tryHedged(ctx context.Context, owners []string, method, path string, body []byte, traceID string) (*peerResult, int) {
	allowed := make([]int, 0, len(owners))
	for i, peer := range owners {
		if br := r.topo.Breaker(peer); br != nil && br.Allow() {
			allowed = append(allowed, i)
		}
	}
	if len(allowed) == 0 {
		return nil, -1
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type hedgeResult struct {
		res *peerResult
		err error
		idx int
	}
	results := make(chan hedgeResult, len(allowed))
	launched, pending := 0, 0
	launch := func() {
		idx := allowed[launched]
		if launched > 0 {
			r.counters[owners[idx]].hedges.Add(1)
		}
		launched++
		pending++
		go func() {
			res, err := r.topo.do(hctx, owners[idx], method, path, body, traceID)
			results <- hedgeResult{res, err, idx}
		}()
	}
	launch()
	timer := time.NewTimer(r.opts.HedgeDelay)
	defer timer.Stop()
	var last *peerResult
	lastIdx := -1
	for {
		if pending == 0 {
			if launched == len(allowed) {
				return last, lastIdx
			}
			launch() // everything in flight resolved badly: hedge immediately
		}
		select {
		case h := <-results:
			pending--
			if h.err != nil {
				r.counters[owners[h.idx]].errors.Add(1)
			} else if h.res.status == http.StatusServiceUnavailable {
				last, lastIdx = h.res, h.idx
			} else {
				return h.res, h.idx
			}
		case <-timer.C:
			if launched < len(allowed) {
				launch()
				timer.Reset(r.opts.HedgeDelay)
			}
		case <-ctx.Done():
			return last, lastIdx
		}
	}
}

// noteServed books a successful forward: a non-owner serve is a failover
// (or, on the session-stateful paths, a takeover — a replica answering for
// a session it did not create).
func (r *Router) noteServed(peer string, idx int, session bool) {
	c := r.counters[peer]
	c.forwards.Add(1)
	if idx > 0 {
		if session {
			c.takeovers.Add(1)
		} else {
			c.failovers.Add(1)
		}
	}
}

// retryAfterSecs is the Retry-After for fleet-originated 503s. The
// condition clears when a breaker half-opens or a peer revives, so 1s — the
// system-wide 503 default — is the honest hint.
func (r *Router) retryAfterSecs() int {
	return 1
}

// writePeerResult relays a peer's answer verbatim: status, body bytes, and
// the headers the contract cares about. A relayed 503 always carries
// Retry-After, even if the peer's somehow did not.
func writePeerResult(w http.ResponseWriter, res *peerResult) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if res.status == http.StatusServiceUnavailable {
		ra := res.header.Get("Retry-After")
		if ra == "" {
			ra = "1"
		}
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// writeJSONError is the router's own error shape — the same {"error": ...}
// the peers emit, so clients parse one shape everywhere.
func writeJSONError(w http.ResponseWriter, status int, msg string, retryAfterSecs int) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable {
		if retryAfterSecs <= 0 {
			retryAfterSecs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs))
	}
	w.WriteHeader(status)
	buf, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	w.Write(append(buf, '\n'))
}

// PeerStats is one peer's routing accounting in the fleet /v1/stats body.
type PeerStats struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// PeerState is the peer's circuit-breaker position: closed, open, or
	// half-open.
	PeerState string `json:"peer_state"`
	Trips     int64  `json:"trips"`
	Recloses  int64  `json:"recloses"`
	// Forwards counts requests this peer served; Hedges, hedged reads
	// launched at it; Failovers, non-owner serves; Takeovers, non-owner
	// serves on session paths (a replica continuing a dead owner's stream);
	// Errors, transport-level failures talking to it.
	Forwards  int64 `json:"forwards"`
	Hedges    int64 `json:"hedges"`
	Failovers int64 `json:"failovers"`
	Takeovers int64 `json:"takeovers"`
	Errors    int64 `json:"errors"`
}

// StatsResponse is the router's /v1/stats body. Operational state — exempt
// from the byte-determinism contract like every stats endpoint.
type StatsResponse struct {
	Replicas  int         `json:"replicas"`
	Vnodes    int         `json:"vnodes"`
	Fleet503s int64       `json:"fleet_503s"`
	Peers     []PeerStats `json:"peers"`
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	resp := &StatsResponse{
		Replicas:  r.opts.Replicas,
		Vnodes:    r.ring.vnodes,
		Fleet503s: r.fleet503s.Load(),
	}
	for _, name := range r.ring.Peers() {
		c := r.counters[name]
		snap := r.topo.Breaker(name).Snapshot()
		resp.Peers = append(resp.Peers, PeerStats{
			Name:      name,
			URL:       r.topo.URL(name),
			PeerState: snap.State,
			Trips:     snap.Trips,
			Recloses:  snap.Recloses,
			Forwards:  c.forwards.Load(),
			Hedges:    c.hedges.Load(),
			Failovers: c.failovers.Load(),
			Takeovers: c.takeovers.Load(),
			Errors:    c.errors.Load(),
		})
	}
	buf, _ := json.Marshal(resp)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(buf, '\n'))
}

// RegisterMetrics bridges the router's routing counters into a metric
// registry (typically the co-located server's, so one /metrics scrape
// covers both the solver and the fleet front end). Scrape-time reads of
// the same atomics /v1/stats reports — the surfaces cannot disagree.
func (r *Router) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("schedd_fleet_503s_total", "Fleet-originated 503s (every replica dead or shedding).", r.fleet503s.Load)
	for _, name := range r.ring.Peers() {
		c := r.counters[name]
		peer := obs.L("peer", name)
		reg.CounterFunc("schedd_fleet_forwards_total", "Requests served by this peer.", c.forwards.Load, peer)
		reg.CounterFunc("schedd_fleet_hedges_total", "Hedged reads launched at this peer.", c.hedges.Load, peer)
		reg.CounterFunc("schedd_fleet_failovers_total", "Non-owner serves by this peer (stateless paths).", c.failovers.Load, peer)
		reg.CounterFunc("schedd_fleet_takeovers_total", "Non-owner serves on session paths (replica continuing a dead owner's stream).", c.takeovers.Load, peer)
		reg.CounterFunc("schedd_fleet_errors_total", "Transport-level failures talking to this peer.", c.errors.Load, peer)
		br := r.topo.Breaker(name)
		reg.GaugeFunc("schedd_fleet_peer_state", "Peer circuit-breaker position: 0 closed, 1 open, 2 half-open.", func() float64 {
			switch br.Snapshot().State {
			case "open":
				return 1
			case "half-open":
				return 2
			default:
				return 0
			}
		}, peer)
	}
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(`{"status":"ok"}` + "\n"))
}
