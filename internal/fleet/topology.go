package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Topology is the live view of the fleet's peers: where each one currently
// listens (URLs are swappable — a restarted peer comes back on a new port)
// and how healthy it looks (one fault.Breaker per peer, shared by the
// router's forwards and ReplicatedBlobs' pushes, so evidence from either
// path trips the other's traffic away from a dead peer).
type Topology struct {
	mu    sync.Mutex
	peers map[string]*peerState

	client  *http.Client
	timeout time.Duration
}

type peerState struct {
	url     atomic.Value // string
	breaker *fault.Breaker
}

// TopologyOptions configures NewTopology. Zero values select defaults.
type TopologyOptions struct {
	// BreakerThreshold and BreakerCooldown parameterise each peer's circuit
	// breaker (fault.NewBreaker defaults: 5 failures, 5s cooldown).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// PeerTimeout bounds every request to a peer (default 2s).
	PeerTimeout time.Duration
	// Client is the HTTP client used for all peer traffic (default: a
	// dedicated client, so Close can drop its idle connections).
	Client *http.Client
}

// NewTopology builds the peer table. urls maps peer name → base URL
// ("http://host:port"); peers absent from urls start unreachable until
// SetURL names them.
func NewTopology(urls map[string]string, opts TopologyOptions) *Topology {
	if opts.PeerTimeout <= 0 {
		opts.PeerTimeout = 2 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{}}
	}
	t := &Topology{
		peers:   make(map[string]*peerState, len(urls)),
		client:  client,
		timeout: opts.PeerTimeout,
	}
	for name, url := range urls {
		ps := &peerState{breaker: fault.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown)}
		ps.url.Store(url)
		t.peers[name] = ps
	}
	return t
}

// SetURL repoints a peer — the restart path: a revived peer listens on a new
// address, and traffic follows without rebuilding the ring.
func (t *Topology) SetURL(name, url string) {
	t.mu.Lock()
	ps := t.peers[name]
	if ps == nil {
		ps = &peerState{breaker: fault.NewBreaker(0, 0)}
		t.peers[name] = ps
	}
	t.mu.Unlock()
	ps.url.Store(url)
}

// URL returns the peer's current base URL ("" when unknown).
func (t *Topology) URL(name string) string {
	if ps := t.peer(name); ps != nil {
		if u, ok := ps.url.Load().(string); ok {
			return u
		}
	}
	return ""
}

// Breaker returns the peer's circuit breaker (nil for unknown peers).
func (t *Topology) Breaker(name string) *fault.Breaker {
	if ps := t.peer(name); ps != nil {
		return ps.breaker
	}
	return nil
}

func (t *Topology) peer(name string) *peerState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peers[name]
}

// Close releases the topology's idle peer connections (only when the client
// was Topology-owned). Goroutine hygiene for leakcheck-guarded tests.
func (t *Topology) Close() {
	t.client.CloseIdleConnections()
}

// peerResult is one peer's complete HTTP answer.
type peerResult struct {
	status int
	body   []byte
	header http.Header
}

// do sends one request to the named peer under the topology timeout and
// records the transport outcome on its breaker (an HTTP answer of any status
// is breaker success — the peer is alive; only transport-level failures are
// evidence of death). Callers must have checked Allow.
// do forwards one request to a peer. traceID, when non-empty, rides along
// as the X-Trace-Id header so a request keeps one identity across every
// hop of the fleet (purely observational — peers never read it into any
// response byte).
func (t *Topology) do(ctx context.Context, name, method, path string, body []byte, traceID string) (*peerResult, error) {
	ps := t.peer(name)
	if ps == nil {
		return nil, fmt.Errorf("fleet: unknown peer %q", name)
	}
	base, _ := ps.url.Load().(string)
	if base == "" {
		err := fmt.Errorf("fleet: peer %q has no address", name)
		ps.breaker.Record(err)
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, t.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Marks the request as already routed: a peer in -fleet mode serves it
	// locally instead of re-forwarding (loop prevention).
	req.Header.Set("X-Fleet-Forwarded", "1")
	if traceID != "" {
		req.Header.Set(obs.TraceHeader, traceID)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		ps.breaker.Record(err)
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		ps.breaker.Record(err)
		return nil, err
	}
	ps.breaker.Record(nil)
	return &peerResult{status: resp.StatusCode, body: b, header: resp.Header}, nil
}
