package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/retry"
	"repro/internal/server"
	"repro/internal/stats"
)

// TestFleetChaos is the PR's pinned contract: a 3-peer R=2 fleet with one
// peer killed and revived mid-run answers every request with 200 or 503, and
// every non-degraded 200 — concurrent submits and an adaptive session's
// observe stream alike — is byte-identical to a single-node fault-free
// reference. The session's owner is the kill target, so the stream provably
// continues on a replica (takeovers > 0) with an identical decision stream.
func TestFleetChaos(t *testing.T) {
	leakcheck.Check(t)

	// Single-node fault-free reference for everything the chaos run answers.
	refSrv := server.New(server.Options{})
	refTS := httptest.NewServer(refSrv.Handler())
	t.Cleanup(func() { refTS.Close(); refSrv.Close() })

	const uniqueBodies = 8
	wantSubmit := make([]string, uniqueBodies)
	for i := range wantSubmit {
		code, resp, _ := doReq(t, http.MethodPost, refTS.URL+"/v1/schedules", submitBody(i))
		if code != http.StatusOK {
			t.Fatalf("reference submit %d: %d %s", i, code, resp)
		}
		wantSubmit[i] = resp
	}

	// "s1" is pinned to owner p1 (TestRingOwnershipPinned) — the kill target.
	const id = "s1"
	sessionBody, rows := fleetSessionRows(t, 4, id, 60)
	if code, resp, _ := doReq(t, http.MethodPost, refTS.URL+"/v1/sessions", sessionBody); code != http.StatusOK {
		t.Fatalf("reference session create: %d %s", code, resp)
	}
	const batch = 10
	var wantObserve []string
	for at := 0; at < len(rows); at += batch {
		code, resp, _ := doReq(t, http.MethodPost, refTS.URL+"/v1/sessions/"+id+"/observe", observeAt(t, rows[at:at+batch], int64(at)))
		if code != http.StatusOK {
			t.Fatalf("reference observe at %d: %d %s", at, code, resp)
		}
		wantObserve = append(wantObserve, resp)
	}

	f := newTestFleet(t, []string{"p0", "p1", "p2"}, testFleetOptions{})
	if code, resp, _ := doReq(t, http.MethodPost, f.rts.URL+"/v1/sessions", sessionBody); code != http.StatusOK {
		t.Fatalf("fleet session create: %d %s", code, resp)
	}

	// Concurrent submit load through the router for the whole run, via the
	// shared retry client — the same client schedload ships.
	const (
		workers     = 4
		perWorker   = 20
		totalSubmit = workers * perWorker
	)
	type outcome struct {
		status int
		body   string
		idx    int
	}
	outcomes := make([]outcome, totalSubmit)
	var done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &retry.HTTPClient{
				Client: &http.Client{},
				Policy: retry.Policy{MaxAttempts: 5, Base: time.Millisecond, Max: 5 * time.Millisecond},
			}
			rng := stats.NewRNG(uint64(100 + w))
			for i := 0; i < perWorker; i++ {
				idx := (w*perWorker + i) % uniqueBodies
				res, err := client.Post(context.Background(), f.rts.URL+"/v1/schedules", "application/json", []byte(submitBody(idx)), rng)
				slot := w*perWorker + i
				if err != nil {
					outcomes[slot] = outcome{status: -1, body: err.Error(), idx: idx}
				} else {
					outcomes[slot] = outcome{status: res.Status, body: string(res.Body), idx: idx}
				}
				done.Add(1)
			}
			client.Client.CloseIdleConnections()
		}(w)
	}

	// The observe stream interleaves with the kill/revive schedule so the
	// takeover is deterministic: two batches on the owner, kill, two batches
	// on the replica, revive, the rest on the healed owner.
	observe := func(i int) {
		t.Helper()
		at := i * batch
		code, resp, _ := doReq(t, http.MethodPost, f.rts.URL+"/v1/sessions/"+id+"/observe", observeAt(t, rows[at:at+batch], int64(at)))
		if code != http.StatusOK {
			t.Fatalf("chaos observe batch %d: %d %s", i, code, resp)
		}
		if resp != wantObserve[i] {
			t.Fatalf("chaos observe batch %d diverged from the reference decision stream:\n got %s\nwant %s", i, resp, wantObserve[i])
		}
	}
	waitSubmits := func(n int64) {
		deadline := time.Now().Add(30 * time.Second)
		for done.Load() < n && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}

	observe(0)
	observe(1)
	waitSubmits(totalSubmit / 4)
	f.kill("p1")
	observe(2)
	observe(3)
	waitSubmits(totalSubmit / 2)
	f.restart("p1")
	for i := 4; i < len(wantObserve); i++ {
		observe(i)
	}
	wg.Wait()

	// Only 200s and 503s; every non-degraded 200 byte-identical to reference.
	var oks, sheds int
	for slot, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			oks++
			if strings.Contains(o.body, `"degraded":true`) {
				continue
			}
			if o.body != wantSubmit[o.idx] {
				t.Fatalf("submit slot %d (body %d) diverged from reference:\n got %s\nwant %s", slot, o.idx, o.body, wantSubmit[o.idx])
			}
		case http.StatusServiceUnavailable:
			sheds++
		default:
			t.Fatalf("submit slot %d: status %d (%s) — chaos contract allows only 200/503", slot, o.status, o.body)
		}
	}
	if oks == 0 {
		t.Fatal("no submits succeeded during the chaos run")
	}
	t.Logf("chaos: %d submits ok, %d shed", oks, sheds)

	st := f.stats()
	var takeovers, failovers int64
	for i := range st.Peers {
		takeovers += st.Peers[i].Takeovers
		failovers += st.Peers[i].Failovers
	}
	if takeovers == 0 {
		t.Error("the session owner died mid-stream and the stream continued, but no takeover was counted")
	}
	t.Logf("chaos: takeovers=%d failovers=%d fleet503s=%d", takeovers, failovers, st.Fleet503s)

	// The healed fleet agrees with the reference on the final position.
	code, resp, _ := doReq(t, http.MethodGet, f.rts.URL+"/v1/sessions/"+id, "")
	if code != http.StatusOK {
		t.Fatalf("final status: %d %s", code, resp)
	}
	var status server.SessionStatusResponse
	if err := json.Unmarshal([]byte(resp), &status); err != nil {
		t.Fatal(err)
	}
	if status.Observed != int64(len(rows)) {
		t.Fatalf("fleet sees %d observations after the chaos run, want %d", status.Observed, len(rows))
	}
}
