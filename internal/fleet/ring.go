// Package fleet runs N schedd instances as one logical service (DESIGN.md
// §11): a consistent-hash ring maps schedule fingerprints and session ids to
// an owner plus R-1 replicas, a front-end Router forwards requests with
// per-peer timeouts, circuit breakers, seeded-jitter retries and hedged
// reads, and ReplicatedBlobs pushes session checkpoints and schedule records
// to the ring replicas so a surviving peer can take over a dead owner's
// sessions mid-stream.
//
// The fleet inherits the byte-determinism contract the serving layer has
// carried since DESIGN.md §7: every response is a pure function of the
// request body, so *any* peer can serve *any* request identically — routing
// is an optimization (cache locality, checkpoint residency), never a
// correctness requirement. That is what makes failover trivial to reason
// about: every non-degraded 200 is byte-identical to a single-node
// fault-free reference, regardless of which peers died along the way
// (pinned by TestFleetChaos).
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over peer names. Each peer projects Vnodes
// points onto the 64-bit hash circle; a key's owner is the first peer point
// clockwise from the key's hash, and its replicas are the next distinct
// peers. Determinism: the ring is a pure function of (names, vnodes) — every
// router and every peer computing the same ring agree on ownership without
// coordination (pinned by TestRingOwnershipPinned).
type Ring struct {
	vnodes int
	names  []string // sorted peer names
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	peer int // index into names
}

// DefaultVnodes is the virtual-node count per peer when NewRing is given
// vnodes <= 0: enough that ownership shares stay within a few percent of
// 1/N for small fleets.
const DefaultVnodes = 64

// NewRing builds the ring for the given peer names (order-insensitive:
// names are sorted first, so every participant builds the same ring).
func NewRing(names []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	r := &Ring{vnodes: vnodes, names: sorted}
	for i, name := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", name, v)), peer: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].peer < r.points[b].peer // total order even on hash ties
	})
	return r
}

// Peers returns the ring's peer names in sorted order.
func (r *Ring) Peers() []string { return append([]string(nil), r.names...) }

// Owners returns the first n distinct peers clockwise from key's hash: the
// owner first, then the replicas in takeover preference order. n is capped
// at the peer count.
func (r *Ring) Owners(key string, n int) []string {
	if n > len(r.names) {
		n = len(r.names)
	}
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	// Dedup with a linear scan over the peers picked so far: n is the
	// replica count (2–3), so the scan beats a map allocation on this hot
	// path (every routed request and every replica walk comes through
	// here).
	picked := make([]int, 0, n)
	for i := 0; len(owners) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		dup := false
		for _, q := range picked {
			if q == p.peer {
				dup = true
				break
			}
		}
		if !dup {
			picked = append(picked, p.peer)
			owners = append(owners, r.names[p.peer])
		}
	}
	return owners
}

// hash64 is FNV-1a pushed through a 64-bit avalanche finalizer. FNV alone
// clusters badly on short, similar strings ("p0#1", "p0#2", … land nearly
// adjacent on the circle, which starves peers of keyspace); the finalizer
// disperses them uniformly. Both halves are fixed arithmetic — stable
// across processes and Go versions, which the no-coordination ownership
// agreement depends on.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
