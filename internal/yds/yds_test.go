package yds

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestSingleJob(t *testing.T) {
	s, err := Build([]Job{{Release: 0, Deadline: 10, Work: 20, Ceff: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Intervals) != 1 {
		t.Fatalf("%d intervals", len(s.Intervals))
	}
	iv := s.Intervals[0]
	if iv.Speed != 2 || iv.Start != 0 || iv.End != 10 {
		t.Errorf("interval %+v", iv)
	}
}

// TestClassicExample: two jobs forcing distinct critical intervals. Job A
// has a tight window [0,2] with 6 units (intensity 3); job B spans [0,10]
// with 8 units. After extracting A, B's compressed window is 8 long →
// intensity 1.
func TestClassicExample(t *testing.T) {
	s, err := Build([]Job{
		{Release: 0, Deadline: 2, Work: 6, Ceff: 1, Label: "A"},
		{Release: 0, Deadline: 10, Work: 8, Ceff: 1, Label: "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Intervals) != 2 {
		t.Fatalf("%d intervals", len(s.Intervals))
	}
	if s.MaxSpeed() != 3 {
		t.Errorf("max speed %g, want 3", s.MaxSpeed())
	}
	var speeds []float64
	for _, iv := range s.Intervals {
		speeds = append(speeds, iv.Speed)
	}
	found1 := false
	for _, sp := range speeds {
		if math.Abs(sp-1) < 1e-9 {
			found1 = true
		}
	}
	if !found1 {
		t.Errorf("speeds %v missing the relaxed interval at 1", speeds)
	}
	if s.TotalWork() != 14 {
		t.Errorf("total work %g", s.TotalWork())
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]Job{{Release: 5, Deadline: 5, Work: 1}}); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := Build([]Job{{Release: 0, Deadline: 5, Work: -1}}); err == nil {
		t.Error("negative work accepted")
	}
	s, err := Build(nil)
	if err != nil || len(s.Intervals) != 0 {
		t.Error("empty job set should build an empty schedule")
	}
}

func TestEnergyInfeasible(t *testing.T) {
	m := power.DefaultModel() // max speed 4 cycles/ms
	s, err := Build([]Job{{Release: 0, Deadline: 1, Work: 10, Ceff: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Energy(m); err == nil {
		t.Error("over-speed schedule accepted by Energy")
	}
}

// TestSpeedsNonIncreasing: YDS extracts critical intervals in order of
// non-increasing intensity.
func TestSpeedsNonIncreasing(t *testing.T) {
	rng := stats.NewRNG(4)
	for trial := 0; trial < 30; trial++ {
		var jobs []Job
		n := rng.Intn(8) + 2
		for i := 0; i < n; i++ {
			r := rng.Uniform(0, 50)
			d := r + rng.Uniform(1, 30)
			jobs = append(jobs, Job{Release: r, Deadline: d, Work: rng.Uniform(1, 20), Ceff: 1})
		}
		s, err := Build(jobs)
		if err != nil {
			t.Fatal(err)
		}
		// Extraction order = recorded order before sorting by start... the
		// schedule sorts by start, so check against the multiset property
		// instead: total work preserved.
		var work float64
		for _, j := range jobs {
			work += j.Work
		}
		if math.Abs(s.TotalWork()-work) > 1e-6 {
			t.Fatalf("work lost: %g vs %g", s.TotalWork(), work)
		}
	}
}

// TestYDSLowerBoundsWCS: on EDF-expandable task sets, the YDS energy for
// the worst-case jobs is a lower bound on any feasible static schedule's
// worst-case energy — including core's WCS solution. (Checked here against
// the energy of running each job exactly over its YDS window; the actual
// cross-check against core lives in internal/experiments to avoid an import
// cycle.)
func TestYDSFromTaskSet(t *testing.T) {
	rng := stats.NewRNG(11)
	set, err := workload.Random(rng, workload.RandomConfig{N: 4, Ratio: 0.5, Utilization: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := FromTaskSet(set)
	if err != nil {
		t.Fatal(err)
	}
	count, err := set.InstanceCount()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != count {
		t.Fatalf("%d jobs for %d instances", len(jobs), count)
	}
	s, err := Build(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// U = 0.7 at max speed 4 ⇒ the YDS max speed is at most 4 (EDF
	// feasible), typically well below.
	if s.MaxSpeed() > 4+1e-9 {
		t.Errorf("max speed %g exceeds processor limit", s.MaxSpeed())
	}
	e, err := s.Energy(power.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0 {
		t.Errorf("energy %g", e)
	}
}

// TestUniformLoadSingleInterval: jobs forming constant density collapse to
// one critical interval at the utilisation speed.
func TestUniformLoadSingleInterval(t *testing.T) {
	var jobs []Job
	for i := 0; i < 10; i++ {
		jobs = append(jobs, Job{Release: float64(i), Deadline: float64(i + 1), Work: 2, Ceff: 1})
	}
	s, err := Build(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.MaxSpeed()-2) > 1e-9 {
		t.Errorf("max speed %g, want 2", s.MaxSpeed())
	}
}

// TestCompressMapping is a property test for the timeline-compression
// helper: order preservation and exact collapse of the removed window.
func TestCompressMapping(t *testing.T) {
	if err := quick.Check(func(aRaw, bRaw, tRaw uint16) bool {
		z1 := float64(aRaw % 1000)
		z2 := z1 + float64(bRaw%1000) + 1
		x := float64(tRaw % 3000)
		got := compress(x, z1, z2)
		switch {
		case x <= z1:
			return got == x
		case x >= z2:
			return got == x-(z2-z1)
		default:
			return got == z1
		}
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
