// Package yds implements the Yao–Demers–Shenker algorithm ("A scheduling
// model for reduced CPU energy", FOCS'95 — reference [3] of the paper as
// "Scheduling for reduced CPU energy"): the minimum-energy continuous-speed
// schedule for independent jobs with release times and deadlines under EDF.
//
// In this repository YDS serves as an independent lower bound: the energy of
// any feasible worst-case static schedule — including core's WCS — is at
// least the YDS energy of the same job set (with per-job capacitance folded
// in under a convex power function), which tests exploit to validate the
// structured solver.
package yds

import (
	"fmt"
	"sort"

	"repro/internal/power"
	"repro/internal/task"
)

// Job is one schedulable unit: w cycles available at R, due at D.
type Job struct {
	Release  float64
	Deadline float64
	Work     float64 // cycles
	Ceff     float64 // effective capacitance for energy accounting
	Label    string
}

// Interval is one critical interval of the optimal schedule: all jobs
// assigned to it run at the same Speed (cycles per ms).
type Interval struct {
	Start, End float64
	Speed      float64
	Jobs       []Job
}

// Schedule is the YDS result.
type Schedule struct {
	Intervals []Interval
}

// FromTaskSet expands a task set over one hyper-period into worst-case jobs.
func FromTaskSet(set *task.Set) ([]Job, error) {
	instances, err := set.Instances()
	if err != nil {
		return nil, err
	}
	jobs := make([]Job, len(instances))
	for i, in := range instances {
		t := &set.Tasks[in.TaskIndex]
		jobs[i] = Job{
			Release:  in.Release,
			Deadline: in.Deadline,
			Work:     t.WCEC,
			Ceff:     t.Ceff,
			Label:    in.ID(set),
		}
	}
	return jobs, nil
}

// Build computes the optimal continuous-speed schedule by repeated
// critical-interval extraction. Complexity is O(n³) in the number of jobs,
// fine for hyper-period-sized job sets.
func Build(jobs []Job) (*Schedule, error) {
	for i, j := range jobs {
		if j.Work < 0 {
			return nil, fmt.Errorf("yds: job %d has negative work %g", i, j.Work)
		}
		if j.Deadline <= j.Release {
			return nil, fmt.Errorf("yds: job %d has empty window [%g, %g]", i, j.Release, j.Deadline)
		}
	}
	remaining := append([]Job(nil), jobs...)
	var out Schedule

	for len(remaining) > 0 {
		z1, z2, speed, inside := criticalInterval(remaining)
		if speed <= 0 {
			// Only zero-work jobs remain; they consume no energy.
			break
		}
		out.Intervals = append(out.Intervals, Interval{
			Start: z1, End: z2, Speed: speed, Jobs: inside,
		})
		// Remove the critical jobs and compress time: windows overlapping
		// [z1, z2] shrink by the overlap; times after z2 shift left.
		var next []Job
		for _, j := range remaining {
			if j.Release >= z1 && j.Deadline <= z2 {
				continue // scheduled in this interval
			}
			j.Release = compress(j.Release, z1, z2)
			j.Deadline = compress(j.Deadline, z1, z2)
			next = append(next, j)
		}
		remaining = next
		// Interval Start/End after the first extraction live in compressed
		// time; they are kept for ordering and diagnostics only. Energy and
		// feasibility depend solely on Speed and Jobs, which compression
		// does not alter.
	}
	sort.Slice(out.Intervals, func(a, b int) bool {
		return out.Intervals[a].Start < out.Intervals[b].Start
	})
	return &out, nil
}

// compress maps an original-time coordinate through removal of [z1, z2].
func compress(t, z1, z2 float64) float64 {
	switch {
	case t <= z1:
		return t
	case t >= z2:
		return t - (z2 - z1)
	default:
		return z1
	}
}

// criticalInterval scans all release/deadline pairs for the interval with
// maximum intensity: Σ work of fully contained jobs / length.
func criticalInterval(jobs []Job) (z1, z2, speed float64, inside []Job) {
	points := make([]float64, 0, 2*len(jobs))
	for _, j := range jobs {
		points = append(points, j.Release, j.Deadline)
	}
	sort.Float64s(points)
	points = dedupe(points)

	best := -1.0
	for a := 0; a < len(points); a++ {
		for b := a + 1; b < len(points); b++ {
			lo, hi := points[a], points[b]
			var work float64
			for _, j := range jobs {
				if j.Release >= lo && j.Deadline <= hi {
					work += j.Work
				}
			}
			if work <= 0 {
				continue
			}
			g := work / (hi - lo)
			if g > best {
				best = g
				z1, z2 = lo, hi
			}
		}
	}
	if best <= 0 {
		return 0, 0, 0, nil
	}
	for _, j := range jobs {
		if j.Release >= z1 && j.Deadline <= z2 {
			inside = append(inside, j)
		}
	}
	return z1, z2, best, inside
}

func dedupe(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// Energy evaluates the schedule's energy on processor model m: every job in
// an interval runs at the interval speed, i.e. at the lowest voltage whose
// cycle rate reaches the speed. If an interval's speed exceeds the model's
// maximum rate, the job set is infeasible on m and an error is returned.
func (s *Schedule) Energy(m power.Model) (float64, error) {
	var total float64
	maxRate := 1 / m.CycleTime(m.VMax())
	for _, iv := range s.Intervals {
		if iv.Speed > maxRate*(1+1e-9) {
			return 0, fmt.Errorf("yds: interval [%g, %g] needs speed %g > max %g",
				iv.Start, iv.End, iv.Speed, maxRate)
		}
		v := m.VoltageForCycleTime(1 / iv.Speed)
		for _, j := range iv.Jobs {
			total += power.Energy(j.Ceff, v, j.Work)
		}
	}
	return total, nil
}

// MaxSpeed returns the largest interval speed (cycles/ms), the schedule's
// feasibility requirement.
func (s *Schedule) MaxSpeed() float64 {
	m := 0.0
	for _, iv := range s.Intervals {
		if iv.Speed > m {
			m = iv.Speed
		}
	}
	return m
}

// TotalWork sums the work of all scheduled jobs.
func (s *Schedule) TotalWork() float64 {
	var w float64
	for _, iv := range s.Intervals {
		for _, j := range iv.Jobs {
			w += j.Work
		}
	}
	return w
}
