// Package sched provides classical fixed-priority schedulability analysis
// for the task model: the Liu–Layland utilisation bound, the hyperbolic
// bound (Bini–Buttazzo), and exact response-time analysis (RTA, Joseph &
// Pandya / Audsley). The offline voltage scheduler needs a feasibility
// precondition — "schedulable at maximum speed" — and these tests provide it
// analytically, cross-checking the simulation-based check in internal/core.
//
// All analyses take the processor's maximum-speed cycle time so workloads in
// cycles convert to worst-case execution times in milliseconds.
package sched

import (
	"fmt"
	"math"

	"repro/internal/task"
)

// Utilization returns Σ Cᵢ/Tᵢ at the given cycle time (ms per cycle).
func Utilization(set *task.Set, cycleTime float64) float64 {
	return set.UtilizationAt(cycleTime)
}

// LiuLaylandBound returns the classic sufficient RM utilisation bound
// n·(2^{1/n} − 1) for n tasks. Task sets at or under the bound are
// guaranteed RM-schedulable; above it the test is inconclusive.
func LiuLaylandBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// LiuLaylandSchedulable reports whether the set passes the Liu–Layland
// sufficient test at the given cycle time.
func LiuLaylandSchedulable(set *task.Set, cycleTime float64) bool {
	return Utilization(set, cycleTime) <= LiuLaylandBound(set.N())+1e-12
}

// HyperbolicSchedulable reports the Bini–Buttazzo hyperbolic bound:
// Π (Uᵢ + 1) ≤ 2 is sufficient for RM schedulability and uniformly
// dominates Liu–Layland.
func HyperbolicSchedulable(set *task.Set, cycleTime float64) bool {
	prod := 1.0
	for i := range set.Tasks {
		u := set.Tasks[i].WCEC * cycleTime / float64(set.Tasks[i].Period)
		prod *= u + 1
	}
	return prod <= 2+1e-12
}

// ResponseTimes computes the exact worst-case response time of every task
// under preemptive RM (deadline = period, synchronous release) by the
// standard fixed-point iteration
//
//	R = C_i + Σ_{j higher} ⌈R/T_j⌉ · C_j.
//
// Tasks sharing a period have equal RM priority; the analysis
// conservatively treats earlier-indexed tasks as higher priority, matching
// the deterministic tie-break used throughout this repository. An error is
// returned if any response time exceeds its deadline (the set is
// unschedulable at this speed) or fails to converge.
func ResponseTimes(set *task.Set, cycleTime float64) ([]float64, error) {
	n := set.N()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		ci := set.Tasks[i].WCEC * cycleTime
		r := ci
		for iter := 0; iter < 10000; iter++ {
			next := ci
			for j := 0; j < i; j++ {
				cj := set.Tasks[j].WCEC * cycleTime
				next += math.Ceil(r/float64(set.Tasks[j].Period)) * cj
			}
			if next > float64(set.Tasks[i].Period)+1e-9 {
				return nil, fmt.Errorf(
					"sched: task %q response time %.6g exceeds deadline %d at this speed",
					set.Tasks[i].Name, next, set.Tasks[i].Period)
			}
			if math.Abs(next-r) < 1e-12 {
				r = next
				break
			}
			r = next
		}
		out[i] = r
	}
	return out, nil
}

// RTASchedulable reports whether exact response-time analysis admits the
// set at the given cycle time.
func RTASchedulable(set *task.Set, cycleTime float64) bool {
	_, err := ResponseTimes(set, cycleTime)
	return err == nil
}

// MinCycleTime returns the largest cycle time (slowest uniform speed) at
// which the set remains RTA-schedulable, found by bisection between the
// given maximum-speed cycle time and the utilisation-1 bound. It is the
// uniform-slowdown headroom a static voltage scheduler can exploit.
func MinCycleTime(set *task.Set, fastCycleTime float64) (float64, error) {
	if !RTASchedulable(set, fastCycleTime) {
		return 0, fmt.Errorf("sched: set unschedulable even at the fastest speed")
	}
	// Upper bound: cycle time at which utilisation hits 1 (beyond that no
	// schedule exists on one processor).
	u := Utilization(set, fastCycleTime)
	hi := fastCycleTime / u // utilisation scales linearly in cycle time
	if RTASchedulable(set, hi) {
		return hi, nil
	}
	lo := fastCycleTime
	for i := 0; i < 100; i++ {
		mid := 0.5 * (lo + hi)
		if RTASchedulable(set, mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
