package sched

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

func mustSet(t *testing.T, tasks ...task.Task) *task.Set {
	t.Helper()
	s, err := task.NewSet(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLiuLaylandBoundValues(t *testing.T) {
	if b := LiuLaylandBound(1); b != 1 {
		t.Errorf("LL(1) = %g, want 1", b)
	}
	if b := LiuLaylandBound(2); math.Abs(b-0.8284271247) > 1e-9 {
		t.Errorf("LL(2) = %g", b)
	}
	// The bound decreases towards ln 2.
	if b := LiuLaylandBound(1000); math.Abs(b-math.Ln2) > 1e-3 {
		t.Errorf("LL(1000) = %g, want ≈ln2", b)
	}
	if LiuLaylandBound(0) != 0 {
		t.Error("LL(0) should be 0")
	}
}

// TestClassicRTAExample: the textbook three-task example (Buttazzo):
// C = {1, 2, 3}, T = {4, 6, 10}: response times 1, 3, 10 — schedulable
// exactly at the deadline for the lowest-priority task.
func TestClassicRTAExample(t *testing.T) {
	set := mustSet(t,
		task.Task{Name: "t1", Period: 4, WCEC: 1, ACEC: 1, BCEC: 1, Ceff: 1},
		task.Task{Name: "t2", Period: 6, WCEC: 2, ACEC: 2, BCEC: 2, Ceff: 1},
		task.Task{Name: "t3", Period: 10, WCEC: 3, ACEC: 3, BCEC: 3, Ceff: 1},
	)
	rts, err := ResponseTimes(set, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 10}
	for i := range want {
		if math.Abs(rts[i]-want[i]) > 1e-9 {
			t.Errorf("R[%d] = %g, want %g", i, rts[i], want[i])
		}
	}
	// U = 1/4 + 2/6 + 3/10 = 0.8833 > LL(3) = 0.7798: LL inconclusive, RTA
	// schedulable — the classic separation.
	if LiuLaylandSchedulable(set, 1) {
		t.Error("LL should be inconclusive here")
	}
	if !RTASchedulable(set, 1) {
		t.Error("RTA should admit the classic example")
	}
}

func TestRTARejectsOverload(t *testing.T) {
	set := mustSet(t,
		task.Task{Name: "a", Period: 10, WCEC: 6, ACEC: 6, BCEC: 6, Ceff: 1},
		task.Task{Name: "b", Period: 10, WCEC: 6, ACEC: 6, BCEC: 6, Ceff: 1},
	)
	if RTASchedulable(set, 1) {
		t.Error("U=1.2 accepted")
	}
	if _, err := ResponseTimes(set, 1); err == nil {
		t.Error("ResponseTimes returned no error on overload")
	}
}

// TestBoundHierarchy: LL ⊆ hyperbolic ⊆ RTA on random sets (each test
// admits at least what the previous admits).
func TestBoundHierarchy(t *testing.T) {
	rng := stats.NewRNG(3)
	m := power.DefaultModel()
	tc := m.CycleTime(m.VMax())
	if err := quick.Check(func(nRaw, uRaw uint8) bool {
		n := int(nRaw%8) + 1
		u := 0.3 + float64(uRaw%60)/100 // 0.3 .. 0.89
		set, err := workload.Random(rng, workload.RandomConfig{N: n, Ratio: 0.5, Utilization: u})
		if err != nil {
			return false
		}
		ll := LiuLaylandSchedulable(set, tc)
		hb := HyperbolicSchedulable(set, tc)
		rta := RTASchedulable(set, tc)
		if ll && !hb {
			return false // hyperbolic dominates LL
		}
		if hb && !rta {
			return false // RTA is exact, admits everything sufficient tests admit
		}
		return true
	}, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestRTAAgreesWithCoreFeasible: the analytical test and the simulation
// chain check in internal/core must agree on RM-ordered sets (both are
// exact for this model).
func TestRTAAgreesWithCoreFeasible(t *testing.T) {
	rng := stats.NewRNG(5)
	m := power.DefaultModel()
	tc := m.CycleTime(m.VMax())
	agree, total := 0, 0
	for i := 0; i < 40; i++ {
		u := 0.5 + 0.45*rng.Float64()
		set, err := workload.Random(rng, workload.RandomConfig{N: 5, Ratio: 0.5, Utilization: u})
		if err != nil {
			t.Fatal(err)
		}
		rta := RTASchedulable(set, tc)
		sim := core.Feasible(set, core.Config{}) == nil
		total++
		if rta == sim {
			agree++
		} else if rta && !sim {
			// RTA admitting what the chain rejects would be a soundness bug
			// (the chain replays an exact RM execution).
			t.Errorf("set %d: RTA schedulable but core chain infeasible", i)
		}
		// sim && !rta can only happen for equal-priority ties resolved
		// differently; tolerated but counted.
	}
	if agree < total*9/10 {
		t.Errorf("RTA and simulation agree on only %d/%d sets", agree, total)
	}
}

func TestMinCycleTime(t *testing.T) {
	set := mustSet(t,
		task.Task{Name: "a", Period: 10, WCEC: 2, ACEC: 2, BCEC: 2, Ceff: 1},
		task.Task{Name: "b", Period: 20, WCEC: 4, ACEC: 4, BCEC: 4, Ceff: 1},
	)
	// U at tc=1: 0.2 + 0.2 = 0.4 → slowest uniform speed is tc = 2.5
	// (harmonic periods: schedulable right up to U = 1).
	tcMin, err := MinCycleTime(set, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tcMin-2.5) > 1e-6 {
		t.Errorf("MinCycleTime = %g, want 2.5", tcMin)
	}
	if !RTASchedulable(set, tcMin-1e-9) {
		t.Error("set should be schedulable just under the reported cycle time")
	}
	// Overloaded set errors.
	bad := mustSet(t,
		task.Task{Name: "x", Period: 10, WCEC: 12, ACEC: 12, BCEC: 12, Ceff: 1},
	)
	if _, err := MinCycleTime(bad, 1); err == nil {
		t.Error("overloaded set accepted")
	}
}

func TestUtilizationHelper(t *testing.T) {
	set := mustSet(t,
		task.Task{Name: "a", Period: 10, WCEC: 5, ACEC: 5, BCEC: 5, Ceff: 1},
	)
	if u := Utilization(set, 0.5); math.Abs(u-0.25) > 1e-12 {
		t.Errorf("U = %g, want 0.25", u)
	}
}
