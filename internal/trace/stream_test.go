package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/task"
)

func streamSet() *task.Set {
	return &task.Set{Tasks: []task.Task{
		{Name: "a", Period: 10, WCEC: 100, ACEC: 60, BCEC: 20, Ceff: 1},
		{Name: "b", Period: 20, WCEC: 200, ACEC: 120, BCEC: 40, Ceff: 1},
	}}
}

func TestStreamRoundTrip(t *testing.T) {
	in := &Stream{
		Tasks:     streamSet().Tasks,
		Instances: 3,
		Rows: [][]float64{
			{50, 60, 110},
			{55, 58, 130},
		},
	}
	var buf bytes.Buffer
	if err := WriteStream(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tasks) != 2 || out.Instances != 3 || len(out.Rows) != 2 {
		t.Fatalf("round trip lost shape: %+v", out)
	}
	for i := range in.Rows {
		for j := range in.Rows[i] {
			if out.Rows[i][j] != in.Rows[i][j] {
				t.Fatalf("row %d[%d] = %v, want %v", i, j, out.Rows[i][j], in.Rows[i][j])
			}
		}
	}
	if out.Set().N() != 2 {
		t.Fatalf("Set() has %d tasks", out.Set().N())
	}
}

func TestStreamIncrementalWriter(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, streamSet(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Append([][]float64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Append([][]float64{{3, 4}, {5, 6}}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	s, err := ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 3 || s.Rows[2][1] != 6 {
		t.Fatalf("incremental rows = %v", s.Rows)
	}
	// A writer flushed before any Append still identifies itself.
	var empty bytes.Buffer
	sw2, _ := NewStreamWriter(&empty, streamSet(), 2)
	if err := sw2.Flush(); err != nil {
		t.Fatal(err)
	}
	es, err := ReadStream(&empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(es.Rows) != 0 || es.Instances != 2 {
		t.Fatalf("empty stream = %+v", es)
	}
	// Width mismatches are refused at append time.
	if err := sw.Append([][]float64{{1}}); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

// TestStreamTruncatedTail pins the append-friendly property: a recording
// cut mid-run still yields its complete prefix.
func TestStreamTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStream(&buf, &Stream{Tasks: streamSet().Tasks, Instances: 1, Rows: [][]float64{{1}, {2}, {3}}}); err != nil {
		t.Fatal(err)
	}
	whole := buf.String()
	cut := whole[:strings.LastIndex(strings.TrimRight(whole, "\n"), "\n")+1]
	s, err := ReadStream(strings.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 2 {
		t.Fatalf("prefix rows = %d, want 2", len(s.Rows))
	}
}

func TestStreamRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "nope\n",
		"wrong version":  `{"v":2,"instances":1,"tasks":[{"name":"a","period_ms":10,"wcec":1,"acec":1,"bcec":1,"ceff":1}]}` + "\n",
		"no tasks":       `{"v":1,"instances":1,"tasks":[]}` + "\n",
		"zero width":     `{"v":1,"instances":0,"tasks":[{"name":"a","period_ms":10,"wcec":1,"acec":1,"bcec":1,"ceff":1}]}` + "\n",
		"width mismatch": `{"v":1,"instances":2,"tasks":[{"name":"a","period_ms":10,"wcec":1,"acec":1,"bcec":1,"ceff":1}]}` + "\n[1]\n",
		"negative cycle": `{"v":1,"instances":1,"tasks":[{"name":"a","period_ms":10,"wcec":1,"acec":1,"bcec":1,"ceff":1}]}` + "\n[-1]\n",
	}
	for name, in := range cases {
		if _, err := ReadStream(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted malformed stream", name)
		}
	}
}
