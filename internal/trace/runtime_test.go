package trace

import (
	"math"
	"strings"
	"testing"
)

func TestRuntimeRowsReplay(t *testing.T) {
	s := buildSchedule(t)
	actual := make([]float64, len(s.Plan.Instances))
	for i, in := range s.Plan.Instances {
		actual[i] = s.Plan.Set.Tasks[in.TaskIndex].ACEC
	}
	rows, err := RuntimeRows(s, actual)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no runtime rows")
	}
	// The replay mirrors EnergyUnder's recursion: recompute energy from the
	// rows and compare.
	var energy float64
	prevEnd := 0.0
	perInstance := map[int]float64{}
	for _, r := range rows {
		if r.ObservedCycles < 0 {
			t.Fatalf("row %d negative observed cycles", r.Order)
		}
		if r.ObservedCycles == 0 {
			continue
		}
		if r.StartMs < prevEnd-1e-9 {
			t.Fatalf("row %d starts %g before previous end %g", r.Order, r.StartMs, prevEnd)
		}
		if r.EndMs > r.Deadline+1e-9 {
			t.Fatalf("row %d ends %g past deadline %g", r.Order, r.EndMs, r.Deadline)
		}
		if r.VoltageV <= 0 {
			t.Fatalf("row %d executed with no voltage", r.Order)
		}
		su := s.Plan.Subs[r.Order]
		ceff := s.Plan.Set.Tasks[su.TaskIndex].Ceff
		energy += ceff * r.VoltageV * r.VoltageV * r.ObservedCycles
		prevEnd = r.EndMs
		perInstance[su.InstanceIndex] += r.ObservedCycles
	}
	want, over, err := s.EnergyUnder(actual)
	if err != nil {
		t.Fatal(err)
	}
	if over > 1e-9 {
		t.Fatalf("ACEC execution overshoots a deadline by %g", over)
	}
	if math.Abs(energy-want) > 1e-6*want {
		t.Errorf("row-derived energy %g, EnergyUnder %g", energy, want)
	}
	// Observed cycles account for the full actual workload of each instance.
	for idx, sum := range perInstance {
		if math.Abs(sum-actual[idx]) > 1e-9 {
			t.Errorf("instance %d observed %g cycles, actual %g", idx, sum, actual[idx])
		}
	}
	if _, err := RuntimeRows(s, actual[:1]); err == nil {
		t.Error("short actual vector accepted")
	}
}

func TestRuntimeCSVShape(t *testing.T) {
	s := buildSchedule(t)
	actual := make([]float64, len(s.Plan.Instances))
	for i, in := range s.Plan.Instances {
		actual[i] = s.Plan.Set.Tasks[in.TaskIndex].BCEC
	}
	csv, err := RuntimeCSV(s, actual)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if !strings.HasPrefix(lines[0], "order,task,instance,sub,release_ms,deadline_ms,predicted_cycles,observed_cycles,") {
		t.Errorf("header %q", lines[0])
	}
	if len(lines) < 2 {
		t.Fatal("no data rows")
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != 11 {
			t.Errorf("malformed CSV row %q", l)
		}
	}
}

func TestRuntimeGanttRender(t *testing.T) {
	s := buildSchedule(t)
	actual := make([]float64, len(s.Plan.Instances))
	for i, in := range s.Plan.Instances {
		actual[i] = s.Plan.Set.Tasks[in.TaskIndex].ACEC
	}
	g, err := RuntimeGantt(s, actual, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g, "runtime execution") || !strings.Contains(g, "#") {
		t.Errorf("Gantt missing content:\n%s", g)
	}
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != s.Plan.Set.N()+2 {
		t.Errorf("%d lines", len(lines))
	}
	if _, err := RuntimeGantt(s, actual[:1], 60); err == nil {
		t.Error("short actual vector accepted")
	}
}
