// Package trace renders static schedules and runtime executions for humans
// and downstream tools: ASCII Gantt charts for terminals, CSV rows for
// plotting.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
)

// Row is one sub-instance of a static schedule in exportable form.
type Row struct {
	Order    int     `json:"order"`
	Task     string  `json:"task"`
	Instance int     `json:"instance"`
	Sub      int     `json:"sub"`
	Release  float64 `json:"release_ms"`
	Deadline float64 `json:"deadline_ms"`
	End      float64 `json:"end_ms"`
	WCWork   float64 `json:"wc_work_cycles"`
	AvgWork  float64 `json:"avg_work_cycles"`
}

// Rows flattens a schedule into export rows in total order.
func Rows(s *core.Schedule) []Row {
	out := make([]Row, len(s.Plan.Subs))
	for pos, su := range s.Plan.Subs {
		out[pos] = Row{
			Order:    pos,
			Task:     s.Plan.Set.Tasks[su.TaskIndex].Name,
			Instance: su.InstanceNumber,
			Sub:      su.SubIndex,
			Release:  su.Release,
			Deadline: su.Deadline,
			End:      s.End[pos],
			WCWork:   s.WCWork[pos],
			AvgWork:  s.AvgWork[pos],
		}
	}
	return out
}

// CSV renders the schedule as CSV with a header row.
func CSV(s *core.Schedule) string {
	var b strings.Builder
	b.WriteString("order,task,instance,sub,release_ms,deadline_ms,end_ms,wc_work,avg_work\n")
	for _, r := range Rows(s) {
		fmt.Fprintf(&b, "%d,%s,%d,%d,%g,%g,%g,%g,%g\n",
			r.Order, r.Task, r.Instance, r.Sub, r.Release, r.Deadline, r.End, r.WCWork, r.AvgWork)
	}
	return b.String()
}

// Gantt renders an ASCII Gantt chart of the static worst-case schedule: one
// lane per task, time scaled to width columns over [0, hyper-period]. Each
// sub-instance paints its worst-case execution window (latest start to static
// end).
func Gantt(s *core.Schedule, width int) string {
	if width <= 0 {
		width = 80
	}
	h := s.Plan.Hyperperiod
	scale := func(t float64) int {
		c := int(math.Round(t / h * float64(width)))
		if c < 0 {
			c = 0
		}
		if c > width {
			c = width
		}
		return c
	}

	lanes := make([][]byte, s.Plan.Set.N())
	for i := range lanes {
		lanes[i] = []byte(strings.Repeat(".", width))
	}
	prevEnd := 0.0
	for pos, su := range s.Plan.Subs {
		start := math.Max(prevEnd, su.Release)
		end := s.End[pos]
		prevEnd = end
		if s.WCWork[pos] <= 0 {
			continue
		}
		lane := lanes[su.TaskIndex]
		from, to := scale(start), scale(end)
		if to == from && to < width {
			to++
		}
		for c := from; c < to; c++ {
			lane[c] = '#'
		}
	}

	var b strings.Builder
	nameW := 0
	for _, t := range s.Plan.Set.Tasks {
		if len(t.Name) > nameW {
			nameW = len(t.Name)
		}
	}
	fmt.Fprintf(&b, "%s static schedule, H=%.0fms, energy=%.4g\n", s.Objective, h, s.Energy)
	for i, t := range s.Plan.Set.Tasks {
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, t.Name, lanes[i])
	}
	fmt.Fprintf(&b, "%-*s 0%s%.0fms\n", nameW, "", strings.Repeat(" ", width-1), h)
	return b.String()
}

// VoltageProfile summarises the runtime voltage of each task under the given
// actual workloads: min/mean/max across its executing sub-instances.
func VoltageProfile(s *core.Schedule, actual []float64) (string, error) {
	volts, err := s.RuntimeVoltages(actual)
	if err != nil {
		return "", err
	}
	type agg struct {
		min, max, sum float64
		n             int
	}
	per := make([]agg, s.Plan.Set.N())
	for pos, v := range volts {
		if v <= 0 {
			continue
		}
		a := &per[s.Plan.Subs[pos].TaskIndex]
		if a.n == 0 || v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
		a.sum += v
		a.n++
	}
	var b strings.Builder
	b.WriteString("task,pieces,vmin,vmean,vmax\n")
	for i, t := range s.Plan.Set.Tasks {
		a := per[i]
		mean := 0.0
		if a.n > 0 {
			mean = a.sum / float64(a.n)
		}
		fmt.Fprintf(&b, "%s,%d,%.3f,%.3f,%.3f\n", t.Name, a.n, a.min, mean, a.max)
	}
	return b.String(), nil
}

// SortRowsByEnd orders export rows by static end-time (stable for ties).
func SortRowsByEnd(rows []Row) {
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].End < rows[j].End })
}
