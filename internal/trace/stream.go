package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/task"
)

// Observed-execution stream capture: the persistent sibling of the
// RuntimeRow export. Where RuntimeRows explains what one hyper-period
// did, a Stream records what a whole run *observed* — the per-instance
// actual execution cycles of every hyper-period, in plan order — so the
// feedback loop can be replayed offline against exactly the workload a
// live session (or an adaptsim run) saw. The format is line-oriented
// JSON so a recorder can append hyper-periods as they arrive and a
// truncated file still yields its complete prefix:
//
//	{"v":1,"instances":W,"tasks":[...]}   header: version, row width, task set
//	[c0,c1,...,cW-1]                      one row per hyper-period, in order
//
// The task list is the model the recording session started from; a
// replayer re-solves it to recover the plan order the rows index.
const streamVersion = 1

// Stream is one recorded observation stream.
type Stream struct {
	// Tasks is the stated task set of the recording run.
	Tasks []task.Task
	// Instances is the per-hyper-period row width (instances in plan
	// order).
	Instances int
	// Rows holds one per-instance actual-cycles row per hyper-period.
	Rows [][]float64
}

// Set returns the stream's task set.
func (s *Stream) Set() *task.Set { return &task.Set{Tasks: s.Tasks} }

type streamHeader struct {
	V         int         `json:"v"`
	Instances int         `json:"instances"`
	Tasks     []task.Task `json:"tasks"`
}

// StreamWriter appends hyper-period rows to w incrementally, writing the
// header before the first row. It buffers; call Flush (or write through
// an os.File and Close it) when done. Not safe for concurrent use.
type StreamWriter struct {
	bw        *bufio.Writer
	hdr       streamHeader
	started   bool
	instances int
}

// NewStreamWriter returns a writer recording the given task set with the
// given row width.
func NewStreamWriter(w io.Writer, set *task.Set, instances int) (*StreamWriter, error) {
	if set == nil || len(set.Tasks) == 0 {
		return nil, fmt.Errorf("trace: stream needs a non-empty task set")
	}
	if instances <= 0 {
		return nil, fmt.Errorf("trace: stream needs a positive instance width, got %d", instances)
	}
	return &StreamWriter{
		bw:        bufio.NewWriter(w),
		hdr:       streamHeader{V: streamVersion, Instances: instances, Tasks: append([]task.Task(nil), set.Tasks...)},
		instances: instances,
	}, nil
}

// Append writes the given hyper-period rows, in order.
func (sw *StreamWriter) Append(rows [][]float64) error {
	if !sw.started {
		hdr, err := json.Marshal(sw.hdr)
		if err != nil {
			return fmt.Errorf("trace: stream header: %w", err)
		}
		sw.bw.Write(hdr)
		sw.bw.WriteByte('\n')
		sw.started = true
	}
	for _, row := range rows {
		if len(row) != sw.instances {
			return fmt.Errorf("trace: stream row has %d instances, want %d", len(row), sw.instances)
		}
		b, err := json.Marshal(row)
		if err != nil {
			return err
		}
		sw.bw.Write(b)
		if err := sw.bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return nil
}

// Flush drains the buffer to the underlying writer.
func (sw *StreamWriter) Flush() error {
	if !sw.started {
		// A stream with zero rows is still a valid (empty) recording;
		// force the header out so the file identifies itself.
		if err := sw.Append(nil); err != nil {
			return err
		}
	}
	return sw.bw.Flush()
}

// WriteStream writes a whole stream at once.
func WriteStream(w io.Writer, s *Stream) error {
	sw, err := NewStreamWriter(w, s.Set(), s.Instances)
	if err != nil {
		return err
	}
	if err := sw.Append(s.Rows); err != nil {
		return err
	}
	return sw.Flush()
}

// ReadStream parses a recorded stream, validating the version, the row
// widths, and that every observed cycle count is finite and
// non-negative.
func ReadStream(r io.Reader) (*Stream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: reading stream: %w", err)
		}
		return nil, fmt.Errorf("trace: empty stream file")
	}
	var hdr streamHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("trace: stream header: %w", err)
	}
	if hdr.V != streamVersion {
		return nil, fmt.Errorf("trace: unsupported stream version %d", hdr.V)
	}
	if hdr.Instances <= 0 || len(hdr.Tasks) == 0 {
		return nil, fmt.Errorf("trace: stream header missing tasks or instance width")
	}
	s := &Stream{Tasks: hdr.Tasks, Instances: hdr.Instances}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var row []float64
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return nil, fmt.Errorf("trace: stream line %d: %w", line, err)
		}
		if len(row) != hdr.Instances {
			return nil, fmt.Errorf("trace: stream line %d has %d instances, want %d", line, len(row), hdr.Instances)
		}
		for i, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return nil, fmt.Errorf("trace: stream line %d instance %d has invalid cycles %v", line, i, v)
			}
		}
		s.Rows = append(s.Rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading stream: %w", err)
	}
	return s, nil
}
