package trace

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/power"
)

// Runtime-execution export: what one hyper-period actually did under greedy
// reclamation for a given actual workload vector — observed vs. predicted
// cycles per job, the realised execution interval and voltage of every
// piece. This is the debugging surface of feedback sessions (DESIGN.md §8):
// when an adaptive schedule misbehaves, the first question is how the
// observed per-job cycles diverged from the model the solver used.

// RuntimeRow is one work-bearing sub-instance of an executed hyper-period.
type RuntimeRow struct {
	Order    int     `json:"order"`
	Task     string  `json:"task"`
	Instance int     `json:"instance"`
	Sub      int     `json:"sub"`
	Release  float64 `json:"release_ms"`
	Deadline float64 `json:"deadline_ms"`
	// PredictedCycles is the piece's model expectation (the schedule's
	// derived average workload R̄); ObservedCycles what the piece actually
	// executed under the given workload vector (0 when the instance's work
	// was already exhausted by earlier pieces).
	PredictedCycles float64 `json:"predicted_cycles"`
	ObservedCycles  float64 `json:"observed_cycles"`
	// StartMs/EndMs delimit the realised execution interval; StaticEndMs is
	// the static end-time the voltage was computed against.
	StartMs     float64 `json:"start_ms"`
	EndMs       float64 `json:"end_ms"`
	StaticEndMs float64 `json:"static_end_ms"`
	// VoltageV is the supply voltage the piece ran at (0 if it executed
	// nothing).
	VoltageV float64 `json:"voltage_v"`
}

// RuntimeRows replays one hyper-period of s under greedy reclamation with
// the given per-instance actual cycles (plan.Instances order) and returns a
// row per work-bearing piece, in total order. The replay mirrors the online
// dispatcher exactly: the voltage covers the worst-case budget from the
// actual start to the static end, and the piece runs only its share of the
// instance's actual cycles.
func RuntimeRows(s *core.Schedule, actual []float64) ([]RuntimeRow, error) {
	if len(actual) != len(s.Plan.Instances) {
		return nil, fmt.Errorf("trace: got %d actual workloads for %d instances",
			len(actual), len(s.Plan.Instances))
	}
	remaining := append([]float64(nil), actual...)
	rows := make([]RuntimeRow, 0, len(s.Plan.Subs))
	t := 0.0
	for pos := range s.Plan.Subs {
		su := &s.Plan.Subs[pos]
		if s.WCWork[pos] <= core.DeadWork {
			continue // pure reservation: never part of the runtime order
		}
		w := math.Min(remaining[su.InstanceIndex], s.WCWork[pos])
		remaining[su.InstanceIndex] -= w
		row := RuntimeRow{
			Order:           pos,
			Task:            s.Plan.Set.Tasks[su.TaskIndex].Name,
			Instance:        su.InstanceNumber,
			Sub:             su.SubIndex,
			Release:         su.Release,
			Deadline:        su.Deadline,
			PredictedCycles: s.AvgWork[pos],
			ObservedCycles:  w,
			StaticEndMs:     s.End[pos],
		}
		if w > 0 {
			a := math.Max(t, su.Release)
			v, _ := power.VoltageForWindow(s.Model, s.WCWork[pos], s.End[pos]-a)
			end := a + w*s.Model.CycleTime(v)
			row.StartMs, row.EndMs, row.VoltageV = a, end, v
			t = end
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RuntimeCSV renders the runtime execution as CSV with a header row.
func RuntimeCSV(s *core.Schedule, actual []float64) (string, error) {
	rows, err := RuntimeRows(s, actual)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("order,task,instance,sub,release_ms,deadline_ms,predicted_cycles,observed_cycles,start_ms,end_ms,static_end_ms,voltage_v\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d,%s,%d,%d,%g,%g,%g,%g,%g,%g,%g,%.4f\n",
			r.Order, r.Task, r.Instance, r.Sub, r.Release, r.Deadline,
			r.PredictedCycles, r.ObservedCycles, r.StartMs, r.EndMs, r.StaticEndMs, r.VoltageV)
	}
	return b.String(), nil
}

// RuntimeGantt renders an ASCII Gantt chart of the realised execution: one
// lane per task, '#' painting the actual execution intervals (vs. the static
// worst-case windows Gantt paints), ':' marking each piece's static end.
func RuntimeGantt(s *core.Schedule, actual []float64, width int) (string, error) {
	rows, err := RuntimeRows(s, actual)
	if err != nil {
		return "", err
	}
	if width <= 0 {
		width = 80
	}
	h := s.Plan.Hyperperiod
	scale := func(t float64) int {
		c := int(math.Round(t / h * float64(width)))
		if c < 0 {
			c = 0
		}
		if c > width {
			c = width
		}
		return c
	}
	lanes := make([][]byte, s.Plan.Set.N())
	for i := range lanes {
		lanes[i] = []byte(strings.Repeat(".", width))
	}
	taskIdx := map[string]int{}
	for i, t := range s.Plan.Set.Tasks {
		taskIdx[t.Name] = i
	}
	for _, r := range rows {
		lane := lanes[taskIdx[r.Task]]
		if c := scale(r.StaticEndMs); c < width && lane[c] == '.' {
			lane[c] = ':'
		}
		if r.ObservedCycles <= 0 {
			continue
		}
		from, to := scale(r.StartMs), scale(r.EndMs)
		if to == from && to < width {
			to++
		}
		for c := from; c < to; c++ {
			lane[c] = '#'
		}
	}
	energy, _, err := s.EnergyUnder(actual)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	nameW := 0
	for _, t := range s.Plan.Set.Tasks {
		if len(t.Name) > nameW {
			nameW = len(t.Name)
		}
	}
	fmt.Fprintf(&b, "%s runtime execution (greedy reclamation), H=%.0fms, energy=%.4g\n", s.Objective, h, energy)
	for i, t := range s.Plan.Set.Tasks {
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, t.Name, lanes[i])
	}
	fmt.Fprintf(&b, "%-*s 0%s%.0fms\n", nameW, "", strings.Repeat(" ", width-1), h)
	return b.String(), nil
}
