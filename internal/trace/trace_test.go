package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

func buildSchedule(t *testing.T) *core.Schedule {
	t.Helper()
	rng := stats.NewRNG(3)
	set, err := workload.RandomFeasible(rng, workload.RandomConfig{
		N: 3, Ratio: 0.3, Utilization: 0.7,
	}, 50, func(s *task.Set) bool { return core.Feasible(s, core.Config{}) == nil })
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Build(set, core.Config{Objective: core.AverageCase})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRowsComplete(t *testing.T) {
	s := buildSchedule(t)
	rows := Rows(s)
	if len(rows) != len(s.Plan.Subs) {
		t.Fatalf("%d rows for %d subs", len(rows), len(s.Plan.Subs))
	}
	for i, r := range rows {
		if r.Order != i {
			t.Fatalf("row %d out of order", i)
		}
		if r.End <= 0 && s.WCWork[i] > 0 {
			t.Errorf("row %d has non-positive end", i)
		}
		if r.Task == "" {
			t.Errorf("row %d missing task name", i)
		}
	}
}

func TestCSVHeaderAndShape(t *testing.T) {
	s := buildSchedule(t)
	csv := CSV(s)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if !strings.HasPrefix(lines[0], "order,task,instance,sub,") {
		t.Errorf("header %q", lines[0])
	}
	if len(lines) != len(s.Plan.Subs)+1 {
		t.Errorf("%d lines for %d subs", len(lines), len(s.Plan.Subs))
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != 8 {
			t.Errorf("malformed CSV row %q", l)
		}
	}
}

func TestGanttRender(t *testing.T) {
	s := buildSchedule(t)
	g := Gantt(s, 60)
	if !strings.Contains(g, "ACS") {
		t.Error("Gantt missing objective label")
	}
	lines := strings.Split(strings.TrimSpace(g), "\n")
	// Header + one lane per task + axis.
	if len(lines) != s.Plan.Set.N()+2 {
		t.Errorf("%d lines", len(lines))
	}
	if !strings.Contains(g, "#") {
		t.Error("Gantt has no execution marks")
	}
	// Default width fallback.
	if g0 := Gantt(s, 0); !strings.Contains(g0, "#") {
		t.Error("default width render failed")
	}
}

func TestVoltageProfile(t *testing.T) {
	s := buildSchedule(t)
	actual := make([]float64, len(s.Plan.Instances))
	for i, in := range s.Plan.Instances {
		actual[i] = s.Plan.Set.Tasks[in.TaskIndex].ACEC
	}
	p, err := VoltageProfile(s, actual)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(p), "\n")
	if len(lines) != s.Plan.Set.N()+1 {
		t.Errorf("%d profile lines", len(lines))
	}
	if _, err := VoltageProfile(s, actual[:1]); err == nil {
		t.Error("short actual vector accepted")
	}
}

func TestSortRowsByEnd(t *testing.T) {
	s := buildSchedule(t)
	rows := Rows(s)
	SortRowsByEnd(rows)
	for i := 1; i < len(rows); i++ {
		if rows[i].End < rows[i-1].End {
			t.Fatal("rows not sorted by end")
		}
	}
}
