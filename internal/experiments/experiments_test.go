package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// Budgets here are deliberately tiny: these tests check wiring, shape and
// invariants of every experiment harness, not statistical significance —
// cmd/experiments regenerates the real numbers.

func tinyCommon() Common {
	return Common{Sets: 2, Reps: 10, Seed: 77, Workers: 2}
}

func TestFig6aShapeAndRendering(t *testing.T) {
	cells, err := Fig6a(Fig6aConfig{
		Common:     tinyCommon(),
		TaskCounts: []int{2, 4},
		Ratios:     []float64{0.1, 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("%d cells, want 4", len(cells))
	}
	for _, c := range cells {
		if c.Failures > 0 {
			t.Errorf("cell N=%d ratio=%g had %d failures", c.N, c.Ratio, c.Failures)
		}
		if c.Improvement.N() != 2 {
			t.Errorf("cell N=%d ratio=%g has %d samples", c.N, c.Ratio, c.Improvement.N())
		}
	}
	table := Table(cells, "test")
	if !strings.Contains(table, "N\\ratio") || !strings.Contains(table, "%") {
		t.Errorf("table render:\n%s", table)
	}
	csv := CSV(cells)
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 5 {
		t.Errorf("CSV render:\n%s", csv)
	}
}

func TestFig6aDeterministic(t *testing.T) {
	run := func() float64 {
		cells, err := Fig6a(Fig6aConfig{
			Common:     Common{Sets: 2, Reps: 5, Seed: 5, Workers: 4},
			TaskCounts: []int{3},
			Ratios:     []float64{0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		return cells[0].Improvement.Mean()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("Fig6a not deterministic across runs: %g vs %g", a, b)
	}
}

func TestFig6bCNCOnly(t *testing.T) {
	cells, err := Fig6b(Fig6bConfig{
		Common: tinyCommon(),
		Ratios: []float64{0.1},
		Apps:   []string{"CNC"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].App != "CNC" {
		t.Fatalf("cells %+v", cells)
	}
	if cells[0].Improvement <= 0 {
		t.Errorf("CNC at ratio 0.1 improvement %g, want positive", cells[0].Improvement)
	}
	if !strings.Contains(AppTable(cells), "CNC") || !strings.Contains(AppCSV(cells), "CNC") {
		t.Error("renders missing app name")
	}
}

func TestFig6bUnknownApp(t *testing.T) {
	if _, err := Fig6b(Fig6bConfig{Common: tinyCommon(), Apps: []string{"nope"}}); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestSlackPolicyAblationOrdering(t *testing.T) {
	cells, err := SlackPolicyAblation(tinyCommon(), 3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, c := range cells {
		byKey[c.Schedule+"/"+c.Policy.String()] = c.RelEnergy.Mean()
	}
	// NoDVS is the normaliser: relative energy 1 for the WCS schedule.
	if v := byKey["WCS/nodvs"]; v < 0.999 || v > 1.001 {
		t.Errorf("WCS/nodvs = %g, want 1", v)
	}
	// Greedy beats static beats nodvs for both schedules.
	for _, sched := range []string{"ACS", "WCS"} {
		if !(byKey[sched+"/greedy"] <= byKey[sched+"/static"]*1.001) {
			t.Errorf("%s: greedy %g > static %g", sched, byKey[sched+"/greedy"], byKey[sched+"/static"])
		}
		if !(byKey[sched+"/static"] <= byKey[sched+"/nodvs"]*1.001) {
			t.Errorf("%s: static %g > nodvs %g", sched, byKey[sched+"/static"], byKey[sched+"/nodvs"])
		}
	}
	if !strings.Contains(SlackTable(cells), "greedy") {
		t.Error("slack table render broken")
	}
}

func TestSubInstanceCapAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("GAP solves are slow")
	}
	cells, err := SubInstanceCapAblation(tinyCommon(), 0.1, []int{2, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("%d cells", len(cells))
	}
	// Both caps solve on GAP (the RM-execution split fallback keeps even
	// heavily merged plans feasible); the finer granularity must not have
	// fewer sub-instances than the coarser one.
	for _, c := range cells {
		if c.Infeasible {
			t.Errorf("cap=%d unexpectedly infeasible on GAP", c.Cap)
		}
	}
	if !cells[0].Infeasible && !cells[1].Infeasible && cells[0].Subs > cells[1].Subs {
		t.Errorf("cap=2 produced more pieces (%d) than cap=12 (%d)", cells[0].Subs, cells[1].Subs)
	}
	// The infeasible marker renders when a cell reports it.
	if !strings.Contains(CapTable([]CapCell{{Cap: 3, Infeasible: true}}), "infeasible") {
		t.Error("cap table render missing infeasible marker")
	}
}

func TestTransitionOverheadMonotone(t *testing.T) {
	cells, err := TransitionOverheadAblation(tinyCommon(), 3, 0.1, []sim.Overhead{
		{},
		{TimeMs: 0.05, EnergyPerSwitch: 0.5, Epsilon: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("%d cells", len(cells))
	}
	if !strings.Contains(OverheadTable(cells), "missRate") {
		t.Error("overhead table render broken")
	}
}

func TestDiscreteLevelAblation(t *testing.T) {
	cells, err := DiscreteLevelAblation(tinyCommon(), 3, 0.1, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("%d cells", len(cells))
	}
	if !strings.Contains(LevelTable(cells), "cont") {
		t.Error("level table render broken")
	}
}

func TestSolverCrossCheckInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("reference solvers are slow")
	}
	r, err := SolverCrossCheck(tinyCommon(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// The reference solvers may refine the structured solver's solution by
	// a few percent on small instances (they explore joint moves CD's
	// sweeps approximate); anything beyond that signals CD is broken. WCS
	// must sit at or above the YDS lower bound.
	if r.NM < r.CD*(1-0.05) {
		t.Errorf("Nelder-Mead %g beats CD %g by more than 5%%", r.NM, r.CD)
	}
	if r.PenaltyViolation <= 1e-3 && r.Penalty < r.CD*(1-0.05) {
		t.Errorf("penalty %g beats CD %g by more than 5%%", r.Penalty, r.CD)
	}
	if r.WCSEnergy < r.YDSLower*(1-1e-6) {
		t.Errorf("WCS %g below YDS bound %g", r.WCSEnergy, r.YDSLower)
	}
	if !strings.Contains(r.Render(), "coordinate descent") {
		t.Error("cross-check render broken")
	}
}
