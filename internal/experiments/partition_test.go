package experiments

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/partition"
)

// TestPartitionSweepDeterminism pins the E11 harness to the standing grid
// contract: identical cells for any worker count, cache on or off. The
// partition driver nests its per-core fan-out inside the sweep's own grid
// jobs, so this also exercises nested ForEach under both cache states.
func TestPartitionSweepDeterminism(t *testing.T) {
	run := func(workers int, cached bool) []PartitionCell {
		var memo *grid.Memo
		if cached {
			memo = grid.NewMemo()
		}
		cells, err := PartitionSweep(PartitionSweepConfig{
			Common: Common{Sets: 2, Seed: 2005, Grid: grid.New(workers, memo)},
			Cores:  []int{1, 2},
			N:      5,
			Modes:  []partition.Mode{partition.FirstFitDecreasing, partition.WorstFit},
			Moves:  1,
		})
		if err != nil {
			t.Fatalf("workers=%d cached=%v: %v", workers, cached, err)
		}
		return cells
	}
	ref := run(1, false)
	for _, workers := range []int{1, 4} {
		for _, cached := range []bool{false, true} {
			got := run(workers, cached)
			if len(got) != len(ref) {
				t.Fatalf("workers=%d cached=%v: %d cells, ref %d", workers, cached, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("workers=%d cached=%v: cell %d diverged:\n got %+v\n ref %+v",
						workers, cached, i, got[i], ref[i])
				}
			}
		}
	}
}
