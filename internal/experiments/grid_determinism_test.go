package experiments

import (
	"fmt"
	"testing"

	"repro/internal/grid"
)

// TestGridDeterminism pins the grid engine's output contract: every figure
// and table is byte-identical for any worker count and with the memo on or
// off. It renders Fig. 6(a) (Table + CSV), Fig. 6(b) (AppTable + AppCSV) and
// the slack ablation under Workers ∈ {1, 2, 8} × cache ∈ {on, off} and
// compares every rendering against the Workers=1/cache-on reference.
func TestGridDeterminism(t *testing.T) {
	render := func(g *grid.Runner) string {
		c := Common{Sets: 2, Reps: 5, Seed: 5, Grid: g}
		cells, err := Fig6a(Fig6aConfig{
			Common:     c,
			TaskCounts: []int{2, 3},
			Ratios:     []float64{0.1},
		})
		if err != nil {
			t.Fatal(err)
		}
		out := Table(cells, "determinism") + "\n" + CSV(cells)

		apps, err := Fig6b(Fig6bConfig{Common: c, Apps: []string{"CNC"}, Ratios: []float64{0.1, 0.5}})
		if err != nil {
			t.Fatal(err)
		}
		out += "\n" + AppTable(apps) + "\n" + AppCSV(apps)

		slack, err := SlackPolicyAblation(c, 3, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		out += "\n" + SlackTable(slack)

		// The weighted ablation is the adversarial case for cache on/off
		// identity: its K>0 ACS builds always miss while their WarmStart is
		// a cross-harness WCS hit, so a warm start that behaved differently
		// for cached schedules would surface here (it once did: the solver
		// compared task sets by pointer).
		weighted, err := WeightedObjectiveAblation(c, 3, 0.1, []int{0, 2})
		if err != nil {
			t.Fatal(err)
		}
		return out + "\n" + WeightedTable(weighted)
	}

	var want string
	for _, workers := range []int{1, 2, 8} {
		for _, cache := range []bool{true, false} {
			var memo *grid.Memo
			if cache {
				memo = grid.NewMemo()
			}
			got := render(grid.New(workers, memo))
			if want == "" {
				want = got // workers=1, cache=on reference
				continue
			}
			if got != want {
				t.Errorf("output diverges at workers=%d cache=%v:\n--- got ---\n%s\n--- want ---\n%s",
					workers, cache, got, want)
			}
		}
	}
}

// TestCrossHarnessSolveSharing proves the memoization the grid exists for:
// harnesses sweeping the same (N, ratio) cell derive identical task sets, so
// a shared memo resolves their WCS/ACS pipelines without new solves.
func TestCrossHarnessSolveSharing(t *testing.T) {
	memo := grid.NewMemo()
	g := grid.New(2, memo)
	c := Common{Sets: 2, Reps: 5, Seed: 5, Grid: g}

	if _, err := Fig6a(Fig6aConfig{Common: c, TaskCounts: []int{3}, Ratios: []float64{0.1}}); err != nil {
		t.Fatal(err)
	}
	after6a := memo.Stats()
	if after6a.ScheduleMisses == 0 {
		t.Fatal("Fig6a solved nothing")
	}

	// The slack and overhead ablations at the same cell reuse every solve.
	if _, err := SlackPolicyAblation(c, 3, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := TransitionOverheadAblation(c, 3, 0.1, nil); err != nil {
		t.Fatal(err)
	}
	final := memo.Stats()
	if final.ScheduleMisses != after6a.ScheduleMisses {
		t.Errorf("ablations re-solved %d schedules the Fig6a cell already solved (stats %+v)",
			final.ScheduleMisses-after6a.ScheduleMisses, final)
	}
	if final.ScheduleHits <= after6a.ScheduleHits {
		t.Errorf("ablations hit the memo %d times, want > %d",
			final.ScheduleHits, after6a.ScheduleHits)
	}
}

// TestFig6bSeedsVaryByRatio pins the PR 3 seed-derivation fix: two ratios of
// the same application must not share simulation seed streams (they did
// before, making per-seed spreads spuriously correlated across ratios).
func TestFig6bSeedsVaryByRatio(t *testing.T) {
	cells, err := Fig6b(Fig6bConfig{
		Common: Common{Sets: 3, Reps: 5, Seed: 7},
		Apps:   []string{"CNC"},
		Ratios: []float64{0.1, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("%d cells", len(cells))
	}
	// With shared streams the per-seed summaries would be draw-for-draw
	// correlated; distinct streams make equality of the spread fingerprint
	// astronomically unlikely.
	fp := func(c AppCell) string {
		return fmt.Sprintf("%.12g|%.12g|%.12g", c.Seeds.Min(), c.Seeds.Max(), c.Seeds.Std())
	}
	if fp(cells[0]) == fp(cells[1]) {
		t.Errorf("ratios 0.1 and 0.5 share seed streams: %s", fp(cells[0]))
	}
}
