package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/stats"
)

// --- E10: probability-weighted objective --------------------------------------

// WeightedCell compares the paper's point-ACEC objective against the
// probability-weighted (scenario) objective it sketches in §3.2.
type WeightedCell struct {
	Scenarios int // 0 = point-ACEC
	// SimEnergy is the realised mean runtime energy under the paper's
	// stochastic workloads, relative to the WCS baseline (improvement %).
	Improvement stats.Summary
	// ObjGap is |objective − realised mean energy| / realised, measuring
	// how well each offline objective predicts the online outcome.
	ObjGap stats.Summary
}

// WeightedObjectiveAblation (E10) solves ACS with the point-ACEC objective
// and with K-scenario probability-weighted objectives, then simulates all of
// them under identical stochastic workloads. It quantifies the paper's claim
// that the average workload is "a good enough approximation" of the expected
// energy: if the claim holds, the scenario objectives should improve little
// over point-ACEC while predicting the realised energy more accurately.
// Sets are grid jobs; the WCS baseline and the K=0 ACS build are the same
// memo entries the other harnesses at this (N, ratio) cell use.
func WeightedObjectiveAblation(c Common, n int, ratio float64, scenarioCounts []int) ([]WeightedCell, error) {
	cc := c.withDefaults()
	if len(scenarioCounts) == 0 {
		scenarioCounts = []int{0, 5, 10}
	}
	cells := make([]WeightedCell, len(scenarioCounts))
	for i, k := range scenarioCounts {
		cells[i] = WeightedCell{Scenarios: k}
	}

	type setRes struct {
		imp, gap []float64 // per scenario count
	}
	g := cc.Grid
	results, err := grid.CollectErr(g, cc.Sets, func(i int) (setRes, error) {
		set, rng, err := randomCellSet(cc, n, ratio, i)
		if err != nil {
			return setRes{}, err
		}
		wcsCfg := core.Config{Objective: core.WorstCase, Model: cc.Model,
			Starts: cc.Starts, StartWorkers: 1}
		wcs, err := g.BuildSchedule(set, wcsCfg)
		if err != nil {
			return setRes{}, err
		}
		simSeed := rng.Uint64()
		// Scenario streams must be independent of the set-generation prefix
		// (rng is mid-stream here) and *identical* between the solve and the
		// ExpectedEnergy prediction: the solver ORs ScenarioSeed with 1, so
		// pre-set that bit and pass the same value to both.
		scenSeed := rng.Uint64() | 1
		wcsPlan, err := g.CompileSchedule(wcs)
		if err != nil {
			return setRes{}, err
		}
		base, err := wcsPlan.Run(sim.Config{Policy: sim.Greedy, Hyperperiods: cc.Reps, Seed: simSeed})
		if err != nil {
			return setRes{}, err
		}

		res := setRes{imp: make([]float64, len(scenarioCounts)), gap: make([]float64, len(scenarioCounts))}
		for ci, k := range scenarioCounts {
			acs, err := g.BuildSchedule(set, core.Config{
				Objective:    core.AverageCase,
				Model:        cc.Model,
				WarmStart:    wcs,
				Scenarios:    k,
				ScenarioSeed: scenSeed,
				Starts:       cc.Starts,
				StartWorkers: 1,
			})
			if err != nil {
				return setRes{}, err
			}
			acsPlan, err := g.CompileSchedule(acs)
			if err != nil {
				return setRes{}, err
			}
			r, err := acsPlan.Run(sim.Config{Policy: sim.Greedy, Hyperperiods: cc.Reps, Seed: simSeed})
			if err != nil {
				return setRes{}, err
			}
			res.imp[ci] = 100 * (base.Energy - r.Energy) / base.Energy

			realised := r.Energy / float64(cc.Reps)
			predicted := acs.Energy // point objective
			if k > 0 {
				if predicted, err = acs.ExpectedEnergy(k, scenSeed); err != nil {
					return setRes{}, err
				}
			}
			gap := predicted - realised
			if gap < 0 {
				gap = -gap
			}
			res.gap[ci] = 100 * gap / realised
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}

	for _, r := range results {
		for ci := range cells {
			cells[ci].Improvement.Add(r.imp[ci])
			cells[ci].ObjGap.Add(r.gap[ci])
		}
	}
	return cells, nil
}

// WeightedTable renders E10.
func WeightedTable(cells []WeightedCell) string {
	var b strings.Builder
	b.WriteString("E10 probability-weighted objective: scenarios vs point-ACEC\n")
	fmt.Fprintf(&b, "%-10s %-18s %-20s\n", "scenarios", "improvement", "objective gap")
	for _, c := range cells {
		label := fmt.Sprintf("%d", c.Scenarios)
		if c.Scenarios == 0 {
			label = "ACEC"
		}
		fmt.Fprintf(&b, "%-10s %6.1f%% ±%-8.1f %6.1f%% ±%.1f\n",
			label, c.Improvement.Mean(), c.Improvement.CI95(),
			c.ObjGap.Mean(), c.ObjGap.CI95())
	}
	return b.String()
}
