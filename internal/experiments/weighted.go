package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// --- E10: probability-weighted objective --------------------------------------

// WeightedCell compares the paper's point-ACEC objective against the
// probability-weighted (scenario) objective it sketches in §3.2.
type WeightedCell struct {
	Scenarios int // 0 = point-ACEC
	// SimEnergy is the realised mean runtime energy under the paper's
	// stochastic workloads, relative to the WCS baseline (improvement %).
	Improvement stats.Summary
	// ObjGap is |objective − realised mean energy| / realised, measuring
	// how well each offline objective predicts the online outcome.
	ObjGap stats.Summary
}

// WeightedObjectiveAblation (E10) solves ACS with the point-ACEC objective
// and with K-scenario probability-weighted objectives, then simulates all of
// them under identical stochastic workloads. It quantifies the paper's claim
// that the average workload is "a good enough approximation" of the expected
// energy: if the claim holds, the scenario objectives should improve little
// over point-ACEC while predicting the realised energy more accurately.
func WeightedObjectiveAblation(c Common, n int, ratio float64, scenarioCounts []int) ([]WeightedCell, error) {
	cc := c.withDefaults()
	if len(scenarioCounts) == 0 {
		scenarioCounts = []int{0, 5, 10}
	}
	cells := make([]WeightedCell, len(scenarioCounts))
	for i, k := range scenarioCounts {
		cells[i] = WeightedCell{Scenarios: k}
	}

	for i := 0; i < cc.Sets; i++ {
		seed := stats.NewRNG(cc.Seed + 555 + uint64(i)*0x9e3779b97f4a7c15).Uint64()
		rng := stats.NewRNG(seed)
		set, err := workload.RandomFeasible(rng, workload.RandomConfig{
			N: n, Ratio: ratio, Utilization: cc.Utilization, Model: cc.Model,
		}, 50, feasibleFilter(cc.Model))
		if err != nil {
			return nil, err
		}
		wcs, err := core.Build(set, core.Config{Objective: core.WorstCase, Model: cc.Model})
		if err != nil {
			return nil, err
		}
		simSeed := rng.Uint64()
		base, err := sim.Run(wcs, sim.Config{Policy: sim.Greedy, Hyperperiods: cc.Reps, Seed: simSeed, Workers: cc.SimWorkers})
		if err != nil {
			return nil, err
		}

		for ci, k := range scenarioCounts {
			acs, err := core.Build(set, core.Config{
				Objective:    core.AverageCase,
				Model:        cc.Model,
				WarmStart:    wcs,
				Scenarios:    k,
				ScenarioSeed: seed,
			})
			if err != nil {
				return nil, err
			}
			r, err := sim.Run(acs, sim.Config{Policy: sim.Greedy, Hyperperiods: cc.Reps, Seed: simSeed, Workers: cc.SimWorkers})
			if err != nil {
				return nil, err
			}
			cells[ci].Improvement.Add(100 * (base.Energy - r.Energy) / base.Energy)

			realised := r.Energy / float64(cc.Reps)
			predicted := acs.Energy // point objective
			if k > 0 {
				if predicted, err = acs.ExpectedEnergy(k, seed); err != nil {
					return nil, err
				}
			}
			gap := predicted - realised
			if gap < 0 {
				gap = -gap
			}
			cells[ci].ObjGap.Add(100 * gap / realised)
		}
	}
	return cells, nil
}

// WeightedTable renders E10.
func WeightedTable(cells []WeightedCell) string {
	var b strings.Builder
	b.WriteString("E10 probability-weighted objective: scenarios vs point-ACEC\n")
	fmt.Fprintf(&b, "%-10s %-18s %-20s\n", "scenarios", "improvement", "objective gap")
	for _, c := range cells {
		label := fmt.Sprintf("%d", c.Scenarios)
		if c.Scenarios == 0 {
			label = "ACEC"
		}
		fmt.Fprintf(&b, "%-10s %6.1f%% ±%-8.1f %6.1f%% ±%.1f\n",
			label, c.Improvement.Mean(), c.Improvement.CI95(),
			c.ObjGap.Mean(), c.ObjGap.CI95())
	}
	return b.String()
}
