package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/yds"
)

// The random-set ablations (E5, E7, E8, E10) all sweep the same kind of
// coordinate — the i-th random task set of an (N, ratio) cell — and differ
// only in what they run on the solved schedules. Each drains its set loop
// through the grid pool (one job per set, results folded in set order) and
// derives its sets via randomCellSet, so the four harnesses and the matching
// Fig. 6(a) cell all resolve to the *same* WCS/ACS solves in the grid memo.
// (Before PR 3 each harness salted its seeds differently and re-ran the
// whole generate→WCS→ACS pipeline from scratch; absolute ablation values
// therefore differ from PR 2, while every invariant the tests pin —
// orderings, normalisations — is seed-independent.)

// --- E5: slack-policy ablation ---------------------------------------------

// SlackCell reports the runtime energy of one (schedule, policy) pairing
// normalised to the NoDVS baseline.
type SlackCell struct {
	Schedule string // "ACS" or "WCS"
	Policy   sim.SlackPolicy
	// RelEnergy is energy / NoDVS energy across task sets.
	RelEnergy stats.Summary
}

// SlackPolicyAblation isolates the offline and online contributions: it runs
// ACS and WCS schedules under greedy, static and no-DVS runtime policies on
// random task sets (N tasks, given ratio) and reports energies relative to
// NoDVS. The paper's headline gain needs *both* the ACS offline schedule and
// the greedy online policy; this table shows each alone.
func SlackPolicyAblation(c Common, n int, ratio float64) ([]SlackCell, error) {
	cc := c.withDefaults()
	policies := []sim.SlackPolicy{sim.Greedy, sim.Static, sim.NoDVS}
	cells := make([]SlackCell, 0, 6)
	for _, objName := range []string{"ACS", "WCS"} {
		for _, pol := range policies {
			cells = append(cells, SlackCell{Schedule: objName, Policy: pol})
		}
	}

	g := cc.Grid
	results, err := grid.CollectErr(g, cc.Sets, func(i int) ([]float64, error) {
		set, rng, err := randomCellSet(cc, n, ratio, i)
		if err != nil {
			return nil, err
		}
		acs, wcs, err := solvePair(g, set, cc, core.Config{})
		if err != nil {
			return nil, err
		}
		simSeed := rng.Uint64()
		acsPlan, err := g.CompileSchedule(acs)
		if err != nil {
			return nil, err
		}
		wcsPlan, err := g.CompileSchedule(wcs)
		if err != nil {
			return nil, err
		}

		// NoDVS energy is policy-invariant across schedules up to workload
		// draws; use the WCS schedule's run as the normaliser. The grid pool
		// is already saturated by per-set jobs, so inner sims stay serial.
		base, err := wcsPlan.Run(sim.Config{Policy: sim.NoDVS, Hyperperiods: cc.Reps, Seed: simSeed})
		if err != nil {
			return nil, err
		}
		rel := make([]float64, len(cells))
		for ci := range cells {
			p := acsPlan
			if cells[ci].Schedule == "WCS" {
				p = wcsPlan
			}
			r, err := p.Run(sim.Config{Policy: cells[ci].Policy, Hyperperiods: cc.Reps, Seed: simSeed})
			if err != nil {
				return nil, err
			}
			rel[ci] = r.Energy / base.Energy
		}
		return rel, nil
	})
	if err != nil {
		return nil, err
	}

	for _, rel := range results {
		for ci := range cells {
			cells[ci].RelEnergy.Add(rel[ci])
		}
	}
	return cells, nil
}

// SlackTable renders the slack ablation.
func SlackTable(cells []SlackCell) string {
	var b strings.Builder
	b.WriteString("E5 slack-policy ablation: energy relative to NoDVS (lower is better)\n")
	fmt.Fprintf(&b, "%-10s %-8s %-20s\n", "schedule", "policy", "relative energy")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-10s %-8s %6.3f ±%.3f\n",
			c.Schedule, c.Policy, c.RelEnergy.Mean(), c.RelEnergy.CI95())
	}
	return b.String()
}

// --- E6: sub-instance cap ablation ------------------------------------------

// CapCell reports GAP improvement at one preemption-granularity cap.
type CapCell struct {
	Cap         int // 0 = unlimited
	Subs        int
	Improvement float64
	// Infeasible records that the cap merged segments so aggressively the
	// worst case no longer fits at Vmax — itself an ablation finding: the
	// fully-preemptive expansion is not just an optimisation, it is what
	// keeps tight task sets schedulable.
	Infeasible bool
}

// SubInstanceCapAblation sweeps preempt.Options.MaxSubsPerInstance on the
// GAP application at the given ratio, quantifying what the fully-preemptive
// expansion buys against its NLP cost. Caps are independent jobs on the grid
// pool (each cap changes the preemptive expansion, so nothing is shared
// between them — but re-runs at a cap Fig. 6(b) also uses hit its memo
// entry).
func SubInstanceCapAblation(c Common, ratio float64, caps []int) ([]CapCell, error) {
	cc := c.withDefaults()
	if len(caps) == 0 {
		caps = []int{2, 4, 8, 16, 0} // 0 = the full fully-preemptive expansion
	}
	set, err := workload.GAP(ratio, cc.Utilization, cc.Model)
	if err != nil {
		return nil, err
	}
	g := cc.Grid
	return grid.Collect(g, len(caps), func(i int) CapCell {
		pre := core.Config{}
		pre.Preempt.MaxSubsPerInstance = caps[i]
		imp, subs, err := compareOnSet(g, set, cc, cc.Seed, pre)
		if err != nil {
			// Aggressive merging can make the worst case unschedulable at
			// Vmax; report the cell rather than aborting the sweep.
			return CapCell{Cap: caps[i], Infeasible: true}
		}
		return CapCell{Cap: caps[i], Subs: subs, Improvement: imp}
	}), nil
}

// CapTable renders the cap ablation.
func CapTable(cells []CapCell) string {
	var b strings.Builder
	b.WriteString("E6 sub-instance cap ablation (GAP): preemption granularity vs gain\n")
	fmt.Fprintf(&b, "%-6s %-8s %-12s\n", "cap", "subs", "improvement")
	for _, c := range cells {
		capLabel := fmt.Sprintf("%d", c.Cap)
		if c.Cap == 0 {
			capLabel = "inf"
		}
		if c.Infeasible {
			fmt.Fprintf(&b, "%-6s %-8s %s\n", capLabel, "-", "infeasible at Vmax (over-merged)")
			continue
		}
		fmt.Fprintf(&b, "%-6s %-8d %6.1f%%\n", capLabel, c.Subs, c.Improvement)
	}
	return b.String()
}

// --- E7: voltage-transition overhead ablation --------------------------------

// OverheadCell reports improvement when each voltage switch costs time and
// energy, validating the paper's negligible-overhead assumption.
type OverheadCell struct {
	TimeMs      float64
	EnergyPerSw float64
	Improvement stats.Summary
	MissRate    float64 // fraction of runs with any deadline miss
}

// TransitionOverheadAblation re-runs the Fig. 6(a) comparison at one (N,
// ratio) cell while charging per-switch overhead. The per-set solves are the
// Fig. 6(a) cell's own (shared through the memo); only the simulations
// differ per overhead point.
func TransitionOverheadAblation(c Common, n int, ratio float64, overheads []sim.Overhead) ([]OverheadCell, error) {
	cc := c.withDefaults()
	if len(overheads) == 0 {
		overheads = []sim.Overhead{
			{},
			{TimeMs: 0.01, EnergyPerSwitch: 0.1, Epsilon: 0.01},
			{TimeMs: 0.05, EnergyPerSwitch: 0.5, Epsilon: 0.01},
			{TimeMs: 0.1, EnergyPerSwitch: 1.0, Epsilon: 0.01},
		}
	}
	cells := make([]OverheadCell, len(overheads))
	for oi, ov := range overheads {
		cells[oi] = OverheadCell{TimeMs: ov.TimeMs, EnergyPerSw: ov.EnergyPerSwitch}
	}

	type setRes struct {
		imp    []float64 // per overhead point
		missed []bool
	}
	g := cc.Grid
	results, err := grid.CollectErr(g, cc.Sets, func(i int) (setRes, error) {
		set, rng, err := randomCellSet(cc, n, ratio, i)
		if err != nil {
			return setRes{}, err
		}
		acs, wcs, err := solvePair(g, set, cc, core.Config{})
		if err != nil {
			return setRes{}, err
		}
		acsPlan, err := g.CompileSchedule(acs)
		if err != nil {
			return setRes{}, err
		}
		wcsPlan, err := g.CompileSchedule(wcs)
		if err != nil {
			return setRes{}, err
		}
		simSeed := rng.Uint64()
		res := setRes{imp: make([]float64, len(overheads)), missed: make([]bool, len(overheads))}
		for oi, ov := range overheads {
			imp, ra, rb, err := sim.ComparePlans(acsPlan, wcsPlan, sim.Config{
				Policy: sim.Greedy, Hyperperiods: cc.Reps, Seed: simSeed, Overhead: ov,
			})
			if err != nil {
				return setRes{}, err
			}
			res.imp[oi] = imp
			res.missed[oi] = ra.DeadlineMisses+rb.DeadlineMisses > 0
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}

	misses := make([]int, len(overheads))
	for _, r := range results {
		for oi := range cells {
			cells[oi].Improvement.Add(r.imp[oi])
			if r.missed[oi] {
				misses[oi]++
			}
		}
	}
	for oi := range cells {
		cells[oi].MissRate = float64(misses[oi]) / float64(cc.Sets)
	}
	return cells, nil
}

// OverheadTable renders the overhead ablation.
func OverheadTable(cells []OverheadCell) string {
	var b strings.Builder
	b.WriteString("E7 transition-overhead ablation: improvement under per-switch cost\n")
	fmt.Fprintf(&b, "%-10s %-12s %-16s %-8s\n", "time(ms)", "energy/sw", "improvement", "missRate")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-10g %-12g %6.1f%% ±%-6.1f %6.2f\n",
			c.TimeMs, c.EnergyPerSw, c.Improvement.Mean(), c.Improvement.CI95(), c.MissRate)
	}
	return b.String()
}

// --- E8: discrete voltage levels ---------------------------------------------

// LevelCell reports improvement on an L-level processor.
type LevelCell struct {
	Levels      int // 0 = continuous
	Improvement stats.Summary
}

// DiscreteLevelAblation re-runs the comparison with the runtime voltage
// quantised up to {2,4,8} uniformly spaced levels. Static schedules are
// still solved continuously (as the paper assumes); only the runtime
// dispatcher quantises, which preserves deadline safety because quantising
// up never slows execution.
func DiscreteLevelAblation(c Common, n int, ratio float64, levelCounts []int) ([]LevelCell, error) {
	cc := c.withDefaults()
	if len(levelCounts) == 0 {
		levelCounts = []int{0, 8, 4, 2}
	}
	cells := make([]LevelCell, len(levelCounts))
	for li, l := range levelCounts {
		cells[li] = LevelCell{Levels: l}
	}

	g := cc.Grid
	results, err := grid.CollectErr(g, cc.Sets, func(i int) ([]float64, error) {
		set, rng, err := randomCellSet(cc, n, ratio, i)
		if err != nil {
			return nil, err
		}
		acs, wcs, err := solvePair(g, set, cc, core.Config{})
		if err != nil {
			return nil, err
		}
		simSeed := rng.Uint64()
		imps := make([]float64, len(levelCounts))
		for li, l := range levelCounts {
			var imp float64
			if l == 0 {
				// Continuous: run the memoized compiled plans directly.
				acsPlan, err := g.CompileSchedule(acs)
				if err != nil {
					return nil, err
				}
				wcsPlan, err := g.CompileSchedule(wcs)
				if err != nil {
					return nil, err
				}
				if imp, _, _, err = sim.ComparePlans(acsPlan, wcsPlan, sim.Config{
					Policy: sim.Greedy, Hyperperiods: cc.Reps, Seed: simSeed,
				}); err != nil {
					return nil, err
				}
			} else {
				levels, err := power.UniformLevels(cc.Model, l)
				if err != nil {
					return nil, err
				}
				dm, err := power.NewDiscrete(cc.Model, levels)
				if err != nil {
					return nil, err
				}
				// Swap the runtime model; static End/WCWork stay as solved.
				// The cached schedules are shared, so clone before mutating.
				a2 := core.CloneSchedule(acs)
				a2.Model = dm
				b2 := core.CloneSchedule(wcs)
				b2.Model = dm
				if imp, _, _, err = sim.Compare(a2, b2, sim.Config{
					Policy: sim.Greedy, Hyperperiods: cc.Reps, Seed: simSeed,
				}); err != nil {
					return nil, err
				}
			}
			imps[li] = imp
		}
		return imps, nil
	})
	if err != nil {
		return nil, err
	}

	for _, imps := range results {
		for li := range cells {
			cells[li].Improvement.Add(imps[li])
		}
	}
	return cells, nil
}

// LevelTable renders the discrete-level ablation.
func LevelTable(cells []LevelCell) string {
	var b strings.Builder
	b.WriteString("E8 discrete-level ablation: improvement vs available voltage levels\n")
	fmt.Fprintf(&b, "%-10s %-16s\n", "levels", "improvement")
	for _, c := range cells {
		label := fmt.Sprintf("%d", c.Levels)
		if c.Levels == 0 {
			label = "cont"
		}
		fmt.Fprintf(&b, "%-10s %6.1f%% ±%.1f\n", label, c.Improvement.Mean(), c.Improvement.CI95())
	}
	return b.String()
}

// --- E9: solver cross-check ---------------------------------------------------

// CrossCheckResult compares the production coordinate-descent solver with
// the reference solvers and the YDS lower bound on one small task set.
type CrossCheckResult struct {
	Subs int
	// CD is the coordinate-descent (production) objective.
	CD float64
	// NM is the Nelder–Mead reference objective (end-times only).
	NM float64
	// Penalty is the exterior-penalty reference objective and its residual
	// constraint violation.
	Penalty          float64
	PenaltyViolation float64
	// WCSEnergy is the worst-case static energy of the WCS schedule and
	// YDSLower the optimal preemptive-EDF lower bound for the same jobs.
	WCSEnergy float64
	YDSLower  float64
}

// SolverCrossCheck runs E9 on a random small set (n tasks). Its two
// identical WCS builds (warm-start source and baseline) collapse to one
// solve through the grid memo.
func SolverCrossCheck(c Common, n int) (*CrossCheckResult, error) {
	cc := c.withDefaults()
	g := cc.Grid
	rng := stats.NewRNG(cc.Seed + 4242)
	set, err := workload.RandomFeasible(rng, workload.RandomConfig{
		N: n, Ratio: 0.5, Utilization: cc.Utilization, Model: cc.Model,
	}, 50, feasibleFilter(cc.Model))
	if err != nil {
		return nil, err
	}
	wcsWarm, err := g.BuildSchedule(set, core.Config{Objective: core.WorstCase, Model: cc.Model})
	if err != nil {
		return nil, err
	}
	acs, err := g.BuildSchedule(set, core.Config{
		Objective: core.AverageCase, Model: cc.Model, WarmStart: wcsWarm,
	})
	if err != nil {
		return nil, err
	}
	out := &CrossCheckResult{Subs: len(acs.Plan.Subs), CD: acs.Energy}

	nm := core.CloneSchedule(acs)
	if out.NM, err = core.NewNLP(nm).SolveNelderMead(opt.NelderMeadOptions{
		MaxEvals: 20000, Tol: 1e-10, Step: 0.05,
	}); err != nil {
		return nil, err
	}

	pen := core.CloneSchedule(acs)
	penNLP := core.NewNLP(pen)
	obj, viol, err := penNLP.SolvePenalty(opt.PenaltyOptions{
		Rounds: 4, StepIters: 150,
	}, 1e-3)
	if err != nil {
		return nil, err
	}
	out.Penalty, out.PenaltyViolation = obj, viol

	wcs, err := g.BuildSchedule(set, core.Config{Objective: core.WorstCase, Model: cc.Model})
	if err != nil {
		return nil, err
	}
	out.WCSEnergy = wcs.Energy
	jobs, err := yds.FromTaskSet(set)
	if err != nil {
		return nil, err
	}
	ys, err := yds.Build(jobs)
	if err != nil {
		return nil, err
	}
	if out.YDSLower, err = ys.Energy(cc.Model); err != nil {
		return nil, err
	}
	return out, nil
}

// Render formats the cross-check.
func (r *CrossCheckResult) Render() string {
	var b strings.Builder
	b.WriteString("E9 solver cross-check (avg-case objective; lower is better)\n")
	fmt.Fprintf(&b, "  sub-instances:        %d\n", r.Subs)
	fmt.Fprintf(&b, "  coordinate descent:   %.6g\n", r.CD)
	fmt.Fprintf(&b, "  Nelder-Mead ref:      %.6g\n", r.NM)
	fmt.Fprintf(&b, "  penalty-method ref:   %.6g (violation %.2g)\n", r.Penalty, r.PenaltyViolation)
	fmt.Fprintf(&b, "  WCS worst-case energy %.6g  >=  YDS lower bound %.6g\n", r.WCSEnergy, r.YDSLower)
	return b.String()
}
