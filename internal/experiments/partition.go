package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/grid"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

// PartitionSweepConfig parameterises E11: the multi-core partitioned
// extension — global ACS-vs-WCS improvement as the core count grows, with
// the FFD-vs-worst-fit packing ablation riding along.
type PartitionSweepConfig struct {
	Common
	// Cores is the core-count axis (default {1, 2, 4}).
	Cores []int
	// N is the task count per set (default 8; total utilisation scales
	// with the core count, the per-core target stays Common.Utilization).
	N int
	// Ratio is BCEC/WCEC (default 0.5, the paper's middle series).
	Ratio float64
	// Modes are the packing heuristics to ablate (default FFD, worst-fit).
	Modes []partition.Mode
	// Moves is the cross-core improvement-loop round budget (default 2;
	// single-core cells skip the loop by construction).
	Moves int
}

// PartitionCell is one aggregated (cores, mode) point.
type PartitionCell struct {
	Cores int
	Mode  string
	// Improvement is the distribution of global improvement percentages:
	// 100·(ΣWCS-at-average − ΣACS)/ΣWCS-at-average over the final
	// assignment's cores.
	Improvement stats.Summary
	// Energy is the distribution of global ACS predicted energy.
	Energy stats.Summary
	// Moves is the distribution of accepted improvement-loop moves.
	Moves stats.Summary
	// Failures counts task sets that could not be generated or solved.
	Failures int
}

// partitionSetSeed derives the i-th set seed of a core-count cell. The seed
// is shared across packing modes, so FFD and worst-fit score the identical
// sets and — via the grid memo — share every per-core solve their packings
// have in common.
func partitionSetSeed(c Common, cores, n int, ratio float64, i int) uint64 {
	master := c.Seed ^ stats.SeedFromString(fmt.Sprintf("partition|%d|%d|%g", cores, n, ratio))
	return setSeed(master, i)
}

// partitionCellSet draws the i-th set of a core-count cell: admissible
// under every swept packing mode, so each mode solves the same population.
func partitionCellSet(c Common, cfg PartitionSweepConfig, cores, i int) (*task.Set, error) {
	rng := stats.NewRNG(partitionSetSeed(c, cores, cfg.N, cfg.Ratio, i))
	return workload.RandomFeasible(rng, workload.RandomConfig{
		N:           cfg.N,
		Ratio:       cfg.Ratio,
		Utilization: c.Utilization,
		Model:       c.Model,
		Cores:       cores,
	}, 50, func(s *task.Set) bool {
		for _, mode := range cfg.Modes {
			pcfg := partition.Config{Cores: cores, Mode: mode}
			pcfg.Solver.Model = c.Model
			if _, err := partition.Admit(s, pcfg); err != nil {
				return false
			}
		}
		return true
	})
}

// PartitionSweep runs E11. Jobs are flattened to (cell, set) coordinates
// and drained through the grid pool; each job's per-core solves fan out
// through the same runner (nested ForEach), so the memo shares subsets
// across modes, move evaluations, and repartitions. Results are
// bit-identical for any worker count, cache on or off.
func PartitionSweep(cfg PartitionSweepConfig) ([]PartitionCell, error) {
	c := cfg.Common.withDefaults()
	if len(cfg.Cores) == 0 {
		cfg.Cores = []int{1, 2, 4}
	}
	if cfg.N <= 0 {
		cfg.N = 8
	}
	if cfg.Ratio == 0 {
		cfg.Ratio = 0.5
	}
	if len(cfg.Modes) == 0 {
		cfg.Modes = []partition.Mode{partition.FirstFitDecreasing, partition.WorstFit}
	}
	if cfg.Moves == 0 {
		cfg.Moves = 2
	}

	type coord struct {
		cell int // index into cells
		set  int
	}
	type cellDef struct {
		cores int
		mode  partition.Mode
	}
	var defs []cellDef
	for _, m := range cfg.Cores {
		for _, mode := range cfg.Modes {
			defs = append(defs, cellDef{cores: m, mode: mode})
		}
	}
	var coords []coord
	for ci := range defs {
		for si := 0; si < c.Sets; si++ {
			coords = append(coords, coord{cell: ci, set: si})
		}
	}

	type out struct {
		imp, energy float64
		moves       int
		failed      bool
	}
	results := grid.Collect(c.Grid, len(coords), func(i int) out {
		co := coords[i]
		def := defs[co.cell]
		set, err := partitionCellSet(c, cfg, def.cores, co.set)
		if err != nil {
			return out{failed: true}
		}
		pcfg := partition.Config{
			Cores: def.cores,
			Mode:  def.mode,
			Moves: cfg.Moves,
		}
		pcfg.Solver.Model = c.Model
		pcfg.Solver.Starts = c.Starts
		pcfg.Solver.StartWorkers = 1
		res, err := partition.Solve(context.Background(), c.Grid, set, pcfg)
		if err != nil {
			return out{failed: true}
		}
		wcsAvg := 0.0
		for j := range res.Cores {
			e, err := res.Cores[j].WCSAtAverage()
			if err != nil {
				return out{failed: true}
			}
			wcsAvg += e
		}
		imp := 0.0
		if wcsAvg > 0 {
			imp = 100 * (wcsAvg - res.Energy) / wcsAvg
		}
		return out{imp: imp, energy: res.Energy, moves: res.AcceptedMoves}
	})

	cells := make([]PartitionCell, len(defs))
	for i, def := range defs {
		cells[i] = PartitionCell{Cores: def.cores, Mode: def.mode.String()}
	}
	for i, r := range results {
		cell := &cells[coords[i].cell]
		if r.failed {
			cell.Failures++
			continue
		}
		cell.Improvement.Add(r.imp)
		cell.Energy.Add(r.energy)
		cell.Moves.Add(float64(r.moves))
	}
	return cells, nil
}

// PartitionTable renders the sweep as an aligned text table.
func PartitionTable(cells []PartitionCell, caption string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", caption)
	fmt.Fprintf(&b, "%6s  %-9s  %18s  %14s  %10s  %8s\n",
		"cores", "mode", "improvement(%)", "energy", "moves", "failures")
	for _, c := range cells {
		fmt.Fprintf(&b, "%6d  %-9s  %11.2f ±%5.2f  %14.4g  %10.2f  %8d\n",
			c.Cores, c.Mode, c.Improvement.Mean(), c.Improvement.CI95(),
			c.Energy.Mean(), c.Moves.Mean(), c.Failures)
	}
	return b.String()
}

// PartitionCSV renders the sweep as CSV.
func PartitionCSV(cells []PartitionCell) string {
	var b strings.Builder
	b.WriteString("cores,mode,improvement_mean,improvement_ci95,energy_mean,moves_mean,sets,failures\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%d,%s,%.4f,%.4f,%.6g,%.2f,%d,%d\n",
			c.Cores, c.Mode, c.Improvement.Mean(), c.Improvement.CI95(),
			c.Energy.Mean(), c.Moves.Mean(), c.Improvement.N(), c.Failures)
	}
	return b.String()
}
