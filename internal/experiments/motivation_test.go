package experiments

import (
	"math"
	"testing"
)

// TestMotivationMatchesPaper checks the reconstructed §2.2 example against
// every number the paper states.
func TestMotivationMatchesPaper(t *testing.T) {
	r, err := Motivation()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())

	// Fig 1(a): three tasks at 3 V for 20 cycles each: 3·20·9 = 540.
	if math.Abs(r.EWCSWorst-540) > 1 {
		t.Errorf("EWCSWorst = %g, want ≈540", r.EWCSWorst)
	}
	// Fig 2(b): 20·4 + 20·16 + 20·16 = 720 (2 V, 4 V, 4 V).
	if math.Abs(r.EAltWorst-720) > 1 {
		t.Errorf("EAltWorst = %g, want ≈720", r.EAltWorst)
	}
	// Paper: "a 24% improvement" (exact reconstruction: 24.7%).
	if math.Abs(r.ImprovementPct-24.7) > 1 {
		t.Errorf("ImprovementPct = %g, want ≈24.7", r.ImprovementPct)
	}
	// Paper: "a 33% increase" (exact: 33.3%).
	if math.Abs(r.WorstIncreasePct-33.3) > 1 {
		t.Errorf("WorstIncreasePct = %g, want ≈33.3", r.WorstIncreasePct)
	}
	// Fig 2(b) voltages: 2 V, then 4 V, 4 V.
	want := []float64{2, 4, 4}
	for i, v := range r.AltVoltagesWorst {
		if math.Abs(v-want[i]) > 0.01 {
			t.Errorf("AltVoltagesWorst[%d] = %g, want %g", i, v, want[i])
		}
	}
	// Our NLP ACS must do at least as well as the hand-made alternative.
	if r.EACSAvg > r.EAltAvg*1.001 {
		t.Errorf("NLP ACS energy %g worse than hand-made schedule %g", r.EACSAvg, r.EAltAvg)
	}
}

// TestFig6aSmoke runs one tiny Fig. 6(a) cell end to end.
func TestFig6aSmoke(t *testing.T) {
	cells, err := Fig6a(Fig6aConfig{
		Common:     Common{Sets: 3, Reps: 20, Seed: 1},
		TaskCounts: []int{4},
		Ratios:     []float64{0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(cells))
	}
	c := cells[0]
	t.Logf("N=4 ratio=0.1: improvement %s (failures %d)", c.Improvement.String(), c.Failures)
	if c.Failures > 0 {
		t.Errorf("unexpected failures: %d", c.Failures)
	}
	if c.Improvement.Mean() <= 0 {
		t.Errorf("expected positive mean improvement at ratio 0.1, got %g", c.Improvement.Mean())
	}
}
