// Package experiments reproduces every table and figure of the paper's
// evaluation (§4, Fig. 6) plus the ablation studies DESIGN.md calls out.
// Each experiment is a pure function of its config (including the seed), so
// results are reproducible bit-for-bit.
//
// Every harness runs on the grid engine (internal/grid, DESIGN.md §6): its
// (cell, task-set) coordinates are flattened into index-addressed jobs
// drained by one bounded worker pool, results are folded in index order, and
// the WCS→ACS solve pipeline is routed through the grid's content-addressed
// memo. Harnesses that sweep random sets at the same (N, ratio) cell derive
// *identical* task sets (randomCellSet), so the slack, overhead, level and
// weighted ablations share the Fig. 6(a) cell's solves instead of repeating
// them. Output is bit-identical for any worker count and with the cache on
// or off (TestGridDeterminism pins this).
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

// Common holds knobs shared by the sweep experiments.
type Common struct {
	// Sets is the number of random task sets per configuration cell
	// (paper: 100; default 20 to keep a full regeneration under a few
	// minutes — pass -sets 100 to cmd/experiments for the paper's count).
	Sets int
	// Reps is the number of simulated hyper-periods per task set
	// (paper: 1000; default 200).
	Reps int
	// Seed is the experiment master seed.
	Seed uint64
	// Utilization is the worst-case utilisation target (paper: 0.7).
	Utilization float64
	// Workers bounds the grid pool the harness drains its jobs through
	// (default GOMAXPROCS). Ignored when Grid is set — the runner's own
	// width wins. Results never depend on it.
	Workers int
	// SimWorkers bounds parallel hyper-period simulation inside each sim
	// run (default GOMAXPROCS; results are bit-identical for any value).
	// Harnesses whose per-set jobs already saturate the grid pool pin it
	// to 1 for their inner runs.
	SimWorkers int
	// Starts is the solver multi-start count per schedule build (0 or 1 =
	// single start). Starts run sequentially inside each task-set worker —
	// the sweep is already saturated by per-set parallelism — and results
	// stay bit-reproducible for a fixed seed regardless of Workers.
	Starts int
	// Model overrides the processor model (default power.DefaultModel()).
	Model power.Model
	// Grid, when set, supplies the shared execution engine: the worker
	// pool every harness drains its jobs through and the content-addressed
	// memo that shares WCS/ACS solves across harnesses. nil gives the
	// harness a private runner (Workers wide, caching enabled) — correct
	// but without cross-harness sharing; cmd/experiments passes one runner
	// to every experiment of a regeneration.
	Grid *grid.Runner
}

func (c *Common) withDefaults() Common {
	out := *c
	if out.Sets <= 0 {
		out.Sets = 20
	}
	if out.Reps <= 0 {
		out.Reps = 200
	}
	if out.Utilization <= 0 {
		out.Utilization = 0.7
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.SimWorkers <= 0 {
		out.SimWorkers = runtime.GOMAXPROCS(0)
	}
	if out.Model == nil {
		out.Model = power.DefaultModel()
	}
	if out.Grid == nil {
		out.Grid = grid.New(out.Workers, grid.NewMemo())
	}
	return out
}

// Cell is one aggregated point of a sweep: the distribution of ACS-over-WCS
// improvement percentages across task sets.
type Cell struct {
	N           int
	Ratio       float64
	Improvement stats.Summary
	// MeanSubs is the mean sub-instance count across task sets (reported
	// against the paper's ≈1000 bound).
	MeanSubs float64
	// Failures counts task sets that could not be generated or solved.
	Failures int
}

// cellMaster derives the master seed of an (n, ratio) sweep cell.
func cellMaster(seed uint64, n int, ratio float64) uint64 {
	return seed ^ stats.SeedFromCell(n, ratio)
}

// setSeed derives the i-th per-set seed under a cell master seed.
func setSeed(master uint64, i int) uint64 {
	return stats.NewRNG(master + uint64(i)*0x9e3779b97f4a7c15).Uint64()
}

// randomCellSet draws the i-th random task set of an (n, ratio) cell,
// returning the set together with the RNG mid-stream (harnesses draw their
// simulation seeds from it, after the generator's consumption). Every
// harness that sweeps random sets at a cell goes through this one
// derivation, so equal (Seed, n, ratio, i) coordinates yield identical sets
// everywhere and the grid memo shares their solves across harnesses.
func randomCellSet(c Common, n int, ratio float64, i int) (*task.Set, *stats.RNG, error) {
	rng := stats.NewRNG(setSeed(cellMaster(c.Seed, n, ratio), i))
	set, err := workload.RandomFeasible(rng, workload.RandomConfig{
		N:           n,
		Ratio:       ratio,
		Utilization: c.Utilization,
		Model:       c.Model,
	}, 50, feasibleFilter(c.Model))
	if err != nil {
		return nil, nil, err
	}
	return set, rng, nil
}

// solvePair builds the WCS baseline and the warm-started ACS schedule for
// one task set through the grid runner — the pipeline every comparison
// harness uses. Warm-starting ACS from the WCS solution guarantees ACS can
// never converge to a point worse (on its own objective) than the baseline
// it is compared against. Identical (set, config, model) pipelines across
// harnesses resolve to one solve via the memo; the returned schedules are
// shared and must be treated as immutable.
func solvePair(g *grid.Runner, set *task.Set, c Common, pre core.Config) (acs, wcs *core.Schedule, err error) {
	wcsCfg := pre
	wcsCfg.Model = c.Model
	wcsCfg.Objective = core.WorstCase
	wcsCfg.Starts = c.Starts
	wcsCfg.StartWorkers = 1 // the grid pool already saturates the host
	wcs, err = g.BuildSchedule(set, wcsCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("WCS: %w", err)
	}
	acsCfg := pre
	acsCfg.Model = c.Model
	acsCfg.Objective = core.AverageCase
	acsCfg.WarmStart = wcs
	acsCfg.Starts = c.Starts
	acsCfg.StartWorkers = 1
	acs, err = g.BuildSchedule(set, acsCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("ACS: %w", err)
	}
	return acs, wcs, nil
}

// compareOnSet builds ACS and WCS for one task set and simulates both under
// identical stochastic workloads, returning the Fig. 6 improvement
// percentage and the sub-instance count. Solves and plan compilations go
// through the grid memo.
func compareOnSet(g *grid.Runner, set *task.Set, c Common, seed uint64, pre core.Config) (impPct float64, subs int, err error) {
	acs, wcs, err := solvePair(g, set, c, pre)
	if err != nil {
		return 0, 0, err
	}
	acsPlan, err := g.CompileSchedule(acs)
	if err != nil {
		return 0, 0, err
	}
	wcsPlan, err := g.CompileSchedule(wcs)
	if err != nil {
		return 0, 0, err
	}
	imp, _, _, err := sim.ComparePlans(acsPlan, wcsPlan, sim.Config{
		Policy:       sim.Greedy,
		Hyperperiods: c.Reps,
		Seed:         seed,
		Workers:      c.SimWorkers,
	})
	if err != nil {
		return 0, 0, err
	}
	return imp, len(acs.Plan.Subs), nil
}

// Table renders cells as an aligned text table, one row per N, one column
// per ratio — the transpose of Fig. 6(a)'s series layout.
func Table(cells []Cell, caption string) string {
	ns := map[int]bool{}
	rs := map[float64]bool{}
	type coord struct {
		n int
		r float64
	}
	at := make(map[coord]*Cell, len(cells))
	for i := range cells {
		ns[cells[i].N] = true
		rs[cells[i].Ratio] = true
		at[coord{cells[i].N, cells[i].Ratio}] = &cells[i]
	}
	var nList []int
	for n := range ns {
		nList = append(nList, n)
	}
	sort.Ints(nList)
	var rList []float64
	for r := range rs {
		rList = append(rList, r)
	}
	sort.Float64s(rList)

	var b strings.Builder
	b.WriteString(caption + "\n")
	b.WriteString(fmt.Sprintf("%-8s", "N\\ratio"))
	for _, r := range rList {
		b.WriteString(fmt.Sprintf("%16.2f", r))
	}
	b.WriteString("\n")
	for _, n := range nList {
		b.WriteString(fmt.Sprintf("%-8d", n))
		for _, r := range rList {
			c := at[coord{n, r}]
			if c == nil || c.Improvement.N() == 0 {
				b.WriteString(fmt.Sprintf("%16s", "-"))
				continue
			}
			b.WriteString(fmt.Sprintf("%9.1f%% ±%4.1f", c.Improvement.Mean(), c.Improvement.CI95()))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders cells as CSV rows for plotting.
func CSV(cells []Cell) string {
	var b strings.Builder
	b.WriteString("n,ratio,sets,improvement_mean_pct,improvement_ci95,improvement_min,improvement_max,mean_subs,failures\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%d,%g,%d,%.3f,%.3f,%.3f,%.3f,%.1f,%d\n",
			c.N, c.Ratio, c.Improvement.N(), c.Improvement.Mean(), c.Improvement.CI95(),
			c.Improvement.Min(), c.Improvement.Max(), c.MeanSubs, c.Failures)
	}
	return b.String()
}

// feasibleFilter adapts core.Feasible for workload.RandomFeasible.
func feasibleFilter(m power.Model) func(*task.Set) bool {
	return func(s *task.Set) bool {
		return core.Feasible(s, core.Config{Model: m}) == nil
	}
}
