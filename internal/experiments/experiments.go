// Package experiments reproduces every table and figure of the paper's
// evaluation (§4, Fig. 6) plus the ablation studies DESIGN.md calls out.
// Each experiment is a pure function of its config (including the seed), so
// results are reproducible bit-for-bit; the heavy sweeps fan out across a
// bounded worker pool.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
)

// Common holds knobs shared by the sweep experiments.
type Common struct {
	// Sets is the number of random task sets per configuration cell
	// (paper: 100; default 20 to keep a full regeneration under a few
	// minutes — pass -sets 100 to cmd/experiments for the paper's count).
	Sets int
	// Reps is the number of simulated hyper-periods per task set
	// (paper: 1000; default 200).
	Reps int
	// Seed is the experiment master seed.
	Seed uint64
	// Utilization is the worst-case utilisation target (paper: 0.7).
	Utilization float64
	// Workers bounds parallel task-set evaluations (default GOMAXPROCS).
	Workers int
	// SimWorkers bounds parallel hyper-period simulation inside each sim
	// run (default GOMAXPROCS; results are bit-identical for any value).
	// Harnesses that already saturate the host with per-set parallelism
	// (Fig. 6(a)) override it to 1 for their inner runs.
	SimWorkers int
	// Starts is the solver multi-start count per schedule build (0 or 1 =
	// single start). Starts run sequentially inside each task-set worker —
	// the sweep is already saturated by per-set parallelism — and results
	// stay bit-reproducible for a fixed seed regardless of Workers.
	Starts int
	// Model overrides the processor model (default power.DefaultModel()).
	Model power.Model
}

func (c *Common) withDefaults() Common {
	out := *c
	if out.Sets <= 0 {
		out.Sets = 20
	}
	if out.Reps <= 0 {
		out.Reps = 200
	}
	if out.Utilization <= 0 {
		out.Utilization = 0.7
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.SimWorkers <= 0 {
		out.SimWorkers = runtime.GOMAXPROCS(0)
	}
	if out.Model == nil {
		out.Model = power.DefaultModel()
	}
	return out
}

// Cell is one aggregated point of a sweep: the distribution of ACS-over-WCS
// improvement percentages across task sets.
type Cell struct {
	N           int
	Ratio       float64
	Improvement stats.Summary
	// MeanSubs is the mean sub-instance count across task sets (reported
	// against the paper's ≈1000 bound).
	MeanSubs float64
	// Failures counts task sets that could not be generated or solved.
	Failures int
}

// compareOnSet builds ACS and WCS for one task set and simulates both under
// identical stochastic workloads, returning the Fig. 6 improvement
// percentage and the sub-instance count.
func compareOnSet(set *task.Set, c Common, seed uint64, pre core.Config) (impPct float64, subs int, err error) {
	wcsCfg := pre
	wcsCfg.Model = c.Model
	wcsCfg.Objective = core.WorstCase
	wcsCfg.Starts = c.Starts
	wcsCfg.StartWorkers = 1 // the set-level pool already saturates the host
	wcs, err := core.Build(set, wcsCfg)
	if err != nil {
		return 0, 0, fmt.Errorf("WCS: %w", err)
	}

	// Warm-start ACS from the WCS solution so ACS can never converge to a
	// point worse (on its own objective) than the baseline it is compared
	// against.
	acsCfg := pre
	acsCfg.Model = c.Model
	acsCfg.Objective = core.AverageCase
	acsCfg.WarmStart = wcs
	acsCfg.Starts = c.Starts
	acsCfg.StartWorkers = 1
	acs, err := core.Build(set, acsCfg)
	if err != nil {
		return 0, 0, fmt.Errorf("ACS: %w", err)
	}
	imp, _, _, err := sim.Compare(acs, wcs, sim.Config{
		Policy:       sim.Greedy,
		Hyperperiods: c.Reps,
		Seed:         seed,
		Workers:      c.SimWorkers,
	})
	if err != nil {
		return 0, 0, err
	}
	return imp, len(acs.Plan.Subs), nil
}

// forEachSet runs fn for set indices [0, n) on a bounded worker pool,
// collecting results in index order. Each invocation receives its own
// deterministic seed derived from the master seed and the index, so results
// do not depend on goroutine scheduling.
func forEachSet(n, workers int, master uint64, fn func(i int, seed uint64) (float64, int, error)) (vals []float64, subs []int, failures int) {
	type res struct {
		v   float64
		s   int
		err error
	}
	out := make([]res, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			seed := stats.NewRNG(master + uint64(i)*0x9e3779b97f4a7c15).Uint64()
			v, s, err := fn(i, seed)
			out[i] = res{v, s, err}
		}(i)
	}
	wg.Wait()
	for _, r := range out {
		if r.err != nil {
			failures++
			continue
		}
		vals = append(vals, r.v)
		subs = append(subs, r.s)
	}
	return vals, subs, failures
}

// Table renders cells as an aligned text table, one row per N, one column
// per ratio — the transpose of Fig. 6(a)'s series layout.
func Table(cells []Cell, caption string) string {
	ns := map[int]bool{}
	rs := map[float64]bool{}
	for _, c := range cells {
		ns[c.N] = true
		rs[c.Ratio] = true
	}
	var nList []int
	for n := range ns {
		nList = append(nList, n)
	}
	sort.Ints(nList)
	var rList []float64
	for r := range rs {
		rList = append(rList, r)
	}
	sort.Float64s(rList)

	at := func(n int, r float64) *Cell {
		for i := range cells {
			if cells[i].N == n && cells[i].Ratio == r {
				return &cells[i]
			}
		}
		return nil
	}

	var b strings.Builder
	b.WriteString(caption + "\n")
	b.WriteString(fmt.Sprintf("%-8s", "N\\ratio"))
	for _, r := range rList {
		b.WriteString(fmt.Sprintf("%16.2f", r))
	}
	b.WriteString("\n")
	for _, n := range nList {
		b.WriteString(fmt.Sprintf("%-8d", n))
		for _, r := range rList {
			c := at(n, r)
			if c == nil || c.Improvement.N() == 0 {
				b.WriteString(fmt.Sprintf("%16s", "-"))
				continue
			}
			b.WriteString(fmt.Sprintf("%9.1f%% ±%4.1f", c.Improvement.Mean(), c.Improvement.CI95()))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders cells as CSV rows for plotting.
func CSV(cells []Cell) string {
	var b strings.Builder
	b.WriteString("n,ratio,sets,improvement_mean_pct,improvement_ci95,improvement_min,improvement_max,mean_subs,failures\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%d,%g,%d,%.3f,%.3f,%.3f,%.3f,%.1f,%d\n",
			c.N, c.Ratio, c.Improvement.N(), c.Improvement.Mean(), c.Improvement.CI95(),
			c.Improvement.Min(), c.Improvement.Max(), c.MeanSubs, c.Failures)
	}
	return b.String()
}

// feasibleFilter adapts core.Feasible for workload.RandomFeasible.
func feasibleFilter(m power.Model) func(*task.Set) bool {
	return func(s *task.Set) bool {
		return core.Feasible(s, core.Config{Model: m}) == nil
	}
}
