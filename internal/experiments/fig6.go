package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

// Fig6aConfig parameterises the random-task-set sweep of Fig. 6(a).
type Fig6aConfig struct {
	Common
	// TaskCounts defaults to the paper's {2, 4, 6, 8, 10}.
	TaskCounts []int
	// Ratios defaults to the paper's {0.1, 0.5, 0.9}.
	Ratios []float64
}

// Fig6a reproduces Fig. 6(a): the percentage energy improvement of ACS over
// WCS as a function of task count, one series per BCEC/WCEC ratio.
func Fig6a(cfg Fig6aConfig) ([]Cell, error) {
	c := cfg.Common.withDefaults()
	counts := cfg.TaskCounts
	if len(counts) == 0 {
		counts = []int{2, 4, 6, 8, 10}
	}
	ratios := cfg.Ratios
	if len(ratios) == 0 {
		ratios = []float64{0.1, 0.5, 0.9}
	}

	// The per-set pool already saturates the host; keep each inner
	// simulation serial (results are identical either way).
	cSet := c
	cSet.SimWorkers = 1

	var cells []Cell
	for _, n := range counts {
		for _, ratio := range ratios {
			cell := Cell{N: n, Ratio: ratio}
			vals, subs, failures := forEachSet(c.Sets, c.Workers, c.Seed^stats.SeedFromCell(n, ratio),
				func(i int, seed uint64) (float64, int, error) {
					rng := stats.NewRNG(seed)
					set, err := workload.RandomFeasible(rng, workload.RandomConfig{
						N:           n,
						Ratio:       ratio,
						Utilization: c.Utilization,
						Model:       c.Model,
					}, 50, feasibleFilter(c.Model))
					if err != nil {
						return 0, 0, err
					}
					return compareOnSet(set, cSet, rng.Uint64(), core.Config{})
				})
			cell.Improvement.AddAll(vals)
			cell.Failures = failures
			cell.MeanSubs = meanInts(subs)
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// Fig6bConfig parameterises the real-life application sweep of Fig. 6(b).
type Fig6bConfig struct {
	Common
	// Ratios defaults to the paper's {0.1, 0.5, 0.9}.
	Ratios []float64
	// Apps defaults to {"CNC", "GAP"}.
	Apps []string
	// MaxSubsPerInstance caps preemption granularity for the larger sets
	// (GAP). 0 means unlimited; the default 12 keeps GAP's NLP tractable
	// while staying inside the paper's ≈1000-sub-instance budget.
	MaxSubsPerInstance int
}

// AppCell is one Fig. 6(b) point.
type AppCell struct {
	App         string
	Ratio       float64
	Improvement float64 // percentage, single deterministic task set
	Subs        int
	Seeds       stats.Summary // improvement across simulation seeds
}

// Fig6b reproduces Fig. 6(b): ACS-over-WCS improvement for the CNC and GAP
// applications across BCEC/WCEC ratios. Unlike Fig. 6(a) the task sets are
// fixed, so variability comes only from simulation seeds: each cell runs
// SeedReps simulations (bounded by Common.Sets) and reports their spread.
func Fig6b(cfg Fig6bConfig) ([]AppCell, error) {
	c := cfg.Common.withDefaults()
	ratios := cfg.Ratios
	if len(ratios) == 0 {
		ratios = []float64{0.1, 0.5, 0.9}
	}
	apps := cfg.Apps
	if len(apps) == 0 {
		apps = []string{"CNC", "GAP"}
	}
	subCap := cfg.MaxSubsPerInstance
	if subCap == 0 {
		subCap = 12
	}

	var out []AppCell
	for _, app := range apps {
		for _, ratio := range ratios {
			set, err := makeApp(app, ratio, c)
			if err != nil {
				return nil, err
			}
			pre := core.Config{}
			pre.Preempt.MaxSubsPerInstance = subCap

			wcsCfg := pre
			wcsCfg.Model = c.Model
			wcsCfg.Objective = core.WorstCase
			wcs, err := core.Build(set, wcsCfg)
			if err != nil {
				return nil, fmt.Errorf("%s ratio %g WCS: %w", app, ratio, err)
			}
			acsCfg := pre
			acsCfg.Model = c.Model
			acsCfg.Objective = core.AverageCase
			acsCfg.WarmStart = wcs
			acs, err := core.Build(set, acsCfg)
			if err != nil {
				return nil, fmt.Errorf("%s ratio %g ACS: %w", app, ratio, err)
			}

			// Compile both schedules once per cell; the per-seed loop only
			// re-runs the compiled engine.
			acsPlan, err := sim.Compile(acs)
			if err != nil {
				return nil, err
			}
			wcsPlan, err := sim.Compile(wcs)
			if err != nil {
				return nil, err
			}

			cell := AppCell{App: app, Ratio: ratio, Subs: len(acs.Plan.Subs)}
			seedReps := c.Sets
			if seedReps > 10 {
				seedReps = 10
			}
			for k := 0; k < seedReps; k++ {
				seed := stats.NewRNG(c.Seed + uint64(k)*0x9e3779b97f4a7c15 + stats.SeedFromString(app)).Uint64()
				imp, _, _, err := sim.ComparePlans(acsPlan, wcsPlan, sim.Config{
					Policy:       sim.Greedy,
					Hyperperiods: c.Reps,
					Seed:         seed,
					Workers:      c.SimWorkers,
				})
				if err != nil {
					return nil, err
				}
				cell.Seeds.Add(imp)
			}
			cell.Improvement = cell.Seeds.Mean()
			out = append(out, cell)
		}
	}
	return out, nil
}

// AppTable renders Fig. 6(b) cells.
func AppTable(cells []AppCell) string {
	s := "Fig. 6(b): ACS improvement over WCS, real-life applications\n"
	s += fmt.Sprintf("%-6s %-8s %-14s %-8s\n", "app", "ratio", "improvement", "subs")
	for _, c := range cells {
		s += fmt.Sprintf("%-6s %-8.2f %6.1f%% ±%-5.1f %-8d\n",
			c.App, c.Ratio, c.Improvement, c.Seeds.CI95(), c.Subs)
	}
	return s
}

// AppCSV renders Fig. 6(b) cells as CSV.
func AppCSV(cells []AppCell) string {
	s := "app,ratio,improvement_mean_pct,improvement_ci95,subs\n"
	for _, c := range cells {
		s += fmt.Sprintf("%s,%g,%.3f,%.3f,%d\n", c.App, c.Ratio, c.Improvement, c.Seeds.CI95(), c.Subs)
	}
	return s
}

func makeApp(app string, ratio float64, c Common) (*task.Set, error) {
	switch app {
	case "CNC":
		return workload.CNC(ratio, c.Utilization, c.Model)
	case "GAP":
		return workload.GAP(ratio, c.Utilization, c.Model)
	case "GAPExact":
		return workload.GAPExact(ratio, c.Utilization, c.Model)
	default:
		return nil, fmt.Errorf("experiments: unknown application %q", app)
	}
}

func meanInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0
	for _, x := range xs {
		t += x
	}
	return float64(t) / float64(len(xs))
}
