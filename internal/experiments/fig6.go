package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

// Fig6aConfig parameterises the random-task-set sweep of Fig. 6(a).
type Fig6aConfig struct {
	Common
	// TaskCounts defaults to the paper's {2, 4, 6, 8, 10}.
	TaskCounts []int
	// Ratios defaults to the paper's {0.1, 0.5, 0.9}.
	Ratios []float64
}

// Fig6a reproduces Fig. 6(a): the percentage energy improvement of ACS over
// WCS as a function of task count, one series per BCEC/WCEC ratio.
//
// The whole sweep — every (N, ratio, set) coordinate — is flattened into one
// job list drained by the grid pool, so a slow cell's tail overlaps the next
// cell's work instead of idling the host behind a per-cell barrier. Per-set
// results land in index-addressed slots and are folded per cell in set
// order, keeping the figure bit-identical for any worker count.
func Fig6a(cfg Fig6aConfig) ([]Cell, error) {
	c := cfg.Common.withDefaults()
	counts := cfg.TaskCounts
	if len(counts) == 0 {
		counts = []int{2, 4, 6, 8, 10}
	}
	ratios := cfg.Ratios
	if len(ratios) == 0 {
		ratios = []float64{0.1, 0.5, 0.9}
	}

	// The flat job pool already saturates the host; keep each inner
	// simulation serial (results are identical either way).
	cSet := c
	cSet.SimWorkers = 1

	type setRes struct {
		imp  float64
		subs int
		err  error
	}
	nCells := len(counts) * len(ratios)
	results := make([]setRes, nCells*c.Sets)
	g := c.Grid
	g.ForEach(len(results), func(j int) {
		ci, i := j/c.Sets, j%c.Sets
		n, ratio := counts[ci/len(ratios)], ratios[ci%len(ratios)]
		set, rng, err := randomCellSet(c, n, ratio, i)
		if err != nil {
			results[j] = setRes{err: err}
			return
		}
		imp, subs, err := compareOnSet(g, set, cSet, rng.Uint64(), core.Config{})
		results[j] = setRes{imp: imp, subs: subs, err: err}
	})

	cells := make([]Cell, 0, nCells)
	for ci := 0; ci < nCells; ci++ {
		cell := Cell{N: counts[ci/len(ratios)], Ratio: ratios[ci%len(ratios)]}
		var subs []int
		for i := 0; i < c.Sets; i++ {
			r := &results[ci*c.Sets+i]
			if r.err != nil {
				cell.Failures++
				continue
			}
			cell.Improvement.Add(r.imp)
			subs = append(subs, r.subs)
		}
		cell.MeanSubs = meanInts(subs)
		cells = append(cells, cell)
	}
	return cells, nil
}

// Fig6bConfig parameterises the real-life application sweep of Fig. 6(b).
type Fig6bConfig struct {
	Common
	// Ratios defaults to the paper's {0.1, 0.5, 0.9}.
	Ratios []float64
	// Apps defaults to {"CNC", "GAP"}.
	Apps []string
	// MaxSubsPerInstance caps preemption granularity for the larger sets
	// (GAP). 0 means unlimited; the default 12 keeps GAP's NLP tractable
	// while staying inside the paper's ≈1000-sub-instance budget.
	MaxSubsPerInstance int
}

// AppCell is one Fig. 6(b) point.
type AppCell struct {
	App         string
	Ratio       float64
	Improvement float64 // percentage, single deterministic task set
	Subs        int
	Seeds       stats.Summary // improvement across simulation seeds
}

// Fig6b reproduces Fig. 6(b): ACS-over-WCS improvement for the CNC and GAP
// applications across BCEC/WCEC ratios. Unlike Fig. 6(a) the task sets are
// fixed, so variability comes only from simulation seeds: each cell runs
// SeedReps simulations (bounded by Common.Sets) and reports their spread.
//
// Cells are the flat job unit (the solve dominates; the per-seed loop reuses
// the memoized compiled plans). Per-seed streams are derived from the full
// (app, ratio, k) coordinate — ratio included, so no two cells of an app
// share workload draws. That derivation changed in PR 3: absolute simulated
// energies differ from PR 2, which keyed streams by (app, k) only and fed
// every ratio of an app the same draws.
func Fig6b(cfg Fig6bConfig) ([]AppCell, error) {
	c := cfg.Common.withDefaults()
	ratios := cfg.Ratios
	if len(ratios) == 0 {
		ratios = []float64{0.1, 0.5, 0.9}
	}
	apps := cfg.Apps
	if len(apps) == 0 {
		apps = []string{"CNC", "GAP"}
	}
	subCap := cfg.MaxSubsPerInstance
	if subCap == 0 {
		subCap = 12
	}
	seedReps := c.Sets
	if seedReps > 10 {
		seedReps = 10
	}

	g := c.Grid
	return grid.CollectErr(g, len(apps)*len(ratios), func(j int) (AppCell, error) {
		app, ratio := apps[j/len(ratios)], ratios[j%len(ratios)]
		set, err := makeApp(app, ratio, c)
		if err != nil {
			return AppCell{}, err
		}
		pre := core.Config{}
		pre.Preempt.MaxSubsPerInstance = subCap
		acs, wcs, err := solvePair(g, set, c, pre)
		if err != nil {
			return AppCell{}, fmt.Errorf("%s ratio %g: %w", app, ratio, err)
		}
		acsPlan, err := g.CompileSchedule(acs)
		if err != nil {
			return AppCell{}, err
		}
		wcsPlan, err := g.CompileSchedule(wcs)
		if err != nil {
			return AppCell{}, err
		}

		cell := AppCell{App: app, Ratio: ratio, Subs: len(acs.Plan.Subs)}
		for k := 0; k < seedReps; k++ {
			seed := setSeed(c.Seed+stats.SeedFromApp(app, ratio), k)
			imp, _, _, err := sim.ComparePlans(acsPlan, wcsPlan, sim.Config{
				Policy:       sim.Greedy,
				Hyperperiods: c.Reps,
				Seed:         seed,
				Workers:      c.SimWorkers,
			})
			if err != nil {
				return AppCell{}, err
			}
			cell.Seeds.Add(imp)
		}
		cell.Improvement = cell.Seeds.Mean()
		return cell, nil
	})
}

// AppTable renders Fig. 6(b) cells.
func AppTable(cells []AppCell) string {
	s := "Fig. 6(b): ACS improvement over WCS, real-life applications\n"
	s += fmt.Sprintf("%-6s %-8s %-14s %-8s\n", "app", "ratio", "improvement", "subs")
	for _, c := range cells {
		s += fmt.Sprintf("%-6s %-8.2f %6.1f%% ±%-5.1f %-8d\n",
			c.App, c.Ratio, c.Improvement, c.Seeds.CI95(), c.Subs)
	}
	return s
}

// AppCSV renders Fig. 6(b) cells as CSV.
func AppCSV(cells []AppCell) string {
	s := "app,ratio,improvement_mean_pct,improvement_ci95,subs\n"
	for _, c := range cells {
		s += fmt.Sprintf("%s,%g,%.3f,%.3f,%d\n", c.App, c.Ratio, c.Improvement, c.Seeds.CI95(), c.Subs)
	}
	return s
}

func makeApp(app string, ratio float64, c Common) (*task.Set, error) {
	switch app {
	case "CNC":
		return workload.CNC(ratio, c.Utilization, c.Model)
	case "GAP":
		return workload.GAP(ratio, c.Utilization, c.Model)
	case "GAPExact":
		return workload.GAPExact(ratio, c.Utilization, c.Model)
	default:
		return nil, fmt.Errorf("experiments: unknown application %q", app)
	}
}

func meanInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0
	for _, x := range xs {
		t += x
	}
	return float64(t) / float64(len(xs))
}
