package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/preempt"
	"repro/internal/task"
)

// Motivation reproduces the §2.2 motivational example (Table 1, Figs. 1–2).
//
// The scanned Table 1 is unreadable, so the parameters are reconstructed to
// match every number the prose states, and the reconstruction is exact:
// three tasks sharing a 20 ms frame on the simplified processor
// (cycle time = 1/V ms, Vmax = 4 V), each with WCEC = 20 cycles and
// ACEC = 10 cycles. Then:
//
//   - the optimal worst-case static schedule (Fig. 1(a)) ends the tasks at
//     6.7 / 13.3 / 20 ms, all at 3 V;
//   - greedy reclamation at ACEC under that schedule (Fig. 1(b)) costs
//     159.4 energy units;
//   - the alternative end-times 10 / 15 / 20 ms (Fig. 2) cost 120 units at
//     ACEC — the paper's "24% improvement" (exactly 24.7%);
//   - under all-WCEC execution the alternative schedule needs 2 V then
//     4 V / 4 V — feasible only because Vmax = 4 V — and costs 720 units
//     against Fig. 1(a)'s 540: the paper's "33% increase" (exactly 33.3%).
type MotivationResult struct {
	// EWCSWorst is Fig. 1(a): the WCS schedule executing all-WCEC.
	EWCSWorst float64
	// EWCSAvg is Fig. 1(b): the WCS schedule + greedy reclamation at ACEC.
	EWCSAvg float64
	// EAltAvg is Fig. 2: end-times 10/15/20 + greedy reclamation at ACEC.
	EAltAvg float64
	// EAltWorst is Fig. 2(b): the alternative schedule executing all-WCEC.
	EAltWorst float64
	// EACSAvg is our NLP-optimised ACS schedule at ACEC (the paper's §3
	// machinery applied to its own motivation).
	EACSAvg float64
	// ImprovementPct is 100·(EWCSAvg−EAltAvg)/EWCSAvg (paper: 24%).
	ImprovementPct float64
	// WorstIncreasePct is 100·(EAltWorst−EWCSWorst)/EWCSWorst (paper: 33%).
	WorstIncreasePct float64
	// AltVoltagesWorst are the per-task voltages of Fig. 2(b) (2, 4, 4).
	AltVoltagesWorst []float64
	// ACSEnds are the NLP-chosen end-times.
	ACSEnds []float64
}

// MotivationSet returns the reconstructed three-task example set.
func MotivationSet() (*task.Set, error) {
	mk := func(name string) task.Task {
		return task.Task{Name: name, Period: 20, WCEC: 20, ACEC: 10, BCEC: 5, Ceff: 1}
	}
	return task.NewSet([]task.Task{mk("T1"), mk("T2"), mk("T3")})
}

// MotivationModel returns the example's processor: cycle time 1/V ms,
// voltage range [0.7, 4] V.
func MotivationModel() (power.Model, error) {
	return power.NewSimpleInverse(1, 0.7, 4)
}

// Motivation computes the full table.
func Motivation() (*MotivationResult, error) {
	set, err := MotivationSet()
	if err != nil {
		return nil, err
	}
	m, err := MotivationModel()
	if err != nil {
		return nil, err
	}
	plan, err := preempt.Build(set) // equal periods ⇒ no preemption: 3 pieces
	if err != nil {
		return nil, err
	}
	if len(plan.Subs) != 3 {
		return nil, fmt.Errorf("experiments: motivation plan has %d pieces, want 3", len(plan.Subs))
	}

	// Hand-built schedules with pinned end-times.
	pinned := func(ends []float64) *core.Schedule {
		s := &core.Schedule{
			Plan:      plan,
			Model:     m,
			End:       append([]float64(nil), ends...),
			WCWork:    []float64{20, 20, 20},
			AvgWork:   []float64{10, 10, 10},
			Objective: core.AverageCase,
		}
		return s
	}
	wcsSchedule := pinned([]float64{20.0 / 3, 40.0 / 3, 20})
	altSchedule := pinned([]float64{10, 15, 20})

	avg := []float64{10, 10, 10}
	worst := []float64{20, 20, 20}

	res := &MotivationResult{}
	if res.EWCSWorst, _, err = wcsSchedule.EnergyUnder(worst); err != nil {
		return nil, err
	}
	if res.EWCSAvg, _, err = wcsSchedule.EnergyUnder(avg); err != nil {
		return nil, err
	}
	if res.EAltAvg, _, err = altSchedule.EnergyUnder(avg); err != nil {
		return nil, err
	}
	var over float64
	if res.EAltWorst, over, err = altSchedule.EnergyUnder(worst); err != nil {
		return nil, err
	}
	if over > 1e-9 {
		return nil, fmt.Errorf("experiments: alternative schedule missed a deadline by %g ms — reconstruction broken", over)
	}
	if res.AltVoltagesWorst, err = altSchedule.RuntimeVoltages(worst); err != nil {
		return nil, err
	}

	acs, err := core.Build(set, core.Config{Objective: core.AverageCase, Model: m})
	if err != nil {
		return nil, err
	}
	res.EACSAvg = acs.Energy
	res.ACSEnds = append([]float64(nil), acs.End...)

	res.ImprovementPct = 100 * (res.EWCSAvg - res.EAltAvg) / res.EWCSAvg
	res.WorstIncreasePct = 100 * (res.EAltWorst - res.EWCSWorst) / res.EWCSWorst
	return res, nil
}

// Render formats the motivation table against the paper's claims.
func (r *MotivationResult) Render() string {
	var b strings.Builder
	b.WriteString("Motivational example (Table 1 / Figs. 1-2, reconstructed)\n")
	fmt.Fprintf(&b, "  WCS schedule, all-WCEC        (Fig 1a): %8.1f\n", r.EWCSWorst)
	fmt.Fprintf(&b, "  WCS schedule, ACEC + greedy   (Fig 1b): %8.1f\n", r.EWCSAvg)
	fmt.Fprintf(&b, "  Alt schedule, ACEC + greedy   (Fig 2 ): %8.1f\n", r.EAltAvg)
	fmt.Fprintf(&b, "  Alt schedule, all-WCEC        (Fig 2b): %8.1f  voltages %s\n",
		r.EAltWorst, fmtVolts(r.AltVoltagesWorst))
	fmt.Fprintf(&b, "  NLP ACS schedule, ACEC        (ours  ): %8.1f  ends %v\n", r.EACSAvg, round2(r.ACSEnds))
	fmt.Fprintf(&b, "  improvement (paper: 24%%):  %5.1f%%\n", r.ImprovementPct)
	fmt.Fprintf(&b, "  WC increase (paper: 33%%):  %5.1f%%\n", r.WorstIncreasePct)
	return b.String()
}

func fmtVolts(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%.2gV", v)
	}
	return strings.Join(parts, "/")
}

func round2(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Round(x*100) / 100
	}
	return out
}
