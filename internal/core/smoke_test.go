package core

import (
	"testing"

	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

// TestSmokePipeline exercises the full offline pipeline on a small random
// set: generate → solve ACS and WCS → verify → compare objective energies.
func TestSmokePipeline(t *testing.T) {
	rng := stats.NewRNG(42)
	set, err := workload.Random(rng, workload.RandomConfig{N: 4, Ratio: 0.1, Utilization: 0.7})
	if err != nil {
		t.Fatalf("Random: %v", err)
	}
	acs, err := Build(set, Config{Objective: AverageCase})
	if err != nil {
		t.Fatalf("Build ACS: %v", err)
	}
	wcs, err := Build(set, Config{Objective: WorstCase})
	if err != nil {
		t.Fatalf("Build WCS: %v", err)
	}
	t.Logf("subs=%d acs.sweeps=%d", len(acs.Plan.Subs), acs.Sweeps)

	// ACS must beat (or tie) WCS on the average-case objective, since WCS's
	// solution is feasible for ACS's program too.
	wcsClone := CloneSchedule(wcs)
	wcsClone.Objective = AverageCase
	wcsAvg := wcsClone.ObjectiveEnergy()
	t.Logf("avg-case energy: ACS=%.6g WCS-schedule=%.6g improvement=%.1f%%",
		acs.Energy, wcsAvg, 100*(wcsAvg-acs.Energy)/wcsAvg)
	if acs.Energy > wcsAvg*1.001 {
		t.Errorf("ACS avg energy %g exceeds WCS schedule's avg energy %g", acs.Energy, wcsAvg)
	}
}

func TestMotivationShape(t *testing.T) {
	// Three equal tasks sharing a 20ms frame, as in §2.2's example:
	// non-preemptive (single instance each), WCEC sized so the all-WCEC
	// Vmax schedule fits comfortably.
	m, err := power.NewSimpleInverse(1, 0.7, 4)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) task.Task {
		return task.Task{Name: name, Period: 20, WCEC: 6.67, ACEC: 2.0, BCEC: 1.0, Ceff: 1}
	}
	set, err := task.NewSet([]task.Task{mk("T1"), mk("T2"), mk("T3")})
	if err != nil {
		t.Fatal(err)
	}
	acs, err := Build(set, Config{Objective: AverageCase, Model: m})
	if err != nil {
		t.Fatalf("ACS: %v", err)
	}
	wcs, err := Build(set, Config{Objective: WorstCase, Model: m})
	if err != nil {
		t.Fatalf("WCS: %v", err)
	}
	wcsAvg := CloneSchedule(wcs)
	wcsAvg.Objective = AverageCase
	eWCS := wcsAvg.ObjectiveEnergy()
	t.Logf("ends ACS=%v WCS=%v", acs.End, wcs.End)
	t.Logf("avg energy ACS=%.4f WCS=%.4f improvement=%.1f%%",
		acs.Energy, eWCS, 100*(eWCS-acs.Energy)/eWCS)
	if acs.Energy >= eWCS {
		t.Errorf("expected ACS to strictly improve on WCS in the motivation scenario")
	}
}
