package core

import (
	"fmt"
	"math"
	"sort"
)

// rmVmaxSplits computes the worst-case workload split each instance's pieces
// receive under an exact preemptive fixed-priority (or EDF, per the plan's
// options) execution at maximum speed: the work an instance executes inside
// segment k of its window becomes piece k's worst-case budget R̂.
//
// These splits are the canonical feasible starting point: the ASAP chain of
// the fully-preemptive total order replays this execution exactly, so the
// chain meets every deadline if and only if the task set is schedulable at
// Vmax under the chosen priority rule. (Proportional splits — workload
// spread evenly over the window — can be infeasible even for schedulable
// sets, because they leave work in segments that higher-priority load fully
// occupies.)
func (s *Schedule) rmVmaxSplits() error {
	plan := s.Plan
	rate := 1 / s.Model.CycleTime(s.Model.VMax()) // cycles per ms at Vmax

	// Timeline boundaries: every segment edge. Deadlines and releases are
	// segment edges by construction, so execution windows align with the
	// interval grid.
	edgeSet := map[float64]bool{0: true, plan.Hyperperiod: true}
	for _, su := range plan.Subs {
		edgeSet[su.SegStart] = true
		edgeSet[su.SegEnd] = true
	}
	edges := make([]float64, 0, len(edgeSet))
	for e := range edgeSet {
		edges = append(edges, e)
	}
	sort.Float64s(edges)

	// Remaining worst-case work per instance, and a cursor into each
	// instance's piece list for locating the piece covering a time point.
	remaining := make([]float64, len(plan.Instances))
	for idx := range plan.Instances {
		remaining[idx] = plan.Set.Tasks[plan.Instances[idx].TaskIndex].WCEC
	}
	for pos := range s.WCWork {
		s.WCWork[pos] = 0
	}

	// Ready instances ordered by the plan's priority rule; ties resolve by
	// task index then release, matching preempt's total order.
	higher := func(a, b int) bool {
		ia, ib := plan.Instances[a], plan.Instances[b]
		if plan.Opts.EDF {
			if ia.Deadline != ib.Deadline {
				return ia.Deadline < ib.Deadline
			}
			return ia.TaskIndex < ib.TaskIndex
		}
		pa := plan.Set.Tasks[ia.TaskIndex].Period
		pb := plan.Set.Tasks[ib.TaskIndex].Period
		if pa != pb {
			return pa < pb
		}
		if ia.TaskIndex != ib.TaskIndex {
			return ia.TaskIndex < ib.TaskIndex
		}
		return ia.Number < ib.Number
	}

	// Instances sorted by priority once; each interval scans the ready ones
	// in that order. O(#edges · #instances) overall — fine at this scale.
	order := make([]int, len(plan.Instances))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return higher(order[x], order[y]) })

	for e := 0; e+1 < len(edges); e++ {
		a, b := edges[e], edges[e+1]
		capacity := (b - a) * rate
		for _, idx := range order {
			if capacity <= 0 {
				break
			}
			if remaining[idx] <= 0 {
				continue
			}
			in := plan.Instances[idx]
			if in.Release > a+1e-12 {
				continue // not yet released in this interval
			}
			if in.Deadline < b-1e-12 {
				// Its window ended at or before this interval, with work
				// left: the set is unschedulable at Vmax.
				return fmt.Errorf("core: %s unschedulable at Vmax: %g cycles left at deadline %g",
					in.ID(plan.Set), remaining[idx], in.Deadline)
			}
			w := math.Min(remaining[idx], capacity)
			pos, err := s.pieceAt(idx, a)
			if err != nil {
				return err
			}
			s.WCWork[pos] += w
			remaining[idx] -= w
			capacity -= w
		}
	}
	for idx, r := range remaining {
		if r > 1e-9*plan.Set.Tasks[plan.Instances[idx].TaskIndex].WCEC {
			return fmt.Errorf("core: %s unschedulable at Vmax: %g cycles never scheduled",
				plan.Instances[idx].ID(plan.Set), r)
		}
		// Fold any numerical residue into the final piece so splits sum
		// exactly to WCEC.
		if r != 0 {
			last := plan.ByInstance[idx][len(plan.ByInstance[idx])-1]
			s.WCWork[last] += r
		}
	}
	return nil
}

// pieceAt returns the position (in total order) of instance idx's piece
// whose segment contains time t.
func (s *Schedule) pieceAt(idx int, t float64) (int, error) {
	positions := s.Plan.ByInstance[idx]
	// Binary search for the last piece with SegStart <= t.
	lo, hi := 0, len(positions)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.Plan.Subs[positions[mid]].SegStart <= t+1e-12 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	su := s.Plan.Subs[positions[lo]]
	if t < su.SegStart-1e-9 || t > su.SegEnd+1e-9 {
		return 0, fmt.Errorf("core: no piece of instance %d covers t=%g", idx, t)
	}
	return positions[lo], nil
}
