// Package core implements the paper's contribution: ACS, the average-case-
// aware offline voltage scheduler for preemptive hard real-time systems
// (§3), together with the WCS worst-case-only baseline it is evaluated
// against (§4).
//
// The NLP of §3.2 is solved in a reduced variable space. Equations (11)–(14)
// make the average workloads a deterministic function of the worst-case
// workload splits (sub-instances of an instance are filled in execution
// order, each taking min(remaining ACEC, R̂)); equation (2) determines both
// voltages from workloads and windows; and constraint (10) holds with
// equality under greedy slack reclamation, which pins the average start
// times. The free variables are therefore the per-sub-instance end-times e_u
// and the worst-case splits R̂_u (summing to WCEC per instance), subject to
//
//	e_u ≤ deadline(u)                                  (7)
//	R̂_u · tc(Vmax) ≤ e_u − max(e_{u−1}, release(u))    (9)
//	R̂_u ≥ 0, Σ_k R̂_{i,j,k} = WCEC_i                   (11)–(12)
//
// and the objective is the energy of the greedy-reclamation runtime at the
// average workload (ACS) or the worst-case workload (WCS). See DESIGN.md §2.
package core

import (
	"fmt"
	"math"

	"repro/internal/power"
	"repro/internal/preempt"
)

// Objective selects what the static schedule optimises.
type Objective int

const (
	// AverageCase is ACS: minimise expected runtime energy when tasks take
	// their average workload, subject to worst-case feasibility.
	AverageCase Objective = iota
	// WorstCase is WCS: the baseline that minimises energy assuming every
	// task consumes its WCEC.
	WorstCase
)

// String names the objective for reports.
func (o Objective) String() string {
	switch o {
	case AverageCase:
		return "ACS"
	case WorstCase:
		return "WCS"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Schedule is a solved static voltage schedule: the artefact the offline
// phase hands to the online DVS dispatcher. Only End and WCWork cross that
// boundary (paper §3.2: "only the end-time and the worst-case workload
// variables will be passed to the online DVS phase"); the remaining fields
// are diagnostics.
type Schedule struct {
	// Plan is the fully-preemptive expansion the schedule is defined over.
	Plan *preempt.Schedule
	// Model is the processor model voltages were solved against.
	Model power.Model
	// End holds the static end-time (ms) of each sub-instance, indexed in
	// the plan's total order.
	End []float64
	// WCWork holds the worst-case workload R̂ (cycles) of each sub-instance.
	WCWork []float64
	// AvgWork holds the derived average workload R̄ of each sub-instance
	// (the case-1/case-2 construction of §3.2, Fig. 5).
	AvgWork []float64
	// Objective records what was optimised.
	Objective Objective
	// Energy is the objective value at the solution: expected runtime
	// energy under greedy reclamation for ACS, worst-case energy for WCS.
	Energy float64
	// Sweeps is the number of coordinate-descent sweeps the solver used.
	// Under multi-start (Config.Starts > 1) it aggregates the sweeps of
	// every start — total optimisation work, not the winner's convergence
	// length.
	Sweeps int

	// Specialised evaluation parameters for the SimpleInverse power model
	// (the model every paper experiment runs on): evalStep is the solver's
	// innermost function, and devirtualising the two Model calls per step is
	// worth ~2x there. Populated by initFastModel; zero-valued schedules
	// fall back to the generic Model interface.
	fastOK                    bool
	fastK, fastVMin, fastVMax float64
	fastTcVMin, fastTcVMax    float64
}

// initFastModel caches the SimpleInverse parameters when the schedule's
// model is one, enabling the allocation- and interface-free evalStep path.
// The fast path computes the same quantities as the interface path with one
// division per step instead of three; results agree to within a few ulps
// (well inside every tolerance the solver and its verifier use).
func (s *Schedule) initFastModel() {
	if m, ok := s.Model.(*power.SimpleInverse); ok {
		s.fastOK = true
		s.fastK, s.fastVMin, s.fastVMax = m.K, m.Vmin, m.Vmax
		s.fastTcVMin, s.fastTcVMax = m.K/m.Vmin, m.K/m.Vmax
	}
}

// deriveAvgWork fills avg[pos] for every sub-instance position of the plan
// given worst-case splits wc, implementing the paper's case-1/case-2 rule:
// walk the instance's pieces in execution order, each executing
// min(remaining ACEC, R̂); later pieces run only the residue (possibly zero —
// they exist purely as worst-case reservations).
func deriveAvgWork(plan *preempt.Schedule, wc, avg []float64) {
	for idx, positions := range plan.ByInstance {
		remaining := plan.Set.Tasks[plan.Instances[idx].TaskIndex].ACEC
		for _, pos := range positions {
			w := math.Min(remaining, wc[pos])
			avg[pos] = w
			remaining -= w
		}
	}
}

// evalState carries the greedy-reclamation recursion so sweeps can resume
// evaluation mid-order (prefix caching).
type evalState struct {
	t      float64 // current time: actual finish of the previous piece
	energy float64 // accumulated energy
}

// evalStep advances the recursion across sub-instance pos executing `work`
// cycles with a worst-case budget wc[pos] ending at end[pos]. It mirrors the
// online dispatcher exactly: the runtime voltage is the lowest at which the
// *worst-case* budget would still meet the static end-time from the actual
// start (that is the deadline-safety contract), and the piece then runs only
// `work` cycles at that voltage, finishing early and donating slack.
func (s *Schedule) evalStep(st *evalState, pos int, work float64) {
	su := &s.Plan.Subs[pos]
	a := st.t
	if su.Release > a {
		a = su.Release
	}
	if s.WCWork[pos] <= deadWork || work <= 0 {
		return // empty reservation or no actual work: no time, no energy
	}
	var v float64
	if s.fastOK {
		// Inlined SimpleInverse VoltageForWindow + CycleTime, reformulated
		// around the cycle time so the common (unclamped) case needs two
		// divisions and the clamped cases one.
		window := s.End[pos] - a
		var tc float64
		if window <= 0 {
			v, tc = s.fastVMax, s.fastTcVMax
		} else if tc = window / s.WCWork[pos]; tc > s.fastTcVMin {
			v, tc = s.fastVMin, s.fastTcVMin
		} else if tc < s.fastTcVMax {
			v, tc = s.fastVMax, s.fastTcVMax
		} else {
			v = s.fastK / tc
		}
		ceff := s.Plan.Set.Tasks[su.TaskIndex].Ceff
		st.energy += ceff * v * v * work
		st.t = a + work*tc
		return
	}
	v, _ = power.VoltageForWindow(s.Model, s.WCWork[pos], s.End[pos]-a)
	ceff := s.Plan.Set.Tasks[su.TaskIndex].Ceff
	st.energy += power.Energy(ceff, v, work)
	st.t = a + work*s.Model.CycleTime(v)
}

// evalFrom runs the recursion over positions [from, len) using workloads
// `loads` (AvgWork for the ACS objective, WCWork for WCS) starting from st.
func (s *Schedule) evalFrom(st evalState, from int, loads []float64) evalState {
	for pos := from; pos < len(s.Plan.Subs); pos++ {
		s.evalStep(&st, pos, loads[pos])
	}
	return st
}

// ObjectiveEnergy recomputes the schedule's objective value from scratch.
func (s *Schedule) ObjectiveEnergy() float64 {
	loads := s.AvgWork
	if s.Objective == WorstCase {
		loads = s.WCWork
	}
	return s.evalFrom(evalState{}, 0, loads).energy
}

// EnergyUnder evaluates the schedule's greedy-reclamation runtime energy
// when every instance of every task consumes the given actual cycle counts.
// actual is indexed by instance index (plan.Instances order); each
// instance's cycles are consumed across its pieces in execution order, up to
// each piece's worst-case budget. It returns the energy and the worst
// deadline overshoot in ms (0 when all deadlines hold).
func (s *Schedule) EnergyUnder(actual []float64) (energy, worstOvershoot float64, err error) {
	if len(actual) != len(s.Plan.Instances) {
		return 0, 0, fmt.Errorf("core: got %d actual workloads for %d instances",
			len(actual), len(s.Plan.Instances))
	}
	remaining := append([]float64(nil), actual...)
	var st evalState
	for pos := range s.Plan.Subs {
		su := &s.Plan.Subs[pos]
		w := math.Min(remaining[su.InstanceIndex], s.WCWork[pos])
		remaining[su.InstanceIndex] -= w
		if w <= 0 {
			continue // empty piece: executes nothing, no deadline to meet
		}
		s.evalStep(&st, pos, w)
		if over := st.t - su.Deadline; over > worstOvershoot {
			worstOvershoot = over
		}
	}
	return st.energy, worstOvershoot, nil
}

// DeadWork is the workload threshold below which a sub-instance counts as an
// empty reservation: the worst case provably never executes it, so the
// deadline and chaining constraints are vacuous for it (see the package
// comment on the zero-budget relaxation). The online compiler (internal/sim)
// shares this threshold so solver and simulator agree about which pieces are
// dead.
const DeadWork = 1e-9

// deadWork is the internal alias the solver's hot paths use.
const deadWork = DeadWork

// Verify checks every constraint of the reduced NLP at the stored solution:
// deadline bounds (7), worst-case chaining at Vmax (9), non-negative splits
// summing to WCEC (11)–(12), and that the all-WCEC execution meets every
// deadline. Zero-budget sub-instances are exempt from (7) and (9): they
// never execute, so only work-bearing pieces form the worst-case chain.
// tol is an absolute time tolerance in ms (1e-6 is appropriate for
// millisecond-scale schedules).
func (s *Schedule) Verify(tol float64) error {
	n := len(s.Plan.Subs)
	if len(s.End) != n || len(s.WCWork) != n || len(s.AvgWork) != n {
		return fmt.Errorf("core: schedule arrays have inconsistent lengths")
	}
	tcMax := s.Model.CycleTime(s.Model.VMax())
	prevEnd := 0.0 // end of the last work-bearing piece
	for pos := 0; pos < n; pos++ {
		su := &s.Plan.Subs[pos]
		if s.WCWork[pos] < -tol {
			return fmt.Errorf("core: sub %d has negative worst-case workload %g", pos, s.WCWork[pos])
		}
		if s.AvgWork[pos] < -tol || s.AvgWork[pos] > s.WCWork[pos]+tol {
			return fmt.Errorf("core: sub %d average workload %g outside [0, %g]",
				pos, s.AvgWork[pos], s.WCWork[pos])
		}
		if s.WCWork[pos] <= deadWork {
			continue // empty reservation: constraints vacuous
		}
		if s.End[pos] > su.Deadline+tol {
			return fmt.Errorf("core: sub %d end %g violates deadline %g", pos, s.End[pos], su.Deadline)
		}
		start := math.Max(prevEnd, su.Release)
		if need := s.WCWork[pos] * tcMax; s.End[pos]-start < need-tol {
			return fmt.Errorf("core: sub %d worst-case chain violated: window %g < %g at Vmax",
				pos, s.End[pos]-start, need)
		}
		prevEnd = s.End[pos]
	}
	for idx, positions := range s.Plan.ByInstance {
		var sum float64
		for _, pos := range positions {
			sum += s.WCWork[pos]
		}
		wcec := s.Plan.Set.Tasks[s.Plan.Instances[idx].TaskIndex].WCEC
		if math.Abs(sum-wcec) > tol+1e-9*wcec {
			return fmt.Errorf("core: instance %d splits sum to %g, want WCEC %g", idx, sum, wcec)
		}
	}
	// All-WCEC execution must meet all deadlines (the safety property the
	// motivational example shows naive end-time choices violate).
	wcActual := make([]float64, len(s.Plan.Instances))
	for idx := range wcActual {
		wcActual[idx] = s.Plan.Set.Tasks[s.Plan.Instances[idx].TaskIndex].WCEC
	}
	if _, over, err := s.EnergyUnder(wcActual); err != nil {
		return err
	} else if over > tol {
		return fmt.Errorf("core: all-WCEC execution overshoots a deadline by %g ms", over)
	}
	return nil
}

// RuntimeVoltages returns, for a given actual per-instance workload vector,
// the voltage each sub-instance runs at under greedy reclamation, aligned
// with the plan's total order. Pieces that execute zero cycles report 0.
// Used by trace output and by the discrete-level ablation.
func (s *Schedule) RuntimeVoltages(actual []float64) ([]float64, error) {
	if len(actual) != len(s.Plan.Instances) {
		return nil, fmt.Errorf("core: got %d actual workloads for %d instances",
			len(actual), len(s.Plan.Instances))
	}
	remaining := append([]float64(nil), actual...)
	volts := make([]float64, len(s.Plan.Subs))
	var st evalState
	for pos := range s.Plan.Subs {
		su := &s.Plan.Subs[pos]
		w := math.Min(remaining[su.InstanceIndex], s.WCWork[pos])
		remaining[su.InstanceIndex] -= w
		if s.WCWork[pos] > 0 && w > 0 {
			a := math.Max(st.t, su.Release)
			v, _ := power.VoltageForWindow(s.Model, s.WCWork[pos], s.End[pos]-a)
			volts[pos] = v
		}
		s.evalStep(&st, pos, w)
	}
	return volts, nil
}

// TaskEnergyShare returns per-task energy under the given actual workloads,
// for diagnostic breakdowns.
func (s *Schedule) TaskEnergyShare(actual []float64) ([]float64, error) {
	if len(actual) != len(s.Plan.Instances) {
		return nil, fmt.Errorf("core: got %d actual workloads for %d instances",
			len(actual), len(s.Plan.Instances))
	}
	remaining := append([]float64(nil), actual...)
	share := make([]float64, s.Plan.Set.N())
	var st evalState
	for pos := range s.Plan.Subs {
		su := &s.Plan.Subs[pos]
		w := math.Min(remaining[su.InstanceIndex], s.WCWork[pos])
		remaining[su.InstanceIndex] -= w
		before := st.energy
		s.evalStep(&st, pos, w)
		share[su.TaskIndex] += st.energy - before
	}
	return share, nil
}
