package core
