package core_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

// codecSet returns a small feasible set for codec tests.
func codecSet(t *testing.T, seed uint64, n int) *task.Set {
	t.Helper()
	rng := stats.NewRNG(seed)
	set, err := workload.RandomFeasible(rng, workload.RandomConfig{
		N: n, Ratio: 0.5, Utilization: 0.7,
	}, 50, func(s *task.Set) bool { return core.Feasible(s, core.Config{}) == nil })
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// codecModels returns one instance of every encodable model family.
func codecModels(t *testing.T) map[string]power.Model {
	t.Helper()
	si, err := power.NewSimpleInverse(1, 0.6, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	al, err := power.NewAlpha(0.2, 0.3, 1.5, 0.7, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	di, err := power.NewDiscrete(si, []float64{0.8, 1.5, 2.5, 4.0})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]power.Model{"simple": si, "alpha": al, "discrete": di}
}

// TestCodecRoundTripCompilesIdentically is the codec's core contract: for a
// solved schedule of every model family and both objectives,
// decode(encode(s)) compiles to a bit-identical sim plan, verifies like the
// original, and re-encodes to the identical bytes (canonical form).
func TestCodecRoundTripCompilesIdentically(t *testing.T) {
	for name, model := range codecModels(t) {
		for _, obj := range []core.Objective{core.AverageCase, core.WorstCase} {
			for _, seed := range []uint64{3} {
				set := codecSet(t, seed, 3)
				s, err := core.Build(set, core.Config{Objective: obj, Model: model, MaxSweeps: 8})
				if err != nil {
					t.Fatalf("%s/%v/%d: build: %v", name, obj, seed, err)
				}
				blob, err := core.EncodeSchedule(s)
				if err != nil {
					t.Fatalf("%s/%v/%d: encode: %v", name, obj, seed, err)
				}
				dec, err := core.DecodeSchedule(blob)
				if err != nil {
					t.Fatalf("%s/%v/%d: decode: %v", name, obj, seed, err)
				}
				if err := dec.Verify(1e-9); err != nil {
					t.Errorf("%s/%v/%d: decoded schedule fails Verify: %v", name, obj, seed, err)
				}
				if dec.Energy != s.Energy || dec.Sweeps != s.Sweeps || dec.Objective != s.Objective {
					t.Errorf("%s/%v/%d: scalars did not round-trip", name, obj, seed)
				}
				p1, err := sim.Compile(s)
				if err != nil {
					t.Fatalf("%s/%v/%d: compile original: %v", name, obj, seed, err)
				}
				p2, err := sim.Compile(dec)
				if err != nil {
					t.Fatalf("%s/%v/%d: compile decoded: %v", name, obj, seed, err)
				}
				if !reflect.DeepEqual(p1, p2) {
					t.Errorf("%s/%v/%d: decoded schedule compiles to a different plan", name, obj, seed)
				}
				again, err := core.EncodeSchedule(dec)
				if err != nil {
					t.Fatalf("%s/%v/%d: re-encode: %v", name, obj, seed, err)
				}
				if !bytes.Equal(blob, again) {
					t.Errorf("%s/%v/%d: encoding is not canonical: re-encode differs", name, obj, seed)
				}
			}
		}
	}
}

// TestCodecRejectsDamage: every truncation of a valid blob, a bit flip in
// every byte, and trailing garbage must all return an error — never a panic
// and never a silently different schedule.
func TestCodecRejectsDamage(t *testing.T) {
	set := codecSet(t, 5, 3)
	s, err := core.Build(set, core.Config{Objective: core.AverageCase})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := core.EncodeSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(blob); n++ {
		if _, err := core.DecodeSchedule(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
	if _, err := core.DecodeSchedule(append(append([]byte{}, blob...), 0)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
	flips := 0
	for i := range blob {
		mut := append([]byte{}, blob...)
		mut[i] ^= 0x40
		dec, err := core.DecodeSchedule(mut)
		if err != nil {
			continue
		}
		flips++
		// A flip the decoder accepts (it landed in a float payload) must still
		// produce a structurally consistent schedule that re-encodes to the
		// mutated bytes, not the original.
		if again, err := core.EncodeSchedule(dec); err == nil && bytes.Equal(again, blob) && !bytes.Equal(mut, blob) {
			t.Fatalf("flip at byte %d decoded back to the original content", i)
		}
	}
	t.Logf("%d/%d single-byte flips decoded (float payloads)", flips, len(blob))
}

// TestEncodeRefusesHandBuiltPlans: a schedule whose plan is not exactly what
// preempt.BuildWith derives from its task set and options must be refused,
// because the decoder re-derives the plan and would silently return a
// different schedule.
func TestEncodeRefusesHandBuiltPlans(t *testing.T) {
	set := codecSet(t, 9, 3)
	s, err := core.Build(set, core.Config{Objective: core.WorstCase})
	if err != nil {
		t.Fatal(err)
	}
	mutated := core.CloneSchedule(s)
	mutated.Plan.Subs[0].SegEnd += 1e-3
	if _, err := core.EncodeSchedule(mutated); err == nil {
		t.Fatal("encode accepted a schedule whose plan BuildWith does not reproduce")
	}
}

// FuzzDecodeSchedule hammers the decoder with mutated blobs. Two invariants:
// the decoder never panics (the fuzz engine catches that for free), and any
// input it accepts is in canonical form — re-encoding the result reproduces
// the input bytes exactly. Together these pin "decode ∘ encode = identity on
// the accepted set", which is what lets the disk store treat blob equality
// as content equality.
func FuzzDecodeSchedule(f *testing.F) {
	for _, seed := range []uint64{3, 17} {
		rng := stats.NewRNG(seed)
		set, err := workload.RandomFeasible(rng, workload.RandomConfig{
			N: 3, Ratio: 0.5, Utilization: 0.7,
		}, 50, func(s *task.Set) bool { return core.Feasible(s, core.Config{}) == nil })
		if err != nil {
			f.Fatal(err)
		}
		for _, obj := range []core.Objective{core.AverageCase, core.WorstCase} {
			s, err := core.Build(set, core.Config{Objective: obj})
			if err != nil {
				f.Fatal(err)
			}
			blob, err := core.EncodeSchedule(s)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(blob)
		}
	}
	f.Add([]byte("schedv1\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := core.DecodeSchedule(data)
		if err != nil {
			return
		}
		again, err := core.EncodeSchedule(s)
		if err != nil {
			t.Fatalf("decoded schedule does not re-encode: %v", err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("accepted input is not canonical: re-encode differs")
		}
	})
}
