package core

import (
	"runtime"
	"sync"

	"repro/internal/preempt"
	"repro/internal/stats"
)

// solveMultiStart runs Config.Starts independent coordinate-descent solves
// and returns the one with the best optimised objective. Start 0 reproduces
// the single-start solve exactly (cfg's InitBlend plus the WCS warm start
// when supplied); every further start replaces the warm start with an
// InitBlend drawn from its own RNG stream, exploring different basins of the
// non-convex reduced NLP.
//
// Determinism contract: the per-start blends are drawn by splitting a master
// stats.RNG sequentially *before* any work is dispatched, every start is a
// pure function of its own config, and the fan-in scans results in start
// order preferring strictly better objectives — so the returned schedule is
// bit-identical for a given (Starts, StartSeed) no matter how many workers
// run, mirroring the index-addressed fan-in of the grid engine (grid.Collect).
func solveMultiStart(plan *preempt.Schedule, c Config) (*Schedule, error) {
	starts := c.Starts
	workers := c.StartWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > starts {
		workers = starts
	}

	master := stats.NewRNG(c.StartSeed)
	cfgs := make([]Config, starts)
	for i := range cfgs {
		rng := master.Split() // one stream per start, fixed order
		ci := c
		ci.Starts = 0
		ci.StartWorkers = 0
		if i > 0 {
			ci.WarmStart = nil
			ci.InitBlend = rng.Uniform(0.05, 0.95)
		}
		cfgs[i] = ci
	}

	type result struct {
		s   *Schedule
		obj float64
		err error
	}
	out := make([]result, starts)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s, obj, err := solveSingle(plan, cfgs[i])
			out[i] = result{s, obj, err}
		}(i)
	}
	wg.Wait()

	// Cancellation is authoritative: starts that finished before the context
	// fired must not produce a timing-dependent "best of the survivors".
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			return nil, err
		}
	}

	var best *Schedule
	bestObj := 0.0
	var firstErr error
	totalSweeps := 0
	for i := range out {
		if out[i].err != nil {
			if firstErr == nil {
				firstErr = out[i].err
			}
			continue
		}
		totalSweeps += out[i].s.Sweeps
		if best == nil || out[i].obj < bestObj {
			best, bestObj = out[i].s, out[i].obj
		}
	}
	if best == nil {
		return nil, firstErr
	}
	best.Sweeps = totalSweeps
	return best, nil
}
