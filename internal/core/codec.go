package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/power"
	"repro/internal/preempt"
	"repro/internal/task"
)

// Deterministic binary codec for solved schedules — the wire format of the
// persistent content-addressed store (internal/store, DESIGN.md §9).
//
// Only the inputs of the preemptive expansion plus the solved vectors are
// serialised: the task set, the processor model, the expansion options, and
// End/WCWork/AvgWork. The plan itself (sub-instances, total order, instance
// lists) is NOT stored — preempt.BuildWith is a deterministic pure function
// of (set, options), so DecodeSchedule re-derives it bit-identically and for
// free gets every structural invariant re-established instead of trusting
// bytes from disk. EncodeSchedule verifies that reproducibility before
// emitting anything, so a schedule whose plan was hand-built (not by
// preempt.BuildWith) is refused rather than silently re-shaped on load.
//
// The encoding is canonical: for every byte string b that DecodeSchedule
// accepts, EncodeSchedule(DecodeSchedule(b)) == b (pinned by the decoder
// fuzz target). All integers are fixed-width little-endian; floats are their
// IEEE-754 bit patterns, so values round-trip exactly.

// codecMagic opens every encoded schedule: "schedv1\x00".
var codecMagic = [8]byte{'s', 'c', 'h', 'e', 'd', 'v', '1', 0}

// Model tags of the codec. Unknown power.Model implementations are not
// encodable (the same closed world the grid cache key hashes).
const (
	codecModelSimpleInverse = 1
	codecModelAlpha         = 2
	codecModelDiscrete      = 3
)

// Decoder resource bounds: a blob is rejected before any expensive work if
// it implies more than this. The instance bound caps preempt.BuildWith's
// quadratic preemption-point scan on adversarial inputs; real paper-scale
// sets stay orders of magnitude below it.
const (
	codecMaxTasks     = 1024
	codecMaxNameLen   = 256
	codecMaxInstances = 4096
	codecMaxLevels    = 4096
)

// encoder accumulates the canonical byte encoding.
type encoder struct{ buf []byte }

func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *encoder) flag(v bool) {
	var b uint64
	if v {
		b = 1
	}
	e.u64(b)
}
func (e *encoder) str(s string) {
	e.u64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) f64s(xs []float64) {
	e.u64(uint64(len(xs)))
	for _, x := range xs {
		e.f64(x)
	}
}

// decoder consumes an encoded schedule; the first violation latches err and
// turns every later read into a no-op zero.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("core: decode: "+format, args...)
	}
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.data) {
		d.fail("truncated at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

// flag reads a canonical boolean: exactly 0 or 1.
func (d *decoder) flag() bool {
	v := d.u64()
	if v > 1 {
		d.fail("non-canonical boolean %d", v)
	}
	return v == 1
}

func (d *decoder) str(maxLen int) string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > uint64(maxLen) {
		d.fail("string length %d exceeds %d", n, maxLen)
		return ""
	}
	if d.off+int(n) > len(d.data) {
		d.fail("truncated string at offset %d", d.off)
		return ""
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) f64s(maxLen int) []float64 {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n > uint64(maxLen) || d.off+int(n)*8 > len(d.data) {
		d.fail("float slice length %d implausible at offset %d", n, d.off)
		return nil
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.f64()
	}
	return xs
}

// EncodeSchedule renders s as the canonical binary blob DecodeSchedule
// accepts. It fails for schedules the codec's closed world cannot represent:
// an unknown power.Model implementation, inconsistent array lengths, an
// expansion larger than the decoder would accept, or a plan that
// preempt.BuildWith(set, opts) does not reproduce exactly.
func EncodeSchedule(s *Schedule) ([]byte, error) {
	if s == nil || s.Plan == nil || s.Plan.Set == nil {
		return nil, fmt.Errorf("core: encode: nil schedule or plan")
	}
	n := len(s.Plan.Subs)
	if len(s.End) != n || len(s.WCWork) != n || len(s.AvgWork) != n {
		return nil, fmt.Errorf("core: encode: schedule arrays inconsistent with plan (%d subs, %d ends, %d budgets, %d averages)",
			n, len(s.End), len(s.WCWork), len(s.AvgWork))
	}
	if s.Objective != AverageCase && s.Objective != WorstCase {
		return nil, fmt.Errorf("core: encode: unknown objective %d", int(s.Objective))
	}
	set := s.Plan.Set
	if set.N() > codecMaxTasks {
		return nil, fmt.Errorf("core: encode: %d tasks exceeds the codec bound of %d", set.N(), codecMaxTasks)
	}
	if len(s.Plan.Instances) > codecMaxInstances {
		return nil, fmt.Errorf("core: encode: %d instances exceeds the codec bound of %d",
			len(s.Plan.Instances), codecMaxInstances)
	}
	for i := range set.Tasks {
		if len(set.Tasks[i].Name) > codecMaxNameLen {
			return nil, fmt.Errorf("core: encode: task name longer than %d bytes", codecMaxNameLen)
		}
	}
	// The decoder re-derives the plan; refuse any schedule whose plan the
	// expansion does not reproduce exactly (a hand-built plan), so decode can
	// never silently return a different schedule than was stored.
	rebuilt, err := preempt.BuildWith(set, s.Plan.Opts)
	if err != nil {
		return nil, fmt.Errorf("core: encode: plan not reproducible: %w", err)
	}
	if len(rebuilt.Subs) != n || len(rebuilt.Instances) != len(s.Plan.Instances) {
		return nil, fmt.Errorf("core: encode: plan not reproducible from its task set and options")
	}
	for i := range rebuilt.Subs {
		if rebuilt.Subs[i] != s.Plan.Subs[i] {
			return nil, fmt.Errorf("core: encode: plan sub-instance %d not reproducible from its task set and options", i)
		}
	}

	e := &encoder{}
	e.buf = append(e.buf, codecMagic[:]...)
	e.u64(uint64(set.N()))
	for i := range set.Tasks {
		t := &set.Tasks[i]
		e.str(t.Name)
		e.i64(t.Period)
		e.f64(t.WCEC)
		e.f64(t.ACEC)
		e.f64(t.BCEC)
		e.f64(t.Ceff)
	}
	if err := encodeModel(e, s.Model); err != nil {
		return nil, err
	}
	e.i64(int64(s.Plan.Opts.MaxSubsPerInstance))
	e.flag(s.Plan.Opts.EDF)
	e.u64(uint64(s.Objective))
	e.f64(s.Energy)
	e.i64(int64(s.Sweeps))
	e.f64s(s.End)
	e.f64s(s.WCWork)
	e.f64s(s.AvgWork)
	return e.buf, nil
}

func encodeModel(e *encoder, m power.Model) error {
	if m == nil {
		m = power.DefaultModel()
	}
	switch mm := m.(type) {
	case *power.SimpleInverse:
		e.u64(codecModelSimpleInverse)
		e.f64(mm.K)
		e.f64(mm.Vmin)
		e.f64(mm.Vmax)
	case *power.Alpha:
		e.u64(codecModelAlpha)
		e.f64(mm.K)
		e.f64(mm.Vt)
		e.f64(mm.Aexp)
		e.f64(mm.Vmin)
		e.f64(mm.Vmax)
	case *power.Discrete:
		e.u64(codecModelDiscrete)
		if err := encodeModel(e, mm.Base()); err != nil {
			return err
		}
		e.f64s(mm.Levels())
	default:
		return fmt.Errorf("core: encode: model implementation %T is not encodable", m)
	}
	return nil
}

func decodeModel(d *decoder) power.Model {
	switch tag := d.u64(); tag {
	case codecModelSimpleInverse:
		k, vmin, vmax := d.f64(), d.f64(), d.f64()
		if d.err != nil {
			return nil
		}
		m, err := power.NewSimpleInverse(k, vmin, vmax)
		if err != nil {
			d.fail("%v", err)
			return nil
		}
		return m
	case codecModelAlpha:
		k, vt, a, vmin, vmax := d.f64(), d.f64(), d.f64(), d.f64(), d.f64()
		if d.err != nil {
			return nil
		}
		m, err := power.NewAlpha(k, vt, a, vmin, vmax)
		if err != nil {
			d.fail("%v", err)
			return nil
		}
		return m
	case codecModelDiscrete:
		base := decodeModel(d)
		levels := d.f64s(codecMaxLevels)
		if d.err != nil {
			return nil
		}
		// NewDiscrete sorts and deduplicates; the canonical form is already
		// strictly ascending, so anything else is a non-canonical encoding.
		for i := 1; i < len(levels); i++ {
			if !(levels[i] > levels[i-1]) {
				d.fail("discrete levels not strictly ascending")
				return nil
			}
		}
		m, err := power.NewDiscrete(base, levels)
		if err != nil {
			d.fail("%v", err)
			return nil
		}
		return m
	default:
		d.fail("unknown model tag %d", tag)
		return nil
	}
}

// DecodeSchedule parses an EncodeSchedule blob back into a schedule whose
// compiled sim plan is bit-identical to the original's: the preemptive plan
// is re-derived through preempt.BuildWith and the SimpleInverse fast path is
// re-initialised. Corrupted or truncated input returns an error — never a
// panic and never a structurally inconsistent schedule.
func DecodeSchedule(data []byte) (*Schedule, error) {
	d := &decoder{data: data}
	if len(data) < len(codecMagic) || [8]byte(data[:8]) != codecMagic {
		return nil, fmt.Errorf("core: decode: bad magic")
	}
	d.off = len(codecMagic)

	n := d.u64()
	if d.err == nil && (n < 1 || n > codecMaxTasks) {
		d.fail("task count %d outside [1, %d]", n, codecMaxTasks)
	}
	if d.err != nil {
		return nil, d.err
	}
	tasks := make([]task.Task, n)
	for i := range tasks {
		tasks[i] = task.Task{
			Name:   d.str(codecMaxNameLen),
			Period: d.i64(),
			WCEC:   d.f64(),
			ACEC:   d.f64(),
			BCEC:   d.f64(),
			Ceff:   d.f64(),
		}
		if d.err != nil {
			return nil, d.err
		}
		// Canonical form: NewSet assigns default names to empty ones and
		// stable-sorts by period, so the encoding must carry non-empty names
		// in non-decreasing period order or re-encoding would not round-trip.
		if tasks[i].Name == "" {
			d.fail("task %d has an empty name", i)
		}
		if i > 0 && tasks[i].Period < tasks[i-1].Period {
			d.fail("tasks not in rate-monotonic order")
		}
	}
	model := decodeModel(d)
	maxSubs := d.i64()
	if d.err == nil && (maxSubs < 0 || maxSubs > math.MaxInt32) {
		d.fail("sub-instance cap %d implausible", maxSubs)
	}
	edf := d.flag()
	obj := d.u64()
	if d.err == nil && obj > uint64(WorstCase) {
		d.fail("unknown objective %d", obj)
	}
	energy := d.f64()
	sweeps := d.i64()
	if d.err == nil && (sweeps < 0 || sweeps > math.MaxInt32) {
		d.fail("sweep count %d implausible", sweeps)
	}
	if d.err != nil {
		return nil, d.err
	}

	set, err := task.NewSet(tasks)
	if err != nil {
		return nil, fmt.Errorf("core: decode: %w", err)
	}
	// Bound the expansion before running it: the preemption-point scan is
	// quadratic in the instance count, and this is the one place untrusted
	// bytes choose that count.
	h, err := set.Hyperperiod()
	if err != nil {
		return nil, fmt.Errorf("core: decode: %w", err)
	}
	var instances int64
	for i := range set.Tasks {
		instances += h / set.Tasks[i].Period
		if instances > codecMaxInstances {
			return nil, fmt.Errorf("core: decode: expansion exceeds %d instances", codecMaxInstances)
		}
	}
	plan, err := preempt.BuildWith(set, preempt.Options{MaxSubsPerInstance: int(maxSubs), EDF: edf})
	if err != nil {
		return nil, fmt.Errorf("core: decode: %w", err)
	}

	end := d.f64s(len(plan.Subs))
	wcWork := d.f64s(len(plan.Subs))
	avgWork := d.f64s(len(plan.Subs))
	if d.err != nil {
		return nil, d.err
	}
	if len(end) != len(plan.Subs) || len(wcWork) != len(plan.Subs) || len(avgWork) != len(plan.Subs) {
		return nil, fmt.Errorf("core: decode: solved vectors (%d/%d/%d) inconsistent with the %d-sub plan",
			len(end), len(wcWork), len(avgWork), len(plan.Subs))
	}
	if d.off != len(d.data) {
		return nil, fmt.Errorf("core: decode: %d trailing bytes", len(d.data)-d.off)
	}

	s := &Schedule{
		Plan:      plan,
		Model:     model,
		End:       end,
		WCWork:    wcWork,
		AvgWork:   avgWork,
		Objective: Objective(obj),
		Energy:    energy,
		Sweeps:    int(sweeps),
	}
	s.initFastModel()
	return s, nil
}
