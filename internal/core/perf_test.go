package core

import (
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/workload"
)

// TestSolvePerformance records how long the production solver takes on the
// largest Fig. 6(a) configuration (N=10 at 70% utilisation); it fails only
// if solving becomes pathologically slow, keeping the experiment harness
// honest about its budget.
func TestSolvePerformance(t *testing.T) {
	if testing.Short() {
		t.Skip("performance probe skipped in -short mode")
	}
	rng := stats.NewRNG(7)
	set, err := workload.Random(rng, workload.RandomConfig{N: 10, Ratio: 0.1, Utilization: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	s, err := Build(set, Config{Objective: AverageCase})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	t.Logf("N=10: %d subs, %d sweeps, %v", len(s.Plan.Subs), s.Sweeps, elapsed)
	if elapsed > 2*time.Minute {
		t.Errorf("ACS solve took %v; expected well under 2 minutes", elapsed)
	}
}
