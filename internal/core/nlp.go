package core

import (
	"fmt"
	"math"

	"repro/internal/opt"
)

// NLP exposes the reduced mathematical program (DESIGN.md §2) over a flat
// variable vector so the generic solvers in internal/opt can attack it
// directly. It exists to cross-check the structured coordinate-descent
// solver (experiment E9): on small instances both must land on the same
// objective value to within tolerance.
//
// Variable layout: x[0:n] are end-times; x[n:2n] are worst-case splits.
type NLP struct {
	sched *Schedule // scratch schedule reused for evaluation
	n     int
}

// NewNLP wraps a solved (or merely initialised) schedule as a mathematical
// program. The schedule's plan, model and objective are used; its variable
// arrays are treated as scratch space and clobbered by evaluations.
func NewNLP(s *Schedule) *NLP {
	return &NLP{sched: s, n: len(s.Plan.Subs)}
}

// Dim returns the variable-vector length (2·#sub-instances).
func (p *NLP) Dim() int { return 2 * p.n }

// Pack writes the schedule's current solution into a fresh vector.
func (p *NLP) Pack() []float64 {
	x := make([]float64, p.Dim())
	copy(x[:p.n], p.sched.End)
	copy(x[p.n:], p.sched.WCWork)
	return x
}

// Unpack installs x into the schedule and re-derives average workloads.
func (p *NLP) Unpack(x []float64) error {
	if len(x) != p.Dim() {
		return fmt.Errorf("core: NLP vector has length %d, want %d", len(x), p.Dim())
	}
	copy(p.sched.End, x[:p.n])
	copy(p.sched.WCWork, x[p.n:])
	deriveAvgWork(p.sched.Plan, p.sched.WCWork, p.sched.AvgWork)
	return nil
}

// Objective evaluates the schedule energy at x (average-case for ACS,
// worst-case for WCS). Infeasible points are still evaluated — the energy
// model clamps voltages into range — so penalty methods see a finite
// landscape everywhere.
func (p *NLP) Objective(x []float64) float64 {
	if err := p.Unpack(x); err != nil {
		return math.Inf(1)
	}
	return p.sched.ObjectiveEnergy()
}

// Constraints returns the inequality set g(x) ≤ 0 of the reduced NLP:
// deadlines, worst-case chaining, split non-negativity, and per-instance
// workload conservation (as paired inequalities). It encodes the same
// zero-budget relaxation the production solver uses: a piece with no
// worst-case budget never executes, so its deadline constraint is vacuous
// and the chain passes through work-bearing pieces only.
func (p *NLP) Constraints() []opt.Constraint {
	plan := p.sched.Plan
	tcMax := p.sched.Model.CycleTime(p.sched.Model.VMax())
	var cons []opt.Constraint

	for pos := 0; pos < p.n; pos++ {
		pos := pos
		su := &plan.Subs[pos]
		// e_pos ≤ deadline, active only while the piece carries work.
		cons = append(cons, func(x []float64) float64 {
			if x[p.n+pos] <= deadWork {
				return -1 // vacuous for an empty reservation
			}
			return x[pos] - su.Deadline
		})
		// Worst-case chain: R̂·tc(Vmax) − (e_pos − max(e_prevAlive, release)) ≤ 0.
		cons = append(cons, func(x []float64) float64 {
			if x[p.n+pos] <= deadWork {
				return -1
			}
			prev := 0.0
			for q := pos - 1; q >= 0; q-- {
				if x[p.n+q] > deadWork {
					prev = x[q]
					break
				}
			}
			start := math.Max(prev, su.Release)
			return x[p.n+pos]*tcMax - (x[pos] - start)
		})
		// R̂ ≥ 0.
		cons = append(cons, func(x []float64) float64 { return -x[p.n+pos] })
	}
	for idx := range plan.ByInstance {
		idx := idx
		wcec := plan.Set.Tasks[plan.Instances[idx].TaskIndex].WCEC
		sum := func(x []float64) float64 {
			var t float64
			for _, pos := range plan.ByInstance[idx] {
				t += x[p.n+pos]
			}
			return t
		}
		cons = append(cons,
			func(x []float64) float64 { return sum(x) - wcec },
			func(x []float64) float64 { return wcec - sum(x) },
		)
	}
	return cons
}

// SolvePenalty runs the exterior-penalty reference solver from the
// schedule's current point and installs the result if it is feasible (to
// tol) and improves the objective. It returns the reference objective value
// and the worst constraint violation at the reference solution.
func (p *NLP) SolvePenalty(o opt.PenaltyOptions, tol float64) (obj, violation float64, err error) {
	x0 := p.Pack()
	obj0 := p.Objective(x0)
	cons := p.Constraints()
	x, obj, err := opt.PenaltyMinimize(p.Objective, cons, x0, o)
	if err != nil {
		return 0, 0, err
	}
	violation = opt.MaxViolation(cons, x)
	// Leave the schedule holding its best-known feasible solution: the
	// reference result when it is feasible and better, else the original.
	if violation <= tol && obj < obj0 {
		err = p.Unpack(x)
	} else {
		err = p.Unpack(x0)
	}
	return obj, violation, err
}

// SolveNelderMead runs the simplex reference solver over end-times only
// (splits fixed), projecting iterates into the feasible box by clamping to
// deadlines. Returns the best objective seen among feasible iterates.
func (p *NLP) SolveNelderMead(o opt.NelderMeadOptions) (float64, error) {
	ends0 := append([]float64(nil), p.sched.End...)
	wc := append([]float64(nil), p.sched.WCWork...)
	plan := p.sched.Plan
	tcMax := p.sched.Model.CycleTime(p.sched.Model.VMax())

	// feasRepair clamps an end vector onto the feasible chain (work-bearing
	// pieces only). It reports false when no clamp can restore feasibility —
	// the chain would push an end past its deadline — in which case the
	// objective must reject the point rather than score an invalid schedule.
	feasRepair := func(ends []float64) bool {
		prev := 0.0
		for pos := range ends {
			su := &plan.Subs[pos]
			if wc[pos] <= deadWork {
				ends[pos] = math.Max(prev, su.Release)
				continue
			}
			lo := math.Max(prev, su.Release) + wc[pos]*tcMax
			if lo > su.Deadline+1e-9 {
				return false
			}
			ends[pos] = opt.Clamp(ends[pos], lo, su.Deadline)
			prev = ends[pos]
		}
		return true
	}
	obj := func(ends []float64) float64 {
		repaired := append([]float64(nil), ends...)
		if !feasRepair(repaired) {
			return math.Inf(1)
		}
		copy(p.sched.End, repaired)
		return p.sched.ObjectiveEnergy()
	}
	best, bestF, err := opt.NelderMead(obj, ends0, o)
	if err != nil {
		return 0, err
	}
	if !feasRepair(best) {
		// Fall back to the starting point, which is always feasible.
		best = ends0
		if !feasRepair(best) {
			return 0, fmt.Errorf("core: Nelder-Mead starting point infeasible")
		}
		bestF = math.Inf(1)
	}
	copy(p.sched.End, best)
	deriveAvgWork(plan, p.sched.WCWork, p.sched.AvgWork)
	return bestF, nil
}

// CloneSchedule deep-copies a schedule so reference solvers can scribble on
// one copy while the original stays intact.
func CloneSchedule(s *Schedule) *Schedule {
	c := *s
	c.End = append([]float64(nil), s.End...)
	c.WCWork = append([]float64(nil), s.WCWork...)
	c.AvgWork = append([]float64(nil), s.AvgWork...)
	return &c
}
