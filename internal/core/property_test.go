// Solver invariants as properties, checked over generated task sets (the
// issue-4 test layer). The properties pinned here are the paper's safety and
// optimality claims, stated so that any random feasible task set must
// satisfy them:
//
//  1. Every solved schedule passes Verify: deadlines (7), the worst-case
//     Vmax chain (9), split non-negativity and conservation (11)–(12), and
//     the all-WCEC execution meeting every deadline.
//  2. Runtime voltages stay within the model's [VMin, VMax] under any
//     workload outcome.
//  3. ACS predicted energy never exceeds the WCS baseline's energy at the
//     average workload (the warm start makes this a guarantee, not a
//     heuristic), and never exceeds WCS's own worst-case objective.
//  4. Greedy slack reclamation never breaks feasibility: simulated runs of
//     both schedules finish every sub-instance by its deadline.
//
// The same properties back FuzzBuildSchedule (fuzz_test.go); this file keeps
// the deterministic sweep that runs on every `go test`.
package core_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

// solvePair builds WCS and the WCS-warm-started ACS for set — the pipeline
// every harness and the serving path use.
func solvePair(t testing.TB, set *task.Set, cfg core.Config) (acs, wcs *core.Schedule) {
	t.Helper()
	wcsCfg := cfg
	wcsCfg.Objective = core.WorstCase
	wcs, err := core.Build(set, wcsCfg)
	if err != nil {
		t.Fatalf("WCS build: %v", err)
	}
	acsCfg := cfg
	acsCfg.Objective = core.AverageCase
	acsCfg.WarmStart = wcs
	acs, err = core.Build(set, acsCfg)
	if err != nil {
		t.Fatalf("ACS build: %v", err)
	}
	return acs, wcs
}

// assertScheduleInvariants checks properties 1, 2 and 4 on one schedule.
func assertScheduleInvariants(t testing.TB, label string, s *core.Schedule, simSeed uint64) {
	t.Helper()
	tol := 1e-6 * math.Max(1, s.Plan.Hyperperiod)
	if err := s.Verify(tol); err != nil {
		t.Errorf("%s: Verify: %v", label, err)
	}

	// Voltage bounds under the two extreme workload outcomes.
	vmin, vmax := s.Model.VMin(), s.Model.VMax()
	for _, loads := range []string{"acec", "wcec"} {
		actual := make([]float64, len(s.Plan.Instances))
		for i := range actual {
			tk := &s.Plan.Set.Tasks[s.Plan.Instances[i].TaskIndex]
			if loads == "acec" {
				actual[i] = tk.ACEC
			} else {
				actual[i] = tk.WCEC
			}
		}
		volts, err := s.RuntimeVoltages(actual)
		if err != nil {
			t.Fatalf("%s: RuntimeVoltages(%s): %v", label, loads, err)
		}
		for pos, v := range volts {
			if v == 0 {
				continue // piece executed nothing
			}
			if v < vmin-1e-9 || v > vmax+1e-9 {
				t.Errorf("%s: sub %d runs at %g V under %s loads, outside [%g, %g]",
					label, pos, v, loads, vmin, vmax)
			}
		}
	}

	// Greedy reclamation preserves feasibility under stochastic workloads.
	r, err := sim.Run(s, sim.Config{Policy: sim.Greedy, Hyperperiods: 20, Seed: simSeed})
	if err != nil {
		t.Fatalf("%s: sim: %v", label, err)
	}
	if r.DeadlineMisses != 0 {
		t.Errorf("%s: greedy reclamation missed %d deadlines (worst overshoot %g ms)",
			label, r.DeadlineMisses, r.WorstOvershoot)
	}
	if !(r.Energy > 0) || math.IsInf(r.Energy, 0) || math.IsNaN(r.Energy) {
		t.Errorf("%s: implausible simulated energy %g", label, r.Energy)
	}
}

// assertPairInvariants checks property 3 across the solved pair.
func assertPairInvariants(t testing.TB, label string, acs, wcs *core.Schedule) {
	t.Helper()
	avg := make([]float64, len(wcs.Plan.Instances))
	for i := range avg {
		avg[i] = wcs.Plan.Set.Tasks[wcs.Plan.Instances[i].TaskIndex].ACEC
	}
	wcsAvg, over, err := wcs.EnergyUnder(avg)
	if err != nil {
		t.Fatalf("%s: WCS at average loads: %v", label, err)
	}
	if over > 1e-6*math.Max(1, wcs.Plan.Hyperperiod) {
		t.Errorf("%s: WCS at average loads overshoots a deadline by %g ms", label, over)
	}
	// The warm start guarantees ACS is at least as good as the WCS point in
	// the ACS objective landscape (coordinate descent only accepts strict
	// improvements from it).
	if acs.Energy > wcsAvg*(1+1e-9)+1e-12 {
		t.Errorf("%s: ACS predicted energy %g exceeds WCS baseline at average loads %g",
			label, acs.Energy, wcsAvg)
	}
	// And the average-case objective can never exceed the worst-case one:
	// per piece, average work ≤ worst-case work at the same-or-lower voltage.
	if acs.Energy > wcs.Energy*(1+1e-9)+1e-12 {
		t.Errorf("%s: ACS predicted energy %g exceeds WCS worst-case energy %g",
			label, acs.Energy, wcs.Energy)
	}
}

// TestSolverPropertiesRandomSets sweeps the properties over a deterministic
// grid of generated task sets — small enough for every `go test`, wide
// enough to cover the (N, ratio) space the paper sweeps.
func TestSolverPropertiesRandomSets(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short mode")
	}
	for _, n := range []int{2, 4, 6} {
		for _, ratio := range []float64{0.1, 0.5, 0.9} {
			for seed := uint64(1); seed <= 2; seed++ {
				label := fmt.Sprintf("N=%d ratio=%g seed=%d", n, ratio, seed)
				rng := stats.NewRNG(stats.SeedFromCell(n, ratio) ^ seed)
				set, err := workload.RandomFeasible(rng, workload.RandomConfig{
					N: n, Ratio: ratio, Utilization: 0.7,
				}, 50, func(s *task.Set) bool { return core.Feasible(s, core.Config{}) == nil })
				if err != nil {
					t.Logf("%s: no feasible set (%v), skipping cell", label, err)
					continue
				}
				acs, wcs := solvePair(t, set, core.Config{})
				assertScheduleInvariants(t, label+" ACS", acs, seed)
				assertScheduleInvariants(t, label+" WCS", wcs, seed)
				assertPairInvariants(t, label, acs, wcs)
			}
		}
	}
}

// TestSolverPropertiesRealLifeSets runs the same properties over the two
// real-life applications at the paper's ratio sweep.
func TestSolverPropertiesRealLifeSets(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short mode")
	}
	apps := []struct {
		name string
		gen  func(ratio float64) (*task.Set, error)
	}{
		{"cnc", func(r float64) (*task.Set, error) { return workload.CNC(r, 0.7, nil) }},
		{"gap", func(r float64) (*task.Set, error) { return workload.GAP(r, 0.7, nil) }},
	}
	for _, app := range apps {
		for _, ratio := range []float64{0.1, 0.9} {
			label := fmt.Sprintf("%s ratio=%g", app.name, ratio)
			set, err := app.gen(ratio)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			cfg := core.Config{}
			if app.name == "gap" {
				cfg.Preempt.MaxSubsPerInstance = 4 // GAP's expansion is huge uncapped
			}
			acs, wcs := solvePair(t, set, cfg)
			assertScheduleInvariants(t, label+" ACS", acs, 11)
			assertScheduleInvariants(t, label+" WCS", wcs, 11)
			assertPairInvariants(t, label, acs, wcs)
		}
	}
}

// TestSplitRevivalKeepsDeadlines is the regression pin for the solver bug
// the property layer surfaced: a split transfer reviving a dead piece used
// to keep the piece's stale bookkeeping end, which can sit past its deadline
// — the solver then returned "solver produced an invalid schedule". The
// failing input is frozen here verbatim.
func TestSplitRevivalKeepsDeadlines(t *testing.T) {
	rng := stats.NewRNG(uint64(uint16(0x99cd)))
	n := int(uint8(0x3b)%6) + 2
	ratio := float64(uint8(0x5e)%9+1) / 10
	set, err := workload.RandomFeasible(rng, workload.RandomConfig{
		N: n, Ratio: ratio, Utilization: 0.7,
	}, 50, func(s *task.Set) bool { return core.Feasible(s, core.Config{}) == nil })
	if err != nil {
		t.Fatalf("the frozen input no longer generates: %v", err)
	}
	wcs, err := core.Build(set, core.Config{Objective: core.WorstCase, MaxSweeps: 8})
	if err != nil {
		t.Fatalf("WCS build on the frozen input: %v", err)
	}
	if _, err := core.Build(set, core.Config{
		Objective: core.AverageCase, MaxSweeps: 8, WarmStart: wcs,
	}); err != nil {
		t.Fatalf("ACS build on the frozen input: %v", err)
	}
}

// TestBuildContextCancel: a canceled context stops the solve and surfaces
// context.Canceled; the same config without a context still solves.
func TestBuildContextCancel(t *testing.T) {
	set, err := workload.CNC(0.5, 0.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := core.BuildContext(ctx, set, core.Config{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Multi-start path honours cancellation too.
	if _, err := core.BuildContext(ctx, set, core.Config{Starts: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("multi-start: want context.Canceled, got %v", err)
	}
	s, err := core.BuildContext(context.Background(), set, core.Config{})
	if err != nil || s == nil {
		t.Fatalf("live context must solve: %v", err)
	}
}

// TestSimContextCancel: the simulation engine honours Config.Ctx between
// hyper-periods.
func TestSimContextCancel(t *testing.T) {
	set, err := workload.CNC(0.5, 0.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Build(set, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.Run(s, sim.Config{Hyperperiods: 50, Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := sim.Run(s, sim.Config{Hyperperiods: 50, Ctx: context.Background()}); err != nil {
		t.Fatalf("live context must simulate: %v", err)
	}
}
