package core

import (
	"fmt"
	"math"

	"repro/internal/preempt"
	"repro/internal/stats"
)

// Scenario support: the paper's §3.2 notes that "the probability weighted
// workload can be used in the objective function if the probability density
// function is known", and evaluates with the plain average workload because
// reference [7] shows it approximates the expected energy well. This file
// implements the probability-weighted variant so the approximation itself
// can be measured (experiment E10): Config.Scenarios = K draws K determinate
// workload vectors from the task distribution (common random numbers across
// solver iterations), and the solver minimises the mean greedy-reclamation
// energy across them instead of the single ACEC trajectory.

// scenarioSet holds the per-scenario workload decomposition.
type scenarioSet struct {
	// cycles[k][idx] is instance idx's actual cycle count in scenario k.
	cycles [][]float64
	// loads[k][pos] is the per-piece execution of scenario k under the
	// current worst-case splits (min(remaining, R̂) in order).
	loads [][]float64
}

// buildScenarios draws K instance-workload vectors from the paper's
// truncated-Normal distribution using stratified quantile seeds so the set
// is spread across the distribution rather than clustered.
func (s *Schedule) buildScenarios(k int, seed uint64) *scenarioSet {
	plan := s.Plan
	sc := &scenarioSet{
		cycles: make([][]float64, k),
		loads:  make([][]float64, k),
	}
	for i := 0; i < k; i++ {
		rng := stats.NewRNG(seed + uint64(i)*0x9e3779b97f4a7c15)
		cyc := make([]float64, len(plan.Instances))
		for idx := range plan.Instances {
			t := &plan.Set.Tasks[plan.Instances[idx].TaskIndex]
			cyc[idx] = rng.TruncNormal(t.ACEC, (t.WCEC-t.BCEC)/6, t.BCEC, t.WCEC)
		}
		sc.cycles[i] = cyc
		sc.loads[i] = make([]float64, len(plan.Subs))
	}
	sc.rederiveAll(s)
	return sc
}

// rederiveAll recomputes every scenario's per-piece loads from the current
// worst-case splits.
func (sc *scenarioSet) rederiveAll(s *Schedule) {
	for k := range sc.loads {
		for idx := range s.Plan.ByInstance {
			sc.rederiveInstance(s, k, idx)
		}
	}
}

// rederiveInstance recomputes one instance's pieces in one scenario.
func (sc *scenarioSet) rederiveInstance(s *Schedule, k, idx int) {
	remaining := sc.cycles[k][idx]
	for _, pos := range s.Plan.ByInstance[idx] {
		w := math.Min(remaining, s.WCWork[pos])
		sc.loads[k][pos] = w
		remaining -= w
	}
}

// objEval evaluates the solver objective over one or more load vectors with
// per-vector prefix caches, so coordinate sweeps re-run only order suffixes.
// A nil scenario set degenerates to the single point-load objective (ACEC
// for ACS, WCEC for WCS) the paper's experiments use.
//
// On top of the prefix caches it keeps a *suffix memo*: a snapshot of the
// committed solution recording, for every position, the entry time of the
// greedy-reclamation recursion and the total energy of the order suffix from
// that position. The recursion from a position q is a pure function of the
// entry time and of (End, loads) over [q, n); and whenever the entry time is
// at or before q's release, the piece starts at its release and the suffix
// becomes independent of the entry time entirely. A trial evaluation can
// therefore stop at the first release-bound piece past the trial's dirty
// region and add the memoised suffix energy, instead of re-running the whole
// order tail. This is the dirty-region invalidation that makes golden-section
// line searches cheap: moving end-time e_u re-evaluates pieces from u forward
// only until the perturbation is absorbed by a release-bound start.
//
// The evaluator is embedded in the solver workspace and reset per sweep, so
// the golden-section inner loop runs without heap allocations.
type objEval struct {
	s        *Schedule
	loadSets [][]float64
	prefixes [][]evalState // one per load set, each length n+1
	// snapT[i][q] is the recursion's entry time at position q in the last
	// snapshot pass over load set i; snapSuf[i][q] is the energy of the order
	// suffix [q, n) in that pass (snapSuf[i][n] == 0). Entries are absolute
	// per-position values, so entries written by different passes compose.
	snapT   [][]float64
	snapSuf [][]float64
	// snapFrom is the lowest position whose snapshot entries are consistent
	// with the current committed solution: no commit at a position >= q has
	// happened since entry q was last written, for every q >= snapFrom.
	snapFrom int

	// Flat per-position inputs of the recursion (see fillEvalArrays) plus
	// the SimpleInverse fast-path constants mirrored from the schedule. The
	// specialised walk in energyFrom/step reads only flat float64 arrays.
	// plan records which plan rel/ceff were filled from, so reusing the
	// evaluator against a different plan refreshes them.
	plan      *preempt.Schedule
	rel, ceff []float64
	end, wc   []float64
	fastOK    bool
	k, vMin   float64
	vMax      float64
	// tcVMin/tcVMax are the cycle times at the voltage bounds, precomputed
	// so the clamped branches of the inner walk need no division at all.
	tcVMin, tcVMax float64
}

// step advances the recursion across position q, mirroring
// Schedule.evalStep over the evaluator's flat arrays.
func (e *objEval) step(st *evalState, q int, work float64) {
	if !e.fastOK {
		e.s.evalStep(st, q, work)
		return
	}
	w := e.wc[q]
	if w <= deadWork || work <= 0 {
		return
	}
	a := st.t
	if r := e.rel[q]; r > a {
		a = r
	}
	window := e.end[q] - a
	var v, tc float64
	if window <= 0 {
		v, tc = e.vMax, e.tcVMax
	} else if tc = window / w; tc > e.tcVMin {
		v, tc = e.vMin, e.tcVMin
	} else if tc < e.tcVMax {
		v, tc = e.vMax, e.tcVMax
	} else {
		v = e.k / tc
	}
	st.energy += e.ceff[q] * v * v * work
	st.t = a + work*tc
}

// reset points the evaluator at the schedule's current objective and rebuilds
// both the prefix caches and the suffix memo, reusing backing arrays.
func (e *objEval) reset(s *Schedule, sc *scenarioSet) {
	e.s = s
	e.loadSets = e.loadSets[:0]
	if sc != nil && s.Objective == AverageCase {
		e.loadSets = append(e.loadSets, sc.loads...)
	} else if s.Objective == WorstCase {
		e.loadSets = append(e.loadSets, s.WCWork)
	} else {
		e.loadSets = append(e.loadSets, s.AvgWork)
	}
	n := len(s.Plan.Subs)
	if e.plan != s.Plan {
		e.fillEvalArrays(s.Plan)
		e.plan = s.Plan
	}
	e.end, e.wc = s.End, s.WCWork
	e.fastOK = s.fastOK
	e.k, e.vMin, e.vMax = s.fastK, s.fastVMin, s.fastVMax
	e.tcVMin, e.tcVMax = s.fastTcVMin, s.fastTcVMax
	for len(e.prefixes) < len(e.loadSets) {
		e.prefixes = append(e.prefixes, nil)
		e.snapT = append(e.snapT, nil)
		e.snapSuf = append(e.snapSuf, nil)
	}
	for i := range e.loadSets {
		if cap(e.prefixes[i]) < n+1 {
			e.prefixes[i] = make([]evalState, n+1)
			e.snapT[i] = make([]float64, n)
			e.snapSuf[i] = make([]float64, n+1)
		}
		e.prefixes[i] = e.prefixes[i][:n+1]
		e.snapT[i] = e.snapT[i][:n]
		e.snapSuf[i] = e.snapSuf[i][:n+1]
		e.snapSuf[i][n] = 0
	}
	e.rebuild(0)
	e.snapFrom = n // stale between sweeps: force the snapshot pass to run full
	e.resnap(0, n)
}

// rebuild refreshes the prefix caches from position `from` onward.
func (e *objEval) rebuild(from int) {
	n := len(e.s.Plan.Subs)
	for i, loads := range e.loadSets {
		for pos := from; pos < n; pos++ {
			st := e.prefixes[i][pos]
			e.step(&st, pos, loads[pos])
			e.prefixes[i][pos+1] = st
		}
	}
}

// advance extends the caches by one position (forward sweeps).
func (e *objEval) advance(pos int) {
	for i, loads := range e.loadSets {
		st := e.prefixes[i][pos]
		e.step(&st, pos, loads[pos])
		e.prefixes[i][pos+1] = st
	}
}

// copyPrefix duplicates the cache state just before pos (dead-piece skips).
func (e *objEval) copyPrefix(pos int) {
	for i := range e.prefixes {
		e.prefixes[i][pos+1] = e.prefixes[i][pos]
	}
}

// invalidate records a committed change at pos without refreshing the memo:
// snapshot entries at or before pos no longer describe the committed suffix.
func (e *objEval) invalidate(pos int) {
	if pos+1 > e.snapFrom {
		e.snapFrom = pos + 1
	}
}

// resnap refreshes the suffix memo from position `from` after a commit whose
// dirty region ends before `stable` (no position >= stable changed). The pass
// itself uses the memo: it stops as soon as the recursion re-joins a
// release-bound position whose existing snapshot entry is still consistent.
// Requires the prefix cache at `from` to be valid for the committed solution.
func (e *objEval) resnap(from, stable int) {
	n := len(e.s.Plan.Subs)
	if stable < e.snapFrom {
		stable = e.snapFrom
	}
	rel := e.rel
	wc := e.s.WCWork
	for i, loads := range e.loadSets {
		st := e.prefixes[i][from]
		snapT, snapSuf := e.snapT[i], e.snapSuf[i]
		q := from
		for ; q < n; q++ {
			if q >= stable && wc[q] > deadWork && loads[q] > 0 &&
				st.t <= rel[q] && snapT[q] <= rel[q] {
				break // suffix entries [q, n] are already consistent
			}
			snapT[q] = st.t
			snapSuf[q] = st.energy // accumulated-prefix energy, fixed up below
			e.step(&st, q, loads[q])
		}
		tail := 0.0
		if q < n {
			tail = snapSuf[q]
		}
		total := st.energy
		for p := from; p < q; p++ {
			snapSuf[p] = total - snapSuf[p] + tail
		}
	}
	e.snapFrom = from
}

// energyFrom evaluates the mean objective re-running positions [pos, n).
// stable is the end of the caller's dirty region: no End, WCWork, or load
// value at a position >= stable differs from the committed solution, so the
// walk may early-exit into the suffix memo there.
func (e *objEval) energyFrom(pos, stable int) float64 {
	if stable < e.snapFrom {
		stable = e.snapFrom
	}
	n := len(e.s.Plan.Subs)
	rel, wc := e.rel, e.wc
	var total float64
	for i, loads := range e.loadSets {
		st := e.prefixes[i][pos]
		snapT, snapSuf := e.snapT[i], e.snapSuf[i]
		if e.fastOK {
			// Specialised walk: this is the solver's innermost loop — every
			// golden-section probe of every line search lands here.
			end, ceff := e.end, e.ceff
			k, vMin, vMax := e.k, e.vMin, e.vMax
			tcVMin, tcVMax := e.tcVMin, e.tcVMax
			t, energy := st.t, st.energy
			for q := pos; q < n; q++ {
				w, work := wc[q], loads[q]
				if w <= deadWork || work <= 0 {
					continue
				}
				r := rel[q]
				if t <= r {
					if q >= stable && snapT[q] <= r {
						energy += snapSuf[q]
						break
					}
					t = r
				}
				window := end[q] - t
				var v, tc float64
				if window <= 0 {
					v, tc = vMax, tcVMax
				} else if tc = window / w; tc > tcVMin {
					v, tc = vMin, tcVMin
				} else if tc < tcVMax {
					v, tc = vMax, tcVMax
				} else {
					v = k / tc
				}
				energy += ceff[q] * v * v * work
				t += work * tc
			}
			total += energy
			continue
		}
		for q := pos; q < n; q++ {
			if q >= stable && wc[q] > deadWork && loads[q] > 0 &&
				st.t <= rel[q] && snapT[q] <= rel[q] {
				st.energy += snapSuf[q]
				break
			}
			e.step(&st, q, loads[q])
		}
		total += st.energy
	}
	return total / float64(len(e.loadSets))
}

// full evaluates the mean objective from scratch without touching caches.
func (e *objEval) full() float64 {
	var total float64
	for _, loads := range e.loadSets {
		total += e.s.evalFrom(evalState{}, 0, loads).energy
	}
	return total / float64(len(e.loadSets))
}

// ExpectedEnergy evaluates the schedule's mean greedy-reclamation energy
// over K stratified scenario draws — the probability-weighted objective —
// without re-optimising. Useful for measuring how well the point-ACEC
// objective approximates the true expectation (experiment E10).
func (s *Schedule) ExpectedEnergy(k int, seed uint64) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("core: scenario count must be positive, got %d", k)
	}
	sc := s.buildScenarios(k, seed)
	var total float64
	for i := range sc.loads {
		total += s.evalFrom(evalState{}, 0, sc.loads[i]).energy
	}
	return total / float64(k), nil
}
