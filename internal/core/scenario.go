package core

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Scenario support: the paper's §3.2 notes that "the probability weighted
// workload can be used in the objective function if the probability density
// function is known", and evaluates with the plain average workload because
// reference [7] shows it approximates the expected energy well. This file
// implements the probability-weighted variant so the approximation itself
// can be measured (experiment E10): Config.Scenarios = K draws K determinate
// workload vectors from the task distribution (common random numbers across
// solver iterations), and the solver minimises the mean greedy-reclamation
// energy across them instead of the single ACEC trajectory.

// scenarioSet holds the per-scenario workload decomposition.
type scenarioSet struct {
	// cycles[k][idx] is instance idx's actual cycle count in scenario k.
	cycles [][]float64
	// loads[k][pos] is the per-piece execution of scenario k under the
	// current worst-case splits (min(remaining, R̂) in order).
	loads [][]float64
}

// buildScenarios draws K instance-workload vectors from the paper's
// truncated-Normal distribution using stratified quantile seeds so the set
// is spread across the distribution rather than clustered.
func (s *Schedule) buildScenarios(k int, seed uint64) *scenarioSet {
	plan := s.Plan
	sc := &scenarioSet{
		cycles: make([][]float64, k),
		loads:  make([][]float64, k),
	}
	for i := 0; i < k; i++ {
		rng := stats.NewRNG(seed + uint64(i)*0x9e3779b97f4a7c15)
		cyc := make([]float64, len(plan.Instances))
		for idx := range plan.Instances {
			t := &plan.Set.Tasks[plan.Instances[idx].TaskIndex]
			cyc[idx] = rng.TruncNormal(t.ACEC, (t.WCEC-t.BCEC)/6, t.BCEC, t.WCEC)
		}
		sc.cycles[i] = cyc
		sc.loads[i] = make([]float64, len(plan.Subs))
	}
	sc.rederiveAll(s)
	return sc
}

// rederiveAll recomputes every scenario's per-piece loads from the current
// worst-case splits.
func (sc *scenarioSet) rederiveAll(s *Schedule) {
	for k := range sc.loads {
		for idx := range s.Plan.ByInstance {
			sc.rederiveInstance(s, k, idx)
		}
	}
}

// rederiveInstance recomputes one instance's pieces in one scenario.
func (sc *scenarioSet) rederiveInstance(s *Schedule, k, idx int) {
	remaining := sc.cycles[k][idx]
	for _, pos := range s.Plan.ByInstance[idx] {
		w := math.Min(remaining, s.WCWork[pos])
		sc.loads[k][pos] = w
		remaining -= w
	}
}

// objEval evaluates the solver objective over one or more load vectors with
// per-vector prefix caches, so coordinate sweeps re-run only order suffixes.
// A nil scenario set degenerates to the single point-load objective (ACEC
// for ACS, WCEC for WCS) the paper's experiments use.
type objEval struct {
	s        *Schedule
	loadSets [][]float64
	prefixes [][]evalState // one per load set, each length n+1
}

// newObjEval builds the evaluator for the schedule's current objective.
func newObjEval(s *Schedule, sc *scenarioSet) *objEval {
	e := &objEval{s: s}
	if sc != nil && s.Objective == AverageCase {
		e.loadSets = sc.loads
	} else if s.Objective == WorstCase {
		e.loadSets = [][]float64{s.WCWork}
	} else {
		e.loadSets = [][]float64{s.AvgWork}
	}
	n := len(s.Plan.Subs)
	e.prefixes = make([][]evalState, len(e.loadSets))
	for i := range e.prefixes {
		e.prefixes[i] = make([]evalState, n+1)
	}
	e.rebuild(0)
	return e
}

// rebuild refreshes the prefix caches from position `from` onward.
func (e *objEval) rebuild(from int) {
	n := len(e.s.Plan.Subs)
	for i, loads := range e.loadSets {
		for pos := from; pos < n; pos++ {
			st := e.prefixes[i][pos]
			e.s.evalStep(&st, pos, loads[pos])
			e.prefixes[i][pos+1] = st
		}
	}
}

// advance extends the caches by one position (forward sweeps).
func (e *objEval) advance(pos int) {
	for i, loads := range e.loadSets {
		st := e.prefixes[i][pos]
		e.s.evalStep(&st, pos, loads[pos])
		e.prefixes[i][pos+1] = st
	}
}

// copyPrefix duplicates the cache state just before pos (dead-piece skips).
func (e *objEval) copyPrefix(pos int) {
	for i := range e.prefixes {
		e.prefixes[i][pos+1] = e.prefixes[i][pos]
	}
}

// energyFrom evaluates the mean objective re-running positions [pos, n).
func (e *objEval) energyFrom(pos int) float64 {
	var total float64
	for i, loads := range e.loadSets {
		total += e.s.evalFrom(e.prefixes[i][pos], pos, loads).energy
	}
	return total / float64(len(e.loadSets))
}

// full evaluates the mean objective from scratch without touching caches.
func (e *objEval) full() float64 {
	var total float64
	for _, loads := range e.loadSets {
		total += e.s.evalFrom(evalState{}, 0, loads).energy
	}
	return total / float64(len(e.loadSets))
}

// ExpectedEnergy evaluates the schedule's mean greedy-reclamation energy
// over K stratified scenario draws — the probability-weighted objective —
// without re-optimising. Useful for measuring how well the point-ACEC
// objective approximates the true expectation (experiment E10).
func (s *Schedule) ExpectedEnergy(k int, seed uint64) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("core: scenario count must be positive, got %d", k)
	}
	sc := s.buildScenarios(k, seed)
	var total float64
	for i := range sc.loads {
		total += s.evalFrom(evalState{}, 0, sc.loads[i]).energy
	}
	return total / float64(k), nil
}
