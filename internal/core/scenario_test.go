package core

import (
	"math"
	"testing"
)

func TestScenarioObjectiveSolves(t *testing.T) {
	set := feasibleRandom(t, 40, 4, 0.1)
	wcs, err := Build(set, Config{Objective: WorstCase})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(set, Config{
		Objective: AverageCase, WarmStart: wcs, Scenarios: 5, ScenarioSeed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(1e-6); err != nil {
		t.Fatal(err)
	}
	// Worst-case safety is unaffected by the objective choice.
	wc := make([]float64, len(s.Plan.Instances))
	for i, in := range s.Plan.Instances {
		wc[i] = set.Tasks[in.TaskIndex].WCEC
	}
	if _, over, err := s.EnergyUnder(wc); err != nil || over > 1e-9 {
		t.Errorf("scenario-optimised schedule misses worst-case deadlines: over=%g err=%v", over, err)
	}
}

func TestScenarioObjectiveDeterministic(t *testing.T) {
	set := feasibleRandom(t, 41, 3, 0.3)
	build := func() *Schedule {
		s, err := Build(set, Config{Objective: AverageCase, Scenarios: 4, ScenarioSeed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := build(), build()
	for i := range a.End {
		if a.End[i] != b.End[i] || a.WCWork[i] != b.WCWork[i] {
			t.Fatal("scenario solver not deterministic")
		}
	}
}

// TestScenarioBeatsPointOnScenarioObjective: optimising the scenario mean
// must score at least as well on that mean as the point-ACEC optimum does.
func TestScenarioBeatsPointOnScenarioObjective(t *testing.T) {
	set := feasibleRandom(t, 42, 5, 0.1)
	const k, seed = 6, 31
	wcs, err := Build(set, Config{Objective: WorstCase})
	if err != nil {
		t.Fatal(err)
	}
	point, err := Build(set, Config{Objective: AverageCase, WarmStart: wcs})
	if err != nil {
		t.Fatal(err)
	}
	scen, err := Build(set, Config{
		Objective: AverageCase, WarmStart: wcs, Scenarios: k, ScenarioSeed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ePoint, err := point.ExpectedEnergy(k, seed|1)
	if err != nil {
		t.Fatal(err)
	}
	eScen, err := scen.ExpectedEnergy(k, seed|1)
	if err != nil {
		t.Fatal(err)
	}
	// The scenario solve optimised exactly this quantity (same seed
	// normalisation as optimize()), so it cannot lose to the point solve
	// beyond numerical noise.
	if eScen > ePoint*(1+1e-6) {
		t.Errorf("scenario optimum %g worse than point optimum %g on scenario mean", eScen, ePoint)
	}
}

func TestExpectedEnergyValidation(t *testing.T) {
	set := feasibleRandom(t, 43, 3, 0.5)
	s, err := Build(set, Config{Objective: AverageCase})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExpectedEnergy(0, 1); err == nil {
		t.Error("zero scenario count accepted")
	}
	e, err := s.ExpectedEnergy(50, 7)
	if err != nil {
		t.Fatal(err)
	}
	// The scenario mean sits near the point objective (the paper's
	// approximation claim) — within a loose factor-of-two sanity band.
	if e <= 0 || math.IsNaN(e) {
		t.Fatalf("expected energy %g", e)
	}
	if e < s.Energy/3 || e > s.Energy*3 {
		t.Errorf("expected energy %g wildly far from point objective %g", e, s.Energy)
	}
}
