package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/preempt"
	"repro/internal/task"
)

// Config tunes the static-schedule solver.
type Config struct {
	// Model is the processor model; nil selects power.DefaultModel().
	Model power.Model
	// Objective selects ACS (AverageCase) or WCS (WorstCase).
	Objective Objective
	// MaxSweeps bounds coordinate-descent sweeps (default 100).
	MaxSweeps int
	// Tol is the relative objective-improvement convergence threshold per
	// sweep (default 1e-6).
	Tol float64
	// OptimizeSplits enables the worst-case workload split optimisation
	// between adjacent pieces of an instance (§3.2's R̂ assignment). It
	// defaults to true for ACS; for WCS splits barely matter but are still
	// optimised when set.
	OptimizeSplits bool
	// NoSplitOpt force-disables split optimisation (used by ablations).
	NoSplitOpt bool
	// InitBlend places the initial end-times between the earliest feasible
	// (0) and latest feasible (1) positions; default 0.7.
	InitBlend float64
	// LineTolMs is the golden-section interval tolerance on end-times in ms
	// (default 1e-4).
	LineTolMs float64
	// Preempt tunes the fully-preemptive expansion (sub-instance cap, EDF).
	Preempt preempt.Options
	// WarmStart, when non-nil, supplies a second starting point: the
	// solver also runs from that schedule's (End, WCWork) and keeps the
	// better result. Passing the solved WCS schedule when building ACS
	// guarantees ACS never lands in a local optimum worse than the WCS
	// solution (which is always feasible for the ACS program).
	WarmStart *Schedule
	// Scenarios, when positive and the objective is AverageCase, switches
	// the objective from the single ACEC trajectory to the mean energy over
	// this many stratified workload draws — the probability-weighted
	// objective the paper's §3.2 sketches. Solve cost scales linearly with
	// the count; 5–10 captures most of the distribution.
	Scenarios int
	// ScenarioSeed seeds the scenario draws (common random numbers across
	// all solver iterations, so the objective is a fixed function).
	ScenarioSeed uint64
	// Starts, when greater than 1, runs that many independent solver starts
	// and keeps the best result: start 0 uses InitBlend (and WarmStart, when
	// set); every further start draws its blend from a deterministic RNG
	// stream derived from StartSeed. Results are bit-identical for a given
	// (Starts, StartSeed) regardless of StartWorkers.
	Starts int
	// StartWorkers bounds the worker pool the multi-start driver fans starts
	// across (default min(Starts, GOMAXPROCS)). It affects wall-clock time
	// only, never the result.
	StartWorkers int
	// StartSeed seeds the per-start blend jitter streams (default 2005).
	StartSeed uint64

	// ctx, when non-nil, lets a long solve abort early: the sweep loop
	// checks it between coordinate-descent sweeps and returns ctx's error.
	// It is set only through BuildContext/SolveContext (callers cannot
	// reach it), scopes the work rather than the result, and is therefore
	// excluded from the grid cache key by construction.
	ctx context.Context
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Model == nil {
		out.Model = power.DefaultModel()
	}
	if out.MaxSweeps <= 0 {
		out.MaxSweeps = 100
	}
	if out.Tol <= 0 {
		out.Tol = 1e-6
	}
	if out.InitBlend <= 0 || out.InitBlend > 1 {
		out.InitBlend = 0.7
	}
	if out.LineTolMs <= 0 {
		out.LineTolMs = 1e-4
	}
	if out.StartSeed == 0 {
		out.StartSeed = 2005
	}
	// Both objectives optimise splits by default: the paper's WCS baseline
	// is the worst-case-*optimal* static schedule, which fixes how WCEC
	// distributes across preemption segments; leaving WCS with naive
	// proportional splits would hand ACS a phantom advantage.
	out.OptimizeSplits = !out.NoSplitOpt
	return out
}

// Canonical returns the config with every defaulted field resolved to the
// value the solver actually uses (Model, MaxSweeps, Tol, InitBlend,
// LineTolMs, StartSeed, and the OptimizeSplits = !NoSplitOpt derivation).
// Two configs with equal Canonical forms solve identically; the grid memo
// hashes the canonical form so a zero config and an explicitly-defaulted one
// share a cache key.
func (c Config) Canonical() Config { return c.withDefaults() }

// Build expands set into its fully-preemptive schedule and solves the static
// voltage schedule for cfg's objective. It fails if the task set cannot meet
// its deadlines even at the maximum voltage (the feasibility precondition of
// the whole approach).
func Build(set *task.Set, cfg Config) (*Schedule, error) {
	plan, err := preempt.BuildWith(set, cfg.Preempt)
	if err != nil {
		return nil, err
	}
	return Solve(plan, cfg)
}

// BuildContext is Build with early cancellation: once ctx is done the solver
// stops at the next sweep boundary (every start of a multi-start solve checks
// independently) and returns ctx's error instead of a schedule. ctx never
// influences the result of a completed solve — a build that finishes is
// bit-identical to one run without a context.
func BuildContext(ctx context.Context, set *task.Set, cfg Config) (*Schedule, error) {
	cfg.ctx = ctx
	return Build(set, cfg)
}

// Solve computes the static schedule over an existing fully-preemptive plan.
// With Config.Starts > 1 it dispatches to the parallel multi-start driver.
func Solve(plan *preempt.Schedule, cfg Config) (*Schedule, error) {
	c := cfg.withDefaults()
	if c.Starts > 1 {
		return solveMultiStart(plan, c)
	}
	s, _, err := solveSingle(plan, c)
	return s, err
}

// SolveContext is Solve with the cancellation semantics of BuildContext.
func SolveContext(ctx context.Context, plan *preempt.Schedule, cfg Config) (*Schedule, error) {
	cfg.ctx = ctx
	return Solve(plan, cfg)
}

// solveSingle runs one coordinate-descent solve from c's starting point.
// c must already carry defaults. It returns the schedule together with the
// optimised objective value (the scenario mean when Config.Scenarios is
// active), which the multi-start driver compares across starts.
func solveSingle(plan *preempt.Schedule, c Config) (*Schedule, float64, error) {
	n := len(plan.Subs)
	if n == 0 {
		return nil, 0, fmt.Errorf("core: plan has no sub-instances")
	}
	ws := newWorkspace(plan)
	s := &Schedule{
		Plan:      plan,
		Model:     c.Model,
		End:       make([]float64, n),
		WCWork:    make([]float64, n),
		AvgWork:   make([]float64, n),
		Objective: c.Objective,
	}
	s.initFastModel()

	if err := s.initialize(c, ws); err != nil {
		return nil, 0, err
	}
	obj, err := s.optimize(c, ws)
	if err != nil {
		return nil, 0, err
	}
	s.Energy = s.ObjectiveEnergy()

	if warm := c.WarmStart; warmCompatible(warm, plan) {
		alt := &Schedule{
			Plan:      plan,
			Model:     c.Model,
			End:       append([]float64(nil), warm.End...),
			WCWork:    append([]float64(nil), warm.WCWork...),
			AvgWork:   make([]float64, n),
			Objective: c.Objective,
		}
		alt.initFastModel()
		deriveAvgWork(plan, alt.WCWork, alt.AvgWork)
		altObj, altErr := alt.optimize(c, ws)
		if altErr != nil {
			return nil, 0, altErr
		}
		alt.Energy = alt.ObjectiveEnergy()
		if altObj < obj && alt.Verify(1e-6*math.Max(1, plan.Hyperperiod)) == nil {
			alt.Sweeps += s.Sweeps
			s = alt
			obj = altObj
		}
	}

	if err := s.Verify(1e-6 * math.Max(1, plan.Hyperperiod)); err != nil {
		return nil, 0, fmt.Errorf("core: solver produced an invalid schedule: %w", err)
	}
	return s, obj, nil
}

// warmCompatible reports whether warm's solution vectors are meaningful as a
// starting point for plan: the task sets are equal in content and the
// preemptive expansions have identical structure. Pointer identity is *not*
// required — the grid memo shares schedules across harnesses that derive
// equal task sets independently, and a warm start must behave the same
// whether it came from the cache or a fresh solve (the cache-on/off
// determinism contract, DESIGN.md §6). The structural comparison is O(subs),
// noise against the solve it seeds.
func warmCompatible(warm *Schedule, plan *preempt.Schedule) bool {
	if warm == nil || warm.Plan == nil ||
		len(warm.End) != len(plan.Subs) || len(warm.WCWork) != len(plan.Subs) {
		return false
	}
	ws, ps := warm.Plan.Set, plan.Set
	if ws == nil || ps == nil {
		return false
	}
	if ws != ps {
		if len(ws.Tasks) != len(ps.Tasks) || len(warm.Plan.Subs) != len(plan.Subs) {
			return false
		}
		for i := range ps.Tasks {
			if ws.Tasks[i] != ps.Tasks[i] {
				return false
			}
		}
		for i := range plan.Subs {
			if warm.Plan.Subs[i] != plan.Subs[i] {
				return false
			}
		}
	}
	return true
}

// Feasible reports whether the task set admits any schedule at all on the
// model: the all-Vmax ASAP chain over the fully-preemptive plan must meet
// every deadline. It is the cheap pre-filter the experiment harness uses
// before paying for a full solve.
func Feasible(set *task.Set, cfg Config) error {
	c := cfg.withDefaults()
	plan, err := preempt.BuildWith(set, c.Preempt)
	if err != nil {
		return err
	}
	n := len(plan.Subs)
	s := &Schedule{
		Plan:    plan,
		Model:   c.Model,
		End:     make([]float64, n),
		WCWork:  make([]float64, n),
		AvgWork: make([]float64, n),
	}
	s.initFastModel()
	ends := make([]float64, n)
	s.proportionalSplits()
	if _, err := s.asapEnds(ends); err == nil {
		return nil
	}
	if err := s.rmVmaxSplits(); err != nil {
		return err
	}
	_, err = s.asapEnds(ends)
	return err
}

// proportionalSplits assigns each piece a share of its instance's WCEC
// proportional to its segment length — the distribution a constant-speed
// worst-case execution would produce, and the initialisation that keeps
// every piece work-bearing.
func (s *Schedule) proportionalSplits() {
	plan := s.Plan
	for idx, positions := range plan.ByInstance {
		wcec := plan.Set.Tasks[plan.Instances[idx].TaskIndex].WCEC
		var total float64
		for _, pos := range positions {
			total += plan.Subs[pos].SegEnd - plan.Subs[pos].SegStart
		}
		for _, pos := range positions {
			s.WCWork[pos] = wcec * (plan.Subs[pos].SegEnd - plan.Subs[pos].SegStart) / total
		}
	}
}

// initialize produces a feasible starting point, then places end-times
// between the earliest (all-Vmax ASAP) and latest (ALAP) feasible positions
// by cfg.InitBlend.
//
// Worst-case splits are tried in two flavours: proportional to segment
// length first (it keeps every piece work-bearing, preserving the whole
// split-optimisation space), falling back to the exact fixed-priority Vmax
// execution (rmVmaxSplits) when proportional is chain-infeasible — which
// happens for tight interleavings like GAP, where higher-priority load
// saturates some segments entirely. The RM splits are feasible whenever the
// task set is schedulable at Vmax at all, so initialise fails only for
// genuinely unschedulable sets.
func (s *Schedule) initialize(c Config, ws *workspace) error {
	plan := s.Plan
	s.proportionalSplits()
	eMin, err := s.asapEnds(ws.eMin)
	if err != nil {
		if rmErr := s.rmVmaxSplits(); rmErr != nil {
			return rmErr
		}
		if eMin, err = s.asapEnds(ws.eMin); err != nil {
			return err
		}
	}
	deriveAvgWork(plan, s.WCWork, s.AvgWork)
	eMax := s.alapEnds(ws.eMax)
	for pos := range s.End {
		if s.WCWork[pos] <= deadWork {
			continue // placed by the repair pass below
		}
		if eMax[pos] < eMin[pos]-1e-9 {
			return fmt.Errorf("core: infeasible at sub %d: ASAP end %g exceeds ALAP end %g",
				pos, eMin[pos], eMax[pos])
		}
		s.End[pos] = eMin[pos] + c.InitBlend*(math.Max(eMax[pos], eMin[pos])-eMin[pos])
	}
	// The blended ends satisfy deadlines but may violate the forward chain
	// (each pos's blend is independent); one forward repair pass restores
	// chain feasibility without exceeding eMax. Dead pieces get bookkeeping
	// ends on the chain.
	prev := 0.0
	tcMax := s.Model.CycleTime(s.Model.VMax())
	for pos := range s.End {
		if s.WCWork[pos] <= deadWork {
			s.End[pos] = math.Max(prev, plan.Subs[pos].Release)
			continue
		}
		lo := math.Max(prev, plan.Subs[pos].Release) + s.WCWork[pos]*tcMax
		if s.End[pos] < lo {
			s.End[pos] = lo
		}
		if s.End[pos] > eMax[pos] {
			s.End[pos] = eMax[pos]
		}
		prev = s.End[pos]
	}
	return nil
}

// asapEnds returns the earliest feasible end-times: the all-Vmax greedy
// chain over work-bearing pieces, written into dst (length n). An error
// means the task set is unschedulable even at full speed. Dead pieces report
// their chain position (start time) and are exempt from deadline checks.
func (s *Schedule) asapEnds(dst []float64) ([]float64, error) {
	tcMax := s.Model.CycleTime(s.Model.VMax())
	ends := dst
	t := 0.0
	for pos, su := range s.Plan.Subs {
		if s.WCWork[pos] <= deadWork {
			ends[pos] = math.Max(t, su.Release)
			continue
		}
		start := math.Max(t, su.Release)
		t = start + s.WCWork[pos]*tcMax
		if t > su.Deadline+1e-9 {
			return nil, fmt.Errorf("core: task set unschedulable at Vmax: %s misses deadline %g (needs %g)",
				su.ID(s.Plan.Set), su.Deadline, t)
		}
		ends[pos] = t
	}
	return ends, nil
}

// alapEnds returns the latest feasible end-times, written into dst (length
// n): a backward pass pushing every work-bearing end to its deadline, pulled
// earlier only as far as the worst-case chains of *work-bearing* successors
// require. Dead pieces are transparent to the chain and inherit the cap for
// bookkeeping.
func (s *Schedule) alapEnds(dst []float64) []float64 {
	tcMax := s.Model.CycleTime(s.Model.VMax())
	n := len(s.Plan.Subs)
	ends := dst
	// capNext is the latest time the previous work-bearing piece may end
	// without starving the chain suffix.
	capNext := math.Inf(1)
	for pos := n - 1; pos >= 0; pos-- {
		su := s.Plan.Subs[pos]
		if s.WCWork[pos] <= deadWork {
			ends[pos] = math.Min(capNext, su.Deadline) // cosmetic only
			continue
		}
		hi := math.Min(su.Deadline, capNext)
		ends[pos] = hi
		// A predecessor may end later than (hi − exec) only when it ends at
		// or before this piece's release (then this piece is release-bound).
		capNext = math.Max(su.Release, hi-s.WCWork[pos]*tcMax)
	}
	return ends
}

// optimize runs alternating coordinate-descent sweeps over end-times and
// workload splits until the objective stops improving, returning the final
// objective value (the scenario mean when Config.Scenarios is active,
// otherwise the point objective). A non-nil Config.ctx is polled between
// sweeps: once it is done, optimize stops and returns its error — the only
// way a solve's outcome can depend on the context.
func (s *Schedule) optimize(c Config, ws *workspace) (float64, error) {
	var sc *scenarioSet
	if c.Scenarios > 0 && s.Objective == AverageCase {
		sc = s.buildScenarios(c.Scenarios, c.ScenarioSeed|1)
	}
	ws.ev.reset(s, sc)
	prevObj := ws.ev.full()
	obj := prevObj
	for sweep := 0; sweep < c.MaxSweeps; sweep++ {
		if c.ctx != nil {
			if err := c.ctx.Err(); err != nil {
				return obj, err
			}
		}
		// Alternate sweep directions: a forward pass tightens each end
		// against its successor's current position, so on tightly coupled
		// chains (every end at its chain cap) nothing can move until the
		// caps are released from the back — which is exactly what the
		// backward pass does.
		s.sweepEnds(c, sc, ws, sweep%2 == 1)
		if c.OptimizeSplits {
			s.sweepSplits(c, sc, ws)
		}
		s.sweepPush(c, sc, ws)
		obj = ws.ev.full()
		s.Sweeps = sweep + 1
		if prevObj-obj <= c.Tol*math.Max(prevObj, 1e-12) && sweep >= 2 {
			break
		}
		prevObj = obj
	}
	return obj, nil
}

// sweepEnds optimises each end-time in turn by golden-section search over
// its feasible interval, caching the recursion prefixes (one per load
// vector) so coordinate pos only re-evaluates the order suffix [pos, n) —
// and, via the suffix memo, usually far less: the walk stops at the first
// release-bound piece past pos. With backward set, positions are visited
// last-to-first; the prefix caches stay valid throughout because they depend
// only on coordinates before pos, which a backward pass never touches after
// computing them, while the suffix memo is refreshed behind each commit.
func (s *Schedule) sweepEnds(c Config, sc *scenarioSet, ws *workspace, backward bool) {
	plan := s.Plan
	n := len(plan.Subs)
	tcMax := s.Model.CycleTime(s.Model.VMax())
	ev := &ws.ev
	ev.reset(s, sc)

	// prevAlive[pos] is the end of the last work-bearing piece before pos;
	// nextCap[pos] is the latest end the chain suffix after pos allows.
	// Dead pieces are transparent on both sides. During a forward sweep the
	// prefix side is maintained incrementally (suffix side is static, since
	// later coordinates do not move); a backward sweep mirrors that.
	prevAlive := ws.prevAlive
	prevAlive[0] = 0
	for pos := 0; pos < n; pos++ {
		prevAlive[pos+1] = prevAlive[pos]
		if s.WCWork[pos] > deadWork {
			prevAlive[pos+1] = s.End[pos]
		}
	}
	nextCap := ws.nextCap
	nextCap[n] = math.Inf(1)
	for pos := n - 1; pos >= 0; pos-- {
		if s.WCWork[pos] > deadWork {
			nextCap[pos] = math.Max(plan.Subs[pos].Release, s.End[pos]-s.WCWork[pos]*tcMax)
		} else {
			nextCap[pos] = nextCap[pos+1]
		}
	}

	for k := 0; k < n; k++ {
		pos := k
		if backward {
			pos = n - 1 - k
		}
		su := &plan.Subs[pos]
		if s.WCWork[pos] <= deadWork {
			// Dead piece: keep a consistent bookkeeping end on the chain.
			// Its end never enters the objective (evalStep skips pieces at
			// or below deadWork), so no memo invalidation is needed.
			s.End[pos] = math.Max(prevAlive[pos], su.Release)
			if !backward {
				prevAlive[pos+1] = prevAlive[pos]
				ev.copyPrefix(pos)
			} else {
				nextCap[pos] = nextCap[pos+1]
			}
			continue
		}
		lo := math.Max(prevAlive[pos], su.Release) + s.WCWork[pos]*tcMax
		hi := math.Min(su.Deadline, nextCap[pos+1])
		if hi > lo+c.LineTolMs {
			orig := s.End[pos]
			eval := func(e float64) float64 {
				s.End[pos] = e
				return ev.energyFrom(pos, pos+1)
			}
			origF := eval(orig)
			best, bestF := opt.GoldenMin(eval, lo, hi, c.LineTolMs, 200)
			// Keep the original if the search found no strict improvement
			// (GoldenMin may return an endpoint with equal value). The
			// objective is a pure function of the end-time, so the values
			// probed above stand in for re-evaluating.
			if bestF < origF-1e-15 {
				s.End[pos] = best
			} else {
				s.End[pos] = orig
			}
		} else if lo > hi {
			// Numerical corner: clamp into feasibility.
			s.End[pos] = lo
		}
		if !backward {
			ev.advance(pos)
			ev.invalidate(pos)
			prevAlive[pos+1] = s.End[pos]
		} else {
			nextCap[pos] = math.Max(su.Release, s.End[pos]-s.WCWork[pos]*tcMax)
			// Refresh the memo behind the commit: the next (earlier)
			// position's line search exits into entries at [pos, n].
			ev.resnap(pos, pos+1)
		}
	}
}

// sweepSplits optimises the worst-case workload split between each adjacent
// pair of pieces of every multi-piece instance: a scalar transfer δ moves
// work from the later piece to the earlier one within the bounds set by
// non-negativity and each position's worst-case chain slack. Average
// workloads are re-derived after every accepted move, so the objective sees
// the case-1/case-2 redistribution immediately. Pairs are visited in total
// order of their earlier position (precomputed in the workspace) so a prefix
// cache of the recursion can be advanced monotonically; a pair's evaluation
// then only re-runs the order suffix starting at that position, up to the
// first release-bound piece past the instance's last position.
func (s *Schedule) sweepSplits(c Config, sc *scenarioSet, ws *workspace) {
	plan := s.Plan
	tcMax := s.Model.CycleTime(s.Model.VMax())
	ev := &ws.ev
	ev.reset(s, sc)

	// caps[pos] is the latest end the alive pieces at [pos, n) allow their
	// predecessor — the nextCap recursion of sweepEnds evaluated on the live
	// state. It bounds where a revived piece may place its end; recomputed
	// behind every accepted transfer (budgets move, and a revival moves an
	// end). The array is borrowed from the workspace — sweepEnds rebuilds it
	// on entry.
	n := len(plan.Subs)
	caps := ws.nextCap
	recap := func() {
		caps[n] = math.Inf(1)
		for pos := n - 1; pos >= 0; pos-- {
			if s.WCWork[pos] > deadWork {
				caps[pos] = math.Max(plan.Subs[pos].Release, s.End[pos]-s.WCWork[pos]*tcMax)
			} else {
				caps[pos] = caps[pos+1]
			}
		}
	}
	recap()

	// limitFor is the latest time piece pos may end: its static end capped
	// by its deadline while alive. A dead piece's bookkeeping end is
	// meaningless — it may sit past the deadline (see sweepEnds) — so a
	// piece a transfer would revive is instead bounded by its deadline and
	// its successors' chain cap, which is also where the revival re-places
	// its end.
	limitFor := func(pos int) float64 {
		if s.WCWork[pos] <= deadWork {
			return math.Min(plan.Subs[pos].Deadline, caps[pos+1])
		}
		return math.Min(s.End[pos], plan.Subs[pos].Deadline)
	}

	// chainSlack is how many extra worst-case cycles piece pos could absorb
	// at Vmax within its window, which runs from the later of its release
	// and the previous *work-bearing* end to limitFor.
	chainSlack := func(pos int) float64 {
		prevEnd := 0.0
		for p := pos - 1; p >= 0; p-- {
			if s.WCWork[p] > deadWork {
				prevEnd = s.End[p]
				break
			}
		}
		window := limitFor(pos) - math.Max(prevEnd, plan.Subs[pos].Release)
		return window/tcMax - s.WCWork[pos]
	}

	// The evaluator's prefixes are valid up to front (exclusive); pairs are
	// processed in ascending pa so the caches only ever advance.
	front := 0
	advance := func(to int) {
		for ; front < to; front++ {
			ev.advance(front)
		}
	}
	rederive := func(idx int) {
		deriveAvgWorkInstance(plan, s.WCWork, s.AvgWork, idx)
		if sc != nil {
			for k := range sc.loads {
				sc.rederiveInstance(s, k, idx)
			}
		}
	}

	for _, p := range ws.pairs {
		advance(p.pa)
		// δ > 0 moves workload from the later piece pb to pa.
		dLo := math.Max(-s.WCWork[p.pa], -chainSlack(p.pb))
		dHi := math.Min(s.WCWork[p.pb], chainSlack(p.pa))
		if dHi-dLo < 1e-9 {
			continue
		}
		// A trial transfer re-derives loads across the whole instance, so
		// the dirty region of every evaluation ends after the instance's
		// last position.
		positions := plan.ByInstance[p.idx]
		stable := positions[len(positions)-1] + 1
		wa, wb := s.WCWork[p.pa], s.WCWork[p.pb]
		ea, eb := s.End[p.pa], s.End[p.pb]
		limA, limB := limitFor(p.pa), limitFor(p.pb)
		// apply installs the trial state for transfer d. A transfer that
		// revives a dead piece re-places its end at the window limit the
		// slack bound was computed against — the stale bookkeeping end may
		// sit past the deadline and must be neither kept (it would violate
		// constraint (7)) nor credited with energy by the evaluation below.
		apply := func(d float64) {
			s.WCWork[p.pa] = wa + d
			s.WCWork[p.pb] = wb - d
			s.End[p.pa] = ea
			if wa <= deadWork && s.WCWork[p.pa] > deadWork {
				s.End[p.pa] = limA
			}
			s.End[p.pb] = eb
			if wb <= deadWork && s.WCWork[p.pb] > deadWork {
				s.End[p.pb] = limB
			}
			rederive(p.idx)
		}
		eval := func(d float64) float64 {
			apply(d)
			return ev.energyFrom(p.pa, stable)
		}
		base := eval(0)
		best, bestF := opt.GoldenMin(eval, dLo, dHi, 1e-6*(dHi-dLo)+1e-12, 200)
		changed := bestF < base-1e-15
		if changed {
			apply(best)
			// Refresh the memo behind the committed transfer so later pairs
			// (whose dirty regions may end before this instance's last
			// position) can still exit into consistent entries, and refresh
			// the chain caps — budgets moved, and a revival moved an end.
			ev.resnap(p.pa, stable)
			recap()
		} else {
			apply(0)
		}
	}
}

// sweepPush is the joint-move companion to sweepEnds. Plain coordinate
// descent bounds each end-time by its successor's *current* position, so on
// tightly chained schedules no single coordinate can move even when shifting
// a whole run of ends later would pay. The push sweep explores exactly that
// direction: it moves one end anywhere up to its own deadline and ripples
// every downstream end forward by the minimum the worst-case chain requires,
// rejecting the move if any ripple would cross a deadline.
func (s *Schedule) sweepPush(c Config, sc *scenarioSet, ws *workspace) {
	plan := s.Plan
	n := len(plan.Subs)
	tcMax := s.Model.CycleTime(s.Model.VMax())
	ev := &ws.ev
	ev.reset(s, sc)

	saved := ws.saved
	prevAlive := 0.0
	for pos := 0; pos < n; pos++ {
		su := &plan.Subs[pos]
		if s.WCWork[pos] <= deadWork {
			s.End[pos] = math.Max(prevAlive, su.Release)
			ev.copyPrefix(pos)
			continue
		}
		lo := math.Max(prevAlive, su.Release) + s.WCWork[pos]*tcMax
		hi := su.Deadline
		if hi > lo+c.LineTolMs {
			copy(saved[pos:], s.End[pos:])
			// lastMod tracks the end of the most recent trial's ripple — the
			// dirty region the suffix memo must not be consulted inside.
			lastMod := pos
			eval := func(e float64) float64 {
				copy(s.End[pos:], saved[pos:])
				s.End[pos] = e
				lastMod = pos
				prev := e
				for q := pos + 1; q < n; q++ {
					if s.WCWork[q] <= deadWork {
						continue
					}
					loQ := math.Max(prev, plan.Subs[q].Release) + s.WCWork[q]*tcMax
					if s.End[q] < loQ {
						if loQ > plan.Subs[q].Deadline+1e-9 {
							return math.Inf(1) // ripple crosses a deadline
						}
						s.End[q] = loQ
						lastMod = q
					}
					prev = s.End[q]
				}
				return ev.energyFrom(pos, lastMod+1)
			}
			base := eval(saved[pos])
			best, bestF := opt.GoldenMin(eval, lo, hi, c.LineTolMs, 200)
			if bestF < base-1e-15 && !math.IsInf(bestF, 1) {
				if math.IsInf(eval(best), 1) { // re-apply; defensive
					copy(s.End[pos:], saved[pos:])
				} else {
					// The accepted move rippled ends through lastMod: refresh
					// the memo over the whole dirty region so later positions
					// in this sweep exit into consistent entries.
					ev.resnap(pos, lastMod+1)
				}
			} else {
				copy(s.End[pos:], saved[pos:])
			}
		}
		ev.advance(pos)
		ev.invalidate(pos)
		prevAlive = s.End[pos]
	}
}

// deriveAvgWorkInstance recomputes the average workloads of one instance.
func deriveAvgWorkInstance(plan *preempt.Schedule, wc, avg []float64, idx int) {
	remaining := plan.Set.Tasks[plan.Instances[idx].TaskIndex].ACEC
	for _, pos := range plan.ByInstance[idx] {
		w := math.Min(remaining, wc[pos])
		avg[pos] = w
		remaining -= w
	}
}
