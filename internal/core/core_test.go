package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/preempt"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

func feasibleRandom(t *testing.T, seed uint64, n int, ratio float64) *task.Set {
	t.Helper()
	rng := stats.NewRNG(seed)
	set, err := workload.RandomFeasible(rng, workload.RandomConfig{
		N: n, Ratio: ratio, Utilization: 0.7,
	}, 50, func(s *task.Set) bool { return Feasible(s, Config{}) == nil })
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestScheduleVerifies: every solved schedule passes its own Verify — both
// objectives, multiple seeds and ratios.
func TestScheduleVerifies(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		for _, ratio := range []float64{0.1, 0.9} {
			set := feasibleRandom(t, seed, 4, ratio)
			for _, obj := range []Objective{AverageCase, WorstCase} {
				s, err := Build(set, Config{Objective: obj})
				if err != nil {
					t.Fatalf("seed %d ratio %g %v: %v", seed, ratio, obj, err)
				}
				if err := s.Verify(1e-6); err != nil {
					t.Errorf("seed %d ratio %g %v: %v", seed, ratio, obj, err)
				}
			}
		}
	}
}

// TestSplitsSumToWCEC (paper eq. (11)–(12)): worst-case splits of every
// instance sum exactly to the task's WCEC.
func TestSplitsSumToWCEC(t *testing.T) {
	set := feasibleRandom(t, 5, 5, 0.1)
	s, err := Build(set, Config{Objective: AverageCase})
	if err != nil {
		t.Fatal(err)
	}
	for idx, positions := range s.Plan.ByInstance {
		var sum float64
		for _, pos := range positions {
			sum += s.WCWork[pos]
		}
		wcec := set.Tasks[s.Plan.Instances[idx].TaskIndex].WCEC
		if math.Abs(sum-wcec) > 1e-6*wcec {
			t.Errorf("instance %d: splits sum %g, WCEC %g", idx, sum, wcec)
		}
	}
}

// TestAvgWorkCaseRule (paper §3.2, Fig. 5): pieces fill with ACEC in
// execution order — each piece takes min(remaining, R̂); the total equals
// ACEC; later pieces may be pure reservations with zero average work.
func TestAvgWorkCaseRule(t *testing.T) {
	set := feasibleRandom(t, 6, 5, 0.1)
	s, err := Build(set, Config{Objective: AverageCase})
	if err != nil {
		t.Fatal(err)
	}
	for idx, positions := range s.Plan.ByInstance {
		tk := set.Tasks[s.Plan.Instances[idx].TaskIndex]
		remaining := tk.ACEC
		var total float64
		for _, pos := range positions {
			want := math.Min(remaining, s.WCWork[pos])
			if math.Abs(s.AvgWork[pos]-want) > 1e-9*(1+tk.ACEC) {
				t.Fatalf("instance %d pos %d: avg %g, want %g", idx, pos, s.AvgWork[pos], want)
			}
			remaining -= want
			total += s.AvgWork[pos]
		}
		if math.Abs(total-tk.ACEC) > 1e-6*tk.ACEC {
			t.Errorf("instance %d: avg sums to %g, ACEC %g", idx, total, tk.ACEC)
		}
	}
}

// TestWorstCaseExecutionMeetsDeadlines: the guarantee the whole paper hinges
// on — under all-WCEC draws, the solved ACS schedule misses nothing.
func TestWorstCaseExecutionMeetsDeadlines(t *testing.T) {
	for _, seed := range []uint64{7, 8, 9, 10} {
		set := feasibleRandom(t, seed, 6, 0.1)
		s, err := Build(set, Config{Objective: AverageCase})
		if err != nil {
			t.Fatal(err)
		}
		wc := make([]float64, len(s.Plan.Instances))
		for i, in := range s.Plan.Instances {
			wc[i] = set.Tasks[in.TaskIndex].WCEC
		}
		if _, over, err := s.EnergyUnder(wc); err != nil {
			t.Fatal(err)
		} else if over > 1e-9 {
			t.Errorf("seed %d: worst case overshoots by %g ms", seed, over)
		}
	}
}

// TestACSBeatsWCSOnAvgObjective: with warm start, ACS's average-case energy
// never exceeds the WCS schedule's (the WCS solution is ACS-feasible).
func TestACSBeatsWCSOnAvgObjective(t *testing.T) {
	for _, seed := range []uint64{11, 12, 13} {
		set := feasibleRandom(t, seed, 6, 0.1)
		wcs, err := Build(set, Config{Objective: WorstCase})
		if err != nil {
			t.Fatal(err)
		}
		acs, err := Build(set, Config{Objective: AverageCase, WarmStart: wcs})
		if err != nil {
			t.Fatal(err)
		}
		wcsAvg := CloneSchedule(wcs)
		wcsAvg.Objective = AverageCase
		if acs.Energy > wcsAvg.ObjectiveEnergy()*(1+1e-9) {
			t.Errorf("seed %d: ACS %g > WCS-as-avg %g", seed, acs.Energy, wcsAvg.ObjectiveEnergy())
		}
	}
}

// TestWCSNotBelowYDS: the WCS worst-case energy is bounded below by the YDS
// optimum for the same jobs (YDS relaxes fixed priorities to EDF and allows
// arbitrary preemption, so it can only do better). Guards against the solver
// "cheating" its own energy accounting.
func TestWCSNotBelowYDS(t *testing.T) {
	set := feasibleRandom(t, 14, 4, 0.5)
	wcs, err := Build(set, Config{Objective: WorstCase})
	if err != nil {
		t.Fatal(err)
	}
	lower := ydsLowerBound(t, set)
	if wcs.Energy < lower*(1-1e-6) {
		t.Errorf("WCS energy %g below YDS lower bound %g", wcs.Energy, lower)
	}
}

// ydsLowerBound computes the YDS optimal energy without importing the yds
// package (which would be an import cycle through experiments): it re-uses
// the classic two-point check on the critical-interval structure via the
// penalty NLP instead. To stay simple it returns the uniform-speed energy
// lower bound: running the total worst-case work at the single speed that
// exactly fills the busiest prefix is a valid lower bound for convex power.
func ydsLowerBound(t *testing.T, set *task.Set) float64 {
	t.Helper()
	m := power.DefaultModel()
	h, err := set.Hyperperiod()
	if err != nil {
		t.Fatal(err)
	}
	var work float64
	for _, tk := range set.Tasks {
		work += tk.WCEC * float64(h/tk.Period)
	}
	// Jensen: for E ∝ V² with t ∝ 1/V, spreading all work uniformly over
	// the hyper-period minimises energy over any schedule of that work.
	v := m.VoltageForCycleTime(float64(h) / work)
	return power.Energy(1, v, work)
}

// TestDeterministicSolve: same inputs, same schedule, bit for bit.
func TestDeterministicSolve(t *testing.T) {
	set := feasibleRandom(t, 15, 4, 0.3)
	a, err := Build(set, Config{Objective: AverageCase})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(set, Config{Objective: AverageCase})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.End {
		if a.End[i] != b.End[i] || a.WCWork[i] != b.WCWork[i] {
			t.Fatal("solver is not deterministic")
		}
	}
}

// TestMoreSweepsNeverWorse: increasing the sweep budget cannot worsen the
// objective (descent property).
func TestMoreSweepsNeverWorse(t *testing.T) {
	set := feasibleRandom(t, 16, 5, 0.1)
	prev := math.Inf(1)
	for _, sweeps := range []int{2, 10, 40} {
		s, err := Build(set, Config{Objective: AverageCase, MaxSweeps: sweeps, Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		if s.Energy > prev*(1+1e-9) {
			t.Errorf("objective rose from %g to %g at %d sweeps", prev, s.Energy, sweeps)
		}
		prev = s.Energy
	}
}

// TestInfeasibleSetRejected: utilisation above 1 at Vmax cannot be
// scheduled and must be reported, not silently mangled.
func TestInfeasibleSetRejected(t *testing.T) {
	tasks := []task.Task{
		{Name: "a", Period: 10, WCEC: 30, ACEC: 15, BCEC: 5, Ceff: 1},
		{Name: "b", Period: 10, WCEC: 30, ACEC: 15, BCEC: 5, Ceff: 1},
	}
	set, err := task.NewSet(tasks)
	if err != nil {
		t.Fatal(err)
	}
	// U = 60 cycles per 10ms at max rate 4/ms = 40 cycles per 10ms: U=1.5.
	if _, err := Build(set, Config{Objective: WorstCase}); err == nil {
		t.Error("unschedulable set accepted")
	}
	if err := Feasible(set, Config{}); err == nil {
		t.Error("Feasible passed an unschedulable set")
	}
}

// TestSingleTaskOptimal: one task, one instance — the optimal end-time is
// the deadline, and the objective matches the closed-form energy.
func TestSingleTaskOptimal(t *testing.T) {
	m, err := power.NewSimpleInverse(1, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	set, err := task.NewSet([]task.Task{{Name: "x", Period: 10, WCEC: 20, ACEC: 10, BCEC: 5, Ceff: 1}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(set, Config{Objective: AverageCase, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.End[0]-10) > 1e-3 {
		t.Errorf("single-task end %g, want 10", s.End[0])
	}
	// V = 20 cycles / 10 ms = 2 V; E = 2²·10 executed cycles = 40.
	if math.Abs(s.Energy-40) > 0.1 {
		t.Errorf("objective %g, want 40", s.Energy)
	}
}

// TestNonPreemptiveFrame: equal periods mean no preemption; the plan has
// one piece per instance and the solver matches the motivational example's
// structure (already validated numerically in internal/experiments).
func TestNonPreemptiveFrame(t *testing.T) {
	set, err := task.NewSet([]task.Task{
		{Name: "a", Period: 20, WCEC: 20, ACEC: 10, BCEC: 5, Ceff: 1},
		{Name: "b", Period: 20, WCEC: 20, ACEC: 10, BCEC: 5, Ceff: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(set, Config{Objective: AverageCase})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Plan.Subs) != 2 {
		t.Fatalf("%d pieces, want 2", len(s.Plan.Subs))
	}
}

// TestWarmStartNeverHurts: a warm-started solve is never worse than the
// cold solve on the same objective.
func TestWarmStartNeverHurts(t *testing.T) {
	for _, seed := range []uint64{21, 22, 23} {
		set := feasibleRandom(t, seed, 6, 0.1)
		cold, err := Build(set, Config{Objective: AverageCase})
		if err != nil {
			t.Fatal(err)
		}
		wcs, err := Build(set, Config{Objective: WorstCase})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := Build(set, Config{Objective: AverageCase, WarmStart: wcs})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Energy > cold.Energy*(1+1e-9) {
			t.Errorf("seed %d: warm %g > cold %g", seed, warm.Energy, cold.Energy)
		}
	}
}

// TestWarmStartIgnoresIncompatible: a warm start from a different plan
// shape must be ignored, not crash.
func TestWarmStartIgnoresIncompatible(t *testing.T) {
	setA := feasibleRandom(t, 24, 3, 0.5)
	setB := feasibleRandom(t, 25, 5, 0.5)
	ws, err := Build(setB, Config{Objective: WorstCase})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(setA, Config{Objective: AverageCase, WarmStart: ws}); err != nil {
		t.Errorf("incompatible warm start crashed the solve: %v", err)
	}
}

// TestVerifyCatchesCorruption: Verify must reject hand-corrupted schedules.
func TestVerifyCatchesCorruption(t *testing.T) {
	set := feasibleRandom(t, 26, 4, 0.5)
	base, err := Build(set, Config{Objective: AverageCase})
	if err != nil {
		t.Fatal(err)
	}
	corruptions := []struct {
		name string
		mut  func(*Schedule)
	}{
		{"end past deadline", func(s *Schedule) { s.End[0] = s.Plan.Subs[0].Deadline + 1 }},
		{"negative split", func(s *Schedule) { s.WCWork[len(s.WCWork)-1] = -1 }},
		{"broken conservation", func(s *Schedule) { s.WCWork[0] *= 2 }},
		{"avg above wc", func(s *Schedule) { s.AvgWork[0] = s.WCWork[0] + 1 }},
		{"starved chain", func(s *Schedule) {
			// Find a work-bearing piece and pull its end below the
			// minimum execution time.
			for pos := range s.WCWork {
				if s.WCWork[pos] > 1 {
					s.End[pos] = math.Max(0, s.Plan.Subs[pos].Release+1e-6)
					return
				}
			}
		}},
	}
	for _, c := range corruptions {
		s := CloneSchedule(base)
		c.mut(s)
		if err := s.Verify(1e-6); err == nil {
			t.Errorf("%s: Verify accepted the corruption", c.name)
		}
	}
}

// TestNLPCrossCheckSmall: on a small instance, the reference solvers agree
// with coordinate descent to within a few percent (they are weaker
// optimisers, so they may be slightly worse — never meaningfully better).
func TestNLPCrossCheckSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("reference solvers are slow")
	}
	set := feasibleRandom(t, 27, 3, 0.5)
	wcs, err := Build(set, Config{Objective: WorstCase})
	if err != nil {
		t.Fatal(err)
	}
	acs, err := Build(set, Config{Objective: AverageCase, WarmStart: wcs})
	if err != nil {
		t.Fatal(err)
	}

	nm := CloneSchedule(acs)
	nmObj, err := NewNLP(nm).SolveNelderMead(opt.NelderMeadOptions{MaxEvals: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if nmObj < acs.Energy*(1-0.05) {
		t.Errorf("Nelder-Mead found %g, 5%%+ better than CD's %g — CD is under-converged", nmObj, acs.Energy)
	}

	pen := CloneSchedule(acs)
	penObj, viol, err := NewNLP(pen).SolvePenalty(opt.PenaltyOptions{Rounds: 3, StepIters: 80}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if viol <= 1e-3 && penObj < acs.Energy*(1-0.05) {
		t.Errorf("penalty solver found %g, 5%%+ better than CD's %g", penObj, acs.Energy)
	}
}

// TestNLPPackUnpackRoundTrip: the flat-vector view is lossless.
func TestNLPPackUnpackRoundTrip(t *testing.T) {
	set := feasibleRandom(t, 28, 3, 0.5)
	s, err := Build(set, Config{Objective: AverageCase})
	if err != nil {
		t.Fatal(err)
	}
	p := NewNLP(CloneSchedule(s))
	x := p.Pack()
	if len(x) != p.Dim() {
		t.Fatalf("Pack length %d != Dim %d", len(x), p.Dim())
	}
	if err := p.Unpack(x); err != nil {
		t.Fatal(err)
	}
	y := p.Pack()
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("round trip changed the vector")
		}
	}
	if err := p.Unpack(x[:3]); err == nil {
		t.Error("short vector accepted")
	}
	// The NLP objective at the packed point equals the schedule's energy.
	if obj := p.Objective(x); math.Abs(obj-s.Energy) > 1e-9*s.Energy {
		t.Errorf("NLP objective %g != schedule energy %g", obj, s.Energy)
	}
	if v := opt.MaxViolation(p.Constraints(), x); v > 1e-6 {
		t.Errorf("solved schedule violates its own NLP constraints by %g", v)
	}
}

// TestEDFPlanSolves: the EDF expansion variant also solves and verifies.
func TestEDFPlanSolves(t *testing.T) {
	set := feasibleRandom(t, 29, 4, 0.3)
	cfg := Config{Objective: AverageCase}
	cfg.Preempt.EDF = true
	s, err := Build(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(1e-6); err != nil {
		t.Error(err)
	}
}

// TestPropertySolvedSchedulesValid is the big property test: random
// feasible sets at random ratios solve, verify, conserve workload, and meet
// worst-case deadlines.
func TestPropertySolvedSchedulesValid(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short mode")
	}
	if err := quick.Check(func(seedRaw uint16, nRaw, ratioRaw uint8) bool {
		n := int(nRaw%6) + 1
		ratio := float64(ratioRaw%10) / 10
		rng := stats.NewRNG(uint64(seedRaw) + 1)
		set, err := workload.RandomFeasible(rng, workload.RandomConfig{
			N: n, Ratio: ratio, Utilization: 0.7,
		}, 50, func(s *task.Set) bool { return Feasible(s, Config{}) == nil })
		if err != nil {
			return true // generation failed; nothing to check
		}
		s, err := Build(set, Config{Objective: AverageCase, MaxSweeps: 6})
		if err != nil {
			return false
		}
		if err := s.Verify(1e-6); err != nil {
			return false
		}
		wc := make([]float64, len(s.Plan.Instances))
		for i, in := range s.Plan.Instances {
			wc[i] = set.Tasks[in.TaskIndex].WCEC
		}
		_, over, err := s.EnergyUnder(wc)
		return err == nil && over <= 1e-9
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestRuntimeVoltagesWithinRange: every executing piece's runtime voltage
// lies inside the model's range.
func TestRuntimeVoltagesWithinRange(t *testing.T) {
	set := feasibleRandom(t, 30, 5, 0.1)
	s, err := Build(set, Config{Objective: AverageCase})
	if err != nil {
		t.Fatal(err)
	}
	avg := make([]float64, len(s.Plan.Instances))
	for i, in := range s.Plan.Instances {
		avg[i] = set.Tasks[in.TaskIndex].ACEC
	}
	volts, err := s.RuntimeVoltages(avg)
	if err != nil {
		t.Fatal(err)
	}
	for pos, v := range volts {
		if v == 0 {
			continue // piece executed nothing
		}
		if v < s.Model.VMin()-1e-12 || v > s.Model.VMax()+1e-12 {
			t.Errorf("piece %d voltage %g outside [%g, %g]", pos, v, s.Model.VMin(), s.Model.VMax())
		}
	}
}

// TestTaskEnergyShareSumsToTotal: the per-task breakdown conserves energy.
func TestTaskEnergyShareSumsToTotal(t *testing.T) {
	set := feasibleRandom(t, 31, 4, 0.3)
	s, err := Build(set, Config{Objective: AverageCase})
	if err != nil {
		t.Fatal(err)
	}
	avg := make([]float64, len(s.Plan.Instances))
	for i, in := range s.Plan.Instances {
		avg[i] = set.Tasks[in.TaskIndex].ACEC
	}
	total, _, err := s.EnergyUnder(avg)
	if err != nil {
		t.Fatal(err)
	}
	share, err := s.TaskEnergyShare(avg)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, e := range share {
		sum += e
	}
	if math.Abs(sum-total) > 1e-9*total {
		t.Errorf("shares sum %g != total %g", sum, total)
	}
}

// TestRMSplitsMatchPreemptiveExecution: on a hand-checkable two-task set
// the RM-simulation splits are exactly the classic preemptive trace.
func TestRMSplitsMatchPreemptiveExecution(t *testing.T) {
	// hi: P=10, WCEC=20 (5 ms at Vmax=4). lo: P=20, WCEC=20.
	// RM at Vmax: hi [0,5), lo [5,10)+[10,12.5)... lo's window [0,20) is cut
	// at 10 → two pieces. In [0,10): hi takes 5ms (20 cycles), lo gets the
	// next 5ms = 20 cycles → all of lo's work lands in piece 0.
	set, err := task.NewSet([]task.Task{
		{Name: "hi", Period: 10, WCEC: 20, ACEC: 10, BCEC: 5, Ceff: 1},
		{Name: "lo", Period: 20, WCEC: 20, ACEC: 10, BCEC: 5, Ceff: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := preempt.Build(set)
	if err != nil {
		t.Fatal(err)
	}
	s := &Schedule{
		Plan:    plan,
		Model:   power.DefaultModel(),
		End:     make([]float64, len(plan.Subs)),
		WCWork:  make([]float64, len(plan.Subs)),
		AvgWork: make([]float64, len(plan.Subs)),
	}
	if err := s.rmVmaxSplits(); err != nil {
		t.Fatal(err)
	}
	for pos, su := range plan.Subs {
		id := su.ID(set)
		want := map[string]float64{
			"hi,0,0": 20, "hi,1,0": 20, "lo,0,0": 20, "lo,0,1": 0,
		}[id]
		if math.Abs(s.WCWork[pos]-want) > 1e-9 {
			t.Errorf("%s: RM split %g, want %g", id, s.WCWork[pos], want)
		}
	}
}
