package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/power"
	"repro/internal/preempt"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

// newScratch builds an un-optimised schedule shell with proportional splits
// for white-box tests of the chain passes.
func newScratch(t *testing.T, set *task.Set) *Schedule {
	t.Helper()
	plan, err := preempt.Build(set)
	if err != nil {
		t.Fatal(err)
	}
	n := len(plan.Subs)
	s := &Schedule{
		Plan:    plan,
		Model:   power.DefaultModel(),
		End:     make([]float64, n),
		WCWork:  make([]float64, n),
		AvgWork: make([]float64, n),
	}
	s.proportionalSplits()
	deriveAvgWork(plan, s.WCWork, s.AvgWork)
	return s
}

// TestAsapAlapOrdering: for feasible sets with proportional splits, the ASAP
// chain never exceeds the ALAP chain at any work-bearing position.
func TestAsapAlapOrdering(t *testing.T) {
	rng := stats.NewRNG(60)
	for trial := 0; trial < 20; trial++ {
		set, err := workload.RandomFeasible(rng, workload.RandomConfig{
			N: 4, Ratio: 0.5, Utilization: 0.6,
		}, 50, func(s *task.Set) bool { return Feasible(s, Config{}) == nil })
		if err != nil {
			t.Fatal(err)
		}
		s := newScratch(t, set)
		asap, err := s.asapEnds(make([]float64, len(s.Plan.Subs)))
		if err != nil {
			continue // proportional splits can be chain-infeasible; fine
		}
		alap := s.alapEnds(make([]float64, len(s.Plan.Subs)))
		for pos := range asap {
			if s.WCWork[pos] <= deadWork {
				continue
			}
			if alap[pos] < asap[pos]-1e-9 {
				t.Fatalf("trial %d pos %d: ALAP %g < ASAP %g", trial, pos, alap[pos], asap[pos])
			}
			if alap[pos] > s.Plan.Subs[pos].Deadline+1e-9 {
				t.Fatalf("trial %d pos %d: ALAP %g past deadline %g",
					trial, pos, alap[pos], s.Plan.Subs[pos].Deadline)
			}
		}
	}
}

// TestProportionalSplitsConserve: proportional splits sum to WCEC and are
// all strictly positive (every piece stays alive).
func TestProportionalSplitsConserve(t *testing.T) {
	rng := stats.NewRNG(61)
	set, err := workload.Random(rng, workload.RandomConfig{N: 5, Ratio: 0.5, Utilization: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	s := newScratch(t, set)
	for idx, positions := range s.Plan.ByInstance {
		var sum float64
		for _, pos := range positions {
			if s.WCWork[pos] <= 0 {
				t.Fatalf("proportional split %d is not positive", pos)
			}
			sum += s.WCWork[pos]
		}
		wcec := set.Tasks[s.Plan.Instances[idx].TaskIndex].WCEC
		if math.Abs(sum-wcec) > 1e-9*wcec {
			t.Fatalf("instance %d proportional splits sum %g != %g", idx, sum, wcec)
		}
	}
}

// TestRMSplitsConserveProperty: the RM-execution splits conserve WCEC for
// every instance on feasible random sets.
func TestRMSplitsConserveProperty(t *testing.T) {
	if err := quick.Check(func(seedRaw uint16) bool {
		rng := stats.NewRNG(uint64(seedRaw) + 7)
		set, err := workload.RandomFeasible(rng, workload.RandomConfig{
			N: 5, Ratio: 0.5, Utilization: 0.7,
		}, 50, func(s *task.Set) bool { return Feasible(s, Config{}) == nil })
		if err != nil {
			return true
		}
		s, err := Build(set, Config{Objective: WorstCase, MaxSweeps: 1})
		if err != nil {
			return false
		}
		// Re-run the RM splits on the solved shell and check conservation.
		if err := s.rmVmaxSplits(); err != nil {
			return false
		}
		for idx, positions := range s.Plan.ByInstance {
			var sum float64
			for _, pos := range positions {
				if s.WCWork[pos] < 0 {
					return false
				}
				sum += s.WCWork[pos]
			}
			wcec := set.Tasks[s.Plan.Instances[idx].TaskIndex].WCEC
			if math.Abs(sum-wcec) > 1e-6*wcec {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestScenarioLoadsConservation: every scenario's per-piece loads sum to the
// scenario's instance cycles, and never exceed the worst-case budgets.
func TestScenarioLoadsConservation(t *testing.T) {
	set := feasibleRandom(t, 62, 4, 0.1)
	s, err := Build(set, Config{Objective: AverageCase})
	if err != nil {
		t.Fatal(err)
	}
	sc := s.buildScenarios(6, 17)
	for k := range sc.loads {
		for idx, positions := range s.Plan.ByInstance {
			var sum float64
			for _, pos := range positions {
				if sc.loads[k][pos] > s.WCWork[pos]+1e-9 {
					t.Fatalf("scenario %d pos %d load %g exceeds budget %g",
						k, pos, sc.loads[k][pos], s.WCWork[pos])
				}
				sum += sc.loads[k][pos]
			}
			if math.Abs(sum-sc.cycles[k][idx]) > 1e-9*(1+sc.cycles[k][idx]) {
				t.Fatalf("scenario %d instance %d loads sum %g != cycles %g",
					k, idx, sum, sc.cycles[k][idx])
			}
			tk := set.Tasks[s.Plan.Instances[idx].TaskIndex]
			if sc.cycles[k][idx] < tk.BCEC-1e-9 || sc.cycles[k][idx] > tk.WCEC+1e-9 {
				t.Fatalf("scenario cycles %g outside [BCEC, WCEC]", sc.cycles[k][idx])
			}
		}
	}
}

// TestObjEvalPrefixConsistency: energyFrom(0) equals full() for any mix of
// load sets — the cache machinery must not change the value.
func TestObjEvalPrefixConsistency(t *testing.T) {
	set := feasibleRandom(t, 63, 4, 0.3)
	s, err := Build(set, Config{Objective: AverageCase})
	if err != nil {
		t.Fatal(err)
	}
	n := len(s.Plan.Subs)
	for _, sc := range []*scenarioSet{nil, s.buildScenarios(3, 5)} {
		var ev objEval
		ev.reset(s, sc)
		if a, b := ev.energyFrom(0, n), ev.full(); math.Abs(a-b) > 1e-9*(1+b) {
			t.Errorf("energyFrom(0)=%g != full()=%g", a, b)
		}
		// Mid-order evaluation after advancing must also agree.
		mid := n / 2
		for pos := 0; pos < mid; pos++ {
			ev.advance(pos)
		}
		if a, b := ev.energyFrom(mid, n), ev.full(); math.Abs(a-b) > 1e-9*(1+b) {
			t.Errorf("energyFrom(mid)=%g != full()=%g", a, b)
		}
		// The suffix memo must not change values beyond float re-association:
		// with a stable suffix from mid on, the memoised walk must agree with
		// the full re-evaluation to near machine precision.
		if a, b := ev.energyFrom(mid, mid), ev.energyFrom(mid, n); math.Abs(a-b) > 1e-12*(1+b) {
			t.Errorf("memoised energyFrom(mid)=%g != plain %g", a, b)
		}
	}
}
