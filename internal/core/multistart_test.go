package core

import (
	"math"
	"testing"

	"repro/internal/preempt"
	"repro/internal/stats"
	"repro/internal/workload"
)

func multiStartSet(t *testing.T) (*preempt.Schedule, Config) {
	t.Helper()
	rng := stats.NewRNG(77)
	set, err := workload.RandomFeasible(rng, workload.RandomConfig{
		N: 5, Ratio: 0.3, Utilization: 0.7,
	}, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := preempt.Build(set)
	if err != nil {
		t.Fatal(err)
	}
	return plan, Config{Objective: AverageCase, Starts: 6, StartSeed: 42}
}

// TestMultiStartDeterministicAcrossWorkers: the parallel multi-start driver
// must return bit-identical schedules for any worker count — the fan-out is
// purely a wall-clock optimisation.
func TestMultiStartDeterministicAcrossWorkers(t *testing.T) {
	plan, cfg := multiStartSet(t)
	var ref *Schedule
	for _, workers := range []int{1, 2, 8} {
		c := cfg
		c.StartWorkers = workers
		s, err := Solve(plan, c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = s
			continue
		}
		if s.Energy != ref.Energy {
			t.Fatalf("workers=%d: energy %v != reference %v", workers, s.Energy, ref.Energy)
		}
		for pos := range ref.End {
			if s.End[pos] != ref.End[pos] || s.WCWork[pos] != ref.WCWork[pos] ||
				s.AvgWork[pos] != ref.AvgWork[pos] {
				t.Fatalf("workers=%d: schedule differs from reference at position %d", workers, pos)
			}
		}
	}
}

// TestMultiStartNeverWorseThanSingle: start 0 reproduces the single-start
// configuration, so the multi-start winner can only improve the objective.
func TestMultiStartNeverWorseThanSingle(t *testing.T) {
	plan, cfg := multiStartSet(t)
	single := cfg
	single.Starts = 0
	s1, err := Solve(plan, single)
	if err != nil {
		t.Fatal(err)
	}
	sN, err := Solve(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sN.Energy > s1.Energy+1e-12*math.Max(1, s1.Energy) {
		t.Fatalf("multi-start energy %v worse than single-start %v", sN.Energy, s1.Energy)
	}
	if err := sN.Verify(1e-6 * math.Max(1, plan.Hyperperiod)); err != nil {
		t.Fatalf("multi-start schedule fails verification: %v", err)
	}
}

// TestMultiStartSeedVariation: different StartSeeds explore different blends
// but every result must verify; with the warm start removed from jittered
// starts the objective may differ, never the feasibility.
func TestMultiStartSeedVariation(t *testing.T) {
	plan, cfg := multiStartSet(t)
	for _, seed := range []uint64{1, 2, 3} {
		c := cfg
		c.StartSeed = seed
		s, err := Solve(plan, c)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if err := s.Verify(1e-6 * math.Max(1, plan.Hyperperiod)); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}
