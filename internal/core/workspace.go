package core

import (
	"slices"

	"repro/internal/preempt"
)

// workspace holds every transient buffer one Solve needs: scratch end-time
// vectors, the sweep-local chain bounds, the split-transfer pair list, and
// the objective evaluator with its prefix caches and suffix memo. It is
// allocated once per solve and reused across all coordinate-descent sweeps,
// so the golden-section inner loop runs with zero heap allocations.
type workspace struct {
	eMin      []float64 // ASAP scratch (initialize, Feasible)
	eMax      []float64 // ALAP scratch (initialize)
	prevAlive []float64 // forward chain scratch, length n+1 (sweepEnds)
	nextCap   []float64 // backward chain scratch, length n+1 (sweepEnds)
	saved     []float64 // end-time save buffer (sweepPush)
	pairs     []splitPair
	ev        objEval
}

// fillEvalArrays caches the plan-constant per-position inputs of the
// greedy-reclamation recursion (release time and effective capacitance) as
// flat float64 arrays. The evaluator's inner walk reads these instead of
// chasing the 80-byte SubInstance structs and the task table, cutting the
// cache traffic of the solver's innermost loop by an order of magnitude.
func (e *objEval) fillEvalArrays(plan *preempt.Schedule) {
	n := len(plan.Subs)
	if cap(e.rel) < n {
		e.rel = make([]float64, n)
		e.ceff = make([]float64, n)
	}
	e.rel = e.rel[:n]
	e.ceff = e.ceff[:n]
	for pos := range plan.Subs {
		e.rel[pos] = plan.Subs[pos].Release
		e.ceff[pos] = plan.Set.Tasks[plan.Subs[pos].TaskIndex].Ceff
	}
}

// splitPair is one workload-transfer coordinate of sweepSplits: adjacent
// pieces (pa, pb) of instance idx.
type splitPair struct{ pa, pb, idx int }

func newWorkspace(plan *preempt.Schedule) *workspace {
	n := len(plan.Subs)
	ws := &workspace{
		eMin:      make([]float64, n),
		eMax:      make([]float64, n),
		prevAlive: make([]float64, n+1),
		nextCap:   make([]float64, n+1),
		saved:     make([]float64, n),
	}
	// The transfer pairs depend only on the plan, not on the solution state:
	// build them once, sorted by earlier position so the evaluator's prefix
	// caches advance monotonically during a split sweep. Positions are unique
	// across instances, so the sort order is total and deterministic.
	for idx, positions := range plan.ByInstance {
		for k := 0; k+1 < len(positions); k++ {
			ws.pairs = append(ws.pairs, splitPair{positions[k], positions[k+1], idx})
		}
	}
	slices.SortFunc(ws.pairs, func(a, b splitPair) int { return a.pa - b.pa })
	return ws
}
