package core_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

// FuzzBuildSchedule drives the solver-invariant properties (property_test.go)
// over fuzzer-chosen generator coordinates: seed, task count, BCEC/WCEC
// ratio and utilisation. The seed corpus spans the paper's sweep — the cells
// of Fig. 6(a) plus the frozen input of the split-revival regression — and
// runs as ordinary unit tests on every `go test`; `go test -fuzz` explores
// beyond it (CI runs a short -fuzztime smoke).
//
// The workload generator, not the raw bytes, defines the search space: every
// input decodes to a generator configuration, so each fuzz execution
// exercises the preemptive expansion, both solver objectives, the warm-start
// path, and the greedy-reclamation simulation on a structurally valid task
// set. Inputs whose configuration cannot produce a feasible set are skipped.
func FuzzBuildSchedule(f *testing.F) {
	// Paper sweep corners and midpoints.
	for _, n := range []uint8{2, 4, 6} {
		for _, ratio := range []float64{0.1, 0.5, 0.9} {
			f.Add(uint64(2005), n, ratio, 0.7)
		}
	}
	// Degenerate and boundary coordinates.
	f.Add(uint64(1), uint8(1), 0.0, 0.3)
	f.Add(uint64(7), uint8(8), 1.0, 0.95)
	f.Add(uint64(42), uint8(3), 0.25, 0.05)
	// The split-revival regression's generator coordinates (see
	// TestSplitRevivalKeepsDeadlines).
	f.Add(uint64(0x99cd), uint8(0x3b%6+2), 0.5, 0.7)

	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, ratio, util float64) {
		n := int(nRaw%8) + 1
		if math.IsNaN(ratio) || ratio < 0 || ratio > 1 {
			ratio = 0.5
		}
		if math.IsNaN(util) || util <= 0.01 || util > 1 {
			util = 0.7
		}
		rng := stats.NewRNG(seed)
		set, err := workload.RandomFeasible(rng, workload.RandomConfig{
			N: n, Ratio: ratio, Utilization: util,
		}, 20, func(s *task.Set) bool { return core.Feasible(s, core.Config{}) == nil })
		if err != nil {
			t.Skip("no feasible set for these coordinates")
		}

		// Bounded sweeps keep each execution cheap; the invariants must hold
		// at every sweep count, converged or not.
		cfg := core.Config{MaxSweeps: 8}
		acs, wcs := solvePair(t, set, cfg)
		assertScheduleInvariants(t, "ACS", acs, seed)
		assertScheduleInvariants(t, "WCS", wcs, seed)
		assertPairInvariants(t, "pair", acs, wcs)
	})
}
