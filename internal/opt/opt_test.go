package opt

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestGoldenMinQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 3) * (x - 3) }
	x, fx := GoldenMin(f, -10, 10, 1e-9, 200)
	if math.Abs(x-3) > 1e-6 || fx > 1e-10 {
		t.Errorf("GoldenMin quadratic: x=%g fx=%g", x, fx)
	}
}

func TestGoldenMinEndpointOptimum(t *testing.T) {
	// Monotone decreasing: optimum at the right endpoint.
	f := func(x float64) float64 { return -x }
	x, _ := GoldenMin(f, 0, 5, 1e-9, 200)
	if math.Abs(x-5) > 1e-6 {
		t.Errorf("endpoint optimum missed: x=%g", x)
	}
	// Monotone increasing: left endpoint.
	g := func(x float64) float64 { return x }
	x, _ = GoldenMin(g, 0, 5, 1e-9, 200)
	if math.Abs(x) > 1e-6 {
		t.Errorf("left endpoint missed: x=%g", x)
	}
}

func TestGoldenMinDegenerateInterval(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	x, fx := GoldenMin(f, 2, 2, 1e-9, 100)
	if x != 2 || fx != 4 {
		t.Errorf("degenerate interval: x=%g fx=%g", x, fx)
	}
	// Reversed bounds are normalised.
	x, _ = GoldenMin(f, 5, -5, 1e-9, 200)
	if math.Abs(x) > 1e-6 {
		t.Errorf("reversed bounds: x=%g", x)
	}
}

// TestGoldenMinNeverWorseThanEndpoints is the safety property coordinate
// descent relies on: the returned value never exceeds both endpoint values,
// even on non-unimodal functions.
func TestGoldenMinNeverWorseThanEndpoints(t *testing.T) {
	rng := stats.NewRNG(3)
	if err := quick.Check(func(a, b, c, d uint16) bool {
		// A wiggly cubic-with-sine, not unimodal.
		p1 := float64(a%100)/10 - 5
		p2 := float64(b%100)/10 - 5
		f := func(x float64) float64 {
			return math.Sin(3*x+p1) + 0.1*(x-p2)*(x-p2)
		}
		lo := rng.Uniform(-5, 0)
		hi := rng.Uniform(0, 5)
		_, fx := GoldenMin(f, lo, hi, 1e-6, 100)
		return fx <= f(lo)+1e-12 && fx <= f(hi)+1e-12
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp broken")
	}
}

func TestBisect(t *testing.T) {
	root := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if math.Abs(root-math.Sqrt2) > 1e-9 {
		t.Errorf("Bisect sqrt2 = %g", root)
	}
	// Decreasing function.
	root = Bisect(func(x float64) float64 { return 1 - x }, 0, 3, 1e-12)
	if math.Abs(root-1) > 1e-9 {
		t.Errorf("Bisect decreasing = %g", root)
	}
	// No bracket: closest endpoint.
	root = Bisect(func(x float64) float64 { return x + 10 }, 0, 1, 1e-12)
	if root != 0 {
		t.Errorf("no-bracket Bisect = %g", root)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	rosen := func(x []float64) float64 {
		return 100*math.Pow(x[1]-x[0]*x[0], 2) + math.Pow(1-x[0], 2)
	}
	x, fx, err := NelderMead(rosen, []float64{-1.2, 1}, NelderMeadOptions{MaxEvals: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if fx > 1e-4 {
		t.Errorf("Rosenbrock min missed: x=%v fx=%g", x, fx)
	}
}

func TestNelderMeadSphereHighDim(t *testing.T) {
	sphere := func(x []float64) float64 {
		var s float64
		for _, v := range x {
			s += v * v
		}
		return s
	}
	x0 := []float64{3, -2, 1, 4, -1}
	_, fx, err := NelderMead(sphere, x0, NelderMeadOptions{MaxEvals: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if fx > 1e-3 {
		t.Errorf("sphere min missed: fx=%g", fx)
	}
}

func TestNelderMeadValidation(t *testing.T) {
	if _, _, err := NelderMead(func(x []float64) float64 { return 0 }, nil, NelderMeadOptions{}); err == nil {
		t.Error("empty x0 accepted")
	}
}

func TestPenaltyMinimizeConstrainedQuadratic(t *testing.T) {
	// min (x−5)² s.t. x ≤ 2 → x* = 2.
	f := func(x []float64) float64 { return (x[0] - 5) * (x[0] - 5) }
	cons := []Constraint{func(x []float64) float64 { return x[0] - 2 }}
	x, _, err := PenaltyMinimize(f, cons, []float64{0}, PenaltyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 0.01 {
		t.Errorf("constrained optimum x=%g, want 2", x[0])
	}
}

func TestPenaltyMinimizeBoxBounds(t *testing.T) {
	f := func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] }
	x, _, err := PenaltyMinimize(f, nil, []float64{5, 5}, PenaltyOptions{
		Lower: []float64{1, -10},
		Upper: []float64{10, 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-6 || math.Abs(x[1]) > 1e-3 {
		t.Errorf("box-bounded optimum %v, want [1, 0]", x)
	}
}

func TestPenaltyMinimizeValidation(t *testing.T) {
	f := func(x []float64) float64 { return 0 }
	if _, _, err := PenaltyMinimize(f, nil, nil, PenaltyOptions{}); err == nil {
		t.Error("empty x0 accepted")
	}
	if _, _, err := PenaltyMinimize(f, nil, []float64{1}, PenaltyOptions{Lower: []float64{1, 2}}); err == nil {
		t.Error("mismatched bounds accepted")
	}
}

func TestMaxViolation(t *testing.T) {
	cons := []Constraint{
		func(x []float64) float64 { return x[0] - 1 },
		func(x []float64) float64 { return -x[0] },
	}
	if v := MaxViolation(cons, []float64{3}); v != 2 {
		t.Errorf("MaxViolation = %g, want 2", v)
	}
	if v := MaxViolation(cons, []float64{0.5}); v != 0 {
		t.Errorf("feasible point violation = %g", v)
	}
}
