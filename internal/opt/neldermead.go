package opt

import (
	"fmt"
	"math"
	"sort"
)

// NelderMeadOptions tunes the simplex search.
type NelderMeadOptions struct {
	// MaxEvals bounds total objective evaluations (default 2000·dim).
	MaxEvals int
	// Tol is the convergence tolerance on the simplex value spread
	// (default 1e-9).
	Tol float64
	// Step is the initial simplex edge length relative to |x₀| (default
	// 0.05, with an absolute floor of 1e-3).
	Step float64
}

// NelderMead minimises f starting from x0 by the Nelder–Mead downhill
// simplex method with standard coefficients (reflection 1, expansion 2,
// contraction 0.5, shrink 0.5). It returns the best point and value found.
// The method is derivative-free and tolerates the mild non-smoothness of the
// schedule-energy objective (max() kinks); it is practical only for small
// dimensions and is used as a cross-check solver.
func NelderMead(f func([]float64) float64, x0 []float64, o NelderMeadOptions) ([]float64, float64, error) {
	n := len(x0)
	if n == 0 {
		return nil, 0, fmt.Errorf("opt: NelderMead needs at least one variable")
	}
	if o.MaxEvals <= 0 {
		o.MaxEvals = 2000 * n
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.Step <= 0 {
		o.Step = 0.05
	}

	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}

	// Initial simplex: x0 plus a perturbation along each axis.
	pts := make([][]float64, n+1)
	vals := make([]float64, n+1)
	for i := range pts {
		p := append([]float64(nil), x0...)
		if i > 0 {
			h := o.Step * math.Abs(p[i-1])
			if h < 1e-3 {
				h = 1e-3
			}
			p[i-1] += h
		}
		pts[i] = p
		vals[i] = eval(p)
	}

	order := make([]int, n+1)
	for evals < o.MaxEvals {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })
		best, worst, second := order[0], order[n], order[n-1]
		if vals[worst]-vals[best] < o.Tol {
			break
		}

		// Centroid of all but the worst vertex.
		cen := make([]float64, n)
		for _, i := range order[:n] {
			for d := range cen {
				cen[d] += pts[i][d]
			}
		}
		for d := range cen {
			cen[d] /= float64(n)
		}

		refl := combine(cen, pts[worst], 2, -1) // cen + (cen − worst)
		fr := eval(refl)
		switch {
		case fr < vals[best]:
			exp := combine(cen, pts[worst], 3, -2) // cen + 2(cen − worst)
			if fe := eval(exp); fe < fr {
				pts[worst], vals[worst] = exp, fe
			} else {
				pts[worst], vals[worst] = refl, fr
			}
		case fr < vals[second]:
			pts[worst], vals[worst] = refl, fr
		default:
			con := combine(cen, pts[worst], 0.5, 0.5) // midpoint cen..worst
			if fc := eval(con); fc < vals[worst] {
				pts[worst], vals[worst] = con, fc
			} else {
				// Shrink toward the best vertex.
				for _, i := range order[1:] {
					pts[i] = combine(pts[best], pts[i], 0.5, 0.5)
					vals[i] = eval(pts[i])
				}
			}
		}
	}

	bi := 0
	for i := range vals {
		if vals[i] < vals[bi] {
			bi = i
		}
	}
	return pts[bi], vals[bi], nil
}

// combine returns a·x + b·y elementwise.
func combine(x, y []float64, a, b float64) []float64 {
	out := make([]float64, len(x))
	for i := range out {
		out[i] = a*x[i] + b*y[i]
	}
	return out
}
