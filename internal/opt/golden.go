// Package opt provides the pure-Go mathematical-programming machinery used
// to solve the paper's NLP (§3.2): one-dimensional golden-section search,
// projected coordinate descent, Nelder–Mead simplex search, and a
// penalty-method gradient solver. The coordinate-descent path is the
// production solver (internal/core builds on it); Nelder–Mead and the
// penalty solver exist to cross-check solution quality on small instances
// (experiment E9).
package opt

import "math"

// invPhi = 1/φ, the golden-section step ratio.
const invPhi = 0.6180339887498949

// GoldenMin minimises a unimodal (or approximately unimodal) function f on
// the closed interval [lo, hi] by golden-section search, returning the
// best point found and its value. tol is the absolute interval tolerance;
// maxIter bounds the number of shrink steps. The endpoints are always
// evaluated, so the result is never worse than min(f(lo), f(hi)) even if f
// is not unimodal.
func GoldenMin(f func(float64) float64, lo, hi, tol float64, maxIter int) (x, fx float64) {
	if hi < lo {
		lo, hi = hi, lo
	}
	bestX, bestF := lo, f(lo)
	if fHi := f(hi); fHi < bestF {
		bestX, bestF = hi, fHi
	}
	if hi-lo <= tol {
		return bestX, bestF
	}
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < maxIter && b-a > tol; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	if fc < bestF {
		bestX, bestF = c, fc
	}
	if fd < bestF {
		bestX, bestF = d, fd
	}
	return bestX, bestF
}

// Clamp returns x restricted to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Bisect finds a root of the monotone function g on [lo, hi] to absolute
// tolerance tol, assuming g(lo) and g(hi) bracket zero; if they do not, the
// endpoint with the smaller |g| is returned. Used by power-model inverses in
// tests.
func Bisect(g func(float64) float64, lo, hi, tol float64) float64 {
	glo, ghi := g(lo), g(hi)
	if glo == 0 {
		return lo
	}
	if ghi == 0 {
		return hi
	}
	if (glo > 0) == (ghi > 0) {
		if math.Abs(glo) < math.Abs(ghi) {
			return lo
		}
		return hi
	}
	for hi-lo > tol {
		mid := 0.5 * (lo + hi)
		gm := g(mid)
		if gm == 0 {
			return mid
		}
		if (gm > 0) == (glo > 0) {
			lo, glo = mid, gm
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}
