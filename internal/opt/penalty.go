package opt

import (
	"fmt"
	"math"
)

// Constraint is an inequality g(x) ≤ 0 for the penalty solver.
type Constraint func(x []float64) float64

// PenaltyOptions tunes the penalty-method gradient solver.
type PenaltyOptions struct {
	// Rounds is the number of penalty escalations (default 6).
	Rounds int
	// Mu0 is the initial penalty weight (default 10), multiplied by MuGrow
	// each round (default 10).
	Mu0, MuGrow float64
	// StepIters bounds gradient steps per round (default 400).
	StepIters int
	// Grad is the finite-difference step (default 1e-6 relative).
	Grad float64
	// Lower and Upper are optional box bounds applied by projection; nil
	// means unbounded on that side.
	Lower, Upper []float64
}

// PenaltyMinimize minimises f subject to gᵢ(x) ≤ 0 by the quadratic exterior
// penalty method with projected gradient descent and backtracking line
// search. It is a reference solver for cross-checking the structured
// coordinate-descent solver on small instances: robust, derivative-free at
// the interface (gradients via central differences), and slow.
func PenaltyMinimize(f func([]float64) float64, cons []Constraint, x0 []float64, o PenaltyOptions) ([]float64, float64, error) {
	n := len(x0)
	if n == 0 {
		return nil, 0, fmt.Errorf("opt: PenaltyMinimize needs at least one variable")
	}
	if o.Rounds <= 0 {
		o.Rounds = 6
	}
	if o.Mu0 <= 0 {
		o.Mu0 = 10
	}
	if o.MuGrow <= 1 {
		o.MuGrow = 10
	}
	if o.StepIters <= 0 {
		o.StepIters = 400
	}
	if o.Grad <= 0 {
		o.Grad = 1e-6
	}
	if o.Lower != nil && len(o.Lower) != n {
		return nil, 0, fmt.Errorf("opt: lower bound dimension %d != %d", len(o.Lower), n)
	}
	if o.Upper != nil && len(o.Upper) != n {
		return nil, 0, fmt.Errorf("opt: upper bound dimension %d != %d", len(o.Upper), n)
	}

	project := func(x []float64) {
		for i := range x {
			if o.Lower != nil && x[i] < o.Lower[i] {
				x[i] = o.Lower[i]
			}
			if o.Upper != nil && x[i] > o.Upper[i] {
				x[i] = o.Upper[i]
			}
		}
	}

	x := append([]float64(nil), x0...)
	project(x)
	mu := o.Mu0

	penalized := func(x []float64) float64 {
		v := f(x)
		for _, g := range cons {
			if viol := g(x); viol > 0 {
				v += mu * viol * viol
			}
		}
		return v
	}

	grad := make([]float64, n)
	trial := make([]float64, n)
	for round := 0; round < o.Rounds; round++ {
		step := 1.0
		fx := penalized(x)
		for it := 0; it < o.StepIters; it++ {
			// Central-difference gradient.
			gnorm := 0.0
			for i := range x {
				h := o.Grad * (math.Abs(x[i]) + 1)
				orig := x[i]
				x[i] = orig + h
				fp := penalized(x)
				x[i] = orig - h
				fm := penalized(x)
				x[i] = orig
				grad[i] = (fp - fm) / (2 * h)
				gnorm += grad[i] * grad[i]
			}
			gnorm = math.Sqrt(gnorm)
			if gnorm < 1e-12 {
				break
			}
			// Backtracking line search along −grad with projection.
			improved := false
			for bt := 0; bt < 40; bt++ {
				for i := range trial {
					trial[i] = x[i] - step*grad[i]/gnorm
				}
				project(trial)
				if ft := penalized(trial); ft < fx-1e-15 {
					copy(x, trial)
					fx = ft
					improved = true
					step *= 1.6 // cautiously regrow the trust step
					break
				}
				step *= 0.5
			}
			if !improved {
				break
			}
		}
		mu *= o.MuGrow
	}
	return x, f(x), nil
}

// MaxViolation returns the largest positive constraint value at x (0 when
// feasible), for reporting solution quality.
func MaxViolation(cons []Constraint, x []float64) float64 {
	worst := 0.0
	for _, g := range cons {
		if v := g(x); v > worst {
			worst = v
		}
	}
	return worst
}
