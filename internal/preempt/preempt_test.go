package preempt

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/task"
)

func mkTask(name string, period int64) task.Task {
	return task.Task{Name: name, Period: period, WCEC: 10, ACEC: 5, BCEC: 1, Ceff: 1}
}

func mustSet(t *testing.T, tasks ...task.Task) *task.Set {
	t.Helper()
	s, err := task.NewSet(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPaperFigure34 reproduces the §3.1 example: three tasks with periods
// 3, 6 and 9 (hyper-period 18) expand so that lower-priority instances are
// split at every higher-priority release inside their window, and the total
// order starts T1,0 T2,0 T3,0 T1,1 T3,1 ...
func TestPaperFigure34(t *testing.T) {
	set := mustSet(t, mkTask("T1", 3), mkTask("T2", 6), mkTask("T3", 9))
	s, err := Build(set)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// T3's first instance [0,9) is cut by releases at 3 and 6 → 3 pieces.
	t3first := s.ByInstance[instanceIndex(t, s, "T3", 0)]
	if len(t3first) != 3 {
		t.Fatalf("T3#0 has %d pieces, want 3", len(t3first))
	}
	// T2's first instance [0,6) is cut at 3 → 2 pieces.
	t2first := s.ByInstance[instanceIndex(t, s, "T2", 0)]
	if len(t2first) != 2 {
		t.Fatalf("T2#0 has %d pieces, want 2", len(t2first))
	}
	// Total order prefix: T1 then T2 then T3 at time 0; at the release
	// time 3, T1's next instance first, then the continuation pieces of T2
	// and T3 in priority order.
	ids := make([]string, 6)
	for i := 0; i < 6; i++ {
		ids[i] = s.Subs[i].ID(set)
	}
	want := []string{"T1,0,0", "T2,0,0", "T3,0,0", "T1,1,0", "T2,0,1", "T3,0,1"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("order %v, want prefix %v", ids, want)
		}
	}
}

func instanceIndex(t *testing.T, s *Schedule, name string, number int) int {
	t.Helper()
	for idx, in := range s.Instances {
		if s.Set.Tasks[in.TaskIndex].Name == name && in.Number == number {
			return idx
		}
	}
	t.Fatalf("instance %s#%d not found", name, number)
	return -1
}

func TestNoPreemptionForEqualPeriods(t *testing.T) {
	set := mustSet(t, mkTask("a", 10), mkTask("b", 10), mkTask("c", 10))
	s, err := Build(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Subs) != 3 {
		t.Fatalf("equal-priority tasks must not preempt each other: %d pieces", len(s.Subs))
	}
}

func TestHighestPriorityNeverSplit(t *testing.T) {
	set := mustSet(t, mkTask("hi", 10), mkTask("lo", 40))
	s, err := Build(set)
	if err != nil {
		t.Fatal(err)
	}
	for idx, positions := range s.ByInstance {
		if s.Set.Tasks[s.Instances[idx].TaskIndex].Name == "hi" && len(positions) != 1 {
			t.Fatalf("highest-priority instance split into %d pieces", len(positions))
		}
	}
	// The low-priority instance [0,40) is cut at 10, 20, 30 → 4 pieces.
	lo := s.ByInstance[instanceIndex(t, s, "lo", 0)]
	if len(lo) != 4 {
		t.Fatalf("lo#0 has %d pieces, want 4", len(lo))
	}
}

func TestSubInstanceCap(t *testing.T) {
	set := mustSet(t, mkTask("hi", 10), mkTask("lo", 80))
	for _, capN := range []int{1, 2, 3, 8} {
		s, err := BuildWith(set, Options{MaxSubsPerInstance: capN})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("cap %d: %v", capN, err)
		}
		if got := s.MaxSubInstances(); got > capN {
			t.Errorf("cap %d: max pieces %d", capN, got)
		}
		// Pieces of every instance must still tile the full window.
		for idx, positions := range s.ByInstance {
			in := s.Instances[idx]
			if s.Subs[positions[0]].SegStart != in.Release {
				t.Errorf("cap %d: first piece starts at %g, want %g",
					capN, s.Subs[positions[0]].SegStart, in.Release)
			}
			if s.Subs[positions[len(positions)-1]].SegEnd != in.Deadline {
				t.Errorf("cap %d: last piece ends at %g, want %g",
					capN, s.Subs[positions[len(positions)-1]].SegEnd, in.Deadline)
			}
		}
	}
}

func TestEDFOrdering(t *testing.T) {
	set := mustSet(t, mkTask("a", 20), mkTask("b", 30))
	s, err := BuildWith(set, Options{EDF: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// At time 0, EDF runs the earlier deadline (a, d=20) first — same as
	// RM here — but b's instance [30,60) must preempt a's [40,60)? No:
	// b#1 deadline 60 vs a#2 deadline 60: tie broken by task index.
	if s.Subs[0].TaskIndex != 0 {
		t.Error("EDF first piece is not the earliest deadline")
	}
}

func TestBuildRejectsNil(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("nil set accepted")
	}
}

// TestExpansionInvariants is the structural property test: for random sets,
// the expansion validates, covers every instance, and orders pieces by
// segment start.
func TestExpansionInvariants(t *testing.T) {
	pool := []int64{10, 20, 25, 40, 50, 100, 200}
	rng := stats.NewRNG(14)
	if err := quick.Check(func(nRaw, capRaw uint8) bool {
		n := int(nRaw%8) + 1
		capN := int(capRaw % 6) // 0 = unlimited
		tasks := make([]task.Task, n)
		for i := range tasks {
			tasks[i] = task.Task{Period: pool[rng.Intn(len(pool))], WCEC: 5, ACEC: 3, BCEC: 1, Ceff: 1}
		}
		set, err := task.NewSet(tasks)
		if err != nil {
			return false
		}
		s, err := BuildWith(set, Options{MaxSubsPerInstance: capN})
		if err != nil {
			return false
		}
		if err := s.Validate(); err != nil {
			return false
		}
		// Each instance covered exactly once, segments tiling its window.
		for idx, positions := range s.ByInstance {
			in := s.Instances[idx]
			cursor := in.Release
			for _, pos := range positions {
				if s.Subs[pos].SegStart != cursor {
					return false
				}
				cursor = s.Subs[pos].SegEnd
			}
			if cursor != in.Deadline {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSegmentsAlignWithHPReleases: every interior segment boundary of an
// instance coincides with a strictly-higher-priority release.
func TestSegmentsAlignWithHPReleases(t *testing.T) {
	set := mustSet(t, mkTask("a", 10), mkTask("b", 25), mkTask("c", 50))
	s, err := Build(set)
	if err != nil {
		t.Fatal(err)
	}
	for idx, positions := range s.ByInstance {
		in := s.Instances[idx]
		for k := 1; k < len(positions); k++ {
			cut := s.Subs[positions[k]].SegStart
			found := false
			for _, other := range s.Instances {
				if other.Release == cut &&
					s.Set.Tasks[other.TaskIndex].Period < s.Set.Tasks[in.TaskIndex].Period {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("instance %d cut at %g matches no higher-priority release", idx, cut)
			}
		}
	}
}

func TestSubInstanceID(t *testing.T) {
	set := mustSet(t, mkTask("a", 10), mkTask("b", 20))
	s, err := Build(set)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Subs[0].ID(set); got != "a,0,0" {
		t.Errorf("ID = %q", got)
	}
}
