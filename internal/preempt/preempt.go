// Package preempt constructs the fully-preemptive schedule of the paper
// (§3.1, Figs. 3 and 4): every task instance in one hyper-period is split at
// every release of a strictly-higher-priority task inside its scheduling
// window, producing the complete set of sub-instances a preemptive execution
// could ever create, together with their total execution order.
//
// The total order sorts sub-instances by segment start time and, within a
// time, by priority — exactly the order the paper derives for Fig. 4
// (T₁,₁,₁ < T₂,₁,₁ < T₃,₁,₁ < T₁,₂,₁ < T₃,₁,₂ < …). Downstream, the order is
// the backbone of the NLP chaining constraints and of the runtime
// dispatcher.
package preempt

import (
	"fmt"
	"sort"

	"repro/internal/task"
)

// SubInstance is one preemption-delimited piece of a task instance: the unit
// the NLP assigns an end-time and a worst-case workload to (paper notation
// T_{i,j,k}).
type SubInstance struct {
	// TaskIndex indexes the RM-ordered task set.
	TaskIndex int
	// InstanceNumber is the release index of the parent instance.
	InstanceNumber int
	// SubIndex is k: the zero-based position among the parent's pieces.
	SubIndex int
	// Release is the parent instance's absolute release time (ms). A
	// sub-instance may never start before it.
	Release float64
	// Deadline is the parent instance's absolute deadline (ms). A
	// sub-instance may never end after it.
	Deadline float64
	// SegStart and SegEnd delimit the fully-preemptive segment that created
	// this piece: SegStart is the later of the parent release and the
	// previous higher-priority release; SegEnd is the next higher-priority
	// release (or the parent deadline for the last piece). They order the
	// pieces; the NLP may move actual execution within [Release, Deadline].
	SegStart float64
	SegEnd   float64
	// InstanceIndex is the position of the parent in the flat instance list
	// (used to group pieces of the same instance).
	InstanceIndex int
}

// Schedule is the fully-preemptive expansion of a task set over one
// hyper-period.
type Schedule struct {
	Set       *task.Set
	Instances []task.Instance
	// Subs lists every sub-instance in total execution order.
	Subs []SubInstance
	// ByInstance maps an instance index to the (ascending) positions of its
	// sub-instances within Subs.
	ByInstance [][]int
	// Hyperperiod is the schedule horizon in ms.
	Hyperperiod float64
	// Opts records the options the schedule was built with (priority rule,
	// sub-instance cap), so downstream consumers can replay the same
	// priority ordering.
	Opts Options
}

// Options tunes the expansion.
type Options struct {
	// MaxSubsPerInstance caps the number of pieces any single instance may
	// be split into; 0 means unlimited. When the cap binds, the *shortest*
	// segments are merged into their successors first, preserving the total
	// order. The E6 ablation sweeps this cap; the paper's experiments bound
	// task sets at one thousand sub-instances in total.
	MaxSubsPerInstance int

	// EDF orders priorities by absolute instance deadline instead of RM
	// task priority. The paper uses RM; EDF is provided as an extension and
	// for cross-checking against the YDS lower bound.
	EDF bool
}

// Build expands set into its fully-preemptive schedule with default options.
func Build(set *task.Set) (*Schedule, error) { return BuildWith(set, Options{}) }

// BuildWith expands set into its fully-preemptive schedule.
func BuildWith(set *task.Set, opts Options) (*Schedule, error) {
	if set == nil || set.N() == 0 {
		return nil, fmt.Errorf("preempt: nil or empty task set")
	}
	h, err := set.Hyperperiod()
	if err != nil {
		return nil, err
	}
	instances, err := set.Instances()
	if err != nil {
		return nil, err
	}
	s := &Schedule{
		Set:         set,
		Instances:   instances,
		ByInstance:  make([][]int, len(instances)),
		Hyperperiod: float64(h),
		Opts:        opts,
	}

	for idx, in := range instances {
		cuts := preemptionPoints(set, instances, idx, opts)
		bounds := append([]float64{in.Release}, cuts...)
		bounds = append(bounds, in.Deadline)
		if opts.MaxSubsPerInstance > 0 {
			bounds = capSegments(bounds, opts.MaxSubsPerInstance)
		}
		for k := 0; k+1 < len(bounds); k++ {
			s.Subs = append(s.Subs, SubInstance{
				TaskIndex:      in.TaskIndex,
				InstanceNumber: in.Number,
				SubIndex:       k,
				Release:        in.Release,
				Deadline:       in.Deadline,
				SegStart:       bounds[k],
				SegEnd:         bounds[k+1],
				InstanceIndex:  idx,
			})
		}
	}

	s.sortTotalOrder(opts)
	for pos, su := range s.Subs {
		s.ByInstance[su.InstanceIndex] = append(s.ByInstance[su.InstanceIndex], pos)
	}
	// Re-number SubIndex in final order so k counts execution order within
	// the instance even after merging.
	for _, positions := range s.ByInstance {
		for k, pos := range positions {
			s.Subs[pos].SubIndex = k
		}
	}
	return s, nil
}

// preemptionPoints returns the strictly-interior release times of
// higher-priority work within the window of instance idx, ascending and
// deduplicated.
func preemptionPoints(set *task.Set, instances []task.Instance, idx int, opts Options) []float64 {
	in := instances[idx]
	seen := map[float64]bool{}
	var cuts []float64
	for jdx, other := range instances {
		if jdx == idx {
			continue
		}
		if other.Release <= in.Release || other.Release >= in.Deadline {
			continue
		}
		if !higherPriority(set, instances, jdx, idx, opts) {
			continue
		}
		if !seen[other.Release] {
			seen[other.Release] = true
			cuts = append(cuts, other.Release)
		}
	}
	sort.Float64s(cuts)
	return cuts
}

// higherPriority reports whether instance a strictly outranks instance b.
func higherPriority(set *task.Set, instances []task.Instance, a, b int, opts Options) bool {
	ia, ib := instances[a], instances[b]
	if opts.EDF {
		if ia.Deadline != ib.Deadline {
			return ia.Deadline < ib.Deadline
		}
		return ia.TaskIndex < ib.TaskIndex
	}
	pa := set.Tasks[ia.TaskIndex].Period
	pb := set.Tasks[ib.TaskIndex].Period
	if pa != pb {
		return pa < pb
	}
	// Same period ⇒ same RM priority (paper §2.1); equal-priority releases
	// do not preempt, so neither outranks the other.
	return false
}

// capSegments merges the shortest interior segments until at most maxSegs
// remain. bounds has length segments+1 and is ascending; the first and last
// bound (release and deadline) are never removed.
func capSegments(bounds []float64, maxSegs int) []float64 {
	for len(bounds)-1 > maxSegs {
		// Find the shortest segment and delete its *ending* interior bound,
		// merging it into the successor. The last segment's end is the
		// deadline, which must stay; merge it into its predecessor instead.
		short, si := bounds[1]-bounds[0], 0
		for i := 0; i+1 < len(bounds); i++ {
			if l := bounds[i+1] - bounds[i]; l < short {
				short, si = l, i
			}
		}
		cut := si + 1
		if cut == len(bounds)-1 {
			cut = si // merge final segment into predecessor
		}
		if cut == 0 {
			cut = 1 // never remove the release bound
		}
		bounds = append(bounds[:cut], bounds[cut+1:]...)
	}
	return bounds
}

// sortTotalOrder arranges Subs into the fully-preemptive total order:
// ascending segment start; at equal starts, higher priority first; pieces of
// one instance keep ascending segment order by construction.
func (s *Schedule) sortTotalOrder(opts Options) {
	sort.SliceStable(s.Subs, func(i, j int) bool {
		a, b := s.Subs[i], s.Subs[j]
		if a.SegStart != b.SegStart {
			return a.SegStart < b.SegStart
		}
		if a.InstanceIndex == b.InstanceIndex {
			return a.SegStart < b.SegStart // equal; keep stable order
		}
		// Priority comparison mirrors higherPriority but on sub-instances.
		if opts.EDF {
			if a.Deadline != b.Deadline {
				return a.Deadline < b.Deadline
			}
			return a.TaskIndex < b.TaskIndex
		}
		pa := s.Set.Tasks[a.TaskIndex].Period
		pb := s.Set.Tasks[b.TaskIndex].Period
		if pa != pb {
			return pa < pb
		}
		return a.TaskIndex < b.TaskIndex
	})
}

// ID renders the paper's T_{i,j,k} notation, e.g. "T3,0,1".
func (su SubInstance) ID(set *task.Set) string {
	return fmt.Sprintf("%s,%d,%d", set.Tasks[su.TaskIndex].Name, su.InstanceNumber, su.SubIndex)
}

// MaxSubInstances returns the largest number of pieces any instance has.
func (s *Schedule) MaxSubInstances() int {
	m := 0
	for _, ps := range s.ByInstance {
		if len(ps) > m {
			m = len(ps)
		}
	}
	return m
}

// Validate checks the structural invariants the rest of the system relies
// on; it is called by tests and by the core scheduler in debug paths.
func (s *Schedule) Validate() error {
	if len(s.Subs) == 0 {
		return fmt.Errorf("preempt: schedule has no sub-instances")
	}
	prevStart := -1.0
	for i, su := range s.Subs {
		if su.SegStart < su.Release-1e-9 || su.SegEnd > su.Deadline+1e-9 {
			return fmt.Errorf("preempt: sub %d segment [%g,%g] escapes window [%g,%g]",
				i, su.SegStart, su.SegEnd, su.Release, su.Deadline)
		}
		if su.SegEnd <= su.SegStart {
			return fmt.Errorf("preempt: sub %d has empty segment [%g,%g]", i, su.SegStart, su.SegEnd)
		}
		if su.SegStart < prevStart {
			return fmt.Errorf("preempt: total order violated at position %d", i)
		}
		prevStart = su.SegStart
	}
	for idx, positions := range s.ByInstance {
		if len(positions) == 0 {
			return fmt.Errorf("preempt: instance %d has no sub-instances", idx)
		}
		for k := 1; k < len(positions); k++ {
			if positions[k] <= positions[k-1] {
				return fmt.Errorf("preempt: instance %d pieces out of order", idx)
			}
			a := s.Subs[positions[k-1]]
			b := s.Subs[positions[k]]
			if b.SegStart < a.SegEnd-1e-9 {
				return fmt.Errorf("preempt: instance %d pieces overlap (%g < %g)",
					idx, b.SegStart, a.SegEnd)
			}
		}
	}
	return nil
}
