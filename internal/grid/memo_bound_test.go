package grid

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/task"
)

// boundSets returns several distinct small task sets so each occupies its own
// cache key.
func boundSets(t *testing.T, n int) []*task.Set {
	t.Helper()
	sets := make([]*task.Set, n)
	for i := range sets {
		set, err := task.NewSet([]task.Task{
			{Name: "a", Period: 10, WCEC: 3 + 0.25*float64(i), ACEC: 2, BCEC: 1, Ceff: 1},
			{Name: "b", Period: 20, WCEC: 5, ACEC: 3, BCEC: 2, Ceff: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		sets[i] = set
	}
	return sets
}

// scheduleSignature renders the result-bearing vectors of a schedule; two
// builds of the same (set, config) must produce equal signatures whether they
// came from a fresh solve, an unbounded cache, or a cache that evicted and
// re-solved in between.
func scheduleSignature(s *core.Schedule) string {
	return fmt.Sprintf("%v|%v|%v|%g", s.End, s.WCWork, s.AvgWork, s.Energy)
}

// TestBoundedMemoEvictionIdentity is the cache-on/off/evicting byte-identity
// regression: a memo under heavy eviction pressure must change hit rates
// only, never results.
func TestBoundedMemoEvictionIdentity(t *testing.T) {
	sets := boundSets(t, 4)
	cfg := core.Config{Objective: core.AverageCase}

	build := func(r *Runner) []string {
		var sigs []string
		// Two passes so the evicting memo re-solves keys it already dropped.
		for pass := 0; pass < 2; pass++ {
			for _, set := range sets {
				s, err := r.BuildSchedule(set, cfg)
				if err != nil {
					t.Fatal(err)
				}
				sigs = append(sigs, scheduleSignature(s))
			}
		}
		return sigs
	}

	nocache := build(New(1, nil))
	unbounded := build(New(1, NewMemo()))
	evicting := New(1, NewBoundedMemo(1)) // cap below any entry: every build evicts
	evicted := build(evicting)

	if !reflect.DeepEqual(nocache, unbounded) {
		t.Error("unbounded memo changed results vs no cache")
	}
	if !reflect.DeepEqual(nocache, evicted) {
		t.Error("evicting memo changed results vs no cache")
	}
	st := evicting.Memo().Stats()
	if st.Evictions == 0 {
		t.Error("cap of 1 byte produced no evictions")
	}
	if st.ScheduleHits != 0 {
		t.Errorf("cap of 1 byte still produced %d hits", st.ScheduleHits)
	}
	if st.BytesUsed != 0 {
		t.Errorf("evict-everything memo reports %d resident bytes", st.BytesUsed)
	}
}

// TestBoundedMemoLRUOrder pins the eviction policy: touching an entry
// protects it, the coldest entry goes first.
func TestBoundedMemoLRUOrder(t *testing.T) {
	sets := boundSets(t, 3)
	cfg := core.Config{Objective: core.WorstCase}

	// Measure the real per-entry cost on an unbounded memo first, so the
	// bounded cap can hold exactly two entries regardless of the estimator's
	// constants.
	probe := NewMemo()
	pr := New(1, probe)
	for _, set := range sets[:2] {
		if _, err := pr.BuildSchedule(set, cfg); err != nil {
			t.Fatal(err)
		}
	}
	capBytes := probe.Stats().BytesUsed

	memo := NewBoundedMemo(capBytes)
	r := New(1, memo)
	mustBuild := func(i int) {
		t.Helper()
		if _, err := r.BuildSchedule(sets[i], cfg); err != nil {
			t.Fatal(err)
		}
	}
	mustBuild(0) // A resident
	mustBuild(1) // B resident
	mustBuild(0) // touch A: B is now coldest
	mustBuild(2) // C evicts B
	st := memo.Stats()
	if st.Evictions != 1 {
		t.Fatalf("want exactly 1 eviction after overflow, got %d", st.Evictions)
	}
	mustBuild(0) // A must still be resident
	if got := memo.Stats(); got.ScheduleHits != st.ScheduleHits+1 {
		t.Error("A was evicted despite being most recently used")
	}
	mustBuild(1) // B must have been the victim
	if got := memo.Stats(); got.ScheduleMisses != st.ScheduleMisses+1 {
		t.Error("B unexpectedly still resident: eviction did not pick the LRU entry")
	}
}

// TestMemoWaiterRetriesAfterForeignCancellation: a live requester whose
// singleflight entry fails with another requester's cancellation must retry
// against a fresh entry rather than surface the foreign error — one client
// disconnecting cannot fail another's request. A requester whose *own*
// context is dead keeps the error (no retry loop on a dead caller).
func TestMemoWaiterRetriesAfterForeignCancellation(t *testing.T) {
	memo := NewMemo()
	want := &core.Schedule{}
	calls := 0
	build := func() (*core.Schedule, error) {
		calls++
		if calls == 1 {
			// As if the joined context of the entry's original requesters
			// fired mid-build.
			return nil, context.Canceled
		}
		return want, nil
	}
	s, err := memo.schedule(context.Background(), Key{1}, build)
	if err != nil || s != want {
		t.Fatalf("live requester must retry past a foreign cancellation: %v, %v", s, err)
	}
	if calls != 2 {
		t.Fatalf("want exactly one retry, got %d build calls", calls)
	}

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	calls = 0
	if _, err := memo.schedule(dead, Key{2}, build); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead requester keeps the cancellation: got %v", err)
	}
	if calls != 1 {
		t.Fatalf("dead requester must not retry, got %d build calls", calls)
	}
}

// TestMemoPlanWaiterRetriesAfterForeignCancellation is the plan-side mirror
// of the schedule-side retry regression: the compiled-plan path shares the
// identical requester-context contract, so a waiter on a plan build torn down
// by another caller's cancellation retries instead of surfacing the foreign
// error, while a requester whose own context is dead keeps it.
func TestMemoPlanWaiterRetriesAfterForeignCancellation(t *testing.T) {
	memo := NewMemo()
	want := &sim.CompiledPlan{}
	calls := 0
	build := func() (*sim.CompiledPlan, error) {
		calls++
		if calls == 1 {
			// As if the joined context of the entry's original requesters
			// fired mid-build.
			return nil, context.Canceled
		}
		return want, nil
	}
	p, err := memo.plan(context.Background(), Key{1}, build)
	if err != nil || p != want {
		t.Fatalf("live requester must retry past a foreign cancellation: %v, %v", p, err)
	}
	if calls != 2 {
		t.Fatalf("want exactly one retry, got %d build calls", calls)
	}

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	calls = 0
	if _, err := memo.plan(dead, Key{2}, build); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead requester keeps the cancellation: got %v", err)
	}
	if calls != 1 {
		t.Fatalf("dead requester must not retry, got %d build calls", calls)
	}
	// The canceled attempt must not have poisoned the key: the next live
	// requester rebuilds and caches.
	if p, err := memo.plan(context.Background(), Key{2}, build); err != nil || p != want {
		t.Fatalf("canceled plan build poisoned the key: %v, %v", p, err)
	}
}

// TestMemoDoesNotCacheCanceledBuilds: a build that failed because its caller
// went away must not poison the key for the next caller.
func TestMemoDoesNotCacheCanceledBuilds(t *testing.T) {
	set := testSet(t)
	memo := NewMemo()
	r := New(1, memo)
	cfg := core.Config{Objective: core.AverageCase}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.BuildScheduleContext(ctx, set, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from a canceled build, got %v", err)
	}
	s, err := r.BuildScheduleContext(context.Background(), set, cfg)
	if err != nil {
		t.Fatalf("canceled build poisoned the cache: %v", err)
	}
	if s == nil {
		t.Fatal("no schedule after retry")
	}
	st := memo.Stats()
	if st.ScheduleMisses != 2 {
		t.Errorf("want 2 misses (canceled entry dropped, then rebuilt), got %d", st.ScheduleMisses)
	}
}
