package grid

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/task"
)

// Key is the 256-bit content address of a cacheable artefact: the SHA-256 of
// a canonical byte encoding of everything the artefact is a pure function
// of. Equal keys mean equal inputs (collisions are cryptographically
// negligible), so a memo hit may return the cached artefact verbatim.
type Key [sha256.Size]byte

// String renders the key as lowercase hex — the wire form internal/server
// uses as a schedule fingerprint.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// hasher accumulates the canonical encoding. Every primitive is written as
// fixed-width little-endian bytes (floats by their IEEE-754 bit pattern, so
// the encoding is exact, not a decimal rendering); strings and slices are
// length-prefixed so adjacent fields cannot alias.
type hasher struct {
	h   hash.Hash
	buf [8]byte
}

func newHasher() *hasher { return &hasher{h: sha256.New()} }

func (h *hasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(h.buf[:], v)
	h.h.Write(h.buf[:])
}

func (h *hasher) i64(v int64)   { h.u64(uint64(v)) }
func (h *hasher) f64(v float64) { h.u64(math.Float64bits(v)) }

func (h *hasher) flag(v bool) {
	var b uint64
	if v {
		b = 1
	}
	h.u64(b)
}

func (h *hasher) str(s string) {
	h.u64(uint64(len(s)))
	io.WriteString(h.h, s)
}

func (h *hasher) f64s(xs []float64) {
	h.u64(uint64(len(xs)))
	for _, x := range xs {
		h.f64(x)
	}
}

func (h *hasher) sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

// taskSet writes the full task-set fingerprint: every field that influences
// the preemptive expansion, the solver, or the workload distributions.
func (h *hasher) taskSet(set *task.Set) {
	h.str("set")
	h.u64(uint64(len(set.Tasks)))
	for i := range set.Tasks {
		t := &set.Tasks[i]
		h.str(t.Name)
		h.i64(t.Period)
		h.f64(t.WCEC)
		h.f64(t.ACEC)
		h.f64(t.BCEC)
		h.f64(t.Ceff)
	}
}

// model writes the processor-model identity: the concrete type plus every
// parameter. It reports false for model implementations it does not know,
// which makes the enclosing key non-cacheable (the caller then solves
// directly — correct, just unmemoized). nil hashes as the default model,
// matching core.Config's defaulting.
func (h *hasher) model(m power.Model) bool {
	if m == nil {
		m = power.DefaultModel()
	}
	switch mm := m.(type) {
	case *power.SimpleInverse:
		h.str("model:simpleinverse")
		h.f64(mm.K)
		h.f64(mm.Vmin)
		h.f64(mm.Vmax)
		return true
	case *power.Alpha:
		h.str("model:alpha")
		h.f64(mm.K)
		h.f64(mm.Vt)
		h.f64(mm.Aexp)
		h.f64(mm.Vmin)
		h.f64(mm.Vmax)
		return true
	case *power.Discrete:
		h.str("model:discrete")
		if !h.model(mm.Base()) {
			return false
		}
		h.f64s(mm.Levels())
		return true
	default:
		return false
	}
}

// schedule writes the full content of a solved schedule: everything
// sim.Compile (and a WarmStart consumer) reads — the task set, the model,
// the plan's sub-instance structure, and the solved End/WCWork vectors.
func (h *hasher) schedule(s *core.Schedule) bool {
	h.str("sched")
	h.taskSet(s.Plan.Set)
	if !h.model(s.Model) {
		return false
	}
	h.u64(uint64(s.Objective))
	h.u64(uint64(len(s.Plan.Subs)))
	for i := range s.Plan.Subs {
		su := &s.Plan.Subs[i]
		h.i64(int64(su.TaskIndex))
		h.i64(int64(su.InstanceIndex))
		h.f64(su.Release)
		h.f64(su.Deadline)
	}
	h.f64s(s.End)
	h.f64s(s.WCWork)
	return true
}

// ScheduleKey returns the content address of core.Build(set, cfg) — the
// cache-key contract DESIGN.md §6 documents. The key covers the task-set
// fingerprint, the model identity, and exactly the core.Config fields a
// solve is a function of: Objective, MaxSweeps, Tol, NoSplitOpt, InitBlend,
// LineTolMs, Preempt (MaxSubsPerInstance, EDF), Scenarios, ScenarioSeed,
// Starts, StartSeed (dormant seeds — ScenarioSeed without Scenarios,
// StartSeed without multi-start — are zeroed so they cannot split keys),
// and the WarmStart schedule's full content. Excluded by
// design: StartWorkers (wall-clock only, never the result — pinned by the
// solver's determinism contract) and OptimizeSplits (derived from NoSplitOpt
// by the solver's defaulting). Defaulted fields are resolved through
// core.Config.Canonical first, so a zero config and an explicitly-defaulted
// one share a key. ok is false when the config cannot be canonically encoded
// (an unknown model implementation); callers then bypass the memo.
func ScheduleKey(set *task.Set, cfg core.Config) (Key, bool) {
	c := cfg.Canonical()
	h := newHasher()
	h.str("schedule/v1")
	h.taskSet(set)
	if !h.model(c.Model) {
		return Key{}, false
	}
	h.u64(uint64(c.Objective))
	h.i64(int64(c.MaxSweeps))
	h.f64(c.Tol)
	h.flag(c.NoSplitOpt)
	h.f64(c.InitBlend)
	h.f64(c.LineTolMs)
	h.i64(int64(c.Preempt.MaxSubsPerInstance))
	h.flag(c.Preempt.EDF)
	// Scenario draws only exist when Scenarios > 0; a dormant ScenarioSeed
	// must not split keys.
	scenarios, scenarioSeed := c.Scenarios, c.ScenarioSeed
	if scenarios <= 0 {
		scenarios, scenarioSeed = 0, 0
	}
	h.i64(int64(scenarios))
	h.u64(scenarioSeed)
	// Starts 0 and 1 are both the single-start solver, which never reads
	// StartSeed — zero it while dormant so it cannot split keys.
	starts, startSeed := c.Starts, c.StartSeed
	if starts <= 1 {
		starts, startSeed = 1, 0
	}
	h.i64(int64(starts))
	h.u64(startSeed)
	if c.WarmStart != nil {
		h.str("warm")
		if !h.schedule(c.WarmStart) {
			return Key{}, false
		}
	}
	return h.sum(), true
}

// PlanKey returns the content address of sim.Compile(s): the schedule's full
// content. ok is false when the schedule's model cannot be canonically
// encoded.
func PlanKey(s *core.Schedule) (Key, bool) {
	if s == nil || s.Plan == nil || s.Plan.Set == nil {
		return Key{}, false
	}
	h := newHasher()
	h.str("plan/v1")
	if !h.schedule(s) {
		return Key{}, false
	}
	return h.sum(), true
}
