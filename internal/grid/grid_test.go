package grid

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/preempt"
	"repro/internal/sim"
	"repro/internal/task"
)

func testSet(t testing.TB) *task.Set {
	t.Helper()
	set, err := task.NewSet([]task.Task{
		{Name: "a", Period: 10, WCEC: 4, ACEC: 2, BCEC: 1, Ceff: 1},
		{Name: "b", Period: 20, WCEC: 6, ACEC: 3, BCEC: 2, Ceff: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestForEachRunsEveryJobOnceBounded(t *testing.T) {
	r := New(4, nil)
	const n = 100
	var ran [n]atomic.Int32
	var active, peak atomic.Int32
	r.ForEach(n, func(i int) {
		if a := active.Add(1); a > peak.Load() {
			peak.Store(a)
		}
		ran[i].Add(1)
		active.Add(-1)
	})
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("job %d ran %d times", i, got)
		}
	}
	if p := peak.Load(); p > 4 {
		t.Errorf("peak concurrency %d exceeds pool width 4", p)
	}
}

func TestCollectOrdersResultsByIndex(t *testing.T) {
	r := New(8, nil)
	out := Collect(r, 50, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d holds %d, want %d", i, v, i*i)
		}
	}
}

func TestCollectErrFailsFast(t *testing.T) {
	r := New(2, nil)
	var started atomic.Int32
	_, err := CollectErr(r, 1000, func(i int) (int, error) {
		started.Add(1)
		if i == 3 {
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	// After the failure the dispatcher stops handing out indices; only the
	// jobs already in flight may still have run.
	if n := started.Load(); n == 1000 {
		t.Error("all jobs ran to completion despite an early failure")
	}

	// Success path: every result present, in order.
	out, err := CollectErr(r, 20, func(i int) (int, error) { return i * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("slot %d holds %d", i, v)
		}
	}
}

func TestScheduleKeyContract(t *testing.T) {
	set := testSet(t)
	base := core.Config{Objective: core.AverageCase}
	k0, ok := ScheduleKey(set, base)
	if !ok {
		t.Fatal("base config not hashable")
	}

	// Equal configs share a key.
	if k1, _ := ScheduleKey(set, base); k1 != k0 {
		t.Error("equal configs produced different keys")
	}

	// Defaulted and explicit forms share a key.
	explicit := base
	explicit.Model = power.DefaultModel()
	explicit.MaxSweeps = 100
	explicit.Tol = 1e-6
	explicit.InitBlend = 0.7
	explicit.LineTolMs = 1e-4
	explicit.StartSeed = 2005
	if k1, _ := ScheduleKey(set, explicit); k1 != k0 {
		t.Error("explicitly-defaulted config keys apart from the zero config")
	}

	// Result-irrelevant knobs are excluded: StartWorkers, Starts 0 vs 1,
	// ScenarioSeed while Scenarios == 0, StartSeed while Starts <= 1.
	for name, cfg := range map[string]core.Config{
		"StartWorkers":         {Objective: core.AverageCase, StartWorkers: 7},
		"Starts=1":             {Objective: core.AverageCase, Starts: 1},
		"dormant ScenarioSeed": {Objective: core.AverageCase, ScenarioSeed: 99},
		"dormant StartSeed":    {Objective: core.AverageCase, StartSeed: 77},
	} {
		if k1, _ := ScheduleKey(set, cfg); k1 != k0 {
			t.Errorf("%s changed the key but cannot change the solve", name)
		}
	}

	// Result-relevant fields split keys.
	diff := map[string]core.Config{
		"Objective":  {Objective: core.WorstCase},
		"MaxSweeps":  {Objective: core.AverageCase, MaxSweeps: 7},
		"Tol":        {Objective: core.AverageCase, Tol: 1e-3},
		"NoSplitOpt": {Objective: core.AverageCase, NoSplitOpt: true},
		"InitBlend":  {Objective: core.AverageCase, InitBlend: 0.3},
		"LineTolMs":  {Objective: core.AverageCase, LineTolMs: 1e-2},
		"Preempt":    {Objective: core.AverageCase, Preempt: preempt.Options{MaxSubsPerInstance: 2}},
		"Scenarios":  {Objective: core.AverageCase, Scenarios: 5},
		"Starts":     {Objective: core.AverageCase, Starts: 3},
		"StartSeed":  {Objective: core.AverageCase, Starts: 3, StartSeed: 77},
	}
	seen := map[Key]string{k0: "base"}
	for name, cfg := range diff {
		k, ok := ScheduleKey(set, cfg)
		if !ok {
			t.Fatalf("%s config not hashable", name)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("%s config collides with %s", name, prev)
		}
		seen[k] = name
	}

	// A different task set splits the key.
	set2, err := set.WithRatio(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if k1, _ := ScheduleKey(set2, base); k1 == k0 {
		t.Error("different task sets share a key")
	}

	// An unknown model implementation is not cacheable.
	if _, ok := ScheduleKey(set, core.Config{Model: unknownModel{}}); ok {
		t.Error("unknown model hashed as cacheable")
	}
}

type unknownModel struct{}

func (unknownModel) CycleTime(v float64) float64            { return 1 / v }
func (unknownModel) VoltageForCycleTime(tc float64) float64 { return 1 / tc }
func (unknownModel) VMin() float64                          { return 0.5 }
func (unknownModel) VMax() float64                          { return 2 }

// TestConfigFieldsGuard pins the field sets the cache key contract was
// written against. If this test fails, a field was added to core.Config,
// preempt.Options, or task.Task: decide whether it affects solve results,
// extend ScheduleKey (and DESIGN.md §6) accordingly, then update the lists.
func TestConfigFieldsGuard(t *testing.T) {
	want := map[string][]string{
		// ctx is excluded from ScheduleKey by design: it scopes the work
		// (cancellation), never the result, and cancelled builds are not
		// cached at all.
		"core.Config": {"Model", "Objective", "MaxSweeps", "Tol", "OptimizeSplits",
			"NoSplitOpt", "InitBlend", "LineTolMs", "Preempt", "WarmStart",
			"Scenarios", "ScenarioSeed", "Starts", "StartWorkers", "StartSeed", "ctx"},
		"preempt.Options": {"MaxSubsPerInstance", "EDF"},
		"task.Task":       {"Name", "Period", "WCEC", "ACEC", "BCEC", "Ceff"},
		// sim.Config is guarded even though simulation results are never
		// memoized (PlanKey covers only what sim.Compile reads — the
		// schedule's content). The memoization hazard is indirect: the
		// feedback subsystem's adaptive re-solves are keyed through
		// ScheduleKey on the *adapted task set* (ACEC moves, WCEC/BCEC do
		// not), so any new sim.Config field that influenced solve inputs
		// would have to be routed into the task set or core.Config — never
		// smuggled through simulation state. Workers/Ctx are wall-clock
		// scoped; Observer never perturbs draws (pinned by
		// TestObserverOrderAndNonPerturbation); reference is test-only.
		"sim.Config": {"Policy", "Hyperperiods", "Seed", "Overhead", "Dist",
			"Workers", "Ctx", "Observer", "reference"},
	}
	types := map[string]reflect.Type{
		"core.Config":     reflect.TypeOf(core.Config{}),
		"preempt.Options": reflect.TypeOf(preempt.Options{}),
		"task.Task":       reflect.TypeOf(task.Task{}),
		"sim.Config":      reflect.TypeOf(sim.Config{}),
	}
	for name, typ := range types {
		var got []string
		for i := 0; i < typ.NumField(); i++ {
			got = append(got, typ.Field(i).Name)
		}
		if !reflect.DeepEqual(got, want[name]) {
			t.Errorf("%s fields changed: got %v, want %v — revisit ScheduleKey before updating",
				name, got, want[name])
		}
	}
}

func TestMemoScheduleHitAndMiss(t *testing.T) {
	set := testSet(t)
	memo := NewMemo()
	r := New(2, memo)

	cfg := core.Config{Objective: core.AverageCase}
	s1, err := r.BuildSchedule(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.BuildSchedule(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("cache hit returned a different schedule for equal configs")
	}
	if st := memo.Stats(); st.ScheduleHits != 1 || st.ScheduleMisses != 1 {
		t.Errorf("stats after hit: %+v, want 1 hit 1 miss", st)
	}

	other := cfg
	other.Tol = 1e-3
	s3, err := r.BuildSchedule(set, other)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Error("differing configs shared a cache entry")
	}
	if st := memo.Stats(); st.ScheduleMisses != 2 {
		t.Errorf("stats after differing config: %+v, want 2 misses", st)
	}

	// Cache off (nil memo): fresh solves, equal content.
	bare := New(2, nil)
	s4, err := bare.BuildSchedule(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s4 == s1 {
		t.Error("nil-memo runner returned a cached pointer")
	}
	if !reflect.DeepEqual(s4.End, s1.End) || !reflect.DeepEqual(s4.WCWork, s1.WCWork) {
		t.Error("uncached solve differs from cached solve: solve is not pure")
	}
}

func TestMemoPlanHitAndSingleflight(t *testing.T) {
	set := testSet(t)
	memo := NewMemo()
	r := New(4, memo)
	s, err := r.BuildSchedule(set, core.Config{Objective: core.WorstCase})
	if err != nil {
		t.Fatal(err)
	}

	p1, err := r.CompileSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.CompileSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("plan cache hit returned a different plan")
	}

	// Concurrent requests for one uncached key build exactly once.
	memo2 := NewMemo()
	r2 := New(8, memo2)
	var wg sync.WaitGroup
	got := make([]*core.Schedule, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], _ = r2.BuildSchedule(set, core.Config{Objective: core.AverageCase})
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent builds for one key returned distinct schedules")
		}
	}
	if st := memo2.Stats(); st.ScheduleMisses != 1 {
		t.Errorf("concurrent singleflight built %d times", st.ScheduleMisses)
	}
}
