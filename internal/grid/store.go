package grid

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sim"
)

// Store is the residency backend behind a Memo: a passive keyed store for
// solved schedules and compiled plans, addressed by their canonical content
// hash. A Store holds completed artefacts only — the singleflight contract
// ("one build per key, canceled builds never cached, waiters retry under
// their own context") lives one level up in Memo, so every backend inherits
// it for free.
//
// The contract a backend must honour (DESIGN.md §9):
//
//   - Determinism. Keys are content addresses: a Get hit must return an
//     artefact content-equal to what any rebuild of the key would produce.
//     Backends may therefore drop entries at any time (eviction, a torn disk
//     record, a missing tier) — losing an entry changes hit rates, never
//     results.
//   - Cached failures. A Put may carry a non-nil error instead of a value:
//     builds are pure, so a failed key fails identically every time, and
//     caching the failure is an optimization. Backends are free to drop
//     errors instead of storing them (the disk backend does); Memo never
//     forwards cancellation errors to a Put at all.
//   - Idempotence. Puts for an already-resident key may be ignored: equal
//     keys imply equal content, so there is nothing to replace.
//
// All methods must be safe for concurrent use.
type Store interface {
	// GetSchedule returns the resident schedule (or cached build error) for
	// key. ok reports residency; a hit with a non-nil error is a cached
	// failure.
	GetSchedule(key Key) (s *core.Schedule, err error, ok bool)
	// PutSchedule makes a completed build resident. err is nil for a value,
	// non-nil for a cacheable failure (never a cancellation).
	PutSchedule(key Key, s *core.Schedule, err error)
	// GetPlan and PutPlan are the compiled-plan side. Backends that cannot
	// persist plans (they are pure functions of schedules and are recompiled
	// on demand) report every GetPlan as a miss and ignore PutPlan.
	GetPlan(key Key) (p *sim.CompiledPlan, err error, ok bool)
	PutPlan(key Key, p *sim.CompiledPlan, err error)
	// Stats reports the backend's accounting. Hit/miss counters for the
	// request stream are owned by Memo; a backend fills only the fields it is
	// authoritative for (eviction/byte accounting for the memory tier, disk
	// occupancy and recovery counters for the disk tier).
	Stats() Stats
}

// MemStore is the in-memory Store: entries kept in least-recently-used order
// and charged an estimated byte cost, evicted from the cold end whenever the
// resident total exceeds the cap. Eviction removes only the store's reference
// — callers already holding an evicted schedule or plan keep a valid
// immutable value — and never changes results, only hit rates: builds are
// pure functions of their key, so a re-miss rebuilds the identical artefact
// (pinned by TestBoundedMemoEvictionIdentity).
type MemStore struct {
	mu        sync.Mutex
	schedules map[Key]*memEntry[*core.Schedule]
	plans     map[Key]*memEntry[*sim.CompiledPlan]
	capBytes  int64 // <= 0: unbounded
	usedBytes int64
	lru       list.List // of *lruItem; front = most recently used
	evictions atomic.Int64
}

// memEntry is one resident artefact (or cached build failure).
type memEntry[T any] struct {
	val  T
	err  error
	elem *list.Element
}

// lruItem is one resident entry's seat in the eviction order.
type lruItem struct {
	key   Key
	plan  bool // which map the key lives in
	bytes int64
}

// NewMemStore returns an empty in-memory store. A non-positive capBytes means
// unbounded — right for a batch regeneration, whose working set is known and
// finite; a resident daemon should bound it.
func NewMemStore(capBytes int64) *MemStore {
	return &MemStore{
		schedules: make(map[Key]*memEntry[*core.Schedule]),
		plans:     make(map[Key]*memEntry[*sim.CompiledPlan]),
		capBytes:  capBytes,
	}
}

// GetSchedule implements Store; a hit refreshes the entry's LRU seat.
func (m *MemStore) GetSchedule(key Key) (*core.Schedule, error, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.schedules[key]
	if !ok {
		return nil, nil, false
	}
	m.lru.MoveToFront(e.elem)
	return e.val, e.err, true
}

// PutSchedule implements Store. A duplicate put refreshes the LRU seat and
// keeps the resident entry (equal keys imply equal content).
func (m *MemStore) PutSchedule(key Key, s *core.Schedule, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.schedules[key]; ok {
		m.lru.MoveToFront(e.elem)
		return
	}
	e := &memEntry[*core.Schedule]{val: s, err: err}
	e.elem = m.lru.PushFront(&lruItem{key: key, bytes: scheduleBytes(s)})
	m.schedules[key] = e
	m.usedBytes += e.elem.Value.(*lruItem).bytes
	m.evict()
}

// GetPlan implements Store.
func (m *MemStore) GetPlan(key Key) (*sim.CompiledPlan, error, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.plans[key]
	if !ok {
		return nil, nil, false
	}
	m.lru.MoveToFront(e.elem)
	return e.val, e.err, true
}

// PutPlan implements Store.
func (m *MemStore) PutPlan(key Key, p *sim.CompiledPlan, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.plans[key]; ok {
		m.lru.MoveToFront(e.elem)
		return
	}
	e := &memEntry[*sim.CompiledPlan]{val: p, err: err}
	e.elem = m.lru.PushFront(&lruItem{key: key, plan: true, bytes: planBytes(p)})
	m.plans[key] = e
	m.usedBytes += e.elem.Value.(*lruItem).bytes
	m.evict()
}

// evict drops cold entries until the resident total fits the cap. Called with
// m.mu held.
func (m *MemStore) evict() {
	if m.capBytes <= 0 {
		return
	}
	for m.usedBytes > m.capBytes {
		back := m.lru.Back()
		if back == nil {
			return
		}
		it := back.Value.(*lruItem)
		m.lru.Remove(back)
		m.usedBytes -= it.bytes
		if it.plan {
			delete(m.plans, it.key)
		} else {
			delete(m.schedules, it.key)
		}
		m.evictions.Add(1)
	}
}

// Stats implements Store: the memory tier owns eviction and byte accounting.
func (m *MemStore) Stats() Stats {
	m.mu.Lock()
	used, capB := m.usedBytes, m.capBytes
	m.mu.Unlock()
	return Stats{
		Evictions: m.evictions.Load(),
		BytesUsed: used,
		BytesCap:  capB,
	}
}

// scheduleBytes estimates the resident cost of a cached schedule: the solved
// vectors, the derived average workloads, and the preemptive plan it pins
// (sub-instances, instances, per-instance position lists). The estimate is
// for eviction accounting only — it need not be exact, just proportional.
func scheduleBytes(s *core.Schedule) int64 {
	const entryOverhead = 512 // entry, map slot, LRU seat, struct headers
	if s == nil || s.Plan == nil {
		return entryOverhead
	}
	n := int64(len(s.Plan.Subs))
	inst := int64(len(s.Plan.Instances))
	return entryOverhead +
		n*(3*8+64) + // End/WCWork/AvgWork + preempt.Sub
		inst*(32+8) // instance records + ByInstance positions
}

// planBytes estimates the resident cost of a cached compiled plan: eleven
// per-piece float/index columns plus three per-instance parameter columns.
func planBytes(p *sim.CompiledPlan) int64 {
	const entryOverhead = 512
	if p == nil {
		return entryOverhead
	}
	return entryOverhead + int64(p.Pieces())*(10*8+4) + int64(p.Instances())*3*8
}
