// Package grid is the deterministic execution engine of the experiment
// suite (DESIGN.md §6). It supplies two things the harnesses in
// internal/experiments are built on:
//
//   - A bounded worker pool (Runner.ForEach) that drains flat, index-addressed
//     jobs: every (experiment, cell, task-set) coordinate becomes one job, so
//     a slow cell's tail no longer idles the host while the next cell waits
//     behind a barrier, and serial set loops parallelise for free. Workers are
//     long-lived goroutines pulling indices from a channel; results land in
//     caller-owned per-index slots and are folded in index order, so every
//     figure and table is bit-identical for any worker count.
//
//   - A content-addressed memo store (Memo) keyed by the canonical hash of
//     (task-set fingerprint, solver config, processor-model identity) that
//     caches solved core.Schedules and compiled sim plans. Solves are pure
//     functions of their config (see internal/experiments' package doc), so
//     harnesses that derive the same task set and vary only a runtime
//     parameter — slack policy, transition overhead, discrete levels — share
//     one WCS/ACS solve instead of re-running it.
//
// Cached schedules and plans are shared across callers and must be treated
// as immutable; callers that need to mutate one must core.CloneSchedule it
// first (the discrete-level ablation does exactly that).
package grid

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/task"
)

// Runner executes flat jobs on a bounded pool and routes schedule solves and
// plan compilations through an optional shared memo store. The zero value is
// not useful; construct with New.
type Runner struct {
	workers int
	memo    *Memo
}

// New returns a Runner with the given pool width (<= 0 selects GOMAXPROCS)
// and memo store. A nil memo disables caching: every Build/Compile call runs
// from scratch, which is semantically identical (and what the determinism
// regression test pins).
func New(workers int, memo *Memo) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, memo: memo}
}

// Workers returns the pool width.
func (r *Runner) Workers() int { return r.workers }

// Memo returns the memo store, or nil when caching is disabled.
func (r *Runner) Memo() *Memo { return r.memo }

// ForEach runs fn(i) for every i in [0, n) on the runner's pool: Workers
// long-lived goroutines pull indices from a channel until it drains. fn must
// communicate results through index-addressed storage (one slot per job).
// Nested calls are safe — each invocation owns its goroutines and index
// channel, so a job may fan out a sub-problem (the partition driver solves
// per-core schedules from inside a dispatcher job this way); note the
// concurrency of nested levels multiplies, the worker bound is per call, not
// per runner. Because job identity is the index — never the goroutine or
// completion order — any observable output assembled from the slots in index
// order is independent of the worker count.
func (r *Runner) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := r.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// Collect runs fn for every index on the pool and returns the results in
// index order — the in-order fan-in all deterministic harnesses use.
func Collect[T any](r *Runner, n int, fn func(i int) T) []T {
	out := make([]T, n)
	r.ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}

// CollectErr is Collect for fallible jobs with fail-fast dispatch: after any
// job fails, indices not yet started are skipped (their result slots stay
// zero), restoring the short-circuit the serial loops this replaces had. The
// returned error is the recorded failure with the lowest index — on success
// results are bit-deterministic as ever; on failure *which* error surfaces
// may vary with the worker count (only error paths race the cutoff).
func CollectErr[T any](r *Runner, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	var failed atomic.Bool
	r.ForEach(n, func(i int) {
		if failed.Load() {
			return
		}
		var err error
		out[i], err = fn(i)
		if err != nil {
			errs[i] = err
			failed.Store(true)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// BuildSchedule solves the static schedule for (set, cfg) through the memo:
// an equal (task set, config, model) triple returns the cached schedule
// without re-solving. Configs the hasher cannot canonically encode (an
// unknown power.Model implementation) and runners without a memo fall back
// to a direct solve. The returned schedule may be shared — treat it as
// immutable.
func (r *Runner) BuildSchedule(set *task.Set, cfg core.Config) (*core.Schedule, error) {
	return r.BuildScheduleContext(context.Background(), set, cfg)
}

// BuildScheduleContext is BuildSchedule with early cancellation: the solve
// aborts between coordinate-descent sweeps once ctx is done and returns
// ctx's error. A cancelled build is never cached (the memo drops it), so an
// abandoned request cannot poison the key for later callers. ctx does not
// enter the cache key — it scopes the work, never the result.
func (r *Runner) BuildScheduleContext(ctx context.Context, set *task.Set, cfg core.Config) (*core.Schedule, error) {
	if r.memo == nil {
		return core.BuildContext(ctx, set, cfg)
	}
	key, ok := ScheduleKey(set, cfg)
	if !ok {
		return core.BuildContext(ctx, set, cfg)
	}
	return r.memo.schedule(ctx, key, func() (*core.Schedule, error) {
		return core.BuildContext(ctx, set, cfg)
	})
}

// CompileSchedule flattens s for the online engine through the memo, keyed
// by the schedule's full content (everything sim.Compile reads), so repeated
// compilations of equal schedules — across ablations, policies, seeds —
// share one plan. The returned plan is immutable by construction.
func (r *Runner) CompileSchedule(s *core.Schedule) (*sim.CompiledPlan, error) {
	return r.CompileScheduleContext(context.Background(), s)
}

// CompileScheduleContext is CompileSchedule carrying the requester's context
// into the memo's singleflight layer: a waiter on a plan build torn down by
// another caller's cancellation retries under its own context, exactly like
// the schedule side. (Compilation itself is not cancelable — it is cheap and
// allocation-bound — so ctx scopes only the waiting semantics.)
func (r *Runner) CompileScheduleContext(ctx context.Context, s *core.Schedule) (*sim.CompiledPlan, error) {
	if r.memo == nil {
		return sim.Compile(s)
	}
	key, ok := PlanKey(s)
	if !ok {
		return sim.Compile(s)
	}
	return r.memo.plan(ctx, key, func() (*sim.CompiledPlan, error) {
		return sim.Compile(s)
	})
}
