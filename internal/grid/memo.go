package grid

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sim"
)

// Memo is the content-addressed store behind a Runner: solved schedules and
// compiled plans keyed by their canonical content hash. It is safe for
// concurrent use; concurrent requests for the same key are collapsed into
// one build (singleflight), so a worker pool hammering one cell pays for one
// solve while the rest wait for it.
//
// Capacity: a Memo constructed with NewMemo is unbounded — right for a batch
// regeneration, whose working set is known and finite. A resident daemon
// (cmd/schedd) must instead bound the store with NewBoundedMemo: entries are
// charged an estimated byte cost when their build completes, kept in
// least-recently-used order, and evicted from the cold end whenever the
// resident total exceeds the cap. Eviction removes only the store's
// reference — callers already holding an evicted schedule or plan keep a
// valid immutable value — and never changes results, only hit rates: builds
// are pure functions of their key, so a re-miss rebuilds the identical
// artefact (pinned by TestBoundedMemoEvictionIdentity).
//
// Errors are cached alongside values: builds are pure, so a failed (set,
// config) fails identically every time. The one exception is cancellation —
// a build that fails with context.Canceled or context.DeadlineExceeded
// reflects the caller's lifetime, not the key's content, so it is dropped
// from the store immediately and the next request rebuilds.
type Memo struct {
	mu        sync.Mutex
	schedules map[Key]*schedEntry
	plans     map[Key]*planEntry
	capBytes  int64 // <= 0: unbounded
	usedBytes int64
	lru       list.List // of *lruItem; front = most recently used

	schedHits, schedMisses atomic.Int64
	planHits, planMisses   atomic.Int64
	evictions              atomic.Int64
}

// NewMemo returns an empty unbounded store.
func NewMemo() *Memo {
	return &Memo{
		schedules: make(map[Key]*schedEntry),
		plans:     make(map[Key]*planEntry),
	}
}

// NewBoundedMemo returns an empty store that evicts least-recently-used
// entries once the estimated resident bytes exceed capBytes. A non-positive
// capBytes means unbounded (identical to NewMemo).
func NewBoundedMemo(capBytes int64) *Memo {
	m := NewMemo()
	m.capBytes = capBytes
	return m
}

// lruItem is one resident entry's seat in the eviction order.
type lruItem struct {
	key   Key
	plan  bool // which map the key lives in
	bytes int64
}

type schedEntry struct {
	once sync.Once
	s    *core.Schedule
	err  error
	elem *list.Element // guarded by Memo.mu; nil until admitted or after eviction
}

type planEntry struct {
	once sync.Once
	p    *sim.CompiledPlan
	err  error
	elem *list.Element // guarded by Memo.mu; nil until admitted or after eviction
}

// schedule returns the cached schedule for key, building it exactly once
// while resident. ctx is the *requester's* context: a waiter that receives a
// cancellation error from an entry some other caller's context tore down
// retries against a fresh entry (under its own build closure) as long as its
// own context is live, so one client abandoning a shared solve can never
// surface as an error to the clients still waiting on it.
func (m *Memo) schedule(ctx context.Context, key Key, build func() (*core.Schedule, error)) (*core.Schedule, error) {
	for {
		m.mu.Lock()
		e, hit := m.schedules[key]
		if !hit {
			e = &schedEntry{}
			m.schedules[key] = e
		} else if e.elem != nil {
			m.lru.MoveToFront(e.elem)
		}
		m.mu.Unlock()
		if hit {
			m.schedHits.Add(1)
		} else {
			m.schedMisses.Add(1)
		}
		e.once.Do(func() {
			e.s, e.err = build()
			m.admitSchedule(key, e)
		})
		if uncacheable(e.err) && ctx != nil && ctx.Err() == nil {
			continue // victim of another requester's cancellation
		}
		return e.s, e.err
	}
}

// plan returns the cached compiled plan for key, building it exactly once
// while resident.
func (m *Memo) plan(key Key, build func() (*sim.CompiledPlan, error)) (*sim.CompiledPlan, error) {
	m.mu.Lock()
	e, hit := m.plans[key]
	if !hit {
		e = &planEntry{}
		m.plans[key] = e
	} else if e.elem != nil {
		m.lru.MoveToFront(e.elem)
	}
	m.mu.Unlock()
	if hit {
		m.planHits.Add(1)
	} else {
		m.planMisses.Add(1)
	}
	e.once.Do(func() {
		e.p, e.err = build()
		m.admitPlan(key, e)
	})
	return e.p, e.err
}

// uncacheable reports build errors that reflect the requesting caller's
// lifetime rather than the key's content; caching one would poison the key
// for every later caller.
func uncacheable(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// admitSchedule accounts a completed build into the LRU order (or drops a
// canceled one) and evicts past the cap.
func (m *Memo) admitSchedule(key Key, e *schedEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if uncacheable(e.err) {
		if m.schedules[key] == e {
			delete(m.schedules, key)
		}
		return
	}
	if m.schedules[key] != e {
		return // already evicted and re-requested under a fresh entry
	}
	e.elem = m.lru.PushFront(&lruItem{key: key, bytes: scheduleBytes(e.s)})
	m.usedBytes += e.elem.Value.(*lruItem).bytes
	m.evict()
}

// admitPlan is admitSchedule for the plan side.
func (m *Memo) admitPlan(key Key, e *planEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if uncacheable(e.err) {
		if m.plans[key] == e {
			delete(m.plans, key)
		}
		return
	}
	if m.plans[key] != e {
		return
	}
	e.elem = m.lru.PushFront(&lruItem{key: key, plan: true, bytes: planBytes(e.p)})
	m.usedBytes += e.elem.Value.(*lruItem).bytes
	m.evict()
}

// evict drops cold entries until the resident total fits the cap. Entries
// still building are not in the LRU order yet and cannot be chosen. Called
// with m.mu held.
func (m *Memo) evict() {
	if m.capBytes <= 0 {
		return
	}
	for m.usedBytes > m.capBytes {
		back := m.lru.Back()
		if back == nil {
			return
		}
		it := back.Value.(*lruItem)
		m.lru.Remove(back)
		m.usedBytes -= it.bytes
		if it.plan {
			if e, ok := m.plans[it.key]; ok {
				e.elem = nil
				delete(m.plans, it.key)
			}
		} else {
			if e, ok := m.schedules[it.key]; ok {
				e.elem = nil
				delete(m.schedules, it.key)
			}
		}
		m.evictions.Add(1)
	}
}

// scheduleBytes estimates the resident cost of a cached schedule: the solved
// vectors, the derived average workloads, and the preemptive plan it pins
// (sub-instances, instances, per-instance position lists). The estimate is
// for eviction accounting only — it need not be exact, just proportional.
func scheduleBytes(s *core.Schedule) int64 {
	const entryOverhead = 512 // entry, map slot, LRU seat, struct headers
	if s == nil || s.Plan == nil {
		return entryOverhead
	}
	n := int64(len(s.Plan.Subs))
	inst := int64(len(s.Plan.Instances))
	return entryOverhead +
		n*(3*8+64) + // End/WCWork/AvgWork + preempt.Sub
		inst*(32+8) // instance records + ByInstance positions
}

// planBytes estimates the resident cost of a cached compiled plan: eleven
// per-piece float/index columns plus three per-instance parameter columns.
func planBytes(p *sim.CompiledPlan) int64 {
	const entryOverhead = 512
	if p == nil {
		return entryOverhead
	}
	return entryOverhead + int64(p.Pieces())*(10*8+4) + int64(p.Instances())*3*8
}

// Stats is a snapshot of the store's accounting. A "miss" is the first
// request for a key while no entry is resident (it pays for the build); every
// later request for the same resident key is a "hit" even if it arrived while
// the build was in flight. Eviction returns a key to the miss-on-next-request
// state without ever changing what that request returns.
type Stats struct {
	ScheduleHits   int64 `json:"schedule_hits"`
	ScheduleMisses int64 `json:"schedule_misses"`
	PlanHits       int64 `json:"plan_hits"`
	PlanMisses     int64 `json:"plan_misses"`
	// Evictions counts entries dropped to respect the byte cap.
	Evictions int64 `json:"evictions"`
	// BytesUsed is the estimated resident size of all completed entries;
	// BytesCap is the configured cap (0 = unbounded).
	BytesUsed int64 `json:"bytes_used"`
	BytesCap  int64 `json:"bytes_cap"`
}

// Stats snapshots the counters.
func (m *Memo) Stats() Stats {
	m.mu.Lock()
	used, capB := m.usedBytes, m.capBytes
	m.mu.Unlock()
	return Stats{
		ScheduleHits:   m.schedHits.Load(),
		ScheduleMisses: m.schedMisses.Load(),
		PlanHits:       m.planHits.Load(),
		PlanMisses:     m.planMisses.Load(),
		Evictions:      m.evictions.Load(),
		BytesUsed:      used,
		BytesCap:       capB,
	}
}
