package grid

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sim"
)

// Memo is the content-addressed store behind a Runner: solved schedules and
// compiled plans keyed by their canonical content hash. It is safe for
// concurrent use; concurrent requests for the same key are collapsed into
// one build (singleflight), so a worker pool hammering one cell pays for one
// solve while the rest wait for it.
//
// Entries live for the Memo's lifetime — the experiment suite's working set
// (hundreds of schedules of ~1000 float64 pairs) is far below memory
// pressure, and eviction would reintroduce the re-solve cost the store
// exists to remove. Errors are cached alongside values: builds are pure, so
// a failed (set, config) fails identically every time.
type Memo struct {
	mu        sync.Mutex
	schedules map[Key]*schedEntry
	plans     map[Key]*planEntry

	schedHits, schedMisses atomic.Int64
	planHits, planMisses   atomic.Int64
}

// NewMemo returns an empty store.
func NewMemo() *Memo {
	return &Memo{
		schedules: make(map[Key]*schedEntry),
		plans:     make(map[Key]*planEntry),
	}
}

type schedEntry struct {
	once sync.Once
	s    *core.Schedule
	err  error
}

type planEntry struct {
	once sync.Once
	p    *sim.CompiledPlan
	err  error
}

// schedule returns the cached schedule for key, building it exactly once.
func (m *Memo) schedule(key Key, build func() (*core.Schedule, error)) (*core.Schedule, error) {
	m.mu.Lock()
	e, hit := m.schedules[key]
	if !hit {
		e = &schedEntry{}
		m.schedules[key] = e
	}
	m.mu.Unlock()
	if hit {
		m.schedHits.Add(1)
	} else {
		m.schedMisses.Add(1)
	}
	e.once.Do(func() { e.s, e.err = build() })
	return e.s, e.err
}

// plan returns the cached compiled plan for key, building it exactly once.
func (m *Memo) plan(key Key, build func() (*sim.CompiledPlan, error)) (*sim.CompiledPlan, error) {
	m.mu.Lock()
	e, hit := m.plans[key]
	if !hit {
		e = &planEntry{}
		m.plans[key] = e
	}
	m.mu.Unlock()
	if hit {
		m.planHits.Add(1)
	} else {
		m.planMisses.Add(1)
	}
	e.once.Do(func() { e.p, e.err = build() })
	return e.p, e.err
}

// Stats is a snapshot of the store's hit accounting. A "miss" is the first
// request for a key (it pays for the build); every later request for the
// same key is a "hit" even if it arrived while the build was in flight.
type Stats struct {
	ScheduleHits, ScheduleMisses int64
	PlanHits, PlanMisses         int64
}

// Stats snapshots the counters.
func (m *Memo) Stats() Stats {
	return Stats{
		ScheduleHits:   m.schedHits.Load(),
		ScheduleMisses: m.schedMisses.Load(),
		PlanHits:       m.planHits.Load(),
		PlanMisses:     m.planMisses.Load(),
	}
}
