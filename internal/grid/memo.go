package grid

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Memo is the content-addressed cache behind a Runner: solved schedules and
// compiled plans keyed by their canonical content hash. It is the
// store-agnostic singleflight layer — residency itself is delegated to a
// Store backend (the in-memory bounded LRU, the crash-safe disk log in
// internal/store, or a tiered composition of both), while Memo owns the
// request-stream semantics every backend must inherit identically:
//
//   - One build per key: concurrent requests for the same absent key are
//     collapsed into one build (singleflight), so a worker pool hammering one
//     cell pays for one solve while the rest wait for it.
//   - Canceled builds are never cached: a build that fails with
//     context.Canceled or context.DeadlineExceeded reflects the caller's
//     lifetime, not the key's content, so it is never handed to the store.
//   - Waiters retry under their own context: a waiter that receives a
//     cancellation error from a build some other caller's context tore down
//     retries against a fresh build as long as its own context is live.
//
// Other build errors are cached alongside values: builds are pure, so a
// failed (set, config) fails identically every time.
//
// Capacity: a Memo constructed with NewMemo is unbounded — right for a batch
// regeneration, whose working set is known and finite. A resident daemon
// (cmd/schedd) must instead bound the store with NewBoundedMemo, or supply
// its own backend with NewMemoOn.
type Memo struct {
	store Store

	mu           sync.Mutex // guards the flight maps
	schedFlights map[Key]*flight[*core.Schedule]
	planFlights  map[Key]*flight[*sim.CompiledPlan]

	schedHits, schedMisses atomic.Int64
	planHits, planMisses   atomic.Int64
}

// flight is one in-progress build: waiters block on done and read val/err.
type flight[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// NewMemo returns an unbounded in-memory memo.
func NewMemo() *Memo { return NewMemoOn(NewMemStore(0)) }

// NewBoundedMemo returns an in-memory memo that evicts least-recently-used
// entries once the estimated resident bytes exceed capBytes. A non-positive
// capBytes means unbounded (identical to NewMemo).
func NewBoundedMemo(capBytes int64) *Memo { return NewMemoOn(NewMemStore(capBytes)) }

// NewMemoOn returns a memo over an arbitrary residency backend. The
// singleflight/cancellation contract is supplied here; the store only holds
// completed artefacts.
func NewMemoOn(store Store) *Memo {
	return &Memo{
		store:        store,
		schedFlights: make(map[Key]*flight[*core.Schedule]),
		planFlights:  make(map[Key]*flight[*sim.CompiledPlan]),
	}
}

// Store returns the residency backend.
func (m *Memo) Store() Store { return m.store }

// schedule returns the cached schedule for key, building it exactly once
// while resident. ctx is the *requester's* context: a waiter that receives a
// cancellation error from a build some other caller's context tore down
// retries against a fresh build as long as its own context is live, so one
// client abandoning a shared solve can never surface as an error to the
// clients still waiting on it.
func (m *Memo) schedule(ctx context.Context, key Key, build func() (*core.Schedule, error)) (*core.Schedule, error) {
	return through(m, ctx, m.schedFlights, key, &m.schedHits, &m.schedMisses,
		m.store.GetSchedule, m.store.PutSchedule, build)
}

// plan is schedule for the compiled-plan side, with the identical
// requester-context retry contract.
func (m *Memo) plan(ctx context.Context, key Key, build func() (*sim.CompiledPlan, error)) (*sim.CompiledPlan, error) {
	return through(m, ctx, m.planFlights, key, &m.planHits, &m.planMisses,
		m.store.GetPlan, m.store.PutPlan, build)
}

// through is the shared singleflight-over-store path. The flight is
// registered before the store is consulted, so the store's Get/Put (which may
// do disk I/O in a tiered backend) never runs under the flight lock and
// concurrent requesters still build at most once. Completed cacheable builds
// are handed to the store before the flight is deleted, so a requester
// arriving after the flight always finds the artefact resident.
func through[T any](
	m *Memo, ctx context.Context, flights map[Key]*flight[T], key Key,
	hits, misses *atomic.Int64,
	get func(Key) (T, error, bool),
	put func(Key, T, error),
	build func() (T, error),
) (T, error) {
	for {
		m.mu.Lock()
		if f, ok := flights[key]; ok {
			m.mu.Unlock()
			hits.Add(1)
			<-f.done
			if uncacheable(f.err) && ctx != nil && ctx.Err() == nil {
				continue // victim of another requester's cancellation
			}
			return f.val, f.err
		}
		f := &flight[T]{done: make(chan struct{})}
		flights[key] = f
		m.mu.Unlock()

		getDone := obs.StartSpan(ctx, "store_get")
		v, err, ok := get(key)
		getDone()
		if ok {
			hits.Add(1)
			f.val, f.err = v, err
		} else {
			misses.Add(1)
			f.val, f.err = build()
			if !uncacheable(f.err) {
				putDone := obs.StartSpan(ctx, "store_put")
				put(key, f.val, f.err)
				putDone()
			}
		}
		m.mu.Lock()
		delete(flights, key)
		m.mu.Unlock()
		close(f.done)
		if uncacheable(f.err) && ctx != nil && ctx.Err() == nil {
			continue
		}
		return f.val, f.err
	}
}

// uncacheable reports build errors that reflect the requesting caller's
// lifetime rather than the key's content; caching one would poison the key
// for every later caller.
func uncacheable(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Stats is a snapshot of the memo's accounting. A "miss" is the first request
// for a key while no entry is resident in any tier (it pays for the build);
// every later request for the same resident key is a "hit" even if it arrived
// while the build was in flight. Eviction returns a key to the
// miss-on-next-request state without ever changing what that request returns.
// The tier and disk fields are zero for purely in-memory backends.
type Stats struct {
	ScheduleHits   int64 `json:"schedule_hits"`
	ScheduleMisses int64 `json:"schedule_misses"`
	PlanHits       int64 `json:"plan_hits"`
	PlanMisses     int64 `json:"plan_misses"`
	// Evictions counts entries dropped to respect the memory tier's byte cap.
	Evictions int64 `json:"evictions"`
	// BytesUsed is the estimated resident size of the memory tier;
	// BytesCap is its configured cap (0 = unbounded).
	BytesUsed int64 `json:"bytes_used"`
	BytesCap  int64 `json:"bytes_cap"`
	// MemHits/DiskHits split a tiered backend's schedule hits by the tier
	// that answered (a disk hit repopulates the memory tier on the way out).
	MemHits  int64 `json:"mem_hits"`
	DiskHits int64 `json:"disk_hits"`
	// DiskEntries/DiskBytes describe the disk tier's resident log.
	DiskEntries int64 `json:"disk_entries"`
	DiskBytes   int64 `json:"disk_bytes"`
	// RecoveredEntries counts records indexed by the recovery scan when the
	// disk tier opened; TornRecordsDropped counts the truncations that scan
	// performed (a torn tail record and everything after it is dropped).
	RecoveredEntries   int64 `json:"recovered_entries"`
	TornRecordsDropped int64 `json:"torn_records_dropped"`
	// Disk-health and degraded-mode accounting (DESIGN.md §10; zero for
	// purely in-memory backends). DiskReadErrs/DiskWriteErrs count failed
	// device operations; BreakerState is the tiered backend's circuit
	// breaker position ("closed", "open", "half-open"); BreakerTrips and
	// BreakerRecloses count open transitions and completed recoveries; and
	// MemDegraded reports that the breaker is currently holding the store in
	// memory-only residency (disk skipped, requests still served).
	DiskReadErrs    int64  `json:"disk_read_errs"`
	DiskWriteErrs   int64  `json:"disk_write_errs"`
	BreakerState    string `json:"breaker_state,omitempty"`
	BreakerTrips    int64  `json:"breaker_trips"`
	BreakerRecloses int64  `json:"breaker_recloses"`
	MemDegraded     bool   `json:"mem_degraded,omitempty"`
}

// Stats snapshots the counters: the request-stream hit/miss accounting owned
// here, merged with the backend's residency accounting.
func (m *Memo) Stats() Stats {
	st := m.store.Stats()
	st.ScheduleHits = m.schedHits.Load()
	st.ScheduleMisses = m.schedMisses.Load()
	st.PlanHits = m.planHits.Load()
	st.PlanMisses = m.planMisses.Load()
	return st
}
