package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/task"
)

func TestRandomBasicInvariants(t *testing.T) {
	rng := stats.NewRNG(1)
	for i := 0; i < 50; i++ {
		set, err := Random(rng, RandomConfig{N: 6, Ratio: 0.1, Utilization: 0.7})
		if err != nil {
			t.Fatal(err)
		}
		if set.N() != 6 {
			t.Fatalf("N = %d", set.N())
		}
		m := power.DefaultModel()
		u := set.UtilizationAt(m.CycleTime(m.VMax()))
		if math.Abs(u-0.7) > 1e-9 {
			t.Fatalf("utilisation %g, want 0.7", u)
		}
		for _, tk := range set.Tasks {
			if math.Abs(tk.BCEC-0.1*tk.WCEC) > 1e-9*tk.WCEC {
				t.Fatalf("task %s BCEC/WCEC = %g, want 0.1", tk.Name, tk.BCEC/tk.WCEC)
			}
			if math.Abs(tk.ACEC-0.5*(tk.BCEC+tk.WCEC)) > 1e-9*tk.WCEC {
				t.Fatalf("task %s ACEC not the distribution mean", tk.Name)
			}
		}
	}
}

func TestRandomDeterminism(t *testing.T) {
	a, err := Random(stats.NewRNG(42), RandomConfig{N: 5, Ratio: 0.5, Utilization: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(stats.NewRNG(42), RandomConfig{N: 5, Ratio: 0.5, Utilization: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatal("same seed produced different sets")
		}
	}
}

func TestRandomValidation(t *testing.T) {
	rng := stats.NewRNG(1)
	bad := []RandomConfig{
		{N: 0, Ratio: 0.5, Utilization: 0.7},
		{N: 3, Ratio: -0.1, Utilization: 0.7},
		{N: 3, Ratio: 1.1, Utilization: 0.7},
		{N: 3, Ratio: 0.5, Utilization: 0},
		{N: 3, Ratio: 0.5, Utilization: 1.5},
		{N: 3, Ratio: 0.5, Utilization: 0.7, Periods: []int64{0}},
		{N: 3, Ratio: 0.5, Utilization: 0.7, CeffLo: 2, CeffHi: 1},
	}
	for i, cfg := range bad {
		if _, err := Random(rng, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// TestRandomHyperperiodBounded: the default period pool keeps the
// hyper-period at 200 ms, which bounds sub-instances as the paper requires.
func TestRandomHyperperiodBounded(t *testing.T) {
	rng := stats.NewRNG(5)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%10) + 1
		set, err := Random(rng, RandomConfig{N: n, Ratio: 0.5, Utilization: 0.7})
		if err != nil {
			return false
		}
		h, err := set.Hyperperiod()
		return err == nil && h <= 200
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRandomFeasibleFilter(t *testing.T) {
	rng := stats.NewRNG(6)
	calls := 0
	set, err := RandomFeasible(rng, RandomConfig{N: 4, Ratio: 0.5, Utilization: 0.7}, 10,
		func(*task.Set) bool { calls++; return calls >= 3 })
	if err != nil {
		t.Fatal(err)
	}
	if set == nil || calls != 3 {
		t.Errorf("filter called %d times", calls)
	}
	// A filter that always rejects must exhaust tries.
	if _, err := RandomFeasible(rng, RandomConfig{N: 4, Ratio: 0.5, Utilization: 0.7}, 5,
		func(*task.Set) bool { return false }); err == nil {
		t.Error("always-rejecting filter succeeded")
	}
}

func TestCNCShape(t *testing.T) {
	set, err := CNC(0.1, 0.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if set.N() != 8 {
		t.Fatalf("CNC has %d tasks, want 8", set.N())
	}
	h, err := set.Hyperperiod()
	if err != nil || h != 48 {
		t.Errorf("CNC H = %d, want 48", h)
	}
	m := power.DefaultModel()
	if u := set.UtilizationAt(m.CycleTime(m.VMax())); math.Abs(u-0.7) > 1e-9 {
		t.Errorf("CNC utilisation %g", u)
	}
}

func TestGAPShape(t *testing.T) {
	set, err := GAP(0.5, 0.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if set.N() != 17 {
		t.Fatalf("GAP has %d tasks, want 17", set.N())
	}
	h, err := set.Hyperperiod()
	if err != nil || h != 1000 {
		t.Errorf("GAP H = %d, want 1000", h)
	}
}

func TestGAPExactKeepsPublishedPeriods(t *testing.T) {
	set, err := GAPExact(0.5, 0.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	found59, found80 := false, false
	for _, tk := range set.Tasks {
		if tk.Period == 59 {
			found59 = true
		}
		if tk.Period == 80 {
			found80 = true
		}
	}
	if !found59 || !found80 {
		t.Error("GAPExact lost the published 59/80 ms periods")
	}
}

func TestRealLifeValidation(t *testing.T) {
	if _, err := CNC(-0.1, 0.7, nil); err == nil {
		t.Error("negative ratio accepted")
	}
	if _, err := GAP(0.5, 0, nil); err == nil {
		t.Error("zero utilisation accepted")
	}
}
