package workload

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/task"
)

// Real-life task sets (paper §4, Fig. 6(b)). The paper cites:
//
//   - CNC: Kim, Ryu, Hong, Saksena, Choi, Shin, "Visual assessment of a
//     real-time system design: a case study on a CNC controller", RTSS'96.
//   - GAP: Locke, Vogel, Mesler, "Building a predictable avionics platform
//     in Ada: a case study" (Generic Avionics Platform).
//
// The DATE'05 text does not reprint the tables, so the parameters below are
// the versions commonly used in the DVS-scheduling literature, normalised to
// this repository's conventions (periods in integral ms, workload in cycles
// of the unit-K processor model where one cycle takes 1/V ms). Execution
// demands are expressed as a fraction of period and scaled to the target
// utilisation the same way the random generator scales (the paper reports
// only relative energy, which is invariant to this normalisation).
//
// GAP's published 59 ms and 80 ms periods are rounded to 50 ms and 100 ms so
// the hyper-period stays at 1000 ms (59 ms alone pushes it to 472 s, which
// multiplies the sub-instance count ~500× without changing the energy
// shape). GAPExact ships the unrounded table for completeness; its
// hyper-period is impractical for the NLP but fine for utilisation analysis.

// cncSpec holds (period ms, worst-case demand µs) pairs from the RTSS'96
// case study, rounded to ms-scale periods.
var cncSpec = []struct {
	name   string
	period int64   // ms
	demand float64 // worst-case execution demand, fraction of 1 ms at Vmax
}{
	// The CNC controller's eight periodic tasks: two 2.4 ms, two 1.2 ms,
	// two 4.8 ms and two 9.6 ms loops in the original; periods here are
	// scaled ×5 to integral ms (6/6/12/12/24/24/48/48) preserving all
	// ratios, with demands scaled identically.
	{"cnc_pos_x", 6, 0.175},    // position loop X (0.035 of 2.4ms → ×5)
	{"cnc_pos_y", 6, 0.200},    // position loop Y
	{"cnc_servo_x", 12, 0.825}, // servo control X (0.165 of 1.2ms... see note)
	{"cnc_servo_y", 12, 0.825}, // servo control Y
	{"cnc_interp", 24, 2.850},  // interpolator
	{"cnc_prep", 24, 2.850},    // preparation
	{"cnc_ui", 48, 9.600},      // operator console
	{"cnc_mon", 48, 9.600},     // status monitor
}

// CNC returns the CNC controller task set at the given BCEC/WCEC ratio and
// utilisation (use 0.7 to match §4). The hyper-period is 48 ms.
func CNC(ratio, utilization float64, m power.Model) (*task.Set, error) {
	return buildRealLife("CNC", cncSpec, ratio, utilization, m)
}

// gapSpec lists the Generic Avionics Platform's seventeen periodic tasks.
// Periods: 59→50 and 80→100 rounded as documented above.
var gapSpec = []struct {
	name   string
	period int64
	demand float64
}{
	{"gap_timer", 25, 1.0},
	{"gap_radar_track", 25, 2.0},
	{"gap_rwr_contact", 25, 5.0},
	{"gap_data_bus", 40, 1.0},
	{"gap_radar_target", 40, 4.0},
	{"gap_target_track", 50, 2.0},
	{"gap_nav_update", 50, 8.0},       // 59 ms in the published table
	{"gap_display_graphic", 100, 9.0}, // 80 ms in the published table
	{"gap_display_hook", 100, 2.0},    // 80 ms in the published table
	{"gap_tracking_filter", 100, 5.0},
	{"gap_nav_steering", 200, 3.0},
	{"gap_display_stores", 200, 1.0},
	{"gap_display_keyset", 200, 1.0},
	{"gap_display_stat", 200, 3.0},
	{"gap_bet_status", 1000, 1.0},
	{"gap_nav_status", 1000, 1.0},
	{"gap_weapon_protocol", 1000, 5.0},
}

// GAP returns the (period-adjusted) Generic Avionics Platform task set; the
// hyper-period is 1000 ms.
func GAP(ratio, utilization float64, m power.Model) (*task.Set, error) {
	return buildRealLife("GAP", gapSpec, ratio, utilization, m)
}

// gapExactSpec preserves the published 59 ms and 80 ms periods.
var gapExactSpec = func() []struct {
	name   string
	period int64
	demand float64
} {
	out := append([]struct {
		name   string
		period int64
		demand float64
	}(nil), gapSpec...)
	out[6].period = 59
	out[7].period = 80
	out[8].period = 80
	return out
}()

// GAPExact returns the GAP set with the published 59/80 ms periods. Its
// hyper-period (472 s) makes full NLP scheduling impractical; it exists for
// utilisation analysis and documentation.
func GAPExact(ratio, utilization float64, m power.Model) (*task.Set, error) {
	return buildRealLife("GAPExact", gapExactSpec, ratio, utilization, m)
}

func buildRealLife(label string, spec []struct {
	name   string
	period int64
	demand float64
}, ratio, utilization float64, m power.Model) (*task.Set, error) {
	if ratio < 0 || ratio > 1 {
		return nil, fmt.Errorf("workload: %s ratio must lie in [0,1], got %g", label, ratio)
	}
	if utilization <= 0 || utilization > 1 {
		return nil, fmt.Errorf("workload: %s utilization must lie in (0,1], got %g", label, utilization)
	}
	if m == nil {
		m = power.DefaultModel()
	}
	tcMax := m.CycleTime(m.VMax())
	tasks := make([]task.Task, len(spec))
	for i, sp := range spec {
		wcec := sp.demand / tcMax // demand ms of Vmax execution → cycles
		tasks[i] = task.Task{
			Name:   sp.name,
			Period: sp.period,
			WCEC:   wcec,
			BCEC:   ratio * wcec,
			ACEC:   0.5 * (1 + ratio) * wcec,
			Ceff:   1,
		}
	}
	set, err := task.NewSet(tasks)
	if err != nil {
		return nil, err
	}
	u := set.UtilizationAt(tcMax)
	return set.ScaleWCEC(utilization / u)
}
