// Package workload provides the task-set sources of the paper's evaluation
// (§4): the random task-set generator (periods from a harmonically
// compatible pool, WCEC scaled to ~70% utilisation at maximum speed,
// BCEC/WCEC ratio swept as an experiment parameter) and the two real-life
// applications, the CNC controller (Kim et al., RTSS'96) and the Generic
// Avionics Platform (Locke et al.).
package workload

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/task"
)

// RandomConfig parameterises the §4 random task-set generator.
type RandomConfig struct {
	// N is the number of tasks (paper sweeps 2..10).
	N int
	// Ratio is BCEC/WCEC ∈ [0,1] (paper sweeps 0.1, 0.5, 0.9). ACEC is the
	// truncated-Normal mean, (BCEC+WCEC)/2.
	Ratio float64
	// Utilization is Σ WCECᵢ·tc(Vmax)/Pᵢ (paper: 0.7).
	Utilization float64
	// Model supplies tc(Vmax) for the utilisation scaling; nil selects
	// power.DefaultModel().
	Model power.Model
	// Periods is the period pool in ms; the default pool
	// {10,20,25,40,50,100,200} keeps the hyper-period at 200 ms so task
	// sets respect the paper's ≈1000-sub-instance bound.
	Periods []int64
	// CeffRange bounds the per-task effective capacitance, drawn uniformly;
	// the default [1,1] gives every task unit capacitance.
	CeffLo, CeffHi float64
	// Cores is the number of identical cores the set targets: total
	// worst-case utilisation at maximum speed is scaled to
	// Utilization·Cores, so a partitioned system running each core near
	// Utilization genuinely needs all of them. 0 or 1 selects the paper's
	// single-core generator unchanged.
	Cores int
}

func (c *RandomConfig) withDefaults() (RandomConfig, error) {
	out := *c
	if out.N <= 0 {
		return out, fmt.Errorf("workload: task count must be positive, got %d", out.N)
	}
	if out.Ratio < 0 || out.Ratio > 1 {
		return out, fmt.Errorf("workload: ratio must lie in [0,1], got %g", out.Ratio)
	}
	if out.Utilization <= 0 || out.Utilization > 1 {
		return out, fmt.Errorf("workload: utilization must lie in (0,1], got %g", out.Utilization)
	}
	if out.Model == nil {
		out.Model = power.DefaultModel()
	}
	if len(out.Periods) == 0 {
		out.Periods = []int64{10, 20, 25, 40, 50, 100, 200}
	}
	for _, p := range out.Periods {
		if p <= 0 {
			return out, fmt.Errorf("workload: period pool contains non-positive %d", p)
		}
	}
	if out.CeffLo == 0 && out.CeffHi == 0 {
		out.CeffLo, out.CeffHi = 1, 1
	}
	if out.CeffLo <= 0 || out.CeffHi < out.CeffLo {
		return out, fmt.Errorf("workload: bad Ceff range [%g, %g]", out.CeffLo, out.CeffHi)
	}
	if out.Cores < 0 {
		return out, fmt.Errorf("workload: core count must be non-negative, got %d", out.Cores)
	}
	if out.Cores == 0 {
		out.Cores = 1
	}
	return out, nil
}

// Random generates one task set. WCECs are first drawn proportional to a
// uniform weight per task, then scaled so the set's utilisation at maximum
// speed equals cfg.Utilization exactly.
func Random(rng *stats.RNG, cfg RandomConfig) (*task.Set, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	tcMax := c.Model.CycleTime(c.Model.VMax())

	tasks := make([]task.Task, c.N)
	for i := range tasks {
		period := rng.ChoiceInt(c.Periods)
		// Draw a utilisation weight; the absolute scale is fixed below.
		weight := rng.Uniform(0.2, 1.0)
		wcec := weight * float64(period) / tcMax
		tasks[i] = task.Task{
			Name:   fmt.Sprintf("T%d", i+1),
			Period: period,
			WCEC:   wcec,
			BCEC:   c.Ratio * wcec,
			ACEC:   0.5 * (1 + c.Ratio) * wcec,
			Ceff:   rng.Uniform(c.CeffLo, c.CeffHi),
		}
	}
	set, err := task.NewSet(tasks)
	if err != nil {
		return nil, err
	}
	u := set.UtilizationAt(tcMax)
	return set.ScaleWCEC(c.Utilization * float64(c.Cores) / u)
}

// RandomFeasible draws task sets until one admits a feasible all-Vmax
// schedule check (utilisation scaling guarantees U ≤ 1 but RM with
// non-harmonic periods can still miss deadlines); it gives up after tries
// attempts. The feasibility test is the exact ASAP chain the core solver
// uses, so every returned set is solvable.
func RandomFeasible(rng *stats.RNG, cfg RandomConfig, tries int, feasible func(*task.Set) bool) (*task.Set, error) {
	if tries <= 0 {
		tries = 50
	}
	for i := 0; i < tries; i++ {
		set, err := Random(rng, cfg)
		if err != nil {
			return nil, err
		}
		if feasible == nil || feasible(set) {
			return set, nil
		}
	}
	return nil, fmt.Errorf("workload: no feasible task set in %d tries (N=%d, U=%g)",
		tries, cfg.N, cfg.Utilization)
}
