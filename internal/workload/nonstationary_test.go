package workload

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/stats"
	"repro/internal/task"
)

func scenarioSet(t *testing.T) *task.Set {
	t.Helper()
	rng := stats.NewRNG(42)
	set, err := Random(rng, RandomConfig{N: 4, Ratio: 0.25, Utilization: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// taskOfInstances builds the instance→task mapping the preemptive plan hands
// to consumers, straight from the task model.
func taskOfInstances(t *testing.T, set *task.Set) []int {
	t.Helper()
	ins, err := set.Instances()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, len(ins))
	for i := range ins {
		out[i] = ins[i].TaskIndex
	}
	return out
}

// TestScenarioDeterminismAndChunkIndependence pins the generator contract:
// equal seeds give byte-identical streams, random access agrees with
// sequential generation (chunk boundaries are invisible), and different
// seeds give different streams.
func TestScenarioDeterminismAndChunkIndependence(t *testing.T) {
	set := scenarioSet(t)
	taskOf := taskOfInstances(t, set)
	for _, kind := range []ScenarioKind{Stationary, ModeSwitch, DriftingMean, BurstyTail} {
		sc1, err := NewScenario(set, ScenarioConfig{Kind: kind, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		sc2, err := NewScenario(set, ScenarioConfig{Kind: kind, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		a, err := sc1.Actuals(60, taskOf)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sc2.Actuals(60, taskOf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: equal seeds produced different streams", kind)
		}
		// Random access at an arbitrary h matches the sequential stream.
		row := make([]float64, len(taskOf))
		for _, h := range []int{0, 17, 59} {
			if err := sc1.FillActuals(h, taskOf, row); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(row, a[h]) {
				t.Errorf("%v: random access at h=%d differs from sequential generation", kind, h)
			}
		}
		scOther, err := NewScenario(set, ScenarioConfig{Kind: kind, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		c, err := scOther.Actuals(60, taskOf)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a, c) {
			t.Errorf("%v: different seeds produced identical streams", kind)
		}
	}
}

// TestScenarioFeasibilityEnvelope: every draw of every kind stays inside its
// task's [BCEC, WCEC] support — the invariant that makes any scenario safe
// under any worst-case-feasible schedule.
func TestScenarioFeasibilityEnvelope(t *testing.T) {
	set := scenarioSet(t)
	taskOf := taskOfInstances(t, set)
	for _, kind := range []ScenarioKind{Stationary, ModeSwitch, DriftingMean, BurstyTail} {
		sc, err := NewScenario(set, ScenarioConfig{Kind: kind, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		rows, err := sc.Actuals(200, taskOf)
		if err != nil {
			t.Fatal(err)
		}
		for h, row := range rows {
			for i, x := range row {
				tk := &set.Tasks[taskOf[i]]
				if x < tk.BCEC || x > tk.WCEC {
					t.Fatalf("%v: h=%d instance %d draw %g outside [%g, %g]",
						kind, h, i, x, tk.BCEC, tk.WCEC)
				}
			}
		}
	}
}

// TestScenarioRegimeStructure checks the regime ground truth each kind
// promises: mode switches alternate, drift interpolates monotonically and
// saturates, stationary never moves, and the empirical mean of each regime
// tracks MeanFrac.
func TestScenarioRegimeStructure(t *testing.T) {
	set := scenarioSet(t)
	taskOf := taskOfInstances(t, set)

	st, err := NewScenario(set, ScenarioConfig{Kind: Stationary, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []int{0, 100, 999} {
		if st.MeanFrac(h) != 0.5 {
			t.Errorf("stationary MeanFrac(%d) = %g, want 0.5", h, st.MeanFrac(h))
		}
	}

	ms, err := NewScenario(set, ScenarioConfig{Kind: ModeSwitch, Seed: 1, SwitchEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	if ms.MeanFrac(0) != 0.5 || ms.MeanFrac(49) != 0.5 {
		t.Error("modeswitch regime A should sit at BaseFrac")
	}
	if ms.MeanFrac(50) != 0.85 || ms.MeanFrac(99) != 0.85 {
		t.Error("modeswitch regime B should sit at AltFrac")
	}
	if ms.MeanFrac(100) != 0.5 {
		t.Error("modeswitch should return to regime A")
	}

	dr, err := NewScenario(set, ScenarioConfig{Kind: DriftingMean, Seed: 1, DriftOver: 100})
	if err != nil {
		t.Fatal(err)
	}
	prev := dr.MeanFrac(0)
	if prev != 0.5 {
		t.Errorf("drift starts at %g, want 0.5", prev)
	}
	for h := 1; h <= 100; h++ {
		f := dr.MeanFrac(h)
		if f < prev {
			t.Fatalf("drift toward a higher AltFrac fell at h=%d", h)
		}
		prev = f
	}
	if got := dr.MeanFrac(100); got != 0.85 {
		t.Errorf("drift endpoint %g, want 0.85", got)
	}
	if dr.MeanFrac(500) != 0.85 {
		t.Error("drift should hold AltFrac after DriftOver")
	}

	// Empirical regime means track the ground truth (σ/√n puts 0.02 of the
	// span well outside noise for a 50-hyper-period regime).
	rows, err := ms.Actuals(100, taskOf)
	if err != nil {
		t.Fatal(err)
	}
	meanFracOf := func(lo, hi int) float64 {
		var sum, n float64
		for h := lo; h < hi; h++ {
			for i, x := range rows[h] {
				tk := &set.Tasks[taskOf[i]]
				sum += (x - tk.BCEC) / (tk.WCEC - tk.BCEC)
				n++
			}
		}
		return sum / n
	}
	if got := meanFracOf(0, 50); math.Abs(got-0.5) > 0.03 {
		t.Errorf("regime A empirical mean frac %g, want ≈0.5", got)
	}
	if got := meanFracOf(50, 100); math.Abs(got-0.85) > 0.03 {
		t.Errorf("regime B empirical mean frac %g, want ≈0.85", got)
	}
}

// TestScenarioBurstyTail: bursts exist, are contiguous, and the heavy tail
// shows up as near-WCEC draws outside bursts.
func TestScenarioBurstyTail(t *testing.T) {
	set := scenarioSet(t)
	sc, err := NewScenario(set, ScenarioConfig{Kind: BurstyTail, Seed: 9, BurstProb: 0.05, BurstLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	horizon := 400
	burst := 0
	for h := 0; h < horizon; h++ {
		if sc.MeanFrac(h) == 0.85 {
			burst++
		}
	}
	if burst == 0 {
		t.Fatal("no burst hyper-periods in 400 — BurstProb broken")
	}
	if burst == horizon {
		t.Fatal("every hyper-period in a burst")
	}
}

func TestScenarioValidation(t *testing.T) {
	set := scenarioSet(t)
	if _, err := NewScenario(nil, ScenarioConfig{}); err == nil {
		t.Error("nil set accepted")
	}
	if _, err := NewScenario(set, ScenarioConfig{BaseFrac: 1.5}); err == nil {
		t.Error("out-of-range BaseFrac accepted")
	}
	if _, err := NewScenario(set, ScenarioConfig{Kind: ScenarioKind(99)}); err == nil {
		t.Error("unknown kind accepted")
	}
	sc, err := NewScenario(set, ScenarioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.FillActuals(0, []int{0, 1}, make([]float64, 3)); err == nil {
		t.Error("mismatched buffer length accepted")
	}
	if err := sc.FillActuals(0, []int{99}, make([]float64, 1)); err == nil {
		t.Error("out-of-range task index accepted")
	}
	for _, name := range []string{"stationary", "modeswitch", "drift", "bursty"} {
		k, err := ParseScenarioKind(name)
		if err != nil || k.String() != name {
			t.Errorf("ParseScenarioKind(%q) round-trip failed: %v %v", name, k, err)
		}
	}
	if _, err := ParseScenarioKind("nope"); err == nil {
		t.Error("unknown kind name parsed")
	}
}
