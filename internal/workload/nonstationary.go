package workload

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/task"
)

// Nonstationary workload scenarios (DESIGN.md §8): workload streams whose
// per-task execution-cycle distribution changes *across* hyper-periods — the
// regime the static grid cannot express, and the one the feedback subsystem
// (internal/feedback) exists to exploit. A scenario is a pure function of
// (task set, config, hyper-period index): every hyper-period draws from a
// dedicated RNG stream derived from (Seed, h) alone, so generation is
// byte-deterministic per seed, independent of chunking, and supports random
// access (a burst at hyper-period h is decided by hashing h, not by
// sequential state).
//
// All draws stay inside each task's [BCEC, WCEC] support — the feasibility
// envelope the worst-case schedule guarantees deadlines over — so every
// scenario is safe under every schedule; only the *distribution within* the
// support moves.

// ScenarioKind enumerates the nonstationary families.
type ScenarioKind int

const (
	// Stationary draws every hyper-period from the stated model (mean at
	// BaseFrac of the support) — the control arm: an adaptive controller
	// must not pay for adaptivity here.
	Stationary ScenarioKind = iota
	// ModeSwitch alternates the workload mean between BaseFrac and AltFrac
	// every SwitchEvery hyper-periods — an application flipping between
	// operating modes (k4.0s-style criticality-mode behaviour).
	ModeSwitch
	// DriftingMean moves the mean linearly from BaseFrac to AltFrac over
	// DriftOver hyper-periods, then holds — slow environmental drift.
	DriftingMean
	// BurstyTail runs at BaseFrac but enters AltFrac bursts (BurstLen
	// hyper-periods, started with probability BurstProb per hyper-period)
	// and salts every draw with a TailProb chance of a near-WCEC outlier —
	// heavy-tailed load with correlated heavy episodes.
	BurstyTail
)

// String names the scenario kind.
func (k ScenarioKind) String() string {
	switch k {
	case Stationary:
		return "stationary"
	case ModeSwitch:
		return "modeswitch"
	case DriftingMean:
		return "drift"
	case BurstyTail:
		return "bursty"
	default:
		return fmt.Sprintf("ScenarioKind(%d)", int(k))
	}
}

// ParseScenarioKind parses a scenario-kind name.
func ParseScenarioKind(s string) (ScenarioKind, error) {
	switch s {
	case "stationary":
		return Stationary, nil
	case "modeswitch":
		return ModeSwitch, nil
	case "drift":
		return DriftingMean, nil
	case "bursty":
		return BurstyTail, nil
	default:
		return 0, fmt.Errorf("workload: unknown scenario kind %q (want stationary, modeswitch, drift, bursty)", s)
	}
}

// ScenarioConfig parameterises a nonstationary scenario. Means are expressed
// as fractions of each task's [BCEC, WCEC] support: frac f places task t's
// mean at BCEC_t + f·(WCEC_t − BCEC_t), so one config drives every task of a
// heterogeneous set coherently.
type ScenarioConfig struct {
	// Kind selects the family.
	Kind ScenarioKind
	// Seed derives every hyper-period's draw stream. Equal seeds give
	// byte-identical streams.
	Seed uint64
	// BaseFrac is the initial/regime-A mean fraction (default 0.5 — the
	// stated ACEC of sets built by Random/WithRatio, so Stationary matches
	// the solved model exactly).
	BaseFrac float64
	// AltFrac is the regime-B / drift-target / burst mean fraction
	// (default 0.85 — the workload runs heavier than the stated model).
	// Heavier regimes are where adaptation pays most: a schedule whose
	// end-times were tuned for a light average forces late pieces to high
	// voltages when work runs long (energy is convex in speed), while
	// lighter-than-modelled regimes are largely recovered at runtime by
	// greedy reclamation anyway.
	AltFrac float64
	// SwitchEvery is the ModeSwitch regime length in hyper-periods
	// (default 120).
	SwitchEvery int
	// DriftOver is the DriftingMean transition length in hyper-periods
	// (default 240).
	DriftOver int
	// BurstProb is the per-hyper-period probability a BurstyTail burst
	// begins (default 0.03; negative requests exactly zero — no bursts).
	BurstProb float64
	// BurstLen is the BurstyTail burst length in hyper-periods (default 10).
	BurstLen int
	// TailProb is the BurstyTail per-draw probability of a near-WCEC
	// outlier outside bursts (default 0.02; negative requests exactly
	// zero — no outliers).
	TailProb float64
	// SigmaFrac is the per-draw standard deviation as a fraction of the
	// support span (default 1/6, the paper's §4 choice). Near the support
	// edges σ is capped at a third of the distance to the nearer edge, so
	// the ±3σ window always fits inside [BCEC, WCEC] — the same property
	// the paper's midpoint-mean choice has — and truncation never biases
	// the realised mean away from the regime mean (which MeanFrac reports
	// as ground truth).
	SigmaFrac float64
}

func (c ScenarioConfig) withDefaults() (ScenarioConfig, error) {
	if c.BaseFrac == 0 {
		c.BaseFrac = 0.5
	}
	if c.AltFrac == 0 {
		c.AltFrac = 0.85
	}
	if c.SwitchEvery <= 0 {
		c.SwitchEvery = 120
	}
	if c.DriftOver <= 0 {
		c.DriftOver = 240
	}
	if c.BurstProb == 0 {
		c.BurstProb = 0.03
	} else if c.BurstProb < 0 {
		c.BurstProb = 0
	}
	if c.BurstLen <= 0 {
		c.BurstLen = 10
	}
	if c.TailProb == 0 {
		c.TailProb = 0.02
	} else if c.TailProb < 0 {
		c.TailProb = 0
	}
	if c.SigmaFrac == 0 {
		c.SigmaFrac = 1.0 / 6
	}
	switch c.Kind {
	case Stationary, ModeSwitch, DriftingMean, BurstyTail:
	default:
		return c, fmt.Errorf("workload: unknown scenario kind %v", c.Kind)
	}
	for _, f := range []float64{c.BaseFrac, c.AltFrac} {
		if f < 0 || f > 1 {
			return c, fmt.Errorf("workload: scenario mean fraction %g outside [0,1]", f)
		}
	}
	if c.BurstProb < 0 || c.BurstProb > 1 || c.TailProb < 0 || c.TailProb > 1 {
		return c, fmt.Errorf("workload: scenario probabilities must lie in [0,1]")
	}
	if c.SigmaFrac < 0 {
		return c, fmt.Errorf("workload: SigmaFrac must be non-negative, got %g", c.SigmaFrac)
	}
	return c, nil
}

// Scenario is a resolved nonstationary workload source over one task set.
type Scenario struct {
	set *task.Set
	cfg ScenarioConfig
}

// NewScenario validates cfg against set and returns the scenario.
func NewScenario(set *task.Set, cfg ScenarioConfig) (*Scenario, error) {
	if set == nil || set.N() == 0 {
		return nil, fmt.Errorf("workload: scenario needs a non-empty task set")
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Scenario{set: set, cfg: c}, nil
}

// Config returns the resolved configuration (defaults applied).
func (s *Scenario) Config() ScenarioConfig { return s.cfg }

// Set returns the task set the scenario draws for.
func (s *Scenario) Set() *task.Set { return s.set }

// hyperSeed derives the dedicated seed of hyper-period h's draw stream: a
// two-round SplitMix64 mix of (Seed, h, purpose), so streams of adjacent
// hyper-periods — and the burst-decision stream — never overlap.
func (s *Scenario) hyperSeed(h int, purpose uint64) uint64 {
	r := stats.NewRNG(s.cfg.Seed ^ (uint64(h)+1)*0xa24baed4963ee407 ^ purpose*0x9e3779b97f4a7c15)
	return r.SplitSeed()
}

// burstActive reports whether a BurstyTail burst covers hyper-period h:
// a burst started at any h₀ ∈ (h−BurstLen, h] — a pure function of h, so
// burst episodes are identical however the horizon is chunked.
func (s *Scenario) burstActive(h int) bool {
	for h0 := h - s.cfg.BurstLen + 1; h0 <= h; h0++ {
		if h0 < 0 {
			continue
		}
		r := stats.RNG{}
		r.Reset(s.hyperSeed(h0, 2))
		if r.Float64() < s.cfg.BurstProb {
			return true
		}
	}
	return false
}

// MeanFrac returns the regime mean fraction at hyper-period h — the ground
// truth a clairvoyant oracle adapts to. (Per-draw tail outliers of BurstyTail
// sit on top of this regime mean.)
func (s *Scenario) MeanFrac(h int) float64 {
	c := &s.cfg
	switch c.Kind {
	case ModeSwitch:
		if (h/c.SwitchEvery)%2 == 1 {
			return c.AltFrac
		}
		return c.BaseFrac
	case DriftingMean:
		if h >= c.DriftOver {
			return c.AltFrac
		}
		t := float64(h) / float64(c.DriftOver)
		return c.BaseFrac + t*(c.AltFrac-c.BaseFrac)
	case BurstyTail:
		if s.burstActive(h) {
			return c.AltFrac
		}
		return c.BaseFrac
	default: // Stationary
		return c.BaseFrac
	}
}

// TaskMean returns task t's regime mean in cycles at hyper-period h — what a
// clairvoyant oracle would install as the task's ACEC.
func (s *Scenario) TaskMean(h, t int) float64 {
	tk := &s.set.Tasks[t]
	return tk.BCEC + s.MeanFrac(h)*(tk.WCEC-tk.BCEC)
}

// FillActuals fills buf with hyper-period h's per-instance draws: taskOf[i]
// names the task owning instance i (the preemptive plan's Instances order
// downstream), and buf[i] receives that instance's actual cycles, always
// inside [BCEC, WCEC]. The draws consume a dedicated stream derived from
// (Seed, h) in instance order, so the stream is a pure function of the seed
// and the hyper-period — independent of chunk boundaries and of whatever
// schedule executes it.
func (s *Scenario) FillActuals(h int, taskOf []int, buf []float64) error {
	if len(taskOf) != len(buf) {
		return fmt.Errorf("workload: %d instances but %d buffer slots", len(taskOf), len(buf))
	}
	c := &s.cfg
	frac := s.MeanFrac(h)
	var rng stats.RNG
	rng.Reset(s.hyperSeed(h, 1))
	for i, t := range taskOf {
		if t < 0 || t >= s.set.N() {
			return fmt.Errorf("workload: instance %d names task %d of %d", i, t, s.set.N())
		}
		tk := &s.set.Tasks[t]
		span := tk.WCEC - tk.BCEC
		mean := tk.BCEC + frac*span
		if c.Kind == BurstyTail && rng.Float64() < c.TailProb {
			// Heavy-tail outlier: a near-worst-case release.
			mean = tk.BCEC + 0.95*span
		}
		// Cap σ so ±3σ fits the support: truncation then never biases the
		// realised mean off the regime mean (see SigmaFrac).
		sigma := c.SigmaFrac * span
		if lim := (mean - tk.BCEC) / 3; sigma > lim {
			sigma = lim
		}
		if lim := (tk.WCEC - mean) / 3; sigma > lim {
			sigma = lim
		}
		buf[i] = rng.TruncNormal(mean, sigma, tk.BCEC, tk.WCEC)
	}
	return nil
}

// Actuals generates hyper-periods [0, horizon) as one slice of per-instance
// rows — the convenience form chunked closed-loop harnesses index into.
func (s *Scenario) Actuals(horizon int, taskOf []int) ([][]float64, error) {
	out := make([][]float64, horizon)
	for h := range out {
		out[h] = make([]float64, len(taskOf))
		if err := s.FillActuals(h, taskOf, out[h]); err != nil {
			return nil, err
		}
	}
	return out, nil
}
