// Package fault is the deterministic fault-injection layer behind the
// robustness tests and chaos harness (DESIGN.md §10): a seeded registry of
// named failpoints, filesystem wrappers that convert armed failpoints into
// injected I/O errors, torn writes and added latency (fs.go), and the
// circuit breaker the tiered store uses to degrade to memory-only operation
// under persistent disk failure (breaker.go).
//
// Determinism: every failpoint owns its own splitmix64 stream, seeded from
// the registry seed and the point's name, and draws one value per call. For
// a fixed seed the k-th evaluation of a point always makes the same
// fire/pass decision — which *request* absorbs the k-th fault still depends
// on goroutine interleaving, but the fault schedule itself is replayable,
// and the invariants the chaos harness pins (no panics, byte-identical
// non-degraded responses, recoverable store prefix) hold for every
// interleaving.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the error every armed failpoint returns. Callers that need
// to distinguish injected from organic failures (tests, the chaos harness)
// test with errors.Is; production code must not — an injected error exercises
// exactly the path a real one would.
var ErrInjected = errors.New("fault: injected error")

// Spec arms one failpoint.
type Spec struct {
	// Prob is the per-call fire probability in [0,1]; 1 fires every call.
	Prob float64
	// After lets this many calls pass before the point starts drawing.
	After int
	// Count caps total fires (0 = unlimited).
	Count int
	// Torn, in (0,1], marks write failpoints as torn: the wrapped write
	// persists roughly this fraction of the buffer before failing, modelling
	// a crash mid-write rather than a clean error.
	Torn float64
	// Latency is added before the operation on every fire. A latency-only
	// point (Err false) slows the operation without failing it.
	Latency time.Duration
	// Err makes a fire return ErrInjected (after any Latency). Points parsed
	// from specs set it for modes "err" and "torn".
	Err bool
}

// Outcome is one call's injection decision.
type Outcome struct {
	// Err is ErrInjected when the point fired with Spec.Err set.
	Err error
	// Torn carries Spec.Torn when the fire is a torn write.
	Torn float64
	// Latency to impose before the operation.
	Latency time.Duration
}

// PointStats is one failpoint's accounting.
type PointStats struct {
	Calls int64 `json:"calls"`
	Fires int64 `json:"fires"`
}

// point is one armed failpoint: its spec plus its private RNG stream.
type point struct {
	spec  Spec
	state uint64 // splitmix64 state
	calls int64
	fires int64
}

// Registry holds the armed failpoints. The zero Registry is not usable;
// construct with NewRegistry. A nil *Registry is valid everywhere and never
// fires — production code passes nil and pays one nil-check per callsite.
type Registry struct {
	seed   uint64
	mu     sync.Mutex
	points map[string]*point
}

// NewRegistry returns an empty registry; every point armed on it derives its
// stream from seed and its own name.
func NewRegistry(seed uint64) *Registry {
	return &Registry{seed: seed, points: make(map[string]*point)}
}

// Arm installs (or replaces) the named failpoint. Re-arming resets the
// point's call/fire counters and its RNG stream.
func (r *Registry) Arm(name string, spec Spec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := fnv.New64a()
	h.Write([]byte(name))
	r.points[name] = &point{spec: spec, state: r.seed ^ h.Sum64()}
}

// Disarm removes the named failpoint; later Evals pass cleanly. Counters are
// discarded with the point, so snapshot first if they matter.
func (r *Registry) Disarm(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.points, name)
}

// DisarmAll clears every failpoint — the "faults clear" transition the
// breaker-recovery tests drive.
func (r *Registry) DisarmAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.points = make(map[string]*point)
}

// Eval draws the named point's next decision. Unarmed points (and a nil
// registry) return the zero Outcome.
func (r *Registry) Eval(name string) Outcome {
	if r == nil {
		return Outcome{}
	}
	r.mu.Lock()
	p, ok := r.points[name]
	if !ok {
		r.mu.Unlock()
		return Outcome{}
	}
	p.calls++
	fire := false
	if p.calls > int64(p.spec.After) &&
		(p.spec.Count == 0 || p.fires < int64(p.spec.Count)) {
		// splitmix64: one draw per call, consumed whether or not it fires so
		// the stream position is a pure function of the call count.
		p.state += 0x9e3779b97f4a7c15
		z := p.state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		fire = float64(z>>11)/(1<<53) < p.spec.Prob
	}
	if fire {
		p.fires++
	}
	spec := p.spec
	r.mu.Unlock()
	if !fire {
		return Outcome{}
	}
	out := Outcome{Torn: spec.Torn, Latency: spec.Latency}
	if spec.Err {
		out.Err = ErrInjected
	}
	return out
}

// Snapshot returns per-point accounting for every armed point.
func (r *Registry) Snapshot() map[string]PointStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]PointStats, len(r.points))
	for name, p := range r.points {
		out[name] = PointStats{Calls: p.calls, Fires: p.fires}
	}
	return out
}

// String renders the armed points and their accounting, sorted by name — the
// form the chaos harness logs on failure.
func (r *Registry) String() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s[calls=%d fires=%d]", n, snap[n].Calls, snap[n].Fires)
	}
	return b.String()
}

// ParseSpecs parses the CLI fault syntax into armable specs:
//
//	point=mode:prob[,point=mode:prob...]
//
// where mode is "err" (clean injected error), "torn:FRAC" (write fails after
// persisting FRAC of the buffer), or "slow:DUR" (added latency, no error) —
// e.g. "fs.write=torn:0.5:0.3,fs.read=err:0.1,fs.sync=slow:2ms:0.25".
// For "err" the one parameter is the probability; "torn" and "slow" take
// their own parameter first and the probability second.
func ParseSpecs(s string) (map[string]Spec, error) {
	out := make(map[string]Spec)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, item := range strings.Split(s, ",") {
		name, rest, ok := strings.Cut(strings.TrimSpace(item), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("fault: bad spec %q (want point=mode:prob)", item)
		}
		parts := strings.Split(rest, ":")
		mode := parts[0]
		var spec Spec
		var probStr string
		switch {
		case mode == "err" && len(parts) == 2:
			spec.Err = true
			probStr = parts[1]
		case mode == "torn" && len(parts) == 3:
			frac, err := strconv.ParseFloat(parts[1], 64)
			if err != nil || frac <= 0 || frac > 1 {
				return nil, fmt.Errorf("fault: bad torn fraction in %q", item)
			}
			spec.Err = true
			spec.Torn = frac
			probStr = parts[2]
		case mode == "slow" && len(parts) == 3:
			d, err := time.ParseDuration(parts[1])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fault: bad slow duration in %q", item)
			}
			spec.Latency = d
			probStr = parts[2]
		default:
			return nil, fmt.Errorf("fault: bad mode in %q (want err:P, torn:F:P or slow:D:P)", item)
		}
		prob, err := strconv.ParseFloat(probStr, 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("fault: bad probability in %q", item)
		}
		spec.Prob = prob
		out[name] = spec
	}
	return out, nil
}

// ArmSpecs arms every parsed spec on the registry.
func (r *Registry) ArmSpecs(specs map[string]Spec) {
	for name, spec := range specs {
		r.Arm(name, spec)
	}
}
