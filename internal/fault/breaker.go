package fault

import (
	"sync"
	"time"
)

// sleep is the latency hook; a test can swap it to keep chaos runs fast.
var sleep = time.Sleep

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: healthy — every operation is allowed.
	BreakerClosed BreakerState = iota
	// BreakerOpen: tripped — operations are refused until the cooldown
	// elapses.
	BreakerOpen
	// BreakerHalfOpen: cooldown elapsed — operations are allowed as probes;
	// the first success re-closes, the first failure re-opens.
	BreakerHalfOpen
)

// String renders the state for /v1/stats.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a consecutive-failure circuit breaker: Threshold consecutive
// recorded failures trip it open; after Cooldown it half-opens and lets
// probes through; one probe success re-closes it, one probe failure re-opens
// it (restarting the cooldown). It has no background goroutine — state
// transitions happen lazily inside Allow/Record against the injected clock —
// so a Breaker can never leak and tests drive it with a fake clock.
//
// The intended callsite shape (store.Tiered) is:
//
//	if b.Allow() { err := op(); if opTouchedDevice { b.Record(err) } }
//	else        { degrade() }
//
// Operations that resolve without touching the guarded dependency (an index
// miss that never reads the device) record nothing: only real evidence moves
// the breaker.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu          sync.Mutex
	state       BreakerState
	consecutive int
	openedAt    time.Time
	trips       int64
	recloses    int64
}

// NewBreaker returns a closed breaker. threshold <= 0 defaults to 5
// consecutive failures; cooldown <= 0 defaults to 5s.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// SetClock swaps the breaker's time source — test hook; call before use.
func (b *Breaker) SetClock(now func() time.Time) { b.now = now }

// Allow reports whether the guarded dependency may be used right now,
// half-opening first when the cooldown has elapsed.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // half-open: probes flow until one resolves
		return true
	}
}

// Record feeds one operation's outcome. nil err is a success; non-nil is a
// failure.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.consecutive = 0
		if b.state != BreakerClosed {
			b.state = BreakerClosed
			b.recloses++
		}
		return
	}
	b.consecutive++
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.consecutive >= b.threshold) {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.trips++
	} else if b.state == BreakerOpen {
		// A straggler failing after the trip: restart the cooldown so the
		// dependency gets a quiet window before the next probe.
		b.openedAt = b.now()
	}
}

// State returns the current position (advancing open → half-open if the
// cooldown has elapsed, so observers see what Allow would).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		b.state = BreakerHalfOpen
	}
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Recloses returns how many open→closed recoveries have completed.
func (b *Breaker) Recloses() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.recloses
}

// BreakerSnapshot is a point-in-time view of one breaker, shaped for stats
// endpoints (the fleet router reports one per peer).
type BreakerSnapshot struct {
	State    string `json:"state"`
	Trips    int64  `json:"trips"`
	Recloses int64  `json:"recloses"`
}

// Snapshot captures the breaker's position and lifetime counters in one lock
// acquisition (advancing open → half-open like State does).
func (b *Breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		b.state = BreakerHalfOpen
	}
	return BreakerSnapshot{State: b.state.String(), Trips: b.trips, Recloses: b.recloses}
}
