package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRegistryDeterminism: the fire/pass sequence of a point is a pure
// function of (seed, name, call index).
func TestRegistryDeterminism(t *testing.T) {
	draw := func(seed uint64) []bool {
		r := NewRegistry(seed)
		r.Arm("p", Spec{Prob: 0.3, Err: true})
		seq := make([]bool, 200)
		for i := range seq {
			seq[i] = r.Eval("p").Err != nil
		}
		return seq
	}
	a, b := draw(42), draw(42)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: same seed diverged", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("prob 0.3 fired %d/%d times — not drawing", fires, len(a))
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fire sequences")
	}
}

// TestRegistryAfterCount: After skips leading calls, Count caps total fires,
// and Snapshot accounts both.
func TestRegistryAfterCount(t *testing.T) {
	r := NewRegistry(1)
	r.Arm("p", Spec{Prob: 1, Err: true, After: 3, Count: 2})
	var fires int
	for i := 0; i < 10; i++ {
		out := r.Eval("p")
		if out.Err != nil {
			fires++
			if i < 3 {
				t.Fatalf("fired at call %d despite After=3", i)
			}
		}
	}
	if fires != 2 {
		t.Fatalf("Count=2 but fired %d times", fires)
	}
	snap := r.Snapshot()["p"]
	if snap.Calls != 10 || snap.Fires != 2 {
		t.Fatalf("snapshot = %+v, want calls=10 fires=2", snap)
	}
	r.DisarmAll()
	if r.Eval("p").Err != nil {
		t.Fatal("disarmed point still fires")
	}
}

// TestNilRegistry: nil registry is inert everywhere.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	if out := r.Eval("anything"); out.Err != nil || out.Latency != 0 {
		t.Fatalf("nil registry fired: %+v", out)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
}

// TestParseSpecs covers the CLI grammar and its rejections.
func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs("fs.write=torn:0.5:0.3,fs.read=err:0.1,fs.sync=slow:2ms:1")
	if err != nil {
		t.Fatal(err)
	}
	if w := specs["fs.write"]; !w.Err || w.Torn != 0.5 || w.Prob != 0.3 {
		t.Fatalf("torn spec = %+v", w)
	}
	if rd := specs["fs.read"]; !rd.Err || rd.Prob != 0.1 || rd.Torn != 0 {
		t.Fatalf("err spec = %+v", rd)
	}
	if sy := specs["fs.sync"]; sy.Err || sy.Latency != 2*time.Millisecond || sy.Prob != 1 {
		t.Fatalf("slow spec = %+v", sy)
	}
	if m, err := ParseSpecs("  "); err != nil || len(m) != 0 {
		t.Fatalf("empty spec: %v %v", m, err)
	}
	for _, bad := range []string{"noequals", "p=err", "p=err:2", "p=torn:0:1", "p=slow:xx:1", "p=weird:1"} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Fatalf("ParseSpecs(%q) accepted", bad)
		}
	}
}

// TestInjectFSErrAndTorn: the FS wrapper surfaces injected read errors and
// persists exactly the torn prefix of a failed write.
func TestInjectFSErrAndTorn(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(7)
	ifs := Inject(OS(), reg)

	path := filepath.Join(dir, "f")
	f, err := ifs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	reg.Arm("fs.write", Spec{Prob: 1, Err: true, Torn: 0.5})
	data := []byte("0123456789")
	if _, err := f.WriteAt(data, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v, want ErrInjected", err)
	}
	reg.Disarm("fs.write")
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Fatalf("torn write persisted %q, want the 50%% prefix", got)
	}

	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("disarmed write failed: %v", err)
	}
	reg.Arm("fs.read", Spec{Prob: 1, Err: true})
	buf := make([]byte, 10)
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v, want ErrInjected", err)
	}
	if _, err := ifs.ReadFile(path); !errors.Is(err, ErrInjected) {
		t.Fatal("ReadFile not intercepted")
	}
	if _, err := ifs.ReadDir(dir); !errors.Is(err, ErrInjected) {
		t.Fatal("ReadDir not intercepted")
	}
	reg.Disarm("fs.read")

	reg.Arm("fs.sync", Spec{Prob: 1, Err: true})
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync err = %v, want ErrInjected", err)
	}
	reg.Arm("fs.rename", Spec{Prob: 1, Err: true})
	if err := ifs.Rename(path, path+"2"); !errors.Is(err, ErrInjected) {
		t.Fatal("rename not intercepted")
	}
	reg.Arm("fs.open", Spec{Prob: 1, Err: true})
	if _, err := ifs.OpenFile(path, os.O_RDONLY, 0); !errors.Is(err, ErrInjected) {
		t.Fatal("open not intercepted")
	}
}

// TestBreakerLifecycle drives closed → open → half-open → closed with a fake
// clock, plus the half-open failure re-trip.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, time.Second)
	b.SetClock(func() time.Time { return now })

	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("new breaker not closed")
	}
	fail := errors.New("disk gone")
	b.Record(fail)
	b.Record(fail)
	if b.State() != BreakerClosed {
		t.Fatal("tripped below threshold")
	}
	b.Record(nil)
	b.Record(fail)
	b.Record(fail)
	if b.State() != BreakerClosed {
		t.Fatal("success did not reset the consecutive count")
	}
	b.Record(fail)
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state=%v trips=%d after 3 consecutive failures", b.State(), b.Trips())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed an op before cooldown")
	}
	now = now.Add(time.Second)
	if !b.Allow() || b.State() != BreakerHalfOpen {
		t.Fatal("cooldown elapsed but breaker did not half-open")
	}
	b.Record(fail)
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatal("half-open failure did not re-trip")
	}
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("second half-open probe refused")
	}
	b.Record(nil)
	if b.State() != BreakerClosed || b.Recloses() != 1 {
		t.Fatalf("probe success did not re-close: state=%v recloses=%d", b.State(), b.Recloses())
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
}
