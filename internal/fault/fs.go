package fault

import (
	"io/fs"
	"os"
)

// FS abstracts the filesystem operations the persistent store performs, so a
// fault registry can sit between the store and the OS. The operation set is
// exactly what internal/store needs — this is an injection seam, not a
// general VFS.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// File is the open-file surface the store uses.
type File interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Close() error
}

// OS returns the passthrough FS over the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Inject wraps inner so that the registry's fs.* failpoints intercept every
// operation:
//
//	fs.open    OpenFile
//	fs.read    ReadAt, ReadFile, ReadDir
//	fs.write   WriteAt, WriteFile (Spec.Torn persists a prefix first)
//	fs.sync    Sync
//	fs.rename  Rename
//
// A fired point imposes its latency, then (for Err points) fails the
// operation with ErrInjected. A torn WriteAt persists the configured prefix
// through the inner file before failing, modelling a crash mid-append; a
// torn WriteFile persists a prefix of the blob the same way. Truncate,
// Close, Stat, MkdirAll and Remove pass through unwrapped: the store's
// failure handling for them is exercised via the open/read/write points,
// and injecting into cleanup paths only makes chaos runs leak temp state.
func Inject(inner FS, reg *Registry) FS {
	return &injectFS{inner: inner, reg: reg}
}

type injectFS struct {
	inner FS
	reg   *Registry
}

// eval applies one point's decision, returning the error to surface (nil to
// proceed with the real operation).
func (f *injectFS) eval(name string) Outcome {
	out := f.reg.Eval(name)
	if out.Latency > 0 {
		sleep(out.Latency)
	}
	return out
}

func (f *injectFS) MkdirAll(path string, perm os.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

func (f *injectFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if out := f.eval("fs.read"); out.Err != nil {
		return nil, out.Err
	}
	return f.inner.ReadDir(name)
}

func (f *injectFS) ReadFile(name string) ([]byte, error) {
	if out := f.eval("fs.read"); out.Err != nil {
		return nil, out.Err
	}
	return f.inner.ReadFile(name)
}

func (f *injectFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	if out := f.eval("fs.write"); out.Err != nil {
		if n := int(out.Torn * float64(len(data))); n > 0 {
			f.inner.WriteFile(name, data[:n], perm)
		}
		return out.Err
	}
	return f.inner.WriteFile(name, data, perm)
}

func (f *injectFS) Rename(oldpath, newpath string) error {
	if out := f.eval("fs.rename"); out.Err != nil {
		return out.Err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *injectFS) Remove(name string) error { return f.inner.Remove(name) }

func (f *injectFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if out := f.eval("fs.open"); out.Err != nil {
		return nil, out.Err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectFile{inner: file, fs: f}, nil
}

type injectFile struct {
	inner File
	fs    *injectFS
}

func (f *injectFile) ReadAt(p []byte, off int64) (int, error) {
	if out := f.fs.eval("fs.read"); out.Err != nil {
		return 0, out.Err
	}
	return f.inner.ReadAt(p, off)
}

func (f *injectFile) WriteAt(p []byte, off int64) (int, error) {
	if out := f.fs.eval("fs.write"); out.Err != nil {
		n := 0
		if torn := int(out.Torn * float64(len(p))); torn > 0 {
			// A torn write: the prefix reaches the platter, the rest never
			// does, and the caller sees a failure — exactly the shape the
			// store's recovery scan must truncate away.
			n, _ = f.inner.WriteAt(p[:torn], off)
		}
		return n, out.Err
	}
	return f.inner.WriteAt(p, off)
}

func (f *injectFile) Sync() error {
	if out := f.fs.eval("fs.sync"); out.Err != nil {
		return out.Err
	}
	return f.inner.Sync()
}

func (f *injectFile) Truncate(size int64) error  { return f.inner.Truncate(size) }
func (f *injectFile) Stat() (os.FileInfo, error) { return f.inner.Stat() }
func (f *injectFile) Close() error               { return f.inner.Close() }
