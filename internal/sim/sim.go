// Package sim is the online phase of the paper's system: a deterministic
// discrete-event simulation of the DVS runtime that executes a static
// schedule (internal/core) over many hyper-periods while actual task
// workloads vary stochastically, reclaiming slack from early completions to
// lower the supply voltage of subsequent sub-instances (§2.2, §4).
//
// The dispatcher follows the fully-preemptive total order of the static
// plan; preemption points are exactly the higher-priority release times, so
// the order coincides with preemptive RM in the worst case and the static
// end-times are a sound contract (see DESIGN.md §2).
//
// The runtime is a three-part engine (DESIGN.md §5): Compile flattens a
// schedule into a CompiledPlan of per-piece arrays with the Static/NoDVS
// voltages precomputed; a zero-alloc dispatcher with an inlined SimpleInverse
// fast path replays the plan over one hyper-period; and Config.Workers shards
// hyper-periods across goroutines with bit-identical results for any worker
// count.
package sim

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// SlackPolicy selects how runtime slack is used.
type SlackPolicy int

const (
	// Greedy gives all slack from the just-finished piece to the next one
	// by recomputing its voltage from the actual start time and its static
	// end-time — the paper's runtime policy.
	Greedy SlackPolicy = iota
	// Static executes every piece at the voltage the static schedule
	// implies (worst-case budget over the full static window), idling on
	// early completion. It isolates the offline contribution (ablation E5).
	Static
	// NoDVS runs everything at Vmax, idling otherwise — the no-scaling
	// reference that normalises absolute energies.
	NoDVS
)

// String names the policy.
func (p SlackPolicy) String() string {
	switch p {
	case Greedy:
		return "greedy"
	case Static:
		return "static"
	case NoDVS:
		return "nodvs"
	default:
		return fmt.Sprintf("SlackPolicy(%d)", int(p))
	}
}

// Overhead models voltage-transition cost (ablation E7; the paper assumes
// both are negligible, §3). TimeMs is charged on every voltage change before
// execution resumes; EnergyPerSwitch is added to the energy account.
type Overhead struct {
	TimeMs          float64
	EnergyPerSwitch float64
	// Epsilon is the voltage-change deadband: changes smaller than this do
	// not count as switches. Zero means every change switches.
	Epsilon float64
}

// Config parameterises a simulation run.
type Config struct {
	// Policy is the slack policy (default Greedy).
	Policy SlackPolicy
	// Hyperperiods is the number of hyper-periods to simulate (paper: one
	// thousand). Default 100.
	Hyperperiods int
	// Seed seeds the workload draws; runs with equal seeds are identical.
	Seed uint64
	// Overhead, when non-zero, charges voltage-transition costs.
	Overhead Overhead
	// Dist overrides the per-instance actual-workload distribution; nil
	// selects the paper's truncated Normal (mean ACEC, σ = (WCEC−BCEC)/6,
	// support [BCEC, WCEC]).
	Dist Distribution
	// Workers shards hyper-periods across goroutines (<= 0 means serial).
	// Results are bit-identical for any worker count: every hyper-period
	// draws from its own RNG stream split from Seed in hyper-period order
	// before dispatch, and results are folded back in hyper-period order.
	Workers int
	// Ctx, when non-nil, cancels a long simulation early: workers stop at
	// the next hyper-period boundary once it is done and Run returns Ctx's
	// error instead of a Result. A run that completes is bit-identical to
	// one without a context.
	Ctx context.Context
	// Observer, when non-nil, receives every hyper-period's per-instance
	// workload draws — the per-job observation hook the feedback subsystem
	// (internal/feedback) learns execution distributions from. Workers
	// record draws into an index-addressed buffer and the callback runs
	// serially, in hyper-period order, on the Run caller's goroutine after
	// the fan-in, so observation order — and therefore every estimator fed
	// from it — is identical for any Workers value. The slice is only valid
	// during the call and must not be retained; Observer is never invoked
	// for a run that returns an error. Observing never perturbs the draws:
	// a run with an Observer is bit-identical to one without.
	Observer func(hyperperiod int, actual []float64)

	// reference forces the generic per-piece power.Model path for every
	// policy, bypassing the compiled precomputations and the SimpleInverse
	// fast path. Test-only: it is the oracle the compiled dispatcher is
	// cross-checked against for bit-identity.
	reference bool
}

// Distribution draws an actual execution cycle count for one release of a
// task described by (bcec, acec, wcec).
type Distribution func(rng *stats.RNG, bcec, acec, wcec float64) float64

// PaperDist is the §4 distribution: Normal with mean ACEC and standard
// deviation (WCEC−BCEC)/6, truncated to [BCEC, WCEC].
func PaperDist(rng *stats.RNG, bcec, acec, wcec float64) float64 {
	return rng.TruncNormal(acec, (wcec-bcec)/6, bcec, wcec)
}

// UniformDist draws uniformly over [BCEC, WCEC] (ablation).
func UniformDist(rng *stats.RNG, bcec, acec, wcec float64) float64 {
	return rng.Uniform(bcec, wcec)
}

// AlwaysWCECDist pins every release at its worst case (adversarial check).
func AlwaysWCECDist(_ *stats.RNG, _, _, wcec float64) float64 { return wcec }

// AlwaysACECDist pins every release at its average case.
func AlwaysACECDist(_ *stats.RNG, _, acec, _ float64) float64 { return acec }

// BimodalDist models tasks that normally run short but occasionally need
// their worst case — the scenario the paper's abstract highlights. 10% of
// releases cluster near WCEC, the rest near BCEC.
func BimodalDist(rng *stats.RNG, bcec, _, wcec float64) float64 {
	sigma := (wcec - bcec) / 12
	return rng.Bimodal(bcec+sigma, wcec-sigma, sigma, 0.1, bcec, wcec)
}

// Result aggregates a simulation.
type Result struct {
	// Energy is the total energy over all simulated hyper-periods.
	Energy float64
	// PerHyperperiod summarises energy per hyper-period.
	PerHyperperiod stats.Summary
	// DeadlineMisses counts sub-instances that completed after their
	// absolute deadline (must be zero for valid schedules).
	DeadlineMisses int
	// WorstOvershoot is the largest deadline overshoot observed (ms).
	WorstOvershoot float64
	// BusyTime is total executing time (ms) across the run.
	BusyTime float64
	// Switches counts voltage transitions (with Overhead.Epsilon deadband).
	Switches int
	// MeanVoltage is the execution-time-weighted mean supply voltage.
	MeanVoltage float64
}

// Run simulates schedule s under cfg and returns aggregate statistics. It
// compiles s on every call; callers simulating the same schedule repeatedly
// (seed sweeps, policy ablations) should Compile once and use
// CompiledPlan.Run.
func Run(s *core.Schedule, cfg Config) (*Result, error) {
	p, err := Compile(s)
	if err != nil {
		return nil, err
	}
	return p.Run(cfg)
}

// hyperResult is the aggregate of one simulated hyper-period.
type hyperResult struct {
	energy    float64
	misses    int
	worstOver float64
	busy      float64
	switches  int
	voltTime  float64 // ∫ V dt over busy time
}

// Compare runs two schedules under identical workload draws (same seed and
// distribution) and returns the percentage energy improvement of a over b:
// 100·(E_b − E_a)/E_b. This is the quantity Fig. 6 plots with a = ACS and
// b = WCS. The two schedules are simulated concurrently; see ComparePlans to
// amortise compilation across repeated comparisons.
func Compare(a, b *core.Schedule, cfg Config) (improvementPct float64, ra, rb *Result, err error) {
	pa, err := Compile(a)
	if err != nil {
		return 0, nil, nil, err
	}
	pb, err := Compile(b)
	if err != nil {
		return 0, nil, nil, err
	}
	return ComparePlans(pa, pb, cfg)
}
