// Package sim is the online phase of the paper's system: a deterministic
// discrete-event simulation of the DVS runtime that executes a static
// schedule (internal/core) over many hyper-periods while actual task
// workloads vary stochastically, reclaiming slack from early completions to
// lower the supply voltage of subsequent sub-instances (§2.2, §4).
//
// The dispatcher follows the fully-preemptive total order of the static
// plan; preemption points are exactly the higher-priority release times, so
// the order coincides with preemptive RM in the worst case and the static
// end-times are a sound contract (see DESIGN.md §2).
package sim

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/stats"
)

// SlackPolicy selects how runtime slack is used.
type SlackPolicy int

const (
	// Greedy gives all slack from the just-finished piece to the next one
	// by recomputing its voltage from the actual start time and its static
	// end-time — the paper's runtime policy.
	Greedy SlackPolicy = iota
	// Static executes every piece at the voltage the static schedule
	// implies (worst-case budget over the full static window), idling on
	// early completion. It isolates the offline contribution (ablation E5).
	Static
	// NoDVS runs everything at Vmax, idling otherwise — the no-scaling
	// reference that normalises absolute energies.
	NoDVS
)

// String names the policy.
func (p SlackPolicy) String() string {
	switch p {
	case Greedy:
		return "greedy"
	case Static:
		return "static"
	case NoDVS:
		return "nodvs"
	default:
		return fmt.Sprintf("SlackPolicy(%d)", int(p))
	}
}

// Overhead models voltage-transition cost (ablation E7; the paper assumes
// both are negligible, §3). TimeMs is charged on every voltage change before
// execution resumes; EnergyPerSwitch is added to the energy account.
type Overhead struct {
	TimeMs          float64
	EnergyPerSwitch float64
	// Epsilon is the voltage-change deadband: changes smaller than this do
	// not count as switches. Zero means every change switches.
	Epsilon float64
}

// Config parameterises a simulation run.
type Config struct {
	// Policy is the slack policy (default Greedy).
	Policy SlackPolicy
	// Hyperperiods is the number of hyper-periods to simulate (paper: one
	// thousand). Default 100.
	Hyperperiods int
	// Seed seeds the workload draws; runs with equal seeds are identical.
	Seed uint64
	// Overhead, when non-zero, charges voltage-transition costs.
	Overhead Overhead
	// Dist overrides the per-instance actual-workload distribution; nil
	// selects the paper's truncated Normal (mean ACEC, σ = (WCEC−BCEC)/6,
	// support [BCEC, WCEC]).
	Dist Distribution
}

// Distribution draws an actual execution cycle count for one release of a
// task described by (bcec, acec, wcec).
type Distribution func(rng *stats.RNG, bcec, acec, wcec float64) float64

// PaperDist is the §4 distribution: Normal with mean ACEC and standard
// deviation (WCEC−BCEC)/6, truncated to [BCEC, WCEC].
func PaperDist(rng *stats.RNG, bcec, acec, wcec float64) float64 {
	return rng.TruncNormal(acec, (wcec-bcec)/6, bcec, wcec)
}

// UniformDist draws uniformly over [BCEC, WCEC] (ablation).
func UniformDist(rng *stats.RNG, bcec, acec, wcec float64) float64 {
	return rng.Uniform(bcec, wcec)
}

// AlwaysWCECDist pins every release at its worst case (adversarial check).
func AlwaysWCECDist(_ *stats.RNG, _, _, wcec float64) float64 { return wcec }

// AlwaysACECDist pins every release at its average case.
func AlwaysACECDist(_ *stats.RNG, _, acec, _ float64) float64 { return acec }

// BimodalDist models tasks that normally run short but occasionally need
// their worst case — the scenario the paper's abstract highlights. 10% of
// releases cluster near WCEC, the rest near BCEC.
func BimodalDist(rng *stats.RNG, bcec, _, wcec float64) float64 {
	sigma := (wcec - bcec) / 12
	return rng.Bimodal(bcec+sigma, wcec-sigma, sigma, 0.1, bcec, wcec)
}

// Result aggregates a simulation.
type Result struct {
	// Energy is the total energy over all simulated hyper-periods.
	Energy float64
	// PerHyperperiod summarises energy per hyper-period.
	PerHyperperiod stats.Summary
	// DeadlineMisses counts sub-instances that completed after their
	// absolute deadline (must be zero for valid schedules).
	DeadlineMisses int
	// WorstOvershoot is the largest deadline overshoot observed (ms).
	WorstOvershoot float64
	// BusyTime is total executing time (ms) across the run.
	BusyTime float64
	// Switches counts voltage transitions (with Overhead.Epsilon deadband).
	Switches int
	// MeanVoltage is the execution-time-weighted mean supply voltage.
	MeanVoltage float64
}

// Run simulates schedule s under cfg and returns aggregate statistics.
func Run(s *core.Schedule, cfg Config) (*Result, error) {
	if s == nil {
		return nil, fmt.Errorf("sim: nil schedule")
	}
	if cfg.Hyperperiods <= 0 {
		cfg.Hyperperiods = 100
	}
	dist := cfg.Dist
	if dist == nil {
		dist = PaperDist
	}
	rng := stats.NewRNG(cfg.Seed)
	res := &Result{}
	actual := make([]float64, len(s.Plan.Instances))
	var voltWeighted float64

	for h := 0; h < cfg.Hyperperiods; h++ {
		for idx := range actual {
			t := &s.Plan.Set.Tasks[s.Plan.Instances[idx].TaskIndex]
			actual[idx] = dist(rng, t.BCEC, t.ACEC, t.WCEC)
		}
		hp, err := runOne(s, cfg, actual)
		if err != nil {
			return nil, err
		}
		res.Energy += hp.energy
		res.PerHyperperiod.Add(hp.energy)
		res.DeadlineMisses += hp.misses
		if hp.worstOver > res.WorstOvershoot {
			res.WorstOvershoot = hp.worstOver
		}
		res.BusyTime += hp.busy
		res.Switches += hp.switches
		voltWeighted += hp.voltTime
	}
	if res.BusyTime > 0 {
		res.MeanVoltage = voltWeighted / res.BusyTime
	}
	return res, nil
}

type hyperResult struct {
	energy    float64
	misses    int
	worstOver float64
	busy      float64
	switches  int
	voltTime  float64 // ∫ V dt over busy time
}

// runOne executes one hyper-period. Each instance's actual cycles are
// consumed across its pieces in total order, each piece bounded by its
// worst-case budget; the runtime voltage of a piece depends on the policy.
func runOne(s *core.Schedule, cfg Config, actual []float64) (hyperResult, error) {
	var out hyperResult
	remaining := append([]float64(nil), actual...)
	model := s.Model
	t := 0.0
	lastV := math.NaN()

	for pos := range s.Plan.Subs {
		su := &s.Plan.Subs[pos]
		if s.WCWork[pos] <= 0 {
			continue
		}
		w := math.Min(remaining[su.InstanceIndex], s.WCWork[pos])
		remaining[su.InstanceIndex] -= w
		if w <= 0 {
			continue
		}
		a := math.Max(t, su.Release)

		var v float64
		switch cfg.Policy {
		case Greedy:
			v, _ = power.VoltageForWindow(model, s.WCWork[pos], s.End[pos]-a)
		case Static:
			// Voltage from the *static* window: budget over [static start,
			// end], where the static start is the latest time the worst
			// case could begin — end minus the worst-case execution span.
			v, _ = power.VoltageForWindow(model, s.WCWork[pos], staticWindow(s, pos))
		case NoDVS:
			v = model.VMax()
		default:
			return out, fmt.Errorf("sim: unknown slack policy %v", cfg.Policy)
		}

		if cfg.Overhead.TimeMs > 0 || cfg.Overhead.EnergyPerSwitch > 0 {
			if math.IsNaN(lastV) || math.Abs(v-lastV) > cfg.Overhead.Epsilon {
				out.switches++
				out.energy += cfg.Overhead.EnergyPerSwitch
				a += cfg.Overhead.TimeMs
			}
		} else if math.IsNaN(lastV) || v != lastV {
			out.switches++
		}
		lastV = v

		dur := w * model.CycleTime(v)
		end := a + dur
		ceff := s.Plan.Set.Tasks[su.TaskIndex].Ceff
		out.energy += power.Energy(ceff, v, w)
		out.busy += dur
		out.voltTime += v * dur
		t = end

		// A piece that finished its share late only matters if the parent
		// instance has no later budget; conservatively flag any end past
		// the absolute deadline — correct schedules never trigger it.
		if end > su.Deadline+1e-9 {
			out.misses++
			if over := end - su.Deadline; over > out.worstOver {
				out.worstOver = over
			}
		}
	}
	return out, nil
}

// staticWindow returns the window the static schedule reserved for piece
// pos: from the latest worst-case start of the previous piece (its end) or
// the release, to pos's end-time.
func staticWindow(s *core.Schedule, pos int) float64 {
	prevEnd := 0.0
	if pos > 0 {
		prevEnd = s.End[pos-1]
	}
	start := math.Max(prevEnd, s.Plan.Subs[pos].Release)
	return s.End[pos] - start
}

// Compare runs two schedules under identical workload draws (same seed and
// distribution) and returns the percentage energy improvement of a over b:
// 100·(E_b − E_a)/E_b. This is the quantity Fig. 6 plots with a = ACS and
// b = WCS.
func Compare(a, b *core.Schedule, cfg Config) (improvementPct float64, ra, rb *Result, err error) {
	ra, err = Run(a, cfg)
	if err != nil {
		return 0, nil, nil, err
	}
	rb, err = Run(b, cfg)
	if err != nil {
		return 0, nil, nil, err
	}
	if rb.Energy <= 0 {
		return 0, ra, rb, fmt.Errorf("sim: baseline consumed no energy")
	}
	return 100 * (rb.Energy - ra.Energy) / rb.Energy, ra, rb, nil
}
