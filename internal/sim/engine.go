package sim

import (
	"fmt"
	"sync"

	"repro/internal/stats"
)

// The deterministic parallel hyper-period engine.
//
// A simulation of H hyper-periods is a sequence of H independent experiments:
// each draws its own workload vector and replays the compiled plan from time
// zero (the dispatcher state — current time, last voltage — resets at every
// hyper-period boundary, as in the serial engine this replaces). That
// independence is what the engine exploits: hyper-periods are sharded into
// contiguous blocks across Config.Workers goroutines.
//
// Determinism contract (see DESIGN.md §5): the workload stream of every
// hyper-period is drawn from its own stats.RNG stream, whose seed is split
// from the master seed in hyper-period order *before* any work is dispatched;
// per-hyper-period results land in an index-addressed slice; and the fan-in
// folds them into Result in hyper-period order. Energy sums, the
// PerHyperperiod summary accumulation order, switch counts — every field of
// Result is therefore bit-identical for any Workers value, including 1.

// runWorkspace holds one worker's mutable state. Buffers are allocated once
// per worker per run; the per-hyper-period loop itself never allocates.
type runWorkspace struct {
	rng               stats.RNG
	actual, remaining []float64
}

func (p *CompiledPlan) newWorkspace() *runWorkspace {
	return &runWorkspace{
		actual:    make([]float64, len(p.bcec)),
		remaining: make([]float64, len(p.bcec)),
	}
}

// runBlock simulates hyper-periods [lo, hi) into perH. When obs is non-nil
// (an Observer is installed) each hyper-period's draws are copied into its
// index-addressed slot, after drawing and before dispatch, so capture can
// never perturb the workload stream.
func (p *CompiledPlan) runBlock(cfg *Config, dist Distribution, seeds []uint64, perH []hyperResult, obs []float64, lo, hi int, ws *runWorkspace) {
	n := len(p.bcec)
	for h := lo; h < hi; h++ {
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			return // Run surfaces the error after fan-in
		}
		ws.rng.Reset(seeds[h])
		for idx := range ws.actual {
			ws.actual[idx] = dist(&ws.rng, p.bcec[idx], p.acec[idx], p.wcec[idx])
		}
		if obs != nil {
			copy(obs[h*n:(h+1)*n], ws.actual)
		}
		perH[h] = p.runOne(cfg, ws.actual, ws.remaining)
	}
}

// runActualsBlock replays hyper-periods [lo, hi) under caller-supplied
// workload vectors instead of drawn ones.
func (p *CompiledPlan) runActualsBlock(cfg *Config, actuals [][]float64, perH []hyperResult, lo, hi int, ws *runWorkspace) {
	for h := lo; h < hi; h++ {
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			return
		}
		perH[h] = p.runOne(cfg, actuals[h], ws.remaining)
	}
}

// Run simulates the compiled plan under cfg and returns aggregate statistics.
// It may be called concurrently from multiple goroutines.
func (p *CompiledPlan) Run(cfg Config) (*Result, error) {
	switch cfg.Policy {
	case Greedy, Static, NoDVS:
	default:
		return nil, fmt.Errorf("sim: unknown slack policy %v", cfg.Policy)
	}
	if cfg.Hyperperiods <= 0 {
		cfg.Hyperperiods = 100
	}
	dist := cfg.Dist
	if dist == nil {
		dist = PaperDist
	}
	h := cfg.Hyperperiods
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > h {
		workers = h
	}

	// One RNG stream per hyper-period, split in index order before dispatch.
	master := stats.NewRNG(cfg.Seed)
	seeds := make([]uint64, h)
	for i := range seeds {
		seeds[i] = master.SplitSeed()
	}

	var obs []float64
	if cfg.Observer != nil {
		obs = make([]float64, h*len(p.bcec))
	}

	perH := make([]hyperResult, h)
	if workers == 1 {
		p.runBlock(&cfg, dist, seeds, perH, obs, 0, h, p.newWorkspace())
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*h/workers, (w+1)*h/workers
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				p.runBlock(&cfg, dist, seeds, perH, obs, lo, hi, p.newWorkspace())
			}(lo, hi)
		}
		wg.Wait()
	}

	// Cancellation is authoritative: a canceled run returns the context's
	// error rather than a partial, timing-dependent aggregate.
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, err
		}
	}

	if cfg.Observer != nil {
		n := len(p.bcec)
		for i := 0; i < h; i++ {
			cfg.Observer(i, obs[i*n:(i+1)*n])
		}
	}
	return fold(perH), nil
}

// fold aggregates per-hyper-period results in hyper-period order, exactly as
// the serial loop would — the in-order fan-in shared by Run and RunActuals.
func fold(perH []hyperResult) *Result {
	res := &Result{}
	var voltWeighted float64
	for i := range perH {
		hp := &perH[i]
		res.Energy += hp.energy
		res.PerHyperperiod.Add(hp.energy)
		res.DeadlineMisses += hp.misses
		if hp.worstOver > res.WorstOvershoot {
			res.WorstOvershoot = hp.worstOver
		}
		res.BusyTime += hp.busy
		res.Switches += hp.switches
		voltWeighted += hp.voltTime
	}
	if res.BusyTime > 0 {
		res.MeanVoltage = voltWeighted / res.BusyTime
	}
	return res
}

// RunActuals replays the compiled plan over len(actuals) hyper-periods whose
// per-instance workloads are supplied by the caller instead of drawn from
// Config.Dist — the execution entry point of the feedback subsystem's closed
// loop, where an external (possibly nonstationary) scenario owns the workload
// stream and the plan under execution is hot-swapped at hyper-period
// boundaries: because the stream is external, splitting a horizon into chunks
// executed on different plans changes nothing about the workloads, and each
// chunk's Result is bit-identical for any Workers value exactly as Run's is.
//
// Config.Hyperperiods, Seed and Dist are ignored; Policy, Overhead, Workers,
// Ctx and Observer apply as in Run. Every actuals[h] must have length
// Instances() and is read, never written.
func (p *CompiledPlan) RunActuals(cfg Config, actuals [][]float64) (*Result, error) {
	switch cfg.Policy {
	case Greedy, Static, NoDVS:
	default:
		return nil, fmt.Errorf("sim: unknown slack policy %v", cfg.Policy)
	}
	h := len(actuals)
	if h == 0 {
		return &Result{}, nil
	}
	n := len(p.bcec)
	for i, row := range actuals {
		if len(row) != n {
			return nil, fmt.Errorf("sim: actuals[%d] has %d workloads, want %d instances", i, len(row), n)
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > h {
		workers = h
	}
	perH := make([]hyperResult, h)
	if workers == 1 {
		p.runActualsBlock(&cfg, actuals, perH, 0, h, p.newWorkspace())
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*h/workers, (w+1)*h/workers
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				p.runActualsBlock(&cfg, actuals, perH, lo, hi, p.newWorkspace())
			}(lo, hi)
		}
		wg.Wait()
	}
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	if cfg.Observer != nil {
		for i := 0; i < h; i++ {
			cfg.Observer(i, actuals[i])
		}
	}
	return fold(perH), nil
}

// ComparePlans runs two compiled plans under identical workload draws (same
// seed and distribution) concurrently and returns the percentage energy
// improvement of a over b: 100·(E_b − E_a)/E_b. This is the quantity Fig. 6
// plots with a = ACS and b = WCS. Callers that compare the same schedules
// under many seeds or overheads should compile once and call this in a loop.
func ComparePlans(a, b *CompiledPlan, cfg Config) (improvementPct float64, ra, rb *Result, err error) {
	// The two runs execute concurrently, so give each side half the worker
	// budget to keep total busy goroutines at the requested level. Results
	// are bit-identical for any worker count, so this is invisible.
	if cfg.Workers > 1 {
		cfg.Workers = (cfg.Workers + 1) / 2
	}
	var errB error
	done := make(chan struct{})
	go func() {
		rb, errB = b.Run(cfg)
		close(done)
	}()
	ra, err = a.Run(cfg)
	<-done
	if err == nil {
		err = errB
	}
	if err != nil {
		return 0, nil, nil, err
	}
	if rb.Energy <= 0 {
		return 0, ra, rb, fmt.Errorf("sim: baseline consumed no energy")
	}
	return 100 * (rb.Energy - ra.Energy) / rb.Energy, ra, rb, nil
}
