package sim

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/power"
)

// reservationWork is the worst-case budget below which a piece counts as a
// pure reservation: the static schedule provably never executes it, so it is
// dropped from the runtime order and does not end the window of its successor
// (the zero-budget relaxation, DESIGN.md §2). Shared with the solver's
// objective evaluator so both sides agree about which pieces are dead.
const reservationWork = core.DeadWork

// CompiledPlan is a core.Schedule flattened for the online engine: everything
// that is invariant across hyper-periods — the executable pieces in total
// order with their budgets, windows and deadlines, the per-instance workload
// distribution parameters, the precomputed Static/NoDVS voltages (those
// policies' voltages do not depend on runtime state), and the SimpleInverse
// fast-path constants — is extracted once so the per-hyper-period loop reads
// only flat arrays and performs no interface dispatch on the paper's model.
//
// A CompiledPlan is immutable after Compile and safe for concurrent use by
// any number of simulation workers.
type CompiledPlan struct {
	model power.Model

	// Per executable piece (positions of the schedule's total order whose
	// worst-case budget is positive; pieces that can never execute are
	// dropped at compile time):
	wcWork    []float64 // worst-case budget R̂ (cycles)
	release   []float64 // absolute release (ms)
	end       []float64 // static end-time e (ms)
	deadline  []float64 // absolute deadline (ms)
	ceff      []float64 // effective capacitance of the owning task
	inst      []int32   // owning instance index (remaining-workload account)
	staticWin []float64 // static window: end minus the latest worst-case start

	// Precomputed Static-policy execution parameters: voltage, cycle time
	// and energy-per-cycle from the static window — runtime-state free.
	vStatic, tcStatic, epcStatic []float64
	// Precomputed NoDVS parameters (voltage and cycle time are shared by
	// every piece; energy-per-cycle still varies with Ceff).
	vNoDVS, tcNoDVS float64
	epcNoDVS        []float64

	// Per instance, the workload-distribution parameters of the owning task.
	bcec, acec, wcec []float64

	// SimpleInverse specialisation (the model all paper experiments run on):
	// constants mirrored out of the model so the Greedy voltage algebra can
	// be inlined in the dispatch loop without interface calls.
	fastOK           bool
	fK, fVMin, fVMax float64
}

// Compile flattens s into a CompiledPlan. The schedule is read once; later
// mutations of s are not reflected in the plan.
func Compile(s *core.Schedule) (*CompiledPlan, error) {
	if s == nil {
		return nil, fmt.Errorf("sim: nil schedule")
	}
	if s.Model == nil {
		return nil, fmt.Errorf("sim: schedule has no processor model")
	}
	if len(s.End) != len(s.Plan.Subs) || len(s.WCWork) != len(s.Plan.Subs) {
		return nil, fmt.Errorf("sim: schedule arrays inconsistent with plan (%d subs, %d ends, %d budgets)",
			len(s.Plan.Subs), len(s.End), len(s.WCWork))
	}
	model := s.Model
	p := &CompiledPlan{model: model}
	p.vNoDVS = model.VMax()
	p.tcNoDVS = model.CycleTime(p.vNoDVS)

	p.bcec = make([]float64, len(s.Plan.Instances))
	p.acec = make([]float64, len(s.Plan.Instances))
	p.wcec = make([]float64, len(s.Plan.Instances))
	for idx := range s.Plan.Instances {
		t := &s.Plan.Set.Tasks[s.Plan.Instances[idx].TaskIndex]
		p.bcec[idx], p.acec[idx], p.wcec[idx] = t.BCEC, t.ACEC, t.WCEC
	}

	// prevEnd is the end of the last piece that bears worst-case work: pure
	// reservations never execute, so they do not delimit the static window
	// of their successor (DESIGN.md §2's "last work-bearing predecessor").
	prevEnd := 0.0
	for pos := range s.Plan.Subs {
		su := &s.Plan.Subs[pos]
		wc := s.WCWork[pos]
		if wc <= reservationWork {
			continue // pure reservation: not part of the runtime order
		}
		start := math.Max(prevEnd, su.Release)
		win := s.End[pos] - start
		prevEnd = s.End[pos]
		ceff := s.Plan.Set.Tasks[su.TaskIndex].Ceff

		p.wcWork = append(p.wcWork, wc)
		p.release = append(p.release, su.Release)
		p.end = append(p.end, s.End[pos])
		p.deadline = append(p.deadline, su.Deadline)
		p.ceff = append(p.ceff, ceff)
		p.inst = append(p.inst, int32(su.InstanceIndex))
		p.staticWin = append(p.staticWin, win)

		vSt, _ := power.VoltageForWindow(model, wc, win)
		p.vStatic = append(p.vStatic, vSt)
		p.tcStatic = append(p.tcStatic, model.CycleTime(vSt))
		p.epcStatic = append(p.epcStatic, ceff*vSt*vSt)
		p.epcNoDVS = append(p.epcNoDVS, ceff*p.vNoDVS*p.vNoDVS)
	}

	if m, ok := model.(*power.SimpleInverse); ok {
		p.fastOK = true
		p.fK, p.fVMin, p.fVMax = m.K, m.Vmin, m.Vmax
	}
	return p, nil
}

// Pieces returns the number of executable pieces per hyper-period.
func (p *CompiledPlan) Pieces() int { return len(p.wcWork) }

// Instances returns the number of task instances per hyper-period.
func (p *CompiledPlan) Instances() int { return len(p.bcec) }

// runOne executes one hyper-period over the compiled arrays. actual holds the
// per-instance workload draws; remaining is caller-owned scratch of the same
// length (overwritten). The loop performs no heap allocation.
//
// The cfg.reference flag switches every policy to per-piece power.Model
// interface calls (no precomputed voltages, no inlined algebra); it exists so
// tests can cross-check that the compiled fast paths are bit-identical to the
// generic path. Bit-identity holds because the fast paths perform the same
// floating-point operations in the same order — see the Greedy branch below
// and the compile-time Static/NoDVS precomputation, which call the very model
// methods the reference path calls at runtime.
func (p *CompiledPlan) runOne(cfg *Config, actual, remaining []float64) hyperResult {
	var out hyperResult
	copy(remaining, actual)
	model := p.model
	fast := p.fastOK && !cfg.reference
	hasOv := cfg.Overhead.TimeMs > 0 || cfg.Overhead.EnergyPerSwitch > 0
	t := 0.0
	lastV := math.NaN()

	// Local views of the hot arrays so the loop body indexes them without
	// re-loading the plan's slice headers.
	wcWork, release, ends, insts := p.wcWork, p.release, p.end, p.inst

	for i := range wcWork {
		wc := wcWork[i]
		inst := insts[i]
		w := remaining[inst]
		if w > wc {
			w = wc
		}
		if w <= 0 {
			continue
		}
		remaining[inst] -= w
		a := t
		if r := release[i]; r > a {
			a = r
		}

		var v, ct, epc float64
		switch cfg.Policy {
		case Greedy:
			if fast {
				// Inlined SimpleInverse VoltageForWindow + CycleTime with the
				// exact operation order of the generic path, so results match
				// it bit for bit: tc = window/wc, v = clamp(K/tc), ct = K/v.
				window := ends[i] - a
				if window <= 0 {
					v = p.fVMax
				} else if v = p.fK / (window / wc); v < p.fVMin {
					v = p.fVMin
				} else if v > p.fVMax {
					v = p.fVMax
				}
				ct = p.fK / v
			} else {
				v, _ = power.VoltageForWindow(model, wc, ends[i]-a)
				ct = model.CycleTime(v)
			}
			epc = p.ceff[i] * v * v
		case Static:
			if cfg.reference {
				// Voltage from the *static* window: budget over [static
				// start, end], where the static start is the latest time the
				// worst case could begin.
				v, _ = power.VoltageForWindow(model, wc, p.staticWin[i])
				ct = model.CycleTime(v)
				epc = p.ceff[i] * v * v
			} else {
				v, ct, epc = p.vStatic[i], p.tcStatic[i], p.epcStatic[i]
			}
		default: // NoDVS; unknown policies are rejected before dispatch
			if cfg.reference {
				v = model.VMax()
				ct = model.CycleTime(v)
				epc = p.ceff[i] * v * v
			} else {
				v, ct, epc = p.vNoDVS, p.tcNoDVS, p.epcNoDVS[i]
			}
		}

		// Voltage-transition accounting. The very first piece establishes
		// the initial operating point rather than switching to it: a DVS
		// processor is already running at some voltage when the schedule
		// starts, so no transition cost is charged and nothing is counted.
		if math.IsNaN(lastV) {
			lastV = v
		} else if hasOv {
			if math.Abs(v-lastV) > cfg.Overhead.Epsilon {
				out.switches++
				out.energy += cfg.Overhead.EnergyPerSwitch
				a += cfg.Overhead.TimeMs
			}
			lastV = v
		} else {
			if v != lastV {
				out.switches++
			}
			lastV = v
		}

		dur := w * ct
		end := a + dur
		out.energy += epc * w
		out.busy += dur
		out.voltTime += v * dur
		t = end

		// A piece that finished its share late only matters if the parent
		// instance has no later budget; conservatively flag any end past
		// the absolute deadline — correct schedules never trigger it.
		if end > p.deadline[i]+1e-9 {
			out.misses++
			if over := end - p.deadline[i]; over > out.worstOver {
				out.worstOver = over
			}
		}
	}
	return out
}
