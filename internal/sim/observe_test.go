package sim

import (
	"math"
	"reflect"
	"testing"
)

// TestObserverOrderAndNonPerturbation pins the observation hook's contract:
// the callback sees every hyper-period exactly once, in order, with draws
// identical for any worker count, and installing it never changes the
// simulation result.
func TestObserverOrderAndNonPerturbation(t *testing.T) {
	acs, _ := buildPair(t, 1, 4, 0.3)
	p, err := Compile(acs)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Policy: Greedy, Hyperperiods: 30, Seed: 11}
	plain, err := p.Run(base)
	if err != nil {
		t.Fatal(err)
	}

	var ref [][]float64
	for _, workers := range []int{1, 2, 8} {
		cfg := base
		cfg.Workers = workers
		var got [][]float64
		next := 0
		cfg.Observer = func(h int, actual []float64) {
			if h != next {
				t.Fatalf("Workers=%d: observed hyper-period %d, want %d", workers, h, next)
			}
			next++
			got = append(got, append([]float64(nil), actual...))
		}
		r, err := p.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r, plain) {
			t.Errorf("Workers=%d: observing changed the result", workers)
		}
		if len(got) != base.Hyperperiods {
			t.Fatalf("Workers=%d: observed %d hyper-periods, want %d", workers, len(got), base.Hyperperiods)
		}
		if ref == nil {
			ref = got
		} else if !reflect.DeepEqual(got, ref) {
			t.Errorf("Workers=%d: observation stream differs from Workers=1", workers)
		}
		for h, row := range got {
			for i, x := range row {
				if x < p.bcec[i]-1e-9 || x > p.wcec[i]+1e-9 {
					t.Fatalf("hyper-period %d instance %d draw %g outside [%g, %g]",
						h, i, x, p.bcec[i], p.wcec[i])
				}
			}
		}
	}
}

// TestRunActualsMatchesRun replays the draws captured by the Observer through
// RunActuals and requires a bit-identical Result under every policy: the
// external-workload path and the drawing path share one dispatcher.
func TestRunActualsMatchesRun(t *testing.T) {
	acs, _ := buildPair(t, 2, 4, 0.5)
	p, err := Compile(acs)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []SlackPolicy{Greedy, Static, NoDVS} {
		cfg := Config{Policy: policy, Hyperperiods: 25, Seed: 7}
		var rows [][]float64
		cfg.Observer = func(h int, actual []float64) {
			rows = append(rows, append([]float64(nil), actual...))
		}
		want, err := p.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := p.RunActuals(Config{Policy: policy, Workers: workers}, rows)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("policy %v Workers=%d: RunActuals differs from Run on identical workloads", policy, workers)
			}
		}
	}
}

// TestRunActualsChunking pins that splitting a horizon into chunks leaves the
// execution unchanged: chunks are independent experiments, so per-chunk
// scalar aggregates sum to the whole-run values (energy to float tolerance,
// counts exactly).
func TestRunActualsChunking(t *testing.T) {
	acs, _ := buildPair(t, 3, 3, 0.3)
	p, err := Compile(acs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Policy: Greedy, Hyperperiods: 24, Seed: 5}
	var rows [][]float64
	cfg.Observer = func(h int, actual []float64) {
		rows = append(rows, append([]float64(nil), actual...))
	}
	whole, err := p.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var energy, busy float64
	var misses, switches int
	for lo := 0; lo < len(rows); lo += 7 {
		hi := lo + 7
		if hi > len(rows) {
			hi = len(rows)
		}
		r, err := p.RunActuals(Config{Policy: Greedy}, rows[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		energy += r.Energy
		busy += r.BusyTime
		misses += r.DeadlineMisses
		switches += r.Switches
	}
	if math.Abs(energy-whole.Energy) > 1e-9*whole.Energy {
		t.Errorf("chunked energy %g, whole-run %g", energy, whole.Energy)
	}
	if math.Abs(busy-whole.BusyTime) > 1e-9*whole.BusyTime {
		t.Errorf("chunked busy time %g, whole-run %g", busy, whole.BusyTime)
	}
	if misses != whole.DeadlineMisses || switches != whole.Switches {
		t.Errorf("chunked counts (%d misses, %d switches) differ from whole run (%d, %d)",
			misses, switches, whole.DeadlineMisses, whole.Switches)
	}
}

func TestRunActualsValidation(t *testing.T) {
	acs, _ := buildPair(t, 4, 3, 0.5)
	p, err := Compile(acs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunActuals(Config{}, [][]float64{make([]float64, p.Instances()+1)}); err == nil {
		t.Error("wrong-width row accepted")
	}
	if _, err := p.RunActuals(Config{Policy: SlackPolicy(99)}, nil); err == nil {
		t.Error("unknown policy accepted")
	}
	r, err := p.RunActuals(Config{}, nil)
	if err != nil || r.Energy != 0 {
		t.Errorf("empty horizon: got (%v, %v), want zero result", r, err)
	}
}
