package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

func buildPair(t *testing.T, seed uint64, n int, ratio float64) (*core.Schedule, *core.Schedule) {
	t.Helper()
	rng := stats.NewRNG(seed)
	set, err := workload.RandomFeasible(rng, workload.RandomConfig{
		N: n, Ratio: ratio, Utilization: 0.7,
	}, 50, func(s *task.Set) bool { return core.Feasible(s, core.Config{}) == nil })
	if err != nil {
		t.Fatal(err)
	}
	wcs, err := core.Build(set, core.Config{Objective: core.WorstCase})
	if err != nil {
		t.Fatal(err)
	}
	acs, err := core.Build(set, core.Config{Objective: core.AverageCase, WarmStart: wcs})
	if err != nil {
		t.Fatal(err)
	}
	return acs, wcs
}

func TestRunDeterminism(t *testing.T) {
	acs, _ := buildPair(t, 1, 4, 0.3)
	a, err := Run(acs, Config{Hyperperiods: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(acs, Config{Hyperperiods: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy || a.Switches != b.Switches {
		t.Error("identical seeds produced different results")
	}
	c, err := Run(acs, Config{Hyperperiods: 50, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy == c.Energy {
		t.Error("different seeds produced identical energy")
	}
}

// TestNoDeadlineMisses is the safety property: valid schedules never miss,
// under any distribution including always-WCEC.
func TestNoDeadlineMisses(t *testing.T) {
	dists := map[string]Distribution{
		"paper":   PaperDist,
		"uniform": UniformDist,
		"bimodal": BimodalDist,
		"wcec":    AlwaysWCECDist,
		"acec":    AlwaysACECDist,
	}
	for _, seed := range []uint64{2, 3, 4} {
		acs, wcs := buildPair(t, seed, 5, 0.1)
		for name, d := range dists {
			for _, s := range []*core.Schedule{acs, wcs} {
				r, err := Run(s, Config{Hyperperiods: 30, Seed: seed, Dist: d})
				if err != nil {
					t.Fatal(err)
				}
				if r.DeadlineMisses != 0 {
					t.Errorf("seed %d dist %s %v: %d misses (worst overshoot %g ms)",
						seed, name, s.Objective, r.DeadlineMisses, r.WorstOvershoot)
				}
			}
		}
	}
}

// TestGreedyNeverWorseThanStatic: reclaiming slack can only lower energy on
// this power model (voltage monotone in window).
func TestGreedyNeverWorseThanStatic(t *testing.T) {
	for _, seed := range []uint64{5, 6} {
		acs, wcs := buildPair(t, seed, 4, 0.1)
		for _, s := range []*core.Schedule{acs, wcs} {
			g, err := Run(s, Config{Policy: Greedy, Hyperperiods: 40, Seed: 77})
			if err != nil {
				t.Fatal(err)
			}
			st, err := Run(s, Config{Policy: Static, Hyperperiods: 40, Seed: 77})
			if err != nil {
				t.Fatal(err)
			}
			if g.Energy > st.Energy*(1+1e-9) {
				t.Errorf("seed %d %v: greedy %g > static %g", seed, s.Objective, g.Energy, st.Energy)
			}
		}
	}
}

// TestStaticNeverWorseThanNoDVS: any voltage scaling beats always-Vmax.
func TestStaticNeverWorseThanNoDVS(t *testing.T) {
	acs, _ := buildPair(t, 8, 4, 0.5)
	st, err := Run(acs, Config{Policy: Static, Hyperperiods: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	nd, err := Run(acs, Config{Policy: NoDVS, Hyperperiods: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Energy > nd.Energy*(1+1e-9) {
		t.Errorf("static %g > nodvs %g", st.Energy, nd.Energy)
	}
}

// TestEnergyScalesWithWork: pinning all workloads at WCEC must cost at least
// as much as pinning at ACEC under the same schedule and policy.
func TestEnergyScalesWithWork(t *testing.T) {
	acs, _ := buildPair(t, 9, 4, 0.3)
	wc, err := Run(acs, Config{Hyperperiods: 10, Seed: 1, Dist: AlwaysWCECDist})
	if err != nil {
		t.Fatal(err)
	}
	ac, err := Run(acs, Config{Hyperperiods: 10, Seed: 1, Dist: AlwaysACECDist})
	if err != nil {
		t.Fatal(err)
	}
	if ac.Energy > wc.Energy*(1+1e-9) {
		t.Errorf("ACEC energy %g > WCEC energy %g", ac.Energy, wc.Energy)
	}
}

// TestACECEnergyMatchesObjective: simulating with every instance pinned at
// ACEC must reproduce the ACS objective value exactly — the simulator and
// the NLP evaluator are the same recursion.
func TestACECEnergyMatchesObjective(t *testing.T) {
	acs, _ := buildPair(t, 10, 5, 0.1)
	r, err := Run(acs, Config{Hyperperiods: 3, Seed: 1, Dist: AlwaysACECDist})
	if err != nil {
		t.Fatal(err)
	}
	perHP := r.Energy / 3
	if math.Abs(perHP-acs.Energy) > 1e-6*acs.Energy {
		t.Errorf("simulated ACEC energy %g != objective %g", perHP, acs.Energy)
	}
}

func TestOverheadAccounting(t *testing.T) {
	acs, _ := buildPair(t, 11, 3, 0.5)
	base, err := Run(acs, Config{Hyperperiods: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	withOv, err := Run(acs, Config{Hyperperiods: 20, Seed: 2,
		Overhead: Overhead{EnergyPerSwitch: 1, Epsilon: 0.001}})
	if err != nil {
		t.Fatal(err)
	}
	if withOv.Energy <= base.Energy {
		t.Error("switch energy not charged")
	}
	if withOv.Switches == 0 {
		t.Error("no switches counted")
	}
	extra := withOv.Energy - base.Energy
	if math.Abs(extra-float64(withOv.Switches)) > 1e-6*extra {
		t.Errorf("switch energy %g does not match %d switches", extra, withOv.Switches)
	}
}

func TestCompareUsesIdenticalDraws(t *testing.T) {
	acs, wcs := buildPair(t, 12, 4, 0.5)
	imp1, _, _, err := Compare(acs, wcs, Config{Hyperperiods: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	imp2, _, _, err := Compare(acs, wcs, Config{Hyperperiods: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if imp1 != imp2 {
		t.Error("Compare not deterministic")
	}
	// Comparing a schedule against itself must give exactly zero.
	self, _, _, err := Compare(acs, acs, Config{Hyperperiods: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if self != 0 {
		t.Errorf("self-comparison improvement = %g", self)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Config{}); err == nil {
		t.Error("nil schedule accepted")
	}
	acs, _ := buildPair(t, 13, 2, 0.5)
	if _, err := Run(acs, Config{Policy: SlackPolicy(99), Hyperperiods: 1}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestMeanVoltageWithinModelRange(t *testing.T) {
	acs, _ := buildPair(t, 14, 4, 0.1)
	r, err := Run(acs, Config{Hyperperiods: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanVoltage < acs.Model.VMin() || r.MeanVoltage > acs.Model.VMax() {
		t.Errorf("mean voltage %g outside model range", r.MeanVoltage)
	}
	if r.BusyTime <= 0 {
		t.Error("no busy time recorded")
	}
}

// TestMissesUnderRandomSchedules is the property test backing the paper's
// feasibility claim: for random feasible sets and seeds, neither ACS nor
// WCS ever misses a deadline, and ACS's simulated energy is finite and
// positive.
func TestMissesUnderRandomSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short mode")
	}
	if err := quick.Check(func(seedRaw uint16, nRaw, ratioRaw uint8) bool {
		n := int(nRaw%6) + 2
		ratio := float64(ratioRaw%9+1) / 10
		rng := stats.NewRNG(uint64(seedRaw))
		set, err := workload.RandomFeasible(rng, workload.RandomConfig{
			N: n, Ratio: ratio, Utilization: 0.7,
		}, 50, func(s *task.Set) bool { return core.Feasible(s, core.Config{}) == nil })
		if err != nil {
			return true // generation failure is not this property's concern
		}
		wcs, err := core.Build(set, core.Config{Objective: core.WorstCase, MaxSweeps: 8})
		if err != nil {
			return false
		}
		acs, err := core.Build(set, core.Config{Objective: core.AverageCase, MaxSweeps: 8, WarmStart: wcs})
		if err != nil {
			return false
		}
		for _, s := range []*core.Schedule{acs, wcs} {
			r, err := Run(s, Config{Hyperperiods: 5, Seed: rng.Uint64()})
			if err != nil || r.DeadlineMisses != 0 || !(r.Energy > 0) || math.IsInf(r.Energy, 0) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
