package sim

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/preempt"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

func buildPair(t *testing.T, seed uint64, n int, ratio float64) (*core.Schedule, *core.Schedule) {
	t.Helper()
	rng := stats.NewRNG(seed)
	set, err := workload.RandomFeasible(rng, workload.RandomConfig{
		N: n, Ratio: ratio, Utilization: 0.7,
	}, 50, func(s *task.Set) bool { return core.Feasible(s, core.Config{}) == nil })
	if err != nil {
		t.Fatal(err)
	}
	wcs, err := core.Build(set, core.Config{Objective: core.WorstCase})
	if err != nil {
		t.Fatal(err)
	}
	acs, err := core.Build(set, core.Config{Objective: core.AverageCase, WarmStart: wcs})
	if err != nil {
		t.Fatal(err)
	}
	return acs, wcs
}

func TestRunDeterminism(t *testing.T) {
	acs, _ := buildPair(t, 1, 4, 0.3)
	a, err := Run(acs, Config{Hyperperiods: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(acs, Config{Hyperperiods: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy || a.Switches != b.Switches {
		t.Error("identical seeds produced different results")
	}
	c, err := Run(acs, Config{Hyperperiods: 50, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy == c.Energy {
		t.Error("different seeds produced identical energy")
	}
}

// TestWorkersDeterminism is the determinism contract of the parallel
// hyper-period engine: the full Result — energy, per-hyper-period summary,
// switch counts, everything — is bit-identical for any worker count (same
// shape as core's multi-start determinism test).
func TestWorkersDeterminism(t *testing.T) {
	acs, wcs := buildPair(t, 1, 4, 0.3)
	cfgs := map[string]Config{
		"greedy":   {Policy: Greedy, Hyperperiods: 50, Seed: 9},
		"static":   {Policy: Static, Hyperperiods: 50, Seed: 9},
		"nodvs":    {Policy: NoDVS, Hyperperiods: 50, Seed: 9},
		"overhead": {Policy: Greedy, Hyperperiods: 50, Seed: 9, Overhead: Overhead{TimeMs: 0.01, EnergyPerSwitch: 0.5, Epsilon: 0.01}},
	}
	for name, cfg := range cfgs {
		var ref *Result
		for _, workers := range []int{1, 2, 8} {
			c := cfg
			c.Workers = workers
			r, err := Run(acs, c)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = r
			} else if !reflect.DeepEqual(ref, r) {
				t.Errorf("%s: Workers=%d result differs from Workers=1:\n%+v\nvs\n%+v", name, workers, ref, r)
			}
		}
	}
	// Compare (concurrent a/b runs) inherits the same contract.
	var refImp float64
	for i, workers := range []int{1, 4} {
		imp, _, _, err := Compare(acs, wcs, Config{Hyperperiods: 40, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			refImp = imp
		} else if imp != refImp {
			t.Errorf("Compare at Workers=%d gave %g, want %g", workers, imp, refImp)
		}
	}
}

// TestCompiledMatchesReference cross-checks the compiled dispatcher — the
// SimpleInverse-specialised fast path and the precomputed Static/NoDVS
// voltages — against the generic per-piece power.Model path, bit for bit, on
// both model families and under all three slack policies.
func TestCompiledMatchesReference(t *testing.T) {
	alpha, err := power.NewAlpha(1.0, 0.4, 1.5, 0.7, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	models := map[string]power.Model{
		"simpleinverse": power.DefaultModel(),
		"alpha":         alpha,
	}
	for mName, m := range models {
		rng := stats.NewRNG(31)
		set, err := workload.RandomFeasible(rng, workload.RandomConfig{
			N: 4, Ratio: 0.3, Utilization: 0.7, Model: m,
		}, 50, func(s *task.Set) bool { return core.Feasible(s, core.Config{Model: m}) == nil })
		if err != nil {
			t.Fatal(err)
		}
		s, err := core.Build(set, core.Config{Objective: core.AverageCase, Model: m})
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range []SlackPolicy{Greedy, Static, NoDVS} {
			for _, ov := range []Overhead{{}, {TimeMs: 0.01, EnergyPerSwitch: 0.5, Epsilon: 0.01}} {
				cfg := Config{Policy: pol, Hyperperiods: 30, Seed: 17, Overhead: ov, Workers: 4}
				compiled, err := Run(s, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.reference = true
				cfg.Workers = 1
				generic, err := Run(s, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(compiled, generic) {
					t.Errorf("%s/%v (overhead=%v): compiled path diverges from generic path:\n%+v\nvs\n%+v",
						mName, pol, ov.TimeMs > 0, compiled, generic)
				}
			}
		}
	}
}

// TestSwitchesFirstPieceFree pins the voltage-transition fix: establishing
// the initial operating point is not a switch, so a single-piece schedule
// never switches and is never charged transition overhead, no matter how
// many hyper-periods run.
func TestSwitchesFirstPieceFree(t *testing.T) {
	set, err := task.NewSet([]task.Task{
		{Name: "solo", Period: 10, WCEC: 8, ACEC: 5, BCEC: 2, Ceff: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Build(set, core.Config{Objective: core.AverageCase})
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := Compile(s); p.Pieces() != 1 {
		t.Fatalf("single-task schedule compiled to %d pieces, want 1", p.Pieces())
	}
	base, err := Run(s, Config{Hyperperiods: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if base.Switches != 0 {
		t.Errorf("single-piece schedule counted %d switches, want 0", base.Switches)
	}
	withOv, err := Run(s, Config{Hyperperiods: 20, Seed: 4,
		Overhead: Overhead{TimeMs: 0.5, EnergyPerSwitch: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if withOv.Switches != 0 {
		t.Errorf("single-piece schedule charged %d switches under overhead, want 0", withOv.Switches)
	}
	if withOv.Energy != base.Energy {
		t.Errorf("overhead charged on the initial voltage: %g vs %g", withOv.Energy, base.Energy)
	}
}

// TestStaticWindowSkipsReservations pins the DESIGN.md §2 window rule: the
// static window of a piece starts at the end of its last *work-bearing*
// predecessor; pure reservations (zero worst-case budget) do not delimit it,
// even when their unconstrained end-times land late.
func TestStaticWindowSkipsReservations(t *testing.T) {
	set, err := task.NewSet([]task.Task{
		{Name: "hi", Period: 10, WCEC: 2, ACEC: 1, BCEC: 1, Ceff: 1},
		{Name: "lo", Period: 20, WCEC: 4, ACEC: 2, BCEC: 1, Ceff: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := preempt.Build(set)
	if err != nil {
		t.Fatal(err)
	}
	// Total order: hi₁ [0,10), lo₁ piece 0 [0,10), hi₂ [10,20), lo₁ piece 1
	// [10,20). lo's first piece is a pure reservation (zero budget) whose
	// end-time is deliberately late (18 ms): the buggy window rule took it
	// as hi₂'s window start, clamping hi₂ to Vmax.
	if len(plan.Subs) != 4 {
		t.Fatalf("expansion has %d pieces, want 4", len(plan.Subs))
	}
	s := &core.Schedule{
		Plan:    plan,
		Model:   power.DefaultModel(),
		End:     []float64{8, 18, 14, 20},
		WCWork:  []float64{2, 0, 2, 4},
		AvgWork: []float64{1, 0, 1, 2},
	}
	p, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	// Reservation dropped: 3 executable pieces with windows measured from
	// the last work-bearing end (8 for hi₂ — below its release 10).
	want := []float64{8, 4, 6}
	if !reflect.DeepEqual(p.staticWin, want) {
		t.Errorf("static windows %v, want %v", p.staticWin, want)
	}
}

// TestNoDeadlineMisses is the safety property: valid schedules never miss,
// under any distribution including always-WCEC.
func TestNoDeadlineMisses(t *testing.T) {
	dists := map[string]Distribution{
		"paper":   PaperDist,
		"uniform": UniformDist,
		"bimodal": BimodalDist,
		"wcec":    AlwaysWCECDist,
		"acec":    AlwaysACECDist,
	}
	for _, seed := range []uint64{2, 3, 4} {
		acs, wcs := buildPair(t, seed, 5, 0.1)
		for name, d := range dists {
			for _, s := range []*core.Schedule{acs, wcs} {
				r, err := Run(s, Config{Hyperperiods: 30, Seed: seed, Dist: d})
				if err != nil {
					t.Fatal(err)
				}
				if r.DeadlineMisses != 0 {
					t.Errorf("seed %d dist %s %v: %d misses (worst overshoot %g ms)",
						seed, name, s.Objective, r.DeadlineMisses, r.WorstOvershoot)
				}
			}
		}
	}
}

// TestGreedyNeverWorseThanStatic: reclaiming slack can only lower energy on
// this power model (voltage monotone in window).
func TestGreedyNeverWorseThanStatic(t *testing.T) {
	for _, seed := range []uint64{5, 6} {
		acs, wcs := buildPair(t, seed, 4, 0.1)
		for _, s := range []*core.Schedule{acs, wcs} {
			g, err := Run(s, Config{Policy: Greedy, Hyperperiods: 40, Seed: 77})
			if err != nil {
				t.Fatal(err)
			}
			st, err := Run(s, Config{Policy: Static, Hyperperiods: 40, Seed: 77})
			if err != nil {
				t.Fatal(err)
			}
			if g.Energy > st.Energy*(1+1e-9) {
				t.Errorf("seed %d %v: greedy %g > static %g", seed, s.Objective, g.Energy, st.Energy)
			}
		}
	}
}

// TestStaticNeverWorseThanNoDVS: any voltage scaling beats always-Vmax.
func TestStaticNeverWorseThanNoDVS(t *testing.T) {
	acs, _ := buildPair(t, 8, 4, 0.5)
	st, err := Run(acs, Config{Policy: Static, Hyperperiods: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	nd, err := Run(acs, Config{Policy: NoDVS, Hyperperiods: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Energy > nd.Energy*(1+1e-9) {
		t.Errorf("static %g > nodvs %g", st.Energy, nd.Energy)
	}
}

// TestEnergyScalesWithWork: pinning all workloads at WCEC must cost at least
// as much as pinning at ACEC under the same schedule and policy.
func TestEnergyScalesWithWork(t *testing.T) {
	acs, _ := buildPair(t, 9, 4, 0.3)
	wc, err := Run(acs, Config{Hyperperiods: 10, Seed: 1, Dist: AlwaysWCECDist})
	if err != nil {
		t.Fatal(err)
	}
	ac, err := Run(acs, Config{Hyperperiods: 10, Seed: 1, Dist: AlwaysACECDist})
	if err != nil {
		t.Fatal(err)
	}
	if ac.Energy > wc.Energy*(1+1e-9) {
		t.Errorf("ACEC energy %g > WCEC energy %g", ac.Energy, wc.Energy)
	}
}

// TestACECEnergyMatchesObjective: simulating with every instance pinned at
// ACEC must reproduce the ACS objective value exactly — the simulator and
// the NLP evaluator are the same recursion.
func TestACECEnergyMatchesObjective(t *testing.T) {
	acs, _ := buildPair(t, 10, 5, 0.1)
	r, err := Run(acs, Config{Hyperperiods: 3, Seed: 1, Dist: AlwaysACECDist})
	if err != nil {
		t.Fatal(err)
	}
	perHP := r.Energy / 3
	if math.Abs(perHP-acs.Energy) > 1e-6*acs.Energy {
		t.Errorf("simulated ACEC energy %g != objective %g", perHP, acs.Energy)
	}
}

func TestOverheadAccounting(t *testing.T) {
	acs, _ := buildPair(t, 11, 3, 0.5)
	base, err := Run(acs, Config{Hyperperiods: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	withOv, err := Run(acs, Config{Hyperperiods: 20, Seed: 2,
		Overhead: Overhead{EnergyPerSwitch: 1, Epsilon: 0.001}})
	if err != nil {
		t.Fatal(err)
	}
	if withOv.Energy <= base.Energy {
		t.Error("switch energy not charged")
	}
	if withOv.Switches == 0 {
		t.Error("no switches counted")
	}
	extra := withOv.Energy - base.Energy
	if math.Abs(extra-float64(withOv.Switches)) > 1e-6*extra {
		t.Errorf("switch energy %g does not match %d switches", extra, withOv.Switches)
	}
}

func TestCompareUsesIdenticalDraws(t *testing.T) {
	acs, wcs := buildPair(t, 12, 4, 0.5)
	imp1, _, _, err := Compare(acs, wcs, Config{Hyperperiods: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	imp2, _, _, err := Compare(acs, wcs, Config{Hyperperiods: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if imp1 != imp2 {
		t.Error("Compare not deterministic")
	}
	// Comparing a schedule against itself must give exactly zero.
	self, _, _, err := Compare(acs, acs, Config{Hyperperiods: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if self != 0 {
		t.Errorf("self-comparison improvement = %g", self)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Config{}); err == nil {
		t.Error("nil schedule accepted")
	}
	acs, _ := buildPair(t, 13, 2, 0.5)
	if _, err := Run(acs, Config{Policy: SlackPolicy(99), Hyperperiods: 1}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestMeanVoltageWithinModelRange(t *testing.T) {
	acs, _ := buildPair(t, 14, 4, 0.1)
	r, err := Run(acs, Config{Hyperperiods: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanVoltage < acs.Model.VMin() || r.MeanVoltage > acs.Model.VMax() {
		t.Errorf("mean voltage %g outside model range", r.MeanVoltage)
	}
	if r.BusyTime <= 0 {
		t.Error("no busy time recorded")
	}
}

// TestMissesUnderRandomSchedules is the property test backing the paper's
// feasibility claim: for random feasible sets and seeds, neither ACS nor
// WCS ever misses a deadline, and ACS's simulated energy is finite and
// positive.
func TestMissesUnderRandomSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short mode")
	}
	if err := quick.Check(func(seedRaw uint16, nRaw, ratioRaw uint8) bool {
		n := int(nRaw%6) + 2
		ratio := float64(ratioRaw%9+1) / 10
		rng := stats.NewRNG(uint64(seedRaw))
		set, err := workload.RandomFeasible(rng, workload.RandomConfig{
			N: n, Ratio: ratio, Utilization: 0.7,
		}, 50, func(s *task.Set) bool { return core.Feasible(s, core.Config{}) == nil })
		if err != nil {
			return true // generation failure is not this property's concern
		}
		wcs, err := core.Build(set, core.Config{Objective: core.WorstCase, MaxSweeps: 8})
		if err != nil {
			return false
		}
		acs, err := core.Build(set, core.Config{Objective: core.AverageCase, MaxSweeps: 8, WarmStart: wcs})
		if err != nil {
			return false
		}
		for _, s := range []*core.Schedule{acs, wcs} {
			r, err := Run(s, Config{Hyperperiods: 5, Seed: rng.Uint64()})
			if err != nil || r.DeadlineMisses != 0 || !(r.Energy > 0) || math.IsInf(r.Energy, 0) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
