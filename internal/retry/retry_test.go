package retry

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stats"
)

// TestDelaySequencePinned pins the seeded jitter/backoff sequence (satellite:
// the extracted client must pace exactly as schedload always has). The
// goldens are nanosecond delays for the default policy; any change to the
// backoff formula, the jitter draw, or the RNG itself shows up here.
func TestDelaySequencePinned(t *testing.T) {
	p := Policy{MaxAttempts: 5, Base: 5 * time.Millisecond, Max: 2 * time.Second}
	cases := []struct {
		seed       uint64
		retryAfter time.Duration
		want       []time.Duration
	}{
		{1, 0, []time.Duration{7832807, 17457817, 39420055, 57774368}},
		{42, 0, []time.Duration{8707824, 11599103, 25572022, 53767628}},
		// A Retry-After hint floors the pre-jitter backoff at the server's
		// request: every pause lies in [1s, 2s).
		{7, time.Second, []time.Duration{1389829748, 1016788294, 1900760680}},
	}
	for _, c := range cases {
		rng := stats.NewRNG(c.seed)
		for i, want := range c.want {
			if got := p.Delay(i+1, c.retryAfter, rng); got != want {
				t.Errorf("seed %d attempt %d (hint %v): delay %d, want %d",
					c.seed, i+1, c.retryAfter, got, want)
			}
		}
	}
}

// TestDelayBounds pins the envelope: the pause never undercuts the effective
// backoff, never exceeds twice it, and a hostile Retry-After cannot stretch
// past 2·Max.
func TestDelayBounds(t *testing.T) {
	p := Policy{Base: 5 * time.Millisecond, Max: 2 * time.Second}
	rng := stats.NewRNG(3)
	for attempt := 1; attempt <= 12; attempt++ {
		d := p.Delay(attempt, 0, rng)
		backoff := 5 * time.Millisecond << (attempt - 1)
		if backoff > p.Max {
			backoff = p.Max
		}
		if d < backoff || d >= 2*backoff+1 {
			t.Errorf("attempt %d: delay %v outside [%v, 2x)", attempt, d, backoff)
		}
	}
	if d := p.Delay(1, time.Hour, stats.NewRNG(9)); d > 2*p.Max {
		t.Errorf("hostile Retry-After stretched the pause to %v (cap %v)", d, 2*p.Max)
	}
}

// TestDelayConsumesOneDrawPerCall: the jitter stream position depends only on
// the retry count, so two clients with the same seed stay in lockstep no
// matter what hints they saw.
func TestDelayConsumesOneDrawPerCall(t *testing.T) {
	p := Policy{}
	a, b := stats.NewRNG(5), stats.NewRNG(5)
	p.Delay(1, 0, a)
	p.Delay(1, time.Second, b) // different hint, same draw count
	if av, bv := a.Uint64(), b.Uint64(); av != bv {
		t.Errorf("streams diverged after one delay: %d vs %d", av, bv)
	}
}

// TestPostRetriesShedsThenSucceeds: a server that sheds twice then serves is
// answered 200, with sheds/retries counted and the Retry-After hint honored
// in the recorded pauses.
func TestPostRetriesShedsThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	var pauses []time.Duration
	c := &HTTPClient{
		Client: ts.Client(),
		Policy: Policy{MaxAttempts: 5, Base: time.Millisecond, Max: 10 * time.Millisecond},
		Sleep:  func(d time.Duration) { pauses = append(pauses, d) },
	}
	res, err := c.Post(context.Background(), ts.URL, "application/json", []byte(`{}`), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK || string(res.Body) != `{"ok":true}` {
		t.Fatalf("final answer %d %s", res.Status, res.Body)
	}
	if res.Attempts != 3 || res.Sheds != 2 || res.Retries != 2 {
		t.Errorf("attempts/sheds/retries = %d/%d/%d, want 3/2/2", res.Attempts, res.Sheds, res.Retries)
	}
	if len(pauses) != 2 {
		t.Fatalf("recorded %d pauses, want 2", len(pauses))
	}
	for i, d := range pauses {
		// Retry-After 1s floored at Max 10ms: every pause in [10ms, 20ms).
		if d < 10*time.Millisecond || d >= 20*time.Millisecond {
			t.Errorf("pause %d = %v, want in [10ms, 20ms)", i, d)
		}
	}
}

// TestPostExhaustsOnPersistentShed: a server that always sheds costs
// MaxAttempts sends and the final answer is the 503 itself (callers relay
// it; they never invent a different failure).
func TestPostExhaustsOnPersistentShed(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := &HTTPClient{
		Client: ts.Client(),
		Policy: Policy{MaxAttempts: 3, Base: time.Millisecond, Max: 2 * time.Millisecond},
		Sleep:  func(time.Duration) {},
	}
	res, err := c.Post(context.Background(), ts.URL, "application/json", nil, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusServiceUnavailable || res.Sheds != 3 || res.Retries != 2 {
		t.Errorf("status/sheds/retries = %d/%d/%d, want 503/3/2", res.Status, res.Sheds, res.Retries)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3", calls.Load())
	}
}

// TestPostTerminalStatusDoesNotRetry: non-503 answers are terminal, whatever
// their status.
func TestPostTerminalStatusDoesNotRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
	}))
	defer ts.Close()
	c := &HTTPClient{Client: ts.Client(), Sleep: func(time.Duration) {}}
	res, err := c.Post(context.Background(), ts.URL, "application/json", nil, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusUnprocessableEntity || res.Attempts != 1 || calls.Load() != 1 {
		t.Errorf("status/attempts/calls = %d/%d/%d, want 422/1/1", res.Status, res.Attempts, calls.Load())
	}
}

// TestPostTransportFailureRetries: connection-level failures retry on the
// same schedule and surface as an error once exhausted.
func TestPostTransportFailureRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // nothing listens: every attempt fails at the transport
	var pauses int
	c := &HTTPClient{
		Client: &http.Client{Timeout: time.Second},
		Policy: Policy{MaxAttempts: 3, Base: time.Microsecond, Max: time.Millisecond},
		Sleep:  func(time.Duration) { pauses++ },
	}
	_, err := c.Post(context.Background(), ts.URL, "application/json", nil, stats.NewRNG(1))
	if err == nil {
		t.Fatal("dead endpoint answered without error")
	}
	if pauses != 2 {
		t.Errorf("recorded %d pauses, want 2", pauses)
	}
}

// TestRetryAfterForms is the regression for the Retry-After parser: both
// RFC 9110 forms (integer seconds and HTTP-date), the missing-header case,
// and the clamps on negative, past, and absurd values. Before the fix the
// HTTP-date form — what any fronting proxy may rewrite the header to —
// failed strconv.Atoi and silently dropped the server's hint to 0.
func TestRetryAfterForms(t *testing.T) {
	fixed := time.Date(2026, time.August, 8, 12, 0, 0, 0, time.UTC)
	now = func() time.Time { return fixed }
	defer func() { now = time.Now }()

	hdr := func(v string) http.Header {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return h
	}
	cases := []struct {
		name, value string
		want        time.Duration
	}{
		{"missing", "", 0},
		{"seconds", "3", 3 * time.Second},
		{"zero_seconds", "0", 0},
		{"negative_seconds", "-5", 0},
		{"absurd_seconds", "86400", maxRetryAfter},
		{"http_date", fixed.Add(30 * time.Second).Format(http.TimeFormat), 30 * time.Second},
		{"http_date_past", fixed.Add(-time.Minute).Format(http.TimeFormat), 0},
		{"http_date_absurd", fixed.Add(24 * time.Hour).Format(http.TimeFormat), maxRetryAfter},
		{"garbage", "soon", 0},
	}
	for _, tc := range cases {
		if got := retryAfterOf(hdr(tc.value)); got != tc.want {
			t.Errorf("%s: retryAfterOf(%q) = %v, want %v", tc.name, tc.value, got, tc.want)
		}
	}
}
