// Package retry is the shared 503-retry client (DESIGN.md §10–§11): seeded-
// jitter exponential backoff for requests a server explicitly shed. It was
// extracted from cmd/schedload so the fleet router (internal/fleet) and every
// load generator pace their re-sends identically.
//
// The policy: a 503 is the server's explicit "come back shortly" — every 503
// the serving layer emits carries a Retry-After header (DESIGN.md §10) — so
// the client backs off exponentially, floors the pause at the server's hint,
// and adds seeded jitter so a herd of retriers does not re-converge on the
// same instant. Transport-level failures retry on the same schedule; any
// other HTTP status is terminal for the request.
//
// Determinism: jitter is drawn from a caller-supplied stats.RNG, so for a
// fixed seed the full delay sequence is a pure function of the attempt
// number and the Retry-After hints (pinned by TestDelaySequencePinned).
package retry

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/stats"
)

// Policy is a backoff schedule. The zero value selects the defaults the
// schedload client has used since PR 7.
type Policy struct {
	// MaxAttempts is the total number of sends, first try included
	// (default 5).
	MaxAttempts int
	// Base is the pre-jitter pause after the first failed attempt; each
	// further failure doubles it (default 5ms).
	Base time.Duration
	// Max caps any single pause, jitter included, and also bounds how far a
	// server's Retry-After hint can stretch the schedule — a misbehaving
	// header must not stall the client forever (default 2s).
	Max time.Duration
}

// withDefaults fills zero fields.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.Base <= 0 {
		p.Base = 5 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 2 * time.Second
	}
	return p
}

// Delay returns the pause after failed attempt number attempt (1-based),
// honoring the server's Retry-After hint (0 = none): the exponential backoff
// Base<<(attempt-1) is floored at the hint, capped at Max, and stretched by
// up to 100% of seeded jitter — the pause lies in [eff, 2·eff) where eff is
// the effective backoff. One uniform draw is consumed per call whatever the
// inputs, so the jitter stream position is a pure function of the retry
// count.
func (p Policy) Delay(attempt int, retryAfter time.Duration, rng *stats.RNG) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	backoff := p.Base
	for i := 1; i < attempt && backoff < p.Max; i++ {
		backoff <<= 1
	}
	if retryAfter > backoff {
		backoff = retryAfter
	}
	if backoff > p.Max {
		backoff = p.Max
	}
	jitter := time.Duration(rng.Uniform(0, float64(backoff)))
	d := backoff + jitter
	if d > 2*p.Max {
		d = 2 * p.Max
	}
	return d
}

// Result is the terminal outcome of one retried request.
type Result struct {
	// Status and Body are the final HTTP answer. After exhausted retries the
	// final answer is the last 503 received.
	Status int
	Body   []byte
	Header http.Header
	// Attempts is how many sends the request cost (1 = no retries).
	Attempts int
	// Sheds counts 503 responses observed along the way; Retries counts
	// re-sent requests (transport failures and 503s both retry).
	Sheds, Retries int64
}

// HTTPClient retries POSTs through an http.Client under a Policy. The zero
// value is not usable; fill Client (and optionally Policy/Sleep).
type HTTPClient struct {
	Client *http.Client
	Policy Policy
	// Sleep is the pause hook (nil = time.Sleep); tests swap it to pin the
	// delay sequence without waiting it out.
	Sleep func(time.Duration)
}

// maxRetryAfter clamps the server's hint: a peer (or a fronting proxy
// rewriting the header) asking for more than this is treated as asking for
// this much — the retry loop must never park a request for hours on one
// bad header.
const maxRetryAfter = 5 * time.Minute

// now is time.Now, swappable so tests can pin HTTP-date arithmetic.
var now = time.Now

// retryAfterOf parses the Retry-After header in both RFC 9110 forms: the
// integer-seconds delay the serving layer emits, and the HTTP-date form any
// fronting proxy may rewrite it to. Absent or unparsable headers — and
// negative or already-past values — mean "no hint" (0); absurd values clamp
// to maxRetryAfter.
func retryAfterOf(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	var d time.Duration
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		d = time.Duration(secs) * time.Second
	} else if t, err := http.ParseTime(v); err == nil {
		d = t.Sub(now())
		if d < 0 {
			return 0
		}
	} else {
		return 0
	}
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}

// Post sends body until a non-503 answer, a non-retryable failure, or the
// policy's attempts run out. rng supplies the jitter stream (one draw per
// pause). A nil error with Status 503 means retries were exhausted on sheds;
// a non-nil error means every attempt failed at the transport level.
func (c *HTTPClient) Post(ctx context.Context, url, contentType string, body []byte, rng *stats.RNG) (*Result, error) {
	p := c.Policy.withDefaults()
	sleep := c.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	res := &Result{}
	var lastErr error
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", contentType)
		var retryAfter time.Duration
		resp, err := c.Client.Do(req)
		if err == nil {
			b, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				err = rerr
			} else {
				res.Status = resp.StatusCode
				res.Body = b
				res.Header = resp.Header
				if resp.StatusCode != http.StatusServiceUnavailable {
					return res, nil
				}
				res.Sheds++
				retryAfter = retryAfterOf(resp.Header)
			}
		}
		lastErr = err
		if attempt == p.MaxAttempts || ctx.Err() != nil {
			if res.Status == http.StatusServiceUnavailable {
				return res, nil // exhausted on sheds: the 503 is the answer
			}
			return nil, lastErr
		}
		res.Retries++
		sleep(p.Delay(attempt, retryAfter, rng))
	}
}
