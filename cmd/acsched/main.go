// Command acsched builds a static voltage schedule (ACS or WCS) for a task
// set and prints it as a table, a CSV, or an ASCII Gantt chart.
//
// Usage:
//
//	acsched -in taskset.json -objective acs -format gantt
//	taskgen -n 4 | acsched -objective wcs -format csv
//
// The built-in task sets are available without a file:
//
//	acsched -builtin cnc -ratio 0.1 -format table
//
// The solver runs a single coordinate-descent start by default; -starts N
// explores N deterministic starting points in parallel and keeps the best.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	cliutil.Exit("acsched", run(os.Args[1:], os.Stdin, os.Stdout))
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("acsched", flag.ContinueOnError)
	var (
		in        = fs.String("in", "", "task-set JSON file (default stdin; ignored with -builtin)")
		builtin   = fs.String("builtin", "", "built-in task set: cnc, gap, motivation")
		ratio     = fs.Float64("ratio", 0.5, "BCEC/WCEC ratio for built-in sets")
		util      = fs.Float64("util", 0.7, "utilisation for built-in sets")
		objective = fs.String("objective", "acs", "objective: acs or wcs")
		format    = fs.String("format", "table", "output: table, csv, gantt")
		subCap    = fs.Int("subcap", 0, "max sub-instances per instance (0 = unlimited)")
		sweeps    = fs.Int("sweeps", 0, "max coordinate-descent sweeps (0 = default)")
		starts    = fs.Int("starts", 1, "multi-start count (>1 runs parallel solver starts)")
		workers   = fs.Int("workers", 0, "multi-start worker pool (0 = GOMAXPROCS; result is identical either way)")
		startSeed = fs.Uint64("startseed", 0, "multi-start blend jitter seed (0 = default)")
	)
	if err := cliutil.ParseFlags(fs, args); err != nil {
		return err
	}

	set, err := cliutil.LoadSet(stdin, *in, *builtin, *ratio, *util)
	if err != nil {
		return err
	}

	cfg := core.Config{
		MaxSweeps:    *sweeps,
		Starts:       *starts,
		StartWorkers: *workers,
		StartSeed:    *startSeed,
	}
	cfg.Preempt.MaxSubsPerInstance = *subCap
	switch *objective {
	case "acs":
		cfg.Objective = core.AverageCase
	case "wcs":
		cfg.Objective = core.WorstCase
	default:
		return fmt.Errorf("unknown objective %q (want acs or wcs)", *objective)
	}

	if cfg.Objective == core.AverageCase {
		// Warm-start ACS from WCS, as the experiments do.
		wcsCfg := cfg
		wcsCfg.Objective = core.WorstCase
		if wcs, err := core.Build(set, wcsCfg); err == nil {
			cfg.WarmStart = wcs
		}
	}
	s, err := core.Build(set, cfg)
	if err != nil {
		return err
	}

	switch *format {
	case "table":
		fmt.Fprintf(stdout, "%s schedule for %s: %d sub-instances, objective energy %.6g (%d sweeps)\n",
			s.Objective, set, len(s.Plan.Subs), s.Energy, s.Sweeps)
		fmt.Fprint(stdout, trace.CSV(s))
	case "csv":
		fmt.Fprint(stdout, trace.CSV(s))
	case "gantt":
		fmt.Fprint(stdout, trace.Gantt(s, 100))
	default:
		return fmt.Errorf("unknown format %q (want table, csv, gantt)", *format)
	}
	return nil
}
